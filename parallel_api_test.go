package rtic

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rtic/internal/workload"
)

func TestParseModeNames(t *testing.T) {
	cases := map[string]Mode{
		"incremental":  Incremental,
		"naive":        Naive,
		"active":       ActiveRules,
		"active-rules": ActiveRules,
	}
	for name, want := range cases {
		got, err := ParseMode(name)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", name, err)
		}
		if got != want {
			t.Fatalf("ParseMode(%q) = %v, want %v", name, got, want)
		}
	}
	_, err := ParseMode("eager")
	if err == nil {
		t.Fatal("unknown mode accepted")
	}
	// The error must teach the valid spellings.
	for _, name := range ModeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list %q", err, name)
		}
	}
}

func TestParallelismAccessor(t *testing.T) {
	s := hrSchema(t)
	c, err := NewChecker(s, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d, want 4", got)
	}
	c, _ = NewChecker(s, WithParallelism(1))
	if got := c.Parallelism(); got != 1 {
		t.Fatalf("Parallelism() = %d, want 1", got)
	}
	// Default: GOMAXPROCS, so at least 1.
	c, _ = NewChecker(s)
	if got := c.Parallelism(); got < 1 {
		t.Fatalf("default Parallelism() = %d", got)
	}
	// Sequential engines report 1 regardless of the option.
	n, _ := NewChecker(s, WithMode(Naive), WithParallelism(8))
	if got := n.Parallelism(); got != 1 {
		t.Fatalf("naive Parallelism() = %d, want 1", got)
	}
}

func canonViolations(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Constraint + "|" + v.Binding.Key()
	}
	sort.Strings(out)
	return out
}

func TestParallelCheckerEquivalence(t *testing.T) {
	build := func(par int) *Checker {
		c, err := NewChecker(hrSchema(t), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		c.MustAddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")
		c.MustAddConstraint("no_refire", "fire(e) -> not once[0,100] fire(e)")
		return c
	}
	seq, par := build(1), build(4)
	r := rand.New(rand.NewSource(71))
	tm := uint64(0)
	for i := 0; i < 100; i++ {
		tm += uint64(1 + r.Intn(20))
		e := int64(r.Intn(6))
		rel := "hire"
		if r.Intn(2) == 0 {
			rel = "fire"
		}
		want, err := seq.Begin().Insert(rel, Int(e)).Commit(tm)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got, err := par.Begin().Insert(rel, Int(e)).Commit(tm)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		// Binding order within one constraint follows evaluator
		// enumeration and is unspecified; compare canonically.
		cg, cw := canonViolations(got), canonViolations(want)
		if len(cg) != len(cw) {
			t.Fatalf("step %d: %v vs %v", i, got, want)
		}
		for k := range cg {
			if cg[k] != cw[k] {
				t.Fatalf("step %d: %v vs %v", i, got, want)
			}
		}
	}
}

func TestBatchCommit(t *testing.T) {
	for _, mode := range []Mode{Incremental, Naive, ActiveRules} {
		t.Run(mode.String(), func(t *testing.T) {
			c, err := NewChecker(hrSchema(t), WithMode(mode))
			if err != nil {
				t.Fatal(err)
			}
			c.MustAddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")
			out, err := c.BeginBatch().
				Add(0, c.Begin().Insert("fire", Int(7))).
				Add(100, c.Begin().Delete("fire", Int(7)).Insert("hire", Int(7))).
				Add(366, c.Begin()).
				Commit()
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 3 {
				t.Fatalf("%d violation slices, want 3", len(out))
			}
			if len(out[0]) != 0 || len(out[2]) != 0 {
				t.Fatalf("unexpected violations: %v", out)
			}
			if len(out[1]) != 1 || !out[1][0].Binding[0].Equal(Int(7)) {
				t.Fatalf("commit 100: %v, want e=7", out[1])
			}
			// The batch marks the checker started: late constraints refuse.
			if err := c.AddConstraint("late", "hire(e) -> not once fire(e)"); err == nil {
				t.Fatal("constraint accepted after batch commit")
			}
		})
	}
}

func TestBatchCommitPrefixOnError(t *testing.T) {
	c, _ := NewChecker(hrSchema(t))
	c.MustAddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")
	out, err := c.BeginBatch().
		Add(10, c.Begin().Insert("fire", Int(1))).
		Add(20, c.Begin().Insert("hire", Int(1))).
		Add(20, c.Begin()). // non-increasing: fails here
		Add(30, c.Begin()).
		Commit()
	if err == nil {
		t.Fatal("non-increasing timestamp accepted")
	}
	if len(out) != 2 {
		t.Fatalf("prefix has %d slices, want 2", len(out))
	}
	if len(out[1]) != 1 {
		t.Fatalf("prefix violations lost: %v", out)
	}
	// The committed prefix stays: the next commit continues after t=20.
	if _, err := c.Begin().Commit(21); err != nil {
		t.Fatal(err)
	}
}

func TestBatchAddErrors(t *testing.T) {
	c, _ := NewChecker(hrSchema(t))
	other, _ := NewChecker(hrSchema(t))
	if _, err := c.BeginBatch().Add(1, other.Begin()).Commit(); err == nil {
		t.Fatal("foreign transaction accepted")
	}
	if _, err := c.BeginBatch().Add(1, nil).Commit(); err == nil {
		t.Fatal("nil transaction accepted")
	}
	// An empty batch is a no-op, not an error.
	out, err := c.BeginBatch().Commit()
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
}

func TestRestoreCheckerWithParallelism(t *testing.T) {
	c, _ := NewChecker(hrSchema(t))
	c.MustAddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")
	if _, err := c.Begin().Insert("fire", Int(7)).Commit(10); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreChecker(hrSchema(t), &buf, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Parallelism(); got != 4 {
		t.Fatalf("restored Parallelism() = %d, want 4", got)
	}
	vs, err := restored.Begin().Insert("hire", Int(7)).Commit(100)
	if err != nil || len(vs) != 1 {
		t.Fatalf("restored checker: vs=%v err=%v", vs, err)
	}
}

// commitWorkload is the benchmark's 32-constraint workload: distinct
// metric windows keep the auxiliary nodes distinct, so the check phase
// has real width to fan out over.
func commitWorkload(constraints int) workload.History {
	h := workload.Uniform(workload.UniformConfig{Steps: 300, Seed: 53, OpsPerTx: 4, Domain: 16})
	h.Constraints = nil
	for i := 0; i < constraints; i++ {
		h.Constraints = append(h.Constraints, workload.ConstraintSpec{
			Name:   fmt.Sprintf("w%03d", i),
			Source: fmt.Sprintf("p(x) -> not once[0,%d] q(x)", 40+i),
		})
	}
	return h
}

// BenchmarkCommit compares the sequential commit pipeline against the
// parallel one on a wide (32-constraint) workload. The parallel leg
// pins a 4-worker pool; the speedup it can show is bounded by
// GOMAXPROCS (on a single-CPU host the two legs time the same
// algorithm plus a few microseconds of pool overhead).
func BenchmarkCommit(b *testing.B) {
	h := commitWorkload(32)
	for _, cfg := range []struct {
		name string
		par  int
	}{{"sequential", 1}, {"parallel", 4}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, err := NewChecker(h.Schema, WithParallelism(cfg.par))
				if err != nil {
					b.Fatal(err)
				}
				for _, cs := range h.Constraints {
					c.MustAddConstraint(cs.Name, cs.Source)
				}
				b.StartTimer()
				for _, s := range h.Steps {
					if _, err := c.inc.Step(s.Time, s.Tx); err != nil {
						b.Fatal(err)
					}
				}
			}
			if len(h.Steps) > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(h.Steps)), "ns/tx")
			}
		})
	}
}
