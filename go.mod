module rtic

go 1.22
