package rtic

import (
	"bytes"
	"strings"
	"testing"
)

func hrSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema().Relation("hire", 1).Relation("fire", 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQuickstartFlow(t *testing.T) {
	for _, mode := range []Mode{Incremental, Naive, ActiveRules} {
		t.Run(mode.String(), func(t *testing.T) {
			c, err := NewChecker(hrSchema(t), WithMode(mode))
			if err != nil {
				t.Fatal(err)
			}
			if err := c.AddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)"); err != nil {
				t.Fatal(err)
			}
			vs, err := c.Begin().Insert("fire", Int(7)).Commit(0)
			if err != nil || len(vs) != 0 {
				t.Fatalf("commit 0: vs=%v err=%v", vs, err)
			}
			vs, err = c.Begin().Delete("fire", Int(7)).Insert("hire", Int(7)).Commit(100)
			if err != nil {
				t.Fatal(err)
			}
			if len(vs) != 1 || !vs[0].Binding[0].Equal(Int(7)) {
				t.Fatalf("violations = %v, want e=7", vs)
			}
			vs, err = c.Begin().Commit(366)
			if err != nil || len(vs) != 0 {
				t.Fatalf("after window: vs=%v err=%v", vs, err)
			}
		})
	}
}

func TestDefaultModeIsIncremental(t *testing.T) {
	c, err := NewChecker(hrSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if c.Mode() != Incremental {
		t.Fatalf("default mode = %v", c.Mode())
	}
}

func TestNilSchema(t *testing.T) {
	if _, err := NewChecker(nil); err == nil {
		t.Fatal("nil schema accepted")
	}
}

func TestUnknownMode(t *testing.T) {
	if _, err := NewChecker(hrSchema(t), WithMode(Mode(99))); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if got := Mode(99).String(); got != "mode(99)" {
		t.Fatalf("Mode(99).String() = %q", got)
	}
}

func TestAddConstraintErrors(t *testing.T) {
	c, _ := NewChecker(hrSchema(t))
	if err := c.AddConstraint("bad syntax", "hire(e)"); err == nil {
		t.Fatal("invalid name accepted")
	}
	if err := c.AddConstraint("c1", "hire("); err == nil {
		t.Fatal("syntax error accepted")
	}
	if err := c.AddConstraint("c1", "nosuch(e)"); err == nil {
		t.Fatal("unknown relation accepted")
	}
	// Denial of "hire(e)" is "not hire(e)": not range-restricted.
	err := c.AddConstraint("c1", "hire(e)")
	if err == nil || !strings.Contains(err.Error(), "range-restricted") {
		t.Fatalf("unsafe constraint: err = %v", err)
	}
	if err := c.AddConstraint("c1", "hire(e) -> not once fire(e)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin().Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint("c2", "hire(e) -> not once fire(e)"); err == nil {
		t.Fatal("constraint after first commit accepted")
	}
	if got := c.Constraints(); len(got) != 1 || got[0] != "c1" {
		t.Fatalf("Constraints = %v", got)
	}
}

func TestMustAddConstraintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c, _ := NewChecker(hrSchema(t))
	c.MustAddConstraint("c", "((")
}

func TestCommitErrors(t *testing.T) {
	c, _ := NewChecker(hrSchema(t))
	if _, err := c.Begin().Insert("nosuch", Int(1)).Commit(1); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := c.Begin().Insert("hire", Int(1), Int(2)).Commit(1); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := c.Begin().Commit(5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin().Commit(5); err == nil {
		t.Fatal("non-increasing timestamp accepted")
	}
}

func TestStats(t *testing.T) {
	c, _ := NewChecker(hrSchema(t))
	c.MustAddConstraint("c", "hire(e) -> not once[0,10] fire(e)")
	if _, err := c.Begin().Insert("fire", Int(1)).Commit(1); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Nodes != 1 || st.Entries == 0 || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Other modes report zeros.
	n, _ := NewChecker(hrSchema(t), WithMode(Naive))
	if got := n.Stats(); got != (Stats{}) {
		t.Fatalf("naive stats = %+v", got)
	}
}

func TestValidateFormula(t *testing.T) {
	c, _ := NewChecker(hrSchema(t))
	vars, err := c.ValidateFormula("hire(e) -> not once fire(e)")
	if err != nil || len(vars) != 1 || vars[0] != "e" {
		t.Fatalf("vars=%v err=%v", vars, err)
	}
	if _, err := c.ValidateFormula("nosuch(x)"); err == nil {
		t.Fatal("invalid formula validated")
	}
}

func TestParseFormula(t *testing.T) {
	got, err := ParseFormula("hire ( e )  ->  not once [ 0 , 365 ] fire(e)")
	if err != nil {
		t.Fatal(err)
	}
	if got != "hire(e) -> not once[0,365] fire(e)" {
		t.Fatalf("canonical form = %q", got)
	}
	if _, err := ParseFormula("(("); err == nil {
		t.Fatal("syntax error accepted")
	}
}

func TestStringValues(t *testing.T) {
	s, _ := NewSchema().Relation("badge", 2).Build()
	c, _ := NewChecker(s)
	c.MustAddConstraint("one_badge", "badge(p, b1) and badge(p, b2) -> b1 = b2")
	if _, err := c.Begin().Insert("badge", Str("ann"), Str("red")).Commit(1); err != nil {
		t.Fatal(err)
	}
	vs, err := c.Begin().Insert("badge", Str("ann"), Str("blue")).Commit(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 { // (red,blue) and (blue,red)
		t.Fatalf("violations = %v, want the two witness orientations", vs)
	}
}

func TestExplainThroughPublicAPI(t *testing.T) {
	c, _ := NewChecker(hrSchema(t))
	c.MustAddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")
	if _, err := c.Begin().Insert("fire", Int(7)).Commit(10); err != nil {
		t.Fatal(err)
	}
	vs, err := c.Begin().Insert("hire", Int(7)).Commit(100)
	if err != nil || len(vs) != 1 {
		t.Fatalf("vs=%v err=%v", vs, err)
	}
	ex, err := c.Explain(vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Evidence) != 1 || ex.Evidence[0].Times[0] != 10 {
		t.Fatalf("explanation = %+v", ex)
	}
	// Other engines refuse.
	n, _ := NewChecker(hrSchema(t), WithMode(Naive))
	if _, err := n.Explain(vs[0]); err == nil {
		t.Fatal("naive mode explained a violation")
	}
}

func TestLastSkipsThroughPublicAPI(t *testing.T) {
	s, err := NewSchema().Relation("hire", 1).Relation("fire", 1).Relation("audit", 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(s)
	c.MustAddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")
	// First commit: no previous answer to reuse, even though the
	// constraint's read set is untouched.
	if _, err := c.Begin().Insert("audit", Int(1)).Commit(1); err != nil {
		t.Fatal(err)
	}
	skips := c.LastSkips()
	if len(skips) != 1 || skips[0].Constraint != "no_quick_rehire" || skips[0].Action == ActionSkipped {
		t.Fatalf("first commit: skips = %v", skips)
	}
	// Second untouched commit: the previous answer is reused.
	if _, err := c.Begin().Insert("audit", Int(2)).Commit(2); err != nil {
		t.Fatal(err)
	}
	if got := c.LastSkips()[0]; got.Action != ActionSkipped {
		t.Fatalf("untouched commit not skipped: %v", got)
	}
	// A write into the read set forces re-evaluation.
	if _, err := c.Begin().Insert("hire", Int(7)).Commit(3); err != nil {
		t.Fatal(err)
	}
	if got := c.LastSkips()[0]; got.Action == ActionSkipped {
		t.Fatalf("constraint skipped although its read set was written: %v", got)
	}
	// Other engines record nothing.
	n, _ := NewChecker(hrSchema(t), WithMode(Naive))
	if got := n.LastSkips(); got != nil {
		t.Fatalf("naive mode reported skips: %v", got)
	}
}

func TestQuery(t *testing.T) {
	for _, mode := range []Mode{Incremental, Naive, ActiveRules} {
		t.Run(mode.String(), func(t *testing.T) {
			c, _ := NewChecker(hrSchema(t), WithMode(mode))
			c.MustAddConstraint("c", "hire(e) -> not once fire(e)")
			if _, err := c.Begin().
				Insert("hire", Int(1)).
				Insert("hire", Int(2)).
				Insert("fire", Int(2)).
				Commit(1); err != nil {
				t.Fatal(err)
			}
			res, err := c.Query("hire(e) and not fire(e)")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Vars) != 1 || res.Vars[0] != "e" {
				t.Fatalf("vars = %v", res.Vars)
			}
			if len(res.Rows) != 1 || !res.Rows[0][0].Equal(Int(1)) {
				t.Fatalf("rows = %v", res.Rows)
			}
		})
	}
}

func TestQueryErrors(t *testing.T) {
	c, _ := NewChecker(hrSchema(t))
	if _, err := c.Query("(("); err == nil {
		t.Fatal("syntax error accepted")
	}
	if _, err := c.Query("nosuch(x)"); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := c.Query("hire(e) and once fire(e)"); err == nil {
		t.Fatal("temporal query accepted")
	}
	if _, err := c.Query("not hire(e)"); err == nil {
		t.Fatal("unsafe query accepted")
	}
}

func TestQueryBeforeFirstCommit(t *testing.T) {
	c, _ := NewChecker(hrSchema(t), WithMode(ActiveRules))
	c.MustAddConstraint("c", "hire(e) -> not once fire(e)")
	res, err := c.Query("hire(e)")
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestSnapshotThroughPublicAPI(t *testing.T) {
	c, _ := NewChecker(hrSchema(t))
	c.MustAddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")
	if _, err := c.Begin().Insert("fire", Int(7)).Commit(10); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreChecker(hrSchema(t), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Constraints(); len(got) != 1 || got[0] != "no_quick_rehire" {
		t.Fatalf("constraints = %v", got)
	}
	vs, err := restored.Begin().Insert("hire", Int(7)).Commit(100)
	if err != nil || len(vs) != 1 {
		t.Fatalf("restored checker: vs=%v err=%v", vs, err)
	}
	// Restored checkers refuse late constraint additions like live ones.
	if err := restored.AddConstraint("late", "hire(e) -> not once fire(e)"); err == nil {
		t.Fatal("late constraint accepted on restored checker")
	}
	// Other modes refuse snapshots.
	n, _ := NewChecker(hrSchema(t), WithMode(Naive))
	if err := n.SaveSnapshot(&buf); err == nil {
		t.Fatal("naive mode snapshotted")
	}
}
