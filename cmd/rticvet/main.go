// Command rticvet is the driver for the engine's custom static
// analyzers (internal/analysis): noalloc, lockorder, errdiscard, and
// metrichygiene — the machine-checked versions of the hot-path, lock,
// and durability invariants documented in docs/ANALYSIS.md.
//
// It speaks go vet's -vettool protocol, so the usual way to run the
// whole suite (tests included in the build graph, facts cached by the
// go tool) is:
//
//	go build -o /tmp/rticvet ./cmd/rticvet
//	go vet -vettool=/tmp/rticvet ./...
//
// Invoked with package patterns instead, it runs standalone over the
// module in the current directory (no go vet orchestration):
//
//	go run ./cmd/rticvet ./...
//
// Exit codes follow go vet: 0 clean, 1 operational error, 2 findings.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"rtic/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	suite := analysis.Suite()
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			// cmd/go asks which flags the tool supports; none.
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasPrefix(args[0], "-V"):
			// The version string keys go vet's result cache: derive it
			// from the binary's own content hash so rebuilding the
			// analyzers invalidates cached results.
			fmt.Fprintf(stdout, "rticvet version %s\n", selfHash())
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return analysis.RunUnit(args[0], suite, stderr)
		}
	}
	// Standalone mode: analyze package patterns in the current module.
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "rticvet: %v\n", err)
		return 1
	}
	root := analysis.FindModuleRoot(wd)
	doc := ""
	if root != "" {
		if _, err := os.Stat(root + "/docs/OBSERVABILITY.md"); err == nil {
			doc = root + "/docs/OBSERVABILITY.md"
		}
	}
	diags, err := analysis.RunDir(wd, analysis.DefaultConfig(doc), suite, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "rticvet: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	return 2
}

// selfHash hashes the executable so cached vet results are keyed to
// this exact build of the analyzers.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "v0-unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "v0-unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "v0-unknown"
	}
	return fmt.Sprintf("v0-%x", h.Sum(nil)[:12])
}
