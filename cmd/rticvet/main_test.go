package main

import (
	"bytes"
	"strings"
	"testing"
)

// The two handshake calls cmd/go makes before handing a -vettool any
// work: flag discovery and the cache-keying version string.
func TestVettoolHandshake(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-flags"}, &out, &errb); rc != 0 {
		t.Fatalf("-flags: rc=%d stderr=%s", rc, errb.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("-flags printed %q, want []", out.String())
	}

	out.Reset()
	if rc := run([]string{"-V=full"}, &out, &errb); rc != 0 {
		t.Fatalf("-V=full: rc=%d stderr=%s", rc, errb.String())
	}
	got := strings.TrimSpace(out.String())
	if !strings.HasPrefix(got, "rticvet version ") || strings.HasSuffix(got, " ") {
		t.Fatalf("-V=full printed %q, want 'rticvet version <id>'", got)
	}
}

func TestUnreadableConfigFails(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"/nonexistent/dir/vet.cfg"}, &out, &errb); rc != 1 {
		t.Fatalf("missing vet.cfg: rc=%d, want 1 (stderr=%s)", rc, errb.String())
	}
}
