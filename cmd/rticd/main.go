// Command rticd runs a network integrity monitor: one shared
// incremental checker, fed transactions over a TCP line protocol.
//
// Usage:
//
//	rticd -spec constraints.rtic [-listen 127.0.0.1:7411]
//	      [-mode incremental] [-parallelism N]
//	      [-snapshot state.snap] [-restore]
//	      [-metrics 127.0.0.1:9411] [-trace]
//
// Protocol (one line per transaction, shared global clock):
//
//	-> @100 -fire(7) +hire(7)
//	<- violation no_quick_rehire violated at state 1 (time 100) by e=7
//	<- ok 1
//	-> stats
//	<- stats nodes=1 entries=1 timestamps=1 bytes=93
//	-> metrics
//	<- ... Prometheus text exposition ...
//	<- # EOF
//	-> quit
//
// With -snapshot the monitor checkpoints its (small, bounded) state to
// the given file on shutdown; -restore starts from that checkpoint
// instead of an empty history. Shutdown triggers on SIGINT or SIGTERM,
// so the checkpoint is also written under container/systemd stops.
//
// With -metrics the daemon serves HTTP on the given address:
//
//	GET /metrics  -> Prometheus text exposition (commits, violations by
//	                 constraint, commit-latency histogram, auxiliary
//	                 encoding gauges, connection counters)
//	GET /healthz  -> {"status":"ok","states":N,"now":T}
//
// Engine metrics are always collected (the line-protocol "metrics"
// command scrapes them without the HTTP listener); -metrics only
// controls the HTTP endpoint. With -trace every engine operation
// (parse, step, per-node update, constraint check, snapshot
// save/restore) is logged as a structured line on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"strings"

	"rtic"
	"rtic/internal/monitor"
	"rtic/internal/obs"
	"rtic/internal/spec"
)

type options struct {
	specPath    string
	listen      string
	mode        string
	parallelism int
	snapPath    string
	restore     bool
	metricsAddr string
	trace       bool
}

func main() {
	var opts options
	flag.StringVar(&opts.specPath, "spec", "", "spec file with relations and constraints (required)")
	flag.StringVar(&opts.listen, "listen", "127.0.0.1:7411", "TCP listen address")
	flag.StringVar(&opts.mode, "mode", "incremental",
		"checking engine ("+strings.Join(rtic.ModeNames(), ", ")+")")
	flag.IntVar(&opts.parallelism, "parallelism", 0,
		"commit-pipeline worker-pool width (1 = sequential, <=0 = GOMAXPROCS; incremental engine only)")
	flag.StringVar(&opts.snapPath, "snapshot", "", "checkpoint file written on shutdown")
	flag.BoolVar(&opts.restore, "restore", false, "start from the -snapshot checkpoint")
	flag.StringVar(&opts.metricsAddr, "metrics", "", "HTTP listen address for /metrics and /healthz (empty: disabled)")
	flag.BoolVar(&opts.trace, "trace", false, "log engine trace events (structured, stderr)")
	flag.Parse()

	d, err := start(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rticd:", err)
		os.Exit(1)
	}

	// SIGTERM is what containers and systemd send; without it the
	// shutdown snapshot would only be written on Ctrl-C.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("rticd: received %s, shutting down\n", s)
	case err := <-d.done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "rticd:", err)
			os.Exit(1)
		}
	}
	if err := d.shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "rticd:", err)
		os.Exit(1)
	}
}

// daemon holds the running pieces so tests can drive a full lifecycle
// without signals.
type daemon struct {
	opts options
	m    *monitor.Monitor
	srv  *monitor.Server
	l    net.Listener
	hl   net.Listener // nil without -metrics
	hsrv *http.Server
	done chan error
}

// start loads the spec, builds (or restores) the monitor with its
// observer, and brings up the TCP server plus the optional HTTP
// metrics listener.
func start(opts options) (*daemon, error) {
	if opts.specPath == "" {
		return nil, fmt.Errorf("-spec is required")
	}
	f, err := os.Open(opts.specPath)
	if err != nil {
		return nil, err
	}
	sp, err := spec.ParseSpec(f)
	f.Close()
	if err != nil {
		return nil, err
	}

	// Metrics are always collected — the line protocol's "metrics"
	// command and the snapshot path use them — the HTTP listener is the
	// only optional part.
	o := &obs.Observer{Metrics: obs.NewMetrics(obs.NewRegistry())}
	if opts.trace {
		o.Tracer = obs.NewSlogTracer(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
			Level: slog.LevelDebug,
		})))
	}

	if opts.mode == "" {
		opts.mode = "incremental"
	}
	mode, err := rtic.ParseMode(opts.mode)
	if err != nil {
		return nil, err
	}

	var m *monitor.Monitor
	if opts.restore {
		if opts.snapPath == "" {
			return nil, fmt.Errorf("-restore requires -snapshot")
		}
		if mode != rtic.Incremental {
			return nil, fmt.Errorf("-restore requires -mode incremental (snapshots restore the incremental engine)")
		}
		sf, err := os.Open(opts.snapPath)
		if err != nil {
			return nil, err
		}
		m, err = monitor.RestoreObserved(sp.Schema, sf, o,
			monitor.WithParallelism(opts.parallelism))
		sf.Close()
		if err != nil {
			return nil, err
		}
		fmt.Printf("restored checkpoint: %d states, t=%d\n", m.Len(), m.Now())
	} else {
		m, err = monitor.New(sp.Schema, sp.Constraints,
			monitor.WithMode(mode), monitor.WithParallelism(opts.parallelism))
		if err != nil {
			return nil, err
		}
		m.SetObserver(o)
	}
	if mode != rtic.Incremental && opts.snapPath != "" {
		return nil, fmt.Errorf("-snapshot requires -mode incremental (only the incremental engine checkpoints)")
	}

	l, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return nil, err
	}
	d := &daemon{opts: opts, m: m, l: l, srv: monitor.NewServer(m), done: make(chan error, 1)}

	if opts.metricsAddr != "" {
		hl, err := net.Listen("tcp", opts.metricsAddr)
		if err != nil {
			l.Close()
			return nil, err
		}
		mux := http.NewServeMux()
		reg := o.Metrics.Registry()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{
				"status": "ok",
				"states": m.Len(),
				"now":    m.Now(),
			})
		})
		d.hl = hl
		d.hsrv = &http.Server{Handler: mux}
		go d.hsrv.Serve(hl) //nolint:errcheck — returns on Close
		fmt.Printf("rticd metrics on http://%s/metrics\n", hl.Addr())
	}

	go func() { d.done <- d.srv.Serve(l) }()
	fmt.Printf("rticd listening on %s (%d constraints)\n", l.Addr(), len(sp.Constraints))
	return d, nil
}

// shutdown stops both listeners, closes open connections, and writes
// the checkpoint when -snapshot is set.
func (d *daemon) shutdown() error {
	d.l.Close()
	d.srv.Close()
	if d.hsrv != nil {
		d.hsrv.Close()
	}

	if d.opts.snapPath != "" {
		sf, err := os.Create(d.opts.snapPath)
		if err != nil {
			return err
		}
		err = d.m.Snapshot(sf)
		if cerr := sf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s (%d states)\n", d.opts.snapPath, d.m.Len())
	}
	return nil
}
