// Command rticd runs a network integrity monitor: one shared
// incremental checker, fed transactions over a TCP line protocol.
//
// Usage:
//
//	rticd -spec constraints.rtic [-listen 127.0.0.1:7411]
//	      [-snapshot state.snap] [-restore]
//
// Protocol (one line per transaction, shared global clock):
//
//	-> @100 -fire(7) +hire(7)
//	<- violation no_quick_rehire violated at state 1 (time 100) by e=7
//	<- ok 1
//	-> stats
//	<- stats nodes=1 entries=1 timestamps=1 bytes=93
//	-> quit
//
// With -snapshot the monitor checkpoints its (small, bounded) state to
// the given file on shutdown; -restore starts from that checkpoint
// instead of an empty history.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"

	"rtic/internal/monitor"
	"rtic/internal/spec"
)

func main() {
	specPath := flag.String("spec", "", "spec file with relations and constraints (required)")
	listen := flag.String("listen", "127.0.0.1:7411", "TCP listen address")
	snapPath := flag.String("snapshot", "", "checkpoint file written on shutdown")
	restore := flag.Bool("restore", false, "start from the -snapshot checkpoint")
	flag.Parse()

	if err := run(*specPath, *listen, *snapPath, *restore); err != nil {
		fmt.Fprintln(os.Stderr, "rticd:", err)
		os.Exit(1)
	}
}

func run(specPath, listen, snapPath string, restore bool) error {
	if specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	f, err := os.Open(specPath)
	if err != nil {
		return err
	}
	sp, err := spec.ParseSpec(f)
	f.Close()
	if err != nil {
		return err
	}

	var m *monitor.Monitor
	if restore {
		if snapPath == "" {
			return fmt.Errorf("-restore requires -snapshot")
		}
		sf, err := os.Open(snapPath)
		if err != nil {
			return err
		}
		m, err = monitor.Restore(sp.Schema, sf)
		sf.Close()
		if err != nil {
			return err
		}
		fmt.Printf("restored checkpoint: %d states, t=%d\n", m.Len(), m.Now())
	} else {
		m, err = monitor.New(sp.Schema, sp.Constraints)
		if err != nil {
			return err
		}
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	srv := monitor.NewServer(m)
	fmt.Printf("rticd listening on %s (%d constraints)\n", l.Addr(), len(sp.Constraints))

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case <-sig:
	case err := <-done:
		if err != nil {
			return err
		}
	}
	l.Close()
	srv.Close()

	if snapPath != "" {
		sf, err := os.Create(snapPath)
		if err != nil {
			return err
		}
		err = m.Snapshot(sf)
		if cerr := sf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s (%d states)\n", snapPath, m.Len())
	}
	return nil
}
