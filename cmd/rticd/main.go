// Command rticd runs a network integrity monitor: one shared
// incremental checker, fed transactions over a TCP line protocol.
//
// Usage:
//
//	rticd -spec constraints.rtic [-listen 127.0.0.1:7411]
//	      [-mode incremental] [-parallelism N] [-shards N]
//	      [-snapshot state.snap] [-restore]
//	      [-wal state.wal] [-wal-sync always|batch]
//	      [-checkpoint-interval 30s]
//	      [-on-durability-failure degrade|halt]
//	      [-max-conns N] [-idle-timeout 5m]
//	      [-metrics 127.0.0.1:9411] [-trace]
//	      [-pprof] [-slow-commit 5ms] [-trace-out trace.json]
//
// Protocol (one line per transaction, shared global clock):
//
//	-> @100 -fire(7) +hire(7)
//	<- violation no_quick_rehire violated at state 1 (time 100) by e=7
//	<- ok 1
//	-> stats
//	<- stats nodes=1 entries=1 timestamps=1 bytes=93
//	-> metrics
//	<- ... Prometheus text exposition ...
//	<- # EOF
//	-> quit
//
// With -snapshot the monitor checkpoints its (small, bounded) state to
// the given file on shutdown — atomically (tmp + fsync + rename), so a
// crash mid-checkpoint never destroys the previous good checkpoint —
// and, with -checkpoint-interval, periodically in the background;
// -restore starts from that checkpoint instead of an empty history.
// Shutdown triggers on SIGINT or SIGTERM, so the checkpoint is also
// written under container/systemd stops.
//
// With -wal every committed transaction is journaled to a checksummed
// write-ahead log before the next commit is accepted (-wal-sync selects
// per-commit fsync or batched flushing), and startup recovers crash
// state automatically: load the newest valid checkpoint, replay the
// journal tail (tolerating a torn final record), continue. Periodic
// checkpoints truncate the replayed journal prefix. See
// docs/DURABILITY.md for the format and recovery semantics.
//
// -on-durability-failure selects what happens when journaling fails at
// runtime (disk full, I/O error, failed fsync). The default, degrade,
// keeps the daemon checking and acknowledging commits — as non-durable
// — while /healthz reports "degraded", rtic_durability_degraded flips
// to 1, and a background re-arm loop (exponential backoff with jitter)
// retries restoring durability: transient failures are healed by
// draining the buffered backlog into the journal; a broken journal is
// replaced by a fresh segment behind an atomic checkpoint that covers
// the degraded window. halt shuts the daemon down on the first
// durability failure instead. See docs/DURABILITY.md for the failure
// matrix.
//
// With -shards N the monitor hash-partitions its state across N shard
// engines behind a router (see docs/ARCHITECTURE.md): per-shard commits
// run concurrently and results stay exact. Sharded daemons journal to
// one WAL per shard at <path>.0 .. <path>.N-1 and recover the journals'
// common prefix on startup; -snapshot and -restore are rejected (the
// sharded engine does not checkpoint).
//
// With -metrics the daemon serves HTTP on the given address:
//
//	GET /metrics  -> Prometheus text exposition (commits, violations by
//	                 constraint, commit-latency histogram, auxiliary
//	                 encoding gauges, connection counters)
//	GET /healthz  -> {"status":"ok","states":N,"now":T,...} with a
//	                 "lint" section summarizing the startup findings
//
// At startup the daemon lints the spec (see docs/LINTING.md): every
// finding is logged, counted in rtic_lint_warnings_total and
// rtic_lint_findings_total{rule=...}, and summarized under /healthz.
// Findings never stop the daemon — the constraints parsed and compiled
// — but an Error-severity finding (contradiction, unsatisfiable
// window) means some constraint cannot behave as written. Clients can
// also retrieve the findings over the line protocol with "lint".
//
// Engine metrics are always collected (the line-protocol "metrics"
// command scrapes them without the HTTP listener); -metrics only
// controls the HTTP endpoint. With -trace every engine operation
// (parse, step, per-node update, constraint check, snapshot
// save/restore) is logged as a structured line on stderr.
//
// Three commit-path attribution switches (see docs/OBSERVABILITY.md):
// -pprof mounts net/http/pprof under /debug/pprof/ on the -metrics
// listener (block and mutex profiling enabled); -slow-commit logs the
// full span tree of every commit slower than the threshold to stderr;
// -trace-out records every commit's span tree and writes a Chrome
// trace-event file at shutdown, loadable in chrome://tracing or
// Perfetto.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"strings"

	"rtic"
	"rtic/internal/lint"
	"rtic/internal/monitor"
	"rtic/internal/obs"
	"rtic/internal/spec"
	"rtic/internal/vfs"
	"rtic/internal/wal"
)

type options struct {
	specPath     string
	listen       string
	mode         string
	parallelism  int
	shards       int
	snapPath     string
	restore      bool
	walPath      string
	walSync      string
	ckptInterval time.Duration
	onDurFailure string
	maxConns     int
	idleTimeout  time.Duration
	metricsAddr  string
	trace        bool
	pprof        bool
	slowCommit   time.Duration
	traceOut     string

	// fsys lets tests inject a fault filesystem under the durability
	// paths (WAL, checkpoints); nil means the real filesystem.
	fsys vfs.FS
}

func main() {
	var opts options
	flag.StringVar(&opts.specPath, "spec", "", "spec file with relations and constraints (required)")
	flag.StringVar(&opts.listen, "listen", "127.0.0.1:7411", "TCP listen address")
	flag.StringVar(&opts.mode, "mode", "incremental",
		"checking engine ("+strings.Join(rtic.ModeNames(), ", ")+")")
	flag.IntVar(&opts.parallelism, "parallelism", 0,
		"commit-pipeline worker-pool width (1 = sequential, <=0 = GOMAXPROCS; incremental engine only)")
	flag.IntVar(&opts.shards, "shards", 1,
		"hash-partition state across N shard engines checked concurrently (1 = unsharded; journals to one -wal file per shard)")
	flag.StringVar(&opts.snapPath, "snapshot", "", "checkpoint file, written atomically on shutdown (and periodically with -checkpoint-interval)")
	flag.BoolVar(&opts.restore, "restore", false, "start from the -snapshot checkpoint")
	flag.StringVar(&opts.walPath, "wal", "", "write-ahead log journaling every commit; startup recovers checkpoint + WAL tail automatically")
	flag.StringVar(&opts.walSync, "wal-sync", "always", "WAL sync policy: always (fsync per commit) or batch (background flush)")
	flag.DurationVar(&opts.ckptInterval, "checkpoint-interval", 0, "background checkpoint period truncating the WAL (0 = checkpoint only on shutdown)")
	flag.StringVar(&opts.onDurFailure, "on-durability-failure", "degrade",
		"journaling-failure policy: degrade (keep serving non-durably, re-arm in the background) or halt (shut down)")
	flag.IntVar(&opts.maxConns, "max-conns", 0, "cap on concurrently open line-protocol connections (0 = unlimited)")
	flag.DurationVar(&opts.idleTimeout, "idle-timeout", 0, "close line-protocol connections idle for this long (0 = never)")
	flag.StringVar(&opts.metricsAddr, "metrics", "", "HTTP listen address for /metrics and /healthz (empty: disabled)")
	flag.BoolVar(&opts.trace, "trace", false, "log engine trace events (structured, stderr)")
	flag.BoolVar(&opts.pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/ on the -metrics listener (enables block and mutex profiling)")
	flag.DurationVar(&opts.slowCommit, "slow-commit", 0, "log the span tree of commits slower than this (0 = disabled)")
	flag.StringVar(&opts.traceOut, "trace-out", "", "record commit span trees and write Chrome trace-event JSON here at shutdown")
	flag.Parse()

	d, err := start(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rticd:", err)
		os.Exit(1)
	}

	// SIGTERM is what containers and systemd send; without it the
	// shutdown snapshot would only be written on Ctrl-C.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("rticd: received %s, shutting down\n", s)
	case err := <-d.done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "rticd:", err)
			os.Exit(1)
		}
	}
	if err := d.shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "rticd:", err)
		os.Exit(1)
	}
}

// daemon holds the running pieces so tests can drive a full lifecycle
// without signals.
type daemon struct {
	opts  options
	m     *monitor.Monitor
	srv   *monitor.Server
	dur   *monitor.Durable        // nil without -wal or -checkpoint-interval
	sdur  *monitor.ShardedDurable // nil unless -shards with -wal
	wlog  *wal.Log                // nil without -wal
	wlogs []*wal.Log              // per-shard journals, nil unless -shards with -wal
	l     net.Listener
	hl    net.Listener // nil without -metrics
	hsrv  *http.Server
	diags []lint.Diagnostic // startup lint findings over the spec
	rec   *obs.SpanRecorder // nil without -trace-out
	fsys  vfs.FS
	done  chan error
}

// lintSummary condenses the startup findings for /healthz.
func lintSummary(diags []lint.Diagnostic) map[string]any {
	var errs, warns int
	rules := map[string]int{}
	for _, d := range diags {
		switch d.Severity {
		case lint.Error:
			errs++
		case lint.Warning:
			warns++
		}
		rules[d.Rule]++
	}
	s := map[string]any{
		"findings": len(diags),
		"errors":   errs,
		"warnings": warns,
	}
	if len(rules) > 0 {
		s["rules"] = rules
	}
	return s
}

// start loads the spec, builds (or restores) the monitor with its
// observer, and brings up the TCP server plus the optional HTTP
// metrics listener.
func start(opts options) (*daemon, error) {
	if opts.specPath == "" {
		return nil, fmt.Errorf("-spec is required")
	}
	f, err := os.Open(opts.specPath)
	if err != nil {
		return nil, err
	}
	sp, err := spec.ParseSpec(f)
	f.Close()
	if err != nil {
		return nil, err
	}

	// Metrics are always collected — the line protocol's "metrics"
	// command and the snapshot path use them — the HTTP listener is the
	// only optional part.
	o := &obs.Observer{Metrics: obs.NewMetrics(obs.NewRegistry())}
	o.Metrics.BuildInfo.With(runtime.Version(), buildRev()).Set(1)
	if opts.trace {
		o.Tracer = obs.NewSlogTracer(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
			Level: slog.LevelDebug,
		})))
	}

	// Span sinks: an in-memory ring for -trace-out (exported as a Chrome
	// trace at shutdown) and a slow-commit logger. Both see every commit
	// span the engine, monitor, and WAL emit.
	var rec *obs.SpanRecorder
	var sinks []obs.SpanSink
	if opts.traceOut != "" {
		rec = obs.NewSpanRecorder(0)
		sinks = append(sinks, rec)
	}
	if opts.slowCommit > 0 {
		sinks = append(sinks, obs.NewSlowSpanLogger(opts.slowCommit, func(s string) {
			fmt.Fprintln(os.Stderr, s)
		}))
	}
	o.Spans = obs.MultiSpanSink(sinks...)

	if opts.mode == "" {
		opts.mode = "incremental"
	}
	if opts.walSync == "" {
		opts.walSync = "always"
	}
	if opts.onDurFailure == "" {
		opts.onDurFailure = "degrade"
	}
	fsys := opts.fsys
	if fsys == nil {
		fsys = vfs.OS
	}
	mode, err := rtic.ParseMode(opts.mode)
	if err != nil {
		return nil, err
	}
	fpol, err := monitor.ParseFailurePolicy(opts.onDurFailure)
	if err != nil {
		return nil, err
	}

	if mode != rtic.Incremental && (opts.snapPath != "" || opts.walPath != "") {
		return nil, fmt.Errorf("-snapshot and -wal require -mode incremental (only the incremental engine is durable)")
	}
	if opts.ckptInterval < 0 {
		return nil, fmt.Errorf("-checkpoint-interval must not be negative, got %v", opts.ckptInterval)
	}
	if opts.ckptInterval > 0 && opts.ckptInterval < time.Millisecond {
		return nil, fmt.Errorf("-checkpoint-interval %v is below the 1ms floor (0 disables periodic checkpoints)", opts.ckptInterval)
	}
	if opts.ckptInterval > 0 && opts.snapPath == "" {
		return nil, fmt.Errorf("-checkpoint-interval requires -snapshot")
	}
	if opts.maxConns < 0 {
		return nil, fmt.Errorf("-max-conns must not be negative, got %d", opts.maxConns)
	}
	if opts.idleTimeout < 0 {
		return nil, fmt.Errorf("-idle-timeout must not be negative, got %v", opts.idleTimeout)
	}
	if opts.pprof && opts.metricsAddr == "" {
		return nil, fmt.Errorf("-pprof requires -metrics (pprof serves on the metrics listener)")
	}
	if opts.shards > 1 && (opts.snapPath != "" || opts.restore) {
		return nil, fmt.Errorf("-snapshot and -restore are not available with -shards (sharded durability is per-shard WALs; use -wal)")
	}
	// Catch a mistyped durability path at startup instead of failing the
	// first append or checkpoint at runtime.
	for _, p := range []struct{ flag, path string }{{"-wal", opts.walPath}, {"-snapshot", opts.snapPath}} {
		if p.path == "" {
			continue
		}
		dir := filepath.Dir(p.path)
		st, err := fsys.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("%s %s: parent directory %s does not exist", p.flag, p.path, dir)
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("%s %s: parent %s is not a directory", p.flag, p.path, dir)
		}
	}

	// -wal implies recovery: load the newest valid checkpoint if one
	// exists, then replay the journal tail. Plain -restore keeps its
	// strict behavior (the checkpoint file must exist).
	snapExists := false
	if opts.snapPath != "" {
		if _, err := fsys.Stat(opts.snapPath); err == nil {
			snapExists = true
		}
	}
	var m *monitor.Monitor
	switch {
	case opts.restore && opts.snapPath == "":
		return nil, fmt.Errorf("-restore requires -snapshot")
	case opts.restore && mode != rtic.Incremental:
		return nil, fmt.Errorf("-restore requires -mode incremental (snapshots restore the incremental engine)")
	case (opts.restore || opts.walPath != "") && snapExists:
		sf, err := fsys.OpenFile(opts.snapPath, os.O_RDONLY, 0)
		if err != nil {
			return nil, err
		}
		m, err = monitor.RestoreObserved(sp.Schema, sf, o,
			monitor.WithParallelism(opts.parallelism))
		sf.Close()
		if err != nil {
			return nil, err
		}
		fmt.Printf("restored checkpoint: %d states, t=%d\n", m.Len(), m.Now())
	case opts.restore && opts.walPath == "":
		_, err := fsys.OpenFile(opts.snapPath, os.O_RDONLY, 0) // surface the underlying error
		return nil, err
	default:
		m, err = monitor.New(sp.Schema, sp.Constraints,
			monitor.WithMode(mode), monitor.WithParallelism(opts.parallelism),
			monitor.WithShards(opts.shards))
		if err != nil {
			return nil, err
		}
		m.SetObserver(o)
	}
	if rtr := m.Router(); rtr != nil {
		global := 0
		for _, cp := range rtr.Plan().Cons {
			if !cp.Partitioned {
				global++
			}
		}
		fmt.Printf("sharding across %d engines (%d of %d constraints on the global shard)\n",
			rtr.Shards(), global, len(sp.Constraints))
	}

	// Lint the spec at startup: log every finding and feed the lint
	// counters. The restored path installs the snapshot's constraints,
	// but the operator's spec file is what the report is about.
	diags := lint.Constraints(sp.Constraints, sp.Schema, lint.Options{})
	for _, dg := range diags {
		fmt.Printf("lint: %s\n", dg.String())
		o.Metrics.LintFindings.With(dg.Rule).Inc()
		if dg.Severity >= lint.Warning {
			o.Metrics.LintWarnings.Inc()
		}
	}
	if n := len(diags); n > 0 {
		fmt.Printf("lint: %d finding(s) in %s (run `rtic lint -spec %s` for details)\n",
			n, opts.specPath, opts.specPath)
	}

	// done is created before the durability layer so the halt policy can
	// signal the main loop; the send never blocks (capacity 1, and only
	// the first failure matters).
	done := make(chan error, 1)
	halt := func(err error) {
		select {
		case done <- fmt.Errorf("durability failure (-on-durability-failure=halt): %w", err):
		default:
		}
	}
	durOpts := []monitor.DurableOption{
		monitor.WithFailurePolicy(fpol),
		monitor.WithHaltFunc(halt),
		monitor.WithDurableFS(fsys),
	}

	var wlog *wal.Log
	var wlogs []*wal.Log
	var dur *monitor.Durable
	var sdur *monitor.ShardedDurable
	switch {
	case opts.walPath != "" && opts.shards > 1:
		// One journal per shard: <path>.0 .. <path>.N-1. Recovery replays
		// the journals' common prefix and truncates torn tails, so a crash
		// that journaled a commit on only some shards loses exactly that
		// commit and nothing else.
		pol, err := wal.ParseSyncPolicy(opts.walSync)
		if err != nil {
			return nil, err
		}
		closeAll := func() {
			for _, l := range wlogs {
				l.Close()
			}
		}
		for i := 0; i < opts.shards; i++ {
			path := fmt.Sprintf("%s.%d", opts.walPath, i)
			l, err := wal.Open(path, wal.WithSyncPolicy(pol), wal.WithMetrics(o.Metrics), wal.WithSpans(o.Spans), wal.WithFS(fsys))
			if err != nil {
				closeAll()
				return nil, err
			}
			if off, torn := l.TornTail(); torn {
				fmt.Printf("wal: truncated torn final record at byte %d of %s\n", off, path)
			}
			wlogs = append(wlogs, l)
		}
		sdur, err = monitor.NewShardedDurable(m, wlogs, durOpts...)
		if err != nil {
			closeAll()
			return nil, err
		}
		n, err := sdur.Recover()
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("wal recovery: %w", err)
		}
		if n > 0 {
			fmt.Printf("replayed %d transactions from %d shard journals (now %d states, t=%d)\n",
				n, opts.shards, m.Len(), m.Now())
		}
		sdur.Attach()
	case opts.walPath != "":
		pol, err := wal.ParseSyncPolicy(opts.walSync)
		if err != nil {
			return nil, err
		}
		openWAL := func(path string) (*wal.Log, error) {
			return wal.Open(path, wal.WithSyncPolicy(pol), wal.WithMetrics(o.Metrics), wal.WithSpans(o.Spans), wal.WithFS(fsys))
		}
		wlog, err = openWAL(opts.walPath)
		if err != nil {
			return nil, err
		}
		// The factory hands the re-arm loop fresh segments with the same
		// sync policy and instrumentation as the original journal.
		dur, err = monitor.NewDurable(m, wlog, opts.snapPath,
			append(durOpts, monitor.WithLogFactory(openWAL))...)
		if err != nil {
			wlog.Close()
			return nil, err
		}
		if off, torn := wlog.TornTail(); torn {
			fmt.Printf("wal: truncated torn final record at byte %d of %s\n", off, opts.walPath)
		}
		n, err := dur.Recover()
		if err != nil {
			wlog.Close()
			return nil, fmt.Errorf("wal recovery: %w", err)
		}
		if n > 0 {
			fmt.Printf("replayed %d transactions from %s (now %d states, t=%d)\n",
				n, opts.walPath, m.Len(), m.Now())
		}
		dur.Attach()
	case opts.ckptInterval > 0:
		dur, err = monitor.NewDurable(m, nil, opts.snapPath, durOpts...)
		if err != nil {
			return nil, err
		}
	}
	if dur != nil {
		dur.Start(opts.ckptInterval)
	}

	l, err := net.Listen("tcp", opts.listen)
	if err != nil {
		if wlog != nil {
			wlog.Close()
		}
		for _, sl := range wlogs {
			sl.Close()
		}
		return nil, err
	}
	srv := monitor.NewServer(m,
		monitor.WithMaxConns(opts.maxConns), monitor.WithIdleTimeout(opts.idleTimeout))
	d := &daemon{opts: opts, m: m, l: l, srv: srv, dur: dur, sdur: sdur, wlog: wlog, wlogs: wlogs, diags: diags, rec: rec, fsys: fsys, done: done}

	if opts.metricsAddr != "" {
		hl, err := net.Listen("tcp", opts.metricsAddr)
		if err != nil {
			l.Close()
			return nil, err
		}
		mux := http.NewServeMux()
		reg := o.Metrics.Registry()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			resp := map[string]any{
				"status": "ok",
				"states": m.Len(),
				"now":    m.Now(),
				"lint":   lintSummary(d.diags),
			}
			if s := m.Shards(); s > 1 {
				resp["shards"] = s
			}
			var dh *monitor.DurabilityHealth
			switch {
			case d.dur != nil:
				h := d.dur.Health()
				dh = &h
			case d.sdur != nil:
				h := d.sdur.Health()
				dh = &h
			}
			if dh != nil {
				resp["durability"] = *dh
				if dh.Status != "ok" {
					// Orchestrators watch the top-level status: commits
					// still serve, but they are no longer durable.
					resp["status"] = "degraded"
				}
			}
			_ = json.NewEncoder(w).Encode(resp)
		})
		if opts.pprof {
			// Block and mutex profiles are empty unless sampling is on;
			// these rates are cheap enough to leave running (one block
			// event per millisecond blocked, 1-in-5 mutex contentions).
			runtime.SetBlockProfileRate(1_000_000)
			runtime.SetMutexProfileFraction(5)
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			fmt.Printf("rticd pprof on http://%s/debug/pprof/\n", hl.Addr())
		}
		d.hl = hl
		d.hsrv = &http.Server{Handler: mux}
		go d.hsrv.Serve(hl) //nolint:errcheck — returns on Close
		fmt.Printf("rticd metrics on http://%s/metrics\n", hl.Addr())
	}

	go func() { d.done <- d.srv.Serve(l) }()
	fmt.Printf("rticd listening on %s (%d constraints)\n", l.Addr(), len(sp.Constraints))
	return d, nil
}

// shutdown stops both listeners, closes open connections, and writes a
// final atomic checkpoint when -snapshot is set. The checkpoint goes to
// a temp file first and is renamed into place, so even a crash here
// cannot destroy the previous good checkpoint.
func (d *daemon) shutdown() error {
	d.l.Close()
	d.srv.Close()
	if d.hsrv != nil {
		d.hsrv.Close()
	}

	var err error
	if d.dur != nil {
		d.dur.Stop()
		if d.opts.snapPath != "" {
			if err = d.dur.Checkpoint(); err == nil {
				fmt.Printf("checkpoint written to %s (%d states)\n", d.opts.snapPath, d.m.Len())
			}
		}
	} else if d.opts.snapPath != "" {
		if err = wal.WriteFileAtomicFS(d.fsys, d.opts.snapPath, d.m.Snapshot); err == nil {
			fmt.Printf("checkpoint written to %s (%d states)\n", d.opts.snapPath, d.m.Len())
		}
	}
	if d.sdur != nil {
		d.sdur.Stop()
	}
	if d.wlog != nil {
		// Close through the manager: a fresh-segment re-arm may have
		// swapped the live journal since startup.
		cerr := d.dur.CloseLog()
		if err == nil {
			err = cerr
		}
	}
	for _, l := range d.wlogs {
		if cerr := l.Close(); err == nil {
			err = cerr
		}
	}
	if d.rec != nil {
		if terr := writeChromeTrace(d.opts.traceOut, d.rec); terr != nil {
			if err == nil {
				err = terr
			}
		} else {
			fmt.Printf("trace written to %s (%d commit spans)\n", d.opts.traceOut, d.rec.Len())
		}
	}
	return err
}

// writeChromeTrace dumps the recorded span trees as a Chrome
// trace-event file.
func writeChromeTrace(path string, rec *obs.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, rec.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// buildRev is the VCS revision stamped into the binary by go build, or
// "unknown" under plain `go run` / test binaries.
func buildRev() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "unknown"
}
