package main

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rtic/internal/wal"
)

// TestDaemonShardedMatchesUnsharded runs the same trace through an
// unsharded daemon and a -shards 3 daemon: protocol replies must be
// identical line for line.
func TestDaemonShardedMatchesUnsharded(t *testing.T) {
	trace := rehireTrace(20)

	ref, err := start(options{
		specPath: writeSpec(t, t.TempDir(), "hr.rtic", hrSpec),
		listen:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.shutdown()
	refC := dialLine(t, ref)

	sh, err := start(options{
		specPath: writeSpec(t, t.TempDir(), "hr.rtic", hrSpec),
		listen:   "127.0.0.1:0",
		shards:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.shutdown()
	shC := dialLine(t, sh)

	for i, line := range trace {
		want := refC.commit(t, line)
		if got := shC.commit(t, line); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: sharded replies %q, want %q", i, got, want)
		}
	}
}

// TestDaemonShardedWALTruncationSweep is the sharded kill-and-recover
// acceptance test: a -shards 3 daemon journals a trace to three shard
// WALs and crashes; the sweep then tears every shard subset's final
// record at several byte offsets and restarts against the mutilated
// journals. Every restart must recover the journals' common prefix —
// the full trace minus the one commit whose journaling tore — land on
// a consistent global state, and finish the workload with replies
// matching an uninterrupted daemon.
func TestDaemonShardedWALTruncationSweep(t *testing.T) {
	const shards = 3
	trace := rehireTrace(8)
	last := len(trace) - 1

	// Reference replies from an uninterrupted unsharded daemon.
	ref, err := start(options{
		specPath: writeSpec(t, t.TempDir(), "hr.rtic", hrSpec),
		listen:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.shutdown()
	refC := dialLine(t, ref)
	var want [][]string
	for _, line := range trace {
		want = append(want, refC.commit(t, line))
	}

	// Crash a sharded durable daemon after the full trace.
	dir := t.TempDir()
	spec := writeSpec(t, dir, "hr.rtic", hrSpec)
	walPath := filepath.Join(dir, "state.wal")
	d, err := start(options{specPath: spec, listen: "127.0.0.1:0", shards: shards, walPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	c := dialLine(t, d)
	for i, line := range trace {
		if got := c.commit(t, line); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("sharded step %d: replies %q, want %q", i, got, want[i])
		}
	}
	d.crash()

	// Per-shard raw bytes and final-record offsets of the intact journals.
	raws := make([][]byte, shards)
	lastStarts := make([]int, shards)
	for i := 0; i < shards; i++ {
		path := fmt.Sprintf("%s.%d", walPath, i)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
		var lastPayload int
		l, err := wal.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		n, err := l.Replay(func(p []byte) error { lastPayload = len(p); return nil })
		l.Close()
		if err != nil || n != len(trace) {
			t.Fatalf("shard %d journal replays %d records (err %v), want %d", i, n, err, len(trace))
		}
		lastStarts[i] = len(raw) - (8 + lastPayload) // 4-byte length + 4-byte CRC32C
	}

	// cuts maps a tear kind to a byte offset within shard i's final record.
	cuts := func(i, kind int) int {
		switch kind {
		case 0:
			return lastStarts[i] // record fully gone
		case 1:
			return lastStarts[i] + 5 // torn mid-frame-header
		default:
			return len(raws[i]) - 1 // torn in the last payload byte
		}
	}

	for mask := 1; mask < 1<<shards; mask++ { // every nonempty torn subset
		for kind := 0; kind < 3; kind++ {
			caseDir := t.TempDir()
			caseWal := filepath.Join(caseDir, "state.wal")
			for i := 0; i < shards; i++ {
				raw := raws[i]
				if mask&(1<<i) != 0 {
					raw = raw[:cuts(i, kind)]
				}
				if err := os.WriteFile(fmt.Sprintf("%s.%d", caseWal, i), raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			r, err := start(options{specPath: spec, listen: "127.0.0.1:0", shards: shards, walPath: caseWal})
			if err != nil {
				t.Fatalf("mask=%b kind=%d: recovery failed: %v", mask, kind, err)
			}
			if r.m.Len() != last {
				t.Errorf("mask=%b kind=%d: recovered %d states, want %d", mask, kind, r.m.Len(), last)
			}
			// The torn commit is lost; re-submitting it must yield the
			// reference replies, proving the recovered state is the same
			// consistent prefix every time.
			rc := dialLine(t, r)
			if got := rc.commit(t, trace[last]); !reflect.DeepEqual(got, want[last]) {
				t.Errorf("mask=%b kind=%d: re-commit replies %q, want %q", mask, kind, got, want[last])
			}
			// And the realigned journals keep accepting new commits.
			if got := rc.commit(t, "@1000 +fire(9)"); got[len(got)-1] != "ok 0" {
				t.Errorf("mask=%b kind=%d: commit after recovery replied %q", mask, kind, got)
			}
			if err := r.shutdown(); err != nil {
				t.Errorf("mask=%b kind=%d: shutdown: %v", mask, kind, err)
			}
		}
	}
}

// TestDaemonShardedHealthz checks the /healthz shards and durability
// sections of a sharded daemon.
func TestDaemonShardedHealthz(t *testing.T) {
	dir := t.TempDir()
	d, err := start(options{
		specPath:    writeSpec(t, dir, "hr.rtic", hrSpec),
		listen:      "127.0.0.1:0",
		shards:      3,
		walPath:     filepath.Join(dir, "state.wal"),
		metricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.shutdown()
	c := dialLine(t, d)
	c.commit(t, "@0 +fire(1)")

	health := httpGet(t, "http://"+d.hl.Addr().String()+"/healthz")
	for _, wantStr := range []string{`"status":"ok"`, `"shards":3`, `"wal_bytes"`} {
		if !strings.Contains(health, wantStr) {
			t.Errorf("/healthz missing %q: %s", wantStr, health)
		}
	}

	// The per-shard metrics flow through to the exposition.
	metrics := httpGet(t, "http://"+d.hl.Addr().String()+"/metrics")
	for _, wantStr := range []string{"rtic_shards 3", `rtic_shard_commits_total{shard="0"}`} {
		if !strings.Contains(metrics, wantStr) {
			t.Errorf("/metrics missing %q", wantStr)
		}
	}
}

// TestDaemonShardedArgValidation covers the flag combinations -shards
// rejects.
func TestDaemonShardedArgValidation(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "hr.rtic", hrSpec)
	cases := []struct {
		name string
		opts options
		want string
	}{
		{"shards with snapshot",
			options{specPath: spec, listen: "127.0.0.1:0", shards: 2, snapPath: filepath.Join(dir, "s.snap")},
			"not available with -shards"},
		{"shards with restore",
			options{specPath: spec, listen: "127.0.0.1:0", shards: 2, restore: true},
			"not available with -shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := start(tc.opts)
			if err == nil {
				d.shutdown()
				t.Fatal("start accepted bad options")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}
