package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// TestDaemonStartupLint: a suspicious (but installable) spec starts
// fine, and the findings surface through every channel — the lint
// metrics, the /healthz lint section, and the line protocol's "lint"
// command.
func TestDaemonStartupLint(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "suspect.rtic", `
relation p/1
relation ghost/1
constraint dead_window: p(x) -> prev[0,0] p(x)
constraint tautology: p(x) or not p(x)
`)
	d, err := start(options{
		specPath:    spec,
		listen:      "127.0.0.1:0",
		metricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.shutdown()

	base := "http://" + d.hl.Addr().String()
	body := httpGet(t, base+"/metrics")
	for _, want := range []string{
		"rtic_lint_warnings_total 2", // the error + the warning
		`rtic_lint_findings_total{rule="interval-unsatisfiable"} 1`,
		`rtic_lint_findings_total{rule="vacuous-constraint"} 1`,
		`rtic_lint_findings_total{rule="unused-relation"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	health := httpGet(t, base+"/healthz")
	for _, want := range []string{`"lint":`, `"errors":1`, `"warnings":1`, `"interval-unsatisfiable":1`} {
		if !strings.Contains(health, want) {
			t.Errorf("/healthz missing %q: %s", want, health)
		}
	}

	// The line protocol serves the findings too.
	conn, err := net.Dial("tcp", d.l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)
	fmt.Fprintln(conn, "lint")
	var diags, count int
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "diag ") {
			diags++
			continue
		}
		if _, err := fmt.Sscanf(line, "ok %d", &count); err != nil {
			t.Fatalf("unexpected reply %q", line)
		}
		break
	}
	if diags == 0 || count != diags {
		t.Fatalf("lint command returned %d diag lines, count %d", diags, count)
	}
}

// TestDaemonCleanSpecLint: a clean spec reports zero findings on
// /healthz and leaves the warning counter at zero.
func TestDaemonCleanSpecLint(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "hr.rtic",
		"relation hire/1\nrelation fire/1\nconstraint no_quick_rehire: hire(e) -> not once[0,365] fire(e)\n")
	d, err := start(options{
		specPath:    spec,
		listen:      "127.0.0.1:0",
		metricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.shutdown()

	base := "http://" + d.hl.Addr().String()
	if body := httpGet(t, base+"/metrics"); !strings.Contains(body, "rtic_lint_warnings_total 0") {
		t.Errorf("/metrics warning counter not zero:\n%s", body)
	}
	if health := httpGet(t, base+"/healthz"); !strings.Contains(health, `"findings":0`) {
		t.Errorf("/healthz lint section not clean: %s", health)
	}
}
