package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeSpec(t *testing.T, dir, name, contents string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStartArgValidation(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "s.rtic", "relation p/1\nconstraint c: p(x) -> not once p(x)\n")

	cases := []struct {
		name string
		opts options
		want string // substring of the error, "" for any
	}{
		{"missing spec", options{listen: "127.0.0.1:0"}, "-spec"},
		{"missing spec file", options{specPath: filepath.Join(dir, "nope.rtic"), listen: "127.0.0.1:0"}, ""},
		{"restore without snapshot", options{specPath: spec, listen: "127.0.0.1:0", restore: true}, "-snapshot"},
		{"missing snapshot file", options{specPath: spec, listen: "127.0.0.1:0", restore: true, snapPath: filepath.Join(dir, "nope.snap")}, ""},
		{"bad listen address", options{specPath: spec, listen: "500.500.500.500:99999"}, ""},
		{"bad metrics address", options{specPath: spec, listen: "127.0.0.1:0", metricsAddr: "500.500.500.500:99999"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := start(tc.opts)
			if err == nil {
				d.shutdown()
				t.Fatal("start accepted bad options")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}

	// Bad spec contents fail fast.
	bad := writeSpec(t, dir, "bad.rtic", "bogus\n")
	if _, err := start(options{specPath: bad, listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("bad spec accepted")
	}
	// Unsafe constraint fails fast.
	unsafe := writeSpec(t, dir, "unsafe.rtic", "relation p/1\nconstraint c: p(x)\n")
	if _, err := start(options{specPath: unsafe, listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("unsafe constraint accepted")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "hr.rtic",
		"relation hire/1\nrelation fire/1\nconstraint no_quick_rehire: hire(e) -> not once[0,365] fire(e)\n")
	snap := filepath.Join(dir, "state.snap")

	d, err := start(options{
		specPath:    spec,
		listen:      "127.0.0.1:0",
		snapPath:    snap,
		metricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drive the line protocol: one clean commit, one violating commit.
	conn, err := net.Dial("tcp", d.l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)
	send := func(line string) {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() string {
		t.Helper()
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(line)
	}
	send("@0 +fire(7)")
	if got := recv(); got != "ok 0" {
		t.Fatalf("reply = %q", got)
	}
	send("@100 -fire(7) +hire(7)")
	if got := recv(); !strings.HasPrefix(got, "violation no_quick_rehire") {
		t.Fatalf("reply = %q", got)
	}
	if got := recv(); got != "ok 1" {
		t.Fatalf("reply = %q", got)
	}

	// /metrics serves the acceptance-criteria set.
	base := "http://" + d.hl.Addr().String()
	body := httpGet(t, base+"/metrics")
	for _, want := range []string{
		"rtic_commits_total 2",
		`rtic_violations_total{constraint="no_quick_rehire"} 1`,
		"rtic_commit_duration_seconds_count 2",
		"rtic_aux_nodes 1",
		"rtic_aux_entries",
		"rtic_aux_timestamps",
		"rtic_aux_bytes",
		"rtic_monitor_connections_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Aux gauges agree with the stats reply.
	send("stats")
	stats := recv()
	var nodes, entries, timestamps, bytes int
	if _, err := fmt.Sscanf(stats, "stats nodes=%d entries=%d timestamps=%d bytes=%d",
		&nodes, &entries, &timestamps, &bytes); err != nil {
		t.Fatalf("stats reply %q: %v", stats, err)
	}
	for metric, want := range map[string]int{
		"rtic_aux_nodes":      nodes,
		"rtic_aux_entries":    entries,
		"rtic_aux_timestamps": timestamps,
		"rtic_aux_bytes":      bytes,
	} {
		if !strings.Contains(body, fmt.Sprintf("%s %d", metric, want)) {
			t.Errorf("/metrics %s does not match stats value %d", metric, want)
		}
	}

	// /healthz reports the committed states.
	health := httpGet(t, base+"/healthz")
	for _, want := range []string{`"status":"ok"`, `"states":2`, `"now":100`} {
		if !strings.Contains(health, want) {
			t.Errorf("/healthz missing %q: %s", want, health)
		}
	}

	// The line protocol scrapes without HTTP too.
	send("metrics")
	sawCommits := false
	for {
		line := recv()
		if line == "# EOF" {
			break
		}
		if strings.HasPrefix(line, "rtic_commits_total ") {
			sawCommits = true
		}
	}
	if !sawCommits {
		t.Error("line-protocol metrics reply missing rtic_commits_total")
	}

	// Shutdown writes the checkpoint; a restored daemon continues.
	conn.Close()
	if err := d.shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	d2, err := start(options{specPath: spec, listen: "127.0.0.1:0", snapPath: snap, restore: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.shutdown()
	if got := d2.m.Len(); got != 2 {
		t.Fatalf("restored states = %d, want 2", got)
	}
}
