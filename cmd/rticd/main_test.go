package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunArgValidation(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "s.rtic")
	if err := os.WriteFile(spec, []byte("relation p/1\nconstraint c: p(x) -> not once p(x)\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run("", "127.0.0.1:0", "", false); err == nil || !strings.Contains(err.Error(), "-spec") {
		t.Fatalf("missing spec: %v", err)
	}
	if err := run(filepath.Join(dir, "nope.rtic"), "127.0.0.1:0", "", false); err == nil {
		t.Fatal("missing spec file accepted")
	}
	if err := run(spec, "127.0.0.1:0", "", true); err == nil || !strings.Contains(err.Error(), "-snapshot") {
		t.Fatalf("restore without snapshot: %v", err)
	}
	if err := run(spec, "127.0.0.1:0", filepath.Join(dir, "nope.snap"), true); err == nil {
		t.Fatal("missing snapshot file accepted")
	}
	// Bad listen address fails fast.
	if err := run(spec, "500.500.500.500:99999", "", false); err == nil {
		t.Fatal("bad listen address accepted")
	}
	// Bad spec contents fail fast.
	bad := filepath.Join(dir, "bad.rtic")
	if err := os.WriteFile(bad, []byte("bogus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "127.0.0.1:0", "", false); err == nil {
		t.Fatal("bad spec accepted")
	}
	// Unsafe constraint fails fast.
	unsafe := filepath.Join(dir, "unsafe.rtic")
	if err := os.WriteFile(unsafe, []byte("relation p/1\nconstraint c: p(x)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(unsafe, "127.0.0.1:0", "", false); err == nil {
		t.Fatal("unsafe constraint accepted")
	}
}
