package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// commitN drives n commits over the line protocol.
func commitN(t *testing.T, d *daemon, n int) {
	t.Helper()
	conn, err := net.Dial("tcp", d.l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(conn, "@%d +p(%d)\n", i+1, i); err != nil {
			t.Fatal(err)
		}
		// Drain any violation lines until the commit's "ok" ack, so the
		// caller knows every commit has been processed.
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			if strings.HasPrefix(line, "ok ") {
				break
			}
		}
	}
}

func TestMetricsContentTypeAndBuildInfo(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "s.rtic", "relation p/1\nconstraint c: p(x) -> not once p(x)\n")
	d, err := start(options{specPath: spec, listen: "127.0.0.1:0", metricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.shutdown()

	resp, err := http.Get("http://" + d.hl.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got, want := resp.Header.Get("Content-Type"), "text/plain; version=0.0.4; charset=utf-8"; got != want {
		t.Errorf("Content-Type = %q, want %q", got, want)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "# TYPE rtic_build_info gauge") {
		t.Error("/metrics missing rtic_build_info family")
	}
	if !strings.Contains(string(body), `rtic_build_info{go_version="go1.`) {
		t.Errorf("rtic_build_info sample missing go_version label:\n%s", body)
	}
}

func TestPprofEndpoint(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "s.rtic", "relation p/1\nconstraint c: p(x) -> not once p(x)\n")

	// -pprof without -metrics has nowhere to serve.
	if _, err := start(options{specPath: spec, listen: "127.0.0.1:0", pprof: true}); err == nil ||
		!strings.Contains(err.Error(), "-metrics") {
		t.Fatalf("start without -metrics: err = %v, want mention of -metrics", err)
	}

	d, err := start(options{specPath: spec, listen: "127.0.0.1:0", metricsAddr: "127.0.0.1:0", pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.shutdown()
	base := "http://" + d.hl.Addr().String()
	if body := httpGet(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index unexpected:\n%.200s", body)
	}
	// The profile endpoints stream protobuf; status 200 is the contract.
	for _, p := range []string{"goroutine", "heap", "block", "mutex"} {
		resp, err := http.Get(base + "/debug/pprof/" + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/debug/pprof/%s: status %d", p, resp.StatusCode)
		}
	}

	// Without -pprof the endpoints must not exist.
	d2, err := start(options{specPath: spec, listen: "127.0.0.1:0", metricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.shutdown()
	resp, err := http.Get("http://" + d2.hl.Addr().String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof served without -pprof: status %d", resp.StatusCode)
	}
}

func TestSlowCommitLog(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "s.rtic", "relation p/1\nconstraint c: p(x) -> not once p(x)\n")
	// A 1ns threshold makes every commit slow.
	d, err := start(options{specPath: spec, listen: "127.0.0.1:0", slowCommit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.shutdown()
	if d.m.Observer().SpanSink() == nil {
		t.Fatal("slow-commit logger not wired into the observer")
	}

	// The logger writes to stderr; capture through a pipe.
	oldStderr := os.Stderr
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = pw
	commitN(t, d, 3)
	os.Stderr = oldStderr
	pw.Close()
	var buf bytes.Buffer
	io.Copy(&buf, pr)
	pr.Close()

	out := buf.String()
	if !strings.Contains(out, "slow commit t=") || !strings.Contains(out, "threshold 1ns") {
		t.Fatalf("slow-commit log missing:\n%s", out)
	}
	// The dump is the span tree: the monitor's apply section with the
	// engine's commit and phases beneath it.
	for _, want := range []string{"monitor.apply", "commit", "phase.check"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-commit dump missing %q:\n%s", want, out)
		}
	}
}

func TestTraceOutWritesChromeTrace(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "s.rtic", "relation p/1\nconstraint c: p(x) -> not once p(x)\n")
	tracePath := filepath.Join(dir, "trace.json")
	d, err := start(options{specPath: spec, listen: "127.0.0.1:0", traceOut: tracePath})
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, d, 5)
	if err := d.shutdown(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 1 {
			t.Fatalf("malformed event %+v", ev)
		}
		names[ev.Name]++
	}
	// 5 commits from the engine, each under a monitor.apply section,
	// each decomposed into the four phases.
	for _, want := range []string{"monitor.apply", "commit", "phase.apply", "phase.update", "phase.check", "phase.carry"} {
		if names[want] != 5 {
			t.Errorf("trace has %d %q events, want 5 (all: %v)", names[want], want, names)
		}
	}
}
