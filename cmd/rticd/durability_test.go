package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"rtic/internal/wal"
)

// crash abandons a daemon the way kill -9 would: the listeners die, but
// no shutdown checkpoint is written and the WAL is never closed. (The
// background checkpointer is stopped because a dead process runs no
// goroutines.)
func (d *daemon) crash() {
	d.l.Close()
	d.srv.Close()
	if d.hsrv != nil {
		d.hsrv.Close()
	}
	if d.dur != nil {
		d.dur.Stop()
	}
	if d.sdur != nil {
		d.sdur.Stop()
	}
}

type lineClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialLine(t *testing.T, d *daemon) *lineClient {
	t.Helper()
	conn, err := net.Dial("tcp", d.l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	t.Cleanup(func() { conn.Close() })
	return &lineClient{conn: conn, r: bufio.NewReader(conn)}
}

// commit sends one transaction line and returns every reply line up to
// and including the closing "ok N" (or "error ..."). The violation
// lines are sorted: within one commit the parallel pipeline reports
// them in nondeterministic order.
func (c *lineClient) commit(t *testing.T, line string) []string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatal(err)
	}
	var replies []string
	for {
		raw, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading reply to %q: %v", line, err)
		}
		reply := strings.TrimSpace(raw)
		replies = append(replies, reply)
		if strings.HasPrefix(reply, "ok ") || strings.HasPrefix(reply, "error ") {
			sort.Strings(replies[:len(replies)-1])
			return replies
		}
	}
}

// rehireTrace builds protocol lines where every odd step rehires one
// employee fired earlier — at most one violation per line, so replies
// are deterministic.
func rehireTrace(n int) []string {
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		e := (i / 2) % 5
		if i%2 == 0 {
			lines = append(lines, fmt.Sprintf("@%d +fire(%d)", i*10, e))
		} else {
			lines = append(lines, fmt.Sprintf("@%d -fire(%d) +hire(%d)", i*10, e, e))
		}
	}
	return lines
}

const hrSpec = "relation hire/1\nrelation fire/1\nconstraint no_quick_rehire: hire(e) -> not once[0,365] fire(e)\n"

// TestDaemonKillAndRecover is the end-to-end acceptance test: a daemon
// running with -wal is killed without any shutdown, restarted against
// the same files, and must finish the workload with byte-identical
// protocol replies to an uninterrupted daemon.
func TestDaemonKillAndRecover(t *testing.T) {
	trace := rehireTrace(24)
	half := len(trace) / 2
	ckptAt := len(trace) / 3

	// Reference: one uninterrupted daemon over the whole trace.
	refDir := t.TempDir()
	ref, err := start(options{
		specPath: writeSpec(t, refDir, "hr.rtic", hrSpec),
		listen:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.shutdown()
	refC := dialLine(t, ref)
	var want [][]string
	for _, line := range trace {
		want = append(want, refC.commit(t, line))
	}

	// Durable daemon: half the trace, a mid-way checkpoint, then a crash.
	dir := t.TempDir()
	spec := writeSpec(t, dir, "hr.rtic", hrSpec)
	snap := filepath.Join(dir, "state.snap")
	walPath := filepath.Join(dir, "state.wal")
	opts := options{
		specPath:    spec,
		listen:      "127.0.0.1:0",
		snapPath:    snap,
		walPath:     walPath,
		walSync:     "always",
		metricsAddr: "127.0.0.1:0",
	}
	a, err := start(opts)
	if err != nil {
		t.Fatal(err)
	}
	ac := dialLine(t, a)
	for i, line := range trace[:half] {
		if got := ac.commit(t, line); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("pre-crash step %d: replies %q, want %q", i, got, want[i])
		}
		if i+1 == ckptAt {
			if err := a.dur.Checkpoint(); err != nil {
				t.Fatalf("mid-run checkpoint: %v", err)
			}
		}
	}
	health := httpGet(t, "http://"+a.hl.Addr().String()+"/healthz")
	for _, wantStr := range []string{`"status":"ok"`, `"last_checkpoint_age_seconds"`, `"wal_bytes"`} {
		if !strings.Contains(health, wantStr) {
			t.Errorf("/healthz missing %q: %s", wantStr, health)
		}
	}
	a.crash()

	// Recovery: checkpoint + WAL tail, then the rest of the trace.
	b, err := start(opts)
	if err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
	if b.m.Len() != half || b.m.Now() != uint64((half-1)*10) {
		t.Fatalf("recovered to Len=%d Now=%d, want %d/%d", b.m.Len(), b.m.Now(), half, (half-1)*10)
	}
	health = httpGet(t, "http://"+b.hl.Addr().String()+"/healthz")
	if !strings.Contains(health, fmt.Sprintf(`"replayed_records":%d`, half-ckptAt)) {
		t.Errorf("/healthz does not report %d replayed records: %s", half-ckptAt, health)
	}
	bc := dialLine(t, b)
	for i, line := range trace[half:] {
		if got := bc.commit(t, line); !reflect.DeepEqual(got, want[half+i]) {
			t.Errorf("post-recovery step %d: replies %q, want %q", half+i, got, want[half+i])
		}
	}
	// Auxiliary state converged too, not just the violation stream.
	if got, wantStats := b.m.Stats(), ref.m.Stats(); !reflect.DeepEqual(got, wantStats) {
		t.Errorf("recovered aux stats = %+v, want %+v", got, wantStats)
	}

	// A clean shutdown checkpoints and truncates the WAL; the next start
	// needs no replay.
	if err := b.shutdown(); err != nil {
		t.Fatal(err)
	}
	c, err := start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.shutdown()
	if c.m.Len() != len(trace) {
		t.Errorf("post-shutdown restart: Len=%d, want %d", c.m.Len(), len(trace))
	}
}

// TestDaemonWALTruncationSweep cuts the crashed daemon's WAL at every
// byte offset of the final record and restarts: every cut must recover
// without error, losing at most the torn final record.
func TestDaemonWALTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "hr.rtic", hrSpec)
	walPath := filepath.Join(dir, "state.wal")
	trace := rehireTrace(6)

	d, err := start(options{specPath: spec, listen: "127.0.0.1:0", walPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	c := dialLine(t, d)
	for _, line := range trace {
		c.commit(t, line)
	}
	d.crash()

	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the final record's frame starts by replaying the intact
	// log: the frame is its payload plus the fixed 8-byte frame header.
	var lastPayload int
	lcheck, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	n, err := lcheck.Replay(func(p []byte) error { lastPayload = len(p); return nil })
	lcheck.Close()
	if err != nil || n != len(trace) {
		t.Fatalf("intact WAL replays %d records (err %v), want %d", n, err, len(trace))
	}
	lastStart := len(raw) - (8 + lastPayload) // 4-byte length + 4-byte CRC32C

	for cut := lastStart; cut <= len(raw); cut++ {
		caseDir := t.TempDir()
		cutWal := filepath.Join(caseDir, "state.wal")
		if err := os.WriteFile(cutWal, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := start(options{specPath: spec, listen: "127.0.0.1:0", walPath: cutWal})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		wantLen := len(trace) - 1
		if cut == len(raw) {
			wantLen = len(trace)
		}
		if d.m.Len() != wantLen {
			t.Errorf("cut=%d: recovered %d states, want %d", cut, d.m.Len(), wantLen)
		}
		// The truncated log accepts new commits after recovery.
		cl := dialLine(t, d)
		if got := cl.commit(t, "@1000 +fire(9)"); got[len(got)-1] != "ok 0" {
			t.Errorf("cut=%d: commit after recovery replied %q", cut, got)
		}
		if err := d.shutdown(); err != nil {
			t.Errorf("cut=%d: shutdown: %v", cut, err)
		}
	}
}

// TestDaemonHealthzDegraded flips /healthz to degraded when the
// checkpoint directory disappears out from under a running daemon.
func TestDaemonHealthzDegraded(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "hr.rtic", hrSpec)
	snapDir := filepath.Join(dir, "snaps")
	if err := os.Mkdir(snapDir, 0o755); err != nil {
		t.Fatal(err)
	}
	d, err := start(options{
		specPath:    spec,
		listen:      "127.0.0.1:0",
		snapPath:    filepath.Join(snapDir, "state.snap"),
		walPath:     filepath.Join(dir, "state.wal"),
		metricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	c := dialLine(t, d)
	c.commit(t, "@0 +fire(1)")

	if err := d.dur.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + d.hl.Addr().String()
	if health := httpGet(t, base+"/healthz"); !strings.Contains(health, `"status":"ok"`) {
		t.Fatalf("/healthz before failure: %s", health)
	}

	if err := os.RemoveAll(snapDir); err != nil {
		t.Fatal(err)
	}
	if err := d.dur.Checkpoint(); err == nil {
		t.Fatal("checkpoint into a removed directory succeeded")
	}
	health := httpGet(t, base+"/healthz")
	for _, want := range []string{`"status":"degraded"`, `"last_error"`} {
		if !strings.Contains(health, want) {
			t.Errorf("/healthz after failed checkpoint missing %q: %s", want, health)
		}
	}
	d.crash() // shutdown would fail on the missing snapshot dir, by design
}

// TestDurabilityArgValidation covers the flag combinations the
// durability layer rejects at startup.
func TestDurabilityArgValidation(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "s.rtic", "relation p/1\nconstraint c: p(x) -> not once p(x)\n")
	cases := []struct {
		name string
		opts options
		want string
	}{
		{"wal without incremental",
			options{specPath: spec, listen: "127.0.0.1:0", mode: "naive", walPath: filepath.Join(dir, "w.wal")},
			"require -mode incremental"},
		{"snapshot without incremental",
			options{specPath: spec, listen: "127.0.0.1:0", mode: "active", snapPath: filepath.Join(dir, "s.snap")},
			"require -mode incremental"},
		{"checkpoint interval without snapshot",
			options{specPath: spec, listen: "127.0.0.1:0", ckptInterval: time.Second},
			"-checkpoint-interval requires -snapshot"},
		{"bad wal sync policy",
			options{specPath: spec, listen: "127.0.0.1:0", walPath: filepath.Join(dir, "w.wal"), walSync: "sometimes"},
			"sync policy"},
		{"bad failure policy",
			options{specPath: spec, listen: "127.0.0.1:0", walPath: filepath.Join(dir, "w.wal"), onDurFailure: "panic"},
			"failure policy"},
		{"negative checkpoint interval",
			options{specPath: spec, listen: "127.0.0.1:0", snapPath: filepath.Join(dir, "s.snap"), ckptInterval: -time.Second},
			"-checkpoint-interval must not be negative"},
		{"sub-millisecond checkpoint interval",
			options{specPath: spec, listen: "127.0.0.1:0", snapPath: filepath.Join(dir, "s.snap"), ckptInterval: 100 * time.Microsecond},
			"below the 1ms floor"},
		{"negative max conns",
			options{specPath: spec, listen: "127.0.0.1:0", maxConns: -1},
			"-max-conns must not be negative"},
		{"negative idle timeout",
			options{specPath: spec, listen: "127.0.0.1:0", idleTimeout: -time.Minute},
			"-idle-timeout must not be negative"},
		{"wal parent dir missing",
			options{specPath: spec, listen: "127.0.0.1:0", walPath: filepath.Join(dir, "no-such-dir", "w.wal")},
			"parent directory"},
		{"snapshot parent dir missing",
			options{specPath: spec, listen: "127.0.0.1:0", snapPath: filepath.Join(dir, "no-such-dir", "s.snap")},
			"parent directory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := start(tc.opts)
			if err == nil {
				d.shutdown()
				t.Fatal("start accepted bad options")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}
