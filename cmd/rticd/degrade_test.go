package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rtic/internal/vfs"
)

// pollHealthz fetches /healthz until the predicate holds or the
// deadline passes, returning the last body either way.
func pollHealthz(t *testing.T, base string, deadline time.Duration, ok func(string) bool) string {
	t.Helper()
	var body string
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		body = httpGet(t, base+"/healthz")
		if ok(body) {
			return body
		}
		time.Sleep(5 * time.Millisecond)
	}
	return body
}

// TestDaemonDegradeEpisodeAndRearm drives a daemon through a transient
// ENOSPC episode on its journal: the commit that hits the fault is
// still acknowledged, /healthz flips to degraded, the re-arm loop
// drains the backlog once the disk "recovers", and a kill/restart
// afterwards proves the degraded-window commit was made durable.
func TestDaemonDegradeEpisodeAndRearm(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "hr.rtic", hrSpec)
	walPath := filepath.Join(dir, "state.wal")
	snapPath := filepath.Join(dir, "state.snap")
	ffs := vfs.NewFaultFS(vfs.OS)
	d, err := start(options{
		specPath:    spec,
		listen:      "127.0.0.1:0",
		walPath:     walPath,
		snapPath:    snapPath,
		metricsAddr: "127.0.0.1:0",
		fsys:        ffs,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := dialLine(t, d)
	c.commit(t, "@10 +fire(1)")

	// Fail every journal write in a window wide enough that several
	// re-arm attempts also fail before the "disk" recovers. Append
	// rollbacks consume a truncate op between writes, so twelve ops
	// cover roughly five failed drain attempts (~1.5s of outage).
	base := ffs.OpCount()
	for i := uint64(1); i <= 12; i++ {
		ffs.Inject(vfs.Injection{AtOp: base + i, Op: vfs.OpWrite, Kind: vfs.ENOSPC})
	}

	// The commit that hits the fault must still be acknowledged.
	replies := c.commit(t, "@20 +fire(2)")
	if got := replies[len(replies)-1]; !strings.HasPrefix(got, "ok ") {
		t.Fatalf("commit during fault episode not acknowledged: %v", replies)
	}

	hbase := "http://" + d.hl.Addr().String()
	health := httpGet(t, hbase+"/healthz")
	for _, want := range []string{`"status":"degraded"`, `"policy":"degrade"`, `"backlog_records":1`} {
		if !strings.Contains(health, want) {
			t.Errorf("/healthz during episode missing %q: %s", want, health)
		}
	}
	if metrics := httpGet(t, hbase+"/metrics"); !strings.Contains(metrics, "rtic_durability_degraded 1") {
		t.Errorf("metrics during episode missing degraded gauge: %s", metrics)
	}

	// The re-arm loop must restore full durability once writes succeed.
	health = pollHealthz(t, hbase, 15*time.Second, func(b string) bool {
		return strings.Contains(b, `"status":"ok"`) && strings.Contains(b, `"rearms":1`)
	})
	if !strings.Contains(health, `"status":"ok"`) || !strings.Contains(health, `"rearms":1`) {
		t.Fatalf("/healthz never recovered after fault window: %s", health)
	}
	c.commit(t, "@30 +fire(3)")

	// Kill without shutdown and restart on the real filesystem: the
	// commit acknowledged during the degraded window must have been
	// drained into the journal, so rehiring employee 2 still violates.
	d.crash()
	d2, err := start(options{
		specPath: spec,
		listen:   "127.0.0.1:0",
		walPath:  walPath,
		snapPath: snapPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.crash()
	c2 := dialLine(t, d2)
	replies = c2.commit(t, "@40 -fire(2) +hire(2)")
	if len(replies) != 2 || !strings.Contains(replies[0], "no_quick_rehire") {
		t.Fatalf("degraded-window commit lost across crash: rehire replies %v", replies)
	}
}

// TestDaemonHaltPolicy verifies -on-durability-failure=halt: the first
// journal failure delivers a fatal error to the daemon's done channel
// instead of entering degraded mode.
func TestDaemonHaltPolicy(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir, "hr.rtic", hrSpec)
	ffs := vfs.NewFaultFS(vfs.OS)
	d, err := start(options{
		specPath:     spec,
		listen:       "127.0.0.1:0",
		walPath:      filepath.Join(dir, "state.wal"),
		onDurFailure: "halt",
		fsys:         ffs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.crash()
	c := dialLine(t, d)
	c.commit(t, "@10 +fire(1)")

	ffs.Inject(vfs.Injection{AtOp: ffs.OpCount() + 1, Op: vfs.OpWrite, Kind: vfs.ENOSPC})
	c.commit(t, "@20 +fire(2)")

	select {
	case err := <-d.done:
		if err == nil || !strings.Contains(err.Error(), "durability failure") {
			t.Fatalf("halt delivered wrong error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("halt policy never delivered a fatal error")
	}
}
