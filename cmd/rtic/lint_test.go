package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the lint golden files")

// golden compares got against testdata/name, rewriting the file under
// -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run go test ./cmd/rtic -run TestLintGolden -update):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestLintGoldenText pins the text output of rtic lint over the seeded
// bad spec: the unsatisfiable window, the vacuous constraint and the
// over-threshold cost estimate must all be flagged, and the run must
// fail.
func TestLintGoldenText(t *testing.T) {
	var out bytes.Buffer
	err := runLint([]string{"-spec", "../../examples/specs/lintdemo.rtic"}, &out)
	if err != errLintFindings {
		t.Fatalf("err = %v, want errLintFindings", err)
	}
	s := out.String()
	for _, rule := range []string{"interval-unsatisfiable", "vacuous-constraint", "cost", "contradiction", "dead-branch"} {
		if !strings.Contains(s, "["+rule+"]") {
			t.Errorf("output missing rule %s:\n%s", rule, s)
		}
	}
	golden(t, "lint_lintdemo.txt", s)
}

// TestLintGoldenJSON pins the -json document shape.
func TestLintGoldenJSON(t *testing.T) {
	var out bytes.Buffer
	err := runLint([]string{"-json", "-spec", "../../examples/specs/lintdemo.rtic"}, &out)
	if err != errLintFindings {
		t.Fatalf("err = %v, want errLintFindings", err)
	}
	var doc struct {
		Constraints int `json:"constraints"`
		Errors      int `json:"errors"`
		Diagnostics []struct {
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Constraints != 5 || doc.Errors == 0 || len(doc.Diagnostics) == 0 {
		t.Errorf("doc = %+v", doc)
	}
	// The golden stores the canonical relative path; normalize.
	s := strings.Replace(out.String(),
		`"spec": "../../examples/specs/lintdemo.rtic"`,
		`"spec": "examples/specs/lintdemo.rtic"`, 1)
	golden(t, "lint_lintdemo.json", s)
}

// TestLintGoldenClean: a clean example spec passes with empty findings.
func TestLintGoldenClean(t *testing.T) {
	for _, name := range []string{"hr", "tickets"} {
		var out bytes.Buffer
		if err := runLint([]string{"-spec", "../../examples/specs/" + name + ".rtic"}, &out); err != nil {
			t.Fatalf("%s: err = %v, want nil", name, err)
		}
		if !strings.Contains(out.String(), "0 errors, 0 warnings") {
			t.Errorf("%s:\n%s", name, out.String())
		}
	}
	var out bytes.Buffer
	if err := runLint([]string{"-spec", "../../examples/specs/hr.rtic"}, &out); err != nil {
		t.Fatal(err)
	}
	golden(t, "lint_hr.txt", out.String())
}

// TestLintStrictFlag: -strict fails on warnings.
func TestLintStrictFlag(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "warn.rtic", `
relation p/1
constraint w: p(x) or not p(x)
`)
	var out bytes.Buffer
	if err := runLint([]string{"-spec", spec}, &out); err != nil {
		t.Fatalf("warnings alone failed the default run: %v", err)
	}
	out.Reset()
	if err := runLint([]string{"-strict", "-spec", spec}, &out); err != errLintFindings {
		t.Fatalf("err = %v, want errLintFindings under -strict", err)
	}
}

// TestLintCostThresholdFlag: the threshold is tunable and 0 disables
// the pass.
func TestLintCostThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "cost.rtic", `
relation r/2
constraint audit: r(x, y) -> not once[0,50000] r(x, y)
`)
	var out bytes.Buffer
	if err := runLint([]string{"-cost-threshold", "1000", "-spec", spec}, &out); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(out.String(), "[cost]") {
		t.Errorf("cost not flagged at threshold 1000:\n%s", out.String())
	}
	out.Reset()
	if err := runLint([]string{"-cost-threshold", "0", "-spec", spec}, &out); err != nil {
		t.Fatalf("err = %v", err)
	}
	if strings.Contains(out.String(), "[cost]") {
		t.Errorf("cost flagged with the pass disabled:\n%s", out.String())
	}
}

// TestLintWrittenRelations: giving a log arms never-written-relation.
func TestLintWrittenRelations(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "s.rtic", `
relation hire/1
relation fire/1
constraint c: hire(e) -> not once[0,365] fire(e)
`)
	log := writeFile(t, dir, "log.txt", "@0 +hire(7)\n@5 +hire(8)\n")
	var out bytes.Buffer
	if err := runLint([]string{"-spec", spec, log}, &out); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(out.String(), "[never-written-relation]") ||
		!strings.Contains(out.String(), "relation fire") {
		t.Errorf("never-written-relation not reported for fire:\n%s", out.String())
	}
	// Without a log the rule stays silent.
	out.Reset()
	if err := runLint([]string{"-spec", spec}, &out); err != nil {
		t.Fatalf("err = %v", err)
	}
	if strings.Contains(out.String(), "never-written-relation") {
		t.Errorf("rule fired without a log:\n%s", out.String())
	}
}
