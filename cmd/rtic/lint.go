package main

// The lint subcommand:
//
//	rtic lint -spec constraints.rtic [-json] [-strict]
//	     [-cost-threshold N] [log...]
//
// runs the static analyzer over every constraint of the spec and
// prints the findings, one per line (or as one JSON document with
// -json). When transaction logs are given they are scanned — not
// replayed — for the set of relations the workload actually writes,
// which arms the never-written-relation rule.
//
// Exit code 2 when any Error-severity finding fired (any
// Warning-or-worse with -strict), 1 on operational errors, 0 otherwise.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"rtic/internal/lint"
	"rtic/internal/spec"
)

var errLintFindings = fmt.Errorf("lint findings at failing severity")

func runLint(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtic lint", flag.ContinueOnError)
	specPath := fs.String("spec", "", "spec file with relations and constraints (required)")
	asJSON := fs.Bool("json", false, "emit findings as one JSON document")
	strict := fs.Bool("strict", false, "fail (exit 2) on warnings, not just errors")
	costThreshold := fs.Uint64("cost-threshold", lint.DefaultCostThreshold,
		"per-constraint worst-case cost above which the cost rule warns (0 disables the pass)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	f, err := os.Open(*specPath)
	if err != nil {
		return err
	}
	sp, err := spec.ParseSpec(f)
	f.Close()
	if err != nil {
		return err
	}

	opts := lint.Options{CostThreshold: *costThreshold}
	if *costThreshold == 0 {
		opts.CostThreshold = lint.NoCostCheck
	}
	if logs := fs.Args(); len(logs) > 0 {
		written, err := writtenRelations(logs)
		if err != nil {
			return err
		}
		opts.Written = written
	}

	diags := lint.Constraints(sp.Constraints, sp.Schema, opts)
	counts := map[lint.Severity]int{}
	for _, d := range diags {
		counts[d.Severity]++
	}

	if *asJSON {
		doc := struct {
			Spec        string            `json:"spec"`
			Constraints int               `json:"constraints"`
			Errors      int               `json:"errors"`
			Warnings    int               `json:"warnings"`
			Infos       int               `json:"infos"`
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
		}{
			Spec:        *specPath,
			Constraints: len(sp.Constraints),
			Errors:      counts[lint.Error],
			Warnings:    counts[lint.Warning],
			Infos:       counts[lint.Info],
			Diagnostics: diags,
		}
		if doc.Diagnostics == nil {
			doc.Diagnostics = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d.String())
		}
		fmt.Fprintf(out, "linted %d constraints: %d errors, %d warnings, %d infos\n",
			len(sp.Constraints), counts[lint.Error], counts[lint.Warning], counts[lint.Info])
	}

	failAt := lint.Error
	if *strict {
		failAt = lint.Warning
	}
	if lint.MaxSeverity(diags) >= failAt {
		return errLintFindings
	}
	return nil
}

// writtenRelations scans transaction logs for the relations the
// workload touches (insertions and deletions both count as writes).
func writtenRelations(logs []string) (map[string]bool, error) {
	written := make(map[string]bool)
	for _, path := range logs {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			_, tx, ok, err := spec.ParseLogLine(sc.Text())
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
			}
			if !ok {
				continue
			}
			for _, op := range tx.Ops() {
				written[op.Rel] = true
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return written, nil
}
