package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTraceFixtures(t *testing.T) (specPath, logPath string) {
	t.Helper()
	dir := t.TempDir()
	specPath = filepath.Join(dir, "s.rtic")
	if err := os.WriteFile(specPath, []byte("relation p/1\nconstraint c: p(x) -> not once p(x)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	for i := 1; i <= 20; i++ {
		fmt.Fprintf(&log, "@%d +p(%d)\n", i, i%5)
	}
	logPath = filepath.Join(dir, "log.txt")
	if err := os.WriteFile(logPath, log.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return specPath, logPath
}

func TestRunTrace(t *testing.T) {
	specPath, logPath := writeTraceFixtures(t)
	dir := filepath.Dir(specPath)
	outPath := filepath.Join(dir, "trace.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")

	var out bytes.Buffer
	err := runTrace([]string{
		"-spec", specPath, "-out", outPath,
		"-cpuprofile", cpuPath, "-memprofile", memPath,
		logPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"replayed 20 transactions", "20 commit spans", "phase.check"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	commits := 0
	for _, ev := range trace.TraceEvents {
		if ev.Name == "commit" {
			commits++
		}
	}
	if commits != 20 {
		t.Errorf("trace has %d commit events, want 20", commits)
	}
	for _, p := range []string{cpuPath, memPath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err %v)", p, err)
		}
	}
}

func TestRunTraceSharded(t *testing.T) {
	specPath, logPath := writeTraceFixtures(t)
	outPath := filepath.Join(filepath.Dir(specPath), "sharded.json")
	var out bytes.Buffer
	if err := runTrace([]string{"-spec", specPath, "-out", outPath, "-shards", "2", logPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shard.commit") {
		t.Errorf("sharded summary missing shard.commit:\n%s", out.String())
	}
}

func TestRunTraceRequiresSpec(t *testing.T) {
	if err := runTrace(nil, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "-spec") {
		t.Fatalf("err = %v, want -spec requirement", err)
	}
}
