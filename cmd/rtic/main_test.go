package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const hrSpec = `
relation hire/1
relation fire/1
constraint no_quick_rehire: hire(e) -> not once[0,365] fire(e)
`

func TestRunDetectsViolations(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "hr.rtic", hrSpec)
	log := writeFile(t, dir, "log.txt", "@0 +fire(7)\n@100 -fire(7) +hire(7)\n@500 +hire(8)\n")

	for _, mode := range []string{"incremental", "naive", "active"} {
		var out bytes.Buffer
		err := run(spec, mode, false, []string{log}, &out)
		if err != errViolations {
			t.Fatalf("mode %s: err = %v, want errViolations", mode, err)
		}
		s := out.String()
		if !strings.Contains(s, "no_quick_rehire violated") || !strings.Contains(s, "e=7") {
			t.Fatalf("mode %s: output missing violation:\n%s", mode, s)
		}
		if !strings.Contains(s, "checked 3 transactions: 1 violations") {
			t.Fatalf("mode %s: summary wrong:\n%s", mode, s)
		}
	}
}

func TestRunCleanLog(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "hr.rtic", hrSpec)
	log := writeFile(t, dir, "log.txt", "@0 +fire(7)\n@400 -fire(7)\n")
	var out bytes.Buffer
	if err := run(spec, "incremental", false, []string{log}, &out); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunQuiet(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "hr.rtic", hrSpec)
	log := writeFile(t, dir, "log.txt", "@0 +fire(7)\n@1 +hire(7)\n")
	var out bytes.Buffer
	err := run(spec, "incremental", true, []string{log}, &out)
	if err != errViolations {
		t.Fatalf("err = %v", err)
	}
	if strings.Contains(out.String(), "violated at state") {
		t.Fatalf("quiet mode printed violations:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "hr.rtic", hrSpec)
	badLog := writeFile(t, dir, "bad.txt", "@1 +nosuch(1)\n")
	var out bytes.Buffer

	if err := run("", "incremental", false, nil, &out); err == nil {
		t.Fatal("missing -spec accepted")
	}
	if err := run(spec, "warp", false, nil, &out); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run(filepath.Join(dir, "nope.rtic"), "incremental", false, nil, &out); err == nil {
		t.Fatal("missing spec file accepted")
	}
	if err := run(spec, "incremental", false, []string{badLog}, &out); err == nil {
		t.Fatal("log referencing unknown relation accepted")
	}
	if err := run(spec, "incremental", false, []string{filepath.Join(dir, "nope.txt")}, &out); err == nil {
		t.Fatal("missing log file accepted")
	}

	badSpec := writeFile(t, dir, "bad.rtic", "relation hire/1\nconstraint c: not hire(e)\n")
	goodLog := writeFile(t, dir, "ok.txt", "@1 +hire(1)\n")
	// Denial of "not hire(e)" is hire(e): actually safe. Use an unsafe one.
	_ = badSpec
	unsafeSpec := writeFile(t, dir, "unsafe.rtic", "relation hire/1\nconstraint c: hire(e)\n")
	if err := run(unsafeSpec, "incremental", false, []string{goodLog}, &out); err == nil {
		t.Fatal("unsafe constraint accepted")
	}
}

func TestRunExplain(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "hr.rtic", hrSpec)
	log := writeFile(t, dir, "log.txt", "@0 +fire(7)\n@100 -fire(7) +hire(7)\n")
	var out bytes.Buffer
	err := run2(spec, "incremental", false, true, []string{log}, &out)
	if err != errViolations {
		t.Fatalf("err = %v", err)
	}
	s := out.String()
	for _, frag := range []string{"required: once[0,365] fire(e)", "witnessed at t=[0]"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("explain output missing %q:\n%s", frag, s)
		}
	}
	// -explain with other modes is rejected.
	if err := run2(spec, "naive", false, true, []string{log}, &out); err == nil {
		t.Fatal("explain with naive mode accepted")
	}
}
