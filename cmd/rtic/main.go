// Command rtic checks a transaction log against real-time integrity
// constraints.
//
// Usage:
//
//	rtic -spec constraints.rtic [-mode incremental|naive|active]
//	     [-parallelism N] [-trace] [log...]
//	rtic lint -spec constraints.rtic [-json] [-strict]
//	     [-cost-threshold N] [log...]
//	rtic trace -spec constraints.rtic [-out trace.json]
//	     [-parallelism N] [-shards N]
//	     [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [log...]
//
// The spec file declares relations and constraints (see package
// internal/spec). Transaction logs are read from the given files, or
// from stdin when none are given; each line is "@time ±rel(args) …".
// Violations are printed to stdout as they are detected; the exit code
// is 2 when any violation occurred, 1 on errors, 0 otherwise. With
// -trace every engine operation (step, per-node update, constraint
// check) is logged as a structured line on stderr.
//
// "rtic lint" statically analyzes the spec without replaying a log;
// see lint.go and docs/LINTING.md.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"rtic"
	"rtic/internal/active"
	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/engine"
	"rtic/internal/naive"
	"rtic/internal/obs"
	"rtic/internal/spec"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		if err := runLint(os.Args[2:], os.Stdout); err != nil {
			if err == errLintFindings {
				os.Exit(2)
			}
			fmt.Fprintln(os.Stderr, "rtic:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		if err := runTrace(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rtic:", err)
			os.Exit(1)
		}
		return
	}

	specPath := flag.String("spec", "", "spec file with relations and constraints (required)")
	mode := flag.String("mode", "incremental",
		"checking engine ("+strings.Join(rtic.ModeNames(), ", ")+")")
	parallelism := flag.Int("parallelism", 0,
		"commit-pipeline worker-pool width (1 = sequential, <=0 = GOMAXPROCS; incremental engine only)")
	quiet := flag.Bool("quiet", false, "suppress per-violation output; print only the summary")
	explain := flag.Bool("explain", false, "print evidence trails for violations (incremental mode only)")
	trace := flag.Bool("trace", false, "log engine trace events (structured, stderr)")
	flag.Parse()

	if err := run4(*specPath, *mode, *parallelism, *quiet, *explain, *trace, flag.Args(), os.Stdout); err != nil {
		if err == errViolations {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "rtic:", err)
		os.Exit(1)
	}
}

var errViolations = fmt.Errorf("violations detected")

// run keeps the original signature for tests; run2 adds -explain,
// run3 adds -trace, run4 adds -parallelism.
func run(specPath, mode string, quiet bool, logs []string, out io.Writer) error {
	return run4(specPath, mode, 0, quiet, false, false, logs, out)
}

func run2(specPath, mode string, quiet, explain bool, logs []string, out io.Writer) error {
	return run4(specPath, mode, 0, quiet, explain, false, logs, out)
}

func run3(specPath, mode string, quiet, explain, trace bool, logs []string, out io.Writer) error {
	return run4(specPath, mode, 0, quiet, explain, trace, logs, out)
}

func run4(specPath, mode string, parallelism int, quiet, explain, trace bool, logs []string, out io.Writer) error {
	if specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	f, err := os.Open(specPath)
	if err != nil {
		return err
	}
	sp, err := spec.ParseSpec(f)
	f.Close()
	if err != nil {
		return err
	}

	m, err := rtic.ParseMode(mode)
	if err != nil {
		return err
	}
	var eng engine.Engine
	var inc *core.Checker
	switch m {
	case rtic.Incremental:
		inc = core.New(sp.Schema, core.WithParallelism(parallelism))
		eng = inc
	case rtic.Naive:
		eng = naive.New(sp.Schema)
	case rtic.ActiveRules:
		eng = active.New(sp.Schema)
	}
	if explain && inc == nil {
		return fmt.Errorf("-explain requires -mode incremental")
	}
	if trace {
		eng.SetObserver(&obs.Observer{Tracer: obs.NewSlogTracer(slog.New(
			slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}),
		))})
	}
	for _, cs := range sp.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, sp.Schema)
		if err != nil {
			return err
		}
		if err := eng.AddConstraint(con); err != nil {
			return err
		}
	}

	total, states := 0, 0
	process := func(r io.Reader, name string) error {
		sc := bufio.NewScanner(r)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			t, tx, ok, err := spec.ParseLogLine(sc.Text())
			if err != nil {
				return fmt.Errorf("%s:%d: %w", name, lineNo, err)
			}
			if !ok {
				continue
			}
			vs, err := eng.Step(t, tx)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", name, lineNo, err)
			}
			states++
			total += len(vs)
			if !quiet {
				for _, v := range vs {
					if explain && inc != nil {
						ex, err := inc.Explain(v)
						if err != nil {
							return err
						}
						fmt.Fprint(out, ex.String())
					} else {
						fmt.Fprintln(out, v.String())
					}
				}
			}
		}
		return sc.Err()
	}

	if len(logs) == 0 {
		if err := process(os.Stdin, "stdin"); err != nil {
			return err
		}
	}
	for _, path := range logs {
		lf, err := os.Open(path)
		if err != nil {
			return err
		}
		err = process(lf, path)
		lf.Close()
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "checked %d transactions: %d violations\n", states, total)
	if total > 0 {
		return errViolations
	}
	return nil
}
