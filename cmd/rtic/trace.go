// "rtic trace" replays a transaction log with commit-span recording
// and writes the span trees as a Chrome trace-event file, optionally
// capturing CPU and heap profiles of the replay. It is the offline
// counterpart of `rticd -trace-out`: same spec and log formats as
// plain rtic, but the output is attribution (where commit time went)
// rather than violations. See docs/OBSERVABILITY.md.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"sort"
	"time"

	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/engine"
	"rtic/internal/obs"
	"rtic/internal/shard"
	"rtic/internal/spec"
)

func runTrace(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtic trace", flag.ContinueOnError)
	specPath := fs.String("spec", "", "spec file with relations and constraints (required)")
	parallelism := fs.Int("parallelism", 0,
		"commit-pipeline worker-pool width (1 = sequential, <=0 = GOMAXPROCS)")
	shards := fs.Int("shards", 1,
		"hash-partition state across N shard engines (1 = unsharded)")
	outPath := fs.String("out", "trace.json", "Chrome trace-event output file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the replay to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}

	f, err := os.Open(*specPath)
	if err != nil {
		return err
	}
	sp, err := spec.ParseSpec(f)
	f.Close()
	if err != nil {
		return err
	}

	// Span tracing decomposes the incremental commit pipeline; the
	// naive and active engines have no phases to attribute, so trace
	// always replays incrementally (sharded when -shards > 1).
	rec := obs.NewSpanRecorder(0)
	var eng engine.Engine
	if *shards > 1 {
		r, err := shard.NewMode(sp.Schema, *shards, engine.Incremental, *parallelism)
		if err != nil {
			return err
		}
		eng = r
	} else {
		eng = core.New(sp.Schema, core.WithParallelism(*parallelism))
	}
	eng.SetObserver(&obs.Observer{Spans: rec})
	for _, cs := range sp.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, sp.Schema)
		if err != nil {
			return err
		}
		if err := eng.AddConstraint(con); err != nil {
			return err
		}
	}

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}

	states, violations := 0, 0
	process := func(r io.Reader, name string) error {
		sc := bufio.NewScanner(r)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			t, tx, ok, err := spec.ParseLogLine(sc.Text())
			if err != nil {
				return fmt.Errorf("%s:%d: %w", name, lineNo, err)
			}
			if !ok {
				continue
			}
			vs, err := eng.Step(t, tx)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", name, lineNo, err)
			}
			states++
			violations += len(vs)
		}
		return sc.Err()
	}
	if fs.NArg() == 0 {
		if err := process(os.Stdin, "stdin"); err != nil {
			return err
		}
	}
	for _, path := range fs.Args() {
		lf, err := os.Open(path)
		if err != nil {
			return err
		}
		err = process(lf, path)
		lf.Close()
		if err != nil {
			return err
		}
	}

	if *memProfile != "" {
		mf, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		if err := pprof.WriteHeapProfile(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
	}

	roots := rec.Snapshot()
	tf, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(tf, roots); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}

	fmt.Fprintf(out, "replayed %d transactions (%d violations): %d commit spans -> %s\n",
		states, violations, len(roots), *outPath)
	printSpanSummary(out, roots)
	return nil
}

// printSpanSummary aggregates the recorded trees by span name: total
// wall time, count, and share of the summed commit time.
func printSpanSummary(out io.Writer, roots []*obs.Span) {
	type agg struct {
		name  string
		total time.Duration
		count int
	}
	var commit time.Duration
	byName := map[string]*agg{}
	for _, r := range roots {
		commit += r.Dur
		r.Walk(func(s *obs.Span) {
			if s == r {
				return
			}
			a := byName[s.Name]
			if a == nil {
				a = &agg{name: s.Name}
				byName[s.Name] = a
			}
			a.total += s.Dur
			a.count += s.Ops
			if s.Ops == 0 {
				a.count++
			}
		})
	}
	if commit <= 0 {
		return
	}
	var aggs []*agg
	for _, a := range byName {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool { return aggs[i].total > aggs[j].total })
	fmt.Fprintf(out, "commit time %v across %d spans; by phase:\n", commit, len(roots))
	for _, a := range aggs {
		fmt.Fprintf(out, "  %-14s %10v  %5.1f%%  ops=%d\n",
			a.name, a.total, 100*float64(a.total)/float64(commit), a.count)
	}
}
