// Command rticbench regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	rticbench [-quick] [-only "Table 1"] [-json out.json] [-trace-out trace.json]
//	rticbench -compare old.json new.json [-regress-factor 3]
//	rticbench -validate result.json
//
// -quick runs smaller sweeps (seconds instead of minutes); -only runs a
// single experiment by its id. -json additionally writes the run as a
// schema'd BENCH_<date>.json (see docs/OBSERVABILITY.md). -trace-out
// records every commit's span tree and writes a Chrome trace-event file
// loadable in chrome://tracing or Perfetto. -compare matches the cells
// of two result files and exits nonzero when any duration cell got more
// than -regress-factor times slower or any allocation-count cell more
// than doubled (bench.AllocFactor). -validate checks a result file
// against the schema and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtic/internal/bench"
	"rtic/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps")
	only := flag.String("only", "", "run a single experiment by id (e.g. \"Table 1\")")
	jsonOut := flag.String("json", "", "also write results as schema'd JSON to this file")
	traceOut := flag.String("trace-out", "", "write commit span trees as Chrome trace-event JSON to this file")
	compare := flag.Bool("compare", false, "compare two result files: rticbench -compare old.json new.json")
	factor := flag.Float64("regress-factor", 3, "with -compare, flag duration cells more than this many times slower")
	validate := flag.String("validate", "", "validate a result file against the schema and exit")
	flag.Parse()

	if *validate != "" {
		runValidate(*validate)
		return
	}
	if *compare {
		runCompare(flag.Args(), *factor)
		return
	}

	var rec *obs.SpanRecorder
	if *traceOut != "" {
		rec = obs.NewSpanRecorder(0)
		bench.SetTraceSink(rec)
		defer bench.SetTraceSink(nil)
	}

	var tables []bench.Table
	if *only != "" {
		found := false
		for _, e := range bench.Experiments() {
			if e.ID != *only {
				continue
			}
			found = true
			tbl, err := e.Run(*quick)
			if err != nil {
				fatal(err)
			}
			tables = append(tables, tbl)
		}
		if !found {
			fmt.Fprintf(os.Stderr, "rticbench: unknown experiment %q\n", *only)
			os.Exit(1)
		}
	} else {
		var err error
		tables, err = bench.All(*quick)
		if err != nil {
			fatal(err)
		}
	}
	for i := range tables {
		tables[i].Render(os.Stdout)
	}

	if *jsonOut != "" {
		res := bench.NewResult(tables, *quick, time.Now().Unix())
		if err := writeJSON(*jsonOut, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rticbench: wrote %s (%d tables, rev %s)\n", *jsonOut, len(res.Tables), res.GitRev)
	}
	if rec != nil {
		if err := writeTrace(*traceOut, rec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rticbench: wrote %s (%d commit spans)\n", *traceOut, rec.Len())
	}
}

func runValidate(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	res, err := bench.ReadResult(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: schema %d, %d tables, rev %s, %s %s/%s\n",
		path, res.Schema, len(res.Tables), res.GitRev, res.GoVersion, res.GOOS, res.GOARCH)
}

func runCompare(args []string, factor float64) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "rticbench: -compare needs exactly two files: old.json new.json")
		os.Exit(2)
	}
	old, err := readResult(args[0])
	if err != nil {
		fatal(err)
	}
	cur, err := readResult(args[1])
	if err != nil {
		fatal(err)
	}
	rep := bench.Compare(old, cur, factor)
	rep.Render(os.Stdout)
	if !rep.OK() {
		os.Exit(1)
	}
}

func readResult(path string) (bench.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return bench.Result{}, err
	}
	defer f.Close()
	return bench.ReadResult(f)
}

func writeJSON(path string, res bench.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteResult(f, res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(path string, rec *obs.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, rec.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rticbench:", err)
	os.Exit(1)
}
