// Command rticbench regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	rticbench [-quick] [-only "Table 1"]
//
// -quick runs smaller sweeps (seconds instead of minutes); -only runs a
// single experiment by its id.
package main

import (
	"flag"
	"fmt"
	"os"

	"rtic/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps")
	only := flag.String("only", "", "run a single experiment by id (e.g. \"Table 1\")")
	flag.Parse()

	if *only != "" {
		for _, e := range bench.Experiments() {
			if e.ID != *only {
				continue
			}
			tbl, err := e.Run(*quick)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rticbench:", err)
				os.Exit(1)
			}
			tbl.Render(os.Stdout)
			return
		}
		fmt.Fprintf(os.Stderr, "rticbench: unknown experiment %q\n", *only)
		os.Exit(1)
	}
	tables, err := bench.All(*quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rticbench:", err)
		os.Exit(1)
	}
	for i := range tables {
		tables[i].Render(os.Stdout)
	}
}
