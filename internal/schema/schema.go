// Package schema describes the database vocabulary: the named relations
// a history ranges over, with their arities and optional attribute names.
package schema

import (
	"fmt"
	"regexp"
	"sort"
)

var identRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// RelDef describes one relation.
type RelDef struct {
	Name  string
	Arity int
	// Attrs optionally names the columns; when present its length
	// equals Arity.
	Attrs []string
}

// Schema is an immutable set of relation definitions.
type Schema struct {
	rels map[string]RelDef
}

// Builder accumulates relation definitions and validates them.
type Builder struct {
	rels map[string]RelDef
	err  error
}

// NewBuilder returns an empty schema builder.
func NewBuilder() *Builder {
	return &Builder{rels: make(map[string]RelDef)}
}

// Relation adds a relation with anonymous columns.
func (b *Builder) Relation(name string, arity int) *Builder {
	return b.add(RelDef{Name: name, Arity: arity})
}

// RelationAttrs adds a relation whose arity is the number of attribute
// names given.
func (b *Builder) RelationAttrs(name string, attrs ...string) *Builder {
	return b.add(RelDef{Name: name, Arity: len(attrs), Attrs: append([]string(nil), attrs...)})
}

func (b *Builder) add(def RelDef) *Builder {
	if b.err != nil {
		return b
	}
	switch {
	case !identRe.MatchString(def.Name):
		b.err = fmt.Errorf("schema: invalid relation name %q", def.Name)
	case def.Arity < 0:
		b.err = fmt.Errorf("schema: relation %s has negative arity", def.Name)
	default:
		if _, dup := b.rels[def.Name]; dup {
			b.err = fmt.Errorf("schema: duplicate relation %s", def.Name)
			return b
		}
		for _, a := range def.Attrs {
			if !identRe.MatchString(a) {
				b.err = fmt.Errorf("schema: relation %s has invalid attribute name %q", def.Name, a)
				return b
			}
		}
		seen := make(map[string]bool, len(def.Attrs))
		for _, a := range def.Attrs {
			if seen[a] {
				b.err = fmt.Errorf("schema: relation %s repeats attribute %q", def.Name, a)
				return b
			}
			seen[a] = true
		}
		b.rels[def.Name] = def
	}
	return b
}

// Build returns the schema or the first accumulated error.
func (b *Builder) Build() (*Schema, error) {
	if b.err != nil {
		return nil, b.err
	}
	rels := make(map[string]RelDef, len(b.rels))
	for k, v := range b.rels {
		rels[k] = v
	}
	return &Schema{rels: rels}, nil
}

// MustBuild builds or panics; for tests and examples with literal schemas.
func (b *Builder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// Lookup returns the definition of name.
func (s *Schema) Lookup(name string) (RelDef, bool) {
	d, ok := s.rels[name]
	return d, ok
}

// Arity returns the arity of name or an error if the relation is unknown.
func (s *Schema) Arity(name string) (int, error) {
	d, ok := s.rels[name]
	if !ok {
		return 0, fmt.Errorf("schema: unknown relation %q", name)
	}
	return d.Arity, nil
}

// Names returns all relation names, sorted.
func (s *Schema) Names() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of relations.
func (s *Schema) Len() int { return len(s.rels) }

// String renders the schema as "name/arity" pairs, sorted.
func (s *Schema) String() string {
	out := ""
	for i, n := range s.Names() {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s/%d", n, s.rels[n].Arity)
	}
	return out
}
