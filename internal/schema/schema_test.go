package schema

import (
	"strings"
	"testing"
)

func TestBuildSimple(t *testing.T) {
	s, err := NewBuilder().Relation("r", 2).Relation("p", 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Arity("r"); got != 2 {
		t.Fatalf("arity(r) = %d", got)
	}
	if got, _ := s.Arity("p"); got != 0 {
		t.Fatalf("arity(p) = %d", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestBuildAttrs(t *testing.T) {
	s, err := NewBuilder().RelationAttrs("emp", "id", "dept").Build()
	if err != nil {
		t.Fatal(err)
	}
	d, ok := s.Lookup("emp")
	if !ok || d.Arity != 2 || d.Attrs[1] != "dept" {
		t.Fatalf("Lookup(emp) = %+v ok=%v", d, ok)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Schema, error)
		frag  string
	}{
		{"bad name", func() (*Schema, error) { return NewBuilder().Relation("9x", 1).Build() }, "invalid relation name"},
		{"negative arity", func() (*Schema, error) { return NewBuilder().Relation("r", -1).Build() }, "negative arity"},
		{"duplicate", func() (*Schema, error) { return NewBuilder().Relation("r", 1).Relation("r", 2).Build() }, "duplicate"},
		{"bad attr", func() (*Schema, error) { return NewBuilder().RelationAttrs("r", "ok", "not ok").Build() }, "invalid attribute"},
		{"dup attr", func() (*Schema, error) { return NewBuilder().RelationAttrs("r", "a", "a").Build() }, "repeats attribute"},
	}
	for _, c := range cases {
		if _, err := c.build(); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.frag)
		}
	}
}

func TestErrorSticky(t *testing.T) {
	b := NewBuilder().Relation("9x", 1).Relation("fine", 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("first error should stick")
	}
}

func TestUnknownRelation(t *testing.T) {
	s := NewBuilder().Relation("r", 1).MustBuild()
	if _, err := s.Arity("nope"); err == nil {
		t.Fatal("expected unknown-relation error")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("Lookup of unknown relation succeeded")
	}
}

func TestNamesSorted(t *testing.T) {
	s := NewBuilder().Relation("zz", 1).Relation("aa", 1).MustBuild()
	n := s.Names()
	if len(n) != 2 || n[0] != "aa" || n[1] != "zz" {
		t.Fatalf("Names = %v", n)
	}
}

func TestString(t *testing.T) {
	s := NewBuilder().Relation("b", 2).Relation("a", 1).MustBuild()
	if got := s.String(); got != "a/1, b/2" {
		t.Fatalf("String = %q", got)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder().Relation("", 1).MustBuild()
}
