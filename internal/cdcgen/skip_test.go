package cdcgen_test

import (
	"testing"

	"rtic/internal/cdcgen"
	"rtic/internal/core"
)

// TestSteadyStateTakesSkipPaths is the guard on ROADMAP item 2's skip
// rule: steady-state CDC traffic interleaves four streams over
// disjoint relations, so for most commits two of the three constraints
// have untouched read sets (skipped) and the third usually seeds from
// the delta. If this test fails, the delta-driven check path has
// silently degraded to full-plan (or tree-walk) evaluation on exactly
// the traffic it was built for.
//
// Steady config only: MaxReorder must stay 0 here, because displaced
// ops land in commits of other stream kinds and break the
// relation-disjointness the skip rule keys on.
func TestSteadyStateTakesSkipPaths(t *testing.T) {
	h, _ := cdcgen.Generate(cdcgen.Config{Steps: 300, Seed: 7})
	c := newChecker(t, h)

	actions := map[core.SkipAction]int{}
	total := 0
	for i, st := range h.Steps {
		if _, err := c.Step(st.Time, st.Tx); err != nil {
			t.Fatalf("step @%d: %v", st.Time, err)
		}
		if i < 20 {
			continue // warm-up: let plans compile and aux state settle
		}
		for _, si := range c.LastSkips() {
			actions[si.Action]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no skip decisions recorded")
	}

	cheap := actions[core.ActionSkipped] + actions[core.ActionSeeded]
	expensive := actions[core.ActionPlanned] + actions[core.ActionTreeWalk]
	t.Logf("skip actions over %d decisions: %v", total, actions)

	// Hard failure mode the issue names: everything fell back to the
	// expensive paths.
	if cheap == 0 {
		t.Fatalf("steady-state CDC traffic degraded to 100%% planned/tree-walk: %v", actions)
	}
	// Measured headroom: this workload runs ~99%% skipped+seeded
	// (557/340/3 at this seed). Half is a loose floor — tripping it
	// means the skip rule lost most of its coverage, not noise.
	if share := float64(cheap) / float64(total); share < 0.5 {
		t.Fatalf("skipped+seeded share %.2f < 0.50 (%d cheap vs %d expensive: %v)",
			share, cheap, expensive, actions)
	}
}
