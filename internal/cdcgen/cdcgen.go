// Package cdcgen generates CDC-style change feeds for the
// data-freshness scenario family (ROADMAP item 5): timestamped
// insert/delete streams shaped like a real change-data-capture pipeline
// — burst trains of source updates, bounded late-arrival reordering,
// Zipf-distributed hot keys, and source→derived row lineage — checked
// against validity-window, derived-lifetime, and staleness-escalation
// constraints expressed as Past MTL denials (the constraint shapes of
// Kang's validity-interval work; see PAPERS.md).
//
// The generator is deterministic in its seed: the same Config always
// produces the byte-identical history, so generated feeds serve as
// golden traces for the differential harness, the chaos suite, and the
// Table 10 benchmark alike. It emits plain workload.History values, so
// every existing consumer replays them unchanged.
//
// The feed interleaves four self-contained streams, each owning its
// relations, so distinct commits touch disjoint read sets (the shape
// the delta-driven check path's skip rule feeds on):
//
//	refresh    +reading(s)                    a source row was re-captured
//	serve      +serve(s)                      a consumer read sensor s
//	derived    +derived(d, s) / -derived(d,s) materialized rows with lineage
//	staleness  +mark(s) +stale(s) … +escalate(s)  operator escalation flow
//
// Event markers (reading, serve, mark, escalate) are cleared at the
// next commit of the same stream, so the metric window — not tuple
// persistence — decides freshness. stale(s) is a state held from mark
// to escalation; derived rows persist until their scheduled cleanup.
package cdcgen

import (
	"fmt"
	"math/rand"

	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/workload"
)

// Config parameterizes one generated feed. Zero values take the
// defaults noted on each field.
type Config struct {
	Steps   int   // commits to generate (default 200)
	Seed    int64 // generator seed; same seed ⇒ byte-identical history
	Sensors int   // sensor-key universe size (default 24)

	// ZipfS is the Zipf skew exponent for key draws (> 1; default 1.5).
	// Larger values concentrate traffic on fewer hot keys.
	ZipfS float64

	Validity        uint64 // serve freshness window V (default 16)
	DerivedLifetime uint64 // derived row lifetime L (default 24)
	ChainWindow     uint64 // staleness escalation window E (default 64)

	// Burst trains: after every BurstEvery steady commits, BurstLen
	// commits arrive in a burst (gap BurstGap instead of a random gap in
	// [1, SteadyGap]). BurstLen 0 disables bursts.
	BurstEvery int // steady commits between bursts (default 20 when BurstLen > 0)
	BurstLen   int // commits per burst train (default 0: steady only)
	SteadyGap  int // max steady-phase timestamp gap (default 4)
	BurstGap   int // burst-phase timestamp gap (default 1)

	// Late arrivals: each op is displaced to a later commit by up to
	// MaxReorder commits with probability LateRate. Per-key op order is
	// preserved (a row's delete never overtakes its insert), which is
	// exactly the guarantee commit-batched CDC transports give.
	MaxReorder int     // max displacement in commits (default 0: in order)
	LateRate   float64 // fraction of ops arriving late (default 0.25 when MaxReorder > 0)

	// ViolationRate is the fraction of serves, derived rows, and
	// escalation flows scheduled to break their constraint: a serve of a
	// stale (or never-captured) sensor, a derived row kept past its
	// source's validity, an escalation with a broken stale-chain.
	ViolationRate float64

	RefreshPerCommit int // source rows captured per refresh commit (default 2)
}

func (c Config) withDefaults() Config {
	if c.Steps <= 0 {
		c.Steps = 200
	}
	if c.Sensors <= 0 {
		c.Sensors = 24
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.5
	}
	if c.Validity == 0 {
		c.Validity = 16
	}
	if c.DerivedLifetime == 0 {
		c.DerivedLifetime = 24
	}
	if c.ChainWindow == 0 {
		c.ChainWindow = 64
	}
	if c.BurstLen > 0 && c.BurstEvery <= 0 {
		c.BurstEvery = 20
	}
	if c.SteadyGap <= 0 {
		c.SteadyGap = 4
	}
	if c.BurstGap <= 0 {
		c.BurstGap = 1
	}
	if c.MaxReorder > 0 && c.LateRate == 0 {
		c.LateRate = 0.25
	}
	if c.RefreshPerCommit <= 0 {
		c.RefreshPerCommit = 2
	}
	return c
}

// Stream kinds, one per commit.
const (
	KindRefresh   = "refresh"
	KindServe     = "serve"
	KindDerived   = "derived"
	KindStaleness = "staleness"
)

// Meta reports what the generator actually did, for shape-asserting
// tests and for benchmarks that attribute measurements to phases.
type Meta struct {
	Burst []bool   // per commit: inside a burst train
	Kinds []string // per commit: stream kind

	Displaced       int // ops that arrived late
	MaxDisplacement int // largest observed displacement, in commits

	KeyDraws map[int64]int // sensor-key draw histogram (hot-key shape)

	PlannedViolations int // flows scheduled to violate their constraint
}

// Schema is the CDC freshness schema every generated feed ranges over.
func Schema() *schema.Schema {
	return schema.NewBuilder().
		Relation("reading", 1).  // reading(s): source row for sensor s was captured
		Relation("serve", 1).    // serve(s): a consumer read sensor s
		Relation("derived", 2).  // derived(d, s): materialized row d with source s
		Relation("mark", 1).     // mark(s): sensor declared stale (event)
		Relation("stale", 1).    // stale(s): staleness state, mark → escalation
		Relation("escalate", 1). // escalate(s): operator escalation (event)
		MustBuild()
}

// Constraints are the freshness policies checked against a feed, as
// Past MTL denials (see examples/specs for the spec-file corpus):
// a served reading must have been captured within its validity window,
// a derived row must not outlive its source's lifetime, and an
// escalation must ride an unbroken staleness chain.
func Constraints(cfg Config) []workload.ConstraintSpec {
	cfg = cfg.withDefaults()
	return []workload.ConstraintSpec{
		{Name: "fresh_serve", Source: fmt.Sprintf("serve(s) -> once[0,%d] reading(s)", cfg.Validity)},
		{Name: "derived_lineage", Source: fmt.Sprintf("derived(d, s) -> once[0,%d] reading(s)", cfg.DerivedLifetime)},
		{Name: "stale_escalation", Source: fmt.Sprintf("escalate(s) -> (stale(s) since[0,%d] mark(s))", cfg.ChainWindow)},
	}
}

// logical is one commit before late-arrival displacement.
type logical struct {
	time  uint64
	burst bool
	kind  string
	ops   []storage.Op
}

// derivedRow is a materialized row awaiting its scheduled cleanup.
type derivedRow struct {
	id, sensor int64
	dropAt     uint64 // delete at the first derived commit with t >= dropAt
}

// staleFlow is one in-flight staleness escalation.
type staleFlow struct {
	sensor   int64
	markedAt uint64
	violate  int // 0 compliant, 1 never stale, 2 chain broken early, 3 escalate past window
}

// Generate builds one feed. The returned history carries Schema() and
// Constraints(cfg); Meta describes the shapes the knobs produced.
func Generate(cfg Config) (workload.History, Meta) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Sensors-1))
	meta := Meta{KeyDraws: make(map[int64]int)}

	draw := func() int64 {
		s := int64(zipf.Uint64())
		meta.KeyDraws[s]++
		return s
	}

	var (
		lastRefresh  = make(map[int64]uint64) // sensor → time of latest capture
		recent       []int64                  // capture order, newest last (no dups)
		pendingClear = map[string][]storage.Op{}
		derivedLive  []derivedRow
		flows        []staleFlow
		inFlow       = make(map[int64]bool)
		nextDerived  int64
		logicals     = make([]logical, 0, cfg.Steps)
		tm           uint64
	)

	noteRefresh := func(s int64, t uint64) {
		if _, ok := lastRefresh[s]; ok {
			for i, r := range recent {
				if r == s {
					recent = append(recent[:i], recent[i+1:]...)
					break
				}
			}
		}
		lastRefresh[s] = t
		recent = append(recent, s)
	}

	// freshSensor picks a sensor captured within window of t, preferring
	// hot keys; ok is false when nothing qualifies yet.
	freshSensor := func(t, window uint64) (int64, bool) {
		for try := 0; try < 4; try++ {
			s := draw()
			if at, ok := lastRefresh[s]; ok && t-at <= window {
				return s, true
			}
		}
		for i := len(recent) - 1; i >= 0; i-- {
			if s := recent[i]; t-lastRefresh[s] <= window {
				return s, true
			}
		}
		return 0, false
	}

	// staleSensor picks a sensor whose capture aged out of window; ok is
	// false when every known sensor is fresh.
	staleSensor := func(t, window uint64) (int64, bool) {
		for _, s := range recent {
			if t-lastRefresh[s] > window {
				return s, true
			}
		}
		return 0, false
	}

	period := cfg.BurstEvery + cfg.BurstLen
	for i := 0; i < cfg.Steps; i++ {
		burst := cfg.BurstLen > 0 && i%period >= cfg.BurstEvery
		if burst {
			tm += uint64(cfg.BurstGap)
		} else {
			tm += uint64(1 + rng.Intn(cfg.SteadyGap))
		}

		var kind string
		if burst {
			// A burst train is a flood of source captures and reads.
			if rng.Intn(3) == 0 {
				kind = KindServe
			} else {
				kind = KindRefresh
			}
		} else {
			switch r := rng.Intn(10); {
			case r < 4:
				kind = KindRefresh
			case r < 7:
				kind = KindServe
			case r < 9:
				kind = KindDerived
			default:
				kind = KindStaleness
			}
		}

		lc := logical{time: tm, burst: burst, kind: kind}
		lc.ops = append(lc.ops, pendingClear[kind]...)
		pendingClear[kind] = nil
		clearNext := func(rel string, row tuple.Tuple) {
			pendingClear[kind] = append(pendingClear[kind], storage.Op{Rel: rel, Tuple: row})
		}
		insert := func(rel string, row tuple.Tuple) {
			lc.ops = append(lc.ops, storage.Op{Rel: rel, Tuple: row, Insert: true})
		}

		switch kind {
		case KindRefresh:
			n := cfg.RefreshPerCommit
			if burst {
				n += rng.Intn(cfg.RefreshPerCommit + 1)
			}
			for k := 0; k < n; k++ {
				s := draw()
				insert("reading", tuple.Ints(s))
				clearNext("reading", tuple.Ints(s))
				noteRefresh(s, tm)
			}

		case KindServe:
			n := 1 + rng.Intn(2)
			for k := 0; k < n; k++ {
				var s int64
				if rng.Float64() < cfg.ViolationRate {
					meta.PlannedViolations++
					var ok bool
					if s, ok = staleSensor(tm, cfg.Validity); !ok {
						// Nothing is stale yet: serve a phantom sensor
						// that was never captured — a guaranteed miss.
						s = int64(cfg.Sensors) + rng.Int63n(int64(cfg.Sensors))
					}
				} else {
					var ok bool
					if s, ok = freshSensor(tm, cfg.Validity); !ok {
						continue // nothing fresh to serve yet
					}
				}
				insert("serve", tuple.Ints(s))
				clearNext("serve", tuple.Ints(s))
			}

		case KindDerived:
			// Cleanup due rows first (their scheduled drop time passed).
			var live []derivedRow
			for _, d := range derivedLive {
				if tm >= d.dropAt {
					lc.ops = append(lc.ops, storage.Op{Rel: "derived", Tuple: tuple.Ints(d.id, d.sensor)})
				} else {
					live = append(live, d)
				}
			}
			derivedLive = live
			// Materialize new rows from fresh sources.
			for k := 0; k < 1+rng.Intn(2); k++ {
				s, ok := freshSensor(tm, cfg.DerivedLifetime/2+1)
				if !ok {
					break
				}
				id := nextDerived
				nextDerived++
				insert("derived", tuple.Ints(id, s))
				drop := tm + cfg.DerivedLifetime/2
				if rng.Float64() < cfg.ViolationRate {
					// Keep the row past its source's lifetime: it
					// violates from expiry until the late cleanup.
					meta.PlannedViolations++
					drop = tm + cfg.DerivedLifetime + 1 + uint64(rng.Intn(int(cfg.DerivedLifetime)))
				}
				derivedLive = append(derivedLive, derivedRow{id: id, sensor: s, dropAt: drop})
			}

		case KindStaleness:
			// Advance at most one in-flight flow, oldest first.
			if len(flows) > 0 {
				f := flows[0]
				age := tm - f.markedAt
				switch {
				case f.violate == 2 && age < cfg.ChainWindow/2:
					// Break the chain: drop the stale state early, then
					// escalate on a later staleness commit.
					flows[0].violate = 1 // chain now broken; escalate as-is later
					lc.ops = append(lc.ops, storage.Op{Rel: "stale", Tuple: tuple.Ints(f.sensor)})
				case f.violate == 3 && age <= cfg.ChainWindow:
					// Escalate-too-late: hold until the window expires.
				default:
					flows = flows[1:]
					delete(inFlow, f.sensor)
					insert("escalate", tuple.Ints(f.sensor))
					clearNext("escalate", tuple.Ints(f.sensor))
					if f.violate != 1 {
						// Resolve the staleness state at the next staleness
						// commit, not here: the since-chain is evaluated on
						// the post-commit state, so stale(s) must still hold
						// in the escalation's own commit. (violate 1 never
						// had the row, or dropped it early.)
						clearNext("stale", tuple.Ints(f.sensor))
					}
				}
			}
			// Maybe open a new flow on a sensor not already escalating —
			// and not one whose stale row is scheduled for clearing, or
			// the deferred delete would kill the new flow's chain.
			if len(flows) < 3 {
				s := draw()
				pendingStale := false
				for _, op := range pendingClear[kind] {
					if op.Rel == "stale" && op.Tuple.Key() == tuple.Ints(s).Key() {
						pendingStale = true
						break
					}
				}
				if !inFlow[s] && !pendingStale {
					f := staleFlow{sensor: s, markedAt: tm}
					if rng.Float64() < cfg.ViolationRate {
						meta.PlannedViolations++
						f.violate = 1 + rng.Intn(3)
					}
					insert("mark", tuple.Ints(s))
					clearNext("mark", tuple.Ints(s))
					if f.violate != 1 {
						insert("stale", tuple.Ints(s))
					}
					flows = append(flows, f)
					inFlow[s] = true
				}
			}
		}

		meta.Burst = append(meta.Burst, burst)
		meta.Kinds = append(meta.Kinds, kind)
		logicals = append(logicals, lc)
	}

	steps := displace(logicals, cfg, rng, &meta)
	return workload.History{
		Schema:      Schema(),
		Constraints: Constraints(cfg),
		Steps:       steps,
	}, meta
}

// displace applies bounded late-arrival reordering: each op lands up to
// MaxReorder commits after its logical commit, preserving per-key op
// order so a row's delete never overtakes its insert. Commit
// timestamps are unchanged — a displaced op simply arrives (and is
// evaluated) later, exactly like a late CDC record.
func displace(logicals []logical, cfg Config, rng *rand.Rand, meta *Meta) []workload.Step {
	n := len(logicals)
	out := make([][]storage.Op, n)
	lastPos := make(map[string]int)
	for i, lc := range logicals {
		for _, op := range lc.ops {
			pos := i
			if cfg.MaxReorder > 0 && rng.Float64() < cfg.LateRate {
				pos = i + 1 + rng.Intn(cfg.MaxReorder)
				if pos > n-1 {
					pos = n - 1
				}
			}
			key := op.Rel + "|" + op.Tuple.Key()
			if p, ok := lastPos[key]; ok && pos < p {
				pos = p
			}
			lastPos[key] = pos
			if d := pos - i; d > 0 {
				meta.Displaced++
				if d > meta.MaxDisplacement {
					meta.MaxDisplacement = d
				}
			}
			out[pos] = append(out[pos], op)
		}
	}
	steps := make([]workload.Step, n)
	for i, lc := range logicals {
		tx := storage.NewTransaction()
		for _, op := range out[i] {
			if op.Insert {
				tx.Insert(op.Rel, op.Tuple)
			} else {
				tx.Delete(op.Rel, op.Tuple)
			}
		}
		steps[i] = workload.Step{Time: lc.time, Tx: tx}
	}
	return steps
}

// Render writes a history in the transaction-log format of
// internal/spec ("@t +rel(…) -rel(…)"), one commit per line — the
// canonical byte representation the golden-trace tests compare.
func Render(h workload.History) string {
	var b []byte
	for _, st := range h.Steps {
		b = append(b, fmt.Sprintf("@%d %s\n", st.Time, st.Tx.String())...)
	}
	return string(b)
}
