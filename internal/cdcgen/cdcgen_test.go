package cdcgen_test

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"rtic/internal/cdcgen"
	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/workload"
)

// goldenCfg exercises every knob at once: burst trains, late-arrival
// reordering, and planned violations on top of the Zipf key stream.
var goldenCfg = cdcgen.Config{
	Steps: 200, Seed: 1,
	BurstLen: 8, BurstEvery: 16,
	MaxReorder:    3,
	ViolationRate: 0.15,
}

// goldenHash pins the byte-exact rendered trace of goldenCfg.
// Explicitly seeded math/rand sequences are stable across Go releases,
// so this hash only moves when the generator itself changes — bump it
// deliberately, alongside the change that moved it.
const goldenHash = "5d634db2646a18d728c15c44338222959403aee25a55e912922035567991604f"

func TestGoldenTrace(t *testing.T) {
	h, _ := cdcgen.Generate(goldenCfg)
	sum := sha256.Sum256([]byte(cdcgen.Render(h)))
	if got := hex.EncodeToString(sum[:]); got != goldenHash {
		t.Fatalf("golden trace drifted:\n  got  %s\n  want %s", got, goldenHash)
	}
}

func TestSameSeedByteIdentical(t *testing.T) {
	h1, m1 := cdcgen.Generate(goldenCfg)
	h2, m2 := cdcgen.Generate(goldenCfg)
	if cdcgen.Render(h1) != cdcgen.Render(h2) {
		t.Fatal("same seed produced different histories")
	}
	if m1.Displaced != m2.Displaced || m1.MaxDisplacement != m2.MaxDisplacement ||
		m1.PlannedViolations != m2.PlannedViolations {
		t.Fatalf("same seed produced different meta: %+v vs %+v", m1, m2)
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	seen := make(map[string]int64)
	for seed := int64(1); seed <= 5; seed++ {
		cfg := goldenCfg
		cfg.Seed = seed
		h, _ := cdcgen.Generate(cfg)
		r := cdcgen.Render(h)
		if prev, dup := seen[r]; dup {
			t.Fatalf("seeds %d and %d produced identical histories", prev, seed)
		}
		seen[r] = seed
	}
}

// TestBurstShape pins the burst-train knob: the phase pattern follows
// (BurstEvery steady, BurstLen burst) periods, burst commits arrive at
// exactly BurstGap apart, and steady gaps stay within [1, SteadyGap].
func TestBurstShape(t *testing.T) {
	cfg := cdcgen.Config{Steps: 120, Seed: 9, BurstLen: 8, BurstEvery: 16, SteadyGap: 4, BurstGap: 1}
	h, meta := cdcgen.Generate(cfg)
	if len(meta.Burst) != cfg.Steps || len(h.Steps) != cfg.Steps {
		t.Fatalf("got %d phase marks, %d steps; want %d", len(meta.Burst), len(h.Steps), cfg.Steps)
	}
	period := cfg.BurstEvery + cfg.BurstLen
	bursts := 0
	for i, b := range meta.Burst {
		if want := i%period >= cfg.BurstEvery; b != want {
			t.Fatalf("commit %d: burst=%v, want %v", i, b, want)
		}
		if b {
			bursts++
		}
		if i == 0 {
			continue
		}
		gap := h.Steps[i].Time - h.Steps[i-1].Time
		if b {
			if gap != uint64(cfg.BurstGap) {
				t.Fatalf("commit %d: burst gap %d, want %d", i, gap, cfg.BurstGap)
			}
		} else if gap < 1 || gap > uint64(cfg.SteadyGap) {
			t.Fatalf("commit %d: steady gap %d outside [1,%d]", i, gap, cfg.SteadyGap)
		}
	}
	if bursts == 0 {
		t.Fatal("no burst commits generated")
	}
	// Burst trains are capture/read floods: no derived or staleness
	// commits inside a train.
	for i, k := range meta.Kinds {
		if meta.Burst[i] && k != cdcgen.KindRefresh && k != cdcgen.KindServe {
			t.Fatalf("burst commit %d has kind %q", i, k)
		}
	}
}

// TestReorderBound pins the late-arrival knob: displacement happens,
// never exceeds MaxReorder, vanishes when the knob is off, and per-key
// op order survives (a row's delete never overtakes its insert).
// Displacement is the last generation phase, so the same seed with
// MaxReorder=0 yields the exact in-order stream to compare against.
func TestReorderBound(t *testing.T) {
	cfg := cdcgen.Config{Steps: 150, Seed: 4, MaxReorder: 3}
	h, meta := cdcgen.Generate(cfg)
	if meta.Displaced == 0 {
		t.Fatal("MaxReorder=3 with default LateRate displaced nothing")
	}
	if meta.MaxDisplacement < 1 || meta.MaxDisplacement > cfg.MaxReorder {
		t.Fatalf("max displacement %d outside [1,%d]", meta.MaxDisplacement, cfg.MaxReorder)
	}

	inOrderCfg := cfg
	inOrderCfg.MaxReorder = 0
	inOrder, im := cdcgen.Generate(inOrderCfg)
	if im.Displaced != 0 || im.MaxDisplacement != 0 {
		t.Fatalf("MaxReorder=0 still displaced %d ops", im.Displaced)
	}
	if cdcgen.Render(h) == cdcgen.Render(inOrder) {
		t.Fatal("reordered feed is byte-identical to the in-order feed")
	}

	// Reordering must preserve each key's op sequence exactly — the
	// guarantee commit-batched CDC transports give. Storage would
	// tolerate a swapped insert/delete silently (no-op semantics), so
	// it has to be pinned here.
	got, want := perKeyOps(h), perKeyOps(inOrder)
	if len(got) != len(want) {
		t.Fatalf("reordering changed the key set: %d keys vs %d", len(got), len(want))
	}
	for key, seq := range want {
		if got[key] != seq {
			t.Fatalf("key %s: op sequence changed by reordering:\n  got  %s\n  want %s", key, got[key], seq)
		}
	}
}

// perKeyOps projects a history onto per-key op sequences: for each
// rel|tuple key, the string of insert (+) / delete (-) ops in arrival
// order.
func perKeyOps(h workload.History) map[string]string {
	seqs := make(map[string]string)
	for _, st := range h.Steps {
		for _, op := range st.Tx.Ops() {
			key := op.Rel + "|" + op.Tuple.Key()
			if op.Insert {
				seqs[key] += "+"
			} else {
				seqs[key] += "-"
			}
		}
	}
	return seqs
}

// TestHotKeySkew pins the Zipf knob: a steeper exponent concentrates
// more of the key draws on the hottest key, and the default skew is
// decisively hot (the hottest sensor takes over a quarter of draws).
func TestHotKeySkew(t *testing.T) {
	share := func(s float64) float64 {
		_, meta := cdcgen.Generate(cdcgen.Config{Steps: 300, Seed: 11, ZipfS: s})
		top, total := 0, 0
		for _, n := range meta.KeyDraws {
			total += n
			if n > top {
				top = n
			}
		}
		if total == 0 {
			t.Fatalf("ZipfS=%v: no key draws", s)
		}
		return float64(top) / float64(total)
	}
	mild, steep := share(1.1), share(3.0)
	if steep <= mild {
		t.Fatalf("steeper Zipf did not concentrate draws: s=3.0 share %.2f <= s=1.1 share %.2f", steep, mild)
	}
	if def := share(0); def < 0.25 {
		t.Fatalf("default skew too flat: hottest key share %.2f < 0.25", def)
	}
}

// TestViolationKnob pins the violation scheduler: rate 0 plans none,
// a positive rate plans some and the checker actually reports
// violations when the feed replays. (Rate 0 does not promise zero
// reported violations: late arrivals and cleanup lag can legitimately
// push a compliant flow over its window — that is the realism the
// generator exists to provide.)
func TestViolationKnob(t *testing.T) {
	cfg := cdcgen.Config{Steps: 200, Seed: 2}
	_, meta := cdcgen.Generate(cfg)
	if meta.PlannedViolations != 0 {
		t.Fatalf("ViolationRate=0 planned %d violations", meta.PlannedViolations)
	}

	cfg.ViolationRate = 0.3
	h, meta := cdcgen.Generate(cfg)
	if meta.PlannedViolations == 0 {
		t.Fatal("ViolationRate=0.3 planned no violations")
	}
	if n := countViolations(t, h); n == 0 {
		t.Fatal("ViolationRate=0.3 feed replayed with zero reported violations")
	}
}

// TestConstraintsParse pins that every generated constraint is
// accepted by the parser against the generated schema — the corpus is
// useless if a consumer has to special-case it.
func TestConstraintsParse(t *testing.T) {
	for _, cs := range cdcgen.Constraints(cdcgen.Config{}) {
		if _, err := check.Parse(cs.Name, cs.Source, cdcgen.Schema()); err != nil {
			t.Fatalf("constraint %s does not parse: %v", cs.Name, err)
		}
	}
}

// TestRenderFormat pins the rendered trace to the spec-log line format
// ("@t <ops>"), so golden traces stay loadable by the spec tooling.
func TestRenderFormat(t *testing.T) {
	h, _ := cdcgen.Generate(cdcgen.Config{Steps: 30, Seed: 5})
	r := cdcgen.Render(h)
	lines := strings.Split(strings.TrimRight(r, "\n"), "\n")
	if len(lines) != 30 {
		t.Fatalf("got %d lines, want 30", len(lines))
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "@") {
			t.Fatalf("line %d does not start with @: %q", i, line)
		}
	}
}

func countViolations(t *testing.T, h workload.History) int {
	t.Helper()
	c := newChecker(t, h)
	n := 0
	for _, st := range h.Steps {
		vs, err := c.Step(st.Time, st.Tx)
		if err != nil {
			t.Fatalf("step @%d: %v", st.Time, err)
		}
		n += len(vs)
	}
	return n
}

func newChecker(t *testing.T, h workload.History) *core.Checker {
	t.Helper()
	c := core.New(h.Schema)
	for _, cs := range h.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			t.Fatalf("parse %s: %v", cs.Name, err)
		}
		if err := c.AddConstraint(con); err != nil {
			t.Fatalf("add %s: %v", cs.Name, err)
		}
	}
	return c
}
