package engine

import (
	"fmt"
	"strings"
	"testing"

	"rtic/internal/check"
	"rtic/internal/storage"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
	}{
		{"incremental", Incremental},
		{"naive", Naive},
		{"active", ActiveRules},
		{"active-rules", ActiveRules},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "warp", "INCREMENTAL", "Naive"} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "incremental") {
			t.Errorf("ParseMode(%q) error does not list valid modes: %v", bad, err)
		}
	}
}

func TestModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{Incremental, Naive, ActiveRules} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%v.String()) = %v, %v", m, got, err)
		}
	}
}

func TestSerialBatch(t *testing.T) {
	var times []uint64
	step := func(tm uint64, tx *storage.Transaction) ([]check.Violation, error) {
		times = append(times, tm)
		if tm == 30 {
			return nil, fmt.Errorf("boom")
		}
		return []check.Violation{{Constraint: "c", Time: tm}}, nil
	}
	steps := []Step{
		{Time: 10, Tx: storage.NewTransaction()},
		{Time: 20, Tx: storage.NewTransaction()},
		{Time: 30, Tx: storage.NewTransaction()},
		{Time: 40, Tx: storage.NewTransaction()},
	}
	out, err := SerialBatch(step, steps)
	if err == nil || !strings.Contains(err.Error(), "batch step 2 (t=30)") {
		t.Fatalf("err = %v, want batch step 2 failure", err)
	}
	if len(out) != 2 {
		t.Fatalf("prefix violations = %d slices, want 2", len(out))
	}
	if len(times) != 3 {
		t.Fatalf("step called %d times, want 3 (stops at failure)", len(times))
	}

	times = nil
	out, err = SerialBatch(step, steps[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0][0].Time != 10 || out[1][0].Time != 20 {
		t.Fatalf("out = %v", out)
	}
}
