// Package engine defines the contract every checking route implements
// and the commit-pipeline vocabulary shared by the public API, the
// monitor, the daemons and the bench harness.
//
// Three engines satisfy the contract today: the paper's incremental
// bounded-history checker (internal/core), the naive full-history
// evaluator (internal/naive) and the active-DBMS rule route
// (internal/active). Everything above the engines — rtic.Checker, the
// network monitor, the CLIs, the experiment harness — programs against
// this interface, so scaling work (sharding, batching, parallel
// checking) lands behind one seam instead of three.
package engine

import (
	"fmt"
	"strings"

	"rtic/internal/check"
	"rtic/internal/obs"
	"rtic/internal/storage"
)

// Engine is the interface all checking routes implement.
//
// The lifecycle is: install constraints, then commit transactions.
// Engines are not safe for concurrent use; callers that share one
// engine across goroutines (the monitor) serialize commits.
type Engine interface {
	// AddConstraint installs a compiled constraint. Engines may reject
	// installation after the first commit (the incremental encoding
	// summarizes the history from its start).
	AddConstraint(*check.Constraint) error
	// Step commits one transaction at the given timestamp (strictly
	// increasing across commits) and returns the violation witnesses of
	// the resulting state.
	Step(uint64, *storage.Transaction) ([]check.Violation, error)
	// StepBatch commits a sequence of transactions in order and returns
	// per-transaction violations, amortizing fixed per-commit overhead
	// where the engine can. On error the committed prefix stays
	// committed (the detection-oriented model never rolls back) and the
	// violations of that prefix are returned alongside the error.
	StepBatch([]Step) ([][]check.Violation, error)
	// SetObserver attaches (or detaches, with nil) instrumentation.
	SetObserver(*obs.Observer)
}

// Step is one transaction of a batch commit.
type Step struct {
	Time uint64
	Tx   *storage.Transaction
}

// StepFunc is the single-transaction commit signature of an Engine.
type StepFunc func(uint64, *storage.Transaction) ([]check.Violation, error)

// SerialBatch implements StepBatch for engines without an amortized
// batch path: steps commit one at a time through step. It carries the
// contract's error semantics — the violations of the committed prefix
// are returned with the error of the failing step.
func SerialBatch(step StepFunc, steps []Step) ([][]check.Violation, error) {
	out := make([][]check.Violation, 0, len(steps))
	for i, s := range steps {
		vs, err := step(s.Time, s.Tx)
		if err != nil {
			return out, fmt.Errorf("engine: batch step %d (t=%d): %w", i, s.Time, err)
		}
		out = append(out, vs)
	}
	return out, nil
}

// Mode selects a checking engine.
type Mode int

const (
	// Incremental is the paper's method: bounded history encoding, no
	// stored history. The default.
	Incremental Mode = iota
	// Naive stores the full history and evaluates the temporal
	// semantics directly; the baseline the paper improves on.
	Naive
	// ActiveRules compiles constraints to production rules maintaining
	// the encoding in ordinary relations (the active-DBMS route).
	ActiveRules
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Incremental:
		return "incremental"
	case Naive:
		return "naive"
	case ActiveRules:
		return "active-rules"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ModeNames lists the accepted ParseMode spellings, for usage strings.
func ModeNames() []string {
	return []string{"incremental", "naive", "active", "active-rules"}
}

// ParseMode resolves a mode name as accepted by the CLIs. "active" is
// an alias for "active-rules"; unknown names produce an error listing
// the valid ones.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "incremental":
		return Incremental, nil
	case "naive":
		return Naive, nil
	case "active", "active-rules":
		return ActiveRules, nil
	default:
		return 0, fmt.Errorf("engine: unknown mode %q (valid: %s)", s, strings.Join(ModeNames(), ", "))
	}
}
