// Package check defines the objects shared by every checker in the
// repository: compiled constraints (with their denial form) and
// violation reports.
//
// A constraint C(x̄) with free variables x̄ is read as ∀x̄ C and must hold
// in every state of the history. Checkers work with the denial
// Δ = nnf(¬C): the satisfying bindings of Δ at a state are exactly the
// violation witnesses of C there, so checking is witness enumeration.
package check

import (
	"fmt"
	"regexp"

	"rtic/internal/fol"
	"rtic/internal/mtl"
	"rtic/internal/schema"
	"rtic/internal/tuple"
)

var nameRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// Constraint is a named, compiled integrity constraint.
type Constraint struct {
	// Name identifies the constraint in violation reports.
	Name string
	// Formula is the constraint C as written.
	Formula mtl.Formula
	// Denial is nnf(¬C), the formula whose satisfying bindings are the
	// violation witnesses. It is safe (range-restricted).
	Denial mtl.Formula
	// Vars are the free variables of C, sorted; violation bindings are
	// reported in this order.
	Vars []string
}

// Compile validates and compiles a constraint: the formula is checked
// against the schema, its denial is normalized, and the denial must be
// safe so that violation witnesses are enumerable.
func Compile(name string, formula mtl.Formula, s *schema.Schema) (*Constraint, error) {
	if !nameRe.MatchString(name) {
		return nil, fmt.Errorf("check: invalid constraint name %q", name)
	}
	if err := fol.CheckSchema(formula, s); err != nil {
		return nil, fmt.Errorf("check: constraint %s: %w", name, err)
	}
	denial := mtl.Simplify(mtl.Normalize(&mtl.Not{F: formula}))
	if err := mtl.CheckSafe(denial); err != nil {
		return nil, fmt.Errorf("check: constraint %s: denial is not range-restricted: %w", name, err)
	}
	vars := mtl.FreeVars(formula)
	// Simplification may fold a degenerate constraint into a form that
	// no longer binds every constraint variable (e.g. "false and p(x)"
	// is violated by every value of x); such constraints have no
	// enumerable witness set and are rejected.
	if !sameVarsList(vars, mtl.FreeVars(denial)) {
		if t, ok := denial.(mtl.Truth); ok && !t.Bool {
			// The denial is identically false: the constraint is a
			// tautology and trivially holds; keep it (it reports
			// nothing, cheaply).
		} else {
			return nil, fmt.Errorf("check: constraint %s: violation witnesses do not bind every constraint variable (constraint variables %v, denial binds %v)",
				name, vars, mtl.FreeVars(denial))
		}
	}
	return &Constraint{
		Name:    name,
		Formula: formula,
		Denial:  denial,
		Vars:    vars,
	}, nil
}

func sameVarsList(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Parse compiles a constraint from surface syntax.
func Parse(name, src string, s *schema.Schema) (*Constraint, error) {
	f, err := mtl.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("check: constraint %s: %w", name, err)
	}
	return Compile(name, f, s)
}

// Violation reports one witness of a constraint failure.
type Violation struct {
	// Constraint is the name of the violated constraint.
	Constraint string
	// Index is the position of the violating state in the history
	// (0-based), Time its timestamp.
	Index int
	Time  uint64
	// Vars and Binding give the witness: Binding[i] is the value of
	// Vars[i]. Both are empty for closed constraints.
	Vars    []string
	Binding tuple.Tuple
}

// String renders the violation for reports and logs.
func (v Violation) String() string {
	if len(v.Vars) == 0 {
		return fmt.Sprintf("%s violated at state %d (time %d)", v.Constraint, v.Index, v.Time)
	}
	s := fmt.Sprintf("%s violated at state %d (time %d) by ", v.Constraint, v.Index, v.Time)
	for i, name := range v.Vars {
		if i > 0 {
			s += ", "
		}
		s += name + "=" + v.Binding[i].String()
	}
	return s
}

// FromBindings converts the satisfying bindings of a constraint's denial
// into violation reports. The binding set must range over a subset of
// the constraint's variables (denial and constraint share free
// variables).
func FromBindings(c *Constraint, index int, t uint64, b *fol.Bindings) ([]Violation, error) {
	if b.Empty() {
		return nil, nil
	}
	var out []Violation
	var convErr error
	b.Each(func(env fol.Env) bool {
		row := make(tuple.Tuple, len(c.Vars))
		for i, v := range c.Vars {
			val, ok := env[v]
			if !ok {
				convErr = fmt.Errorf("check: denial binding misses constraint variable %q", v)
				return false
			}
			row[i] = val
		}
		out = append(out, Violation{
			Constraint: c.Name,
			Index:      index,
			Time:       t,
			Vars:       c.Vars,
			Binding:    row,
		})
		return true
	})
	if convErr != nil {
		return nil, convErr
	}
	return out, nil
}
