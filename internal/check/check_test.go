package check

import (
	"strings"
	"testing"

	"rtic/internal/fol"
	"rtic/internal/mtl"
	"rtic/internal/schema"
	"rtic/internal/value"
)

func testSchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("hire", 1).
		Relation("fire", 1).
		MustBuild()
}

func TestCompileRehireConstraint(t *testing.T) {
	c, err := Parse("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "no_quick_rehire" {
		t.Fatalf("name = %q", c.Name)
	}
	if len(c.Vars) != 1 || c.Vars[0] != "e" {
		t.Fatalf("vars = %v", c.Vars)
	}
	// Denial: hire(e) and once[0,365] fire(e).
	want := mtl.MustParse("hire(e) and once[0,365] fire(e)")
	if !mtl.Equal(c.Denial, want) {
		t.Fatalf("denial = %s, want %s", c.Denial, want)
	}
	if err := mtl.CheckSafe(c.Denial); err != nil {
		t.Fatalf("denial unsafe: %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	s := testSchema()
	cases := []struct{ name, src, frag string }{
		{"bad name!", "hire(e)", "invalid constraint name"},
		{"c1", "nosuch(e)", "unknown relation"},
		{"c2", "hire(e, f)", "arity"},
		// ¬(¬hire(e)) = hire(e): safe. But ¬(hire(e)) = not hire(e): unsafe denial.
		{"c3", "hire(e)", "range-restricted"},
	}
	for _, c := range cases {
		_, err := Parse(c.name, c.src, s)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q, %q) err = %v, want containing %q", c.name, c.src, err, c.frag)
		}
	}
}

func TestParseSyntaxError(t *testing.T) {
	if _, err := Parse("c", "hire(", testSchema()); err == nil {
		t.Fatal("syntax error accepted")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Constraint: "c", Index: 3, Time: 77}
	if got := v.String(); got != "c violated at state 3 (time 77)" {
		t.Fatalf("closed violation = %q", got)
	}
	v.Vars = []string{"e"}
	v.Binding = append(v.Binding, value.Int(9))
	if got := v.String(); !strings.Contains(got, "e=9") {
		t.Fatalf("open violation = %q", got)
	}
}

func TestFromBindings(t *testing.T) {
	c, err := Parse("no_quick_rehire", "hire(e) -> not once fire(e)", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	b := fol.NewBindings([]string{"e"})
	_ = b.Add(fol.Env{"e": value.Int(7)})
	_ = b.Add(fol.Env{"e": value.Int(8)})
	vs, err := FromBindings(c, 2, 50, b)
	if err != nil || len(vs) != 2 {
		t.Fatalf("FromBindings = %v err=%v", vs, err)
	}
	for _, v := range vs {
		if v.Constraint != "no_quick_rehire" || v.Index != 2 || v.Time != 50 {
			t.Fatalf("violation fields wrong: %+v", v)
		}
	}
	// Empty bindings yield no violations.
	empty := fol.NewBindings([]string{"e"})
	vs, err = FromBindings(c, 0, 0, empty)
	if err != nil || vs != nil {
		t.Fatalf("empty bindings = %v err=%v", vs, err)
	}
	// Missing variable errors.
	bad := fol.NewBindings([]string{"x"})
	_ = bad.Add(fol.Env{"x": value.Int(1)})
	if _, err := FromBindings(c, 0, 0, bad); err == nil {
		t.Fatal("missing variable accepted")
	}
}

func TestCompileClosedConstraint(t *testing.T) {
	s := schema.NewBuilder().Relation("alarm", 0).MustBuild()
	c, err := Parse("never_alarm", "not alarm()", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Vars) != 0 {
		t.Fatalf("vars = %v", c.Vars)
	}
	// Denial is alarm().
	if !mtl.Equal(c.Denial, mtl.MustParse("alarm()")) {
		t.Fatalf("denial = %s", c.Denial)
	}
}

func TestCompileDegenerateConstraints(t *testing.T) {
	s := testSchema()
	// "false and hire(e)" is violated by every value of e — witnesses
	// are not enumerable, so compilation must fail.
	if _, err := Parse("bad", "false and hire(e)", s); err == nil {
		t.Fatal("degenerate constraint accepted")
	}
	// A tautology with free variables is fine: its denial is constant
	// false and it never reports anything.
	c, err := Parse("taut", "hire(e) or not hire(e)", s)
	if err != nil {
		t.Fatal(err)
	}
	if ft, ok := c.Denial.(mtl.Truth); !ok || ft.Bool {
		t.Fatalf("tautology denial = %s", c.Denial)
	}
}

func TestCompileSimplifiesDenial(t *testing.T) {
	s := testSchema()
	c, err := Parse("c", "hire(e) -> not (true and once[0,9] fire(e))", s)
	if err != nil {
		t.Fatal(err)
	}
	want := mtl.MustParse("hire(e) and once[0,9] fire(e)")
	if !mtl.Equal(c.Denial, want) {
		t.Fatalf("denial = %s, want simplified %s", c.Denial, want)
	}
}
