package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder polices the configured critical locks (the monitor commit
// lock monitor.Monitor.mu and the WAL's wal.Log.mu): inside a region
// where one is held, the function must not — directly or through any
// statically-resolved module callee —
//
//   - re-acquire the same lock (self-deadlock),
//   - call into package net (the commit path must never block on
//     network I/O; PR 6's stall regression), or
//   - invoke the WAL failure handler while holding wal.Log.mu (the
//     handler contract is "fired outside mu"; that is why
//     takeLatchNotifyLocked returns a closure instead of firing).
//
// Held regions span Lock() to the matching Unlock(); a deferred
// Unlock holds to the end of the function. `go` statements and
// returned closures run outside the region and are skipped; dynamic
// calls through func values or non-net interfaces are not followed
// (documented hole — the runtime stall tests remain the backstop).
// Individual sites are accepted with //rtic:lockok <reason>.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "prove critical-lock regions free of re-acquisition, net I/O, and WAL-handler invocation",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) error {
	critical := map[string]bool{}
	for _, id := range pass.Config.Locks {
		critical[id] = true
	}
	for decl, sum := range pass.Sums.ByDecl {
		walksCritical := false
		for id := range sum.acquires {
			if critical[id] {
				walksCritical = true
				break
			}
		}
		if !walksCritical {
			continue
		}
		w := &lockWalker{pass: pass, sum: sum, critical: critical, visited: map[*ast.FuncLit]bool{}}
		w.stmts(decl.Body.List, map[string]token.Pos{})
	}
	return nil
}

type lockWalker struct {
	pass     *Pass
	sum      *funcSummary
	critical map[string]bool
	visited  map[*ast.FuncLit]bool
}

// stmts walks one statement list with the current held-lock set.
// Nested control-flow bodies get a copy: a lock state change inside a
// branch is treated as local to it.
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, acq, rel := mutexOp(w.pass.Info, call); id != "" && (acq || rel) {
				if acq {
					if at, ok := held[id]; ok && w.critical[id] {
						w.pass.Report(call.Pos(), VerbLockOK,
							"re-acquires %s, already held since %s", id, w.pass.Fset.Position(at))
					}
					held[id] = call.Pos()
				} else {
					delete(held, id)
				}
				return
			}
		}
		w.exprs(s.X, held)
	case *ast.DeferStmt:
		if id, _, rel := mutexOp(w.pass.Info, s.Call); id != "" && rel {
			return // deferred unlock: held to the end of the function
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// A deferred closure runs before any earlier-deferred
			// unlock, i.e. still under the lock.
			w.stmts(lit.Body.List, copyHeld(held))
			return
		}
		w.call(s.Call, held)
		w.exprList(s.Call.Args, held)
	case *ast.GoStmt:
		// A new goroutine does not hold this goroutine's locks.
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.exprs(e, held)
		}
		for _, e := range s.Lhs {
			w.exprs(e, held)
		}
	case *ast.DeclStmt, *ast.ReturnStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.exprs(s, held)
	case *ast.BlockStmt:
		w.stmts(s.List, copyHeld(held))
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.exprs(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.exprs(s.Cond, held)
		}
		inner := copyHeld(held)
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.exprs(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.exprs(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.exprList(cc.List, held)
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.exprs(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, copyHeld(held))
				}
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	}
}

// exprs inspects a statement or expression for calls, skipping func
// literals that are not invoked on the spot and `go` statements.
func (w *lockWalker) exprs(n ast.Node, held map[string]token.Pos) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Descend only into literals invoked on the spot; stored
			// closures are scanned when a local call reaches them.
			return w.sum.immediateLits[n]
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			w.call(n, held)
		}
		return true
	})
}

func (w *lockWalker) exprList(list []ast.Expr, held map[string]token.Pos) {
	for _, e := range list {
		w.exprs(e, held)
	}
}

func (w *lockWalker) call(call *ast.CallExpr, held map[string]token.Pos) {
	info := w.pass.Info
	if isConversion(info, call) || builtinName(info, call) != "" {
		return
	}
	if id, acq, _ := mutexOp(info, call); id != "" {
		if acq {
			if at, ok := held[id]; ok && w.critical[id] {
				w.pass.Report(call.Pos(), VerbLockOK,
					"re-acquires %s, already held since %s", id, w.pass.Fset.Position(at))
			}
		}
		return
	}
	walHeld := w.walHeldAt(held)
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		obj := info.Uses[id]
		if via, isHandler := w.sum.handlerVarObjs[obj]; isHandler {
			definite := via == nil
			if !definite {
				if f, ok := w.pass.fact(via); ok && f.ReturnsHandler {
					definite = true
				}
			}
			if definite && walHeld != (token.Position{}) {
				w.pass.Report(call.Pos(), VerbLockOK,
					"invokes the WAL failure handler under %s (held since %s); the handler must fire after Unlock",
					w.pass.Config.WALLock, walHeld)
			}
			return
		}
		if lit := w.sum.localFnLits[obj]; lit != nil && !w.visited[lit] {
			w.visited[lit] = true
			w.stmts(lit.Body.List, copyHeld(held))
			return
		}
	}
	if handlerField(info, w.pass.Config, call.Fun) {
		if walHeld != (token.Position{}) {
			w.pass.Report(call.Pos(), VerbLockOK,
				"invokes the WAL failure handler under %s (held since %s); the handler must fire after Unlock",
				w.pass.Config.WALLock, walHeld)
		}
		return
	}
	fn, iface := staticCallee(info, call)
	if fn == nil {
		return
	}
	if p := fn.Pkg(); p != nil && p.Path() == "net" {
		for id, at := range held {
			if w.critical[id] {
				w.pass.Report(call.Pos(), VerbLockOK,
					"network I/O (net.%s) under %s (held since %s)", fn.Name(), id, w.pass.Fset.Position(at))
			}
		}
		return
	}
	if iface || !w.pass.Sums.moduleLocalFn(w.pass, fn) {
		return
	}
	fact, ok := w.pass.fact(fn)
	if !ok {
		return
	}
	for id, at := range held {
		if !w.critical[id] {
			continue
		}
		if fact.acquiresLock(id) {
			w.pass.Report(call.Pos(), VerbLockOK,
				"calls %s, which may re-acquire %s (held since %s)", fn.FullName(), id, w.pass.Fset.Position(at))
		}
		if fact.Net != "" {
			w.pass.Report(call.Pos(), VerbLockOK,
				"calls %s under %s (held since %s): %s", fn.FullName(), id, w.pass.Fset.Position(at), fact.Net)
		}
		if id == w.pass.Config.WALLock && fact.Handler != "" {
			w.pass.Report(call.Pos(), VerbLockOK,
				"calls %s under %s (held since %s): %s", fn.FullName(), id, w.pass.Fset.Position(at), fact.Handler)
		}
	}
}

// walHeldAt returns the acquire position of the WAL lock if held.
func (w *lockWalker) walHeldAt(held map[string]token.Pos) token.Position {
	if at, ok := held[w.pass.Config.WALLock]; ok {
		return w.pass.Fset.Position(at)
	}
	return token.Position{}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// moduleLocalFn reports whether fn belongs to the module under
// analysis (its facts are or will be available).
func (s *PackageSummaries) moduleLocalFn(pass *Pass, fn *types.Func) bool {
	p := fn.Pkg()
	if p == nil {
		return false
	}
	if p.Path() == s.Path {
		return true
	}
	_, ok := pass.DepFacts[p.Path()]
	return ok
}
