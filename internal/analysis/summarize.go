package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// PackageSummaries holds the per-function effect summaries of one
// package: the direct allocation sites, lock acquisitions, network
// calls, and WAL-handler invocations each function performs, plus the
// fixpoint-resolved transitive FuncFact each exports to dependents.
type PackageSummaries struct {
	Path    string
	Funcs   map[string]*funcSummary
	ByDecl  map[*ast.FuncDecl]*funcSummary
	Metrics []MetricFact
}

type site struct {
	pos  token.Pos
	what string
}

type callSite struct {
	pos   token.Pos
	fn    *types.Func
	iface bool // dynamic dispatch through an interface
}

// handlerCall is one possible invocation of the WAL failure handler:
// either definite (the handler field, or a variable bound to it) or
// conditional on via's ReturnsHandler fact (a variable bound to the
// result of a handler-returning function).
type handlerCall struct {
	pos token.Pos
	via *types.Func // nil = definite
}

type funcSummary struct {
	decl *ast.FuncDecl
	obj  *types.Func

	// Lexical scan (includes all nested func literals): allocation
	// evidence for noalloc.
	allocSites []site     // direct allocating constructs, suppression-pruned
	allocCalls []callSite // static calls, checked against callee facts

	// Direct-region scan (excludes func literals that are not invoked
	// on the spot): effects that happen when this function runs.
	acquires     map[string]token.Pos
	directCalls  []callSite
	handlerCalls []handlerCall
	retHandlers  []*types.Func // returned calls, for ReturnsHandler propagation
	retsHandler  bool          // returns the handler or a closure invoking it

	// Scanner indexes retained for lockorder's region walk.
	immediateLits  map[*ast.FuncLit]bool
	localFnLits    map[types.Object]*ast.FuncLit
	handlerVarObjs map[types.Object]*types.Func

	fact FuncFact
}

// metricMethods are the obs.Registry registration entry points.
var metricMethods = map[string]bool{
	"Counter": true, "CounterVec": true,
	"Gauge": true, "GaugeVec": true,
	"FloatGauge": true,
	"Histogram":  true, "HistogramVec": true,
}

// Summarize scans every function of pkg and resolves the transitive
// facts against the already-computed facts of module-local deps.
func Summarize(pkg *LoadedPackage, cfg *Config, dirs *Directives, depFacts map[string]*PackageFacts) *PackageSummaries {
	sums := &PackageSummaries{
		Path:   pkg.Path,
		Funcs:  map[string]*funcSummary{},
		ByDecl: map[*ast.FuncDecl]*funcSummary{},
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			s := &funcSummary{decl: fd, obj: obj, acquires: map[string]token.Pos{}}
			s.fact.Noalloc = dirs.Noalloc(fd)
			sc := &fnScanner{pkg: pkg, cfg: cfg, dirs: dirs, sum: s}
			sc.scan()
			sums.Funcs[obj.FullName()] = s
			sums.ByDecl[fd] = s
		}
	}
	sums.Metrics = collectMetrics(pkg)
	resolveFacts(pkg, sums, dirs, depFacts)
	return sums
}

// resolveFacts runs the intra-package fixpoint, folding callee facts
// (same package and module-local deps) into each function's FuncFact.
func resolveFacts(pkg *LoadedPackage, sums *PackageSummaries, dirs *Directives, depFacts map[string]*PackageFacts) {
	lookup := func(fn *types.Func) (FuncFact, bool) {
		if fn.Pkg() != nil && fn.Pkg().Path() == pkg.Path {
			if s, ok := sums.Funcs[fn.FullName()]; ok {
				return s.fact, true
			}
			return FuncFact{}, false
		}
		if fn.Pkg() != nil {
			if pf := depFacts[fn.Pkg().Path()]; pf != nil {
				f, ok := pf.Funcs[fn.FullName()]
				return f, ok
			}
		}
		return FuncFact{}, false
	}
	fset := pkg.Fset
	for changed := true; changed; {
		changed = false
		for _, s := range sums.Funcs {
			// Allocation: first direct site, else first call whose
			// callee's fact carries evidence (skipping call sites the
			// author suppressed with //rtic:allocok).
			if s.fact.Alloc == "" {
				ev := ""
				if len(s.allocSites) > 0 {
					ev = fmt.Sprintf("%s at %s", s.allocSites[0].what, fset.Position(s.allocSites[0].pos))
				} else {
					for _, cs := range s.allocCalls {
						if cs.iface {
							continue
						}
						if f, ok := lookup(cs.fn); ok && f.Alloc != "" {
							if dirs.covered(fset.Position(cs.pos), VerbAllocOK) {
								continue
							}
							ev = truncate(fmt.Sprintf("calls %s (%s): %s",
								cs.fn.FullName(), fset.Position(cs.pos), f.Alloc), 300)
							break
						}
					}
				}
				if ev != "" {
					s.fact.Alloc = ev
					changed = true
				}
			}
			// Lock acquisition: direct Lock() sites plus module callees'.
			for id := range s.acquires {
				if !s.fact.acquiresLock(id) {
					s.fact.Acquires = append(s.fact.Acquires, id)
					changed = true
				}
			}
			for _, cs := range s.directCalls {
				if cs.iface {
					continue
				}
				f, ok := lookup(cs.fn)
				if !ok {
					continue
				}
				for _, id := range f.Acquires {
					if !s.fact.acquiresLock(id) {
						s.fact.Acquires = append(s.fact.Acquires, id)
						changed = true
					}
				}
				if s.fact.Net == "" && f.Net != "" {
					s.fact.Net = truncate(fmt.Sprintf("calls %s (%s): %s",
						cs.fn.FullName(), fset.Position(cs.pos), f.Net), 300)
					changed = true
				}
				if s.fact.Handler == "" && f.Handler != "" {
					s.fact.Handler = truncate(fmt.Sprintf("calls %s (%s): %s",
						cs.fn.FullName(), fset.Position(cs.pos), f.Handler), 300)
					changed = true
				}
			}
			// Direct net I/O: any statically-visible call into package net.
			if s.fact.Net == "" {
				for _, cs := range s.directCalls {
					if p := cs.fn.Pkg(); p != nil && p.Path() == "net" {
						s.fact.Net = fmt.Sprintf("calls net.%s at %s", cs.fn.Name(), fset.Position(cs.pos))
						changed = true
						break
					}
				}
			}
			// WAL failure handler invocation.
			if s.fact.Handler == "" {
				for _, hc := range s.handlerCalls {
					if hc.via == nil {
						s.fact.Handler = fmt.Sprintf("invokes the WAL failure handler at %s", fset.Position(hc.pos))
						changed = true
						break
					}
					if f, ok := lookup(hc.via); ok && f.ReturnsHandler {
						s.fact.Handler = fmt.Sprintf("invokes the handler returned by %s at %s",
							hc.via.FullName(), fset.Position(hc.pos))
						changed = true
						break
					}
				}
			}
			if !s.fact.ReturnsHandler {
				if s.retsHandler {
					s.fact.ReturnsHandler = true
					changed = true
				} else {
					for _, fn := range s.retHandlers {
						if f, ok := lookup(fn); ok && f.ReturnsHandler {
							s.fact.ReturnsHandler = true
							changed = true
							break
						}
					}
				}
			}
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// collectMetrics finds obs.Registry metric registrations anywhere in
// the package (function bodies and package-level var initializers).
func collectMetrics(pkg *LoadedPackage) []MetricFact {
	var out []MetricFact
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !metricMethods[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || named.Obj().Name() != "Registry" ||
				named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "obs" {
				return true
			}
			name := ""
			if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				name = constant.StringVal(tv.Value)
			}
			out = append(out, MetricFact{Name: name, Pos: pkg.Fset.Position(call.Pos()).String()})
			return true
		})
	}
	return out
}

// ---- helpers shared by the scanner and the analyzers ----

// staticCallee resolves the statically-known callee of call, if any,
// and whether it dispatches through an interface.
func staticCallee(info *types.Info, call *ast.CallExpr) (fn *types.Func, iface bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f, false
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				recv := f.Type().(*types.Signature).Recv()
				return f, recv != nil && types.IsInterface(recv.Type())
			}
			return nil, false
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f, false
	}
	return nil, false
}

// isConversion reports whether call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// builtinName returns the name of the builtin being called, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// pointerShaped reports whether values of t fit in an interface's
// data word without allocating (pointers, channels, maps, funcs,
// unsafe pointers).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// lockID names the lock a mutex expression denotes: pkgpath.Type.field
// for struct fields, pkgpath.var for package-level mutexes, "" when
// unclassifiable (local mutexes, complex expressions).
func lockID(info *types.Info, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		recvTV, ok := info.Types[e.X]
		if !ok {
			return ""
		}
		t := recvTV.Type
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			return ""
		}
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return ""
}

// mutexOp classifies call as a sync.Mutex/RWMutex acquire or release,
// returning the lock identity.
func mutexOp(info *types.Info, call *ast.CallExpr) (id string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return lockID(info, sel.X), true, false
	case "Unlock", "RUnlock":
		return lockID(info, sel.X), false, true
	}
	return "", false, false
}

// handlerField reports whether expr selects the configured WAL
// failure-handler field (e.g. l.onFail).
func handlerField(info *types.Info, cfg *Config, expr ast.Expr) bool {
	if cfg.WALHandlerField == "" {
		return false
	}
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return false
	}
	return lockID(info, sel) == cfg.WALHandlerField
}

// allowedExternal lists non-module callees noalloc accepts: proven
// allocation-free (or pool-amortized) stdlib operations the hot paths
// rely on. Everything else outside the module is assumed to allocate.
func allowedExternal(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sync/atomic", "math", "math/bits":
		return true
	case "sync":
		switch fn.Name() {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "Get", "Put":
			return true
		}
	case "sort":
		return strings.HasPrefix(fn.Name(), "Search")
	case "strings":
		switch fn.Name() {
		case "Compare", "EqualFold", "HasPrefix", "HasSuffix", "IndexByte", "Contains":
			return true
		}
	case "strconv":
		return strings.HasPrefix(fn.Name(), "Append")
	case "time":
		switch fn.Name() {
		case "Seconds", "Nanoseconds", "Milliseconds", "Microseconds":
			return true
		}
	}
	return false
}
