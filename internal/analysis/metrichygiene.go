package analysis

import (
	"fmt"
	"go/token"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// metricNameRe is the required shape: rtic_ prefix, snake_case.
var metricNameRe = regexp.MustCompile(`^rtic(_[a-z0-9]+)+$`)

// MetricHygiene checks every metric registered through an obs.Registry
// (Counter/Gauge/Histogram and their Vec variants):
//
//   - the name is a constant string literal (grep-able, not computed),
//   - it matches rtic_<snake_case>,
//   - it is registered exactly once across the module (duplicates in
//     dependency packages are caught through facts), and
//   - it appears in the metrics catalogue (docs/OBSERVABILITY.md;
//     Config.MetricsDocPath), so the doc cannot drift from the code.
var MetricHygiene = &Analyzer{
	Name: "metrichygiene",
	Doc:  "enforce rtic_ snake_case metric names, single registration, and catalogue coverage",
	Run:  runMetricHygiene,
}

func runMetricHygiene(pass *Pass) error {
	metrics := pass.Sums.Metrics
	if len(metrics) == 0 {
		return nil
	}
	var doc string
	var docErr error
	if pass.Config.MetricsDocPath != "" {
		b, err := os.ReadFile(pass.Config.MetricsDocPath)
		if err != nil {
			docErr = err
		}
		doc = string(b)
	}
	// Names registered by module-local dependencies.
	depNames := map[string]string{} // name -> registration pos
	for _, pf := range pass.DepFacts {
		for _, m := range pf.Metrics {
			if m.Name != "" {
				depNames[m.Name] = m.Pos
			}
		}
	}
	seen := map[string]string{}
	docErrReported := false
	for _, m := range metrics {
		pos := parsePos(m.Pos)
		if m.Name == "" {
			reportAt(pass, pos, "metric name must be a constant string literal")
			continue
		}
		if !metricNameRe.MatchString(m.Name) {
			reportAt(pass, pos, "metric %q must match %s (rtic_ prefix, snake_case)", m.Name, metricNameRe)
		}
		if prev, dup := seen[m.Name]; dup {
			reportAt(pass, pos, "metric %q registered more than once (previous registration at %s)", m.Name, prev)
		} else if prev, dup := depNames[m.Name]; dup {
			reportAt(pass, pos, "metric %q already registered by a dependency at %s", m.Name, prev)
		}
		seen[m.Name] = m.Pos
		if pass.Config.MetricsDocPath != "" {
			if docErr != nil {
				if !docErrReported {
					reportAt(pass, pos, "cannot read metrics catalogue %s: %v", pass.Config.MetricsDocPath, docErr)
					docErrReported = true
				}
			} else if !strings.Contains(doc, m.Name) {
				reportAt(pass, pos, "metric %q is not documented in %s", m.Name, pass.Config.MetricsDocPath)
			}
		}
	}
	return nil
}

// reportAt emits a diagnostic at an already-formatted file:line:col
// position (metric facts carry string positions so they survive gob).
func reportAt(pass *Pass, pos token.Position, format string, args ...any) {
	*passDiags(pass) = append(*passDiags(pass), Diagnostic{
		Pos:      pos,
		Analyzer: pass.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func passDiags(pass *Pass) *[]Diagnostic { return pass.diags }

// parsePos parses "file:line:col" back into a token.Position.
func parsePos(s string) token.Position {
	p := token.Position{Filename: s}
	parts := strings.Split(s, ":")
	if len(parts) >= 3 {
		if line, err := strconv.Atoi(parts[len(parts)-2]); err == nil {
			if col, err := strconv.Atoi(parts[len(parts)-1]); err == nil {
				p.Filename = strings.Join(parts[:len(parts)-2], ":")
				p.Line = line
				p.Column = col
			}
		}
	}
	return p
}
