package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture loads testdata/src/<name> as a real (typechecked) package,
// runs the full suite with a fixture-specific config, and compares the
// diagnostics against the fixture's `// want` comments — the same
// contract as golang.org/x/tools' analysistest, rebuilt on the local
// framework.
func runFixture(t *testing.T, name string, cfgFor func(pkgPath string) *Config) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	var target *LoadedPackage
	for _, p := range pkgs {
		if p.Root {
			target = p
		}
	}
	if target == nil {
		t.Fatalf("fixture %s: no root package", name)
	}
	diags, _, err := RunAnalyzers(target, cfgFor(target.Path), nil, Suite()...)
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}

	wants := collectWants(t, target)
	matched := map[int]bool{}
	for _, d := range diags {
		full := d.Analyzer + ": " + d.Message
		found := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(full) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type wantExpectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantLineRe matches a trailing want comment; the regexes follow in
// backquotes or double quotes.
var wantLineRe = regexp.MustCompile(`//\s*want\s+(.+)$`)

var wantArgRe = regexp.MustCompile("`([^`]+)`" + `|"((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, pkg *LoadedPackage) []wantExpectation {
	t.Helper()
	var out []wantExpectation
	for path, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			m := wantLineRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRe.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: want comment with no pattern", path, i+1)
			}
			for _, a := range args {
				pat := a[1]
				if pat == "" {
					pat = a[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
				}
				out = append(out, wantExpectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return out
}

func TestNoAllocFixture(t *testing.T) {
	runFixture(t, "noallocfix", func(string) *Config { return &Config{} })
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, "lockfix", func(pkgPath string) *Config {
		return &Config{
			Locks:           []string{pkgPath + ".Log.mu"},
			WALLock:         pkgPath + ".Log.mu",
			WALHandlerField: pkgPath + ".Log.onFail",
		}
	})
}

func TestErrDiscardFixture(t *testing.T) {
	runFixture(t, "errfix", func(pkgPath string) *Config {
		return &Config{ErrPackages: []string{pkgPath}}
	})
}

// TestMetricHygieneFixture includes the doc-drift guard: the fixture
// registers rtic_fixture_missing_total, which METRICS.md deliberately
// omits, and the run must flag it.
func TestMetricHygieneFixture(t *testing.T) {
	runFixture(t, "obs", func(string) *Config {
		doc, err := filepath.Abs(filepath.Join("testdata", "src", "obs", "METRICS.md"))
		if err != nil {
			t.Fatal(err)
		}
		return &Config{MetricsDocPath: doc}
	})
}

// TestMetricDocDriftFails double-checks the drift guard end to end
// without want comments: pointing the catalogue at an empty doc must
// produce one undocumented-metric finding per registration.
func TestMetricDocDriftFails(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "obs"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, ".")
	if err != nil {
		t.Fatal(err)
	}
	var target *LoadedPackage
	for _, p := range pkgs {
		if p.Root {
			target = p
		}
	}
	missing := filepath.Join(t.TempDir(), "EMPTY.md")
	writeFile(t, missing, "# nothing documented\n")
	diags, _, err := RunAnalyzers(target, &Config{MetricsDocPath: missing}, nil, MetricHygiene)
	if err != nil {
		t.Fatal(err)
	}
	// The metric the real catalogue documents must now be flagged:
	// removing a doc entry (or adding a metric without one) fails the
	// build.
	drifted := false
	for _, d := range diags {
		if strings.Contains(d.Message, `"rtic_fixture_documented_total" is not documented`) {
			drifted = true
		}
	}
	if !drifted {
		t.Fatalf("empty catalogue not flagged; diagnostics: %s", fmt.Sprint(diags))
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
