package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const directiveSrc = `package p

//rtic:noalloc
func annotated() {}

func body() int {
	x := 1 //rtic:errok trailing justification
	//rtic:lockok standalone line covers the next one
	y := 2
	return x + y
}

//rtic:bogusverb whatever
var a = 1

//rtic:errok
var b = 2

//rtic:noalloc because of reasons
var c = 3

//rtic:noalloc
var misplaced = 4
`

func parseDirectives(t *testing.T) (*token.FileSet, *Directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, CollectDirectives(fset, []*ast.File{f}, map[string][]byte{"p.go": []byte(directiveSrc)})
}

func TestDirectiveAttachment(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	d := CollectDirectives(fset, []*ast.File{f}, map[string][]byte{"p.go": []byte(directiveSrc)})
	var fd *ast.FuncDecl
	for _, decl := range f.Decls {
		if x, ok := decl.(*ast.FuncDecl); ok && x.Name.Name == "annotated" {
			fd = x
		}
	}
	if fd == nil || !d.Noalloc(fd) {
		t.Fatalf("//rtic:noalloc not attached to annotated()")
	}
}

func TestDirectiveSuppression(t *testing.T) {
	_, d := parseDirectives(t)
	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }

	// Trailing directive covers its own line only.
	if !d.covered(at(7), VerbErrOK) {
		t.Errorf("trailing errok on line 7 should cover line 7")
	}
	if d.covered(at(8), VerbErrOK) {
		t.Errorf("trailing errok must not cover the line below")
	}
	// Standalone directive line covers the line below.
	if !d.covered(at(9), VerbLockOK) {
		t.Errorf("standalone lockok on line 8 should cover line 9")
	}
	// Wrong verb never matches.
	if d.covered(at(7), VerbLockOK) {
		t.Errorf("verb mismatch should not suppress")
	}
	// covered() must not mark usage; suppress() must.
	if got := unusedVerbs(d); !got["errok"] || !got["lockok"] {
		t.Fatalf("covered() marked directives used: %v", got)
	}
	if !d.suppress(at(7), VerbErrOK) || !d.suppress(at(9), VerbLockOK) {
		t.Fatalf("suppress() should match the same positions covered() did")
	}
	if got := unusedVerbs(d); got["errok"] || got["lockok"] {
		t.Fatalf("suppress() did not mark directives used: %v", got)
	}
}

// unusedVerbs runs hygiene with the full suite and reports which verbs
// still have unused-suppression findings.
func unusedVerbs(d *Directives) map[string]bool {
	out := map[string]bool{}
	for _, diag := range d.hygiene(Suite()) {
		if strings.Contains(diag.Message, "unused suppression") {
			for _, v := range []string{VerbAllocOK, VerbLockOK, VerbErrOK} {
				if strings.Contains(diag.Message, "//rtic:"+v) {
					out[v] = true
				}
			}
		}
	}
	return out
}

func TestDirectiveHygiene(t *testing.T) {
	_, d := parseDirectives(t)
	var msgs []string
	for _, diag := range d.hygiene(Suite()) {
		msgs = append(msgs, diag.Message)
	}
	all := strings.Join(msgs, "\n")
	for _, wanted := range []string{
		"unknown directive //rtic:bogusverb",
		"//rtic:errok requires a written justification",
		"//rtic:noalloc takes no arguments",
		"misplaced //rtic:noalloc",
	} {
		if !strings.Contains(all, wanted) {
			t.Errorf("hygiene missing %q in:\n%s", wanted, all)
		}
	}
}
