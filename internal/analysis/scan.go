package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// fnScanner performs the two body scans behind one funcSummary:
//
//   - the lexical allocation scan, which covers every nested func
//     literal (an allocation inside a closure defined in a noalloc
//     function is still an allocation whenever it runs), and
//   - the direct-effect scan for locks / network / handler facts,
//     which covers only code that runs when the function itself runs:
//     the body, func literals invoked on the spot, and local closures
//     the body calls — but not returned closures (that is exactly how
//     wal.Log.takeLatchNotifyLocked defers the failure handler past
//     the unlock) and not `go` statements (a new goroutine does not
//     hold the caller's locks).
type fnScanner struct {
	pkg  *LoadedPackage
	cfg  *Config
	dirs *Directives
	sum  *funcSummary

	immediate    map[*ast.FuncLit]bool
	exemptAppend map[*ast.CallExpr]bool
	exemptConv   map[*ast.CallExpr]bool
	callFuns     map[ast.Expr]bool
	addrLits     map[*ast.CompositeLit]bool
	// handlerVars maps local variables bound to the WAL failure
	// handler: value nil = bound to the field itself (definite), else
	// bound to the result of that function (conditional on its
	// ReturnsHandler fact).
	handlerVars map[types.Object]*types.Func
	localFns    map[types.Object]*ast.FuncLit
}

func (sc *fnScanner) info() *types.Info { return sc.pkg.Info }

func (sc *fnScanner) scan() {
	body := sc.sum.decl.Body
	sc.prepass(body)
	sc.allocScan(body)
	sc.directWalk(body, map[*ast.FuncLit]bool{})
	sc.returnScan(body)
	sc.sum.immediateLits = sc.immediate
	sc.sum.localFnLits = sc.localFns
	sc.sum.handlerVarObjs = sc.handlerVars
}

// prepass indexes the body: immediately-invoked func literals,
// self-append exemptions, map-index string conversions, call
// positions, handler-bound variables, and local closures.
func (sc *fnScanner) prepass(body *ast.BlockStmt) {
	sc.immediate = map[*ast.FuncLit]bool{}
	sc.exemptAppend = map[*ast.CallExpr]bool{}
	sc.exemptConv = map[*ast.CallExpr]bool{}
	sc.callFuns = map[ast.Expr]bool{}
	sc.addrLits = map[*ast.CompositeLit]bool{}
	sc.handlerVars = map[types.Object]*types.Func{}
	sc.localFns = map[types.Object]*ast.FuncLit{}
	info := sc.info()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			sc.callFuns[fun] = true
			if lit, ok := fun.(*ast.FuncLit); ok {
				sc.immediate[lit] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					sc.addrLits[lit] = true
				}
			}
		case *ast.IndexExpr:
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if conv, ok := ast.Unparen(n.Index).(*ast.CallExpr); ok && isConversion(info, conv) {
						// m[string(b)] compiles without allocating.
						sc.exemptConv[conv] = true
					}
				}
			}
		case *ast.AssignStmt:
			sc.prepassAssign(n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					sc.bindValue(info.Defs[name], n.Values[i])
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
					if builtinName(info, call) == "append" {
						// The caller-reassigns append idiom:
						// return append(dst, ...) grows amortized.
						sc.exemptAppend[call] = true
					}
				}
			}
		}
		return true
	})
}

func (sc *fnScanner) prepassAssign(n *ast.AssignStmt) {
	info := sc.info()
	if len(n.Lhs) != len(n.Rhs) {
		// Tuple assignment from one call: bind each name to the
		// handler if the call's receiver field matches (h, err :=
		// l.onFail, ... is the 1:1 case below).
		return
	}
	for i, lhs := range n.Lhs {
		rhs := n.Rhs[i]
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && builtinName(info, call) == "append" {
			if len(call.Args) > 0 && types.ExprString(lhs) == types.ExprString(call.Args[0]) {
				// Self-append: x = append(x, ...) amortizes its growth
				// over the pooled buffer's lifetime.
				sc.exemptAppend[call] = true
			}
		}
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		sc.bindValue(obj, rhs)
	}
}

// bindValue tracks what a local variable is bound to: the WAL failure
// handler field, the result of a (possibly) handler-returning call,
// or a func literal.
func (sc *fnScanner) bindValue(obj types.Object, rhs ast.Expr) {
	if obj == nil {
		return
	}
	rhs = ast.Unparen(rhs)
	if lit, ok := rhs.(*ast.FuncLit); ok {
		sc.localFns[obj] = lit
		return
	}
	if handlerField(sc.info(), sc.cfg, rhs) {
		sc.handlerVars[obj] = nil
		return
	}
	if call, ok := rhs.(*ast.CallExpr); ok && !isConversion(sc.info(), call) {
		if fn, iface := staticCallee(sc.info(), call); fn != nil && !iface && sc.pkg.ModuleLocal(fn) {
			sc.handlerVars[obj] = fn
		}
	}
}

// ---- allocation scan (lexical, includes all func literals) ----

func (sc *fnScanner) allocScan(body *ast.BlockStmt) {
	info := sc.info()
	var raw []site
	add := func(pos token.Pos, format string, args ...any) {
		raw = append(raw, site{pos: pos, what: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sc.allocCall(n, add)
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					add(n.Pos(), "slice literal allocates")
				case *types.Map:
					add(n.Pos(), "map literal allocates")
				default:
					if sc.addrLits[n] {
						add(n.Pos(), "&%s escapes to the heap", types.ExprString(n.Type))
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
					add(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if tv, ok := info.Types[n.Lhs[0]]; ok && isString(tv.Type) {
					add(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.FuncLit:
			if !sc.immediate[n] {
				add(n.Pos(), "func literal allocates a closure")
			}
		case *ast.GoStmt:
			add(n.Pos(), "go statement allocates a goroutine")
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !sc.callFuns[n] {
				add(n.Pos(), "method value %s allocates a closure", types.ExprString(n))
			}
		}
		return true
	})
	// Prune author-accepted sites; the suppression is thereby "used".
	for _, s := range raw {
		if sc.dirs.suppress(sc.pkg.Fset.Position(s.pos), VerbAllocOK) {
			continue
		}
		sc.sum.allocSites = append(sc.sum.allocSites, s)
	}
}

func (sc *fnScanner) allocCall(call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	info := sc.info()
	if isConversion(info, call) {
		sc.allocConversion(call, add)
		return
	}
	if b := builtinName(info, call); b != "" {
		switch b {
		case "make":
			add(call.Pos(), "make allocates")
		case "new":
			add(call.Pos(), "new allocates")
		case "append":
			if !sc.exemptAppend[call] {
				add(call.Pos(), "append to a fresh destination allocates (self-append x = append(x, ...) is exempt)")
			}
		}
		return
	}
	sc.boxedArgs(call, add)
	fn, iface := staticCallee(info, call)
	if fn == nil || iface {
		// Dynamic dispatch (func values, interface methods) is not
		// followed; TestPlanAllocationFree is the runtime backstop.
		return
	}
	if sc.pkg.ModuleLocal(fn) {
		sc.sum.allocCalls = append(sc.sum.allocCalls, callSite{pos: call.Pos(), fn: fn})
		return
	}
	if !allowedExternal(fn) {
		add(call.Pos(), "calls %s (outside the module; assumed to allocate)", fn.FullName())
	}
}

func (sc *fnScanner) allocConversion(call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	info := sc.info()
	if len(call.Args) != 1 {
		return
	}
	dst := info.Types[ast.Unparen(call.Fun)].Type
	srcTV, ok := info.Types[call.Args[0]]
	if !ok {
		return
	}
	src := srcTV.Type
	if types.IsInterface(dst) && src != nil && !types.IsInterface(src) && !srcTV.IsNil() && !pointerShaped(src) {
		add(call.Pos(), "conversion boxes %s into an interface", src)
		return
	}
	if sc.exemptConv[call] {
		return
	}
	if (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src)) {
		add(call.Pos(), "conversion between string and byte/rune slice copies")
	}
}

// boxedArgs flags concrete non-pointer-shaped arguments passed to
// interface parameters — each such pass heap-boxes the value.
func (sc *fnScanner) boxedArgs(call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	info := sc.info()
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() || types.IsInterface(at.Type) || pointerShaped(at.Type) {
			continue
		}
		add(arg.Pos(), "argument boxes %s into an interface parameter", at.Type)
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// ---- direct-effect scan (locks, net, handler) ----

func (sc *fnScanner) directWalk(n ast.Node, seen map[*ast.FuncLit]bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return sc.immediate[n]
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			sc.directCall(n, seen)
		}
		return true
	})
}

func (sc *fnScanner) directCall(call *ast.CallExpr, seen map[*ast.FuncLit]bool) {
	info := sc.info()
	if isConversion(info, call) || builtinName(info, call) != "" {
		return
	}
	if id, acq, _ := mutexOp(info, call); acq && id != "" {
		if _, ok := sc.sum.acquires[id]; !ok {
			sc.sum.acquires[id] = call.Pos()
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		obj := info.Uses[id]
		if via, isHandler := sc.handlerVars[obj]; isHandler {
			sc.sum.handlerCalls = append(sc.sum.handlerCalls, handlerCall{pos: call.Pos(), via: via})
			return
		}
		if lit := sc.localFns[obj]; lit != nil && !seen[lit] {
			// A local closure the body invokes runs as part of this
			// function: scan its body in place.
			seen[lit] = true
			sc.directWalk(lit.Body, seen)
			return
		}
	}
	if handlerField(info, sc.cfg, call.Fun) {
		sc.sum.handlerCalls = append(sc.sum.handlerCalls, handlerCall{pos: call.Pos()})
		return
	}
	if fn, iface := staticCallee(info, call); fn != nil {
		sc.sum.directCalls = append(sc.sum.directCalls, callSite{pos: call.Pos(), fn: fn, iface: iface})
	}
}

// ---- returned-handler scan ----

// returnScan marks functions whose return value, when later invoked,
// fires the WAL failure handler (takeLatchNotifyLocked's shape).
func (sc *fnScanner) returnScan(body *ast.BlockStmt) {
	info := sc.info()
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			res = ast.Unparen(res)
			switch r := res.(type) {
			case *ast.FuncLit:
				sc.litInvokesHandler(r)
			case *ast.CallExpr:
				if fn, iface := staticCallee(info, r); fn != nil && !iface && sc.pkg.ModuleLocal(fn) {
					sc.sum.retHandlers = append(sc.sum.retHandlers, fn)
				}
			case *ast.Ident:
				if via, isHandler := sc.handlerVars[info.Uses[r]]; isHandler {
					if via == nil {
						sc.sum.retsHandler = true
					} else {
						sc.sum.retHandlers = append(sc.sum.retHandlers, via)
					}
				}
				if lit := sc.localFns[info.Uses[r]]; lit != nil {
					sc.litInvokesHandler(lit)
				}
			case *ast.SelectorExpr:
				if handlerField(info, sc.cfg, r) {
					sc.sum.retsHandler = true
				}
			}
		}
		return true
	})
}

func (sc *fnScanner) litInvokesHandler(lit *ast.FuncLit) {
	info := sc.info()
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if handlerField(info, sc.cfg, call.Fun) {
			sc.sum.retsHandler = true
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if via, isHandler := sc.handlerVars[info.Uses[id]]; isHandler {
				if via == nil {
					sc.sum.retsHandler = true
				} else {
					sc.sum.retHandlers = append(sc.sum.retHandlers, via)
				}
			}
		}
		return true
	})
}
