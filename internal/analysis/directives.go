package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// The suite's annotation vocabulary. //rtic:noalloc marks a function
// whose body (and statically-resolved module callees) must be
// allocation-free. The three suppression verbs silence one diagnostic
// class on the line they annotate (or the line immediately below,
// for a standalone comment line) and REQUIRE a written justification:
//
//	//rtic:noalloc
//	//rtic:allocok <reason>   — accepted allocation in noalloc context
//	//rtic:lockok <reason>    — accepted operation under a critical lock
//	//rtic:errok <reason>     — justified discarded error
//
// Unknown verbs, missing reasons, misplaced noalloc annotations, and
// suppressions that silence nothing are themselves diagnostics, so a
// clean `rticvet` run proves every annotation in the tree is
// well-formed and attached to something the analyzers recognize.
const (
	dirPrefix   = "//rtic:"
	VerbNoalloc = "noalloc"
	VerbAllocOK = "allocok"
	VerbLockOK  = "lockok"
	VerbErrOK   = "errok"
)

// A Directive is one parsed //rtic: annotation.
type Directive struct {
	Pos    token.Position
	Verb   string
	Reason string
	// attached: noalloc directive that is part of a FuncDecl doc.
	attached bool
	// used: suppression that silenced at least one diagnostic or
	// matched a recognized (pruned) allocation site.
	used bool
	// alone: the directive comment is the only thing on its line, so
	// it covers the line below.
	alone bool
	// bad: the directive was reported malformed; it takes no further
	// part in suppression or unused-directive accounting.
	bad bool
}

// Directives indexes the //rtic: annotations of one package.
type Directives struct {
	all []*Directive
	// byLine: file -> line -> directive (at most one per line).
	byLine map[string]map[int]*Directive
	// noallocFuncs: positions (file:line of the func keyword) of
	// declarations annotated //rtic:noalloc.
	noallocDecls map[*ast.FuncDecl]*Directive
	malformed    []Diagnostic
}

// wantRe strips analysistest expectation comments that share the
// comment with a directive in fixtures ("//rtic:errok r // want ...").
var wantRe = regexp.MustCompile(`\s*//\s*want\s+.*$`)

// CollectDirectives parses every //rtic: comment in files. src maps
// filenames to their raw bytes (used to tell trailing directives from
// standalone comment lines); missing entries degrade gracefully.
func CollectDirectives(fset *token.FileSet, files []*ast.File, src map[string][]byte) *Directives {
	d := &Directives{
		byLine:       make(map[string]map[int]*Directive),
		noallocDecls: make(map[*ast.FuncDecl]*Directive),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(fset, c, src)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				pos := fset.Position(c.Pos())
				if dir := d.at(pos.Filename, pos.Line); dir != nil && dir.Verb == VerbNoalloc {
					dir.attached = true
					d.noallocDecls[fd] = dir
				}
			}
		}
	}
	return d
}

func (d *Directives) parseComment(fset *token.FileSet, c *ast.Comment, src map[string][]byte) {
	text := c.Text
	if !strings.HasPrefix(text, dirPrefix) {
		return
	}
	pos := fset.Position(c.Pos())
	rest := strings.TrimPrefix(text, dirPrefix)
	rest = wantRe.ReplaceAllString(rest, "")
	verb, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(reason)
	dir := &Directive{Pos: pos, Verb: verb, Reason: reason, alone: standaloneComment(pos, src)}
	d.all = append(d.all, dir)
	switch verb {
	case VerbNoalloc:
		if reason != "" {
			dir.bad = true
			d.malformed = append(d.malformed, Diagnostic{
				Pos: pos, Analyzer: "directive",
				Message: "//rtic:noalloc takes no arguments; it annotates the function it documents",
			})
			return
		}
	case VerbAllocOK, VerbLockOK, VerbErrOK:
		if reason == "" {
			dir.bad = true
			d.malformed = append(d.malformed, Diagnostic{
				Pos: pos, Analyzer: "directive",
				Message: "//rtic:" + verb + " requires a written justification (//rtic:" + verb + " <reason>)",
			})
			return
		}
	default:
		dir.bad = true
		d.malformed = append(d.malformed, Diagnostic{
			Pos: pos, Analyzer: "directive",
			Message: "unknown directive //rtic:" + verb + " (known: noalloc, allocok, lockok, errok)",
		})
		return
	}
	if m := d.byLine[pos.Filename]; m == nil {
		d.byLine[pos.Filename] = map[int]*Directive{pos.Line: dir}
	} else {
		m[pos.Line] = dir
	}
}

// standaloneComment reports whether only whitespace precedes the
// comment on its line (so the directive covers the line below it
// rather than trailing code on its own line).
func standaloneComment(pos token.Position, src map[string][]byte) bool {
	b, ok := src[pos.Filename]
	if !ok || pos.Offset > len(b) {
		return pos.Column == 1
	}
	for i := pos.Offset - pos.Column + 1; i < pos.Offset; i++ {
		if b[i] != ' ' && b[i] != '\t' {
			return false
		}
	}
	return true
}

func (d *Directives) at(file string, line int) *Directive {
	if m := d.byLine[file]; m != nil {
		return m[line]
	}
	return nil
}

// suppress reports whether a suppression of the given verb covers a
// diagnostic at pos, marking the directive used. A trailing directive
// covers its own line; a standalone directive line covers the line
// below it.
func (d *Directives) suppress(pos token.Position, verb string) bool {
	if dir := d.at(pos.Filename, pos.Line); dir != nil && dir.Verb == verb {
		dir.used = true
		return true
	}
	if dir := d.at(pos.Filename, pos.Line-1); dir != nil && dir.Verb == verb && dir.alone {
		dir.used = true
		return true
	}
	return false
}

// covered is suppress without the usage marking — for callers that
// need to know whether a suppression applies before the finding is
// final (usage is settled at report time).
func (d *Directives) covered(pos token.Position, verb string) bool {
	if dir := d.at(pos.Filename, pos.Line); dir != nil && dir.Verb == verb {
		return true
	}
	if dir := d.at(pos.Filename, pos.Line-1); dir != nil && dir.Verb == verb && dir.alone {
		return true
	}
	return false
}

// Noalloc reports whether fd carries //rtic:noalloc.
func (d *Directives) Noalloc(fd *ast.FuncDecl) bool {
	_, ok := d.noallocDecls[fd]
	return ok
}

// hygiene reports malformed, misplaced, and unused directives. Unused
// suppressions are only reported for verbs whose consuming analyzer
// actually ran, so single-analyzer fixture runs stay focused.
func (d *Directives) hygiene(ran []*Analyzer) []Diagnostic {
	verbRan := map[string]bool{}
	for _, a := range ran {
		switch a.Name {
		case "noalloc":
			verbRan[VerbAllocOK] = true
			verbRan[VerbNoalloc] = true
		case "lockorder":
			verbRan[VerbLockOK] = true
		case "errdiscard":
			verbRan[VerbErrOK] = true
		}
	}
	out := append([]Diagnostic(nil), d.malformed...)
	for _, dir := range d.all {
		if dir.bad {
			continue
		}
		switch dir.Verb {
		case VerbNoalloc:
			if verbRan[VerbNoalloc] && !dir.attached {
				out = append(out, Diagnostic{
					Pos: dir.Pos, Analyzer: "directive",
					Message: "misplaced //rtic:noalloc: must appear in the doc comment of a function declaration",
				})
			}
		case VerbAllocOK, VerbLockOK, VerbErrOK:
			if verbRan[dir.Verb] && !dir.used {
				out = append(out, Diagnostic{
					Pos: dir.Pos, Analyzer: "directive",
					Message: "unused suppression //rtic:" + dir.Verb + ": no " + dir.Verb + "-suppressible finding on this line",
				})
			}
		}
	}
	return out
}
