// Package analysis is the engine's custom static-analysis suite: a
// small go/analysis-style framework plus four analyzers (noalloc,
// lockorder, errdiscard, metrichygiene) that machine-check the
// implementation invariants the hot paths depend on — steady-state
// plan execution must not allocate, nothing reachable under the
// monitor commit lock or wal.Log.mu may re-acquire it / touch the
// network / fire the WAL failure handler, durability errors must
// never be silently discarded, and every metric is catalogued.
//
// The framework is built directly on the standard library (go/ast,
// go/types, go/importer) rather than golang.org/x/tools so the repo
// stays dependency-free; cmd/rticvet adapts it to the `go vet
// -vettool` unit-checker protocol. See docs/ANALYSIS.md for the rule
// catalogue and annotation syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named rule set run over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Config carries the invariant-specific knobs so the same analyzers
// run against both the real tree and self-contained test fixtures.
type Config struct {
	// Locks are the critical lock identities (pkgpath.Type.field) whose
	// hold regions lockorder polices.
	Locks []string
	// WALLock is the lock (also listed in Locks) under which invoking
	// the WAL failure handler is forbidden.
	WALLock string
	// WALHandlerField is the func-valued field (pkgpath.Type.field)
	// holding the WAL failure handler.
	WALHandlerField string
	// ErrPackages are the durability-critical package paths errdiscard
	// polices.
	ErrPackages []string
	// MetricsDocPath is the metrics catalogue every registered metric
	// must appear in ("" disables the doc check).
	MetricsDocPath string
}

// DefaultConfig returns the production configuration for this
// repository. metricsDoc is the path to docs/OBSERVABILITY.md ("" to
// skip the catalogue check, e.g. for packages outside the module).
func DefaultConfig(metricsDoc string) *Config {
	return &Config{
		Locks: []string{
			"rtic/internal/wal.Log.mu",
			"rtic/internal/monitor.Monitor.mu",
		},
		WALLock:         "rtic/internal/wal.Log.mu",
		WALHandlerField: "rtic/internal/wal.Log.onFail",
		ErrPackages: []string{
			"rtic/internal/wal",
			"rtic/internal/vfs",
			"rtic/internal/monitor",
		},
		MetricsDocPath: metricsDoc,
	}
}

// A Pass carries one analyzed package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // non-test files only
	Pkg      *types.Package
	Info     *types.Info
	Config   *Config

	// Dirs indexes the //rtic: directives of the package's files.
	Dirs *Directives
	// Sums holds the per-function summaries of this package (computed
	// once, shared by all analyzers).
	Sums *PackageSummaries
	// DepFacts maps module-local dependency package paths to their
	// serialized facts.
	DepFacts map[string]*PackageFacts

	diags *[]Diagnostic
}

// Report records a diagnostic unless a matching suppression directive
// covers its line. kind names the suppression verb that can silence
// this diagnostic ("" = not suppressible).
func (p *Pass) Report(pos token.Pos, kind, format string, args ...any) {
	position := p.Fset.Position(pos)
	if kind != "" && p.Dirs != nil && p.Dirs.suppress(position, kind) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// fact returns the FuncFact for fn, consulting this package's
// summaries first and dependency facts second.
func (p *Pass) fact(fn *types.Func) (FuncFact, bool) {
	id := fn.FullName()
	if p.Sums != nil {
		if s, ok := p.Sums.Funcs[id]; ok {
			return s.fact, true
		}
	}
	if pkg := fn.Pkg(); pkg != nil {
		if pf, ok := p.DepFacts[pkg.Path()]; ok && pf != nil {
			if f, ok := pf.Funcs[id]; ok {
				return f, true
			}
		}
	}
	return FuncFact{}, false
}

// RunAnalyzers runs the given analyzers over one loaded package and
// returns the diagnostics — including directive-hygiene findings
// (malformed, misplaced, or unused //rtic: annotations) — plus the
// package's exported facts for its dependents.
func RunAnalyzers(pkg *LoadedPackage, cfg *Config, depFacts map[string]*PackageFacts, analyzers ...*Analyzer) ([]Diagnostic, *PackageFacts, error) {
	var diags []Diagnostic
	dirs := CollectDirectives(pkg.Fset, pkg.Files, pkg.Src)
	sums := Summarize(pkg, cfg, dirs, depFacts)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Config:   cfg,
			Dirs:     dirs,
			Sums:     sums,
			DepFacts: depFacts,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return diags, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = append(diags, dirs.hygiene(analyzers)...)
	sortDiagnostics(diags)
	return diags, sums.Facts(), nil
}

// Suite returns the full analyzer suite in canonical order.
func Suite() []*Analyzer {
	return []*Analyzer{NoAlloc, LockOrder, ErrDiscard, MetricHygiene}
}

func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return ds[i].Message < ds[j].Message
	})
}

// typeIsError reports whether t is (or trivially implements) the
// built-in error interface.
func typeIsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return true
	}
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}
