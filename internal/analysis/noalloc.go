package analysis

// NoAlloc rejects functions annotated //rtic:noalloc whose bodies (or
// statically-resolved module callees, transitively) contain allocating
// constructs: make/new, slice and map literals, &T{} escapes, append
// to a fresh destination, non-constant string concatenation,
// string<->[]byte conversions (the m[string(b)] map-index form is
// exempt), closures, `go` statements, method values, interface boxing
// of non-pointer-shaped values, and calls outside the module that are
// not on the proven-allocation-free allowlist.
//
// Known holes, by design: dynamic calls (func values, interface
// methods) are not followed, and append growth of a pooled buffer
// (x = append(x, ...) / return append(x, ...)) is accepted as
// amortized. TestPlanAllocationFree remains the runtime backstop for
// both. Individual sites are accepted with //rtic:allocok <reason>.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "reject allocating constructs in functions annotated //rtic:noalloc",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for decl, sum := range pass.Sums.ByDecl {
		if !pass.Dirs.Noalloc(decl) {
			continue
		}
		// Direct sites were already filtered against //rtic:allocok
		// during summarization; what remains is a finding.
		for _, s := range sum.allocSites {
			pass.Report(s.pos, "", "%s in noalloc function %s", s.what, sum.obj.Name())
		}
		// Calls are checked against the callee's transitive fact.
		for _, cs := range sum.allocCalls {
			if cs.iface {
				continue
			}
			fact, ok := pass.fact(cs.fn)
			if !ok {
				pass.Report(cs.pos, VerbAllocOK,
					"noalloc function %s calls %s, which has no allocation fact (not analyzed)",
					sum.obj.Name(), cs.fn.FullName())
				continue
			}
			if fact.Alloc != "" {
				pass.Report(cs.pos, VerbAllocOK,
					"noalloc function %s calls %s, which may allocate: %s",
					sum.obj.Name(), cs.fn.FullName(), fact.Alloc)
			}
		}
	}
	return nil
}
