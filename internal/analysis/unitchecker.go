package analysis

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"
)

// VetConfig mirrors the vet.cfg JSON cmd/go hands a -vettool for each
// package (the unitchecker protocol): file lists, the import map,
// export-data paths for typechecking, and the facts plumbing.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes one unitchecker invocation: typecheck the package
// against export data, import dependency facts, run the suite, write
// this package's facts, and print findings. The returned exit code
// follows go vet's convention: 0 clean, 1 operational error, 2
// findings.
func RunUnit(cfgPath string, analyzers []*Analyzer, stderr io.Writer) int {
	cfgBytes, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "rticvet: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(cfgBytes, &cfg); err != nil {
		fmt.Fprintf(stderr, "rticvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Only module packages carry our invariants. Standard-library
	// deps, packages of other modules, and test variants ("pkg
	// [pkg.test]", synthesized test mains) just need an (empty) facts
	// file so the build graph stays satisfied; the base package run
	// already reported their diagnostics.
	if cfg.ModulePath == "" || strings.Contains(cfg.ImportPath, " [") ||
		strings.HasSuffix(cfg.ImportPath, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		return writeFacts(cfg.VetxOutput, FactSet{}, stderr)
	}
	// go vet folds _test.go files into the unit of a pattern-matched
	// package. The invariants cover non-test code only, so analyze the
	// non-test files (they never depend on test-only declarations); a
	// unit that is all test files (external _test packages, test mains)
	// just contributes empty facts.
	nonTest := cfg.GoFiles[:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			nonTest = append(nonTest, f)
		}
	}
	cfg.GoFiles = nonTest
	if len(cfg.GoFiles) == 0 {
		return writeFacts(cfg.VetxOutput, FactSet{}, stderr)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	lp := &listedPackage{ImportPath: cfg.ImportPath, Dir: cfg.Dir, GoFiles: cfg.GoFiles}
	pkg, err := typecheckListed(fset, lp, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeFacts(cfg.VetxOutput, FactSet{}, stderr)
		}
		fmt.Fprintf(stderr, "rticvet: %v\n", err)
		return 1
	}
	pkg.Module = cfg.ModulePath

	// Dependency facts: each vetx embeds its own transitive deps, so
	// merging the direct deps' files covers the full closure.
	factSet := FactSet{}
	for _, vetx := range cfg.PackageVetx {
		b, err := os.ReadFile(vetx)
		if err != nil {
			continue // dep produced no facts (e.g. stdlib before caching)
		}
		fs, err := DecodeFacts(b)
		if err != nil {
			fmt.Fprintf(stderr, "rticvet: %v\n", err)
			return 1
		}
		factSet.Merge(fs)
	}

	depFacts := map[string]*PackageFacts{}
	for path, pf := range factSet {
		depFacts[path] = pf
	}
	acfg := DefaultConfig(metricsDocFor(cfg.Dir))
	diags, pf, err := RunAnalyzers(pkg, acfg, depFacts, analyzers...)
	if err != nil {
		fmt.Fprintf(stderr, "rticvet: %v\n", err)
		return 1
	}
	factSet[cfg.ImportPath] = pf
	if code := writeFacts(cfg.VetxOutput, factSet, stderr); code != 0 {
		return code
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	return 2
}

func writeFacts(path string, fs FactSet, stderr io.Writer) int {
	if path == "" {
		return 0
	}
	b, err := EncodeFacts(fs)
	if err != nil {
		fmt.Fprintf(stderr, "rticvet: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, b, 0o666); err != nil {
		fmt.Fprintf(stderr, "rticvet: %v\n", err)
		return 1
	}
	return 0
}

// metricsDocFor resolves docs/OBSERVABILITY.md from the module root
// above dir ("" if absent, which disables the catalogue check).
func metricsDocFor(dir string) string {
	root := FindModuleRoot(dir)
	if root == "" {
		return ""
	}
	doc := root + "/docs/OBSERVABILITY.md"
	if _, err := os.Stat(doc); err != nil {
		return ""
	}
	return doc
}
