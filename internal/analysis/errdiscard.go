package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// durabilityOps are method/function names whose discarded error is
// always suspect in a durability-critical package: they move bytes
// toward (or away from) stable storage.
var durabilityOps = map[string]bool{
	"Sync": true, "Close": true, "Flush": true,
	"Truncate": true, "Remove": true, "Rename": true, "Reset": true,
	"Append": true, "AppendTx": true, "Checkpoint": true,
	"Write": true, "WriteString": true, "WriteFile": true,
	"WriteFileAtomic": true, "WriteFileAtomicFS": true,
	"SaveSnapshot": true, "MkdirAll": true, "Commit": true,
}

// ErrDiscard requires every discarded error in the durability-critical
// packages (Config.ErrPackages) to carry //rtic:errok <reason>:
//
//   - any error explicitly assigned to blank (`_ = l.Sync()`,
//     `x, _ := f()` where the blank slot is the error), and
//   - any call discarded as a bare statement (or `defer`) whose callee
//     is a durability operation (Sync/Close/Flush/Truncate/...) or
//     lives in one of the durability packages.
//
// Goroutine launches (`go f()`) are out of scope — their results need
// channel plumbing, not an annotation — as are test files.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "require //rtic:errok justifications for discarded errors in durability-critical packages",
	Run:  runErrDiscard,
}

func runErrDiscard(pass *Pass) error {
	inScope := false
	for _, p := range pass.Config.ErrPackages {
		if pass.Pkg.Path() == p {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkBareCall(pass, call, "")
				}
			case *ast.DeferStmt:
				checkBareCall(pass, n.Call, "deferred ")
			}
			// Note: a `go f()` launch itself is never an ExprStmt, so
			// goroutine launches are naturally out of scope while the
			// bodies of `go func() { ... }()` literals are still
			// inspected.
			return true
		})
	}
	return nil
}

// checkBlankAssign flags `_ = <call>` and `x, _ := <call>` where the
// blanked value is an error.
func checkBlankAssign(pass *Pass, n *ast.AssignStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Tuple-valued call: find the error components under blanks.
		call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tv, ok := pass.Info.Types[n.Rhs[0]]
		if !ok {
			return
		}
		tup, ok := tv.Type.(*types.Tuple)
		if !ok || tup.Len() != len(n.Lhs) {
			return
		}
		for i, lhs := range n.Lhs {
			if isBlank(lhs) && typeIsError(tup.At(i).Type()) {
				pass.Report(n.Pos(), VerbErrOK,
					"error from %s discarded into _ (justify with //rtic:errok <reason>)", callName(pass, call))
			}
		}
		return
	}
	if len(n.Rhs) != len(n.Lhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if !isBlank(lhs) {
			continue
		}
		call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if tv, ok := pass.Info.Types[n.Rhs[i]]; ok && typeIsError(tv.Type) {
			pass.Report(n.Pos(), VerbErrOK,
				"error from %s discarded into _ (justify with //rtic:errok <reason>)", callName(pass, call))
		}
	}
}

// checkBareCall flags expression-statement calls that drop an error
// result from a durability operation.
func checkBareCall(pass *Pass, call *ast.CallExpr, prefix string) {
	if isConversion(pass.Info, call) || builtinName(pass.Info, call) != "" {
		return
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return
	}
	hasErr := false
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if typeIsError(t.At(i).Type()) {
				hasErr = true
			}
		}
	default:
		hasErr = typeIsError(tv.Type)
	}
	if !hasErr {
		return
	}
	name := callName(pass, call)
	fn, _ := staticCallee(pass.Info, call)
	relevant := false
	if fn != nil {
		if durabilityOps[fn.Name()] {
			relevant = true
		} else if p := fn.Pkg(); p != nil {
			for _, ep := range pass.Config.ErrPackages {
				if p.Path() == ep {
					relevant = true
					break
				}
			}
		}
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && durabilityOps[sel.Sel.Name] {
		relevant = true // dynamic call, but the name says durability
	}
	if !relevant {
		return
	}
	pass.Report(call.Pos(), VerbErrOK,
		"%serror from %s silently discarded (justify with //rtic:errok <reason>)", prefix, name)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func callName(pass *Pass, call *ast.CallExpr) string {
	if fn, _ := staticCallee(pass.Info, call); fn != nil {
		return fn.FullName()
	}
	s := types.ExprString(call.Fun)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
