// Package lockfix is the lockorder analyzer's fixture: a miniature WAL
// shape (mutex, failure-handler field, network connection) with clean,
// violating, propagated, and suppressed critical sections.
package lockfix

import (
	"net"
	"sync"
)

type Log struct {
	mu     sync.Mutex
	onFail func(error)
	conn   net.Conn
	broken error
}

// CleanNotify is the correct pattern: snapshot the handler under the
// lock, fire it after Unlock.
func (l *Log) CleanNotify() {
	l.mu.Lock()
	h, err := l.onFail, l.broken
	l.mu.Unlock()
	if h != nil {
		h(err)
	}
}

func (l *Log) Reacquire() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mu.Lock() // want `lockorder: re-acquires .*Log\.mu, already held since`
}

func (l *Log) NetUnderLock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.conn.Write(nil) // want `lockorder: network I/O \(net\.Write\) under .*Log\.mu`
}

func (l *Log) NotifyLocked() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.onFail != nil {
		l.onFail(l.broken) // want `lockorder: invokes the WAL failure handler under .*Log\.mu`
	}
}

func (l *Log) lockedHelper() {
	l.mu.Lock()
	defer l.mu.Unlock()
}

func (l *Log) CallsLocked() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lockedHelper() // want `lockorder: calls .*lockedHelper, which may re-acquire .*Log\.mu`
}

func (l *Log) SuppressedRelock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lockedHelper() //rtic:lockok fixture: pretend the helper has a TryLock fast path
}
