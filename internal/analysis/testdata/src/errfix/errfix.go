// Package errfix is the errdiscard analyzer's fixture: discarded
// errors in a durability-critical package, with justified and
// unjustified variants plus a directive-hygiene case.
package errfix

type myErr struct{}

func (myErr) Error() string { return "err" }

type failer struct{}

func (failer) Sync() error  { return myErr{} }
func (failer) Close() error { return myErr{} }

func frob() error { return myErr{} }

func stat() (int, error) { return 0, myErr{} }

func discards(f failer) {
	_ = f.Sync()    // want `errdiscard: error from .*Sync discarded into _`
	f.Close()       // want `errdiscard: error from .*Close silently discarded`
	defer f.Close() // want `errdiscard: deferred error from .*Close silently discarded`
	_ = frob()      // want `errdiscard: error from .*frob discarded into _`
}

func tupleDiscard() int {
	n, _ := stat() // want `errdiscard: error from .*stat discarded into _`
	return n
}

func justified(f failer) {
	_ = f.Sync() //rtic:errok fixture: the log is already latched broken in this scenario
}

func noFinding(f failer) error {
	return f.Sync() //rtic:errok this suppresses nothing // want `directive: unused suppression //rtic:errok`
}
