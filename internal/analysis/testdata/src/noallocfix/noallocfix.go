// Package noallocfix is the noalloc analyzer's fixture: annotated
// functions in clean, violating, suppressed, and exempted variants.
// Diagnostics expected by the harness are marked with want comments.
package noallocfix

//rtic:noalloc
func cleanAdd(a, b int) int { return a + b }

//rtic:noalloc
func makesSlice(n int) []int {
	return make([]int, n) // want `noalloc: make allocates in noalloc function makesSlice`
}

//rtic:noalloc
func concat(a, b string) string {
	return a + b // want `noalloc: string concatenation allocates`
}

//rtic:noalloc
func callsAllocator() int {
	xs := helper() // want `noalloc: noalloc function callsAllocator calls .*helper, which may allocate: make allocates`
	return len(xs)
}

func helper() []int { return make([]int, 8) }

//rtic:noalloc
func suppressed(n int) []int {
	return make([]int, n) //rtic:allocok fixture: pretend warm-up allocation
}

// selfAppend exercises the pooled-buffer exemption: appending back into
// the same slice header is amortized, not steady-state allocation.
//
//rtic:noalloc
func selfAppend(xs []int, v int) []int {
	xs = append(xs, v)
	return xs
}

// mapProbe exercises the m[string(b)] conversion exemption.
//
//rtic:noalloc
func mapProbe(m map[string]int, k []byte) int { return m[string(k)] }

//rtic:noalloc
func boxes(v int) {
	blackhole(v) // want `noalloc: argument boxes int into an interface parameter`
}

func blackhole(x any) { _ = x }
