// Package obs is the metrichygiene analyzer's fixture: a miniature
// registry (the analyzer matches *Registry methods in a package named
// obs) with documented, undocumented, misnamed, duplicated, and
// non-constant registrations. METRICS.md in this directory is the
// fixture catalogue; rtic_fixture_missing_total is deliberately absent
// from it — the doc-drift guard.
package obs

type Counter struct{}

type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string) *Counter { return &Counter{} }

func register(r *Registry, dynamic string) {
	r.Counter("rtic_fixture_documented_total", "in the catalogue")
	r.Counter("rtic_fixture_missing_total", "absent from the catalogue") // want `metrichygiene: metric "rtic_fixture_missing_total" is not documented`
	r.Gauge("FixtureBadName", "wrong shape")                             // want `metrichygiene: metric "FixtureBadName" must match` `metric "FixtureBadName" is not documented`
	r.Counter("rtic_fixture_documented_total", "again")                  // want `metrichygiene: metric "rtic_fixture_documented_total" registered more than once`
	r.Gauge(dynamic, "non-constant name")                                // want `metrichygiene: metric name must be a constant string literal`
}
