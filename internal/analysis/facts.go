package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// FuncFact is the serialized cross-package summary of one function:
// what the analyzers need to know about a callee without re-reading
// its source. Facts flow bottom-up — a package's facts embed the
// transitive effects of its module-local callees.
type FuncFact struct {
	// Alloc is "" when the function is allocation-free under the
	// noalloc rules, else one piece of evidence ("make([]T, n) at
	// file:line", possibly via a call chain).
	Alloc string
	// Acquires lists lock identities (pkgpath.Type.field) the function
	// may acquire, directly or transitively.
	Acquires []string
	// Net is "" unless the function may perform network I/O (a
	// statically-visible call into package net), else evidence.
	Net string
	// Handler is "" unless the function may invoke the WAL failure
	// handler, else evidence.
	Handler string
	// ReturnsHandler marks functions returning a closure that invokes
	// the WAL failure handler (wal.Log.takeLatchNotifyLocked's shape);
	// calling their result under the WAL lock is a violation.
	ReturnsHandler bool
	// Noalloc records the //rtic:noalloc annotation, so callers can
	// rely on the callee being independently checked.
	Noalloc bool
}

// MetricFact is one metric registration site.
type MetricFact struct {
	Name string // the constant metric name ("" = non-constant, reported at the site)
	Pos  string // file:line of the registration
}

// PackageFacts is everything one package exports to its dependents'
// analyses.
type PackageFacts struct {
	Path    string
	Funcs   map[string]FuncFact // keyed by types.Func.FullName
	Metrics []MetricFact
}

func (f *FuncFact) acquiresLock(id string) bool {
	for _, a := range f.Acquires {
		if a == id {
			return true
		}
	}
	return false
}

// FactSet maps package path -> facts for every module-local package a
// unit of analysis can see. It is the gob payload rticvet writes per
// package: each package's facts file embeds its transitive
// module-local dependencies, so a dependent only needs its direct
// deps' files.
type FactSet map[string]*PackageFacts

// EncodeFacts serializes a fact set.
func EncodeFacts(fs FactSet) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fs); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts deserializes a fact set; empty input yields an empty set.
func DecodeFacts(b []byte) (FactSet, error) {
	fs := FactSet{}
	if len(b) == 0 {
		return fs, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&fs); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts: %w", err)
	}
	return fs, nil
}

// Merge folds other into fs (other wins on conflicts).
func (fs FactSet) Merge(other FactSet) {
	for path, pf := range other {
		fs[path] = pf
	}
}

// Facts extracts the serializable facts from a package's summaries.
func (s *PackageSummaries) Facts() *PackageFacts {
	pf := &PackageFacts{Path: s.Path, Funcs: make(map[string]FuncFact, len(s.Funcs))}
	for id, sum := range s.Funcs {
		pf.Funcs[id] = sum.fact
	}
	pf.Metrics = append(pf.Metrics, s.Metrics...)
	sort.Slice(pf.Metrics, func(i, j int) bool { return pf.Metrics[i].Pos < pf.Metrics[j].Pos })
	return pf
}
