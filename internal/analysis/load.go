package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// LoadedPackage is one source-typechecked package ready for analysis.
type LoadedPackage struct {
	Path   string
	Name   string
	Dir    string
	Module string // module path ("" = outside any module)
	Root   bool   // matched the load patterns (diagnostics wanted)

	Fset  *token.FileSet
	Files []*ast.File
	Src   map[string][]byte
	Types *types.Package
	Info  *types.Info
}

// ModuleLocal reports whether fn's package belongs to the analyzed
// module — i.e. source-level facts exist (or will exist) for it.
func (p *LoadedPackage) ModuleLocal(fn *types.Func) bool {
	tp := fn.Pkg()
	if tp == nil || p.Module == "" {
		return false
	}
	return tp.Path() == p.Module || strings.HasPrefix(tp.Path(), p.Module+"/")
}

// listedPackage mirrors the `go list -json` fields the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns with `go list -export -deps` (offline: export
// data comes from the local build cache, no network), source-parses
// and typechecks every module-local package in the closure, and
// returns them in dependency order (imports before importers), so
// facts can be computed bottom-up. Everything outside the module is
// imported from compiler export data.
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := map[string]*listedPackage{}
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}
	var module string
	for _, lp := range listed {
		if !lp.DepOnly && lp.Module != nil {
			module = lp.Module.Path
			break
		}
	}
	isLocal := func(lp *listedPackage) bool {
		return !lp.Standard && lp.Module != nil && module != "" && lp.Module.Path == module
	}

	// Topological order over module-local packages.
	var order []*listedPackage
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(lp *listedPackage) error
	visit = func(lp *listedPackage) error {
		switch state[lp.ImportPath] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", lp.ImportPath)
		case 2:
			return nil
		}
		state[lp.ImportPath] = 1
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok && isLocal(dep) {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[lp.ImportPath] = 2
		order = append(order, lp)
		return nil
	}
	for _, lp := range listed {
		if isLocal(lp) {
			if err := visit(lp); err != nil {
				return nil, err
			}
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, byPath)
	var out []*LoadedPackage
	for _, lp := range order {
		pkg, err := typecheckListed(fset, lp, imp)
		if err != nil {
			return nil, err
		}
		pkg.Module = module
		pkg.Root = !lp.DepOnly
		out = append(out, pkg)
	}
	return out, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Imports,Module,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := &listedPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// exportImporter imports packages from the gc export data files `go
// list -export` reported — the offline replacement for a module proxy.
func exportImporter(fset *token.FileSet, byPath map[string]*listedPackage) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		lp, ok := byPath[path]
		if !ok || lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(lp.Export)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typecheckListed parses and typechecks one listed package from source.
func typecheckListed(fset *token.FileSet, lp *listedPackage, imp types.Importer) (*LoadedPackage, error) {
	var files []*ast.File
	src := map[string][]byte{}
	for _, name := range lp.GoFiles {
		path := name
		if !strings.HasPrefix(path, "/") {
			path = lp.Dir + "/" + name
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		f, err := parser.ParseFile(fset, path, b, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		src[path] = b
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %w", lp.ImportPath, err)
	}
	return &LoadedPackage{
		Path:  lp.ImportPath,
		Name:  lp.Name,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Src:   src,
		Types: tpkg,
		Info:  info,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// RunDir loads patterns rooted at dir and runs analyzers over every
// module-local package bottom-up, returning diagnostics for the
// pattern-matched (root) packages.
func RunDir(dir string, cfg *Config, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	facts := map[string]*PackageFacts{}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, pf, err := RunAnalyzers(pkg, cfg, facts, analyzers...)
		if err != nil {
			return all, err
		}
		facts[pkg.Path] = pf
		if pkg.Root {
			all = append(all, diags...)
		}
	}
	return all, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(d + "/go.mod"); err == nil {
			return d
		}
		parent := parentDir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}

func parentDir(d string) string {
	i := strings.LastIndexByte(strings.TrimRight(d, "/"), '/')
	if i <= 0 {
		return "/"
	}
	return d[:i]
}
