package analysis

import (
	"os"
	"testing"
)

// TestTreeCleanUnderSuite is the suite's meta-test: the entire module
// must analyze clean. Because directive hygiene reports malformed,
// misplaced, and unused //rtic: annotations as diagnostics, a clean
// run also proves every annotation in the tree is well-formed and
// attached to something the analyzers recognize — adding a bogus
// //rtic:errok (or orphaning an existing one) fails this test.
func TestTreeCleanUnderSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := FindModuleRoot(wd)
	if root == "" {
		t.Fatal("no module root above the test directory")
	}
	diags, err := RunDir(root, DefaultConfig(root+"/docs/OBSERVABILITY.md"), Suite(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
