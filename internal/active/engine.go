// Package active implements the second implementation route the paper's
// line of work describes (the TKDE companion "Implementing Temporal
// Integrity Constraints Using an Active DBMS"): the bounded history
// encoding is stored in ordinary database relations and maintained by
// event–condition–action rules that fire after every committed
// transaction, in the style of Starburst's statement-level production
// rules.
//
// The engine is generic: a rule has a priority, a first-order condition
// (a safe kernel formula over the database, with per-firing parameters
// substituted as constants), and a list of insert/delete actions whose
// arguments are resolved against each binding the condition produced.
// Rules fire in ascending priority order with immediate coupling — each
// rule sees the effects of the rules before it.
package active

import (
	"fmt"
	"sort"
	"strings"

	"rtic/internal/fol"
	"rtic/internal/mtl"
	"rtic/internal/plan"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// ReservedPrefix marks engine-managed relations (auxiliary encodings,
// violation tables). User transactions may not touch them.
const ReservedPrefix = "rtic_"

// Action is one tuple-level effect of a rule: insert or delete on Rel
// with arguments resolved from the condition's binding (variables) and
// the firing parameters (already substituted as constants).
type Action struct {
	Insert bool
	Rel    string
	Args   []mtl.Term
}

// Rule is a statement-level production rule.
type Rule struct {
	Name     string
	Priority int
	// Condition is a safe kernel formula; its satisfying bindings drive
	// the actions. Variables listed in Params are replaced by the
	// values BindParams produces before evaluation.
	Condition mtl.Formula
	// BindParams computes the per-firing parameters from the commit
	// time and the previous commit time (started reports whether a
	// previous commit exists). May be nil for parameterless rules.
	BindParams func(now, last uint64, started bool) map[string]value.Value
	Actions    []Action

	// Compiled-condition state, built lazily at the first firing (the
	// parameter names are only known then). Conditions whose shape
	// defeats plan compilation, or whose parameter set varies across
	// firings, evaluate through Substitute plus the tree-walking
	// evaluator instead.
	planTried bool
	plan      *plan.Plan
	planIn    []string
	envBuf    fol.Env
}

// Engine is the active database: a state over base+managed relations and
// an ordered rule set.
type Engine struct {
	full    *schema.Schema
	st      *storage.State
	rules   []*Rule
	now     uint64
	started bool
	// firings counts rule firings (condition evaluations) for the
	// overhead experiments.
	firings int
}

// NewEngine creates an engine over the given full schema (base relations
// plus any engine-managed relations the rules maintain).
func NewEngine(full *schema.Schema) *Engine {
	return &Engine{full: full, st: storage.NewState(full)}
}

// AddRule installs a rule; rules are kept sorted by priority (stable for
// equal priorities, in insertion order).
func (e *Engine) AddRule(r *Rule) error {
	if e.started {
		return fmt.Errorf("active: rule %q added after the history started", r.Name)
	}
	if r.Condition == nil {
		return fmt.Errorf("active: rule %q has no condition", r.Name)
	}
	for _, a := range r.Actions {
		if _, err := e.full.Arity(a.Rel); err != nil {
			return fmt.Errorf("active: rule %q: %w", r.Name, err)
		}
	}
	e.rules = append(e.rules, r)
	sort.SliceStable(e.rules, func(i, j int) bool { return e.rules[i].Priority < e.rules[j].Priority })
	return nil
}

// State returns the full database state (base and managed relations);
// callers must not mutate it.
func (e *Engine) State() *storage.State { return e.st }

// Now returns the latest commit time.
func (e *Engine) Now() uint64 { return e.now }

// Firings reports the cumulative number of rule firings.
func (e *Engine) Firings() int { return e.firings }

// Commit applies a user transaction at time t and runs the rule set to
// completion. The transaction may only touch non-reserved relations.
func (e *Engine) Commit(t uint64, tx *storage.Transaction) error {
	if e.started && t <= e.now {
		return fmt.Errorf("active: non-increasing timestamp %d after %d", t, e.now)
	}
	for _, op := range tx.Ops() {
		if strings.HasPrefix(op.Rel, ReservedPrefix) {
			return fmt.Errorf("active: transaction touches engine-managed relation %q", op.Rel)
		}
	}
	if err := tx.Validate(e.full); err != nil {
		return err
	}
	if err := e.st.Apply(tx); err != nil {
		return err
	}
	for _, r := range e.rules {
		if err := e.fire(r, t); err != nil {
			return fmt.Errorf("active: rule %q: %w", r.Name, err)
		}
	}
	e.now = t
	e.started = true
	return nil
}

// nullOracle rejects temporal nodes: rule conditions are pure first-order
// formulas over base and auxiliary relations.
type nullOracle struct{}

func (nullOracle) Enumerate(f mtl.Formula) (*fol.Bindings, error) {
	return nil, fmt.Errorf("active: rule condition contains temporal node %q", f.String())
}

func (nullOracle) Test(f mtl.Formula, _ fol.Env) (bool, error) {
	return false, fmt.Errorf("active: rule condition contains temporal node %q", f.String())
}

func (e *Engine) fire(r *Rule, now uint64) error {
	e.firings++
	var params map[string]value.Value
	if r.BindParams != nil {
		params = r.BindParams(now, e.now, e.started)
	}
	if !r.planTried {
		r.planTried = true
		in := paramNames(params)
		if p, err := plan.Compile(r.Condition, e.st, in); err == nil {
			r.plan, r.planIn = p, in
		}
	}
	var b *fol.Bindings
	var err error
	if r.plan != nil && sameParamNames(params, r.planIn) {
		// Compiled path: the parameters are the plan's inputs, so the
		// same plan serves every firing without re-substitution.
		if r.envBuf == nil {
			r.envBuf = make(fol.Env, len(params))
		}
		for k, v := range params {
			r.envBuf[k] = v
		}
		b, err = r.plan.Eval(e.st, nullOracle{}, r.envBuf)
	} else {
		cond := r.Condition
		if params != nil {
			cond = mtl.Substitute(cond, params)
		}
		ev := fol.NewEvaluator(e.st, nullOracle{})
		b, err = ev.Eval(cond)
	}
	if err != nil {
		return err
	}

	// Set-oriented semantics: compute all effects of this rule, then
	// apply deletions before insertions.
	var dels, inss []storage.Op
	var resErr error
	b.Each(func(env fol.Env) bool {
		for _, a := range r.Actions {
			row := make(tuple.Tuple, len(a.Args))
			for i, arg := range a.Args {
				v, err := resolveActionTerm(arg, env, params)
				if err != nil {
					resErr = err
					return false
				}
				row[i] = v
			}
			op := storage.Op{Rel: a.Rel, Tuple: row, Insert: a.Insert}
			if a.Insert {
				inss = append(inss, op)
			} else {
				dels = append(dels, op)
			}
		}
		return true
	})
	if resErr != nil {
		return resErr
	}
	apply := storage.NewTransaction()
	for _, op := range dels {
		apply.Delete(op.Rel, op.Tuple)
	}
	for _, op := range inss {
		apply.Insert(op.Rel, op.Tuple)
	}
	if err := apply.Validate(e.full); err != nil {
		return err
	}
	return e.st.Apply(apply)
}

// paramNames returns the sorted parameter names of one firing.
func paramNames(params map[string]value.Value) []string {
	if len(params) == 0 {
		return nil
	}
	out := make([]string, 0, len(params))
	for k := range params {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sameParamNames reports whether params covers exactly the names the
// rule's plan was compiled with.
func sameParamNames(params map[string]value.Value, in []string) bool {
	if len(params) != len(in) {
		return false
	}
	for _, k := range in {
		if _, ok := params[k]; !ok {
			return false
		}
	}
	return true
}

func resolveActionTerm(t mtl.Term, env fol.Env, params map[string]value.Value) (value.Value, error) {
	switch term := t.(type) {
	case mtl.Const:
		return term.Val, nil
	case mtl.Var:
		if v, ok := env[term.Name]; ok {
			return v, nil
		}
		if v, ok := params[term.Name]; ok {
			return v, nil
		}
		return value.Value{}, fmt.Errorf("active: action references unbound variable %q", term.Name)
	default:
		return value.Value{}, fmt.Errorf("active: unknown action term %T", t)
	}
}
