package active

import (
	"strings"
	"testing"

	"rtic/internal/check"
	"rtic/internal/mtl"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

func baseSchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("p", 1).
		Relation("q", 1).
		Relation("hire", 1).
		Relation("fire", 1).
		MustBuild()
}

func ins(rel string, v int64) *storage.Transaction {
	return storage.NewTransaction().Insert(rel, tuple.Ints(v))
}

func TestEngineBasicRule(t *testing.T) {
	s := schema.NewBuilder().Relation("src", 1).Relation("rtic_dst", 1).MustBuild()
	e := NewEngine(s)
	// Copy rule: every src tuple is mirrored into rtic_dst.
	err := e.AddRule(&Rule{
		Name:      "copy",
		Priority:  1,
		Condition: mtl.MustParse("src(x)"),
		Actions:   []Action{{Insert: true, Rel: "rtic_dst", Args: []mtl.Term{mtl.Var{Name: "x"}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(1, storage.NewTransaction().Insert("src", tuple.Ints(7))); err != nil {
		t.Fatal(err)
	}
	rel, _ := e.State().Relation("rtic_dst")
	if !rel.Contains(tuple.Ints(7)) {
		t.Fatal("rule did not fire")
	}
	if e.Firings() != 1 {
		t.Fatalf("firings = %d", e.Firings())
	}
}

func TestEngineParams(t *testing.T) {
	s := schema.NewBuilder().Relation("src", 1).Relation("rtic_stamped", 2).MustBuild()
	e := NewEngine(s)
	err := e.AddRule(&Rule{
		Name:      "stamp",
		Priority:  1,
		Condition: mtl.MustParse("src(x)"),
		BindParams: func(now, last uint64, started bool) map[string]value.Value {
			return map[string]value.Value{"__now": value.Int(int64(now))}
		},
		Actions: []Action{{Insert: true, Rel: "rtic_stamped",
			Args: []mtl.Term{mtl.Var{Name: "x"}, mtl.Var{Name: "__now"}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(42, storage.NewTransaction().Insert("src", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	rel, _ := e.State().Relation("rtic_stamped")
	if !rel.Contains(tuple.Ints(1, 42)) {
		t.Fatalf("stamped relation = %s", rel)
	}
}

func TestEnginePriorityOrder(t *testing.T) {
	// Rule B (higher priority number) must observe rule A's effect.
	s := schema.NewBuilder().Relation("src", 1).Relation("rtic_a", 1).Relation("rtic_b", 1).MustBuild()
	e := NewEngine(s)
	_ = e.AddRule(&Rule{
		Name: "second", Priority: 2,
		Condition: mtl.MustParse("rtic_a(x)"),
		Actions:   []Action{{Insert: true, Rel: "rtic_b", Args: []mtl.Term{mtl.Var{Name: "x"}}}},
	})
	_ = e.AddRule(&Rule{
		Name: "first", Priority: 1,
		Condition: mtl.MustParse("src(x)"),
		Actions:   []Action{{Insert: true, Rel: "rtic_a", Args: []mtl.Term{mtl.Var{Name: "x"}}}},
	})
	if err := e.Commit(1, storage.NewTransaction().Insert("src", tuple.Ints(5))); err != nil {
		t.Fatal(err)
	}
	rel, _ := e.State().Relation("rtic_b")
	if !rel.Contains(tuple.Ints(5)) {
		t.Fatal("immediate coupling broken: second rule did not see first rule's insert")
	}
}

func TestEngineRejects(t *testing.T) {
	s := schema.NewBuilder().Relation("src", 1).Relation("rtic_x", 1).MustBuild()
	e := NewEngine(s)
	if err := e.AddRule(&Rule{Name: "nocond", Priority: 1}); err == nil {
		t.Fatal("rule without condition accepted")
	}
	if err := e.AddRule(&Rule{
		Name: "badrel", Priority: 1,
		Condition: mtl.MustParse("src(x)"),
		Actions:   []Action{{Insert: true, Rel: "nosuch", Args: nil}},
	}); err == nil {
		t.Fatal("action on unknown relation accepted")
	}
	if err := e.Commit(1, storage.NewTransaction().Insert("rtic_x", tuple.Ints(1))); err == nil {
		t.Fatal("user transaction on reserved relation accepted")
	}
	if err := e.Commit(1, storage.NewTransaction()); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(1, storage.NewTransaction()); err == nil {
		t.Fatal("non-increasing timestamp accepted")
	}
	if err := e.AddRule(&Rule{Name: "late", Priority: 1, Condition: mtl.MustParse("src(x)")}); err == nil {
		t.Fatal("rule added after start accepted")
	}
}

func TestEngineActionUnboundVar(t *testing.T) {
	s := schema.NewBuilder().Relation("src", 1).Relation("rtic_d", 1).MustBuild()
	e := NewEngine(s)
	_ = e.AddRule(&Rule{
		Name: "bad", Priority: 1,
		Condition: mtl.MustParse("src(x)"),
		Actions:   []Action{{Insert: true, Rel: "rtic_d", Args: []mtl.Term{mtl.Var{Name: "zz"}}}},
	})
	if err := e.Commit(1, storage.NewTransaction().Insert("src", tuple.Ints(1))); err == nil ||
		!strings.Contains(err.Error(), "unbound") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckerRehireScenario(t *testing.T) {
	s := baseSchema()
	c := New(s)
	con, err := check.Parse("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}

	vs, err := c.Step(0, ins("fire", 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
	tx := storage.NewTransaction().Delete("fire", tuple.Ints(7)).Insert("hire", tuple.Ints(7))
	vs, err = c.Step(100, tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !vs[0].Binding[0].Equal(value.Int(7)) {
		t.Fatalf("violations = %v, want e=7", vs)
	}
	vs, err = c.Step(366, storage.NewTransaction())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("violations after window = %v", vs)
	}
}

func TestCheckerGuards(t *testing.T) {
	s := baseSchema()
	c := New(s)
	con, _ := check.Parse("c1", "p(x) -> not once q(x)", s)
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	dup, _ := check.Parse("c1", "p(x) -> not once q(x)", s)
	if err := c.AddConstraint(dup); err == nil {
		t.Fatal("duplicate constraint accepted")
	}
	if _, err := c.Step(1, ins("p", 1)); err != nil {
		t.Fatal(err)
	}
	late, _ := check.Parse("c2", "p(x) -> not once q(x)", s)
	if err := c.AddConstraint(late); err == nil {
		t.Fatal("late constraint accepted")
	}
	if c.RuleCount() == 0 {
		t.Fatal("no rules generated")
	}
}

func TestReservedBaseSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(schema.NewBuilder().Relation("rtic_evil", 1).MustBuild())
}

func TestAuxTuplesBounded(t *testing.T) {
	s := baseSchema()
	c := New(s)
	con, _ := check.Parse("c", "p(x) -> not once q(x)", s)
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	tm := uint64(1)
	for i := int64(0); i < 50; i++ {
		if _, err := c.Step(tm, ins("q", i%4)); err != nil {
			t.Fatal(err)
		}
		tm++
	}
	n, err := c.AuxTuples()
	if err != nil {
		t.Fatal(err)
	}
	// Unbounded window: one anchor per binding, 4 bindings.
	if n > 4 {
		t.Fatalf("aux tuples = %d, want at most 4", n)
	}
}
