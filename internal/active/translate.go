package active

import (
	"fmt"

	"rtic/internal/check"
	"rtic/internal/mtl"
	"rtic/internal/value"
)

// The constraint→rule compiler. Every temporal subformula of a
// constraint's denial becomes an ordinary relation:
//
//	rtic_aux_<id>(x̄, ts)   — for once/since: the bounded history encoding,
//	                          one tuple per (binding, surviving anchor time);
//	rtic_prev_<id>(x̄)      — for prev: the argument's bindings in the
//	                          previous state (rtic_prevnew_<id> stages the
//	                          refresh);
//	rtic_viol_<name>(x̄)    — per constraint: the current violation witnesses.
//
// Temporal operators inside conditions are replaced by first-order
// "satisfaction views" over these relations, e.g.
//
//	once[a,b] φ   ⇝   exists __ts: rtic_aux_j(x̄, __ts) and
//	                  __ts >= now−b and __ts <= now−a
//
// where now−a / now−b arrive as per-firing parameters. The generated
// rule set reproduces exactly the update the incremental checker
// performs in code — the equivalence tests hold the two routes together.

type nodeKind uint8

const (
	kindSince nodeKind = iota
	kindPrev
)

// nodeInfo describes one compiled temporal subformula.
type nodeInfo struct {
	id   int
	kind nodeKind
	node mtl.Formula
	vars []string // fv(node), sorted

	// since/once:
	iv     mtl.Interval
	leftT  mtl.Formula // translated chain formula (Truth{true} for once)
	rightT mtl.Formula // translated anchor formula
	isOnce bool

	// prev:
	argT  mtl.Formula
	fvars []string // fv of the argument
}

func (n *nodeInfo) auxRel() string  { return fmt.Sprintf("%saux_%d", ReservedPrefix, n.id) }
func (n *nodeInfo) prevRel() string { return fmt.Sprintf("%sprev_%d", ReservedPrefix, n.id) }
func (n *nodeInfo) newRel() string  { return fmt.Sprintf("%sprevnew_%d", ReservedPrefix, n.id) }

func (n *nodeInfo) tsVar() string   { return fmt.Sprintf("__ts%d", n.id) }
func (n *nodeInfo) tsVar2() string  { return fmt.Sprintf("__ts%db", n.id) }
func (n *nodeInfo) loVar() string   { return fmt.Sprintf("__lo%d", n.id) }
func (n *nodeInfo) hiVar() string   { return fmt.Sprintf("__hi%d", n.id) }
func (n *nodeInfo) goodVar() string { return fmt.Sprintf("__pgood%d", n.id) }

// auxAtom builds rtic_aux_id(x̄, tsName).
func (n *nodeInfo) auxAtom(tsName string) *mtl.Atom {
	args := make([]mtl.Term, 0, len(n.vars)+1)
	for _, v := range n.vars {
		args = append(args, mtl.Var{Name: v})
	}
	args = append(args, mtl.Var{Name: tsName})
	return &mtl.Atom{Rel: n.auxRel(), Args: args}
}

func varAtom(rel string, vars []string) *mtl.Atom {
	args := make([]mtl.Term, len(vars))
	for i, v := range vars {
		args[i] = mtl.Var{Name: v}
	}
	return &mtl.Atom{Rel: rel, Args: args}
}

// view returns the first-order satisfaction view of the node at the
// current commit time.
func (n *nodeInfo) view() mtl.Formula {
	switch n.kind {
	case kindSince:
		ts := n.tsVar()
		conj := []mtl.Formula{
			n.auxAtom(ts),
			&mtl.Cmp{Op: mtl.OpLe, L: mtl.Var{Name: ts}, R: mtl.Var{Name: n.hiVar()}},
		}
		if !n.iv.Unbounded {
			conj = append(conj, &mtl.Cmp{Op: mtl.OpGe, L: mtl.Var{Name: ts}, R: mtl.Var{Name: n.loVar()}})
		}
		return &mtl.Exists{Vars: []string{ts}, F: mtl.AndAll(conj)}
	default: // kindPrev
		return &mtl.And{
			L: varAtom(n.prevRel(), n.fvars),
			R: &mtl.Cmp{Op: mtl.OpEq, L: mtl.Var{Name: n.goodVar()}, R: mtl.Const{Val: value.Int(1)}},
		}
	}
}

// compiled is the full rule program of one constraint.
type compiled struct {
	con     *check.Constraint
	nodes   []*nodeInfo // post-order (children first)
	violRel string
	rules   []*Rule
}

// compiler assigns globally unique node ids across constraints.
type compiler struct {
	nextID int
}

// translate rewrites a kernel formula, replacing every temporal node by
// its satisfaction view and collecting node infos post-order.
func (cp *compiler) translate(f mtl.Formula, nodes *[]*nodeInfo) (mtl.Formula, error) {
	switch n := f.(type) {
	case mtl.Truth, *mtl.Cmp:
		return f, nil
	case *mtl.Atom:
		return f, nil
	case *mtl.Not:
		inner, err := cp.translate(n.F, nodes)
		if err != nil {
			return nil, err
		}
		return &mtl.Not{F: inner}, nil
	case *mtl.And:
		l, err := cp.translate(n.L, nodes)
		if err != nil {
			return nil, err
		}
		r, err := cp.translate(n.R, nodes)
		if err != nil {
			return nil, err
		}
		return &mtl.And{L: l, R: r}, nil
	case *mtl.Or:
		l, err := cp.translate(n.L, nodes)
		if err != nil {
			return nil, err
		}
		r, err := cp.translate(n.R, nodes)
		if err != nil {
			return nil, err
		}
		return &mtl.Or{L: l, R: r}, nil
	case *mtl.Exists:
		inner, err := cp.translate(n.F, nodes)
		if err != nil {
			return nil, err
		}
		return &mtl.Exists{Vars: n.Vars, F: inner}, nil
	case *mtl.Once:
		argT, err := cp.translate(n.F, nodes)
		if err != nil {
			return nil, err
		}
		info := &nodeInfo{
			id: cp.nextID, kind: kindSince, node: n, vars: mtl.FreeVars(n),
			iv: n.I, leftT: mtl.Truth{Bool: true}, rightT: argT, isOnce: true,
		}
		cp.nextID++
		*nodes = append(*nodes, info)
		return info.view(), nil
	case *mtl.Since:
		leftT, err := cp.translate(n.L, nodes)
		if err != nil {
			return nil, err
		}
		rightT, err := cp.translate(n.R, nodes)
		if err != nil {
			return nil, err
		}
		info := &nodeInfo{
			id: cp.nextID, kind: kindSince, node: n, vars: mtl.FreeVars(n),
			iv: n.I, leftT: leftT, rightT: rightT,
		}
		cp.nextID++
		*nodes = append(*nodes, info)
		return info.view(), nil
	case *mtl.Prev:
		argT, err := cp.translate(n.F, nodes)
		if err != nil {
			return nil, err
		}
		info := &nodeInfo{
			id: cp.nextID, kind: kindPrev, node: n, vars: mtl.FreeVars(n),
			iv: n.I, argT: argT, fvars: mtl.FreeVars(n.F),
		}
		cp.nextID++
		*nodes = append(*nodes, info)
		return info.view(), nil
	default:
		return nil, fmt.Errorf("active: translate: non-kernel node %T (%q)", f, f.String())
	}
}

// compileConstraint builds the node set and rule program of one
// constraint. Priorities:
//
//	1000+  maintenance of the bounded encoding (post-order, so
//	       children's views answer for the new state before parents read
//	       them)
//	1e6+   violation-table refresh
//	2e6+   prev staging (reads the pre-refresh views)
//	3e6+   prev swap
func (cp *compiler) compileConstraint(con *check.Constraint) (*compiled, error) {
	var nodes []*nodeInfo
	denialT, err := cp.translate(con.Denial, &nodes)
	if err != nil {
		return nil, err
	}
	c := &compiled{
		con:     con,
		nodes:   nodes,
		violRel: ReservedPrefix + "viol_" + con.Name,
	}
	params := paramBinder(nodes)

	for order, n := range nodes {
		base := 1000 + 10*order
		switch n.kind {
		case kindSince:
			c.rules = append(c.rules, n.sinceRules(base, params)...)
		case kindPrev:
			c.rules = append(c.rules, n.prevRules(params)...)
		}
	}

	// Violation-table refresh: clear, then fill from the translated denial.
	violAtom := varAtom(c.violRel, con.Vars)
	c.rules = append(c.rules,
		&Rule{
			Name:      "clear_" + c.violRel,
			Priority:  1_000_000,
			Condition: violAtom,
			Actions:   []Action{{Insert: false, Rel: c.violRel, Args: violAtom.Args}},
		},
		&Rule{
			Name:       "fill_" + c.violRel,
			Priority:   1_000_001,
			Condition:  denialT,
			BindParams: params,
			Actions:    []Action{{Insert: true, Rel: c.violRel, Args: violAtom.Args}},
		},
	)
	return c, nil
}

// sinceRules generates the maintenance program of one since/once node:
// break the chain, record new anchors, prune the window.
func (n *nodeInfo) sinceRules(base int, params func(uint64, uint64, bool) map[string]value.Value) []*Rule {
	ts := n.tsVar()
	aux := n.auxAtom(ts)
	var rules []*Rule

	if !n.isOnce {
		rules = append(rules, &Rule{
			Name:       fmt.Sprintf("break_%s", n.auxRel()),
			Priority:   base,
			Condition:  &mtl.And{L: aux, R: mtl.Normalize(&mtl.Not{F: n.leftT})},
			BindParams: params,
			Actions:    []Action{{Insert: false, Rel: n.auxRel(), Args: aux.Args}},
		})
	}

	anchorArgs := make([]mtl.Term, 0, len(n.vars)+1)
	for _, v := range n.vars {
		anchorArgs = append(anchorArgs, mtl.Var{Name: v})
	}
	anchorArgs = append(anchorArgs, mtl.Var{Name: "__now"})
	rules = append(rules, &Rule{
		Name:       fmt.Sprintf("anchor_%s", n.auxRel()),
		Priority:   base + 1,
		Condition:  n.rightT,
		BindParams: params,
		Actions:    []Action{{Insert: true, Rel: n.auxRel(), Args: anchorArgs}},
	})

	if n.iv.Unbounded {
		// Keep only the earliest anchor per binding.
		aux2 := n.auxAtom(n.tsVar2())
		rules = append(rules, &Rule{
			Name:     fmt.Sprintf("dedup_%s", n.auxRel()),
			Priority: base + 2,
			Condition: mtl.AndAll([]mtl.Formula{
				aux, aux2,
				&mtl.Cmp{Op: mtl.OpLt, L: mtl.Var{Name: n.tsVar2()}, R: mtl.Var{Name: ts}},
			}),
			Actions: []Action{{Insert: false, Rel: n.auxRel(), Args: aux.Args}},
		})
	} else {
		// Drop anchors that fell out of the metric window.
		rules = append(rules, &Rule{
			Name:     fmt.Sprintf("prune_%s", n.auxRel()),
			Priority: base + 2,
			Condition: &mtl.And{
				L: aux,
				R: &mtl.Cmp{Op: mtl.OpLt, L: mtl.Var{Name: ts}, R: mtl.Var{Name: n.loVar()}},
			},
			BindParams: params,
			Actions:    []Action{{Insert: false, Rel: n.auxRel(), Args: aux.Args}},
		})
	}
	return rules
}

// prevRules generates the staged refresh of a prev node: fill the
// staging relation from the argument's current bindings (while every
// reader still sees the previous state's answer), then swap.
func (n *nodeInfo) prevRules(params func(uint64, uint64, bool) map[string]value.Value) []*Rule {
	prevAtom := varAtom(n.prevRel(), n.fvars)
	newAtom := varAtom(n.newRel(), n.fvars)
	return []*Rule{
		{
			Name:       "stage_" + n.prevRel(),
			Priority:   2_000_000 + n.id,
			Condition:  n.argT,
			BindParams: params,
			Actions:    []Action{{Insert: true, Rel: n.newRel(), Args: newAtom.Args}},
		},
		{
			Name:      "clear_" + n.prevRel(),
			Priority:  3_000_000 + 2*n.id,
			Condition: prevAtom,
			Actions:   []Action{{Insert: false, Rel: n.prevRel(), Args: prevAtom.Args}},
		},
		{
			Name:      "swap_" + n.prevRel(),
			Priority:  3_000_000 + 2*n.id + 1,
			Condition: newAtom,
			Actions: []Action{
				{Insert: false, Rel: n.newRel(), Args: newAtom.Args},
				{Insert: true, Rel: n.prevRel(), Args: prevAtom.Args},
			},
		},
	}
}

// paramBinder computes every per-firing parameter of a constraint's
// rule program: window cuts for since/once views, gap flags for prev
// views, and the commit time itself.
func paramBinder(nodes []*nodeInfo) func(now, last uint64, started bool) map[string]value.Value {
	infos := append([]*nodeInfo(nil), nodes...)
	return func(now, last uint64, started bool) map[string]value.Value {
		out := map[string]value.Value{
			"__now": value.Int(int64(now)),
		}
		for _, n := range infos {
			switch n.kind {
			case kindSince:
				// ts qualifies iff now−ts ∈ [Lo,Hi] ⟺ ts ∈ [now−Hi, now−Lo].
				out[n.hiVar()] = value.Int(int64(now) - int64(n.iv.Lo))
				if !n.iv.Unbounded {
					out[n.loVar()] = value.Int(int64(now) - int64(n.iv.Hi))
				}
			case kindPrev:
				good := int64(0)
				if started && n.iv.Contains(now-last) {
					good = 1
				}
				out[n.goodVar()] = value.Int(good)
			}
		}
		return out
	}
}
