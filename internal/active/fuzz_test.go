package active

import (
	"fmt"
	"math/rand"
	"testing"

	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/formgen"
)

// Fuzzing layer for the rule-compiled route: freshly generated safe
// constraints, held against the direct incremental checker.
func TestFuzzActiveEquivalence(t *testing.T) {
	s := formgen.Schema()
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(7000 + seed))
		act := New(s)
		inc := core.New(s)
		var names []string
		nCons := 1 + r.Intn(2)
		for k := 0; k < nCons; k++ {
			src := formgen.Constraint(r)
			name := fmt.Sprintf("c%d", k)
			conA, err := check.Parse(name, src, s)
			if err != nil {
				t.Fatalf("seed %d: %q: %v", seed, src, err)
			}
			if err := act.AddConstraint(conA); err != nil {
				t.Fatalf("seed %d: %q: %v", seed, src, err)
			}
			conB, _ := check.Parse(name, src, s)
			if err := inc.AddConstraint(conB); err != nil {
				t.Fatal(err)
			}
			names = append(names, src)
		}
		tm := uint64(0)
		for i := 0; i < 30; i++ {
			tm += uint64(1 + r.Intn(3))
			tx := randomTx(r, 3)
			got, err := act.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("seed %d step %d: active: %v\nconstraints: %q", seed, i, err, names)
			}
			want, err := inc.Step(tm, tx)
			if err != nil {
				t.Fatalf("seed %d step %d: core: %v\nconstraints: %q", seed, i, err, names)
			}
			if cg, cw := canon(got), canon(want); !sameCanon(cg, cw) {
				t.Fatalf("seed %d step %d (t=%d, tx=%s):\nactive: %v\ncore:   %v\nconstraints: %q",
					seed, i, tm, tx, cg, cw, names)
			}
		}
	}
}
