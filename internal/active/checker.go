package active

import (
	"fmt"
	"strings"
	"time"

	"rtic/internal/check"
	"rtic/internal/engine"
	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/storage"
)

// Checker runs integrity constraints through the active-DBMS route: it
// compiles each constraint to a rule program (see translate.go), hosts
// the programs on one Engine, and reads violation witnesses back from
// the per-constraint violation relations after every commit.
type Checker struct {
	base        *schema.Schema
	constraints []*check.Constraint
	programs    []*compiled
	cp          compiler

	engine *Engine
	index  int

	obs *obs.Observer
}

// New returns an empty active-route checker over the base schema.
func New(base *schema.Schema) *Checker {
	for _, name := range base.Names() {
		if strings.HasPrefix(name, ReservedPrefix) {
			panic(fmt.Sprintf("active: base schema uses reserved relation name %q", name))
		}
	}
	return &Checker{base: base}
}

// AddConstraint compiles a constraint into rules. Constraints must be
// installed before the first Step.
func (c *Checker) AddConstraint(con *check.Constraint) error {
	if c.engine != nil {
		return fmt.Errorf("active: constraint %q added after the history started", con.Name)
	}
	for _, existing := range c.constraints {
		if existing.Name == con.Name {
			return fmt.Errorf("active: duplicate constraint %q", con.Name)
		}
	}
	prog, err := c.cp.compileConstraint(con)
	if err != nil {
		return err
	}
	c.constraints = append(c.constraints, con)
	c.programs = append(c.programs, prog)
	return nil
}

// build assembles the full schema (base + engine-managed relations) and
// the engine with every compiled rule installed.
func (c *Checker) build() error {
	b := schema.NewBuilder()
	for _, name := range c.base.Names() {
		def, _ := c.base.Lookup(name)
		b.Relation(def.Name, def.Arity)
	}
	for _, prog := range c.programs {
		b.Relation(prog.violRel, len(prog.con.Vars))
		for _, n := range prog.nodes {
			switch n.kind {
			case kindSince:
				b.Relation(n.auxRel(), len(n.vars)+1)
			case kindPrev:
				b.Relation(n.prevRel(), len(n.fvars))
				b.Relation(n.newRel(), len(n.fvars))
			}
		}
	}
	full, err := b.Build()
	if err != nil {
		return err
	}
	c.engine = NewEngine(full)
	for _, prog := range c.programs {
		for _, r := range prog.rules {
			if err := c.engine.AddRule(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetObserver attaches (or detaches, with nil) the instrumentation
// sinks, keeping the active route comparable with the incremental
// engine: same commit/constraint metrics; the aux-entries gauge
// reports the tuples held in engine-managed relations.
func (c *Checker) SetObserver(o *obs.Observer) {
	c.obs = o
	if m, _ := o.Parts(); m != nil {
		// Rule programs run sequentially; publish the pool width so
		// dashboards read a truthful 1 rather than a stale value.
		m.ParallelWorkers.Set(1)
	}
}

// StepBatch commits a sequence of transactions one at a time; the rule
// engine has no amortizable per-commit overhead.
func (c *Checker) StepBatch(steps []engine.Step) ([][]check.Violation, error) {
	return engine.SerialBatch(c.Step, steps)
}

// Step commits a transaction at time t, runs the rule programs, and
// returns the violation witnesses the rules derived.
func (c *Checker) Step(t uint64, tx *storage.Transaction) ([]check.Violation, error) {
	m, tr := c.obs.Parts()
	if m == nil && tr == nil {
		return c.step(t, tx, nil)
	}
	start := time.Now()
	vs, err := c.step(t, tx, m)
	d := time.Since(start)
	if m != nil {
		if err != nil {
			m.CommitErrors.Inc()
		} else {
			m.Commits.Inc()
			m.CommitSeconds.Observe(d.Seconds())
			if aux, auxErr := c.AuxTuples(); auxErr == nil {
				m.AuxEntries.Set(int64(aux))
			}
		}
	}
	if tr != nil {
		tr.Trace(obs.TraceEvent{Op: obs.OpStep, Time: t, Duration: d, Err: err})
	}
	return vs, err
}

func (c *Checker) step(t uint64, tx *storage.Transaction, m *obs.Metrics) ([]check.Violation, error) {
	if c.engine == nil {
		if err := c.build(); err != nil {
			return nil, err
		}
	}
	if err := c.engine.Commit(t, tx); err != nil {
		return nil, err
	}
	var out []check.Violation
	for _, prog := range c.programs {
		rel, err := c.engine.State().Relation(prog.violRel)
		if err != nil {
			return nil, err
		}
		rows := rel.Tuples()
		if m != nil {
			m.Violations.With(prog.con.Name).Add(uint64(len(rows)))
		}
		for _, row := range rows {
			out = append(out, check.Violation{
				Constraint: prog.con.Name,
				Index:      c.index,
				Time:       t,
				Vars:       prog.con.Vars,
				Binding:    row.Clone(),
			})
		}
	}
	c.index++
	return out, nil
}

// Len reports the number of committed states.
func (c *Checker) Len() int { return c.index }

// State returns the current database state (base and engine-managed
// relations), building the engine on demand. Callers must not mutate it.
func (c *Checker) State() (*storage.State, error) {
	if c.engine == nil {
		if err := c.build(); err != nil {
			return nil, err
		}
	}
	return c.engine.State(), nil
}

// Engine exposes the underlying rule engine (nil before the first Step);
// used by tests and the overhead experiments.
func (c *Checker) Engine() *Engine { return c.engine }

// RuleCount reports the number of generated rules across constraints.
func (c *Checker) RuleCount() int {
	n := 0
	for _, prog := range c.programs {
		n += len(prog.rules)
	}
	return n
}

// AuxTuples counts the tuples currently held in engine-managed
// relations — the active route's space figure.
func (c *Checker) AuxTuples() (int, error) {
	if c.engine == nil {
		return 0, nil
	}
	total := 0
	for _, prog := range c.programs {
		for _, n := range prog.nodes {
			var rels []string
			switch n.kind {
			case kindSince:
				rels = []string{n.auxRel()}
			case kindPrev:
				rels = []string{n.prevRel(), n.newRel()}
			}
			for _, name := range rels {
				r, err := c.engine.State().Relation(name)
				if err != nil {
					return 0, err
				}
				total += r.Len()
			}
		}
	}
	return total, nil
}
