package active

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// The active (trigger-compiled) route must report exactly the violations
// the direct incremental checker reports — and the incremental checker
// is itself tested against the naive full-history semantics, closing the
// three-way equivalence.

func equivSchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("p", 1).
		Relation("q", 1).
		Relation("r", 2).
		MustBuild()
}

var pool = []string{
	"p(x) -> not once[0,3] q(x)",
	"p(x) -> once[0,5] q(x)",
	"p(x) -> not once[1,*] q(x)",
	"p(x) -> not once q(x)",
	"q(x) -> not prev p(x)",
	"p(x) -> prev[0,2] q(x)",
	"p(x) -> not (q(x) since[0,4] p(x))",
	"p(x) -> (q(x) since p(x))",
	"r(x, y) -> not (p(x) since[0,6] r(x, y))",
	"p(x) -> not once[0,4] prev q(x)",
	"p(x) -> not prev once[0,3] q(x)",
	"not (exists x: p(x) and once[0,2] q(x))",
	"p(x) -> always[0,4] not q(x)",
	"q(x) -> not once[0,3] (p(x) and not q(x))",
	"p(x) leadsto[0,4] q(x)",
	"r(x, y) leadsto[0,3] q(x)",
}

func randomTx(r *rand.Rand, domain int64) *storage.Transaction {
	tx := storage.NewTransaction()
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		v := r.Int63n(domain)
		w := r.Int63n(domain)
		rel := []string{"p", "q", "r"}[r.Intn(3)]
		var row tuple.Tuple
		if rel == "r" {
			row = tuple.Ints(v, w)
		} else {
			row = tuple.Ints(v)
		}
		if r.Intn(3) == 0 {
			tx.Delete(rel, row)
		} else {
			tx.Insert(rel, row)
		}
	}
	return tx
}

func canon(vs []check.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Constraint + "|" + v.Binding.Key()
	}
	sort.Strings(out)
	return out
}

func sameCanon(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestActiveEquivalentToIncremental(t *testing.T) {
	s := equivSchema()
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		act := New(s)
		inc := core.New(s)
		nCons := 1 + r.Intn(2)
		var names []string
		for k := 0; k < nCons; k++ {
			src := pool[r.Intn(len(pool))]
			name := fmt.Sprintf("c%d", k)
			conA, err := check.Parse(name, src, s)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := act.AddConstraint(conA); err != nil {
				t.Fatalf("seed %d: active: %v", seed, err)
			}
			conB, _ := check.Parse(name, src, s)
			if err := inc.AddConstraint(conB); err != nil {
				t.Fatalf("seed %d: core: %v", seed, err)
			}
			names = append(names, src)
		}
		tm := uint64(0)
		for i := 0; i < 35; i++ {
			tm += uint64(1 + r.Intn(3))
			tx := randomTx(r, 3)
			got, err := act.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("seed %d step %d: active: %v\nconstraints: %v", seed, i, err, names)
			}
			want, err := inc.Step(tm, tx)
			if err != nil {
				t.Fatalf("seed %d step %d: core: %v", seed, i, err)
			}
			if cg, cw := canon(got), canon(want); !sameCanon(cg, cw) {
				t.Fatalf("seed %d step %d (t=%d, tx=%s):\nactive: %v\ncore:   %v\nconstraints: %v",
					seed, i, tm, tx, cg, cw, names)
			}
		}
	}
}

func TestActivePoolConstraintsIndividually(t *testing.T) {
	s := equivSchema()
	for ci, src := range pool {
		r := rand.New(rand.NewSource(int64(500 + ci)))
		act := New(s)
		inc := core.New(s)
		conA, err := check.Parse("c", src, s)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if err := act.AddConstraint(conA); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		conB, _ := check.Parse("c", src, s)
		if err := inc.AddConstraint(conB); err != nil {
			t.Fatal(err)
		}
		tm := uint64(0)
		for i := 0; i < 50; i++ {
			tm += uint64(1 + r.Intn(2))
			tx := randomTx(r, 3)
			got, err := act.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("%q step %d: active: %v", src, i, err)
			}
			want, err := inc.Step(tm, tx)
			if err != nil {
				t.Fatalf("%q step %d: core: %v", src, i, err)
			}
			if cg, cw := canon(got), canon(want); !sameCanon(cg, cw) {
				t.Fatalf("%q step %d: active %v vs core %v", src, i, cg, cw)
			}
		}
	}
}
