// Package bench implements the reconstructed evaluation: one experiment
// per table/figure listed in DESIGN.md, each returning a formatted table
// with the same rows/series the write-up reports. The absolute numbers
// depend on the host; the shapes (who wins, by what factor, where
// growth appears) are what the experiments reproduce.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"rtic/internal/active"
	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/engine"
	"rtic/internal/naive"
	"rtic/internal/obs"
	"rtic/internal/shard"
	"rtic/internal/workload"
)

// traceSink, when set, is attached to every incremental and sharded
// engine the experiments build, so a bench run can export its commit
// spans (rticbench -trace-out). Span building adds measurable overhead
// to the hot path; leave it unset for runs whose numbers are recorded.
var traceSink obs.SpanSink

// SetTraceSink installs (or, with nil, removes) the span sink bench
// engines are built with. Not safe to call concurrently with a run.
func SetTraceSink(s obs.SpanSink) { traceSink = s }

// observeEngine attaches the trace sink to a freshly built engine.
func observeEngine(e interface{ SetObserver(*obs.Observer) }) {
	if traceSink != nil {
		e.SetObserver(&obs.Observer{Spans: traceSink})
	}
}

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "  %-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// replayResult carries the measurements of one replay.
type replayResult struct {
	nsPerStepAll      float64 // average over all steps
	nsPerStepTail     float64 // average over the final 10% (steady state)
	allocsPerStepTail float64 // heap allocations per step over the tail
	violations        int
	totalNs           int64
}

type stepFn func(t uint64, s workload.Step) ([]check.Violation, error)

func replay(h workload.History, step stepFn) (replayResult, error) {
	// Settle the heap so one experiment's garbage does not tax the next
	// experiment's timings.
	runtime.GC()
	var res replayResult
	n := len(h.Steps)
	tailStart := n - n/10
	if tailStart >= n {
		tailStart = 0
	}
	var tailNs int64
	tailCount := 0
	var m0, m1 runtime.MemStats
	for i, s := range h.Steps {
		if i == tailStart {
			// Snapshot the malloc counter outside the timed region; the
			// delta over the tail is the steady-state allocs/tx.
			runtime.ReadMemStats(&m0)
		}
		t0 := time.Now()
		vs, err := step(s.Time, s)
		d := time.Since(t0).Nanoseconds()
		if err != nil {
			return res, fmt.Errorf("step %d: %w", i, err)
		}
		res.totalNs += d
		if i >= tailStart {
			tailNs += d
			tailCount++
		}
		res.violations += len(vs)
	}
	if n > 0 {
		res.nsPerStepAll = float64(res.totalNs) / float64(n)
	}
	if tailCount > 0 {
		runtime.ReadMemStats(&m1)
		res.nsPerStepTail = float64(tailNs) / float64(tailCount)
		res.allocsPerStepTail = float64(m1.Mallocs-m0.Mallocs) / float64(tailCount)
	}
	return res, nil
}

func newIncremental(h workload.History, opts ...core.Option) (*core.Checker, error) {
	c := core.New(h.Schema, opts...)
	for _, cs := range h.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			return nil, err
		}
		if err := c.AddConstraint(con); err != nil {
			return nil, err
		}
	}
	observeEngine(c)
	return c, nil
}

func newNaive(h workload.History) (*naive.Checker, error) {
	c := naive.New(h.Schema)
	for _, cs := range h.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			return nil, err
		}
		if err := c.AddConstraint(con); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func newActive(h workload.History) (*active.Checker, error) {
	c := active.New(h.Schema)
	for _, cs := range h.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			return nil, err
		}
		if err := c.AddConstraint(con); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// repeats is how many fresh replays the timing experiments take the
// fastest of; single runs are too exposed to GC scheduling noise.
func repeats(quick bool) int {
	if quick {
		return 1
	}
	return 3
}

func runIncremental(h workload.History, opts ...core.Option) (replayResult, core.Stats, error) {
	c, err := newIncremental(h, opts...)
	if err != nil {
		return replayResult{}, core.Stats{}, err
	}
	res, err := replay(h, func(t uint64, s workload.Step) ([]check.Violation, error) {
		return c.Step(t, s.Tx)
	})
	return res, c.Stats(), err
}

// newSharded builds a shard router over h's schema (incremental
// engines inside, each sequential) with h's constraints installed.
func newSharded(h workload.History, shards int) (*shard.Router, error) {
	r, err := shard.NewMode(h.Schema, shards, engine.Incremental, 1)
	if err != nil {
		return nil, err
	}
	for _, cs := range h.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			return nil, err
		}
		if err := r.AddConstraint(con); err != nil {
			return nil, err
		}
	}
	observeEngine(r)
	return r, nil
}

func runSharded(h workload.History, shards int) (replayResult, error) {
	r, err := newSharded(h, shards)
	if err != nil {
		return replayResult{}, err
	}
	return replay(h, func(t uint64, s workload.Step) ([]check.Violation, error) {
		return r.Step(t, s.Tx)
	})
}

// bestSharded replays n times on fresh routers and keeps the fastest
// run.
func bestSharded(h workload.History, n, shards int) (replayResult, error) {
	var best replayResult
	for i := 0; i < n; i++ {
		res, err := runSharded(h, shards)
		if err != nil {
			return res, err
		}
		if i == 0 || res.totalNs < best.totalNs {
			best = res
		}
	}
	return best, nil
}

// bestIncremental replays n times on fresh checkers and keeps the
// fastest run (stats are identical across runs).
func bestIncremental(h workload.History, n int, opts ...core.Option) (replayResult, core.Stats, error) {
	var best replayResult
	var stats core.Stats
	for i := 0; i < n; i++ {
		res, st, err := runIncremental(h, opts...)
		if err != nil {
			return res, st, err
		}
		if i == 0 || res.totalNs < best.totalNs {
			best, stats = res, st
		}
	}
	return best, stats, nil
}

// runUnpruned replays h on an incremental checker with the pruning
// rules disabled (the space ablation) and returns its auxiliary stats.
func runUnpruned(h workload.History) (core.Stats, error) {
	c := core.New(h.Schema)
	if err := c.DisablePruning(); err != nil {
		return core.Stats{}, err
	}
	for _, cs := range h.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			return core.Stats{}, err
		}
		if err := c.AddConstraint(con); err != nil {
			return core.Stats{}, err
		}
	}
	if _, err := replay(h, func(t uint64, s workload.Step) ([]check.Violation, error) {
		return c.Step(t, s.Tx)
	}); err != nil {
		return core.Stats{}, err
	}
	return c.Stats(), nil
}

// runCheckpointedNaive replays h on the checkpointed-history naive
// checker and returns its storage footprint.
func runCheckpointedNaive(h workload.History, interval int) (int, error) {
	c := naive.NewCheckpointed(h.Schema, interval)
	for _, cs := range h.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			return 0, err
		}
		if err := c.AddConstraint(con); err != nil {
			return 0, err
		}
	}
	if _, err := replay(h, func(t uint64, s workload.Step) ([]check.Violation, error) {
		return c.Step(t, s.Tx)
	}); err != nil {
		return 0, err
	}
	return c.HistoryBytes(), nil
}

func runNaive(h workload.History) (replayResult, int, error) {
	c, err := newNaive(h)
	if err != nil {
		return replayResult{}, 0, err
	}
	res, err := replay(h, func(t uint64, s workload.Step) ([]check.Violation, error) {
		return c.Step(t, s.Tx)
	})
	return res, c.HistoryBytes(), err
}

// bestNaive replays n times on fresh checkers and keeps the fastest run.
func bestNaive(h workload.History, n int) (replayResult, int, error) {
	var best replayResult
	var bytes int
	for i := 0; i < n; i++ {
		res, b, err := runNaive(h)
		if err != nil {
			return res, b, err
		}
		if i == 0 || res.totalNs < best.totalNs {
			best, bytes = res, b
		}
	}
	return best, bytes, nil
}

// bestActive replays n times on fresh checkers and keeps the fastest run.
func bestActive(h workload.History, n int) (replayResult, int, error) {
	var best replayResult
	var aux int
	for i := 0; i < n; i++ {
		res, a, err := runActive(h)
		if err != nil {
			return res, a, err
		}
		if i == 0 || res.totalNs < best.totalNs {
			best, aux = res, a
		}
	}
	return best, aux, nil
}

func runActive(h workload.History) (replayResult, int, error) {
	c, err := newActive(h)
	if err != nil {
		return replayResult{}, 0, err
	}
	res, err := replay(h, func(t uint64, s workload.Step) ([]check.Violation, error) {
		return c.Step(t, s.Tx)
	})
	if err != nil {
		return res, 0, err
	}
	aux, err := c.AuxTuples()
	return res, aux, err
}

func ns(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2f ms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f µs", v/1e3)
	default:
		return fmt.Sprintf("%.0f ns", v)
	}
}

func bytesStr(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", a/b)
}
