package bench

import (
	"fmt"
	"runtime"
	"time"

	"rtic/internal/cdcgen"
	"rtic/internal/core"
)

// phaseStats accumulates one phase's share of a CDC replay: commit
// timings, heap allocations, and the delta-driven check path's
// per-constraint action decisions.
type phaseStats struct {
	commits int
	ns      int64
	mallocs uint64
	actions map[core.SkipAction]int
}

func (p *phaseStats) row(name string) []string {
	total := 0
	for _, n := range p.actions {
		total += n
	}
	share := func(a core.SkipAction) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(p.actions[a])/float64(total))
	}
	nsPerTx := float64(p.ns) / float64(p.commits)
	return []string{
		name,
		fmt.Sprintf("%d", p.commits),
		ns(nsPerTx),
		fmt.Sprintf("%.0f", 1e9/nsPerTx),
		fmt.Sprintf("%.0f", float64(p.mallocs)/float64(p.commits)),
		share(core.ActionSkipped),
		share(core.ActionSeeded),
		share(core.ActionPlanned),
		share(core.ActionTreeWalk),
	}
}

// Table10CDCFreshness — the CDC freshness workload (internal/cdcgen,
// ROADMAP item 5): burst trains of source captures against steady
// mixed traffic, checked under the validity-window, derived-lifetime,
// and staleness-chain constraints. The table attributes throughput,
// allocations, and the LastSkips action distribution to each phase:
// steady traffic should ride the skipped/seeded paths, while bursts
// concentrate writes on few relations and show where the skip rule's
// coverage ends.
func Table10CDCFreshness(quick bool) (Table, error) {
	t := Table{
		ID:    "Table 10",
		Title: "CDC freshness workload: burst vs steady phases",
		Columns: []string{
			"phase", "commits", "ns/tx", "commits/sec", "allocs/tx",
			"skipped", "seeded", "planned", "tree-walk",
		},
		Notes: "cdcgen feed: 3 freshness constraints, burst trains of 8 every 20 commits, late arrivals up to 3 commits (25%), 2% planned violations; action columns are each phase's share of LastSkips decisions",
	}
	steps := 1000
	if quick {
		steps = 300
	}
	cfg := cdcgen.Config{
		Steps: steps, Seed: 60,
		BurstLen: 8, BurstEvery: 20,
		MaxReorder:    3,
		ViolationRate: 0.02,
	}
	h, meta := cdcgen.Generate(cfg)

	c, err := newIncremental(h)
	if err != nil {
		return t, err
	}
	steady := phaseStats{actions: map[core.SkipAction]int{}}
	burst := phaseStats{actions: map[core.SkipAction]int{}}
	phases := [2]*phaseStats{&steady, &burst}

	// Attribute heap allocations per phase by reading the malloc counter
	// at every phase transition, outside the timed region. Trains are
	// BurstLen commits long, so this is ~2n/(BurstEvery+BurstLen) reads.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	cur := 0
	for i, st := range h.Steps {
		ph := 0
		if meta.Burst[i] {
			ph = 1
		}
		if ph != cur {
			runtime.ReadMemStats(&m1)
			phases[cur].mallocs += m1.Mallocs - m0.Mallocs
			m0 = m1
			cur = ph
		}
		t0 := time.Now()
		_, err := c.Step(st.Time, st.Tx)
		d := time.Since(t0).Nanoseconds()
		if err != nil {
			return t, fmt.Errorf("step %d: %w", i, err)
		}
		phases[ph].commits++
		phases[ph].ns += d
		for _, si := range c.LastSkips() {
			phases[ph].actions[si.Action]++
		}
	}
	runtime.ReadMemStats(&m1)
	phases[cur].mallocs += m1.Mallocs - m0.Mallocs

	if steady.commits == 0 || burst.commits == 0 {
		return t, fmt.Errorf("bench: degenerate phase split: %d steady, %d burst commits", steady.commits, burst.commits)
	}
	t.Rows = append(t.Rows, steady.row("steady"), burst.row("burst"))
	return t, nil
}
