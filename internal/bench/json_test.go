package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseCell(t *testing.T) {
	cases := []struct {
		raw   string
		value float64
		unit  string
	}{
		{"", 0, ""},
		{"-", 0, ""},
		{"seq", 0, ""},
		{"14.4 µs", 14400, "ns"},
		{"14.4 μs", 14400, "ns"}, // U+03BC mu, the other micro sign
		{"250 ns", 250, "ns"},
		{"2.49 ms", 2.49e6, "ns"},
		{"1.5 s", 1.5e9, "ns"},
		{"93 B", 93, "bytes"},
		{"1.2 KiB", 1228.8, "bytes"},
		{"3.5 MiB", 3.5 * (1 << 20), "bytes"},
		{"59.1x", 59.1, "ratio"},
		{"0.1%", 0.1, "percent"},
		{"1000", 1000, "count"},
		{"inf", 0, ""},        // non-finite parses stay text: JSON cannot encode them
		{"12 parsecs", 0, ""}, // unknown unit stays a text cell
	}
	for _, c := range cases {
		got := ParseCell(c.raw)
		if got.Raw != c.raw || got.Unit != c.unit {
			t.Errorf("ParseCell(%q) = %+v, want unit %q", c.raw, got, c.unit)
			continue
		}
		if diff := got.Value - c.value; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("ParseCell(%q).Value = %v, want %v", c.raw, got.Value, c.value)
		}
	}
}

func sampleTables() []Table {
	return []Table{{
		ID:      "Table 1",
		Title:   "steady-state cost",
		Columns: []string{"domain", "incremental ns/tx", "naive ns/tx", "speedup"},
		Rows: [][]string{
			{"250", "20.0 µs", "100.0 µs", "5.0x"},
			{"500", "21.0 µs", "210.0 µs", "10.0x"},
		},
		Notes: "synthetic",
	}}
}

func TestResultRoundTrip(t *testing.T) {
	res := NewResult(sampleTables(), true, 1754500000)
	if err := Validate(res); err != nil {
		t.Fatal(err)
	}
	if res.GitRev == "" || res.GoVersion == "" || res.GOMAXPROCS < 1 {
		t.Fatalf("environment not captured: %+v", res)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.CreatedUnix != 1754500000 || !back.Quick {
		t.Errorf("round-trip lost run fields: %+v", back)
	}
	if len(back.Tables) != 1 || back.Tables[0].ID != "Table 1" {
		t.Fatalf("round-trip lost tables: %+v", back.Tables)
	}
	row := back.Tables[0].Rows[0]
	if row.Key != "250" {
		t.Errorf("row key %q, want %q", row.Key, "250")
	}
	if c := row.Cells[1]; c.Unit != "ns" || c.Value != 20000 {
		t.Errorf("cell not parsed through round-trip: %+v", c)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	base := func() Result { return NewResult(sampleTables(), false, 1) }
	cases := []struct {
		name   string
		mutate func(*Result)
		want   string
	}{
		{"schema", func(r *Result) { r.Schema = 99 }, "schema"},
		{"go_version", func(r *Result) { r.GoVersion = "" }, "go_version"},
		{"git_rev", func(r *Result) { r.GitRev = "" }, "git_rev"},
		{"gomaxprocs", func(r *Result) { r.GOMAXPROCS = 0 }, "gomaxprocs"},
		{"no tables", func(r *Result) { r.Tables = nil }, "no tables"},
		{"table id", func(r *Result) { r.Tables[0].ID = "" }, "missing id"},
		{"row key", func(r *Result) { r.Tables[0].Rows[0].Key = "" }, "missing key"},
		{"row width", func(r *Result) { r.Tables[0].Rows[0].Cells = r.Tables[0].Rows[0].Cells[:2] }, "cells for"},
		{"unit", func(r *Result) { r.Tables[0].Rows[0].Cells[0].Unit = "furlongs" }, "unknown unit"},
	}
	for _, c := range cases {
		r := base()
		c.mutate(&r)
		err := Validate(r)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	old := NewResult(sampleTables(), false, 1)
	same := NewResult(sampleTables(), false, 2)
	rep := Compare(old, same, 3)
	if !rep.OK() {
		t.Fatalf("identical runs flagged: %+v", rep.Regressions)
	}
	if len(rep.Deltas) != 4 { // 2 rows x 2 ns columns; ratio column excluded
		t.Fatalf("compared %d cells, want 4", len(rep.Deltas))
	}

	slow := sampleTables()
	slow[0].Rows[0][1] = "90.0 µs" // 4.5x the old 20 µs
	rep = Compare(old, NewResult(slow, false, 3), 3)
	if rep.OK() || len(rep.Regressions) != 1 {
		t.Fatalf("4.5x slowdown not flagged: %+v", rep.Regressions)
	}
	d := rep.Regressions[0]
	if d.Table != "Table 1" || d.Row != "250" || d.Column != "incremental ns/tx" {
		t.Errorf("regression located at %s/%s/%s", d.Table, d.Row, d.Column)
	}
	if d.Ratio < 4.49 || d.Ratio > 4.51 {
		t.Errorf("regression ratio %v, want ~4.5", d.Ratio)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "REGRESSIONS") || !strings.Contains(buf.String(), "4.50x") {
		t.Errorf("render missing regression:\n%s", buf.String())
	}

	// A 4.5x speedup is not a regression.
	fast := sampleTables()
	fast[0].Rows[0][1] = "4.4 µs"
	if rep := Compare(old, NewResult(fast, false, 4), 3); !rep.OK() {
		t.Errorf("speedup flagged as regression: %+v", rep.Regressions)
	}

	// Allocation-count cells are held to the tighter fixed gate: a 2.5x
	// growth in an "alloc" column is a regression even though it is well
	// under the duration factor, and count cells in other columns stay
	// exempt.
	allocTables := func(incAllocs, histN string) []Table {
		t := sampleTables()
		t[0].Columns = append(t[0].Columns, "incremental allocs/tx", "aux entries")
		t[0].Rows[0] = append(t[0].Rows[0], incAllocs, histN)
		t[0].Rows[1] = append(t[0].Rows[1], "12", "600")
		return t
	}
	allocOld := NewResult(allocTables("10", "300"), false, 6)
	rep = Compare(allocOld, NewResult(allocTables("25", "900"), false, 7), 3)
	if rep.OK() || len(rep.Regressions) != 1 {
		t.Fatalf("2.5x alloc growth not flagged (or non-alloc count flagged): %+v", rep.Regressions)
	}
	if d := rep.Regressions[0]; d.Column != "incremental allocs/tx" || d.Limit != AllocFactor {
		t.Errorf("alloc regression at %q limit %v, want alloc column at %v", d.Column, d.Limit, AllocFactor)
	}
	if rep := Compare(allocOld, NewResult(allocTables("15", "300"), false, 8), 3); !rep.OK() {
		t.Errorf("1.5x alloc growth flagged: %+v", rep.Regressions)
	}

	// Disappearing tables and rows are reported, not silently skipped.
	shrunk := NewResult(sampleTables(), false, 5)
	shrunk.Tables[0].Rows = shrunk.Tables[0].Rows[:1]
	rep = Compare(old, shrunk, 3)
	if len(rep.Missing) != 1 || !strings.Contains(rep.Missing[0], `row "500"`) {
		t.Errorf("missing row not reported: %v", rep.Missing)
	}
}
