package bench

import (
	"fmt"
	"runtime"

	"rtic/internal/core"
	"rtic/internal/workload"
)

// Experiment sizes. Quick mode keeps every experiment under a few
// seconds for CI; full mode is what EXPERIMENTS.md records.
func histLengths(quick bool) []int {
	if quick {
		return []int{250, 500, 1000}
	}
	return []int{500, 1000, 2000, 4000}
}

// Table1HistoryLength — per-transaction checking cost as the history
// grows, for a constraint with an unbounded window (the case where the
// naive evaluator must walk the entire history). Expected shape:
// incremental flat, naive growing linearly with history length.
func Table1HistoryLength(quick bool) (Table, error) {
	t := Table{
		ID:      "Table 1",
		Title:   "per-transaction check cost vs history length (unbounded window)",
		Columns: []string{"history n", "incremental ns/tx", "naive ns/tx", "naive/incremental", "incremental allocs/tx", "naive allocs/tx"},
		Notes:   "constraint: p(x) -> not once q(x); steady-state cost and heap allocations over the final 10% of transactions",
	}
	for _, n := range histLengths(quick) {
		h := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 42, OpsPerTx: 1, Domain: 8})
		h.Constraints = []workload.ConstraintSpec{
			{Name: "no_q_ever", Source: "p(x) -> not once q(x)"},
		}
		inc, _, err := bestIncremental(h, repeats(quick))
		if err != nil {
			return t, err
		}
		nv, _, err := bestNaive(h, repeats(quick))
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			ns(inc.nsPerStepTail),
			ns(nv.nsPerStepTail),
			ratio(nv.nsPerStepTail, inc.nsPerStepTail),
			fmt.Sprintf("%.0f", inc.allocsPerStepTail),
			fmt.Sprintf("%.0f", nv.allocsPerStepTail),
		})
	}
	return t, nil
}

// Figure1Space — space held by each checker as the history grows, for a
// bounded window. Expected shape: naive linear in history length (it
// stores every state), incremental bounded by the window.
func Figure1Space(quick bool) (Table, error) {
	t := Table{
		ID:      "Figure 1",
		Title:   "checker space vs history length (window [0,100])",
		Columns: []string{"history n", "incremental aux bytes", "naive history bytes", "naive/incremental"},
		Notes:   "constraint: p(x) -> not once[0,100] q(x); incremental space is the auxiliary encoding, naive space the stored snapshots",
	}
	for _, n := range histLengths(quick) {
		h := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 43, OpsPerTx: 1, Domain: 8})
		h.Constraints = []workload.ConstraintSpec{
			{Name: "no_recent_q", Source: "p(x) -> not once[0,100] q(x)"},
		}
		_, stats, err := runIncremental(h)
		if err != nil {
			return t, err
		}
		_, histBytes, err := runNaive(h)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			bytesStr(stats.Bytes),
			bytesStr(histBytes),
			ratio(float64(histBytes), float64(stats.Bytes)),
		})
	}
	return t, nil
}

// Table2Window — effect of the metric window size on the incremental
// checker. Expected shape: auxiliary size grows with the window until it
// saturates at the history length; the unbounded window costs O(1) per
// binding (the single-timestamp rule).
func Table2Window(quick bool) (Table, error) {
	t := Table{
		ID:      "Table 2",
		Title:   "incremental cost and space vs metric window size",
		Columns: []string{"window", "ns/tx", "aux entries", "aux timestamps", "aux bytes"},
		Notes:   "constraint: p(x) -> not once[0,W] q(x) (W=inf uses the single-timestamp encoding)",
	}
	n := 2000
	if quick {
		n = 600
	}
	windows := []string{"10", "100", "1000", "10000", "inf"}
	for _, w := range windows {
		src := fmt.Sprintf("p(x) -> not once[0,%s] q(x)", w)
		if w == "inf" {
			src = "p(x) -> not once q(x)"
		}
		h := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 44, OpsPerTx: 1, Domain: 8})
		h.Constraints = []workload.ConstraintSpec{{Name: "c", Source: src}}
		res, stats, err := bestIncremental(h, repeats(quick))
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			w,
			ns(res.nsPerStepTail),
			fmt.Sprintf("%d", stats.Entries),
			fmt.Sprintf("%d", stats.Timestamps),
			bytesStr(stats.Bytes),
		})
	}
	return t, nil
}

// Table3UpdateRate — effect of transaction size (tuples modified per
// commit). Both checkers scale with the update size; the gap between
// them stays roughly constant.
func Table3UpdateRate(quick bool) (Table, error) {
	t := Table{
		ID:      "Table 3",
		Title:   "per-transaction cost vs update size",
		Columns: []string{"ops/tx", "incremental ns/tx", "naive ns/tx", "naive/incremental"},
		Notes:   "constraint: p(x) -> not once[0,100] q(x); history length 1000",
	}
	n := 1000
	if quick {
		n = 300
	}
	for _, ops := range []int{1, 4, 16, 64} {
		h := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 45, OpsPerTx: ops, Domain: 32})
		h.Constraints = []workload.ConstraintSpec{
			{Name: "c", Source: "p(x) -> not once[0,100] q(x)"},
		}
		inc, _, err := bestIncremental(h, repeats(quick))
		if err != nil {
			return t, err
		}
		nv, _, err := bestNaive(h, repeats(quick))
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", ops),
			ns(inc.nsPerStepTail),
			ns(nv.nsPerStepTail),
			ratio(nv.nsPerStepTail, inc.nsPerStepTail),
		})
	}
	return t, nil
}

// depthConstraints gives formulas of increasing temporal nesting depth.
var depthConstraints = []workload.ConstraintSpec{
	{Name: "d1", Source: "p(x) -> not once[0,50] q(x)"},
	{Name: "d2", Source: "p(x) -> not once[0,50] prev q(x)"},
	{Name: "d3", Source: "p(x) -> not once[0,50] prev once[0,50] q(x)"},
	{Name: "d4", Source: "p(x) -> not once[0,50] prev once[0,50] prev q(x)"},
}

// Table4Depth — effect of temporal nesting depth. Cost grows with the
// number of auxiliary nodes for the incremental checker and with the
// recursion depth for the naive one.
func Table4Depth(quick bool) (Table, error) {
	t := Table{
		ID:      "Table 4",
		Title:   "per-transaction cost vs temporal nesting depth",
		Columns: []string{"depth", "constraint", "incremental ns/tx", "naive ns/tx"},
		Notes:   "history length 800, uniform workload",
	}
	n := 800
	if quick {
		n = 250
	}
	for d, cs := range depthConstraints {
		h := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 46, OpsPerTx: 1, Domain: 8})
		h.Constraints = []workload.ConstraintSpec{cs}
		inc, _, err := bestIncremental(h, repeats(quick))
		if err != nil {
			return t, err
		}
		nv, _, err := bestNaive(h, repeats(quick))
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d+1),
			cs.Source,
			ns(inc.nsPerStepTail),
			ns(nv.nsPerStepTail),
		})
	}
	return t, nil
}

// Figure2Crossover — total checking cost on short histories. The naive
// checker is competitive only at the very beginning; the incremental
// checker's advantage compounds with history length.
func Figure2Crossover(quick bool) (Table, error) {
	t := Table{
		ID:      "Figure 2",
		Title:   "total checking cost on short histories (unbounded window)",
		Columns: []string{"history n", "incremental total", "naive total", "naive/incremental"},
		Notes:   "constraint: p(x) -> not once q(x)",
	}
	sizes := []int{1, 4, 16, 64, 256}
	if quick {
		sizes = []int{1, 8, 64}
	}
	for _, n := range sizes {
		h := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 47, OpsPerTx: 1, Domain: 8})
		h.Constraints = []workload.ConstraintSpec{
			{Name: "c", Source: "p(x) -> not once q(x)"},
		}
		inc, _, err := bestIncremental(h, repeats(quick))
		if err != nil {
			return t, err
		}
		nv, _, err := bestNaive(h, repeats(quick))
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			ns(float64(inc.totalNs)),
			ns(float64(nv.totalNs)),
			ratio(float64(nv.totalNs), float64(inc.totalNs)),
		})
	}
	return t, nil
}

// Table5Active — overhead of the active-DBMS route (constraints compiled
// to production rules over relation-stored encodings) relative to the
// direct incremental checker. Expected shape: same violations, a small
// constant-factor slowdown from rule dispatch and relation round-trips.
func Table5Active(quick bool) (Table, error) {
	t := Table{
		ID:      "Table 5",
		Title:   "direct incremental checker vs active-rule compilation",
		Columns: []string{"route", "ns/tx", "violations", "aux tuples / entries"},
		Notes:   "tickets workload (deadline 3, 1% late), 500 transactions",
	}
	n := 500
	if quick {
		n = 200
	}
	h := workload.Tickets(workload.TicketsConfig{Steps: n, Seed: 48, ViolationRate: 0.01})
	inc, stats, err := bestIncremental(h, repeats(quick))
	if err != nil {
		return t, err
	}
	act, auxTuples, err := bestActive(h, repeats(quick))
	if err != nil {
		return t, err
	}
	if inc.violations != act.violations {
		return t, fmt.Errorf("bench: routes disagree: incremental %d violations, active %d", inc.violations, act.violations)
	}
	t.Rows = append(t.Rows,
		[]string{"incremental", ns(inc.nsPerStepAll), fmt.Sprintf("%d", inc.violations), fmt.Sprintf("%d", stats.Entries)},
		[]string{"active rules", ns(act.nsPerStepAll), fmt.Sprintf("%d", act.violations), fmt.Sprintf("%d", auxTuples)},
		[]string{"overhead", ratio(act.nsPerStepAll, inc.nsPerStepAll), "", ""},
	)
	return t, nil
}

// Figure3Violations — behaviour under injected violation rates: both
// checkers detect every violation in the transaction that creates it
// (same-transaction detection), and the violation rate barely affects
// checking cost.
func Figure3Violations(quick bool) (Table, error) {
	t := Table{
		ID:      "Figure 3",
		Title:   "detection under injected violation rates (tickets workload)",
		Columns: []string{"violation rate", "incremental ns/tx", "violations (incremental)", "violations (naive)"},
		Notes:   "every violation is reported in the transaction that commits it",
	}
	n := 600
	if quick {
		n = 200
	}
	for _, rate := range []float64{0, 0.001, 0.01, 0.1} {
		h := workload.Tickets(workload.TicketsConfig{Steps: n, Seed: 49, ViolationRate: rate})
		inc, _, err := bestIncremental(h, repeats(quick))
		if err != nil {
			return t, err
		}
		nv, _, err := bestNaive(h, repeats(quick))
		if err != nil {
			return t, err
		}
		if inc.violations != nv.violations {
			return t, fmt.Errorf("bench: rate %g: incremental %d vs naive %d violations", rate, inc.violations, nv.violations)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f%%", rate*100),
			ns(inc.nsPerStepAll),
			fmt.Sprintf("%d", inc.violations),
			fmt.Sprintf("%d", nv.violations),
		})
	}
	return t, nil
}

// Experiments lists every experiment in report order.
func Experiments() []struct {
	ID  string
	Run func(bool) (Table, error)
} {
	return []struct {
		ID  string
		Run func(bool) (Table, error)
	}{
		{"Table 1", Table1HistoryLength},
		{"Figure 1", Figure1Space},
		{"Table 2", Table2Window},
		{"Table 3", Table3UpdateRate},
		{"Table 4", Table4Depth},
		{"Figure 2", Figure2Crossover},
		{"Table 5", Table5Active},
		{"Figure 3", Figure3Violations},
		{"Table 6", Table6Ablation},
		{"Figure 4", Figure4Storage},
		{"Table 7", Table7SinceChain},
		{"Table 8", Table8Parallelism},
		{"Table 9", Table9ShardScaling},
		{"Table 10", Table10CDCFreshness},
	}
}

// crossShardConstraints builds a spec no partition column can serve:
// count self-join denials whose key variables swap positions between
// the two r atoms, so the static analysis places every constraint (and
// r itself) on the global shard.
func crossShardConstraints(count int) []workload.ConstraintSpec {
	out := make([]workload.ConstraintSpec, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, workload.ConstraintSpec{
			Name:   fmt.Sprintf("x%03d", i),
			Source: fmt.Sprintf("r(x, y) -> not once[0,%d] r(y, x)", 40+i),
		})
	}
	return out
}

// Table9ShardScaling — hash-partitioned shard engines vs the unsharded
// checker, on two workloads: one fully partitionable (the router
// spreads state and checks across the shards) and one forced onto the
// global shard by cross-partition joins (the router's worst case — all
// routing overhead, no spreading). Violations are asserted identical
// to the unsharded engine at every fan-out.
func Table9ShardScaling(quick bool) (Table, error) {
	t := Table{
		ID:      "Table 9",
		Title:   "shard fan-out vs per-transaction cost (32 constraints)",
		Columns: []string{"shards", "partitionable ns/tx", "speedup vs unsharded", "cross-shard ns/tx", "speedup vs unsharded"},
		Notes:   "partitionable: 32 once-window denials keyed by one variable; cross-shard: 32 self-join denials forced onto the global shard; all fan-outs report identical violations",
	}
	n := 400
	if quick {
		n = 150
	}
	part := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 53, OpsPerTx: 4, Domain: 16})
	part.Constraints = parallelismConstraints(32)
	cross := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 59, OpsPerTx: 4, Domain: 16})
	cross.Constraints = crossShardConstraints(32)

	basePart, _, err := bestIncremental(part, repeats(quick), core.WithParallelism(1))
	if err != nil {
		return t, err
	}
	baseCross, _, err := bestIncremental(cross, repeats(quick), core.WithParallelism(1))
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"unsharded", ns(basePart.nsPerStepAll), "1.0x", ns(baseCross.nsPerStepAll), "1.0x",
	})

	for _, shards := range []int{2, 4, 8} {
		resPart, err := bestSharded(part, repeats(quick), shards)
		if err != nil {
			return t, err
		}
		if resPart.violations != basePart.violations {
			return t, fmt.Errorf("bench: %d shards reported %d violations on the partitionable leg, unsharded %d",
				shards, resPart.violations, basePart.violations)
		}
		resCross, err := bestSharded(cross, repeats(quick), shards)
		if err != nil {
			return t, err
		}
		if resCross.violations != baseCross.violations {
			return t, fmt.Errorf("bench: %d shards reported %d violations on the cross-shard leg, unsharded %d",
				shards, resCross.violations, baseCross.violations)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards),
			ns(resPart.nsPerStepAll),
			ratio(basePart.nsPerStepAll, resPart.nsPerStepAll),
			ns(resCross.nsPerStepAll),
			ratio(baseCross.nsPerStepAll, resCross.nsPerStepAll),
		})
	}
	return t, nil
}

// parallelismConstraints builds a constraint-heavy spec: count distinct
// once-window denials over the uniform workload's relations. Distinct
// windows give every constraint its own auxiliary node, so both the
// node-update and the constraint-check phase have count-wide levels for
// the worker pool to spread.
func parallelismConstraints(count int) []workload.ConstraintSpec {
	out := make([]workload.ConstraintSpec, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, workload.ConstraintSpec{
			Name:   fmt.Sprintf("w%03d", i),
			Source: fmt.Sprintf("p(x) -> not once[0,%d] q(x)", 40+i),
		})
	}
	return out
}

// Table8Parallelism — scaling the commit pipeline's worker pool on a
// constraint-heavy workload. Expected shape: throughput improves with
// the pool width up to the core count; violations are identical at
// every width (the equivalence the core test suite also proves).
func Table8Parallelism(quick bool) (Table, error) {
	t := Table{
		ID:      "Table 8",
		Title:   "commit-pipeline worker pool vs per-transaction cost (32 constraints)",
		Columns: []string{"workers", "ns/tx", "speedup vs sequential", "violations"},
		Notes:   "32 distinct once-window constraints; all widths report identical violations",
	}
	n := 400
	if quick {
		n = 150
	}
	h := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 53, OpsPerTx: 4, Domain: 16})
	h.Constraints = parallelismConstraints(32)

	widths := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		widths = append(widths, p)
	}
	var seq float64
	var seqViolations int
	for i, w := range widths {
		res, _, err := bestIncremental(h, repeats(quick), core.WithParallelism(w))
		if err != nil {
			return t, err
		}
		if i == 0 {
			seq, seqViolations = res.nsPerStepAll, res.violations
		} else if res.violations != seqViolations {
			return t, fmt.Errorf("bench: width %d reported %d violations, sequential %d", w, res.violations, seqViolations)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			ns(res.nsPerStepAll),
			ratio(seq, res.nsPerStepAll),
			fmt.Sprintf("%d", res.violations),
		})
	}
	return t, nil
}

// All runs every experiment in report order.
func All(quick bool) ([]Table, error) {
	exps := Experiments()
	out := make([]Table, 0, len(exps))
	for _, e := range exps {
		tbl, err := e.Run(quick)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// Table6Ablation — the pruning ablation: identical answers, but without
// the pruning rules the "bounded" encoding grows with history length.
// This isolates pruning as the mechanism behind the paper's space claim.
func Table6Ablation(quick bool) (Table, error) {
	t := Table{
		ID:      "Table 6",
		Title:   "ablation: window pruning on vs off (window [0,100])",
		Columns: []string{"history n", "pruned aux timestamps", "unpruned aux timestamps", "pruned bytes", "unpruned bytes"},
		Notes:   "constraint: p(x) -> not once[0,100] q(x); answers are identical in both configurations",
	}
	for _, n := range histLengths(quick) {
		h := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 50, OpsPerTx: 1, Domain: 8})
		h.Constraints = []workload.ConstraintSpec{
			{Name: "c", Source: "p(x) -> not once[0,100] q(x)"},
		}
		_, pruned, err := runIncremental(h)
		if err != nil {
			return t, err
		}
		unpruned, err := runUnpruned(h)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", pruned.Timestamps),
			fmt.Sprintf("%d", unpruned.Timestamps),
			bytesStr(pruned.Bytes),
			bytesStr(unpruned.Bytes),
		})
	}
	return t, nil
}

// Figure4Storage — three-way storage comparison: the incremental
// encoding vs the naive checker on full snapshots vs the naive checker
// on a checkpointed delta log (snapshot every 64 commits). The
// checkpointed variant narrows the gap by a constant factor but remains
// Θ(history); only the encoding is bounded.
func Figure4Storage(quick bool) (Table, error) {
	t := Table{
		ID:      "Figure 4",
		Title:   "storage: bounded encoding vs snapshot history vs checkpointed history",
		Columns: []string{"history n", "incremental", "naive (snapshots)", "naive (checkpointed)"},
		Notes:   "constraint: p(x) -> not once[0,100] q(x); checkpoint interval 64",
	}
	for _, n := range histLengths(quick) {
		h := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 51, OpsPerTx: 1, Domain: 8})
		h.Constraints = []workload.ConstraintSpec{
			{Name: "c", Source: "p(x) -> not once[0,100] q(x)"},
		}
		_, stats, err := runIncremental(h)
		if err != nil {
			return t, err
		}
		_, snapBytes, err := runNaive(h)
		if err != nil {
			return t, err
		}
		cpBytes, err := runCheckpointedNaive(h, 64)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			bytesStr(stats.Bytes),
			bytesStr(snapBytes),
			bytesStr(cpBytes),
		})
	}
	return t, nil
}

// Table7SinceChain — the since-chain workload (alarm/ack/clear): the
// operator with the most intricate auxiliary update. Both checkers see
// identical violations; the incremental advantage persists on chain
// constraints.
func Table7SinceChain(quick bool) (Table, error) {
	t := Table{
		ID:      "Table 7",
		Title:   "since-chain workload (alarm acknowledgement protocol)",
		Columns: []string{"history n", "incremental ns/tx", "naive ns/tx", "violations"},
		Notes:   "constraint: clear(a) -> (ack(a) since[0,50] raisd(a)); 2% broken chains",
	}
	sizes := []int{200, 400, 800}
	if quick {
		sizes = []int{100, 200}
	}
	for _, n := range sizes {
		h := workload.Alarms(workload.AlarmsConfig{Steps: n, Seed: 52, ViolationRate: 0.02})
		// Bound the chain window so the naive baseline terminates its
		// backward scan; alarms in this workload clear within 50 ticks.
		h.Constraints = []workload.ConstraintSpec{
			{Name: "ack_before_clear", Source: "clear(a) -> (ack(a) since[0,50] raisd(a))"},
		}
		inc, _, err := bestIncremental(h, repeats(quick))
		if err != nil {
			return t, err
		}
		nv, _, err := bestNaive(h, repeats(quick))
		if err != nil {
			return t, err
		}
		if inc.violations != nv.violations {
			return t, fmt.Errorf("bench: since-chain checkers disagree: %d vs %d", inc.violations, nv.violations)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			ns(inc.nsPerStepTail),
			ns(nv.nsPerStepTail),
			fmt.Sprintf("%d", inc.violations),
		})
	}
	return t, nil
}
