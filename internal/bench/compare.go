package bench

import (
	"fmt"
	"io"
)

// Delta is one matched duration cell across two benchmark runs.
type Delta struct {
	Table  string  `json:"table"`
	Row    string  `json:"row"`
	Column string  `json:"column"`
	OldRaw string  `json:"old_raw"`
	NewRaw string  `json:"new_raw"`
	Old    float64 `json:"old_ns"`
	New    float64 `json:"new_ns"`
	Ratio  float64 `json:"ratio"` // new/old; >1 is slower
}

// Report is the outcome of comparing two benchmark runs.
type Report struct {
	Factor      float64  `json:"factor"`
	Deltas      []Delta  `json:"deltas"`            // every matched ns cell
	Regressions []Delta  `json:"regressions"`       // subset with Ratio > Factor
	Missing     []string `json:"missing,omitempty"` // tables/rows present before, gone now
}

// Compare matches the two runs' duration cells — tables by ID, rows by
// key, columns by header — and flags every cell that got more than
// factor times slower. Only cells with unit "ns" participate: ratios,
// counts and byte sizes move for legitimate reasons (different host,
// different GOMAXPROCS) and host-to-host noise would drown the signal.
func Compare(old, new Result, factor float64) Report {
	if factor <= 1 {
		factor = 3
	}
	rep := Report{Factor: factor}
	newTables := map[string]ResultTable{}
	for _, t := range new.Tables {
		newTables[t.ID] = t
	}
	for _, ot := range old.Tables {
		nt, ok := newTables[ot.ID]
		if !ok {
			rep.Missing = append(rep.Missing, ot.ID)
			continue
		}
		newRows := map[string]ResultRow{}
		for _, r := range nt.Rows {
			newRows[r.Key] = r
		}
		newCol := map[string]int{}
		for i, c := range nt.Columns {
			newCol[c] = i
		}
		for _, orow := range ot.Rows {
			nrow, ok := newRows[orow.Key]
			if !ok {
				rep.Missing = append(rep.Missing, fmt.Sprintf("%s row %q", ot.ID, orow.Key))
				continue
			}
			for i, oc := range orow.Cells {
				if oc.Unit != "ns" || oc.Value <= 0 || i >= len(ot.Columns) {
					continue
				}
				j, ok := newCol[ot.Columns[i]]
				if !ok || j >= len(nrow.Cells) {
					continue
				}
				nc := nrow.Cells[j]
				if nc.Unit != "ns" || nc.Value <= 0 {
					continue
				}
				d := Delta{
					Table: ot.ID, Row: orow.Key, Column: ot.Columns[i],
					OldRaw: oc.Raw, NewRaw: nc.Raw,
					Old: oc.Value, New: nc.Value, Ratio: nc.Value / oc.Value,
				}
				rep.Deltas = append(rep.Deltas, d)
				if d.Ratio > factor {
					rep.Regressions = append(rep.Regressions, d)
				}
			}
		}
	}
	return rep
}

// OK reports whether the comparison found no regressions.
func (r Report) OK() bool { return len(r.Regressions) == 0 }

// Render writes the report as a human-readable summary: regressions
// first, then every matched cell.
func (r Report) Render(w io.Writer) {
	if len(r.Regressions) > 0 {
		fmt.Fprintf(w, "REGRESSIONS (> %.1fx slower):\n", r.Factor)
		for _, d := range r.Regressions {
			fmt.Fprintf(w, "  %s / %s / %s: %s -> %s (%.2fx)\n", d.Table, d.Row, d.Column, d.OldRaw, d.NewRaw, d.Ratio)
		}
	} else {
		fmt.Fprintf(w, "no regressions beyond %.1fx\n", r.Factor)
	}
	for _, m := range r.Missing {
		fmt.Fprintf(w, "  missing in new run: %s\n", m)
	}
	fmt.Fprintf(w, "%d duration cells compared:\n", len(r.Deltas))
	for _, d := range r.Deltas {
		fmt.Fprintf(w, "  %s / %s / %s: %s -> %s (%.2fx)\n", d.Table, d.Row, d.Column, d.OldRaw, d.NewRaw, d.Ratio)
	}
}
