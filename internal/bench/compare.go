package bench

import (
	"fmt"
	"io"
	"strings"
)

// AllocFactor is the regression threshold for allocation-count cells
// (unit "count" in a column whose header mentions "alloc"). Allocation
// counts are near-deterministic — they do not move with host speed or
// scheduler noise the way durations do — so the gate is much tighter
// than the duration factor.
const AllocFactor = 2.0

// Delta is one matched cell across two benchmark runs.
type Delta struct {
	Table  string  `json:"table"`
	Row    string  `json:"row"`
	Column string  `json:"column"`
	OldRaw string  `json:"old_raw"`
	NewRaw string  `json:"new_raw"`
	Old    float64 `json:"old_ns"`
	New    float64 `json:"new_ns"`
	Ratio  float64 `json:"ratio"` // new/old; >1 is slower
	Limit  float64 `json:"limit"` // threshold this cell was held to
}

// Report is the outcome of comparing two benchmark runs.
type Report struct {
	Factor      float64  `json:"factor"`
	Deltas      []Delta  `json:"deltas"`            // every matched cell
	Regressions []Delta  `json:"regressions"`       // subset with Ratio > Limit
	Missing     []string `json:"missing,omitempty"` // tables/rows present before, gone now
}

// Compare matches the two runs' cells — tables by ID, rows by key,
// columns by header — and flags regressions. Two kinds of cell
// participate: durations (unit "ns"), held to the given factor, and
// allocation counts (unit "count" in an "alloc" column), held to the
// fixed AllocFactor. Other ratios, counts and byte sizes move for
// legitimate reasons (different host, different GOMAXPROCS) and
// host-to-host noise would drown the signal.
func Compare(old, new Result, factor float64) Report {
	if factor <= 1 {
		factor = 3
	}
	rep := Report{Factor: factor}
	newTables := map[string]ResultTable{}
	for _, t := range new.Tables {
		newTables[t.ID] = t
	}
	for _, ot := range old.Tables {
		nt, ok := newTables[ot.ID]
		if !ok {
			rep.Missing = append(rep.Missing, ot.ID)
			continue
		}
		newRows := map[string]ResultRow{}
		for _, r := range nt.Rows {
			newRows[r.Key] = r
		}
		newCol := map[string]int{}
		for i, c := range nt.Columns {
			newCol[c] = i
		}
		for _, orow := range ot.Rows {
			nrow, ok := newRows[orow.Key]
			if !ok {
				rep.Missing = append(rep.Missing, fmt.Sprintf("%s row %q", ot.ID, orow.Key))
				continue
			}
			for i, oc := range orow.Cells {
				if oc.Value <= 0 || i >= len(ot.Columns) {
					continue
				}
				var limit float64
				switch {
				case oc.Unit == "ns":
					limit = factor
				case oc.Unit == "count" && strings.Contains(ot.Columns[i], "alloc"):
					limit = AllocFactor
				default:
					continue
				}
				j, ok := newCol[ot.Columns[i]]
				if !ok || j >= len(nrow.Cells) {
					continue
				}
				nc := nrow.Cells[j]
				if nc.Unit != oc.Unit || nc.Value <= 0 {
					continue
				}
				d := Delta{
					Table: ot.ID, Row: orow.Key, Column: ot.Columns[i],
					OldRaw: oc.Raw, NewRaw: nc.Raw,
					Old: oc.Value, New: nc.Value, Ratio: nc.Value / oc.Value,
					Limit: limit,
				}
				rep.Deltas = append(rep.Deltas, d)
				if d.Ratio > limit {
					rep.Regressions = append(rep.Regressions, d)
				}
			}
		}
	}
	return rep
}

// OK reports whether the comparison found no regressions.
func (r Report) OK() bool { return len(r.Regressions) == 0 }

// Render writes the report as a human-readable summary: regressions
// first, then every matched cell.
func (r Report) Render(w io.Writer) {
	if len(r.Regressions) > 0 {
		fmt.Fprintf(w, "REGRESSIONS:\n")
		for _, d := range r.Regressions {
			fmt.Fprintf(w, "  %s / %s / %s: %s -> %s (%.2fx, limit %.1fx)\n", d.Table, d.Row, d.Column, d.OldRaw, d.NewRaw, d.Ratio, d.Limit)
		}
	} else {
		fmt.Fprintf(w, "no regressions beyond %.1fx (durations) / %.1fx (allocs)\n", r.Factor, AllocFactor)
	}
	for _, m := range r.Missing {
		fmt.Fprintf(w, "  missing in new run: %s\n", m)
	}
	fmt.Fprintf(w, "%d cells compared:\n", len(r.Deltas))
	for _, d := range r.Deltas {
		fmt.Fprintf(w, "  %s / %s / %s: %s -> %s (%.2fx)\n", d.Table, d.Row, d.Column, d.OldRaw, d.NewRaw, d.Ratio)
	}
}
