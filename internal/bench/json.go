// Machine-readable benchmark results: the BENCH_<date>.json schema the
// ROADMAP asks for, so the trajectory across Tables 1–9 is tracked
// per-PR instead of pasted into EXPERIMENTS.md by hand. A Result
// carries the environment (git revision, Go version, GOMAXPROCS) and
// every table cell both raw (the rendered string) and parsed (value +
// unit), so downstream tooling never re-parses "14.4 µs".
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
)

// ResultSchema is the current BENCH_*.json schema version.
const ResultSchema = 1

// Result is one full benchmark run.
type Result struct {
	Schema      int           `json:"schema"`
	CreatedUnix int64         `json:"created_unix"` // run timestamp, seconds
	GitRev      string        `json:"git_rev"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Quick       bool          `json:"quick"`
	Tables      []ResultTable `json:"tables"`
}

// ResultTable mirrors one rendered Table.
type ResultTable struct {
	ID      string      `json:"id"`
	Title   string      `json:"title"`
	Columns []string    `json:"columns"`
	Notes   string      `json:"notes,omitempty"`
	Rows    []ResultRow `json:"rows"`
}

// ResultRow is one table row; Key (the first cell's raw text) is what
// Compare matches rows by.
type ResultRow struct {
	Key   string `json:"key"`
	Cells []Cell `json:"cells"`
}

// Cell is one table cell: the rendered string plus its parsed value.
// Units: "ns" (durations, normalized to nanoseconds), "bytes",
// "ratio" ("59.1x"), "percent", "count" (bare numbers), or "" for
// text cells.
type Cell struct {
	Raw   string  `json:"raw"`
	Value float64 `json:"value,omitempty"`
	Unit  string  `json:"unit,omitempty"`
}

// ParseCell classifies one rendered cell. Unknown shapes come back as
// text cells (unit "").
func ParseCell(raw string) Cell {
	c := Cell{Raw: raw}
	s := strings.TrimSpace(raw)
	if s == "" || s == "-" {
		return c
	}
	if strings.HasSuffix(s, "%") {
		if v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64); err == nil {
			c.Value, c.Unit = v, "percent"
		}
		return c
	}
	if strings.HasSuffix(s, "x") {
		if v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64); err == nil {
			c.Value, c.Unit = v, "ratio"
		}
		return c
	}
	if fields := strings.Fields(s); len(fields) == 2 {
		v, err := strconv.ParseFloat(fields[0], 64)
		if err == nil {
			switch fields[1] {
			case "ns":
				c.Value, c.Unit = v, "ns"
			case "µs", "μs", "us":
				c.Value, c.Unit = v*1e3, "ns"
			case "ms":
				c.Value, c.Unit = v*1e6, "ns"
			case "s":
				c.Value, c.Unit = v*1e9, "ns"
			case "B":
				c.Value, c.Unit = v, "bytes"
			case "KiB":
				c.Value, c.Unit = v*(1<<10), "bytes"
			case "MiB":
				c.Value, c.Unit = v*(1<<20), "bytes"
			}
		}
		return c
	}
	// ParseFloat accepts "inf" and "nan" (Table 2's unbounded-window row
	// key is "inf"), but JSON cannot encode non-finite numbers — keep
	// those as text cells.
	if v, err := strconv.ParseFloat(s, 64); err == nil && !math.IsInf(v, 0) && !math.IsNaN(v) {
		c.Value, c.Unit = v, "count"
	}
	return c
}

// NewResult packages rendered tables with the run environment.
// createdUnix is the run timestamp (the caller owns the clock).
func NewResult(tables []Table, quick bool, createdUnix int64) Result {
	r := Result{
		Schema:      ResultSchema,
		CreatedUnix: createdUnix,
		GitRev:      GitRev(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Quick:       quick,
	}
	for _, t := range tables {
		rt := ResultTable{ID: t.ID, Title: t.Title, Columns: t.Columns, Notes: t.Notes}
		for _, row := range t.Rows {
			rr := ResultRow{}
			if len(row) > 0 {
				rr.Key = row[0]
			}
			for _, cell := range row {
				rr.Cells = append(rr.Cells, ParseCell(cell))
			}
			rt.Rows = append(rt.Rows, rr)
		}
		r.Tables = append(r.Tables, rt)
	}
	return r
}

// GitRev reports the VCS revision baked into the binary (go build's
// vcs.revision stamp), falling back to `git rev-parse HEAD`, then
// "unknown" — `go run` binaries are not stamped.
func GitRev() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

// WriteResult encodes r as indented JSON.
func WriteResult(w io.Writer, r Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadResult decodes and validates one BENCH_*.json.
func ReadResult(rd io.Reader) (Result, error) {
	var r Result
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return r, fmt.Errorf("bench: decoding result: %w", err)
	}
	if err := Validate(r); err != nil {
		return r, err
	}
	return r, nil
}

// validUnits is the closed set a schema-1 cell may carry.
var validUnits = map[string]bool{"": true, "ns": true, "bytes": true, "ratio": true, "percent": true, "count": true}

// Validate checks a Result against the schema: version, environment
// fields, and per-table shape (every row as wide as its header, keys
// present, units from the closed set).
func Validate(r Result) error {
	if r.Schema != ResultSchema {
		return fmt.Errorf("bench: schema %d, want %d", r.Schema, ResultSchema)
	}
	if r.GoVersion == "" {
		return fmt.Errorf("bench: missing go_version")
	}
	if r.GitRev == "" {
		return fmt.Errorf("bench: missing git_rev")
	}
	if r.GOMAXPROCS < 1 {
		return fmt.Errorf("bench: implausible gomaxprocs %d", r.GOMAXPROCS)
	}
	if len(r.Tables) == 0 {
		return fmt.Errorf("bench: no tables")
	}
	for i, t := range r.Tables {
		if t.ID == "" {
			return fmt.Errorf("bench: table %d: missing id", i)
		}
		if len(t.Columns) == 0 {
			return fmt.Errorf("bench: %s: no columns", t.ID)
		}
		if len(t.Rows) == 0 {
			return fmt.Errorf("bench: %s: no rows", t.ID)
		}
		for j, row := range t.Rows {
			if row.Key == "" {
				return fmt.Errorf("bench: %s row %d: missing key", t.ID, j)
			}
			if len(row.Cells) != len(t.Columns) {
				return fmt.Errorf("bench: %s row %q: %d cells for %d columns", t.ID, row.Key, len(row.Cells), len(t.Columns))
			}
			for k, c := range row.Cells {
				if !validUnits[c.Unit] {
					return fmt.Errorf("bench: %s row %q cell %d: unknown unit %q", t.ID, row.Key, k, c.Unit)
				}
			}
		}
	}
	return nil
}
