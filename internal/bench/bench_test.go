package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"rtic/internal/workload"
)

func TestRenderTable(t *testing.T) {
	tbl := Table{
		ID:      "Table X",
		Title:   "demo",
		Columns: []string{"a", "long column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "a note",
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, frag := range []string{"Table X — demo", "long column", "333", "note: a note"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendered table missing %q:\n%s", frag, out)
		}
	}
}

func TestHelpers(t *testing.T) {
	if got := ns(500); got != "500 ns" {
		t.Errorf("ns(500) = %q", got)
	}
	if got := ns(2500); got != "2.5 µs" {
		t.Errorf("ns(2500) = %q", got)
	}
	if got := ns(3.2e6); got != "3.20 ms" {
		t.Errorf("ns(3.2e6) = %q", got)
	}
	if got := bytesStr(100); got != "100 B" {
		t.Errorf("bytesStr(100) = %q", got)
	}
	if got := bytesStr(4 << 10); got != "4.0 KiB" {
		t.Errorf("bytesStr = %q", got)
	}
	if got := bytesStr(3 << 20); got != "3.0 MiB" {
		t.Errorf("bytesStr = %q", got)
	}
	if got := ratio(10, 0); got != "-" {
		t.Errorf("ratio div by zero = %q", got)
	}
	if got := ratio(10, 4); got != "2.5x" {
		t.Errorf("ratio = %q", got)
	}
}

func TestReplayCountsViolations(t *testing.T) {
	h := workload.Tickets(workload.TicketsConfig{Steps: 100, Seed: 1, ViolationRate: 0.5})
	res, _, err := runIncremental(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.violations == 0 {
		t.Fatal("expected violations in dirty workload")
	}
	if res.nsPerStepAll <= 0 || res.totalNs <= 0 {
		t.Fatalf("timings not recorded: %+v", res)
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	tables, err := All(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 14 {
		t.Fatalf("got %d tables, want 14", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s has no rows", tbl.ID)
		}
		var buf bytes.Buffer
		tbl.Render(&buf)
		if buf.Len() == 0 {
			t.Errorf("%s rendered empty", tbl.ID)
		}
	}
}

func TestFigure1SpaceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tbl, err := Figure1Space(true)
	if err != nil {
		t.Fatal(err)
	}
	// The naive/incremental space ratio must grow with history length —
	// the paper's headline space claim.
	first := parseRatio(t, tbl.Rows[0][3])
	last := parseRatio(t, tbl.Rows[len(tbl.Rows)-1][3])
	if last <= first {
		t.Fatalf("space ratio did not grow: first %.1f, last %.1f\nrows: %v", first, last, tbl.Rows)
	}
}

func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad ratio %q", s)
	}
	return v
}

func TestTable10CDCFreshnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tbl, err := Table10CDCFreshness(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || tbl.Rows[0][0] != "steady" || tbl.Rows[1][0] != "burst" {
		t.Fatalf("unexpected rows: %v", tbl.Rows)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("row width %d != %d columns: %v", len(row), len(tbl.Columns), row)
		}
	}
	// Steady-state CDC traffic must ride the cheap check paths — the
	// same invariant internal/cdcgen's skip regression test pins, here
	// asserted on the benchmark's own measurement.
	skipped := parsePercent(t, tbl.Rows[0][5])
	seeded := parsePercent(t, tbl.Rows[0][6])
	if skipped+seeded < 50 {
		t.Fatalf("steady phase skipped+seeded %.1f%% < 50%%:\n%v", skipped+seeded, tbl.Rows)
	}
}

func parsePercent(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q", s)
	}
	return v
}

func TestTable9ShardScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tbl, err := Table9ShardScaling(true)
	if err != nil {
		t.Fatal(err)
	}
	// Unsharded baseline plus fan-outs 2, 4, 8; the identical-violations
	// assertion lives inside the experiment and surfaces as err.
	if len(tbl.Rows) != 4 {
		t.Fatalf("got %d rows, want 4:\n%v", len(tbl.Rows), tbl.Rows)
	}
	if tbl.Rows[0][0] != "unsharded" || tbl.Rows[3][0] != "8" {
		t.Fatalf("unexpected row labels: %v", tbl.Rows)
	}
}
