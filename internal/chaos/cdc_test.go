package chaos

import (
	"testing"

	"rtic/internal/cdcgen"
	"rtic/internal/vfs"
	"rtic/internal/workload"
)

// cdcHistory is the chaos corpus feed: bursty, reordered, hot-keyed
// CDC traffic with injected violations, small enough that each seeded
// run stays well under a second. Commit 13 sits mid-way through the
// first burst train (commits 10–17).
func cdcHistory() (workload.History, cdcgen.Meta) {
	return cdcgen.Generate(cdcgen.Config{
		Steps: 30, Seed: 77,
		BurstLen: 8, BurstEvery: 10,
		MaxReorder:    2,
		ViolationRate: 0.2,
	})
}

// TestChaosCDCBaseline pins the fault-free CDC run: the generalized
// workload path must carry the whole feed to durability and recover it
// bit-for-bit before the seeded suite below means anything.
func TestChaosCDCBaseline(t *testing.T) {
	h, _ := cdcHistory()
	last := h.Steps[len(h.Steps)-1].Time
	res, err := Run(Config{Dir: t.TempDir(), History: &h, Faults: -1})
	if err != nil {
		t.Fatalf("%+v: %v", res, err)
	}
	if res.Acked != len(h.Steps) || res.MaxDurableT != last || res.RecoveredT != last {
		t.Fatalf("clean CDC run lost state (last t=%d): %+v", last, res)
	}
	if res.Ops == 0 {
		t.Fatalf("no filesystem ops recorded: %+v", res)
	}
}

// TestChaosCDCSeeds drives the CDC feed through 10 seeded fault
// schedules on both durability paths, asserting the same contract as
// the hire/fire suite: no commit acknowledged while durability
// reported ok may be missing after the crash, and the recovered
// monitor must behave identically to a clean replay of the prefix.
func TestChaosCDCSeeds(t *testing.T) {
	h, _ := cdcHistory()
	for _, shards := range []int{1, 2} {
		fired := 0
		for seed := int64(1); seed <= 10; seed++ {
			res, err := Run(Config{Dir: t.TempDir(), History: &h, Seed: seed, Shards: shards})
			if err != nil {
				t.Errorf("shards=%d: %+v: %v", shards, res, err)
				continue
			}
			fired += len(res.Fired)
		}
		if fired == 0 {
			t.Errorf("shards=%d: no injection fired across any CDC seed", shards)
		}
	}
}

// TestChaosCDCMidBurstCrash latches the whole disk in the middle of
// the feed's first burst train — the worst moment, with source
// captures flooding the journal — and requires that every commit keeps
// being acknowledged and nothing acknowledged durable is lost. The
// crash op index is calibrated from the baseline run's op count, then
// verified against the injection that actually fired.
func TestChaosCDCMidBurstCrash(t *testing.T) {
	h, meta := cdcHistory()
	mid := -1
	for i, b := range meta.Burst {
		if b && i+3 < len(meta.Burst) && meta.Burst[i+3] {
			mid = i + 2 // two commits into a train that runs ≥ 3 more
			break
		}
	}
	if mid < 0 {
		t.Fatal("feed has no burst train to crash inside")
	}

	clean, err := Run(Config{Dir: t.TempDir(), History: &h, Faults: -1})
	if err != nil {
		t.Fatalf("calibration run: %+v: %v", clean, err)
	}
	firstOp := uint64(3*1) + 2 // Run's default journal-setup offset, unsharded
	opsPerCommit := (clean.Ops - firstOp) / uint64(len(h.Steps))
	crashAt := firstOp + opsPerCommit*uint64(mid)

	res, err := Run(Config{Dir: t.TempDir(), History: &h,
		Plan: []vfs.Injection{{AtOp: crashAt, Kind: vfs.Crash}}})
	if err != nil {
		t.Fatalf("%+v: %v", res, err)
	}
	if !res.Crashed || len(res.Fired) != 1 {
		t.Fatalf("crash injection at op %d did not latch: %+v", crashAt, res)
	}
	if res.Acked != len(h.Steps) {
		t.Fatalf("commits stopped being acknowledged after the crash: %+v", res)
	}
	// The crash must land inside the feed, not after it — otherwise
	// this test silently degrades into the baseline.
	if res.MaxDurableT >= h.Steps[len(h.Steps)-1].Time {
		t.Fatalf("crash at op %d landed after the whole feed was durable: %+v", crashAt, res)
	}
}
