// Package chaos drives durable monitors through seeded filesystem
// fault schedules and checks the durability contract after a simulated
// crash: no commit acknowledged while durability reported ok may be
// missing after recovery, and the recovered state must be identical to
// a clean run of the same trace prefix.
//
// One run is: build a monitor over a vfs.FaultFS whose injection plan
// is derived from a seed, drive a deterministic workload through it
// (committing straight through any degraded episodes), record the
// highest timestamp acknowledged while /healthz-equivalent status was
// "ok", abandon everything without shutdown, then recover on the real
// filesystem and compare against a reference monitor.
package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"time"

	"rtic/internal/monitor"
	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/vfs"
	"rtic/internal/wal"
	"rtic/internal/workload"
)

// Config parameterizes one chaos run. Zero values pick defaults sized
// for the built-in workload.
type Config struct {
	Dir     string // scratch directory for WAL and snapshot files (required)
	Seed    int64  // fault-schedule seed
	Commits int    // workload length (default 24)
	Shards  int    // >1 runs the sharded durability path (no checkpoints)
	FirstOp uint64 // first faultable op index (default: just past journal setup)
	Window  uint64 // op window the schedule draws from (default 4*Commits)
	Faults  int    // injections in the window (default Commits/3+2; <0: none)

	// Plan, when non-nil, replaces the seeded schedule entirely —
	// for deterministic single-fault scenarios.
	Plan []vfs.Injection

	// History, when non-nil, replaces the built-in hire/fire workload:
	// the run drives History.Steps through a monitor built over
	// History.Schema and History.Constraints, and Commits is taken from
	// the step count. Any workload.History works — the CDC freshness
	// feeds from internal/cdcgen are the standing corpus.
	History *workload.History

	// Probe, when non-nil, overrides the post-recovery probe
	// transaction. With a History and no Probe, the last non-empty
	// transaction of the trace is re-committed past the recovered time.
	Probe *storage.Transaction
}

// Result reports what one run did, for failure messages and for
// asserting that the suite actually exercised faults.
type Result struct {
	Seed           int64
	Acked          int         // commits acknowledged before the crash
	MaxDurableT    uint64      // highest t acknowledged with status "ok"
	RecoveredT     uint64      // monitor time after crash recovery
	Replayed       int         // journal records replayed during recovery
	Rearms         uint64      // successful re-arms during the run
	CheckpointErrs int         // checkpoints that failed under injection
	Crashed        bool        // a Crash fault latched the filesystem
	Fired          []vfs.Fired // injections that actually fired
	Ops            uint64      // filesystem ops the run performed (crash-plan calibration)
}

type step struct {
	t  uint64
	tx *storage.Transaction
}

// hrTrace is the deterministic hire/fire workload shared by every run:
// rehiring an employee fired within the window trips no_quick_rehire,
// so the trace exercises both clean and violating commits.
func hrTrace(n int) []step {
	steps := make([]step, 0, n)
	for i := 0; i < n; i++ {
		e := int64(i % 5)
		tx := storage.NewTransaction()
		if i%3 == 0 {
			tx.Insert("fire", tuple.Ints(e))
		} else {
			tx.Delete("fire", tuple.Ints(e)).Insert("hire", tuple.Ints(e))
		}
		steps = append(steps, step{t: uint64((i + 1) * 10), tx: tx})
	}
	return steps
}

func hrSchema() *schema.Schema {
	return schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
}

func hrConstraints() []workload.ConstraintSpec {
	return []workload.ConstraintSpec{
		{Name: "no_quick_rehire", Source: "hire(e) -> not once[0,365] fire(e)"},
	}
}

func newMonitor(sch *schema.Schema, cons []workload.ConstraintSpec, shards int) (*monitor.Monitor, error) {
	var opts []monitor.Option
	if shards > 1 {
		opts = append(opts, monitor.WithShards(shards))
	}
	m, err := monitor.New(sch, cons, opts...)
	if err != nil {
		return nil, err
	}
	m.SetObserver(&obs.Observer{Metrics: obs.NewMetrics(obs.NewRegistry())})
	return m, nil
}

// workloadOf resolves the run's trace, schema, constraints and probe —
// the built-in hire/fire workload unless cfg.History overrides it.
func workloadOf(cfg Config) (*schema.Schema, []workload.ConstraintSpec, []step, *storage.Transaction) {
	if cfg.History == nil {
		n := cfg.Commits
		if n <= 0 {
			n = 24
		}
		probe := cfg.Probe
		if probe == nil {
			probe = probeTx()
		}
		return hrSchema(), hrConstraints(), hrTrace(n), probe
	}
	h := cfg.History
	trace := make([]step, len(h.Steps))
	for i, st := range h.Steps {
		trace[i] = step{t: st.Time, tx: st.Tx}
	}
	probe := cfg.Probe
	if probe == nil {
		// Re-committing a late trace transaction past the recovered time
		// exercises window state the same way the original commit did.
		for i := len(trace) - 1; i >= 0 && probe == nil; i-- {
			if len(trace[i].tx.Ops()) > 0 {
				probe = trace[i].tx
			}
		}
	}
	return h.Schema, h.Constraints, trace, probe
}

// probeTx rehires every employee at once; which constraint violations
// it raises depends on the full fire/hire history, so matching probe
// output is a behavioral (not just structural) equivalence check.
func probeTx() *storage.Transaction {
	tx := storage.NewTransaction()
	for e := int64(0); e < 5; e++ {
		tx.Insert("hire", tuple.Ints(e))
	}
	return tx
}

func violationKey(vs []string) []string {
	sort.Strings(vs)
	return vs
}

// Run executes one seeded chaos run and returns an error if any part
// of the durability contract is violated. The returned Result is valid
// (best effort) even when err != nil.
func Run(cfg Config) (*Result, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: Config.Dir is required")
	}
	sch, cons, trace, probe := workloadOf(cfg)
	cfg.Commits = len(trace)
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if cfg.FirstOp == 0 {
		// Skip journal setup (open + header write + header sync per
		// log): faults during Open are a different failure mode than
		// faults during operation, and startup validation owns it.
		cfg.FirstOp = uint64(3*shards) + 2
	}
	if cfg.Window == 0 {
		cfg.Window = uint64(cfg.Commits) * 4
	}
	if cfg.Faults == 0 {
		cfg.Faults = cfg.Commits/3 + 2
	}
	plan := cfg.Plan
	if plan == nil && cfg.Faults > 0 {
		plan = vfs.Schedule(cfg.Seed, cfg.FirstOp, cfg.Window, cfg.Faults)
	}
	ffs := vfs.NewFaultFS(vfs.OS, plan...)
	res := &Result{Seed: cfg.Seed}
	snapPath := filepath.Join(cfg.Dir, "state.snap")
	walPath := filepath.Join(cfg.Dir, "state.wal")
	shardPath := func(i int) string { return fmt.Sprintf("%s.%d", walPath, i) }

	m, err := newMonitor(sch, cons, cfg.Shards)
	if err != nil {
		return res, err
	}
	// Millisecond-scale backoff so re-arm episodes resolve within the
	// run instead of after it.
	backoff := monitor.WithRearmBackoff(time.Millisecond, 8*time.Millisecond)
	var health func() monitor.DurabilityHealth
	var checkpoint func() error
	var stop func()
	if shards > 1 {
		logs := make([]*wal.Log, shards)
		for i := range logs {
			if logs[i], err = wal.Open(shardPath(i), wal.WithFS(ffs)); err != nil {
				return res, fmt.Errorf("seed %d: opening shard journal %d: %w", cfg.Seed, i, err)
			}
		}
		sd, err := monitor.NewShardedDurable(m, logs, backoff)
		if err != nil {
			return res, err
		}
		sd.Attach()
		health, stop = sd.Health, sd.Stop
		checkpoint = func() error { return nil } // sharded durability is journal-only
	} else {
		log, err := wal.Open(walPath, wal.WithFS(ffs))
		if err != nil {
			return res, fmt.Errorf("seed %d: opening journal: %w", cfg.Seed, err)
		}
		d, err := monitor.NewDurable(m, log, snapPath, monitor.WithDurableFS(ffs), backoff)
		if err != nil {
			return res, err
		}
		d.Attach()
		health, checkpoint, stop = d.Health, d.Checkpoint, d.Stop
	}

	// Drive the trace straight through every fault: commits must keep
	// being acknowledged no matter what the disk does. A commit counts
	// toward MaxDurableT only when durability reports ok after it —
	// under SyncAlways that means the record (and every record before
	// it, drained or checkpointed by a re-arm) reached stable storage.
	for i, st := range trace {
		if _, err := m.Apply(st.t, st.tx); err != nil {
			return res, fmt.Errorf("seed %d: commit at t=%d rejected during fault episode: %w", cfg.Seed, st.t, err)
		}
		res.Acked = i + 1
		if h := health(); h.Status == "ok" {
			res.MaxDurableT = st.t
		}
		if (i+1)%5 == 0 {
			if err := checkpoint(); err != nil {
				res.CheckpointErrs++
			}
		}
	}
	// Settle: a real process keeps running after its last commit, so
	// give an in-flight re-arm episode a bounded chance to finish. A
	// crash-latched disk never heals — stop waiting the moment it
	// latches (re-arm retries can themselves trip a Crash injection).
	for end := time.Now().Add(250 * time.Millisecond); time.Now().Before(end) && !ffs.Crashed(); {
		h := health()
		if h.Status == "ok" || h.DegradedSeconds == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if h := health(); h.Status == "ok" {
		// Everything degraded was drained or checkpointed: the whole
		// trace is now durable.
		res.MaxDurableT = trace[len(trace)-1].t
	}
	h := health()
	res.Rearms = h.Rearms
	res.Crashed = ffs.Crashed()
	res.Fired = ffs.Fired()
	res.Ops = ffs.OpCount()
	// Crash: stop background loops (a dead process runs no goroutines)
	// and abandon the journals without closing them.
	stop()

	// Recover on the real filesystem, exactly as a restarted process
	// would: newest checkpoint (if any) plus journal tails.
	var m2 *monitor.Monitor
	var replayed int
	if shards > 1 {
		if m2, err = newMonitor(sch, cons, cfg.Shards); err != nil {
			return res, err
		}
		logs := make([]*wal.Log, shards)
		for i := range logs {
			if logs[i], err = wal.Open(shardPath(i)); err != nil {
				return res, fmt.Errorf("seed %d: recovery open of shard journal %d: %w", cfg.Seed, i, err)
			}
			defer logs[i].Close()
		}
		sd2, err := monitor.NewShardedDurable(m2, logs)
		if err != nil {
			return res, err
		}
		if replayed, err = sd2.Recover(); err != nil {
			return res, fmt.Errorf("seed %d: sharded recovery: %w", cfg.Seed, err)
		}
	} else {
		if sf, err := os.Open(snapPath); err == nil {
			m2, err = monitor.RestoreObserved(sch, sf, &obs.Observer{Metrics: obs.NewMetrics(obs.NewRegistry())})
			sf.Close()
			if err != nil {
				return res, fmt.Errorf("seed %d: restoring checkpoint: %w", cfg.Seed, err)
			}
		} else if m2, err = newMonitor(sch, cons, cfg.Shards); err != nil {
			return res, err
		}
		log2, err := wal.Open(walPath)
		if err != nil {
			return res, fmt.Errorf("seed %d: recovery open of journal: %w", cfg.Seed, err)
		}
		defer log2.Close()
		d2, err := monitor.NewDurable(m2, log2, snapPath)
		if err != nil {
			return res, err
		}
		if replayed, err = d2.Recover(); err != nil {
			return res, fmt.Errorf("seed %d: recovery: %w", cfg.Seed, err)
		}
	}
	res.Replayed = replayed
	res.RecoveredT = m2.Now()

	// The contract: everything acknowledged while durability reported
	// ok survives the crash.
	if res.RecoveredT < res.MaxDurableT {
		return res, fmt.Errorf("seed %d: DURABILITY LOSS: recovered to t=%d but t=%d was acknowledged durable (fired: %v)",
			cfg.Seed, res.RecoveredT, res.MaxDurableT, res.Fired)
	}

	// Differential check: the recovered monitor must be identical to a
	// reference monitor fed the same trace prefix on a healthy disk.
	ref, err := newMonitor(sch, cons, cfg.Shards)
	if err != nil {
		return res, err
	}
	prefix := 0
	for _, st := range trace {
		if st.t > res.RecoveredT {
			break
		}
		if _, err := ref.Apply(st.t, st.tx); err != nil {
			return res, fmt.Errorf("seed %d: reference replay at t=%d: %w", cfg.Seed, st.t, err)
		}
		prefix++
	}
	if ref.Now() != res.RecoveredT {
		return res, fmt.Errorf("seed %d: recovered t=%d is not a trace prefix boundary", cfg.Seed, res.RecoveredT)
	}
	if m2.Len() != ref.Len() {
		return res, fmt.Errorf("seed %d: recovered %d states, reference has %d for the same prefix", cfg.Seed, m2.Len(), ref.Len())
	}
	if got, want := m2.Stats(), ref.Stats(); !reflect.DeepEqual(got, want) {
		return res, fmt.Errorf("seed %d: recovered aux state diverges: %+v vs %+v", cfg.Seed, got, want)
	}
	if probe == nil {
		return res, nil
	}
	pt := res.RecoveredT + 1
	pv, err := m2.Apply(pt, probe)
	if err != nil {
		return res, fmt.Errorf("seed %d: probe commit on recovered monitor: %w", cfg.Seed, err)
	}
	rv, err := ref.Apply(pt, probe)
	if err != nil {
		return res, fmt.Errorf("seed %d: probe commit on reference monitor: %w", cfg.Seed, err)
	}
	pk := make([]string, 0, len(pv))
	for _, v := range pv {
		pk = append(pk, v.String())
	}
	rk := make([]string, 0, len(rv))
	for _, v := range rv {
		rk = append(rk, v.String())
	}
	if !reflect.DeepEqual(violationKey(pk), violationKey(rk)) {
		return res, fmt.Errorf("seed %d: probe violations diverge: %v vs %v", cfg.Seed, pk, rk)
	}
	return res, nil
}
