package chaos

import (
	"fmt"
	"testing"

	"rtic/internal/vfs"
)

// TestChaosBaselineNoFaults pins down what a fault-free run looks
// like, so the seeded suites below are known to measure injection
// effects and not harness noise.
func TestChaosBaselineNoFaults(t *testing.T) {
	res, err := Run(Config{Dir: t.TempDir(), Seed: 0, Commits: 24, Faults: -1})
	if err != nil {
		t.Fatalf("%+v: %v", res, err)
	}
	if res.MaxDurableT != 240 || res.RecoveredT != 240 || res.Acked != 24 {
		t.Fatalf("clean run lost state: %+v", res)
	}
	if len(res.Fired) != 0 || res.Rearms != 0 {
		t.Fatalf("clean run saw faults: %+v", res)
	}
}

// TestChaosUnshardedSeeds runs the single-journal durability path
// (WAL + checkpoints + drain and fresh-segment re-arm) under seeded
// fault schedules mixing ENOSPC, EIO, short writes, fsync failures,
// and whole-disk crash latches.
func TestChaosUnshardedSeeds(t *testing.T) {
	fired, rearms := 0, uint64(0)
	for seed := int64(1); seed <= 30; seed++ {
		res, err := Run(Config{Dir: t.TempDir(), Seed: seed, Commits: 24})
		if err != nil {
			t.Errorf("%+v: %v", res, err)
			continue
		}
		fired += len(res.Fired)
		rearms += res.Rearms
	}
	// The suite must actually exercise the machinery it claims to:
	// a schedule drift that stops faults from firing would otherwise
	// turn this into an expensive no-op.
	if fired == 0 {
		t.Error("no injection fired across any unsharded seed")
	}
	if rearms == 0 {
		t.Error("no re-arm succeeded across any unsharded seed")
	}
}

// TestChaosShardedSeeds runs the per-shard-journal path (drain-only
// re-arm, no checkpoints) under seeded fault schedules.
func TestChaosShardedSeeds(t *testing.T) {
	fired := 0
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Run(Config{Dir: t.TempDir(), Seed: seed, Commits: 24, Shards: 3})
		if err != nil {
			t.Errorf("%+v: %v", res, err)
			continue
		}
		fired += len(res.Fired)
	}
	if fired == 0 {
		t.Error("no injection fired across any sharded seed")
	}
}

// TestChaosConfigValidation covers the one hard requirement.
func TestChaosConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run without Dir succeeded")
	}
}

// TestChaosCrashKind pins the harshest fault deterministically: a
// whole-disk crash latch partway through the trace. Commits must keep
// being acknowledged against the dead disk and recovery must surface
// everything written before the latch.
func TestChaosCrashKind(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			res, err := Run(Config{Dir: t.TempDir(), Commits: 24, Shards: shards,
				Plan: []vfs.Injection{{AtOp: 40, Kind: vfs.Crash}}})
			if err != nil {
				t.Fatalf("%+v: %v", res, err)
			}
			if res.Acked != 24 {
				t.Fatalf("commits stopped being acknowledged after fault: %+v", res)
			}
		})
	}
}
