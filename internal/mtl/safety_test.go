package mtl

import (
	"strings"
	"testing"
)

func TestCheckSafeAccepts(t *testing.T) {
	safe := []string{
		"p(x)",
		"p(x, 1, 'a')",
		"true",
		"false",
		"x = 3",
		"3 = 3",
		"p(x) and x < 5",
		"p(x) and not q(x)",
		"p(x) and x != y and q(y)",
		"p(x) or q(x)",
		"exists x: p(x, y)",
		"once[0,3] p(x)",
		"prev p(x)",
		"p(x) since q(x, y)",
		"true since q(x)",
		"hire(e) and once[0,365] fire(e)",
		"p(x) and not once q(x)",
		"p(x) and not (q(x) since r(x))",
		"p(x) and not prev q(x)",
		"once (p(x) and not q(x))",
		"p(x) and not (exists y: r(x, y))",
		"once p(x) and q(x)",
	}
	for _, src := range safe {
		f := Normalize(mustParse(t, src))
		if err := CheckSafe(f); err != nil {
			t.Errorf("CheckSafe(%q) = %v, want nil", src, err)
		}
	}
}

func TestCheckSafeRejects(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"not p(x)", "negation"},
		{"x < 5", "filters"},
		{"x = y", "variable-to-variable"},
		{"x != 3", "filters"},
		{"p(x) or q(y)", "different variables"},
		{"p(x) and y < 5", "not bound"},
		{"once not p(x)", "negation"},
		{"prev not p(x)", "negation"},
		{"not q(x) since p(x)", "negation"}, // left side must be testable; here it is, but right ok -- see below
		{"p(x, y) since q(x)", "do not occur"},
		{"p(x) and not once not q(x)", "negation"},
		{"q(y) and (p(x) or not p(x))", "not bound"},
	}
	for _, c := range cases {
		f := mustParse(t, c.src)
		// Use the formula as written (already kernel for these cases).
		err := CheckSafe(f)
		if c.src == "not q(x) since p(x)" {
			// fv(left) ⊆ fv(right) and left testable: actually safe.
			if err != nil {
				t.Errorf("CheckSafe(%q) = %v, want nil (testable left)", c.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("CheckSafe(%q) = nil, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("CheckSafe(%q) error %q, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestCheckSafeRequiresKernel(t *testing.T) {
	err := CheckSafe(mustParse(t, "p(x) -> q(x)"))
	if err == nil || !strings.Contains(err.Error(), "kernel") {
		t.Fatalf("CheckSafe on sugar = %v", err)
	}
}

func TestCheckSafeDenialWorkflow(t *testing.T) {
	// The user-facing path: constraint C, check nnf(¬C).
	constraints := []struct {
		src  string
		safe bool
	}{
		// Rehire separation: violated when hired now and fired recently.
		{"hire(e) -> not once[0,365] fire(e)", true},
		// Payment deadline: paid now implies reserved within 3 days.
		{"paid(tk) -> once[0,3] reserved(tk)", false}, // ¬ gives paid ∧ ¬once reserved: testable ¬once needs enumerable arg — reserved(tk) is enumerable, so actually safe
	}
	for _, c := range constraints {
		denial := Normalize(&Not{F: mustParse(t, c.src)})
		err := CheckSafe(denial)
		if err != nil && c.safe {
			t.Errorf("denial of %q unsafe: %v", c.src, err)
		}
		if c.src == "paid(tk) -> once[0,3] reserved(tk)" && err != nil {
			t.Errorf("denial of payment constraint should be safe, got %v", err)
		}
	}
}

func TestSafetyErrorMessage(t *testing.T) {
	err := CheckSafe(mustParse(t, "not p(x)"))
	se, ok := err.(*SafetyError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Node == nil || se.Reason == "" {
		t.Fatal("SafetyError missing fields")
	}
	if !strings.Contains(se.Error(), "unsafe formula") {
		t.Fatalf("Error() = %q", se.Error())
	}
}
