package mtl

import (
	"rtic/internal/value"
)

// Term is an argument of an atom or comparison: a variable or a constant.
type Term interface {
	isTerm()
	String() string
	EqualTerm(Term) bool
}

// Var is a logical variable, bound by quantifiers or free in a constraint.
type Var struct{ Name string }

// Const is a literal value.
type Const struct{ Val value.Value }

func (Var) isTerm()   {}
func (Const) isTerm() {}

// EqualTerm reports structural equality.
func (v Var) EqualTerm(o Term) bool {
	w, ok := o.(Var)
	return ok && v.Name == w.Name
}

// EqualTerm reports structural equality.
func (c Const) EqualTerm(o Term) bool {
	d, ok := o.(Const)
	return ok && c.Val.Equal(d.Val)
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators of the surface language.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// Negate returns the complementary operator (= ↔ !=, < ↔ >=, ...).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	default:
		return OpLt
	}
}

// String renders the operator in surface syntax.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	default:
		return ">="
	}
}

// Apply evaluates the comparison on two values under the engine's total
// order (integers before strings).
func (op CmpOp) Apply(a, b value.Value) bool {
	c := a.Compare(b)
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// Formula is a node of the constraint language.
//
// The full surface language includes the sugar connectives Implies, Iff,
// Forall and Always; Normalize eliminates them (and pushes negation
// inward), so the evaluators only ever see the kernel:
// Truth, Atom, Cmp, Not, And, Or, Exists, Prev, Once, Since.
//
// Every pointer node carries a Pos: the 1-based byte offset of the
// node's first token in the source the parser read (0 when the node was
// built programmatically). Normalize, Simplify and Substitute propagate
// positions, so diagnostics on rewritten formulas still point into the
// original source. Pos never participates in Equal.
type Formula interface {
	isFormula()
	String() string
}

// Truth is the constant true (Bool) or false (!Bool).
type Truth struct{ Bool bool }

// Atom is a relation membership test R(t1, …, tn).
type Atom struct {
	Rel  string
	Args []Term
	Pos  int
}

// Cmp compares two terms.
type Cmp struct {
	Op   CmpOp
	L, R Term
	Pos  int
}

// Not negates its argument.
type Not struct {
	F   Formula
	Pos int
}

// And is binary conjunction; chains are left-nested by the parser.
type And struct {
	L, R Formula
	Pos  int
}

// Or is binary disjunction.
type Or struct {
	L, R Formula
	Pos  int
}

// Implies is material implication (sugar).
type Implies struct {
	L, R Formula
	Pos  int
}

// Iff is biconditional (sugar).
type Iff struct {
	L, R Formula
	Pos  int
}

// Exists binds Vars existentially in F.
type Exists struct {
	Vars []string
	F    Formula
	Pos  int
}

// Forall binds Vars universally in F (sugar for ¬∃¬).
type Forall struct {
	Vars []string
	F    Formula
	Pos  int
}

// Prev holds when F held in the immediately preceding state and the
// elapsed real time lies in I.
type Prev struct {
	I   Interval
	F   Formula
	Pos int
}

// Once holds when F held at some past state whose distance lies in I
// ("sometime in the past"; reflexive: the current state qualifies when
// 0 ∈ I).
type Once struct {
	I   Interval
	F   Formula
	Pos int
}

// Always holds when F held at every past state whose distance lies in I
// ("always in the past"; sugar for ¬ once[I] ¬F).
type Always struct {
	I   Interval
	F   Formula
	Pos int
}

// Since holds when R held at some past state j within window I and L has
// held at every state strictly after j up to now.
type Since struct {
	I    Interval
	L, R Formula
	Pos  int
}

// LeadsTo is the deadline-obligation sugar "L leadsto[0,d] R": whenever
// L holds, R must hold within d time units. It is monitored in past
// form — the obligation is *violated* at a state exactly when
//
//	(not R) since[d+1,*] (L and not R)
//
// holds there, i.e. an unfulfilled L-event has aged past the deadline.
// A violation therefore surfaces at the first transaction committed
// after the deadline expires (the checker sees time only at commits).
// The interval must be bounded with Lo = 0; Normalize eliminates the
// node.
type LeadsTo struct {
	I    Interval
	L, R Formula
	Pos  int
}

func (Truth) isFormula()    {}
func (*Atom) isFormula()    {}
func (*Cmp) isFormula()     {}
func (*Not) isFormula()     {}
func (*And) isFormula()     {}
func (*Or) isFormula()      {}
func (*Implies) isFormula() {}
func (*Iff) isFormula()     {}
func (*Exists) isFormula()  {}
func (*Forall) isFormula()  {}
func (*Prev) isFormula()    {}
func (*Once) isFormula()    {}
func (*Always) isFormula()  {}
func (*Since) isFormula()   {}
func (*LeadsTo) isFormula() {}

// Conjuncts flattens nested conjunctions into a list; for any other node
// it returns the single-element list.
func Conjuncts(f Formula) []Formula {
	if a, ok := f.(*And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Formula{f}
}

// Disjuncts flattens nested disjunctions into a list.
func Disjuncts(f Formula) []Formula {
	if o, ok := f.(*Or); ok {
		return append(Disjuncts(o.L), Disjuncts(o.R)...)
	}
	return []Formula{f}
}

// AndAll folds a non-empty list of formulas into a left-nested
// conjunction; the empty list yields true.
func AndAll(fs []Formula) Formula {
	if len(fs) == 0 {
		return Truth{Bool: true}
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = &And{L: out, R: f}
	}
	return out
}

// OrAll folds a non-empty list of formulas into a left-nested
// disjunction; the empty list yields false.
func OrAll(fs []Formula) Formula {
	if len(fs) == 0 {
		return Truth{Bool: false}
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = &Or{L: out, R: f}
	}
	return out
}
