package mtl

import (
	"testing"

	"rtic/internal/value"
)

func atom(rel string, vars ...string) *Atom {
	args := make([]Term, len(vars))
	for i, v := range vars {
		args[i] = Var{Name: v}
	}
	return &Atom{Rel: rel, Args: args}
}

func TestCmpOpNegateInvolution(t *testing.T) {
	for _, op := range []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if op.Negate().Negate() != op {
			t.Errorf("Negate not involutive for %s", op)
		}
	}
}

func TestCmpOpApply(t *testing.T) {
	a, b := value.Int(1), value.Int(2)
	cases := []struct {
		op   CmpOp
		want bool
	}{
		{OpEq, false}, {OpNe, true}, {OpLt, true}, {OpLe, true}, {OpGt, false}, {OpGe, false},
	}
	for _, c := range cases {
		if got := c.op.Apply(a, b); got != c.want {
			t.Errorf("1 %s 2 = %v, want %v", c.op, got, c.want)
		}
	}
	if !OpEq.Apply(value.Str("x"), value.Str("x")) {
		t.Fatal("string equality broken")
	}
}

func TestCmpOpApplyComplement(t *testing.T) {
	vals := []value.Value{value.Int(-1), value.Int(0), value.Int(1), value.Str("a"), value.Str("b")}
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, a := range vals {
		for _, b := range vals {
			for _, op := range ops {
				if op.Apply(a, b) == op.Negate().Apply(a, b) {
					t.Fatalf("%v %s %v agrees with its negation", a, op, b)
				}
			}
		}
	}
}

func TestConjunctsDisjuncts(t *testing.T) {
	f := &And{L: &And{L: atom("a"), R: atom("b")}, R: atom("c")}
	cs := Conjuncts(f)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cs))
	}
	g := &Or{L: atom("a"), R: &Or{L: atom("b"), R: atom("c")}}
	ds := Disjuncts(g)
	if len(ds) != 3 {
		t.Fatalf("Disjuncts = %d, want 3", len(ds))
	}
	if len(Conjuncts(atom("x"))) != 1 {
		t.Fatal("Conjuncts of non-And should be singleton")
	}
}

func TestAndAllOrAll(t *testing.T) {
	if f, ok := AndAll(nil).(Truth); !ok || !f.Bool {
		t.Fatal("AndAll(nil) should be true")
	}
	if f, ok := OrAll(nil).(Truth); !ok || f.Bool {
		t.Fatal("OrAll(nil) should be false")
	}
	fs := []Formula{atom("a"), atom("b"), atom("c")}
	if got := AndAll(fs); len(Conjuncts(got)) != 3 {
		t.Fatal("AndAll lost conjuncts")
	}
	if got := OrAll(fs); len(Disjuncts(got)) != 3 {
		t.Fatal("OrAll lost disjuncts")
	}
	if !Equal(AndAll(fs[:1]), fs[0]) {
		t.Fatal("AndAll of singleton should be identity")
	}
}

func TestTermEqual(t *testing.T) {
	if !(Var{Name: "x"}).EqualTerm(Var{Name: "x"}) {
		t.Fatal("var self-equality")
	}
	if (Var{Name: "x"}).EqualTerm(Var{Name: "y"}) {
		t.Fatal("distinct vars equal")
	}
	if (Var{Name: "x"}).EqualTerm(Const{Val: value.Str("x")}) {
		t.Fatal("var equals const")
	}
	if !(Const{Val: value.Int(1)}).EqualTerm(Const{Val: value.Int(1)}) {
		t.Fatal("const self-equality")
	}
}
