package mtl

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	l := &lexer{src: src}
	var out []token
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		out = append(out, tok)
		if tok.kind == tokEOF {
			return out
		}
	}
}

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexerTokenKinds(t *testing.T) {
	toks := lexAll(t, "p(x, -3, 'a''b') <-> x <= y -> z < w != v >= u")
	want := []tokenKind{
		tokIdent, tokLParen, tokIdent, tokComma, tokInt, tokComma, tokString, tokRParen,
		tokDArrow, tokIdent, tokLe, tokIdent, tokArrow, tokIdent, tokLt, tokIdent,
		tokNe, tokIdent, tokGe, tokIdent, tokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: kind %d, want %d (%v)", i, got[i], want[i], toks[i])
		}
	}
}

func TestLexerIntervalTokens(t *testing.T) {
	toks := lexAll(t, "[2,*]")
	want := []tokenKind{tokLBracket, tokInt, tokComma, tokStar, tokRBracket, tokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: %v", i, toks[i])
		}
	}
}

func TestLexerCommentsAndWhitespace(t *testing.T) {
	toks := lexAll(t, "  p -- rest of line ignored\n\t q -- another\n")
	if len(toks) != 3 || toks[0].text != "p" || toks[1].text != "q" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexerIdentifiersAreASCII(t *testing.T) {
	// Identifiers follow the schema's ASCII rules; non-ASCII names are
	// rejected with a clear position. Non-ASCII *data* is fine inside
	// string literals.
	if _, err := Parse("café(x)"); err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Fatalf("non-ascii identifier: %v", err)
	}
	f, err := Parse("name(x) and x = 'café'")
	if err != nil {
		t.Fatalf("non-ascii string literal rejected: %v", err)
	}
	if len(FreeVars(f)) != 1 {
		t.Fatalf("free vars = %v", FreeVars(f))
	}
}

func TestLexerStringEdgeCases(t *testing.T) {
	toks := lexAll(t, "'' 'with space' 'quote''inside'")
	if len(toks) != 4 {
		t.Fatalf("tokens = %v", toks)
	}
	for i := 0; i < 3; i++ {
		if toks[i].kind != tokString {
			t.Fatalf("token %d = %v", i, toks[i])
		}
	}
}

func TestLexerErrorPositions(t *testing.T) {
	l := &lexer{src: "p() &"}
	for {
		tok, err := l.next()
		if err != nil {
			if !strings.Contains(err.Error(), "offset 4") {
				t.Fatalf("error lacks position: %v", err)
			}
			return
		}
		if tok.kind == tokEOF {
			t.Fatal("expected lex error")
		}
	}
}

func TestLexerEOFStable(t *testing.T) {
	l := &lexer{src: "p"}
	if tok, _ := l.next(); tok.kind != tokIdent {
		t.Fatal("want ident")
	}
	for i := 0; i < 3; i++ {
		tok, err := l.next()
		if err != nil || tok.kind != tokEOF {
			t.Fatalf("EOF not stable: %v %v", tok, err)
		}
	}
	if got := (token{kind: tokEOF}).String(); got != "end of input" {
		t.Fatalf("EOF renders %q", got)
	}
}
