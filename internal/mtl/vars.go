package mtl

import (
	"fmt"
	"sort"

	"rtic/internal/value"
)

// FreeVars returns the free variables of f, sorted.
func FreeVars(f Formula) []string {
	set := make(map[string]bool)
	collectFree(f, make(map[string]bool), set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectFree(f Formula, bound, out map[string]bool) {
	switch n := f.(type) {
	case Truth:
	case *Atom:
		for _, t := range n.Args {
			if v, ok := t.(Var); ok && !bound[v.Name] {
				out[v.Name] = true
			}
		}
	case *Cmp:
		for _, t := range []Term{n.L, n.R} {
			if v, ok := t.(Var); ok && !bound[v.Name] {
				out[v.Name] = true
			}
		}
	case *Not:
		collectFree(n.F, bound, out)
	case *And:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	case *Or:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	case *Implies:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	case *Iff:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	case *Exists:
		inner := cloneSet(bound)
		for _, v := range n.Vars {
			inner[v] = true
		}
		collectFree(n.F, inner, out)
	case *Forall:
		inner := cloneSet(bound)
		for _, v := range n.Vars {
			inner[v] = true
		}
		collectFree(n.F, inner, out)
	case *Prev:
		collectFree(n.F, bound, out)
	case *Once:
		collectFree(n.F, bound, out)
	case *Always:
		collectFree(n.F, bound, out)
	case *Since:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	case *LeadsTo:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	default:
		panic(fmt.Sprintf("mtl: FreeVars: unknown node %T", f))
	}
}

func cloneSet(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Constants returns every literal value appearing in f, deduplicated and
// sorted; the test evaluator extends the active domain with them.
func Constants(f Formula) []value.Value {
	set := make(map[string]value.Value)
	Walk(f, func(g Formula) {
		switch n := g.(type) {
		case *Atom:
			for _, t := range n.Args {
				if c, ok := t.(Const); ok {
					set[c.Val.Key()] = c.Val
				}
			}
		case *Cmp:
			for _, t := range []Term{n.L, n.R} {
				if c, ok := t.(Const); ok {
					set[c.Val.Key()] = c.Val
				}
			}
		}
	})
	out := make([]value.Value, 0, len(set))
	for _, v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Walk calls visit on f and every subformula, parents first.
func Walk(f Formula, visit func(Formula)) {
	visit(f)
	switch n := f.(type) {
	case Truth, *Atom, *Cmp:
	case *Not:
		Walk(n.F, visit)
	case *And:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *Or:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *Implies:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *Iff:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *Exists:
		Walk(n.F, visit)
	case *Forall:
		Walk(n.F, visit)
	case *Prev:
		Walk(n.F, visit)
	case *Once:
		Walk(n.F, visit)
	case *Always:
		Walk(n.F, visit)
	case *Since:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *LeadsTo:
		Walk(n.L, visit)
		Walk(n.R, visit)
	default:
		panic(fmt.Sprintf("mtl: Walk: unknown node %T", f))
	}
}

// Equal reports structural equality of two formulas.
func Equal(a, b Formula) bool {
	switch x := a.(type) {
	case Truth:
		y, ok := b.(Truth)
		return ok && x.Bool == y.Bool
	case *Atom:
		y, ok := b.(*Atom)
		if !ok || x.Rel != y.Rel || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !x.Args[i].EqualTerm(y.Args[i]) {
				return false
			}
		}
		return true
	case *Cmp:
		y, ok := b.(*Cmp)
		return ok && x.Op == y.Op && x.L.EqualTerm(y.L) && x.R.EqualTerm(y.R)
	case *Not:
		y, ok := b.(*Not)
		return ok && Equal(x.F, y.F)
	case *And:
		y, ok := b.(*And)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Or:
		y, ok := b.(*Or)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Implies:
		y, ok := b.(*Implies)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Iff:
		y, ok := b.(*Iff)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Exists:
		y, ok := b.(*Exists)
		return ok && sameVars(x.Vars, y.Vars) && Equal(x.F, y.F)
	case *Forall:
		y, ok := b.(*Forall)
		return ok && sameVars(x.Vars, y.Vars) && Equal(x.F, y.F)
	case *Prev:
		y, ok := b.(*Prev)
		return ok && x.I.Equal(y.I) && Equal(x.F, y.F)
	case *Once:
		y, ok := b.(*Once)
		return ok && x.I.Equal(y.I) && Equal(x.F, y.F)
	case *Always:
		y, ok := b.(*Always)
		return ok && x.I.Equal(y.I) && Equal(x.F, y.F)
	case *Since:
		y, ok := b.(*Since)
		return ok && x.I.Equal(y.I) && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *LeadsTo:
		y, ok := b.(*LeadsTo)
		return ok && x.I.Equal(y.I) && Equal(x.L, y.L) && Equal(x.R, y.R)
	default:
		panic(fmt.Sprintf("mtl: Equal: unknown node %T", a))
	}
}

func sameVars(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TemporalDepth returns the maximum nesting depth of temporal operators,
// a complexity measure used by the experiments.
func TemporalDepth(f Formula) int {
	switch n := f.(type) {
	case Truth, *Atom, *Cmp:
		return 0
	case *Not:
		return TemporalDepth(n.F)
	case *And:
		return max(TemporalDepth(n.L), TemporalDepth(n.R))
	case *Or:
		return max(TemporalDepth(n.L), TemporalDepth(n.R))
	case *Implies:
		return max(TemporalDepth(n.L), TemporalDepth(n.R))
	case *Iff:
		return max(TemporalDepth(n.L), TemporalDepth(n.R))
	case *Exists:
		return TemporalDepth(n.F)
	case *Forall:
		return TemporalDepth(n.F)
	case *Prev:
		return 1 + TemporalDepth(n.F)
	case *Once:
		return 1 + TemporalDepth(n.F)
	case *Always:
		return 1 + TemporalDepth(n.F)
	case *Since:
		return 1 + max(TemporalDepth(n.L), TemporalDepth(n.R))
	case *LeadsTo:
		return 1 + max(TemporalDepth(n.L), TemporalDepth(n.R))
	default:
		panic(fmt.Sprintf("mtl: TemporalDepth: unknown node %T", f))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
