package mtl

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokColon
	tokStar
	tokEq     // =
	tokNe     // !=
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokArrow  // ->
	tokDArrow // <->
)

var keywords = map[string]bool{
	"not": true, "and": true, "or": true, "true": true, "false": true,
	"exists": true, "forall": true, "prev": true, "once": true,
	"always": true, "since": true, "leadsto": true,
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...interface{}) error {
	return fmt.Errorf("mtl: parse error at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
			continue
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9':
		return l.lexInt(start)
	case c == '-':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return token{kind: tokArrow, text: "->", pos: start}, nil
		}
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			l.pos++
			return l.lexInt(start)
		}
		return token{}, l.errf(start, "stray '-'")
	case c == '\'':
		return l.lexString(start)
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == ':':
		l.pos++
		return token{kind: tokColon, text: ":", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokNe, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "stray '!'")
	case c == '<':
		if strings.HasPrefix(l.src[l.pos:], "<->") {
			l.pos += 3
			return token{kind: tokDArrow, text: "<->", pos: start}, nil
		}
		if strings.HasPrefix(l.src[l.pos:], "<=") {
			l.pos += 2
			return token{kind: tokLe, text: "<=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokLt, text: "<", pos: start}, nil
	case c == '>':
		if strings.HasPrefix(l.src[l.pos:], ">=") {
			l.pos += 2
			return token{kind: tokGe, text: ">=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokGt, text: ">", pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", rune(c))
	}
}

func (l *lexer) lexInt(start int) (token, error) {
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	return token{kind: tokInt, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexString(start int) (token, error) {
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		if l.src[l.pos] == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				l.pos += 2 // doubled quote
				continue
			}
			l.pos++
			return token{kind: tokString, text: l.src[start:l.pos], pos: start}, nil
		}
		l.pos++
	}
	return token{}, l.errf(start, "unterminated string literal")
}

// Identifiers are ASCII, matching the schema's relation-name rules.
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
