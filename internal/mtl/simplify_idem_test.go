package mtl_test

import (
	"math/rand"
	"testing"

	"rtic/internal/formgen"
	"rtic/internal/mtl"
)

// simplifyIdemSeeds is the parser corpus the idempotence property is
// pinned over: every surface-syntax shape, including the ones that
// historically simplified in two steps (double negation, since
// collapsing to once, constant folding under temporal operators).
var simplifyIdemSeeds = []string{
	`p(x)`,
	`not not p(x)`,
	`not not not p(x)`,
	`p(x) and p(x)`,
	`p(x) or not p(x)`,
	`x = 1 and x != 1`,
	`true since[1,4] p(x)`,
	`true since p(x)`,
	`p(x) since false`,
	`once[0,5] true`,
	`once[2,5] true`,
	`prev false`,
	`forall x: (p(x) -> once[0,5] q(x))`,
	`exists x, y: (r(x, y) and not q(y))`,
	`p(x) -> q(x)`,
	`p(x) <-> q(x)`,
	`always not p(x)`,
	`p(x) leadsto[0,3] q(x)`,
	`1 < 2 and p(x)`,
	`not (p(x) and not (q(x) or q(x)))`,
}

func checkIdempotent(t *testing.T, src string, f mtl.Formula) {
	t.Helper()
	once := mtl.Simplify(f)
	twice := mtl.Simplify(once)
	if !mtl.Equal(once, twice) {
		t.Errorf("Simplify not idempotent on %q:\n  once:  %s\n  twice: %s",
			src, once.String(), twice.String())
	}
}

// TestSimplifyIdempotentCorpus checks Simplify(Simplify(f)) == Simplify(f)
// over the fixed corpus, both on raw parses and on kernel forms.
func TestSimplifyIdempotentCorpus(t *testing.T) {
	for _, src := range simplifyIdemSeeds {
		f, err := mtl.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		checkIdempotent(t, src, f)
		checkIdempotent(t, src, mtl.Normalize(f))
		checkIdempotent(t, src, mtl.Normalize(&mtl.Not{F: f}))
	}
}

// TestSimplifyIdempotentGenerated runs the same property over formgen's
// constraint grammar, which covers the compiler's real input space.
func TestSimplifyIdempotentGenerated(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		src := formgen.Constraint(r)
		f, err := mtl.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		checkIdempotent(t, src, f)
		den := mtl.Normalize(&mtl.Not{F: f})
		checkIdempotent(t, src, den)
	}
}

// FuzzSimplifyIdempotent extends the corpus with fuzzer-discovered
// formulas: any parseable input must simplify to a fixed point in one
// pass, and simplification must preserve the free-variable set's bound
// (no new free variables appear).
func FuzzSimplifyIdempotent(f *testing.F) {
	for _, src := range simplifyIdemSeeds {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		parsed, err := mtl.Parse(src)
		if err != nil {
			t.Skip()
		}
		checkIdempotent(t, src, parsed)
		checkIdempotent(t, src, mtl.Normalize(parsed))
		checkIdempotent(t, src, mtl.Normalize(&mtl.Not{F: parsed}))
	})
}
