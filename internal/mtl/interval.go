// Package mtl defines the constraint language of the paper: first-order
// logic over database states extended with metric past-temporal
// connectives (prev, once, always-in-past, since), together with its
// parser, printer, negation normal form and safety (range-restriction)
// analysis.
package mtl

import (
	"fmt"
	"math"
)

// Interval is a metric time window [Lo, Hi] over non-negative integer
// distances; Hi may be unbounded ("[a,*]" in the surface syntax).
// The zero Interval is the degenerate point [0,0]; use Full() for the
// default window of an unannotated temporal operator.
type Interval struct {
	Lo        uint64
	Hi        uint64
	Unbounded bool
}

// Full returns [0, ∞), the window of an unannotated temporal operator.
func Full() Interval { return Interval{Lo: 0, Unbounded: true} }

// Bounded returns [lo, hi].
func Bounded(lo, hi uint64) (Interval, error) {
	if lo > hi {
		return Interval{}, fmt.Errorf("mtl: empty interval [%d,%d]", lo, hi)
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// AtLeast returns [lo, ∞).
func AtLeast(lo uint64) Interval { return Interval{Lo: lo, Unbounded: true} }

// Point returns [d, d].
func Point(d uint64) Interval { return Interval{Lo: d, Hi: d} }

// Contains reports whether distance d lies in the window.
func (iv Interval) Contains(d uint64) bool {
	return d >= iv.Lo && (iv.Unbounded || d <= iv.Hi)
}

// IsFull reports whether the window is [0, ∞).
func (iv Interval) IsFull() bool { return iv.Lo == 0 && iv.Unbounded }

// Upper returns the inclusive upper bound, with math.MaxUint64 standing
// in for ∞; used by the pruning rules.
func (iv Interval) Upper() uint64 {
	if iv.Unbounded {
		return math.MaxUint64
	}
	return iv.Hi
}

// Equal reports structural equality of windows.
func (iv Interval) Equal(o Interval) bool {
	if iv.Unbounded != o.Unbounded || iv.Lo != o.Lo {
		return false
	}
	return iv.Unbounded || iv.Hi == o.Hi
}

// String renders the window in surface syntax: "" for the default
// [0, ∞), "[a,*]" for half-bounded, "[a,b]" otherwise.
func (iv Interval) String() string {
	if iv.IsFull() {
		return ""
	}
	if iv.Unbounded {
		return fmt.Sprintf("[%d,*]", iv.Lo)
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}
