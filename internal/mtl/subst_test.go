package mtl

import (
	"testing"

	"rtic/internal/value"
)

func TestSubstituteBasic(t *testing.T) {
	f := mustParse(t, "p(x, y) and x < n")
	g := Substitute(f, map[string]value.Value{"n": value.Int(5)})
	want := mustParse(t, "p(x, y) and x < 5")
	if !Equal(g, want) {
		t.Fatalf("Substitute = %s, want %s", g, want)
	}
}

func TestSubstituteRespectsBinding(t *testing.T) {
	f := mustParse(t, "p(x) and exists x: q(x, y)")
	g := Substitute(f, map[string]value.Value{"x": value.Int(1), "y": value.Int(2)})
	want := mustParse(t, "p(1) and exists x: q(x, 2)")
	if !Equal(g, want) {
		t.Fatalf("Substitute = %s, want %s", g, want)
	}
}

func TestSubstituteForallShadow(t *testing.T) {
	f := mustParse(t, "forall x: p(x, y)")
	g := Substitute(f, map[string]value.Value{"x": value.Int(9), "y": value.Int(2)})
	want := mustParse(t, "forall x: p(x, 2)")
	if !Equal(g, want) {
		t.Fatalf("Substitute = %s, want %s", g, want)
	}
	// Substitution entirely shadowed: formula returned unchanged.
	h := Substitute(f, map[string]value.Value{"x": value.Int(9)})
	if !Equal(h, f) {
		t.Fatalf("fully shadowed substitution changed formula: %s", h)
	}
}

func TestSubstituteTemporal(t *testing.T) {
	f := mustParse(t, "once[0,3] p(x) since q(y)")
	g := Substitute(f, map[string]value.Value{"x": value.Str("a"), "y": value.Str("b")})
	want := mustParse(t, "once[0,3] p('a') since q('b')")
	if !Equal(g, want) {
		t.Fatalf("Substitute = %s, want %s", g, want)
	}
}

func TestSubstituteEmpty(t *testing.T) {
	f := mustParse(t, "p(x)")
	if Substitute(f, nil) != f {
		t.Fatal("empty substitution should return the formula unchanged")
	}
}

func TestSubstituteSugar(t *testing.T) {
	f := mustParse(t, "(p(x) -> q(x)) <-> always r(x)")
	g := Substitute(f, map[string]value.Value{"x": value.Int(3)})
	want := mustParse(t, "(p(3) -> q(3)) <-> always r(3)")
	if !Equal(g, want) {
		t.Fatalf("Substitute = %s, want %s", g, want)
	}
}
