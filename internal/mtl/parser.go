package mtl

import (
	"fmt"
	"strconv"

	"rtic/internal/value"
)

// Parse reads a formula in the surface syntax. The grammar, loosest
// binding first:
//
//	formula  := ('exists'|'forall') var (',' var)* ':' formula
//	          | iff
//	iff      := implies ('<->' implies)*            -- left-assoc
//	implies  := or ('->' implies)?                  -- right-assoc
//	or       := and ('or' and)*
//	and      := since ('and' since)*
//	since    := unary ('since' interval? unary)*    -- left-assoc
//	unary    := ('not'|'prev' interval?|'once' interval?|'always' interval?) unary
//	          | primary
//	primary  := 'true' | 'false' | '(' formula ')'
//	          | ident '(' terms? ')'                -- atom
//	          | term cmpop term                     -- comparison
//	interval := '[' int (',' (int|'*'))? ']'
//	term     := ident | int | string
//
// A quantifier's body extends as far right as possible; parenthesize to
// limit it. "--" starts a line comment.
func Parse(src string) (Formula, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after formula", p.tok)
	}
	return f, nil
}

// MustParse parses or panics; for tests and examples with literal sources.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("mtl: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errf("expected %s, found %s", what, p.tok)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

func (p *parser) eatKeyword(kw string) (bool, error) {
	if !p.isKeyword(kw) {
		return false, nil
	}
	return true, p.advance()
}

func (p *parser) formula() (Formula, error) {
	start := p.tok.pos + 1
	for _, kw := range []string{"exists", "forall"} {
		ok, err := p.eatKeyword(kw)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		vars, err := p.varList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon, "':'"); err != nil {
			return nil, err
		}
		body, err := p.formula()
		if err != nil {
			return nil, err
		}
		if kw == "exists" {
			return &Exists{Vars: vars, F: body, Pos: start}, nil
		}
		return &Forall{Vars: vars, F: body, Pos: start}, nil
	}
	return p.iff()
}

func (p *parser) varList() ([]string, error) {
	var vars []string
	for {
		t := p.tok
		if t.kind != tokIdent || keywords[t.text] {
			return nil, p.errf("expected variable name, found %s", t)
		}
		vars = append(vars, t.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokComma {
			return vars, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) iff() (Formula, error) {
	start := p.tok.pos + 1
	l, err := p.implies()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokDArrow {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.implies()
		if err != nil {
			return nil, err
		}
		l = &Iff{L: l, R: r, Pos: start}
	}
	return l, nil
}

func (p *parser) implies() (Formula, error) {
	start := p.tok.pos + 1
	l, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokArrow {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.implies() // right-assoc
		if err != nil {
			return nil, err
		}
		return &Implies{L: l, R: r, Pos: start}, nil
	}
	return l, nil
}

func (p *parser) or() (Formula, error) {
	start := p.tok.pos + 1
	l, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.and()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r, Pos: start}
	}
	return l, nil
}

func (p *parser) and() (Formula, error) {
	start := p.tok.pos + 1
	l, err := p.since()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.since()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r, Pos: start}
	}
	return l, nil
}

func (p *parser) since() (Formula, error) {
	start := p.tok.pos + 1
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("since") || p.isKeyword("leadsto") {
		kw := p.tok.text
		kwPos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		iv, err := p.intervalOpt()
		if err != nil {
			return nil, err
		}
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		if kw == "since" {
			l = &Since{I: iv, L: l, R: r, Pos: start}
			continue
		}
		// leadsto needs a finite deadline starting at 0: the obligation
		// is monitored as a bounded past formula.
		if iv.Unbounded {
			return nil, fmt.Errorf("mtl: parse error at offset %d: leadsto requires a bounded deadline, e.g. leadsto[0,3]", kwPos)
		}
		if iv.Lo != 0 {
			return nil, fmt.Errorf("mtl: parse error at offset %d: leadsto interval must start at 0, got %s", kwPos, iv.String())
		}
		l = &LeadsTo{I: iv, L: l, R: r, Pos: start}
	}
	return l, nil
}

func (p *parser) unary() (Formula, error) {
	start := p.tok.pos + 1
	switch {
	case p.isKeyword("exists"), p.isKeyword("forall"):
		// Quantifiers are also accepted in operand position; the body
		// still extends as far right as possible.
		return p.formula()
	case p.isKeyword("not"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Not{F: f, Pos: start}, nil
	case p.isKeyword("prev"), p.isKeyword("once"), p.isKeyword("always"):
		kw := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		iv, err := p.intervalOpt()
		if err != nil {
			return nil, err
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "prev":
			return &Prev{I: iv, F: f, Pos: start}, nil
		case "once":
			return &Once{I: iv, F: f, Pos: start}, nil
		default:
			return &Always{I: iv, F: f, Pos: start}, nil
		}
	}
	return p.primary()
}

func (p *parser) intervalOpt() (Interval, error) {
	if p.tok.kind != tokLBracket {
		return Full(), nil
	}
	if err := p.advance(); err != nil {
		return Interval{}, err
	}
	loTok, err := p.expect(tokInt, "interval lower bound")
	if err != nil {
		return Interval{}, err
	}
	lo, err := parseBound(loTok)
	if err != nil {
		return Interval{}, err
	}
	if p.tok.kind == tokRBracket {
		if err := p.advance(); err != nil {
			return Interval{}, err
		}
		return Point(lo), nil
	}
	if _, err := p.expect(tokComma, "',' or ']'"); err != nil {
		return Interval{}, err
	}
	if p.tok.kind == tokStar {
		if err := p.advance(); err != nil {
			return Interval{}, err
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return Interval{}, err
		}
		return AtLeast(lo), nil
	}
	hiTok, err := p.expect(tokInt, "interval upper bound or '*'")
	if err != nil {
		return Interval{}, err
	}
	hi, err := parseBound(hiTok)
	if err != nil {
		return Interval{}, err
	}
	if _, err := p.expect(tokRBracket, "']'"); err != nil {
		return Interval{}, err
	}
	iv, err := Bounded(lo, hi)
	if err != nil {
		return Interval{}, fmt.Errorf("mtl: parse error at offset %d: %w", loTok.pos, err)
	}
	return iv, nil
}

func parseBound(t token) (uint64, error) {
	n, err := strconv.ParseUint(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("mtl: parse error at offset %d: interval bound %q: %w", t.pos, t.text, err)
	}
	return n, nil
}

func (p *parser) primary() (Formula, error) {
	switch {
	case p.isKeyword("true"):
		return Truth{Bool: true}, p.advance()
	case p.isKeyword("false"):
		return Truth{Bool: false}, p.advance()
	case p.tok.kind == tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	case p.tok.kind == tokIdent && !keywords[p.tok.text]:
		name := p.tok.text
		start := p.tok.pos + 1
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen {
			return p.atom(name, start)
		}
		return p.cmp(Var{Name: name}, start)
	case p.tok.kind == tokInt || p.tok.kind == tokString:
		start := p.tok.pos + 1
		t, err := p.literal()
		if err != nil {
			return nil, err
		}
		return p.cmp(t, start)
	default:
		return nil, p.errf("expected formula, found %s", p.tok)
	}
}

func (p *parser) atom(rel string, start int) (Formula, error) {
	if err := p.advance(); err != nil { // consume '('
		return nil, err
	}
	var args []Term
	if p.tok.kind != tokRParen {
		for {
			t, err := p.term()
			if err != nil {
				return nil, err
			}
			args = append(args, t)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return &Atom{Rel: rel, Args: args, Pos: start}, nil
}

func (p *parser) term() (Term, error) {
	if p.tok.kind == tokIdent && !keywords[p.tok.text] {
		v := Var{Name: p.tok.text}
		return v, p.advance()
	}
	return p.literal()
}

func (p *parser) literal() (Term, error) {
	switch p.tok.kind {
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("integer literal %q: %v", p.tok.text, err)
		}
		return Const{Val: value.Int(n)}, p.advance()
	case tokString:
		v, err := value.Parse(p.tok.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return Const{Val: v}, p.advance()
	default:
		return nil, p.errf("expected term, found %s", p.tok)
	}
}

func (p *parser) cmp(l Term, start int) (Formula, error) {
	var op CmpOp
	switch p.tok.kind {
	case tokEq:
		op = OpEq
	case tokNe:
		op = OpNe
	case tokLt:
		op = OpLt
	case tokLe:
		op = OpLe
	case tokGt:
		op = OpGt
	case tokGe:
		op = OpGe
	default:
		return nil, p.errf("expected comparison operator after term, found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	r, err := p.term()
	if err != nil {
		return nil, err
	}
	return &Cmp{Op: op, L: l, R: r, Pos: start}, nil
}
