package mtl

import (
	"strings"
	"testing"
)

func TestParseLeadsTo(t *testing.T) {
	f := mustParse(t, "reserved(tk) leadsto[0,3] paid(tk)")
	n, ok := f.(*LeadsTo)
	if !ok {
		t.Fatalf("parsed %#v", f)
	}
	if !n.I.Equal(Interval{Lo: 0, Hi: 3}) {
		t.Fatalf("interval = %+v", n.I)
	}
	if _, ok := n.L.(*Atom); !ok {
		t.Fatalf("left = %#v", n.L)
	}
}

func TestParseLeadsToErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"p(x) leadsto q(x)", "bounded deadline"},
		{"p(x) leadsto[2,*] q(x)", "bounded deadline"},
		{"p(x) leadsto[1,3] q(x)", "must start at 0"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) err = %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestLeadsToPrintRoundTrip(t *testing.T) {
	srcs := []string{
		"reserved(tk) leadsto[0,3] paid(tk)",
		"p(x) and (q(x) leadsto[0,9] r(x, x))",
		"(a() leadsto[0,1] b()) leadsto[0,2] c()",
	}
	for _, src := range srcs {
		f := mustParse(t, src)
		g := mustParse(t, f.String())
		if !Equal(f, g) {
			t.Errorf("round trip changed %q -> %q", src, f.String())
		}
	}
}

func TestLeadsToNormalize(t *testing.T) {
	f := mustParse(t, "reserved(tk) leadsto[0,3] paid(tk)")
	got := Normalize(f)
	want := mustParse(t, "not (not paid(tk) since[4,*] (reserved(tk) and not paid(tk)))")
	if !Equal(got, want) {
		t.Fatalf("Normalize = %s, want %s", got, want)
	}
	// Negation gives the bare violation monitor.
	neg := Normalize(&Not{F: f})
	wantNeg := mustParse(t, "not paid(tk) since[4,*] (reserved(tk) and not paid(tk))")
	if !Equal(neg, wantNeg) {
		t.Fatalf("Normalize(¬) = %s, want %s", neg, wantNeg)
	}
	if !IsKernel(got) || !IsKernel(neg) {
		t.Fatal("normalized leadsto is not kernel")
	}
}

func TestLeadsToDenialIsSafe(t *testing.T) {
	f := mustParse(t, "reserved(tk) leadsto[0,3] paid(tk)")
	denial := Normalize(&Not{F: f})
	if err := CheckSafe(denial); err != nil {
		t.Fatalf("denial unsafe: %v", err)
	}
}

func TestLeadsToHelpers(t *testing.T) {
	f := mustParse(t, "p(x) leadsto[0,3] q(x, y)")
	fv := FreeVars(f)
	if len(fv) != 2 || fv[0] != "x" || fv[1] != "y" {
		t.Fatalf("FreeVars = %v", fv)
	}
	if d := TemporalDepth(f); d != 1 {
		t.Fatalf("TemporalDepth = %d", d)
	}
	if !Equal(f, mustParse(t, "p(x) leadsto[0,3] q(x, y)")) {
		t.Fatal("Equal broken for leadsto")
	}
	if Equal(f, mustParse(t, "p(x) leadsto[0,4] q(x, y)")) {
		t.Fatal("Equal ignores leadsto interval")
	}
	n := 0
	Walk(f, func(Formula) { n++ })
	if n != 3 {
		t.Fatalf("Walk visited %d nodes", n)
	}
}
