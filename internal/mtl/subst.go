package mtl

import (
	"fmt"

	"rtic/internal/value"
)

// Substitute replaces free occurrences of the given variables by
// constants. Bound occurrences (under a quantifier that rebinds the
// name) are left untouched.
func Substitute(f Formula, sub map[string]value.Value) Formula {
	if len(sub) == 0 {
		return f
	}
	return subst(f, sub)
}

func substTerm(t Term, sub map[string]value.Value) Term {
	if v, ok := t.(Var); ok {
		if val, ok := sub[v.Name]; ok {
			return Const{Val: val}
		}
	}
	return t
}

func substTerms(ts []Term, sub map[string]value.Value) []Term {
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = substTerm(t, sub)
	}
	return out
}

func shadow(sub map[string]value.Value, vars []string) map[string]value.Value {
	hit := false
	for _, v := range vars {
		if _, ok := sub[v]; ok {
			hit = true
			break
		}
	}
	if !hit {
		return sub
	}
	out := make(map[string]value.Value, len(sub))
	for k, v := range sub {
		out[k] = v
	}
	for _, v := range vars {
		delete(out, v)
	}
	return out
}

func subst(f Formula, sub map[string]value.Value) Formula {
	switch n := f.(type) {
	case Truth:
		return n
	case *Atom:
		return &Atom{Rel: n.Rel, Args: substTerms(n.Args, sub), Pos: n.Pos}
	case *Cmp:
		return &Cmp{Op: n.Op, L: substTerm(n.L, sub), R: substTerm(n.R, sub), Pos: n.Pos}
	case *Not:
		return &Not{F: subst(n.F, sub), Pos: n.Pos}
	case *And:
		return &And{L: subst(n.L, sub), R: subst(n.R, sub), Pos: n.Pos}
	case *Or:
		return &Or{L: subst(n.L, sub), R: subst(n.R, sub), Pos: n.Pos}
	case *Implies:
		return &Implies{L: subst(n.L, sub), R: subst(n.R, sub), Pos: n.Pos}
	case *Iff:
		return &Iff{L: subst(n.L, sub), R: subst(n.R, sub), Pos: n.Pos}
	case *Exists:
		inner := shadow(sub, n.Vars)
		if len(inner) == 0 {
			return n
		}
		return &Exists{Vars: n.Vars, F: subst(n.F, inner), Pos: n.Pos}
	case *Forall:
		inner := shadow(sub, n.Vars)
		if len(inner) == 0 {
			return n
		}
		return &Forall{Vars: n.Vars, F: subst(n.F, inner), Pos: n.Pos}
	case *Prev:
		return &Prev{I: n.I, F: subst(n.F, sub), Pos: n.Pos}
	case *Once:
		return &Once{I: n.I, F: subst(n.F, sub), Pos: n.Pos}
	case *Always:
		return &Always{I: n.I, F: subst(n.F, sub), Pos: n.Pos}
	case *Since:
		return &Since{I: n.I, L: subst(n.L, sub), R: subst(n.R, sub), Pos: n.Pos}
	case *LeadsTo:
		return &LeadsTo{I: n.I, L: subst(n.L, sub), R: subst(n.R, sub), Pos: n.Pos}
	default:
		panic(fmt.Sprintf("mtl: Substitute: unknown node %T", f))
	}
}
