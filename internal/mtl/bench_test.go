package mtl

import "testing"

const benchSrc = "hire(e) and r(e, d) -> not once[0,365] (fire(e) and not rehired(e)) or (ok(e) since[2,9] r(e, d))"

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalize(b *testing.B) {
	f := MustParse(benchSrc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Normalize(&Not{F: f})
	}
}

func BenchmarkString(b *testing.B) {
	f := MustParse(benchSrc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.String()
	}
}

func BenchmarkCheckSafe(b *testing.B) {
	f := Normalize(&Not{F: MustParse(benchSrc)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CheckSafe(f)
	}
}

func BenchmarkSimplify(b *testing.B) {
	f := Normalize(&Not{F: MustParse(benchSrc)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Simplify(f)
	}
}
