package mtl

import (
	"errors"
	"strings"
	"testing"
)

// TestParserPositions pins the 1-based byte offsets the parser attaches
// to AST nodes.
func TestParserPositions(t *testing.T) {
	src := `p(x) and prev[1,2] q(x)`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	and, ok := f.(*And)
	if !ok {
		t.Fatalf("got %T, want *And", f)
	}
	if and.Pos != 1 {
		t.Errorf("And.Pos = %d, want 1", and.Pos)
	}
	if got := NodePos(and.L); got != 1 {
		t.Errorf("left atom pos = %d, want 1", got)
	}
	wantPrev := strings.Index(src, "prev") + 1
	if got := NodePos(and.R); got != wantPrev {
		t.Errorf("prev pos = %d, want %d", got, wantPrev)
	}
	prev := and.R.(*Prev)
	wantQ := strings.Index(src, "q(") + 1
	if got := NodePos(prev.F); got != wantQ {
		t.Errorf("inner atom pos = %d, want %d", got, wantQ)
	}
}

// TestPositionsSurviveRewrites checks that Normalize and Simplify keep
// the source position of the nodes they rebuild or replace.
func TestPositionsSurviveRewrites(t *testing.T) {
	src := `forall x: (p(x) -> once[0,5] q(x))`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	n := Simplify(Normalize(f))
	// The kernel form is not exists x: (p(x) and not once q(x)); every
	// node should carry a non-zero position from the original source.
	Walk(n, func(g Formula) {
		if _, ok := g.(Truth); ok {
			return
		}
		if NodePos(g) == 0 {
			t.Errorf("node %q lost its source position", g.String())
		}
	})
}

// TestSafetyErrorPosition checks that safety violations point at the
// offending subformula, not just the whole constraint.
func TestSafetyErrorPosition(t *testing.T) {
	src := `p(x) and y < 3`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	err = CheckSafe(f)
	if err == nil {
		t.Fatal("CheckSafe: want error for unbound filter variable")
	}
	var se *SafetyError
	if !errors.As(err, &se) {
		t.Fatalf("got %T, want *SafetyError", err)
	}
	if se.Pos == 0 {
		t.Errorf("SafetyError.Pos = 0, want a source position")
	}
	if !strings.Contains(se.Error(), "at position") {
		t.Errorf("Error() = %q, want position rendered", se.Error())
	}
}

// TestNodePosProgrammatic checks that hand-built formulas report
// position zero (unknown) rather than a bogus offset.
func TestNodePosProgrammatic(t *testing.T) {
	f := &And{L: Truth{Bool: true}, R: &Atom{Rel: "p"}}
	if got := NodePos(f); got != 0 {
		t.Errorf("NodePos = %d, want 0", got)
	}
	if got := NodePos(Truth{Bool: true}); got != 0 {
		t.Errorf("NodePos(Truth) = %d, want 0", got)
	}
}
