package mtl

import "fmt"

// Normalize rewrites f into the evaluator kernel: it eliminates the
// sugar connectives (Implies, Iff, Forall, Always), flips negated
// comparisons, and pushes negation inward until every residual Not wraps
// an Atom, Exists, Prev, Once or Since — the node shapes the evaluators
// treat as membership tests. Normalize preserves the semantics of f on
// every history (checked by the cross-evaluator property tests).
func Normalize(f Formula) Formula {
	switch n := f.(type) {
	case Truth, *Cmp:
		return f
	case *Atom:
		return f
	case *Not:
		return negate(n.F)
	case *And:
		return &And{L: Normalize(n.L), R: Normalize(n.R), Pos: n.Pos}
	case *Or:
		return &Or{L: Normalize(n.L), R: Normalize(n.R), Pos: n.Pos}
	case *Implies:
		return &Or{L: negate(n.L), R: Normalize(n.R), Pos: n.Pos}
	case *Iff:
		// (L -> R) and (R -> L).
		return &And{
			L:   &Or{L: negate(n.L), R: Normalize(n.R), Pos: n.Pos},
			R:   &Or{L: negate(n.R), R: Normalize(n.L), Pos: n.Pos},
			Pos: n.Pos,
		}
	case *Exists:
		return &Exists{Vars: n.Vars, F: Normalize(n.F), Pos: n.Pos}
	case *Forall:
		return &Not{F: &Exists{Vars: n.Vars, F: negate(n.F), Pos: n.Pos}, Pos: n.Pos}
	case *Prev:
		return &Prev{I: n.I, F: Normalize(n.F), Pos: n.Pos}
	case *Once:
		return &Once{I: n.I, F: Normalize(n.F), Pos: n.Pos}
	case *Always:
		return &Not{F: &Once{I: n.I, F: negate(n.F), Pos: n.Pos}, Pos: n.Pos}
	case *Since:
		return &Since{I: n.I, L: Normalize(n.L), R: Normalize(n.R), Pos: n.Pos}
	case *LeadsTo:
		return &Not{F: leadsToViolation(n), Pos: n.Pos}
	default:
		panic(fmt.Sprintf("mtl: Normalize: unknown node %T", f))
	}
}

// leadsToViolation builds the past-form monitor of a deadline
// obligation: "L leadsto[0,d] R" is violated exactly when
// (¬R) since[d+1,*] (L ∧ ¬R) holds — an unfulfilled L-event aged past
// the deadline.
func leadsToViolation(n *LeadsTo) *Since {
	expiry := n.I.Hi + 1
	if expiry == 0 { // saturate on uint64 overflow
		expiry = n.I.Hi
	}
	return &Since{
		I:   AtLeast(expiry),
		L:   negate(n.R),
		R:   &And{L: Normalize(n.L), R: negate(n.R), Pos: n.Pos},
		Pos: n.Pos,
	}
}

// negate returns the normal form of ¬f.
func negate(f Formula) Formula {
	switch n := f.(type) {
	case Truth:
		return Truth{Bool: !n.Bool}
	case *Atom:
		return &Not{F: n, Pos: n.Pos}
	case *Cmp:
		return &Cmp{Op: n.Op.Negate(), L: n.L, R: n.R, Pos: n.Pos}
	case *Not:
		return Normalize(n.F)
	case *And:
		return &Or{L: negate(n.L), R: negate(n.R), Pos: n.Pos}
	case *Or:
		return &And{L: negate(n.L), R: negate(n.R), Pos: n.Pos}
	case *Implies:
		return &And{L: Normalize(n.L), R: negate(n.R), Pos: n.Pos}
	case *Iff:
		// ¬(L <-> R) = (L and ¬R) or (R and ¬L).
		return &Or{
			L:   &And{L: Normalize(n.L), R: negate(n.R), Pos: n.Pos},
			R:   &And{L: Normalize(n.R), R: negate(n.L), Pos: n.Pos},
			Pos: n.Pos,
		}
	case *Exists:
		return &Not{F: &Exists{Vars: n.Vars, F: Normalize(n.F), Pos: n.Pos}, Pos: n.Pos}
	case *Forall:
		return &Exists{Vars: n.Vars, F: negate(n.F), Pos: n.Pos}
	case *Prev:
		return &Not{F: &Prev{I: n.I, F: Normalize(n.F), Pos: n.Pos}, Pos: n.Pos}
	case *Once:
		return &Not{F: &Once{I: n.I, F: Normalize(n.F), Pos: n.Pos}, Pos: n.Pos}
	case *Always:
		return &Once{I: n.I, F: negate(n.F), Pos: n.Pos}
	case *Since:
		return &Not{F: &Since{I: n.I, L: Normalize(n.L), R: Normalize(n.R), Pos: n.Pos}, Pos: n.Pos}
	case *LeadsTo:
		return leadsToViolation(n)
	default:
		panic(fmt.Sprintf("mtl: negate: unknown node %T", f))
	}
}

// IsKernel reports whether f contains only kernel nodes (no sugar) with
// negation fully pushed inward; evaluator inputs must satisfy it.
func IsKernel(f Formula) bool {
	ok := true
	Walk(f, func(g Formula) {
		switch n := g.(type) {
		case *Implies, *Iff, *Forall, *Always, *LeadsTo:
			ok = false
		case *Not:
			switch n.F.(type) {
			case *Atom, *Exists, *Prev, *Once, *Since:
			default:
				ok = false
			}
		}
	})
	return ok
}
