package mtl

import (
	"math/rand"
	"testing"
)

func TestSimplifyExamples(t *testing.T) {
	cases := []struct{ src, want string }{
		{"p(x) and true", "p(x)"},
		{"true and p(x)", "p(x)"},
		{"p(x) and false", "false"},
		{"p(x) or true", "true"},
		{"false or p(x)", "p(x)"},
		{"not true", "false"},
		{"not false", "true"},
		{"p(x) and p(x)", "p(x)"},
		{"p(x) or p(x)", "p(x)"},
		{"3 < 5", "true"},
		{"3 = 4", "false"},
		{"once false", "false"},
		{"once true", "true"},
		{"once[2,5] false", "false"},
		{"prev false", "false"},
		{"p(x) since false", "false"},
		{"true since p(x)", "once p(x)"},
		{"true since[1,4] p(x)", "once[1,4] p(x)"},
		{"exists x: p(x) and true", "exists x: p(x)"},
		{"not (p(x) and false)", "true"},
		{"once (p(x) and true)", "once p(x)"},
	}
	for _, c := range cases {
		got := Simplify(mustParse(t, c.src))
		want := mustParse(t, c.want)
		if !Equal(got, want) {
			t.Errorf("Simplify(%q) = %q, want %q", c.src, got.String(), c.want)
		}
	}
}

func TestSimplifyLeavesOnceWithPositiveLo(t *testing.T) {
	// once[2,5] true depends on whether a state exists at that distance:
	// it must NOT fold to true.
	f := mustParse(t, "once[2,5] true")
	if _, ok := Simplify(f).(Truth); ok {
		t.Fatal("once[2,5] true folded to a constant")
	}
}

func TestSimplifyLeavesQuantifiersAlone(t *testing.T) {
	// Under active-domain semantics, "exists x: true" is false in an
	// empty database — folding it would be unsound.
	f := mustParse(t, "exists x: true")
	got := Simplify(f)
	if _, ok := got.(Truth); ok {
		t.Fatal("exists x: true folded to a constant")
	}
}

func TestSimplifyPreservesKernel(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 1000; i++ {
		f := Normalize(randFormula(r, 4))
		g := Simplify(f)
		if !IsKernel(g) {
			t.Fatalf("Simplify broke kernel form:\nbefore: %s\nafter:  %s", f, g)
		}
		// Idempotent.
		if !Equal(g, Simplify(g)) {
			t.Fatalf("Simplify not idempotent on %s", f)
		}
	}
}

func TestSimplifyNeverGrowsFreeVars(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 500; i++ {
		f := Normalize(randFormula(r, 4))
		before := FreeVars(f)
		after := FreeVars(Simplify(f))
		set := make(map[string]bool, len(before))
		for _, v := range before {
			set[v] = true
		}
		for _, v := range after {
			if !set[v] {
				t.Fatalf("Simplify invented variable %q:\nbefore %s\nafter  %s", v, f, Simplify(f))
			}
		}
	}
}
