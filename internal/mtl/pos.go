package mtl

// NodePos returns the source position of f: the 1-based byte offset of
// its first token in the source the parser read, or 0 when the node was
// built programmatically (Truth nodes never carry positions — they are
// value types shared by construction).
func NodePos(f Formula) int {
	switch n := f.(type) {
	case *Atom:
		return n.Pos
	case *Cmp:
		return n.Pos
	case *Not:
		return n.Pos
	case *And:
		return n.Pos
	case *Or:
		return n.Pos
	case *Implies:
		return n.Pos
	case *Iff:
		return n.Pos
	case *Exists:
		return n.Pos
	case *Forall:
		return n.Pos
	case *Prev:
		return n.Pos
	case *Once:
		return n.Pos
	case *Always:
		return n.Pos
	case *Since:
		return n.Pos
	case *LeadsTo:
		return n.Pos
	default:
		return 0
	}
}
