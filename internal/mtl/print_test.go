package mtl

import (
	"math/rand"
	"testing"

	"rtic/internal/value"
)

func TestPrintExamples(t *testing.T) {
	cases := []struct{ src, want string }{
		{"p(x)", "p(x)"},
		{"p ( x , 1 , 'a' )", "p(x, 1, 'a')"},
		{"not p(x)", "not p(x)"},
		{"p() and q() and r()", "p() and q() and r()"},
		{"p() and (q() or r())", "p() and (q() or r())"},
		{"(p() and q()) or r()", "p() and q() or r()"},
		{"p() -> q() -> r()", "p() -> q() -> r()"},
		{"(p() -> q()) -> r()", "(p() -> q()) -> r()"},
		{"once [0,3] paid(x)", "once[0,3] paid(x)"},
		{"prev[1,*] p()", "prev[1,*] p()"},
		{"always p(x)", "always p(x)"},
		{"p(x) since [2,4] q(x)", "p(x) since[2,4] q(x)"},
		{"exists x: p(x) and q(x)", "exists x: p(x) and q(x)"},
		{"(exists x: p(x)) and q()", "(exists x: p(x)) and q()"},
		{"x >= 3 and x != y", "x >= 3 and x != y"},
		{"true or false", "true or false"},
		{"not (p() and q())", "not (p() and q())"},
		{"once once p()", "once once p()"},
	}
	for _, c := range cases {
		f := mustParse(t, c.src)
		if got := f.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestPrintParseRoundTripExamples(t *testing.T) {
	srcs := []string{
		"hire(e) and once[0,365] fire(e)",
		"forall x: (p(x) -> q(x)) <-> r(x)",
		"(a() since[1,9] b(x)) since c(x)",
		"exists u, v: r(u, v) and not s(v, u)",
		"prev (p() or prev q())",
		"always[0,14] (out(b, p) -> not ret(b))",
	}
	for _, src := range srcs {
		f := mustParse(t, src)
		g := mustParse(t, f.String())
		if !Equal(f, g) {
			t.Errorf("round trip changed %q:\n first  %s\n second %s", src, f, g)
		}
	}
}

// randFormula builds a random AST; used to fuzz the printer/parser pair.
func randFormula(r *rand.Rand, depth int) Formula {
	terms := func(n int) []Term {
		ts := make([]Term, n)
		for i := range ts {
			switch r.Intn(3) {
			case 0:
				ts[i] = Var{Name: string(rune('x' + r.Intn(3)))}
			case 1:
				ts[i] = Const{Val: value.Int(int64(r.Intn(21) - 10))}
			default:
				ts[i] = Const{Val: value.Str(string(rune('a' + r.Intn(3))))}
			}
		}
		return ts
	}
	iv := func() Interval {
		switch r.Intn(4) {
		case 0:
			return Full()
		case 1:
			return AtLeast(uint64(r.Intn(5)))
		default:
			lo := uint64(r.Intn(5))
			hi := lo + uint64(r.Intn(5))
			b, _ := Bounded(lo, hi)
			return b
		}
	}
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Truth{Bool: r.Intn(2) == 0}
		case 1:
			return &Atom{Rel: string(rune('p' + r.Intn(3))), Args: terms(r.Intn(3))}
		default:
			ts := terms(2)
			return &Cmp{Op: CmpOp(r.Intn(6)), L: ts[0], R: ts[1]}
		}
	}
	sub := func() Formula { return randFormula(r, depth-1) }
	switch r.Intn(12) {
	case 0:
		return &Not{F: sub()}
	case 1:
		return &And{L: sub(), R: sub()}
	case 2:
		return &Or{L: sub(), R: sub()}
	case 3:
		return &Implies{L: sub(), R: sub()}
	case 4:
		return &Iff{L: sub(), R: sub()}
	case 5:
		return &Exists{Vars: []string{"x"}, F: sub()}
	case 6:
		return &Forall{Vars: []string{"x", "y"}, F: sub()}
	case 7:
		return &Prev{I: iv(), F: sub()}
	case 8:
		return &Once{I: iv(), F: sub()}
	case 9:
		return &Always{I: iv(), F: sub()}
	case 10:
		return &Since{I: iv(), L: sub(), R: sub()}
	case 11:
		b, _ := Bounded(0, uint64(r.Intn(6)))
		return &LeadsTo{I: b, L: sub(), R: sub()}
	default:
		return &Atom{Rel: "q", Args: terms(1)}
	}
}

func TestPrintParseRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		f := randFormula(r, 4)
		src := f.String()
		g, err := Parse(src)
		if err != nil {
			t.Fatalf("iteration %d: Parse(%q): %v\nAST: %#v", i, src, err, f)
		}
		if !Equal(f, g) {
			t.Fatalf("iteration %d: round trip changed\nprinted: %s\nreparsed: %s", i, src, g)
		}
	}
}
