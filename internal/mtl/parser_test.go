package mtl

import (
	"strings"
	"testing"

	"rtic/internal/value"
)

func mustParse(t *testing.T, src string) Formula {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return f
}

func TestParseAtom(t *testing.T) {
	f := mustParse(t, "emp(x, 'sales', 42)")
	a, ok := f.(*Atom)
	if !ok || a.Rel != "emp" || len(a.Args) != 3 {
		t.Fatalf("parsed %#v", f)
	}
	if v, ok := a.Args[0].(Var); !ok || v.Name != "x" {
		t.Fatalf("arg0 = %#v", a.Args[0])
	}
	if c, ok := a.Args[1].(Const); !ok || !c.Val.Equal(value.Str("sales")) {
		t.Fatalf("arg1 = %#v", a.Args[1])
	}
	if c, ok := a.Args[2].(Const); !ok || !c.Val.Equal(value.Int(42)) {
		t.Fatalf("arg2 = %#v", a.Args[2])
	}
}

func TestParseNullaryAtom(t *testing.T) {
	f := mustParse(t, "alarm()")
	a, ok := f.(*Atom)
	if !ok || a.Rel != "alarm" || len(a.Args) != 0 {
		t.Fatalf("parsed %#v", f)
	}
}

func TestParseComparisons(t *testing.T) {
	cases := map[string]CmpOp{
		"x = 1": OpEq, "x != 1": OpNe, "x < 1": OpLt,
		"x <= 1": OpLe, "x > 1": OpGt, "x >= 1": OpGe,
	}
	for src, op := range cases {
		f := mustParse(t, src)
		c, ok := f.(*Cmp)
		if !ok || c.Op != op {
			t.Errorf("Parse(%q) = %#v", src, f)
		}
	}
	// Literal on the left.
	f := mustParse(t, "3 < x")
	if c, ok := f.(*Cmp); !ok || c.Op != OpLt {
		t.Fatalf("parsed %#v", f)
	}
	// Negative integer literal.
	f = mustParse(t, "x = -5")
	c := f.(*Cmp)
	if !c.R.(Const).Val.Equal(value.Int(-5)) {
		t.Fatalf("negative literal parsed as %#v", c.R)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, "a() and b() or c()")
	if _, ok := f.(*Or); !ok {
		t.Fatalf("'and' should bind tighter than 'or': %#v", f)
	}
	f = mustParse(t, "a() or b() -> c()")
	if _, ok := f.(*Implies); !ok {
		t.Fatalf("'or' should bind tighter than '->': %#v", f)
	}
	f = mustParse(t, "a() -> b() <-> c()")
	if _, ok := f.(*Iff); !ok {
		t.Fatalf("'->' should bind tighter than '<->': %#v", f)
	}
	f = mustParse(t, "a() -> b() -> c()")
	imp := f.(*Implies)
	if _, ok := imp.R.(*Implies); !ok {
		t.Fatalf("'->' should be right-associative: %#v", f)
	}
	f = mustParse(t, "not a() and b()")
	and := f.(*And)
	if _, ok := and.L.(*Not); !ok {
		t.Fatalf("'not' should bind tighter than 'and': %#v", f)
	}
}

func TestParseTemporal(t *testing.T) {
	f := mustParse(t, "once[0,3] paid(x)")
	o, ok := f.(*Once)
	if !ok || !o.I.Equal(Interval{Lo: 0, Hi: 3}) {
		t.Fatalf("parsed %#v", f)
	}
	f = mustParse(t, "prev p()")
	if p, ok := f.(*Prev); !ok || !p.I.IsFull() {
		t.Fatalf("parsed %#v", f)
	}
	f = mustParse(t, "always[1,*] p()")
	if a, ok := f.(*Always); !ok || !a.I.Equal(AtLeast(1)) {
		t.Fatalf("parsed %#v", f)
	}
	f = mustParse(t, "once[7] p()")
	if o, ok := f.(*Once); !ok || !o.I.Equal(Point(7)) {
		t.Fatalf("point interval parsed %#v", f)
	}
	f = mustParse(t, "p(x) since[2,9] q(x)")
	s, ok := f.(*Since)
	if !ok || !s.I.Equal(Interval{Lo: 2, Hi: 9}) {
		t.Fatalf("parsed %#v", f)
	}
	// since chains are left-associative.
	f = mustParse(t, "a() since b() since c()")
	if outer, ok := f.(*Since); !ok {
		t.Fatalf("parsed %#v", f)
	} else if _, ok := outer.L.(*Since); !ok {
		t.Fatalf("since should left-associate: %#v", f)
	}
}

func TestParseQuantifiers(t *testing.T) {
	f := mustParse(t, "exists x, y: r(x, y)")
	e, ok := f.(*Exists)
	if !ok || len(e.Vars) != 2 || e.Vars[1] != "y" {
		t.Fatalf("parsed %#v", f)
	}
	f = mustParse(t, "forall x: p(x) -> q(x)")
	fa, ok := f.(*Forall)
	if !ok {
		t.Fatalf("parsed %#v", f)
	}
	if _, ok := fa.F.(*Implies); !ok {
		t.Fatal("quantifier body should extend to the right")
	}
	// Parenthesized quantifier inside a conjunction.
	f = mustParse(t, "(exists x: p(x)) and q()")
	if _, ok := f.(*And); !ok {
		t.Fatalf("parsed %#v", f)
	}
}

func TestParseTrueFalseParens(t *testing.T) {
	if f := mustParse(t, "true"); !f.(Truth).Bool {
		t.Fatal("true parsed wrong")
	}
	if f := mustParse(t, "false"); f.(Truth).Bool {
		t.Fatal("false parsed wrong")
	}
	f := mustParse(t, "((p()))")
	if _, ok := f.(*Atom); !ok {
		t.Fatalf("parens not transparent: %#v", f)
	}
}

func TestParseComments(t *testing.T) {
	f := mustParse(t, "p(x) -- trailing comment\n and q(x) -- another")
	if _, ok := f.(*And); !ok {
		t.Fatalf("parsed %#v", f)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"", "expected formula"},
		{"p(", "expected term"},
		{"p(x", "expected"},
		{"p(x,)", "expected term"},
		{"x", "comparison operator"},
		{"p() and", "expected formula"},
		{"once[3,1] p()", "empty interval"},
		{"once[3,1", "']'"},
		{"once[a,2] p()", "lower bound"},
		{"exists : p()", "variable name"},
		{"exists x p()", "':'"},
		{"p() q()", "after formula"},
		{"p() & q()", "unexpected character"},
		{"'unterminated", "unterminated string"},
		{"x = 'a' = 'b'", "after formula"},
		{"exists once: p()", "variable name"},
		{"- 3 > x", "stray '-'"},
		{"x ! 3", "stray '!'"},
		{"not", "expected formula"},
		{"p(x) since", "expected formula"},
		{"once[99999999999999999999,*] p()", "interval bound"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error %q, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("((")
}

func TestParseStringEscapes(t *testing.T) {
	f := mustParse(t, "name(x, 'o''brien')")
	a := f.(*Atom)
	if !a.Args[1].(Const).Val.Equal(value.Str("o'brien")) {
		t.Fatalf("escaped string parsed as %#v", a.Args[1])
	}
}
