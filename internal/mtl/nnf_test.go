package mtl

import (
	"math/rand"
	"testing"
)

func TestNormalizeExamples(t *testing.T) {
	cases := []struct{ src, want string }{
		{"p() -> q()", "not p() or q()"},
		{"not (p() and q())", "not p() or not q()"},
		{"not (p() or q())", "not p() and not q()"},
		{"not not p()", "p()"},
		{"not true", "false"},
		{"not x < 3", "x >= 3"},
		{"not x = y", "x != y"},
		{"always p()", "not once not p()"},
		{"always[2,5] p()", "not once[2,5] not p()"},
		{"not always p()", "once not p()"},
		{"forall x: p(x)", "not (exists x: not p(x))"},
		{"not (forall x: p(x))", "exists x: not p(x)"},
		{"not (exists x: p(x))", "not (exists x: p(x))"},
		{"not prev p()", "not prev p()"},
		{"not (p() since q())", "not (p() since q())"},
		{"p() <-> q()", "(not p() or q()) and (not q() or p())"},
		{"not (p() -> q())", "p() and not q()"},
		{"not (p() <-> q())", "p() and not q() or q() and not p()"},
	}
	for _, c := range cases {
		got := Normalize(mustParse(t, c.src))
		want := mustParse(t, c.want)
		if !Equal(got, want) {
			t.Errorf("Normalize(%q) = %q, want %q", c.src, got.String(), c.want)
		}
	}
}

func TestNormalizeProducesKernel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		f := randFormula(r, 5)
		g := Normalize(f)
		if !IsKernel(g) {
			t.Fatalf("Normalize(%s) = %s is not kernel", f, g)
		}
		// Normalization is idempotent.
		if !Equal(g, Normalize(g)) {
			t.Fatalf("Normalize not idempotent on %s", f)
		}
	}
}

func TestIsKernelRejectsSugar(t *testing.T) {
	sugar := []string{
		"p() -> q()",
		"p() <-> q()",
		"forall x: p(x)",
		"always p()",
		"not (p() and q())",
		"not not p()",
		"once (p() -> q())",
	}
	for _, src := range sugar {
		if IsKernel(mustParse(t, src)) {
			t.Errorf("IsKernel(%q) = true", src)
		}
	}
	kernel := []string{
		"not p()",
		"not (exists x: p(x))",
		"not once p()",
		"not prev p()",
		"not (p() since q())",
		"p() and (q() or not r())",
		"x >= 3",
	}
	for _, src := range kernel {
		if !IsKernel(mustParse(t, src)) {
			t.Errorf("IsKernel(%q) = false", src)
		}
	}
}

func TestNormalizePreservesFreeVars(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		f := randFormula(r, 4)
		a, b := FreeVars(f), FreeVars(Normalize(f))
		if len(a) != len(b) {
			t.Fatalf("free vars changed: %v vs %v for %s", a, b, f)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("free vars changed: %v vs %v for %s", a, b, f)
			}
		}
	}
}
