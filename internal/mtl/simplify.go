package mtl

import "fmt"

// Simplify performs conservative, semantics-preserving constant folding
// on a kernel formula: boolean identities, comparison folding, double
// negation, structural deduplication of identical operands, and the
// temporal absorptions that hold in every history. It deliberately
// avoids any rewrite whose validity depends on the active domain (e.g.
// it never touches quantifiers: under active-domain semantics
// "exists x: true" is false in an empty database).
//
// Simplify is idempotent — Simplify(Simplify(f)) is structurally equal
// to Simplify(f) for every formula, a property the linter relies on and
// FuzzSimplifyIdempotent pins over the parser corpus. Source positions
// survive: rebuilt nodes keep the position of the node they replace.
//
// The constraint compiler runs Simplify on denials after Normalize;
// the cross-evaluator property tests pin the equivalence.
func Simplify(f Formula) Formula {
	switch n := f.(type) {
	case Truth, *Atom, *Cmp:
		if c, ok := f.(*Cmp); ok {
			if l, lok := c.L.(Const); lok {
				if r, rok := c.R.(Const); rok {
					return Truth{Bool: c.Op.Apply(l.Val, r.Val)}
				}
			}
		}
		return f
	case *Not:
		inner := Simplify(n.F)
		if t, ok := inner.(Truth); ok {
			return Truth{Bool: !t.Bool}
		}
		// Evaluation is two-valued, so ¬¬f is f. (Normalize never emits
		// double negation, but Simplify is total over hand-built trees.)
		if nn, ok := inner.(*Not); ok {
			return nn.F
		}
		return &Not{F: inner, Pos: n.Pos}
	case *And:
		l, r := Simplify(n.L), Simplify(n.R)
		if t, ok := l.(Truth); ok {
			if !t.Bool {
				return Truth{Bool: false}
			}
			return r
		}
		if t, ok := r.(Truth); ok {
			if !t.Bool {
				return Truth{Bool: false}
			}
			return l
		}
		if Equal(l, r) {
			return l
		}
		if complementary(l, r) {
			return Truth{Bool: false}
		}
		return &And{L: l, R: r, Pos: n.Pos}
	case *Or:
		l, r := Simplify(n.L), Simplify(n.R)
		if t, ok := l.(Truth); ok {
			if t.Bool {
				return Truth{Bool: true}
			}
			return r
		}
		if t, ok := r.(Truth); ok {
			if t.Bool {
				return Truth{Bool: true}
			}
			return l
		}
		if Equal(l, r) {
			return l
		}
		if complementary(l, r) {
			return Truth{Bool: true}
		}
		return &Or{L: l, R: r, Pos: n.Pos}
	case *Exists:
		return &Exists{Vars: n.Vars, F: Simplify(n.F), Pos: n.Pos}
	case *Prev:
		inner := Simplify(n.F)
		// prev false never holds (there is no state where false held).
		if t, ok := inner.(Truth); ok && !t.Bool {
			return Truth{Bool: false}
		}
		return &Prev{I: n.I, F: inner, Pos: n.Pos}
	case *Once:
		inner := Simplify(n.F)
		if t, ok := inner.(Truth); ok {
			if !t.Bool {
				return Truth{Bool: false}
			}
			// once[0,…] true is true at every state (reflexive, j = i).
			if n.I.Lo == 0 {
				return Truth{Bool: true}
			}
		}
		return &Once{I: n.I, F: inner, Pos: n.Pos}
	case *Since:
		l, r := Simplify(n.L), Simplify(n.R)
		// No anchor can ever exist.
		if t, ok := r.(Truth); ok && !t.Bool {
			return Truth{Bool: false}
		}
		// φ since ψ with φ = true is once ψ.
		if t, ok := l.(Truth); ok && t.Bool {
			return Simplify(&Once{I: n.I, F: r, Pos: n.Pos})
		}
		return &Since{I: n.I, L: l, R: r, Pos: n.Pos}
	// Sugar nodes pass through untouched (Simplify targets kernel
	// formulas, but stays total so callers need not care).
	case *Implies:
		return &Implies{L: Simplify(n.L), R: Simplify(n.R), Pos: n.Pos}
	case *Iff:
		return &Iff{L: Simplify(n.L), R: Simplify(n.R), Pos: n.Pos}
	case *Forall:
		return &Forall{Vars: n.Vars, F: Simplify(n.F), Pos: n.Pos}
	case *Always:
		return &Always{I: n.I, F: Simplify(n.F), Pos: n.Pos}
	case *LeadsTo:
		return &LeadsTo{I: n.I, L: Simplify(n.L), R: Simplify(n.R), Pos: n.Pos}
	default:
		panic(fmt.Sprintf("mtl: Simplify: unknown node %T", f))
	}
}

// complementary reports whether a and b are syntactic complements
// (f vs not f, or a comparison vs its negated operator); evaluation is
// two-valued, so f ∧ ¬f is false and f ∨ ¬f is true.
func complementary(a, b Formula) bool {
	if n, ok := a.(*Not); ok && Equal(n.F, b) {
		return true
	}
	if n, ok := b.(*Not); ok && Equal(n.F, a) {
		return true
	}
	ca, aok := a.(*Cmp)
	cb, bok := b.(*Cmp)
	if aok && bok && ca.Op == cb.Op.Negate() &&
		ca.L.EqualTerm(cb.L) && ca.R.EqualTerm(cb.R) {
		return true
	}
	return false
}
