package mtl

import "testing"

func TestIntervalConstructors(t *testing.T) {
	if !Full().IsFull() {
		t.Fatal("Full not full")
	}
	iv, err := Bounded(2, 5)
	if err != nil || iv.Lo != 2 || iv.Hi != 5 || iv.Unbounded {
		t.Fatalf("Bounded(2,5) = %+v err=%v", iv, err)
	}
	if _, err := Bounded(5, 2); err == nil {
		t.Fatal("empty interval accepted")
	}
	if p := Point(3); !p.Contains(3) || p.Contains(2) || p.Contains(4) {
		t.Fatal("Point wrong")
	}
	if al := AtLeast(10); !al.Unbounded || al.Lo != 10 {
		t.Fatalf("AtLeast = %+v", al)
	}
}

func TestIntervalContains(t *testing.T) {
	iv, _ := Bounded(2, 5)
	for d, want := range map[uint64]bool{0: false, 1: false, 2: true, 3: true, 5: true, 6: false} {
		if got := iv.Contains(d); got != want {
			t.Errorf("[2,5].Contains(%d) = %v", d, got)
		}
	}
	al := AtLeast(3)
	if al.Contains(2) || !al.Contains(3) || !al.Contains(1<<60) {
		t.Fatal("AtLeast Contains wrong")
	}
	if !Full().Contains(0) || !Full().Contains(1<<62) {
		t.Fatal("Full Contains wrong")
	}
}

func TestIntervalUpper(t *testing.T) {
	iv, _ := Bounded(0, 9)
	if iv.Upper() != 9 {
		t.Fatal("Upper of bounded wrong")
	}
	if AtLeast(1).Upper() != ^uint64(0) {
		t.Fatal("Upper of unbounded wrong")
	}
}

func TestIntervalEqual(t *testing.T) {
	a, _ := Bounded(1, 2)
	b, _ := Bounded(1, 2)
	c, _ := Bounded(1, 3)
	if !a.Equal(b) || a.Equal(c) || a.Equal(AtLeast(1)) {
		t.Fatal("Equal wrong")
	}
	// Hi is irrelevant when unbounded.
	if !(Interval{Lo: 1, Hi: 7, Unbounded: true}).Equal(AtLeast(1)) {
		t.Fatal("unbounded Equal must ignore Hi")
	}
}

func TestIntervalString(t *testing.T) {
	if Full().String() != "" {
		t.Fatalf("Full string = %q", Full().String())
	}
	if AtLeast(2).String() != "[2,*]" {
		t.Fatalf("AtLeast string = %q", AtLeast(2).String())
	}
	iv, _ := Bounded(0, 3)
	if iv.String() != "[0,3]" {
		t.Fatalf("Bounded string = %q", iv.String())
	}
}
