package mtl

import (
	"reflect"
	"testing"

	"rtic/internal/value"
)

func TestFreeVars(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"p(x, y)", []string{"x", "y"}},
		{"p(x, x)", []string{"x"}},
		{"p(1, 'a')", []string{}},
		{"exists x: p(x, y)", []string{"y"}},
		{"forall x: p(x) and q(z)", []string{"z"}},
		{"exists x: p(x) and q(x)", []string{}},
		{"p(x) since q(y)", []string{"x", "y"}},
		{"once[0,3] paid(t) and x < 5", []string{"t", "x"}},
		{"exists x: (p(x) and exists y: q(x, y)) and r(x)", []string{}},
		{"(exists x: p(x)) and q(x)", []string{"x"}},
		{"true", []string{}},
	}
	for _, c := range cases {
		got := FreeVars(mustParse(t, c.src))
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("FreeVars(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestConstants(t *testing.T) {
	f := mustParse(t, "p(1, 'a') and x = 2 and q('a')")
	got := Constants(f)
	want := []value.Value{value.Int(1), value.Int(2), value.Str("a")}
	if len(got) != len(want) {
		t.Fatalf("Constants = %v", got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("Constants[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWalkVisitsAll(t *testing.T) {
	f := mustParse(t, "(p(x) -> q(x)) and once (r(x) since s(x))")
	n := 0
	Walk(f, func(Formula) { n++ })
	// and, implies, p, q, once, since, r, s.
	if n != 8 {
		t.Fatalf("Walk visited %d nodes, want 8", n)
	}
}

func TestEqualDistinguishes(t *testing.T) {
	pairs := [][2]string{
		{"p(x)", "p(y)"},
		{"p(x)", "q(x)"},
		{"once[0,3] p()", "once[0,4] p()"},
		{"once p()", "always p()"},
		{"p() and q()", "q() and p()"},
		{"exists x: p(x)", "exists y: p(y)"},
		{"x = 1", "x != 1"},
		{"p(x)", "p(x, x)"},
		{"prev p()", "prev[0,1] p()"},
	}
	for _, p := range pairs {
		a, b := mustParse(t, p[0]), mustParse(t, p[1])
		if Equal(a, b) {
			t.Errorf("Equal(%q, %q) = true", p[0], p[1])
		}
		if !Equal(a, a) || !Equal(b, b) {
			t.Errorf("self-equality failed for %q or %q", p[0], p[1])
		}
	}
}

func TestTemporalDepth(t *testing.T) {
	cases := map[string]int{
		"p(x)":                          0,
		"once p(x)":                     1,
		"once prev p(x)":                2,
		"once p(x) and prev prev q(x)":  2,
		"p(x) since (q(x) since r(x))":  2,
		"always (p() -> once[0,3] q())": 2,
		"not once p()":                  1,
	}
	for src, want := range cases {
		if got := TemporalDepth(mustParse(t, src)); got != want {
			t.Errorf("TemporalDepth(%q) = %d, want %d", src, got, want)
		}
	}
}
