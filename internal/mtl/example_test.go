package mtl_test

import (
	"fmt"

	"rtic/internal/mtl"
)

// Parsing, normalizing and printing a constraint.
func ExampleParse() {
	f, _ := mtl.Parse("hire(e) -> not once[0,365] fire(e)")
	fmt.Println("parsed: ", f)
	fmt.Println("denial: ", mtl.Simplify(mtl.Normalize(&mtl.Not{F: f})))
	fmt.Println("depth:  ", mtl.TemporalDepth(f))
	fmt.Println("vars:   ", mtl.FreeVars(f))
	// Output:
	// parsed:  hire(e) -> not once[0,365] fire(e)
	// denial:  hire(e) and once[0,365] fire(e)
	// depth:   1
	// vars:    [e]
}

// The deadline-obligation extension compiles to a past-form monitor.
func ExampleNormalize_leadsto() {
	f, _ := mtl.Parse("reserved(tk) leadsto[0,3] paid(tk)")
	fmt.Println(mtl.Normalize(&mtl.Not{F: f}))
	// Output:
	// not paid(tk) since[4,*] (reserved(tk) and not paid(tk))
}

// Safety analysis explains why a constraint cannot be checked.
func ExampleCheckSafe() {
	denial := mtl.Normalize(&mtl.Not{F: mtl.MustParse("hire(e)")})
	err := mtl.CheckSafe(denial)
	fmt.Println(err)
	// Output:
	// mtl: unsafe formula "not hire(e)" (at position 1): negation cannot enumerate bindings; its variables must be bound by a positive conjunct
}
