package mtl

import (
	"fmt"
	"strings"
)

// Operator precedence levels, loosest first. A child is parenthesized
// whenever its own level is strictly below the level its context requires.
const (
	precQuant   = iota // exists x: f   (binds its whole right context)
	precIff            // <->
	precImplies        // ->
	precOr             // or
	precAnd            // and
	precSince          // since
	precUnary          // not, prev, once, always
	precPrimary        // atoms, comparisons, true/false
)

func (v Var) String() string   { return v.Name }
func (c Const) String() string { return c.Val.String() }

func (f Truth) String() string    { return render(f, precQuant) }
func (f *Atom) String() string    { return render(f, precQuant) }
func (f *Cmp) String() string     { return render(f, precQuant) }
func (f *Not) String() string     { return render(f, precQuant) }
func (f *And) String() string     { return render(f, precQuant) }
func (f *Or) String() string      { return render(f, precQuant) }
func (f *Implies) String() string { return render(f, precQuant) }
func (f *Iff) String() string     { return render(f, precQuant) }
func (f *Exists) String() string  { return render(f, precQuant) }
func (f *Forall) String() string  { return render(f, precQuant) }
func (f *Prev) String() string    { return render(f, precQuant) }
func (f *Once) String() string    { return render(f, precQuant) }
func (f *Always) String() string  { return render(f, precQuant) }
func (f *Since) String() string   { return render(f, precQuant) }
func (f *LeadsTo) String() string { return render(f, precQuant) }

func prec(f Formula) int {
	switch f.(type) {
	case Truth, *Atom, *Cmp:
		return precPrimary
	case *Not, *Prev, *Once, *Always:
		return precUnary
	case *Since, *LeadsTo:
		return precSince
	case *And:
		return precAnd
	case *Or:
		return precOr
	case *Implies:
		return precImplies
	case *Iff:
		return precIff
	case *Exists, *Forall:
		return precQuant
	default:
		panic(fmt.Sprintf("mtl: prec: unknown node %T", f))
	}
}

// render prints f, parenthesizing it when its precedence is below the
// minimum the context requires.
func render(f Formula, min int) string {
	s := bare(f)
	if prec(f) < min {
		return "(" + s + ")"
	}
	return s
}

func bare(f Formula) string {
	switch n := f.(type) {
	case Truth:
		if n.Bool {
			return "true"
		}
		return "false"
	case *Atom:
		var b strings.Builder
		b.WriteString(n.Rel)
		b.WriteByte('(')
		for i, t := range n.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.String())
		}
		b.WriteByte(')')
		return b.String()
	case *Cmp:
		return n.L.String() + " " + n.Op.String() + " " + n.R.String()
	case *Not:
		return "not " + render(n.F, precUnary)
	case *And:
		// Left-assoc chain: left child may sit at the same level.
		return render(n.L, precAnd) + " and " + render(n.R, precAnd+1)
	case *Or:
		return render(n.L, precOr) + " or " + render(n.R, precOr+1)
	case *Implies:
		// Right-assoc: right child may sit at the same level.
		return render(n.L, precImplies+1) + " -> " + render(n.R, precImplies)
	case *Iff:
		return render(n.L, precIff) + " <-> " + render(n.R, precIff+1)
	case *Exists:
		return "exists " + strings.Join(n.Vars, ", ") + ": " + render(n.F, precQuant)
	case *Forall:
		return "forall " + strings.Join(n.Vars, ", ") + ": " + render(n.F, precQuant)
	case *Prev:
		return "prev" + n.I.String() + " " + render(n.F, precUnary)
	case *Once:
		return "once" + n.I.String() + " " + render(n.F, precUnary)
	case *Always:
		return "always" + n.I.String() + " " + render(n.F, precUnary)
	case *Since:
		return render(n.L, precSince) + " since" + n.I.String() + " " + render(n.R, precSince+1)
	case *LeadsTo:
		return render(n.L, precSince) + " leadsto" + n.I.String() + " " + render(n.R, precSince+1)
	default:
		panic(fmt.Sprintf("mtl: bare: unknown node %T", f))
	}
}
