// Package naive implements the baseline checker the paper's method is
// measured against: it stores the entire timestamped history as full
// state snapshots and evaluates Past MTL semantics directly, walking
// backwards through the history at every check. Memoization keeps a
// single check polynomial, but both its space and its per-transaction
// time grow with history length — exactly the costs bounded history
// encoding eliminates.
package naive

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"rtic/internal/check"
	"rtic/internal/chronicle"
	"rtic/internal/engine"
	"rtic/internal/fol"
	"rtic/internal/mtl"
	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/storage"
)

// historyStore is the storage layer behind the checker: full snapshots
// (the default) or the checkpointed delta log.
type historyStore interface {
	Commit(t uint64, tx *storage.Transaction) error
	Len() int
	Time(i int) uint64
	State(i int) *storage.State
	Size() int
}

// Checker is the full-history reference checker.
type Checker struct {
	schema      *schema.Schema
	hist        historyStore
	constraints []*check.Constraint

	evalMemo  map[evalKey]*fol.Bindings
	testMemo  map[testKey]bool
	leadsMemo map[*mtl.LeadsTo]mtl.Formula

	obs *obs.Observer
}

// leadsToMonitor caches the normalized violation form of a deadline
// obligation so memoization keys stay stable across tests.
func (c *Checker) leadsToMonitor(n *mtl.LeadsTo) mtl.Formula {
	if f, ok := c.leadsMemo[n]; ok {
		return f
	}
	f := mtl.Normalize(&mtl.Not{F: n})
	c.leadsMemo[n] = f
	return f
}

type evalKey struct {
	f mtl.Formula
	j int
}

type testKey struct {
	f   mtl.Formula
	j   int
	env string
}

// New returns an empty checker over s, storing full state snapshots.
func New(s *schema.Schema) *Checker {
	return newWith(s, chronicle.NewSnapshotHistory(s))
}

// NewCheckpointed returns a checker whose history is stored as a delta
// log with a full snapshot every interval commits — much less memory
// than New at the cost of state reconstruction on lookups. Answers are
// identical.
func NewCheckpointed(s *schema.Schema, interval int) *Checker {
	return newWith(s, chronicle.NewCheckpointedHistory(s, interval))
}

func newWith(s *schema.Schema, hist historyStore) *Checker {
	return &Checker{
		schema:    s,
		hist:      hist,
		evalMemo:  make(map[evalKey]*fol.Bindings),
		testMemo:  make(map[testKey]bool),
		leadsMemo: make(map[*mtl.LeadsTo]mtl.Formula),
	}
}

// AddConstraint installs a compiled constraint. Constraints added after
// states have been committed only apply to subsequent states.
func (c *Checker) AddConstraint(con *check.Constraint) error {
	for _, existing := range c.constraints {
		if existing.Name == con.Name {
			return fmt.Errorf("naive: duplicate constraint %q", con.Name)
		}
	}
	c.constraints = append(c.constraints, con)
	return nil
}

// Len reports the number of committed states.
func (c *Checker) Len() int { return c.hist.Len() }

// HistoryBytes estimates the memory held by the stored history — the
// baseline's space cost in the experiments.
func (c *Checker) HistoryBytes() int { return c.hist.Size() }

// State returns the current (latest) database state, or the empty
// instance before the first commit. Callers must not mutate it.
func (c *Checker) State() *storage.State {
	if c.hist.Len() == 0 {
		return storage.NewState(c.schema)
	}
	return c.hist.State(c.hist.Len() - 1)
}

// SetObserver attaches (or detaches, with nil) the instrumentation
// sinks, keeping the full-history baseline comparable with the
// incremental engine: same commit/constraint metrics; the aux-bytes
// gauge reports the stored history's footprint instead.
func (c *Checker) SetObserver(o *obs.Observer) {
	c.obs = o
	if m, _ := o.Parts(); m != nil {
		// The naive route checks sequentially; publish the pool width so
		// dashboards read a truthful 1 rather than a stale value.
		m.ParallelWorkers.Set(1)
	}
}

// StepBatch commits a sequence of transactions one at a time; the naive
// route has no amortizable per-commit overhead.
func (c *Checker) StepBatch(steps []engine.Step) ([][]check.Violation, error) {
	return engine.SerialBatch(c.Step, steps)
}

// Step commits a transaction at time t and checks every constraint in
// the resulting state, returning all violations.
func (c *Checker) Step(t uint64, tx *storage.Transaction) ([]check.Violation, error) {
	m, tr := c.obs.Parts()
	if m == nil && tr == nil {
		return c.step(t, tx, nil, nil)
	}
	start := time.Now()
	vs, err := c.step(t, tx, m, tr)
	d := time.Since(start)
	if m != nil {
		if err != nil {
			m.CommitErrors.Inc()
		} else {
			m.Commits.Inc()
			m.CommitSeconds.Observe(d.Seconds())
			m.AuxEntries.Set(int64(c.hist.Len()))
			m.AuxBytes.Set(int64(c.hist.Size()))
		}
	}
	if tr != nil {
		tr.Trace(obs.TraceEvent{Op: obs.OpStep, Time: t, Duration: d, Err: err})
	}
	return vs, err
}

func (c *Checker) step(t uint64, tx *storage.Transaction, m *obs.Metrics, tr obs.Tracer) ([]check.Violation, error) {
	if err := c.hist.Commit(t, tx); err != nil {
		return nil, err
	}
	i := c.hist.Len() - 1
	var out []check.Violation
	for _, con := range c.constraints {
		var c0 time.Time
		if m != nil || tr != nil {
			c0 = time.Now()
		}
		b, err := c.evalAt(con.Denial, i)
		var vs []check.Violation
		if err != nil {
			err = fmt.Errorf("naive: constraint %s at state %d: %w", con.Name, i, err)
		} else {
			vs, err = check.FromBindings(con, i, t, b)
		}
		if m != nil {
			m.ConstraintSeconds.With(con.Name).Observe(time.Since(c0).Seconds())
			m.Violations.With(con.Name).Add(uint64(len(vs)))
		}
		if tr != nil {
			tr.Trace(obs.TraceEvent{
				Op: obs.OpConstraintCheck, Detail: con.Name,
				Time: t, Duration: time.Since(c0), Err: err,
			})
		}
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

// TestAt decides an arbitrary formula (sugar connectives included) at
// state j under env; exposed for the cross-checker property tests.
func (c *Checker) TestAt(f mtl.Formula, j int, env fol.Env) (bool, error) {
	if j < 0 || j >= c.hist.Len() {
		return false, fmt.Errorf("naive: state index %d out of range [0,%d)", j, c.hist.Len())
	}
	return c.testAt(f, j, env)
}

// EvalAt enumerates the satisfying bindings of an enumerable kernel
// formula at state j; exposed for the cross-checker property tests.
func (c *Checker) EvalAt(f mtl.Formula, j int) (*fol.Bindings, error) {
	if j < 0 || j >= c.hist.Len() {
		return nil, fmt.Errorf("naive: state index %d out of range [0,%d)", j, c.hist.Len())
	}
	return c.evalAt(f, j)
}

func (c *Checker) evalAt(f mtl.Formula, j int) (*fol.Bindings, error) {
	key := evalKey{f: f, j: j}
	if b, ok := c.evalMemo[key]; ok {
		return b, nil
	}
	ev := fol.NewEvaluator(c.hist.State(j), &oracle{c: c, i: j})
	b, err := ev.Eval(f)
	if err != nil {
		return nil, err
	}
	c.evalMemo[key] = b
	return b, nil
}

func (c *Checker) testAt(f mtl.Formula, j int, env fol.Env) (bool, error) {
	key := testKey{f: f, j: j, env: envKey(env)}
	if v, ok := c.testMemo[key]; ok {
		return v, nil
	}
	ev := fol.NewEvaluator(c.hist.State(j), &oracle{c: c, i: j})
	v, err := ev.Test(f, env)
	if err != nil {
		return false, err
	}
	c.testMemo[key] = v
	return v, nil
}

func envKey(env fol.Env) string {
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		vk := env[n].Key()
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(len(vk)))
		b.WriteByte(':')
		b.WriteString(vk)
		b.WriteByte(';')
	}
	return b.String()
}

// oracle answers temporal nodes at history index i by direct recursion
// over earlier states — the textbook semantics.
type oracle struct {
	c *Checker
	i int
}

func (o *oracle) Enumerate(f mtl.Formula) (*fol.Bindings, error) {
	switch n := f.(type) {
	case *mtl.Prev:
		return o.enumPrev(n)
	case *mtl.Once:
		return o.enumOnce(n)
	case *mtl.Since:
		return o.enumSince(n)
	default:
		return nil, fmt.Errorf("naive: cannot enumerate %T", f)
	}
}

func (o *oracle) enumPrev(n *mtl.Prev) (*fol.Bindings, error) {
	if o.i == 0 {
		return fol.NewBindings(mtl.FreeVars(n.F)), nil
	}
	gap := o.c.hist.Time(o.i) - o.c.hist.Time(o.i-1)
	if !n.I.Contains(gap) {
		return fol.NewBindings(mtl.FreeVars(n.F)), nil
	}
	return o.c.evalAt(n.F, o.i-1)
}

func (o *oracle) enumOnce(n *mtl.Once) (*fol.Bindings, error) {
	now := o.c.hist.Time(o.i)
	out := fol.NewBindings(mtl.FreeVars(n.F))
	for j := o.i; j >= 0; j-- {
		d := now - o.c.hist.Time(j)
		if d > n.I.Upper() {
			break // distances only grow as j decreases
		}
		if !n.I.Contains(d) {
			continue
		}
		b, err := o.c.evalAt(n.F, j)
		if err != nil {
			return nil, err
		}
		var uerr error
		out, uerr = fol.Union(out, b)
		if uerr != nil {
			return nil, uerr
		}
	}
	return out, nil
}

func (o *oracle) enumSince(n *mtl.Since) (*fol.Bindings, error) {
	now := o.c.hist.Time(o.i)
	lvars := mtl.FreeVars(n.L)
	vars := mtl.FreeVars(n)
	out := fol.NewBindings(vars)
	for j := o.i; j >= 0; j-- {
		d := now - o.c.hist.Time(j)
		if d > n.I.Upper() {
			break
		}
		if !n.I.Contains(d) {
			continue
		}
		cand, err := o.c.evalAt(n.R, j)
		if err != nil {
			return nil, err
		}
		var addErr error
		cand.Each(func(env fol.Env) bool {
			ok, err := out.Contains(env)
			if err != nil {
				addErr = err
				return false
			}
			if ok {
				return true // already a witness via a later j
			}
			hold, err := o.lHoldsBetween(n.L, lvars, env, j)
			if err != nil {
				addErr = err
				return false
			}
			if hold {
				if err := out.Add(env); err != nil {
					addErr = err
					return false
				}
			}
			return true
		})
		if addErr != nil {
			return nil, addErr
		}
	}
	return out, nil
}

// lHoldsBetween reports whether L holds under env at every state k with
// j < k ≤ i.
func (o *oracle) lHoldsBetween(l mtl.Formula, lvars []string, env fol.Env, j int) (bool, error) {
	sub := restrict(env, lvars)
	for k := j + 1; k <= o.i; k++ {
		ok, err := o.c.testAt(l, k, sub)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func (o *oracle) Test(f mtl.Formula, env fol.Env) (bool, error) {
	now := o.c.hist.Time(o.i)
	switch n := f.(type) {
	case *mtl.Prev:
		if o.i == 0 {
			return false, nil
		}
		gap := now - o.c.hist.Time(o.i-1)
		if !n.I.Contains(gap) {
			return false, nil
		}
		return o.c.testAt(n.F, o.i-1, restrict(env, mtl.FreeVars(n.F)))
	case *mtl.Once:
		sub := restrict(env, mtl.FreeVars(n.F))
		for j := o.i; j >= 0; j-- {
			d := now - o.c.hist.Time(j)
			if d > n.I.Upper() {
				break
			}
			if !n.I.Contains(d) {
				continue
			}
			ok, err := o.c.testAt(n.F, j, sub)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case *mtl.Always:
		sub := restrict(env, mtl.FreeVars(n.F))
		for j := o.i; j >= 0; j-- {
			d := now - o.c.hist.Time(j)
			if d > n.I.Upper() {
				break
			}
			if !n.I.Contains(d) {
				continue
			}
			ok, err := o.c.testAt(n.F, j, sub)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	case *mtl.Since:
		subR := restrict(env, mtl.FreeVars(n.R))
		lvars := mtl.FreeVars(n.L)
		for j := o.i; j >= 0; j-- {
			d := now - o.c.hist.Time(j)
			if d > n.I.Upper() {
				break
			}
			if !n.I.Contains(d) {
				continue
			}
			ok, err := o.c.testAt(n.R, j, subR)
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			hold, err := o.lHoldsBetween(n.L, lvars, env, j)
			if err != nil {
				return false, err
			}
			if hold {
				return true, nil
			}
		}
		return false, nil
	case *mtl.LeadsTo:
		// The obligation holds iff its past-form violation monitor
		// (see mtl.Normalize) does not.
		viol := o.c.leadsToMonitor(n)
		bad, err := o.c.testAt(viol, o.i, env)
		return !bad, err
	default:
		return false, fmt.Errorf("naive: cannot test %T as temporal node", f)
	}
}

func restrict(env fol.Env, vars []string) fol.Env {
	out := make(fol.Env, len(vars))
	for _, v := range vars {
		if val, ok := env[v]; ok {
			out[v] = val
		}
	}
	return out
}
