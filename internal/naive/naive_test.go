package naive

import (
	"testing"

	"rtic/internal/check"
	"rtic/internal/fol"
	"rtic/internal/mtl"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

func hrSchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("hire", 1).
		Relation("fire", 1).
		Relation("p", 1).
		Relation("q", 1).
		MustBuild()
}

func ins(rel string, v int64) *storage.Transaction {
	return storage.NewTransaction().Insert(rel, tuple.Ints(v))
}

func del(rel string, v int64) *storage.Transaction {
	return storage.NewTransaction().Delete(rel, tuple.Ints(v))
}

func mustStep(t *testing.T, c *Checker, tm uint64, tx *storage.Transaction) []check.Violation {
	t.Helper()
	vs, err := c.Step(tm, tx)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

func TestRehireViolationWindow(t *testing.T) {
	s := hrSchema()
	c := New(s)
	con, err := check.Parse("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}

	// t=0: employee 7 fired.
	if vs := mustStep(t, c, 0, ins("fire", 7)); len(vs) != 0 {
		t.Fatalf("unexpected violations %v", vs)
	}
	// t=100: rehired within a year — violation, with witness e=7.
	// (fire tuple deleted in the same transaction: once still sees state 0.)
	tx := storage.NewTransaction().Delete("fire", tuple.Ints(7)).Insert("hire", tuple.Ints(7))
	vs := mustStep(t, c, 100, tx)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want 1", vs)
	}
	if vs[0].Constraint != "no_quick_rehire" || !vs[0].Binding[0].Equal(value.Int(7)) {
		t.Fatalf("violation = %+v", vs[0])
	}
	// hire(7) persists into later states, and the t=0 firing is still
	// inside the 365 window, so the violation persists too.
	tx = storage.NewTransaction().Insert("hire", tuple.Ints(8))
	vs = mustStep(t, c, 200, tx)
	if len(vs) != 1 || !vs[0].Binding[0].Equal(value.Int(7)) {
		t.Fatalf("violations = %v, want persisting e=7", vs)
	}
	// Once the firing ages out of the window the same state is legal
	// again — the metric bound, not the event, drives the violation.
	if vs := mustStep(t, c, 366, storage.NewTransaction()); len(vs) != 0 {
		t.Fatalf("violation should age out: %v", vs)
	}
}

func TestPrevSemantics(t *testing.T) {
	s := hrSchema()
	c := New(s)
	mustStep(t, c, 0, ins("p", 1)) // state 0: p(1)
	mustStep(t, c, 5, del("p", 1)) // state 1: empty
	mustStep(t, c, 6, ins("p", 2)) // state 2: p(2)

	cases := []struct {
		src  string
		j    int
		env  fol.Env
		want bool
	}{
		{"prev p(x)", 1, fol.Env{"x": value.Int(1)}, true},
		{"prev p(x)", 2, fol.Env{"x": value.Int(1)}, false},
		{"prev p(x)", 0, fol.Env{"x": value.Int(1)}, false}, // no predecessor
		{"prev[5,5] p(x)", 1, fol.Env{"x": value.Int(1)}, true},
		{"prev[1,4] p(x)", 1, fol.Env{"x": value.Int(1)}, false}, // gap is 5
		{"prev[1,1] p(x)", 2, fol.Env{"x": value.Int(2)}, false}, // p(2) not in state 1
		{"prev prev p(x)", 2, fol.Env{"x": value.Int(1)}, true},
	}
	for _, cse := range cases {
		got, err := c.TestAt(mtl.MustParse(cse.src), cse.j, cse.env)
		if err != nil {
			t.Fatalf("TestAt(%q, %d): %v", cse.src, cse.j, err)
		}
		if got != cse.want {
			t.Errorf("TestAt(%q, %d, %v) = %v, want %v", cse.src, cse.j, cse.env, got, cse.want)
		}
	}
}

func TestOnceAndAlwaysSemantics(t *testing.T) {
	s := hrSchema()
	c := New(s)
	mustStep(t, c, 0, ins("p", 1))  // state 0, t=0: p(1)
	mustStep(t, c, 10, del("p", 1)) // state 1, t=10: {}
	mustStep(t, c, 20, ins("q", 1)) // state 2, t=20: q(1)
	env := fol.Env{"x": value.Int(1)}

	cases := []struct {
		src  string
		j    int
		want bool
	}{
		{"once p(x)", 2, true},
		{"once[0,10] p(x)", 2, false}, // p(1) held at distance 20
		{"once[20,20] p(x)", 2, true},
		{"once[0,10] p(x)", 1, true}, // distance 10
		{"once q(x)", 1, false},
		{"always not q(x)", 1, true},
		{"always not q(x)", 2, false},
		{"always[0,5] q(x)", 2, true},   // only state 2 in window
		{"always[0,15] q(x)", 2, false}, // state 1 in window lacks q(1)
		{"once[1,*] p(x)", 0, false},    // reflexive only at distance 0
		{"once p(x)", 0, true},
	}
	for _, cse := range cases {
		got, err := c.TestAt(mtl.MustParse(cse.src), cse.j, env)
		if err != nil {
			t.Fatalf("TestAt(%q, %d): %v", cse.src, cse.j, err)
		}
		if got != cse.want {
			t.Errorf("TestAt(%q, %d) = %v, want %v", cse.src, cse.j, got, cse.want)
		}
	}
}

func TestSinceSemantics(t *testing.T) {
	s := hrSchema()
	c := New(s)
	// state 0 t=0: q(1)           -- the anchor
	// state 1 t=1: q deleted, p(1) inserted
	// state 2 t=2: p(1) persists
	// state 3 t=3: p deleted
	mustStep(t, c, 0, ins("q", 1))
	mustStep(t, c, 1, storage.NewTransaction().Delete("q", tuple.Ints(1)).Insert("p", tuple.Ints(1)))
	mustStep(t, c, 2, storage.NewTransaction())
	mustStep(t, c, 3, del("p", 1))
	env := fol.Env{"x": value.Int(1)}

	cases := []struct {
		src  string
		j    int
		want bool
	}{
		{"p(x) since q(x)", 0, true},  // j = i = 0, reflexive
		{"p(x) since q(x)", 1, true},  // anchor at 0, p at 1
		{"p(x) since q(x)", 2, true},  // p at 1 and 2
		{"p(x) since q(x)", 3, false}, // p fails at 3
		{"p(x) since[2,2] q(x)", 2, true},
		{"p(x) since[3,3] q(x)", 2, false}, // no state at that distance
		{"p(x) since[0,1] q(x)", 2, false}, // anchor too old
		{"q(x) since q(x)", 1, false},      // q fails at state 1 after anchor 0
	}
	for _, cse := range cases {
		got, err := c.TestAt(mtl.MustParse(cse.src), cse.j, env)
		if err != nil {
			t.Fatalf("TestAt(%q, %d): %v", cse.src, cse.j, err)
		}
		if got != cse.want {
			t.Errorf("TestAt(%q, %d) = %v, want %v", cse.src, cse.j, got, cse.want)
		}
	}
}

func TestEnumerateMatchesTest(t *testing.T) {
	s := hrSchema()
	c := New(s)
	mustStep(t, c, 0, ins("q", 1))
	mustStep(t, c, 4, storage.NewTransaction().Insert("q", tuple.Ints(2)).Insert("p", tuple.Ints(1)))
	mustStep(t, c, 9, ins("p", 2))

	for _, src := range []string{"once q(x)", "once[0,5] q(x)", "p(x) since q(x)", "prev q(x)"} {
		f := mtl.Normalize(mtl.MustParse(src))
		for j := 0; j < c.Len(); j++ {
			b, err := c.EvalAt(f, j)
			if err != nil {
				t.Fatalf("EvalAt(%q, %d): %v", src, j, err)
			}
			for _, v := range []int64{1, 2, 3} {
				env := fol.Env{"x": value.Int(v)}
				want, err := c.TestAt(f, j, env)
				if err != nil {
					t.Fatal(err)
				}
				got, err := b.Contains(env)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("%q at %d for x=%d: enumerate=%v test=%v", src, j, v, got, want)
				}
			}
		}
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	s := hrSchema()
	c := New(s)
	mustStep(t, c, 0, ins("p", 1))
	mustStep(t, c, 3, ins("q", 1))
	mustStep(t, c, 7, del("p", 1))

	srcs := []string{
		"always (p(x) -> q(x))",
		"not (p(x) since q(x))",
		"forall y: q(y) -> once p(y)",
		"(once[0,5] p(x)) <-> q(x)",
		"not always[0,4] p(x)",
		"prev (p(x) or q(x))",
	}
	for _, src := range srcs {
		f := mtl.MustParse(src)
		g := mtl.Normalize(f)
		for j := 0; j < c.Len(); j++ {
			for _, v := range []int64{1, 2} {
				env := fol.Env{"x": value.Int(v)}
				a, err := c.TestAt(f, j, env)
				if err != nil {
					t.Fatalf("TestAt(%q): %v", src, err)
				}
				b, err := c.TestAt(g, j, env)
				if err != nil {
					t.Fatalf("TestAt(nnf %q): %v", src, err)
				}
				if a != b {
					t.Errorf("nnf changed semantics of %q at state %d x=%d: %v vs %v", src, j, v, a, b)
				}
			}
		}
	}
}

func TestCheckerErrors(t *testing.T) {
	s := hrSchema()
	c := New(s)
	con, _ := check.Parse("c1", "hire(e) -> not once fire(e)", s)
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(con); err == nil {
		t.Fatal("duplicate constraint accepted")
	}
	if _, err := c.Step(5, ins("p", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(5, ins("p", 2)); err == nil {
		t.Fatal("non-increasing timestamp accepted")
	}
	if _, err := c.TestAt(mtl.MustParse("p(x)"), 9, fol.Env{}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := c.EvalAt(mtl.MustParse("p(x)"), -1); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestHistoryBytesGrow(t *testing.T) {
	s := hrSchema()
	c := New(s)
	mustStep(t, c, 0, ins("p", 1))
	b1 := c.HistoryBytes()
	mustStep(t, c, 1, ins("p", 2))
	if c.HistoryBytes() <= b1 {
		t.Fatal("history bytes must grow with states")
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	s := hrSchema()
	c := New(s)
	mustStep(t, c, 0, ins("p", 1))
	mustStep(t, c, 3, ins("q", 1))
	mustStep(t, c, 7, del("p", 1))

	srcs := []string{
		"p(x) and (true or q(x))",
		"not (q(x) and false)",
		"true since p(x)",
		"once (p(x) and true)",
		"(p(x) since false) or q(x)",
		"prev (false or p(x))",
		"once[2,5] true",
	}
	for _, src := range srcs {
		f := mtl.Normalize(mtl.MustParse(src))
		g := mtl.Simplify(f)
		for j := 0; j < c.Len(); j++ {
			for _, v := range []int64{1, 2} {
				env := fol.Env{"x": value.Int(v)}
				a, err := c.TestAt(f, j, env)
				if err != nil {
					t.Fatalf("TestAt(%q): %v", src, err)
				}
				b, err := c.TestAt(g, j, env)
				if err != nil {
					t.Fatalf("TestAt(simplified %q): %v", src, err)
				}
				if a != b {
					t.Errorf("Simplify changed semantics of %q at state %d x=%d: %v vs %v", src, j, v, a, b)
				}
			}
		}
	}
}

func TestCheckpointedCheckerEquivalent(t *testing.T) {
	s := hrSchema()
	full := New(s)
	cp := NewCheckpointed(s, 5)
	src := "hire(e) -> not once[0,50] fire(e)"
	for _, c := range []*Checker{full, cp} {
		con, err := check.Parse("c", src, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddConstraint(con); err != nil {
			t.Fatal(err)
		}
	}
	tm := uint64(0)
	for i := int64(0); i < 60; i++ {
		tm += 2
		var tx *storage.Transaction
		if i%2 == 0 {
			tx = ins("fire", i%7)
		} else {
			tx = storage.NewTransaction().
				Delete("fire", tuple.Ints((i-1)%7)).
				Insert("hire", tuple.Ints(i%7))
		}
		a, err := full.Step(tm, tx.Clone())
		if err != nil {
			t.Fatal(err)
		}
		b, err := cp.Step(tm, tx)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("step %d: snapshot %d violations vs checkpointed %d", i, len(a), len(b))
		}
	}
	if cp.HistoryBytes() >= full.HistoryBytes() {
		t.Fatalf("checkpointed store (%dB) not smaller than snapshots (%dB)",
			cp.HistoryBytes(), full.HistoryBytes())
	}
}
