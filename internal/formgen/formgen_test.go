package formgen

import (
	"math/rand"
	"testing"

	"rtic/internal/check"
	"rtic/internal/mtl"
)

func TestConstraintAlwaysCompiles(t *testing.T) {
	s := Schema()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		src := Constraint(r)
		if _, err := check.Parse("c", src, s); err != nil {
			t.Fatalf("iteration %d: generated uncompilable constraint %q: %v", i, src, err)
		}
	}
}

func TestConstraintDiversity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	seen := map[string]bool{}
	temporalCount := 0
	for i := 0; i < 300; i++ {
		src := Constraint(r)
		seen[src] = true
		f := mtl.MustParse(src)
		if mtl.TemporalDepth(f) > 0 {
			temporalCount++
		}
	}
	if len(seen) < 100 {
		t.Fatalf("only %d distinct constraints in 300 draws", len(seen))
	}
	if temporalCount < 200 {
		t.Fatalf("only %d/300 constraints are temporal", temporalCount)
	}
}

func TestConstraintDeterministic(t *testing.T) {
	a := Constraint(rand.New(rand.NewSource(7)))
	b := Constraint(rand.New(rand.NewSource(7)))
	if a != b {
		t.Fatalf("same seed produced %q and %q", a, b)
	}
}
