// Package formgen generates random *safe* constraints for the
// cross-checker equivalence fuzzers. Candidates are drawn from a grammar
// biased toward the interesting corners (nested temporal operators,
// negated views, metric windows of every shape, deadline obligations)
// and filtered through the real constraint compiler, so every returned
// constraint is installable on all three checking engines.
package formgen

import (
	"fmt"
	"math/rand"

	"rtic/internal/check"
	"rtic/internal/schema"
)

// Schema is the vocabulary generated constraints range over.
func Schema() *schema.Schema {
	return schema.NewBuilder().
		Relation("p", 1).
		Relation("q", 1).
		Relation("r", 2).
		MustBuild()
}

// Constraint returns a random safe constraint (surface syntax) over
// Schema(). It always terminates: after a bounded number of rejected
// candidates it falls back to a known-safe template.
func Constraint(r *rand.Rand) string {
	s := Schema()
	for attempt := 0; attempt < 32; attempt++ {
		src := candidate(r)
		if _, err := check.Parse("fuzz", src, s); err == nil {
			return src
		}
	}
	return "p(x) -> not once[0,3] q(x)"
}

func interval(r *rand.Rand) string {
	switch r.Intn(5) {
	case 0:
		return "" // [0,∞)
	case 1:
		return fmt.Sprintf("[%d,*]", 1+r.Intn(3))
	case 2:
		lo := r.Intn(3)
		return fmt.Sprintf("[%d,%d]", lo, lo+r.Intn(5))
	case 3:
		return fmt.Sprintf("[0,%d]", 1+r.Intn(6))
	default:
		return fmt.Sprintf("[%d]", r.Intn(4))
	}
}

// guard produces an enumerable positive antecedent and reports the
// variables it binds.
func guard(r *rand.Rand) (string, []string) {
	switch r.Intn(5) {
	case 0:
		return "p(x)", []string{"x"}
	case 1:
		return "q(x)", []string{"x"}
	case 2:
		return "r(x, y)", []string{"x", "y"}
	case 3:
		return "p(x) and q(x)", []string{"x"}
	default:
		return "r(x, y) and p(x)", []string{"x", "y"}
	}
}

// atom produces a (possibly negated) literal over the bound variables.
func atom(r *rand.Rand, vars []string, allowNeg bool) string {
	v := vars[r.Intn(len(vars))]
	var a string
	switch r.Intn(4) {
	case 0:
		a = "p(" + v + ")"
	case 1:
		a = "q(" + v + ")"
	case 2:
		if len(vars) >= 2 {
			a = "r(" + vars[0] + ", " + vars[1] + ")"
		} else {
			a = "r(" + v + ", " + v + ")"
		}
	default:
		a = fmt.Sprintf("%s = %d", v, r.Intn(3))
	}
	if allowNeg && r.Intn(3) == 0 {
		return "not " + a
	}
	return a
}

// anchor produces an enumerable formula binding exactly vars (so it can
// serve as a temporal argument or since right-hand side).
func anchor(r *rand.Rand, vars []string) string {
	var base string
	if len(vars) >= 2 {
		base = "r(" + vars[0] + ", " + vars[1] + ")"
	} else {
		switch r.Intn(2) {
		case 0:
			base = "p(" + vars[0] + ")"
		default:
			base = "q(" + vars[0] + ")"
		}
	}
	// Optionally conjoin a filter.
	if r.Intn(3) == 0 {
		base = "(" + base + " and " + atom(r, vars, true) + ")"
	}
	return base
}

// temporal produces a temporal subformula over vars.
func temporal(r *rand.Rand, vars []string, depth int) string {
	switch r.Intn(6) {
	case 0:
		return "once" + interval(r) + " " + operand(r, vars, depth)
	case 1:
		return "prev" + interval(r) + " " + operand(r, vars, depth)
	case 2:
		return "always" + interval(r) + " " + atom(r, vars, true)
	case 3:
		return "(" + atom(r, vars, true) + " since" + interval(r) + " " + operand(r, vars, depth) + ")"
	case 4:
		return "(" + anchor(r, vars) + " since" + interval(r) + " " + operand(r, vars, depth) + ")"
	default:
		return "not once" + interval(r) + " " + operand(r, vars, depth)
	}
}

// operand is an enumerable temporal argument: an anchor, or (below the
// depth limit) a nested temporal formula over an anchor.
func operand(r *rand.Rand, vars []string, depth int) string {
	if depth <= 0 || r.Intn(2) == 0 {
		return anchor(r, vars)
	}
	switch r.Intn(3) {
	case 0:
		return "once" + interval(r) + " " + operand(r, vars, depth-1)
	case 1:
		return "prev" + interval(r) + " " + operand(r, vars, depth-1)
	default:
		return "(" + anchor(r, vars) + " and " + temporal(r, vars, depth-1) + ")"
	}
}

// candidate builds one random constraint.
func candidate(r *rand.Rand) string {
	g, vars := guard(r)
	switch r.Intn(8) {
	case 0: // deadline obligation
		return fmt.Sprintf("%s leadsto[0,%d] %s", g, 1+r.Intn(5), anchor(r, vars))
	case 1: // closed constraint
		return fmt.Sprintf("not (exists x: p(x) and %s)", temporal(r, []string{"x"}, 1))
	case 2: // conjunction of temporal consequents
		return fmt.Sprintf("%s -> %s and %s", g, temporal(r, vars, 1), temporal(r, vars, 1))
	case 3: // disjunctive consequent
		return fmt.Sprintf("%s -> %s or %s", g, temporal(r, vars, 1), temporal(r, vars, 1))
	case 4: // guarded literal consequent (non-temporal)
		return fmt.Sprintf("%s -> %s", g, atom(r, vars, true))
	case 5: // nested consequent
		return fmt.Sprintf("%s -> %s", g, temporal(r, vars, 2))
	case 6: // negated guard chain
		return fmt.Sprintf("%s -> not %s", g, temporal(r, vars, 1))
	default:
		return fmt.Sprintf("%s -> %s", g, temporal(r, vars, 1))
	}
}
