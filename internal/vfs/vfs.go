// Package vfs abstracts the filesystem operations of the durability
// stack — WAL segments, checkpoints, atomic renames — behind a small
// interface so that live I/O faults (ENOSPC, EIO, short writes, fsync
// failures, crash-after-op-N) can be injected deterministically in
// tests while production code runs on the real filesystem. The
// indirection is free on the hot path: the WAL already holds its open
// file behind an interface, so only open/rename/remove/stat go through
// FS, and those happen at open, checkpoint and re-arm time, never per
// commit.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// File is the subset of *os.File the durability layer needs: appends
// and positional reads for the WAL, sequential reads for checkpoint
// loading, truncation for torn-tail rollback, and fsync.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	// Name returns the path the file was opened with.
	Name() string
	// Stat reports the file's metadata (the WAL sizes itself from it).
	Stat() (fs.FileInfo, error)
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	// Close closes the file.
	Close() error
}

// FS is the filesystem surface of the durability layer. Implementations
// must be safe for concurrent use.
type FS interface {
	// OpenFile opens name with the given os.O_* flags and permissions.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically moves oldpath to newpath, replacing any
	// existing file at newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// ReadDir lists the named directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat reports metadata for the named file.
	Stat(name string) (fs.FileInfo, error)
}

// OS is the real filesystem — the default everywhere a vfs.FS is
// accepted, so existing call sites behave exactly as before.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return os.ReadDir(name)
}
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// CreateTemp creates a new exclusive file in dir whose name starts with
// pattern. Unlike os.CreateTemp the suffix counts up from 0, so the
// name sequence is deterministic given the directory's contents — a
// requirement for reproducing fault schedules op for op.
func CreateTemp(fsys FS, dir, pattern string) (File, error) {
	for i := 0; i < 10000; i++ {
		name := filepath.Join(dir, fmt.Sprintf("%s%d", pattern, i))
		f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if err == nil {
			return f, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("vfs: no free temp name for %s* in %s", pattern, dir)
}

// SyncDir fsyncs the directory entry so a just-renamed file survives a
// power cut. Filesystems that refuse to fsync directories (EINVAL or
// not-supported) are tolerated — the rename itself is atomic — but a
// real I/O failure is returned: a lost directory entry is exactly the
// crash window atomic rotation exists to close.
func SyncDir(fsys FS, dir string) error {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) {
			return nil
		}
		return serr
	}
	return cerr
}
