package vfs

import (
	"errors"
	"io/fs"
	"math/rand"
	"sort"
	"sync"
	"syscall"
)

// ErrCrashed is the error every operation returns after a Crash fault
// fired: from the filesystem's point of view the process is dead, and
// nothing written afterwards reaches disk.
var ErrCrashed = errors.New("vfs: simulated crash")

// Op classifies a faultable filesystem operation. The FaultFS counts
// one op per call in the order they arrive, so a schedule naming op N
// hits the same call on every run of a deterministic workload.
type Op uint8

const (
	OpAny Op = iota // matches every operation class
	OpOpen
	OpWrite
	OpSync
	OpTruncate
	OpClose
	OpRename
	OpRemove
	OpReadDir
	OpStat
)

// String returns the syscall-flavored name of the op class.
func (o Op) String() string {
	switch o {
	case OpAny:
		return "any"
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpClose:
		return "close"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpReadDir:
		return "readdir"
	case OpStat:
		return "stat"
	default:
		return "op(?)"
	}
}

// Kind is the fault class an injection fires.
type Kind uint8

const (
	// ENOSPC fails the operation with syscall.ENOSPC (disk full).
	ENOSPC Kind = iota
	// EIO fails the operation with syscall.EIO (generic I/O error).
	EIO
	// ShortWrite makes a write accept only a prefix of the buffer and
	// report it without an error — the torn-frame signature the WAL's
	// rollback path exists for. On a non-write op it degrades to EIO.
	ShortWrite
	// SyncFailure fails an fsync with syscall.EIO; the file itself
	// stays healthy afterwards (the transient-fsync-error case that
	// must not be retried blindly). On a non-sync op it degrades to EIO.
	SyncFailure
	// Crash latches the whole filesystem: the faulted operation and
	// every one after it fail with ErrCrashed, and nothing more is
	// written. Recovery is modeled by reopening the real files through
	// a fresh FS.
	Crash
	kindCount // one past the last kind, for schedule generation
)

// String names the fault class.
func (k Kind) String() string {
	switch k {
	case ENOSPC:
		return "enospc"
	case EIO:
		return "eio"
	case ShortWrite:
		return "short-write"
	case SyncFailure:
		return "sync-failure"
	case Crash:
		return "crash"
	default:
		return "kind(?)"
	}
}

// Injection schedules one fault: when the FaultFS's operation counter
// reaches AtOp (1-based) and the operation's class matches Op, Kind
// fires. A non-matching class lets the operation through untouched —
// with Op left as OpAny the injection fires unconditionally, which is
// what seeded schedules use.
type Injection struct {
	AtOp uint64
	Op   Op
	Kind Kind
}

// Schedule derives a deterministic fault plan from a seed: n distinct
// operation indices in [firstOp, firstOp+window) with fault kinds drawn
// from a seeded generator. Crash faults are rarer than the transient
// kinds (a crash ends the schedule's useful life), and at most one
// crash is emitted. The same (seed, firstOp, window, n) always yields
// the same plan.
func Schedule(seed int64, firstOp, window uint64, n int) []Injection {
	rng := rand.New(rand.NewSource(seed))
	if window == 0 || n <= 0 {
		return nil
	}
	if uint64(n) > window {
		n = int(window)
	}
	used := make(map[uint64]bool, n)
	injs := make([]Injection, 0, n)
	crashed := false
	for len(injs) < n {
		at := firstOp + uint64(rng.Int63n(int64(window)))
		if used[at] {
			continue
		}
		used[at] = true
		var k Kind
		switch r := rng.Intn(10); {
		case r < 3:
			k = ENOSPC
		case r < 5:
			k = EIO
		case r < 7:
			k = ShortWrite
		case r < 9:
			k = SyncFailure
		default:
			k = Crash
		}
		if k == Crash {
			if crashed {
				k = EIO
			} else {
				crashed = true
			}
		}
		injs = append(injs, Injection{AtOp: at, Kind: k})
	}
	sort.Slice(injs, func(i, j int) bool { return injs[i].AtOp < injs[j].AtOp })
	return injs
}

// Fired records one injection that actually fired, for test assertions
// and failure reports.
type Fired struct {
	AtOp uint64
	Op   Op
	Kind Kind
	Path string
}

// FaultFS wraps an FS and injects faults from a schedule, counting
// every faultable operation (opens, writes, syncs, truncates, closes,
// renames, removes, directory lists, stats — reads are always
// reliable) so failures are reproducible run to run. Safe for
// concurrent use; the count orders concurrent ops in arrival order.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	ops     uint64
	plan    map[uint64]Injection
	crashed bool
	fired   []Fired
}

// NewFaultFS wraps inner with the given fault plan. Injections sharing
// an op index keep the last one.
func NewFaultFS(inner FS, plan ...Injection) *FaultFS {
	f := &FaultFS{inner: inner, plan: make(map[uint64]Injection, len(plan))}
	for _, inj := range plan {
		f.plan[inj.AtOp] = inj
	}
	return f
}

// Inject adds injections to a running plan (ops already counted keep
// their outcome).
func (f *FaultFS) Inject(plan ...Injection) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, inj := range plan {
		f.plan[inj.AtOp] = inj
	}
}

// OpCount reports how many faultable operations have been observed.
func (f *FaultFS) OpCount() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Fired returns the injections that actually fired, in op order.
func (f *FaultFS) Fired() []Fired {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Fired(nil), f.fired...)
}

// Crashed reports whether a Crash fault has latched the filesystem.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// check counts one operation and decides its fate: err non-nil fails
// it, short true tears a write (only ever set for OpWrite).
func (f *FaultFS) check(op Op, path string) (short bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.crashed {
		return false, &fs.PathError{Op: op.String(), Path: path, Err: ErrCrashed}
	}
	inj, ok := f.plan[f.ops]
	if !ok || (inj.Op != OpAny && inj.Op != op) {
		return false, nil
	}
	f.fired = append(f.fired, Fired{AtOp: f.ops, Op: op, Kind: inj.Kind, Path: path})
	fail := func(errno error) (bool, error) {
		return false, &fs.PathError{Op: op.String(), Path: path, Err: errno}
	}
	switch inj.Kind {
	case ENOSPC:
		return fail(syscall.ENOSPC)
	case EIO:
		return fail(syscall.EIO)
	case ShortWrite:
		if op == OpWrite {
			return true, nil
		}
		return fail(syscall.EIO)
	case SyncFailure:
		if op == OpSync {
			return fail(syscall.EIO)
		}
		return fail(syscall.EIO)
	case Crash:
		f.crashed = true
		return false, &fs.PathError{Op: op.String(), Path: path, Err: ErrCrashed}
	default:
		return fail(syscall.EIO)
	}
}

// OpenFile counts one open; a fresh fault-wrapped file is returned on
// success.
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if _, err := f.check(OpOpen, name); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

// Rename counts one rename.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.check(OpRename, oldpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove counts one remove.
func (f *FaultFS) Remove(name string) error {
	if _, err := f.check(OpRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// ReadDir counts one directory list.
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if _, err := f.check(OpReadDir, name); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

// Stat counts one stat.
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if _, err := f.check(OpStat, name); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

// faultFile routes a file's mutating operations through the parent
// FaultFS's schedule. Reads (Read, ReadAt, Stat, Name) pass through
// untouched: the fault model is about losing writes, not lying reads —
// read-side damage is the WAL checksum layer's department.
type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	short, err := f.fs.check(OpWrite, f.Name())
	if err != nil {
		return 0, err
	}
	if short && len(p) > 0 {
		// Accept a strict prefix and report it without an error, as a
		// real filesystem can on a full disk: the caller's n != len(p)
		// check is what must catch this.
		n := len(p) - (len(p)+1)/2
		wrote, werr := f.File.Write(p[:n])
		if werr != nil {
			return wrote, werr
		}
		return wrote, nil
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if _, err := f.fs.check(OpSync, f.Name()); err != nil {
		return err
	}
	return f.File.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if _, err := f.fs.check(OpTruncate, f.Name()); err != nil {
		return err
	}
	return f.File.Truncate(size)
}

func (f *faultFile) Close() error {
	if _, err := f.fs.check(OpClose, f.Name()); err != nil {
		return err
	}
	return f.File.Close()
}
