package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
)

func openAppend(t *testing.T, fsys FS, path string) File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFaultENOSPCAndHeal fires a disk-full error at exactly one write
// and verifies the op before and after it succeed — transient faults
// must not stick.
func TestFaultENOSPCAndHeal(t *testing.T) {
	ffs := NewFaultFS(OS, Injection{AtOp: 3, Op: OpWrite, Kind: ENOSPC})
	f := openAppend(t, ffs, filepath.Join(t.TempDir(), "x")) // op 1
	if _, err := f.Write([]byte("ok")); err != nil {         // op 2
		t.Fatal(err)
	}
	_, err := f.Write([]byte("full")) // op 3: fails
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if _, err := f.Write([]byte("healed")); err != nil { // op 4
		t.Fatalf("write after transient ENOSPC: %v", err)
	}
	fired := ffs.Fired()
	if len(fired) != 1 || fired[0].AtOp != 3 || fired[0].Kind != ENOSPC {
		t.Fatalf("fired = %+v", fired)
	}
}

// TestFaultShortWrite verifies a torn write accepts a strict prefix and
// reports no error — the caller's n != len(p) check must catch it.
func TestFaultShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	ffs := NewFaultFS(OS, Injection{AtOp: 2, Kind: ShortWrite})
	f := openAppend(t, ffs, path)
	n, err := f.Write([]byte("0123456789"))
	if err != nil {
		t.Fatalf("short write returned error %v", err)
	}
	if n <= 0 || n >= 10 {
		t.Fatalf("short write accepted %d of 10 bytes; want a strict prefix", n)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != n {
		t.Fatalf("file holds %d bytes, write reported %d", len(raw), n)
	}
}

// TestFaultCrashLatches verifies a crash fault fails its op and every
// later one, across files and the FS itself, and that nothing written
// after the crash reaches disk.
func TestFaultCrashLatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	ffs := NewFaultFS(OS, Injection{AtOp: 3, Kind: Crash})
	f := openAppend(t, ffs, path)                        // op 1
	if _, err := f.Write([]byte("before")); err != nil { // op 2
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) { // op 3: crash
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if _, err := f.Write([]byte("after")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if _, err := ffs.OpenFile(filepath.Join(dir, "y"), os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash: %v", err)
	}
	if err := ffs.Rename(path, path+".2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename after crash: %v", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() = false after a crash fault")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "before" {
		t.Fatalf("post-crash disk contents %q, want only pre-crash bytes", raw)
	}
}

// TestFaultOpClassFilter verifies an injection with a class filter lets
// non-matching ops through.
func TestFaultOpClassFilter(t *testing.T) {
	ffs := NewFaultFS(OS, Injection{AtOp: 2, Op: OpSync, Kind: EIO})
	f := openAppend(t, ffs, filepath.Join(t.TempDir(), "x")) // op 1
	if _, err := f.Write([]byte("w")); err != nil {          // op 2: write, filter is sync
		t.Fatalf("filtered injection fired on the wrong class: %v", err)
	}
	if err := f.Sync(); err != nil { // op 3: past the injection
		t.Fatal(err)
	}
	if len(ffs.Fired()) != 0 {
		t.Fatalf("fired = %+v, want none", ffs.Fired())
	}
}

// TestScheduleDeterministic pins that a seed fully determines the plan
// and that plans stay inside their op window with at most one crash.
func TestScheduleDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := Schedule(seed, 10, 100, 8)
		b := Schedule(seed, 10, 100, 8)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ:\n%+v\n%+v", seed, a, b)
		}
		if len(a) != 8 {
			t.Fatalf("seed %d: %d injections, want 8", seed, len(a))
		}
		crashes := 0
		seen := map[uint64]bool{}
		for i, inj := range a {
			if inj.AtOp < 10 || inj.AtOp >= 110 {
				t.Fatalf("seed %d: op %d outside [10,110)", seed, inj.AtOp)
			}
			if seen[inj.AtOp] {
				t.Fatalf("seed %d: duplicate op %d", seed, inj.AtOp)
			}
			seen[inj.AtOp] = true
			if i > 0 && a[i-1].AtOp > inj.AtOp {
				t.Fatalf("seed %d: plan not sorted", seed)
			}
			if inj.Kind == Crash {
				crashes++
			}
		}
		if crashes > 1 {
			t.Fatalf("seed %d: %d crash faults, want at most 1", seed, crashes)
		}
	}
}

// TestFaultOpCountMatchesSequence verifies the op counter advances once
// per faultable operation so schedules can target exact calls.
func TestFaultOpCountMatchesSequence(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	f := openAppend(t, ffs, filepath.Join(dir, "x"))             // 1
	f.Write([]byte("a"))                                         // 2
	f.Sync()                                                     // 3
	f.Truncate(0)                                                // 4
	f.Close()                                                    // 5
	ffs.Stat(filepath.Join(dir, "x"))                            // 6
	ffs.ReadDir(dir)                                             // 7
	ffs.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y")) // 8
	ffs.Remove(filepath.Join(dir, "y"))                          // 9
	if got := ffs.OpCount(); got != 9 {
		t.Fatalf("OpCount = %d, want 9", got)
	}
}
