package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOSRoundTrip drives the OS implementation through the operations
// the durability layer performs: create, append, sync, stat, rename,
// remove, list, directory sync.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.log")
	f, err := OS.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 5 {
		t.Fatalf("size = %d, want 5", st.Size())
	}
	var buf [5]byte
	if _, err := f.ReadAt(buf[:], 0); err != nil {
		t.Fatal(err)
	}
	if string(buf[:]) != "hello" {
		t.Fatalf("read back %q", buf)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	moved := filepath.Join(dir, "b.log")
	if err := OS.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old path still stats: %v", err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "b.log" {
		t.Fatalf("dir entries = %v", ents)
	}
	if err := SyncDir(OS, dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := OS.Remove(moved); err != nil {
		t.Fatal(err)
	}
}

// TestCreateTempDeterministic pins the property fault schedules rely
// on: temp names count up from 0, so the op sequence of a checkpoint is
// identical run to run.
func TestCreateTempDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, err := CreateTemp(OS, dir, "snap.tmp-")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if got, want := filepath.Base(a.Name()), "snap.tmp-0"; got != want {
		t.Fatalf("first temp name %q, want %q", got, want)
	}
	b, err := CreateTemp(OS, dir, "snap.tmp-")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got, want := filepath.Base(b.Name()), "snap.tmp-1"; got != want {
		t.Fatalf("second temp name %q, want %q", got, want)
	}
}
