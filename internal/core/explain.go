package core

import (
	"fmt"
	"strings"

	"rtic/internal/check"
	"rtic/internal/fol"
	"rtic/internal/mtl"
)

// Explanations answer "why was this violation flagged?" from the
// auxiliary encoding: for every temporal subformula of the violated
// constraint's denial that the violating binding reaches, the checker
// reports whether it held and — for once/since nodes — the in-window
// anchor timestamps that witnessed it. Because the encoding holds only
// the current state's answers, a violation can be explained only while
// the checker still sits at the state that produced it.

// SkipAction names the strategy the delta-driven check path chose for
// one constraint in one commit.
type SkipAction string

const (
	// ActionSkipped: the commit touched nothing the denial reads; the
	// previous answer was reused without evaluation.
	ActionSkipped SkipAction = "skipped"
	// ActionSeeded: the answer was re-derived semi-naively from the
	// previous answer and the commit's delta.
	ActionSeeded SkipAction = "seeded"
	// ActionPlanned: the compiled query plan ran in full.
	ActionPlanned SkipAction = "planned"
	// ActionTreeWalk: the denial's shape defeated plan compilation; the
	// tree-walking evaluator ran in full.
	ActionTreeWalk SkipAction = "tree-walk"
)

// SkipInfo records what the latest planned commit did for one
// constraint, and why — the commit-level counterpart of Explain.
type SkipInfo struct {
	Constraint string
	Action     SkipAction
	Reason     string
}

// String renders the decision for logs and CLIs.
func (s SkipInfo) String() string {
	if s.Reason == "" {
		return fmt.Sprintf("%s: %s", s.Constraint, s.Action)
	}
	return fmt.Sprintf("%s: %s (%s)", s.Constraint, s.Action, s.Reason)
}

// LastSkips returns the per-constraint strategy record of the latest
// commit, in constraint order. Nil until the first commit in planned
// mode; callers must not mutate the slice.
func (c *Checker) LastSkips() []SkipInfo { return c.lastSkips }

// Evidence describes one temporal subformula under the violating binding.
type Evidence struct {
	// Formula is the temporal subformula as written in the denial.
	Formula string
	// Negated reports whether the subformula occurs under negation in
	// the denial — i.e. the violation required its *absence*.
	Negated bool
	// Holds is the subformula's truth under the binding at the
	// violating state.
	Holds bool
	// Times are the in-window anchor timestamps witnessing a once/since
	// node (empty for prev nodes and unsatisfied nodes).
	Times []uint64
}

// Explanation is the evidence trail of one violation.
type Explanation struct {
	Violation  check.Violation
	Constraint string // the constraint formula as written
	Denial     string // the compiled denial
	Evidence   []Evidence
}

// String renders the explanation for logs and CLIs.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n  constraint: %s\n  denial:     %s\n", e.Violation.String(), e.Constraint, e.Denial)
	for _, ev := range e.Evidence {
		role := "required"
		if ev.Negated {
			role = "required absent"
		}
		fmt.Fprintf(&b, "  %s: %s (holds=%v", role, ev.Formula, ev.Holds)
		if len(ev.Times) > 0 {
			fmt.Fprintf(&b, ", witnessed at t=%v", ev.Times)
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// Explain builds the evidence trail for a violation produced by the most
// recent Step. It errors if the checker has moved past the violating
// state (the encoding no longer answers for it) or if the constraint is
// unknown.
func (c *Checker) Explain(v check.Violation) (*Explanation, error) {
	if !c.started || v.Time != c.now {
		return nil, fmt.Errorf("core: violation at time %d cannot be explained at time %d; explain immediately after the Step that reported it", v.Time, c.now)
	}
	var con *check.Constraint
	for _, cand := range c.constraints {
		if cand.Name == v.Constraint {
			con = cand
			break
		}
	}
	if con == nil {
		return nil, fmt.Errorf("core: unknown constraint %q", v.Constraint)
	}
	if len(v.Vars) != len(v.Binding) {
		return nil, fmt.Errorf("core: violation binding arity mismatch")
	}
	env := make(fol.Env, len(v.Vars))
	for i, name := range v.Vars {
		env[name] = v.Binding[i]
	}

	ex := &Explanation{
		Violation:  v,
		Constraint: con.Formula.String(),
		Denial:     con.Denial.String(),
	}
	if err := c.explainWalk(con.Denial, env, false, ex); err != nil {
		return nil, err
	}
	return ex, nil
}

// explainWalk visits the denial's temporal nodes with polarity tracking,
// collecting evidence for every node whose free variables the violating
// binding covers (nodes under quantifiers introduce fresh variables and
// are skipped).
func (c *Checker) explainWalk(f mtl.Formula, env fol.Env, negated bool, ex *Explanation) error {
	switch n := f.(type) {
	case mtl.Truth, *mtl.Atom, *mtl.Cmp:
		return nil
	case *mtl.Not:
		return c.explainWalk(n.F, env, !negated, ex)
	case *mtl.And:
		if err := c.explainWalk(n.L, env, negated, ex); err != nil {
			return err
		}
		return c.explainWalk(n.R, env, negated, ex)
	case *mtl.Or:
		if err := c.explainWalk(n.L, env, negated, ex); err != nil {
			return err
		}
		return c.explainWalk(n.R, env, negated, ex)
	case *mtl.Exists:
		return nil // quantified variables are not bound by the witness
	case *mtl.Prev, *mtl.Once, *mtl.Since:
		for _, v := range mtl.FreeVars(f) {
			if _, ok := env[v]; !ok {
				return nil // not coverable by the witness binding
			}
		}
		node, ok := c.byNode[f]
		if !ok {
			return fmt.Errorf("core: explain: no auxiliary state for %q", f.String())
		}
		restricted := make(fol.Env, 4)
		for _, v := range mtl.FreeVars(f) {
			restricted[v] = env[v]
		}
		holds, err := node.test(restricted, c.now)
		if err != nil {
			return err
		}
		ev := Evidence{Formula: f.String(), Negated: negated, Holds: holds}
		if sn, ok := node.(*sinceNode); ok && holds {
			ev.Times = sn.witnesses(restricted, c.now)
		}
		ex.Evidence = append(ex.Evidence, ev)
		// Do not descend: nested temporal nodes answer at *their*
		// evaluation points, which the outer node's aux already folds in.
		return nil
	default:
		return fmt.Errorf("core: explain: unexpected node %T", f)
	}
}

// witnesses returns the in-window anchor timestamps of a binding.
func (s *sinceNode) witnesses(env fol.Env, now uint64) []uint64 {
	row, err := s.rowOf(env)
	if err != nil {
		return nil
	}
	e, ok := s.entries[row.Key()]
	if !ok {
		return nil
	}
	var out []uint64
	for _, tm := range e.times {
		if s.iv.Contains(now - tm) {
			out = append(out, tm)
		}
	}
	return out
}
