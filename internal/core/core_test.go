package core

import (
	"strings"
	"testing"

	"rtic/internal/check"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

func hrSchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("hire", 1).
		Relation("fire", 1).
		Relation("p", 1).
		Relation("q", 1).
		MustBuild()
}

func ins(rel string, v int64) *storage.Transaction {
	return storage.NewTransaction().Insert(rel, tuple.Ints(v))
}

func del(rel string, v int64) *storage.Transaction {
	return storage.NewTransaction().Delete(rel, tuple.Ints(v))
}

func mustStep(t *testing.T, c *Checker, tm uint64, tx *storage.Transaction) []check.Violation {
	t.Helper()
	vs, err := c.Step(tm, tx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return vs
}

func addConstraint(t *testing.T, c *Checker, s *schema.Schema, name, src string) {
	t.Helper()
	con, err := check.Parse(name, src, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
}

func TestRehireScenario(t *testing.T) {
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")

	if vs := mustStep(t, c, 0, ins("fire", 7)); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
	tx := storage.NewTransaction().Delete("fire", tuple.Ints(7)).Insert("hire", tuple.Ints(7))
	vs := mustStep(t, c, 100, tx)
	if len(vs) != 1 || !vs[0].Binding[0].Equal(value.Int(7)) {
		t.Fatalf("violations = %v, want e=7", vs)
	}
	// Still violating while the firing is in the window…
	if vs := mustStep(t, c, 300, storage.NewTransaction()); len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	// …and legal again once it ages out.
	if vs := mustStep(t, c, 366, storage.NewTransaction()); len(vs) != 0 {
		t.Fatalf("violations = %v, want none after window", vs)
	}
}

func TestDeadlineScenario(t *testing.T) {
	// Payment must follow a reservation made at most 3 time units ago.
	s := schema.NewBuilder().Relation("reserved", 1).Relation("paid", 1).MustBuild()
	c := New(s)
	addConstraint(t, c, s, "pay_in_time", "paid(tk) -> once[0,3] reserved(tk)")

	mustStep(t, c, 0, storage.NewTransaction().Insert("reserved", tuple.Ints(1)))
	// Paid at distance 2: fine.
	if vs := mustStep(t, c, 2, storage.NewTransaction().Insert("paid", tuple.Ints(1))); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
	// A payment with no reservation in window: violation.
	tx := storage.NewTransaction().
		Delete("paid", tuple.Ints(1)).
		Insert("paid", tuple.Ints(2))
	vs := mustStep(t, c, 3, tx)
	if len(vs) != 1 || !vs[0].Binding[0].Equal(value.Int(2)) {
		t.Fatalf("violations = %v, want tk=2", vs)
	}
}

func TestSinceChainScenario(t *testing.T) {
	// Once an alarm is raised it must be acknowledged before it can be
	// cleared: clear(a) may only happen while ack(a) has held since
	// raise(a).
	s := schema.NewBuilder().Relation("raisd", 1).Relation("ack", 1).Relation("clear", 1).MustBuild()
	c := New(s)
	addConstraint(t, c, s, "ack_before_clear", "clear(a) -> (ack(a) since raisd(a))")

	mustStep(t, c, 1, ins("raisd", 5))
	mustStep(t, c, 2, ins("ack", 5))
	// ack has held since the raise (reflexive anchor at state 0? no —
	// anchor at state 0 needs ack at states 1..now; ack was missing at
	// state… let's check: raise at t=1 (state 0), ack from t=2 (state 1).
	// Chain from anchor j=0 requires ack at states 1,2,… — ack(5) holds
	// from state 1 on, so clear at t=3 is legal.
	if vs := mustStep(t, c, 3, ins("clear", 5)); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
	// A clear with no prior raise: violation.
	tx := storage.NewTransaction().
		Delete("clear", tuple.Ints(5)).
		Insert("clear", tuple.Ints(6))
	vs := mustStep(t, c, 4, tx)
	if len(vs) != 1 || !vs[0].Binding[0].Equal(value.Int(6)) {
		t.Fatalf("violations = %v, want a=6", vs)
	}
}

func TestAddConstraintErrors(t *testing.T) {
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c1", "hire(e) -> not once fire(e)")
	con, _ := check.Parse("c1", "hire(e) -> not once fire(e)", s)
	if err := c.AddConstraint(con); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate err = %v", err)
	}
	mustStep(t, c, 1, ins("p", 1))
	con2, _ := check.Parse("c2", "hire(e) -> not once fire(e)", s)
	if err := c.AddConstraint(con2); err == nil || !strings.Contains(err.Error(), "after the history started") {
		t.Fatalf("late add err = %v", err)
	}
}

func TestStepErrors(t *testing.T) {
	s := hrSchema()
	c := New(s)
	if _, err := c.Step(5, ins("zz", 1)); err == nil {
		t.Fatal("invalid transaction accepted")
	}
	if _, err := c.Step(5, ins("p", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(5, ins("p", 2)); err == nil {
		t.Fatal("equal timestamp accepted")
	}
	if _, err := c.Step(4, ins("p", 2)); err == nil {
		t.Fatal("decreasing timestamp accepted")
	}
}

func TestBoundedSpaceFiniteWindow(t *testing.T) {
	// With window [0,10] and gap 1, each tracked binding holds at most
	// 11 timestamps no matter how long the history runs.
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not once[0,10] q(x)")
	tm := uint64(1)
	for i := 0; i < 500; i++ {
		tx := storage.NewTransaction()
		if i%2 == 0 {
			tx.Insert("q", tuple.Ints(1))
		} else {
			tx.Delete("q", tuple.Ints(1))
		}
		if _, err := c.Step(tm, tx); err != nil {
			t.Fatal(err)
		}
		tm++
		st := c.Stats()
		if st.Timestamps > 11 {
			t.Fatalf("step %d: %d timestamps stored, window admits at most 11", i, st.Timestamps)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedSpaceUnboundedWindow(t *testing.T) {
	// With an unbounded window each binding keeps exactly one timestamp.
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not once q(x)")
	tm := uint64(1)
	for i := int64(0); i < 100; i++ {
		if _, err := c.Step(tm, ins("q", i%5)); err != nil {
			t.Fatal(err)
		}
		tm++
		st := c.Stats()
		if st.Timestamps > 5 {
			t.Fatalf("step %d: %d timestamps for 5 bindings", i, st.Timestamps)
		}
	}
}

func TestStatsShape(t *testing.T) {
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not (once[0,9] q(x) or prev q(x))")
	mustStep(t, c, 1, ins("q", 1))
	st := c.Stats()
	if st.Nodes != 2 {
		t.Fatalf("Nodes = %d, want 2 (once + prev)", st.Nodes)
	}
	if st.Bytes <= 0 || st.Entries == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.PerNode) != 2 {
		t.Fatalf("PerNode = %v", st.PerNode)
	}
}

func TestNestedTemporal(t *testing.T) {
	// p now, and q held in the state before the state where r held,
	// within 10 units: exercise prev under once.
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not once[0,10] prev q(x)")

	mustStep(t, c, 1, ins("q", 3))
	mustStep(t, c, 2, del("q", 3)) // prev q(3) holds here
	vs := mustStep(t, c, 3, ins("p", 3))
	// once[0,10] prev q(3): prev q(3) held at state 1 (t=2), distance 1.
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want the nested witness", vs)
	}
}

func TestClosedConstraintViolation(t *testing.T) {
	s := schema.NewBuilder().Relation("alarm", 0).MustBuild()
	c := New(s)
	con, err := check.Parse("never_alarm", "not alarm()", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	vs, err := c.Step(1, storage.NewTransaction().Insert("alarm", tuple.Of()))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || len(vs[0].Vars) != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestStateAccessors(t *testing.T) {
	s := hrSchema()
	c := New(s)
	mustStep(t, c, 7, ins("p", 1))
	if c.Len() != 1 || c.Now() != 7 {
		t.Fatalf("Len=%d Now=%d", c.Len(), c.Now())
	}
	ok, err := c.State().Contains("p", tuple.Ints(1))
	if err != nil || !ok {
		t.Fatalf("state lost insert: %v %v", ok, err)
	}
}
