package core_test

import (
	"fmt"

	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// The incremental checker end to end: install a constraint, commit
// transactions, inspect the bounded auxiliary state.
func ExampleChecker() {
	s := schema.NewBuilder().
		Relation("hire", 1).
		Relation("fire", 1).
		MustBuild()
	c := core.New(s)
	con, _ := check.Parse("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)", s)
	_ = c.AddConstraint(con)

	_, _ = c.Step(0, storage.NewTransaction().Insert("fire", tuple.Ints(7)))
	vs, _ := c.Step(100, storage.NewTransaction().
		Delete("fire", tuple.Ints(7)).
		Insert("hire", tuple.Ints(7)))
	for _, v := range vs {
		fmt.Println(v)
	}
	st := c.Stats()
	fmt.Printf("aux: %d node(s), %d entries, %d timestamps\n", st.Nodes, st.Entries, st.Timestamps)
	// Output:
	// no_quick_rehire violated at state 1 (time 100) by e=7
	// aux: 1 node(s), 1 entries, 1 timestamps
}
