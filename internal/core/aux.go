package core

import (
	"fmt"
	"sort"

	"rtic/internal/fol"
	"rtic/internal/mtl"
	"rtic/internal/plan"
	"rtic/internal/tuple"
)

// auxNode is the per-temporal-subformula state of the bounded history
// encoding. Each committed transaction drives every node through two
// phases:
//
//   - phase A brings the node's *answer* up to the new state i, using
//     only the previous auxiliary state and evaluations in state i
//     (children are updated first, so nested temporal subformulas
//     already answer for state i);
//   - phase B computes and then commits state the node must carry to
//     state i+1 (only prev nodes defer work to phase B: their stored
//     enumeration must keep answering for state i while other nodes —
//     and the constraint check — still run against state i).
//
// Nodes additionally maintain their answer *as a set* across commits:
// enumerate at the current time returns the maintained set without
// rebuilding it, dirty reports whether the answer changed in the latest
// commit, and answerDelta exposes the exact rows that entered and left
// it — the inputs of the checker's delta-driven constraint evaluation.
type auxNode interface {
	formula() mtl.Formula
	phaseA(sc *stepCtx, ev *fol.Evaluator, t uint64) error
	phaseBCompute(sc *stepCtx, ev *fol.Evaluator, t uint64) error
	phaseBCommit(t uint64)
	enumerate(now uint64) (*fol.Bindings, error)
	test(env fol.Env, now uint64) (bool, error)
	// testKey decides the node under the binding whose tuple.Key encoding
	// (aligned with the node's sorted free variables) is key — the
	// allocation-free probe of plan execution.
	testKey(key []byte, now uint64) (bool, error)
	// dirty reports whether the node's answer changed in the last commit.
	dirty() bool
	// answerDelta returns the rows that entered and left the answer in
	// the last commit. exact is false when the node does not track the
	// delta row-by-row (prev nodes); callers must then fall back to full
	// evaluation whenever the node is dirty.
	answerDelta() (added, removed []tuple.Tuple, exact bool)
	stats() NodeStats
}

// NodeStats describes the auxiliary storage of one temporal subformula.
type NodeStats struct {
	Formula    string
	Entries    int // bindings currently tracked
	Timestamps int // timestamps stored across all bindings
	Bytes      int // estimated footprint
}

// nodeDeps is the read-set every node derives at registration time: the
// relations its formulas read directly, its child nodes, and whether the
// refresh fast path is sound for it (no universal quantification — see
// domainDependent). srcPlan holds the compiled query plan of the node's
// update formula when its shape is plannable; nil falls back to the
// tree-walking evaluator.
type nodeDeps struct {
	srcRels  []string
	children []auxNode
	domDep   bool
}

// clean reports whether nothing the node reads changed in this commit.
func (d *nodeDeps) clean(sc *stepCtx) bool {
	return sc != nil && sc.planned && !d.domDep &&
		!sc.relsChanged(d.srcRels) && !anyDirty(d.children)
}

// prevNode implements ⊖_I φ: it stores the enumeration of φ in the
// previous state together with the previous timestamp — one state's
// worth of bindings, never more.
type prevNode struct {
	n     *mtl.Prev
	fvars []string
	deps  nodeDeps
	fPlan *plan.Plan

	stored     *fol.Bindings
	storedTime uint64
	has        bool

	pending     *fol.Bindings
	pendingTime uint64

	// lastServed is the answer the node served in the previous commit;
	// comparing against the current answer yields the dirty bit. Prev
	// nodes do not track row-level answer deltas (answerDelta is
	// inexact): the answer can swap wholesale every step.
	lastServed *fol.Bindings
	dirtyBit   bool
}

func newPrevNode(n *mtl.Prev) *prevNode {
	return &prevNode{n: n, fvars: mtl.FreeVars(n.F)}
}

func (p *prevNode) formula() mtl.Formula { return p.n }

// phaseA computes the dirty bit: the answer served for this state vs the
// previous one. The stored enumeration itself only advances in phase B.
func (p *prevNode) phaseA(sc *stepCtx, ev *fol.Evaluator, t uint64) error {
	cur, err := p.enumerate(t)
	if err != nil {
		return err
	}
	p.dirtyBit = !bindingsEqual(p.lastServed, cur)
	p.lastServed = cur
	return nil
}

func bindingsEqual(a, b *fol.Bindings) bool {
	if a == b {
		return true
	}
	if a == nil {
		return b.Empty()
	}
	if b == nil {
		return a.Empty()
	}
	return a.Equal(b)
}

func (p *prevNode) phaseBCompute(sc *stepCtx, ev *fol.Evaluator, t uint64) error {
	// Refresh fast path: when nothing φ reads changed in this commit,
	// φ's enumeration in the new state equals the stored one — alias it
	// (bindings are immutable once published).
	if p.has && p.deps.clean(sc) {
		p.pending, p.pendingTime = p.stored, t
		return nil
	}
	var b *fol.Bindings
	var err error
	if p.fPlan != nil && sc != nil && sc.planned {
		b, err = p.fPlan.Eval(sc.c.cur, sc.orc, nil)
	} else {
		b, err = ev.Eval(p.n.F)
		if err == nil {
			// The evaluator may hand back a child node's maintained
			// answer (φ a bare temporal subformula); that set mutates in
			// place on later commits, so snapshot before retaining.
			b = b.Clone()
		}
	}
	if err != nil {
		return fmt.Errorf("core: prev %q: %w", p.n.String(), err)
	}
	p.pending, p.pendingTime = b, t
	return nil
}

func (p *prevNode) phaseBCommit(uint64) {
	p.stored, p.storedTime, p.has = p.pending, p.pendingTime, true
	p.pending = nil
}

func (p *prevNode) enumerate(now uint64) (*fol.Bindings, error) {
	if !p.has || !p.n.I.Contains(now-p.storedTime) {
		return fol.NewBindings(p.fvars), nil
	}
	return p.stored, nil
}

func (p *prevNode) test(env fol.Env, now uint64) (bool, error) {
	if !p.has || !p.n.I.Contains(now-p.storedTime) {
		return false, nil
	}
	return p.stored.Contains(env)
}

func (p *prevNode) testKey(key []byte, now uint64) (bool, error) {
	if !p.has || !p.n.I.Contains(now-p.storedTime) {
		return false, nil
	}
	return p.stored.ContainsKeyBytes(key), nil
}

func (p *prevNode) dirty() bool { return p.dirtyBit }

func (p *prevNode) answerDelta() ([]tuple.Tuple, []tuple.Tuple, bool) {
	return nil, nil, false
}

func (p *prevNode) stats() NodeStats {
	s := NodeStats{Formula: p.n.String()}
	if p.has {
		s.Entries = p.stored.Len()
		s.Bytes = p.stored.Size() + 16
	}
	return s
}

// sinceEntry is the bounded history the checker keeps for one binding θ
// of a since/once subformula: the timestamps t_j at which the anchor ψ
// held with the chain φ unbroken since, pruned to the metric window
// (a single timestamp suffices when the window is unbounded above).
// inRB and keep cache the entry's last evaluated recurrence inputs
// (row ∈ ⟦ψ⟧? and θ ⊨ φ?) so commits that touch nothing the node reads
// can replay the recurrence without re-evaluating either formula.
type sinceEntry struct {
	row   tuple.Tuple
	times []uint64 // ascending
	inRB  bool
	keep  bool
	stamp uint64 // t+1 of the commit that created the entry
}

// sinceNode implements φ S_I ψ (and once_I ψ, with φ = true) via the
// recurrence S_i(θ) = (i ⊨θ φ ? S_{i−1}(θ) : ∅) ∪ (i ⊨θ ψ ? {t_i} : ∅).
type sinceNode struct {
	node  mtl.Formula // *mtl.Once or *mtl.Since
	iv    mtl.Interval
	left  mtl.Formula // Truth{true} for once
	right mtl.Formula
	vars  []string // fv(node), sorted; equals fv(right) by safety
	lvars []string

	deps      nodeDeps
	rightPlan *plan.Plan

	// noPrune disables the bounded-encoding pruning rules (the space
	// ablation); answers are unchanged, storage grows with history.
	noPrune bool

	entries map[string]*sinceEntry

	// The maintained answer: ans holds exactly the rows satisfied at
	// lastT (valid once primed), added/removed the rows that entered and
	// left it in the last commit. envBuf and keyBuf are single-goroutine
	// scratch (one goroutine updates a node per commit).
	ans     *fol.Bindings
	lastT   uint64
	primed  bool
	dirtied bool
	added   []tuple.Tuple
	removed []tuple.Tuple
	envBuf  fol.Env
	keyBuf  []byte
}

func newOnceNode(n *mtl.Once) (*sinceNode, error) {
	return newSinceLike(n, n.I, mtl.Truth{Bool: true}, n.F)
}

func newSinceNode(n *mtl.Since) (*sinceNode, error) {
	return newSinceLike(n, n.I, n.L, n.R)
}

func newSinceLike(node mtl.Formula, iv mtl.Interval, left, right mtl.Formula) (*sinceNode, error) {
	vars := mtl.FreeVars(node)
	rvars := mtl.FreeVars(right)
	if len(vars) != len(rvars) {
		return nil, fmt.Errorf("core: %q: binding space must be generated by the right-hand side (fv %v vs %v)",
			node.String(), vars, rvars)
	}
	for _, lv := range mtl.FreeVars(left) {
		if i := sort.SearchStrings(vars, lv); i >= len(vars) || vars[i] != lv {
			return nil, fmt.Errorf("core: %q: left-hand variable %q not bound by the right-hand side",
				node.String(), lv)
		}
	}
	return &sinceNode{
		node:    node,
		iv:      iv,
		left:    left,
		right:   right,
		vars:    vars,
		lvars:   mtl.FreeVars(left),
		entries: make(map[string]*sinceEntry),
		ans:     fol.NewBindings(vars),
	}, nil
}

func (s *sinceNode) formula() mtl.Formula { return s.node }

func (s *sinceNode) isOnce() bool {
	t, ok := s.left.(mtl.Truth)
	return ok && t.Bool
}

func (s *sinceNode) phaseA(sc *stepCtx, ev *fol.Evaluator, t uint64) error {
	s.added = s.added[:0]
	s.removed = s.removed[:0]

	// Refresh fast path: nothing the recurrence reads changed, so each
	// entry's cached inRB/keep inputs still hold — replay the recurrence
	// from the cache. Aging (times entering and leaving the metric
	// window) still runs, so answers stay exact.
	if s.primed && s.deps.clean(sc) {
		s.refresh(t)
		s.finish(t)
		return nil
	}

	for _, e := range s.entries {
		e.inRB = false
	}

	// Enumerate ⟦ψ⟧ in the new state: mark surviving entries, create
	// fresh anchors. The compiled plan streams rows without materializing
	// the binding set; the tree-walking evaluator is the fallback.
	newRow := func(row tuple.Tuple, key []byte) error {
		if e, ok := s.entries[string(key)]; ok {
			e.inRB = true
			return nil
		}
		e := &sinceEntry{row: row.Clone(), times: []uint64{t}, inRB: true, keep: true, stamp: t + 1}
		s.entries[string(key)] = e
		if s.iv.Contains(0) {
			if err := s.ans.AddRow(e.row); err != nil {
				return err
			}
			s.added = append(s.added, e.row)
		}
		return nil
	}
	if s.rightPlan != nil && sc != nil && sc.planned {
		var emitErr error
		err := s.rightPlan.Execute(sc.c.cur, sc.orc, nil, func(row tuple.Tuple) bool {
			s.keyBuf = row.AppendKeyTo(s.keyBuf[:0])
			if e := newRow(row, s.keyBuf); e != nil {
				emitErr = e
				return false
			}
			return true
		})
		if err == nil {
			err = emitErr
		}
		if err != nil {
			return fmt.Errorf("core: %q: %w", s.node.String(), err)
		}
	} else {
		rb, err := ev.Eval(s.right)
		if err != nil {
			return fmt.Errorf("core: %q: %w", s.node.String(), err)
		}
		if !sameStrings(rb.Vars(), s.vars) {
			return fmt.Errorf("core: %q: right-hand side bound %v, node needs %v",
				s.node.String(), rb.Vars(), s.vars)
		}
		var rowErr error
		rb.EachRow(func(row tuple.Tuple) bool {
			s.keyBuf = row.AppendKeyTo(s.keyBuf[:0])
			if e := newRow(row, s.keyBuf); e != nil {
				rowErr = e
				return false
			}
			return true
		})
		if rowErr != nil {
			return rowErr
		}
	}

	// Update surviving entries per the recurrence, re-evaluating the
	// chain φ, and maintain the answer set.
	once := s.isOnce()
	lPos := varPositions(s.vars, s.lvars)
	if s.envBuf == nil {
		s.envBuf = make(fol.Env, len(s.lvars)+1)
	}
	for key, e := range s.entries {
		keep := once
		if !once {
			for i, p := range lPos {
				s.envBuf[s.lvars[i]] = e.row[p]
			}
			ok, err := ev.Test(s.left, s.envBuf)
			if err != nil {
				return fmt.Errorf("core: %q: testing chain: %w", s.node.String(), err)
			}
			keep = ok
		}
		// Cache the chain's truth for the refresh fast path — fresh
		// anchors included: their recurrence ignores φ this commit (times
		// is just {t}), but the next clean commit replays from the cache.
		e.keep = keep
		if e.stamp == t+1 {
			continue // created above; times already [t], answer updated
		}
		if err := s.applyRecurrence(key, e, keep, t); err != nil {
			return err
		}
	}
	s.finish(t)
	return nil
}

// applyRecurrence replays one entry's recurrence step from keep/inRB,
// prunes, deletes empty entries, and maintains the answer set.
func (s *sinceNode) applyRecurrence(key string, e *sinceEntry, keep bool, t uint64) error {
	before := s.ans.ContainsKey(key)
	if !keep {
		e.times = e.times[:0]
	}
	if e.inRB {
		e.times = append(e.times, t)
	}
	s.prune(e, t)
	after := len(e.times) > 0 && s.satisfied(e, t)
	if len(e.times) == 0 {
		delete(s.entries, key)
	}
	if before && !after {
		s.ans.RemoveKey(key)
		s.removed = append(s.removed, e.row)
	} else if !before && after {
		if err := s.ans.AddRow(e.row); err != nil {
			return err
		}
		s.added = append(s.added, e.row)
	}
	return nil
}

// refresh replays the recurrence for every entry from the cached
// inRB/keep flags — no formula evaluation, no fresh anchors (an
// unchanged ⟦ψ⟧ cannot contain a row without an entry: every ⟦ψ⟧ row is
// an entry with inRB set, and inRB entries always retain the current
// timestamp and so are never deleted).
func (s *sinceNode) refresh(t uint64) {
	once := s.isOnce()
	for key, e := range s.entries {
		// applyRecurrence cannot error here: it only errors on AddRow of
		// a stable entry row, whose arity matched when first added.
		_ = s.applyRecurrence(key, e, once || e.keep, t)
	}
}

// finish seals the commit: answers now served for time t.
func (s *sinceNode) finish(t uint64) {
	s.lastT = t
	s.primed = true
	s.dirtied = len(s.added)+len(s.removed) > 0
}

// prune enforces the bounded history encoding: timestamps older than the
// upper window bound can never re-enter the window; with an unbounded
// window, satisfaction is monotone in age so the earliest timestamp
// subsumes all others.
func (s *sinceNode) prune(e *sinceEntry, now uint64) {
	if s.noPrune {
		return
	}
	if s.iv.Unbounded {
		if len(e.times) > 1 {
			e.times = e.times[:1]
		}
		return
	}
	cut := 0
	for cut < len(e.times) && now-e.times[cut] > s.iv.Hi {
		cut++
	}
	if cut > 0 {
		e.times = append(e.times[:0], e.times[cut:]...)
	}
}

func (s *sinceNode) phaseBCompute(*stepCtx, *fol.Evaluator, uint64) error { return nil }
func (s *sinceNode) phaseBCommit(uint64)                                  {}

func (s *sinceNode) satisfied(e *sinceEntry, now uint64) bool {
	for _, tm := range e.times {
		if s.iv.Contains(now - tm) {
			return true
		}
	}
	return false
}

func (s *sinceNode) enumerate(now uint64) (*fol.Bindings, error) {
	if s.primed && now == s.lastT {
		return s.ans, nil
	}
	out := fol.NewBindings(s.vars)
	for _, e := range s.entries {
		if s.satisfied(e, now) {
			if err := out.AddRow(e.row); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// rowOf builds the entry row for a full binding of the node's variables.
func (s *sinceNode) rowOf(env fol.Env) (tuple.Tuple, error) {
	row := make(tuple.Tuple, len(s.vars))
	for i, v := range s.vars {
		val, ok := env[v]
		if !ok {
			return nil, fmt.Errorf("core: test of %q misses variable %q", s.node.String(), v)
		}
		row[i] = val
	}
	return row, nil
}

func (s *sinceNode) test(env fol.Env, now uint64) (bool, error) {
	row, err := s.rowOf(env)
	if err != nil {
		return false, err
	}
	e, ok := s.entries[row.Key()]
	if !ok {
		return false, nil
	}
	return s.satisfied(e, now), nil
}

func (s *sinceNode) testKey(key []byte, now uint64) (bool, error) {
	if s.primed && now == s.lastT {
		return s.ans.ContainsKeyBytes(key), nil
	}
	e, ok := s.entries[string(key)]
	return ok && s.satisfied(e, now), nil
}

func (s *sinceNode) dirty() bool { return s.dirtied }

func (s *sinceNode) answerDelta() ([]tuple.Tuple, []tuple.Tuple, bool) {
	return s.added, s.removed, true
}

func (s *sinceNode) stats() NodeStats {
	st := NodeStats{Formula: s.node.String(), Entries: len(s.entries)}
	for _, e := range s.entries {
		st.Timestamps += len(e.times)
		st.Bytes += len(e.row.Key()) + e.row.Size() + 8*len(e.times) + 48
	}
	return st
}

// Invariants returns an error if the node's internal invariants are
// broken; the property tests call it after every step.
func (s *sinceNode) invariants(now uint64) error {
	if s.primed && now == s.lastT {
		sat := 0
		for key, e := range s.entries {
			if s.satisfied(e, now) {
				sat++
				if !s.ans.ContainsKey(key) {
					return fmt.Errorf("core: %q: maintained answer misses satisfied entry %s", s.node.String(), key)
				}
			} else if s.ans.ContainsKey(key) {
				return fmt.Errorf("core: %q: maintained answer retains unsatisfied entry %s", s.node.String(), key)
			}
		}
		if s.ans.Len() != sat {
			return fmt.Errorf("core: %q: maintained answer has %d rows, %d entries satisfied",
				s.node.String(), s.ans.Len(), sat)
		}
	}
	if s.noPrune {
		return nil // the ablation deliberately violates the space bounds
	}
	for key, e := range s.entries {
		if len(e.times) == 0 {
			return fmt.Errorf("core: %q: empty entry %s retained", s.node.String(), key)
		}
		for i := 1; i < len(e.times); i++ {
			if e.times[i-1] >= e.times[i] {
				return fmt.Errorf("core: %q: timestamps not strictly ascending: %v", s.node.String(), e.times)
			}
		}
		if s.iv.Unbounded && len(e.times) > 1 {
			return fmt.Errorf("core: %q: unbounded window kept %d timestamps", s.node.String(), len(e.times))
		}
		if !s.iv.Unbounded {
			for _, tm := range e.times {
				if now-tm > s.iv.Hi {
					return fmt.Errorf("core: %q: stale timestamp %d at now=%d (window %s)", s.node.String(), tm, now, s.iv.String())
				}
			}
		}
	}
	return nil
}

func varPositions(vars, subset []string) []int {
	out := make([]int, len(subset))
	for i, v := range subset {
		out[i] = sort.SearchStrings(vars, v)
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
