package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rtic/internal/check"
	"rtic/internal/engine"
	"rtic/internal/formgen"
	"rtic/internal/mtl"
	"rtic/internal/workload"
)

// The parallel commit pipeline must be observationally identical to the
// sequential one: same violations, same auxiliary state, same errors —
// on every trace. These tests hold WithParallelism(4) to
// WithParallelism(1) the same way the equivalence suite holds the
// incremental checker to the naive semantics.

func newFromHistory(t *testing.T, h workload.History, opts ...Option) *Checker {
	t.Helper()
	c := New(h.Schema, opts...)
	for _, cs := range h.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			t.Fatalf("constraint %s: %v", cs.Name, err)
		}
		if err := c.AddConstraint(con); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// workloadTraces returns every scenario generator's trace, with its
// default constraints, at a size that keeps the suite fast.
func workloadTraces() map[string]workload.History {
	return map[string]workload.History{
		"uniform": workload.Uniform(workload.UniformConfig{Steps: 200, Seed: 7, OpsPerTx: 2, Domain: 8}),
		"tickets": workload.Tickets(workload.TicketsConfig{Steps: 200, Seed: 8, ViolationRate: 0.05}),
		"hr":      workload.HR(workload.HRConfig{Steps: 200, Seed: 9, ViolationRate: 0.05}),
		"library": workload.Library(workload.LibraryConfig{Steps: 200, Seed: 10, ViolationRate: 0.05}),
		"alarms":  workload.Alarms(workload.AlarmsConfig{Steps: 200, Seed: 11, ViolationRate: 0.05}),
	}
}

func TestParallelEquivalentToSequentialOnWorkloads(t *testing.T) {
	for name, h := range workloadTraces() {
		t.Run(name, func(t *testing.T) {
			seq := newFromHistory(t, h, WithParallelism(1))
			par := newFromHistory(t, h, WithParallelism(4))
			if got := seq.Parallelism(); got != 1 {
				t.Fatalf("sequential checker reports parallelism %d", got)
			}
			if got := par.Parallelism(); got != 4 {
				t.Fatalf("parallel checker reports parallelism %d", got)
			}
			for i, s := range h.Steps {
				want, err := seq.Step(s.Time, s.Tx)
				if err != nil {
					t.Fatalf("step %d: sequential: %v", i, err)
				}
				got, err := par.Step(s.Time, s.Tx)
				if err != nil {
					t.Fatalf("step %d: parallel: %v", i, err)
				}
				if cg, cw := canon(got), canon(want); !sameCanon(cg, cw) {
					t.Fatalf("step %d (t=%d):\nparallel:   %v\nsequential: %v", i, s.Time, cg, cw)
				}
				// Binding order within one constraint is unspecified (it
				// follows evaluator enumeration), but the parallel check
				// phase must still flatten per-constraint blocks in
				// installation order.
				if len(got) != len(want) {
					t.Fatalf("step %d: %d vs %d violations", i, len(got), len(want))
				}
				for k := range got {
					if got[k].Constraint != want[k].Constraint {
						t.Fatalf("step %d: constraint order diverged at %d: %s vs %s",
							i, k, got[k].Constraint, want[k].Constraint)
					}
				}
				if err := par.CheckInvariants(); err != nil {
					t.Fatalf("step %d: parallel invariants: %v", i, err)
				}
			}
			ss, ps := seq.Stats(), par.Stats()
			if ss.Nodes != ps.Nodes || ss.Entries != ps.Entries || ss.Timestamps != ps.Timestamps || ss.Bytes != ps.Bytes {
				t.Fatalf("auxiliary state diverged: sequential %+v, parallel %+v", ss, ps)
			}
		})
	}
}

// TestParallelEquivalenceRandomConstraints drives the width comparison
// over the full operator pool instead of the scenario constraints, with
// several constraints installed so the check phase actually fans out.
func TestParallelEquivalenceRandomConstraints(t *testing.T) {
	s := equivSchema()
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(3000 + seed))
		seq := New(s, WithParallelism(1))
		par := New(s, WithParallelism(4))
		nCons := 2 + r.Intn(4)
		var names []string
		for k := 0; k < nCons; k++ {
			src := constraintPool[r.Intn(len(constraintPool))]
			name := fmt.Sprintf("c%d", k)
			con, err := check.Parse(name, src, s)
			if err != nil {
				t.Fatalf("seed %d: %q: %v", seed, src, err)
			}
			if err := seq.AddConstraint(con); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			con2, _ := check.Parse(name, src, s)
			if err := par.AddConstraint(con2); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			names = append(names, src)
		}
		tm := uint64(0)
		for i := 0; i < 40; i++ {
			tm += uint64(1 + r.Intn(3))
			tx := randomTx(r, 4)
			want, err := seq.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("seed %d step %d: sequential: %v\nconstraints: %q", seed, i, err, names)
			}
			got, err := par.Step(tm, tx)
			if err != nil {
				t.Fatalf("seed %d step %d: parallel: %v\nconstraints: %q", seed, i, err, names)
			}
			if cg, cw := canon(got), canon(want); !sameCanon(cg, cw) {
				t.Fatalf("seed %d step %d (t=%d, tx=%s):\nparallel:   %v\nsequential: %v\nconstraints: %q",
					seed, i, tm, tx, cg, cw, names)
			}
		}
	}
}

// TestParallelPropagatesErrors: a failing constraint check must surface
// the same error at every pool width, and the checker must refuse the
// same malformed inputs.
func TestParallelPropagatesErrors(t *testing.T) {
	h := workload.Uniform(workload.UniformConfig{Steps: 5, Seed: 1, OpsPerTx: 1, Domain: 4})
	for _, par := range []int{1, 4} {
		c := newFromHistory(t, h, WithParallelism(par))
		if _, err := c.Step(h.Steps[0].Time, h.Steps[0].Tx); err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		// Non-increasing timestamp: rejected before any phase runs.
		if _, err := c.Step(h.Steps[0].Time, h.Steps[1].Tx); err == nil {
			t.Fatalf("par %d: non-increasing timestamp accepted", par)
		}
	}
}

// scheduleInvariants checks the leveled schedule's structural
// guarantees: every registered node appears in exactly one level, and
// every node's level is strictly above all its direct temporal
// children's levels (so a level barrier is a correct dependency
// barrier).
func scheduleInvariants(c *Checker) error {
	seen := make(map[auxNode]int, len(c.nodes))
	count := 0
	for lvl, level := range c.levels {
		for _, n := range level {
			if prev, dup := seen[n]; dup {
				return fmt.Errorf("node %q scheduled twice (levels %d and %d)", n.formula().String(), prev, lvl)
			}
			if c.levelOf[n] != lvl {
				return fmt.Errorf("node %q: levelOf says %d, scheduled at %d", n.formula().String(), c.levelOf[n], lvl)
			}
			seen[n] = lvl
			count++
		}
	}
	if count != len(c.nodes) {
		return fmt.Errorf("schedule covers %d nodes, checker has %d", count, len(c.nodes))
	}
	for _, n := range c.nodes {
		lvl, ok := seen[n]
		if !ok {
			return fmt.Errorf("node %q missing from the schedule", n.formula().String())
		}
		var kids []mtl.Formula
		for _, op := range operands(n.formula()) {
			directTemporal(op, &kids)
		}
		for _, k := range kids {
			child, ok := c.byNode[k]
			if !ok {
				return fmt.Errorf("child %q of %q unregistered", k.String(), n.formula().String())
			}
			if seen[child] >= lvl {
				return fmt.Errorf("child %q (level %d) not strictly below parent %q (level %d)",
					k.String(), seen[child], n.formula().String(), lvl)
			}
		}
	}
	return nil
}

func TestScheduleShapes(t *testing.T) {
	s := equivSchema()
	cases := []struct {
		srcs   []string
		levels []int // nodes per level
	}{
		{[]string{"p(x) -> not once[0,3] q(x)"}, []int{1}},
		{[]string{"p(x) -> not once[0,4] prev q(x)"}, []int{1, 1}},
		{[]string{"p(x) -> not once[0,50] prev once[0,50] q(x)"}, []int{1, 1, 1}},
		{
			// Independent windows land on one level; shared shapes dedup.
			[]string{
				"p(x) -> not once[0,3] q(x)",
				"p(x) -> not once[0,5] q(x)",
				"q(x) -> not once[0,3] q(x)", // same shape as the first: shared node
			},
			[]int{2},
		},
		{
			[]string{
				"p(x) -> not once[0,3] q(x)",
				"p(x) -> not once[0,4] prev q(x)",
			},
			[]int{2, 1},
		},
	}
	for _, tc := range cases {
		c := New(s)
		for i, src := range tc.srcs {
			con, err := check.Parse(fmt.Sprintf("c%d", i), src, s)
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			if err := c.AddConstraint(con); err != nil {
				t.Fatalf("%q: %v", src, err)
			}
		}
		sched := c.Schedule()
		if len(sched) != len(tc.levels) {
			t.Fatalf("%v: %d levels, want %d (%v)", tc.srcs, len(sched), len(tc.levels), sched)
		}
		for i, want := range tc.levels {
			if len(sched[i]) != want {
				t.Fatalf("%v: level %d has %d nodes, want %d (%v)", tc.srcs, i, len(sched[i]), want, sched)
			}
		}
		if err := scheduleInvariants(c); err != nil {
			t.Fatalf("%v: %v", tc.srcs, err)
		}
	}
}

// FuzzLevelSchedule draws random safe constraints from formgen's
// grammar and checks the scheduler's ordering invariant after every
// installation.
func FuzzLevelSchedule(f *testing.F) {
	for _, seed := range []int64{1, 42, 777, 9000} {
		f.Add(seed, uint8(3))
	}
	f.Fuzz(func(t *testing.T, seed int64, nCons uint8) {
		r := rand.New(rand.NewSource(seed))
		s := formgen.Schema()
		c := New(s)
		n := int(nCons%5) + 1
		for k := 0; k < n; k++ {
			src := formgen.Constraint(r)
			con, err := check.Parse(fmt.Sprintf("c%d", k), src, s)
			if err != nil {
				t.Fatalf("formgen produced unparseable constraint %q: %v", src, err)
			}
			if err := c.AddConstraint(con); err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			if err := scheduleInvariants(c); err != nil {
				t.Fatalf("after installing %q: %v", src, err)
			}
		}
	})
}

func TestStepBatchMatchesSteps(t *testing.T) {
	h := workload.Tickets(workload.TicketsConfig{Steps: 120, Seed: 21, ViolationRate: 0.1})
	single := newFromHistory(t, h)
	batch := newFromHistory(t, h)

	steps := make([]engine.Step, len(h.Steps))
	var want [][]check.Violation
	for i, s := range h.Steps {
		steps[i] = engine.Step{Time: s.Time, Tx: s.Tx}
		vs, err := single.Step(s.Time, s.Tx)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want = append(want, vs)
	}
	got, err := batch.StepBatch(steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d slices, want %d", len(got), len(want))
	}
	for i := range got {
		if !sameCanon(canon(got[i]), canon(want[i])) {
			t.Fatalf("step %d: batch %v vs single %v", i, canon(got[i]), canon(want[i]))
		}
	}
	if single.Len() != batch.Len() || single.Now() != batch.Now() {
		t.Fatalf("clocks diverged: single (%d, %d), batch (%d, %d)",
			single.Len(), single.Now(), batch.Len(), batch.Now())
	}
}

func TestStepBatchPrefixOnError(t *testing.T) {
	h := workload.Uniform(workload.UniformConfig{Steps: 4, Seed: 3, OpsPerTx: 1, Domain: 4})
	c := newFromHistory(t, h)
	steps := []engine.Step{
		{Time: h.Steps[0].Time, Tx: h.Steps[0].Tx},
		{Time: h.Steps[1].Time, Tx: h.Steps[1].Tx},
		{Time: h.Steps[0].Time, Tx: h.Steps[2].Tx}, // non-increasing: fails
		{Time: h.Steps[3].Time, Tx: h.Steps[3].Tx},
	}
	out, err := c.StepBatch(steps)
	if err == nil {
		t.Fatal("batch with a non-increasing timestamp committed")
	}
	if len(out) != 2 {
		t.Fatalf("prefix has %d slices, want 2", len(out))
	}
	if c.Len() != 2 {
		t.Fatalf("checker committed %d states, want the 2-step prefix", c.Len())
	}
}
