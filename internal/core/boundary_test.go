package core

import (
	"math"
	"testing"

	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// Boundary-condition tests: window edges, huge timestamps, gap
// semantics, and structural sharing across constraints.

func TestWindowEdgeInclusive(t *testing.T) {
	// once[a,b]: both ends of the window are inclusive.
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not once[2,4] q(x)")

	mustStep(t, c, 10, ins("q", 1))
	// distance 1 < a: no violation yet (p present from here on).
	tx := storage.NewTransaction().Delete("q", tuple.Ints(1)).Insert("p", tuple.Ints(1))
	if vs := mustStep(t, c, 11, tx); len(vs) != 0 {
		t.Fatalf("pre-window: %v", vs)
	}
	// distance exactly a = 2.
	vs := mustStep(t, c, 12, storage.NewTransaction())
	if len(vs) != 1 {
		t.Fatalf("at lower edge: %v", vs)
	}
	// distance exactly b = 4.
	if vs := mustStep(t, c, 14, storage.NewTransaction()); len(vs) != 1 {
		t.Fatalf("at upper edge: %v", vs)
	}
	// distance b+1 = 5: aged out.
	if vs := mustStep(t, c, 15, storage.NewTransaction()); len(vs) != 0 {
		t.Fatalf("past upper edge: %v", vs)
	}
}

func TestWindowEdgeInclusiveDuplicateTime(t *testing.T) {
	// Same scenario but the boundary state carries the q re-insertion:
	// the anchor refresh must not resurrect the aged-out witness.
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not once[0,2] q(x)")
	mustStep(t, c, 1, ins("q", 1))
	mustStep(t, c, 2, del("q", 1))
	mustStep(t, c, 5, ins("p", 1)) // q last held at distance 4 > 2
	st := c.Stats()
	if st.Timestamps != 0 {
		t.Fatalf("aged-out anchor retained: %+v", st)
	}
}

func TestPrevGapOutsideWindow(t *testing.T) {
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not prev[0,5] q(x)")
	mustStep(t, c, 1, ins("q", 1))
	// Gap of 10 > 5: prev's metric guard fails, no violation.
	tx := storage.NewTransaction().Delete("q", tuple.Ints(1)).Insert("p", tuple.Ints(1))
	if vs := mustStep(t, c, 11, tx); len(vs) != 0 {
		t.Fatalf("gap outside window: %v", vs)
	}
	// Re-establish with a small gap: violation.
	mustStep(t, c, 12, storage.NewTransaction().Delete("p", tuple.Ints(1)).Insert("q", tuple.Ints(1)))
	tx2 := storage.NewTransaction().Delete("q", tuple.Ints(1)).Insert("p", tuple.Ints(1))
	if vs := mustStep(t, c, 13, tx2); len(vs) != 1 {
		t.Fatalf("gap inside window: %v", vs)
	}
}

func TestHugeTimestamps(t *testing.T) {
	// Timestamps near 2^63 must not overflow window arithmetic.
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not once[0,100] q(x)")
	base := uint64(math.MaxInt64 - 10)
	mustStep(t, c, base, ins("q", 1))
	vs := mustStep(t, c, base+50, ins("p", 1))
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if vs := mustStep(t, c, base+200, storage.NewTransaction().Delete("q", tuple.Ints(1))); len(vs) != 0 {
		t.Fatalf("aged out: %v", vs)
	}
}

func TestSharedSubformulaAcrossConstraints(t *testing.T) {
	// Two constraints containing structurally identical temporal
	// subformulas share a single auxiliary node (structural dedup) and
	// both answer correctly from it.
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c1", "p(x) -> not once[0,10] q(x)")
	addConstraint(t, c, s, "c2", "hire(x) -> not once[0,10] q(x)")
	mustStep(t, c, 1, ins("q", 3))
	tx := storage.NewTransaction().
		Delete("q", tuple.Ints(3)).
		Insert("p", tuple.Ints(3)).
		Insert("hire", tuple.Ints(3))
	vs := mustStep(t, c, 2, tx)
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want one per constraint", vs)
	}
	if c.Stats().Nodes != 1 {
		t.Fatalf("nodes = %d, want 1 shared auxiliary node", c.Stats().Nodes)
	}
	// Variable renaming or a different window defeats sharing.
	c2 := New(s)
	addConstraint(t, c2, s, "c1", "p(x) -> not once[0,10] q(x)")
	addConstraint(t, c2, s, "c2", "p(y) -> not once[0,10] q(y)")
	addConstraint(t, c2, s, "c3", "p(x) -> not once[0,11] q(x)")
	mustStep(t, c2, 1, ins("q", 1))
	if c2.Stats().Nodes != 3 {
		t.Fatalf("nodes = %d, want 3 distinct shapes", c2.Stats().Nodes)
	}
}

func TestEmptyTransactionsAdvanceTime(t *testing.T) {
	// Pure clock ticks (empty transactions) age anchors out of windows.
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not once[0,3] q(x)")
	mustStep(t, c, 1, ins("q", 1))
	mustStep(t, c, 2, del("q", 1))
	for tm := uint64(3); tm <= 4; tm++ {
		mustStep(t, c, tm, storage.NewTransaction())
	}
	// t=5: distance from anchor (1) is 4 > 3.
	if vs := mustStep(t, c, 5, ins("p", 1)); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestZeroWidthWindow(t *testing.T) {
	// once[0,0]: only the current state qualifies.
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not once[0,0] q(x)")
	tx := storage.NewTransaction().Insert("p", tuple.Ints(1)).Insert("q", tuple.Ints(1))
	if vs := mustStep(t, c, 1, tx); len(vs) != 1 {
		t.Fatalf("same-state window: %v", vs)
	}
	// One tick later q is still present (persists) so still violating;
	// after deleting q the zero-width window clears instantly.
	if vs := mustStep(t, c, 2, del("q", 1)); len(vs) != 0 {
		t.Fatalf("after delete: %v", vs)
	}
}

func TestManyConstraintsAtOnce(t *testing.T) {
	s := schema.NewBuilder().Relation("p", 1).Relation("q", 1).MustBuild()
	c := New(s)
	srcs := []string{
		"p(x) -> not once[0,5] q(x)",
		"p(x) -> not once[2,8] q(x)",
		"p(x) -> not prev q(x)",
		"p(x) -> not (q(x) since[0,9] p(x))",
		"q(x) -> not once[1,*] p(x)",
		"p(x) leadsto[0,4] q(x)",
	}
	for i, src := range srcs {
		addConstraint(t, c, s, "c"+string(rune('0'+i)), src)
	}
	tm := uint64(0)
	for i := int64(0); i < 50; i++ {
		tm += 1
		var tx *storage.Transaction
		switch i % 3 {
		case 0:
			tx = ins("q", i%4)
		case 1:
			tx = ins("p", i%4)
		default:
			tx = storage.NewTransaction().
				Delete("p", tuple.Ints((i-1)%4)).
				Delete("q", tuple.Ints((i-2)%4))
		}
		if _, err := c.Step(tm, tx); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Nodes < 6 {
		t.Fatalf("nodes = %d", c.Stats().Nodes)
	}
}

func TestStringValuedTemporalConstraints(t *testing.T) {
	// Temporal auxiliary state keyed by string (and mixed) tuples.
	s := schema.NewBuilder().Relation("badge", 2).Relation("revoked", 1).MustBuild()
	c := New(s)
	addConstraint(t, c, s, "no_reissue", "badge(p, b) -> not once[0,30] revoked(p)")

	mustStep(t, c, 1, storage.NewTransaction().Insert("revoked", tuple.Strs("ann")))
	tx := storage.NewTransaction().
		Delete("revoked", tuple.Strs("ann")).
		Insert("badge", tuple.Of(value.Str("ann"), value.Int(7)))
	vs := mustStep(t, c, 10, tx)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if !vs[0].Binding[1].Equal(value.Str("ann")) && !vs[0].Binding[0].Equal(value.Str("ann")) {
		t.Fatalf("witness = %v", vs[0])
	}
	// Outside the window: legal again.
	if vs := mustStep(t, c, 40, storage.NewTransaction()); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
}
