package core

import (
	"sort"

	"rtic/internal/mtl"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// Delta-driven checking: each commit computes the transaction's *net*
// per-relation delta (membership before vs after the apply phase) and a
// read-set index decides, per constraint and per auxiliary node, whether
// anything it reads changed. Untouched constraints reuse their previous
// denial answer, touched seedable ones re-derive only the answers
// reachable from the delta (see checkConstraint), and auxiliary nodes
// with clean sources run a cached-recurrence refresh instead of
// re-evaluating their formulas (see aux.go).

// relDelta is the net change of one relation in one commit: tuples
// absent before and present after (inserted), and vice versa (deleted).
// Slices are reused across commits; rows alias transaction tuples and
// are only valid during the commit.
type relDelta struct {
	inserted []tuple.Tuple
	deleted  []tuple.Tuple
}

func (d *relDelta) changed() bool { return len(d.inserted)+len(d.deleted) > 0 }

// stepCtx carries one commit's delta and mode through the pipeline
// phases. A ctx with planned=false (tree-walk mode) disables every
// delta-driven shortcut: nodes and constraints evaluate in full.
type stepCtx struct {
	c       *Checker
	t       uint64
	planned bool
	delta   map[string]*relDelta
	orc     *oracle
}

// relsChanged reports whether the commit touched any of rels (net).
func (sc *stepCtx) relsChanged(rels []string) bool {
	for _, r := range rels {
		if d := sc.delta[r]; d != nil && d.changed() {
			return true
		}
	}
	return false
}

// relDeltaOf returns the net delta of rel (nil slices when untouched).
func (sc *stepCtx) relDeltaOf(rel string) *relDelta { return sc.delta[rel] }

// anyDirty reports whether any node's answer changed this commit.
func anyDirty(nodes []auxNode) bool {
	for _, n := range nodes {
		if n.dirty() {
			return true
		}
	}
	return false
}

// computeDelta fills sc.delta with the transaction's net effect on
// c.cur. Must run before the transaction is applied (it reads
// pre-membership). The per-relation slots persist across commits so the
// steady state allocates nothing.
func (c *Checker) computeDelta(sc *stepCtx, tx *storage.Transaction) error {
	if c.delta == nil {
		c.delta = make(map[string]*relDelta)
	}
	for _, d := range c.delta {
		d.inserted = d.inserted[:0]
		d.deleted = d.deleted[:0]
	}
	sc.delta = c.delta
	ops := tx.Ops()
	// Only the last op on a given (relation, tuple) decides its final
	// membership; earlier ops on the same tuple are shadowed. Small
	// transactions detect shadowing by allocation-free pairwise scan;
	// large ones build a last-index map to stay linear.
	const smallTxOps = 32
	var lastOf map[string]int
	var kb []byte
	if len(ops) > smallTxOps {
		lastOf = make(map[string]int, len(ops))
		for i, op := range ops {
			kb = appendOpKey(kb[:0], op.Rel, op.Tuple)
			lastOf[string(kb)] = i
		}
	}
	for i, op := range ops {
		last := true
		if lastOf != nil {
			kb = appendOpKey(kb[:0], op.Rel, op.Tuple)
			last = lastOf[string(kb)] == i
		} else {
			for j := i + 1; j < len(ops); j++ {
				if ops[j].Rel == op.Rel && ops[j].Tuple.Equal(op.Tuple) {
					last = false
					break
				}
			}
		}
		if !last {
			continue
		}
		rel, err := c.cur.Relation(op.Rel)
		if err != nil {
			return err
		}
		pre := rel.Contains(op.Tuple)
		if pre == op.Insert {
			continue // no net change
		}
		d := c.delta[op.Rel]
		if d == nil {
			d = &relDelta{}
			c.delta[op.Rel] = d
		}
		if op.Insert {
			d.inserted = append(d.inserted, op.Tuple)
		} else {
			d.deleted = append(d.deleted, op.Tuple)
		}
	}
	return nil
}

// appendOpKey appends a (relation, tuple) map key: the relation name, a
// NUL separator (relation names are identifiers), and the tuple key.
func appendOpKey(dst []byte, rel string, t tuple.Tuple) []byte {
	dst = append(dst, rel...)
	dst = append(dst, 0)
	return t.AppendKeyTo(dst)
}

// collectRels gathers the relations of the first-order skeleton of f —
// atoms not nested under a temporal operator, whose membership the
// formula's truth reads directly. Temporal subformulas are cut off:
// their state dependencies surface through node dirtiness instead.
func collectRels(f mtl.Formula, out map[string]bool) {
	switch n := f.(type) {
	case *mtl.Atom:
		out[n.Rel] = true
	case *mtl.Not:
		collectRels(n.F, out)
	case *mtl.And:
		collectRels(n.L, out)
		collectRels(n.R, out)
	case *mtl.Or:
		collectRels(n.L, out)
		collectRels(n.R, out)
	case *mtl.Exists:
		collectRels(n.F, out)
	case *mtl.Forall:
		collectRels(n.F, out)
	}
}

// skeletonRels returns collectRels as a sorted slice.
func skeletonRels(fs ...mtl.Formula) []string {
	set := map[string]bool{}
	for _, f := range fs {
		collectRels(f, set)
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// domainDependent reports whether f's first-order skeleton can change
// truth when the active domain changes — universal quantification ranges
// over the active domain, so a commit touching *any* relation may flip
// it. Such formulas are never skipped or refreshed on unrelated commits.
func domainDependent(f mtl.Formula) bool {
	switch n := f.(type) {
	case *mtl.Forall:
		return true
	case *mtl.Not:
		return domainDependent(n.F)
	case *mtl.And:
		return domainDependent(n.L) || domainDependent(n.R)
	case *mtl.Or:
		return domainDependent(n.L) || domainDependent(n.R)
	case *mtl.Exists:
		return domainDependent(n.F)
	case *mtl.Implies:
		return domainDependent(n.L) || domainDependent(n.R)
	case *mtl.Iff:
		return domainDependent(n.L) || domainDependent(n.R)
	default:
		return false
	}
}

// directNodes resolves the outermost temporal subformulas of f to their
// auxiliary nodes (children of those nodes cascade through node
// dirtiness and need not be listed).
func (c *Checker) directNodes(fs ...mtl.Formula) []auxNode {
	var forms []mtl.Formula
	for _, f := range fs {
		directTemporal(f, &forms)
	}
	var out []auxNode
	seen := map[auxNode]bool{}
	for _, f := range forms {
		if n, ok := c.byNode[f]; ok && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
