package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"rtic/internal/check"
	"rtic/internal/formgen"
	"rtic/internal/naive"
	"rtic/internal/schema"
	"rtic/internal/storage"
)

// snapshotRoundTrip saves c and loads it back over the same schema.
func snapshotRoundTrip(t *testing.T, c *Checker, s *schema.Schema) *Checker {
	t.Helper()
	var buf bytes.Buffer
	if err := c.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return restored
}

func TestSnapshotMidHistoryEquivalence(t *testing.T) {
	// Run half a random history, snapshot, restore, run the second half
	// on both the original and the restored checker — and on the naive
	// full-history reference. All three must agree step by step.
	s := equivSchema()
	srcs := []string{
		"p(x) -> not once[0,6] q(x)",
		"p(x) -> not (q(x) since[0,5] p(x))",
		"q(x) -> not prev p(x)",
		"p(x) leadsto[0,4] q(x)",
	}
	for seed := int64(100); seed < 106; seed++ {
		r := rand.New(rand.NewSource(seed))
		orig := New(s)
		ref := naive.New(s)
		for i, src := range srcs {
			name := "c" + string(rune('0'+i))
			con, err := check.Parse(name, src, s)
			if err != nil {
				t.Fatal(err)
			}
			if err := orig.AddConstraint(con); err != nil {
				t.Fatal(err)
			}
			con2, _ := check.Parse(name, src, s)
			if err := ref.AddConstraint(con2); err != nil {
				t.Fatal(err)
			}
		}

		tm := uint64(0)
		for i := 0; i < 20; i++ {
			tm += uint64(1 + r.Intn(2))
			tx := randomTx(r, 3)
			if _, err := orig.Step(tm, tx.Clone()); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if _, err := ref.Step(tm, tx); err != nil {
				t.Fatalf("seed %d: naive: %v", seed, err)
			}
		}

		restored := snapshotRoundTrip(t, orig, s)
		if restored.Len() != orig.Len() || restored.Now() != orig.Now() {
			t.Fatalf("seed %d: restored clock %d/%d vs %d/%d",
				seed, restored.Len(), restored.Now(), orig.Len(), orig.Now())
		}

		for i := 0; i < 20; i++ {
			tm += uint64(1 + r.Intn(2))
			tx := randomTx(r, 3)
			a, err := orig.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("seed %d: original: %v", seed, err)
			}
			b, err := restored.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("seed %d: restored: %v", seed, err)
			}
			w, err := ref.Step(tm, tx)
			if err != nil {
				t.Fatalf("seed %d: naive: %v", seed, err)
			}
			ca, cb, cw := canon(a), canon(b), canon(w)
			if !sameCanon(ca, cb) {
				t.Fatalf("seed %d step %d: restored diverged: %v vs %v", seed, i, cb, ca)
			}
			if !sameCanon(ca, cw) {
				t.Fatalf("seed %d step %d: vs naive: %v vs %v", seed, i, ca, cw)
			}
		}
	}
}

func TestSnapshotPreservesStats(t *testing.T) {
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not once[0,50] q(x)")
	tm := uint64(1)
	for i := int64(0); i < 20; i++ {
		mustStep(t, c, tm, ins("q", i%4))
		tm++
	}
	restored := snapshotRoundTrip(t, c, s)
	a, b := c.Stats(), restored.Stats()
	if a.Entries != b.Entries || a.Timestamps != b.Timestamps || a.Nodes != b.Nodes {
		t.Fatalf("stats diverged: %+v vs %+v", a, b)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFreshChecker(t *testing.T) {
	// Snapshot before any commit: restorable, and usable from scratch.
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "hire(e) -> not once[0,10] fire(e)")
	restored := snapshotRoundTrip(t, c, s)
	vs, err := restored.Step(1, ins("fire", 1))
	if err != nil || len(vs) != 0 {
		t.Fatalf("vs=%v err=%v", vs, err)
	}
}

func TestLoadSnapshotErrors(t *testing.T) {
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not once q(x)")
	mustStep(t, c, 1, ins("q", 1))

	var buf bytes.Buffer
	if err := c.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Garbage input.
	if _, err := LoadSnapshot(s, strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage decoded")
	}
	// Schema missing the relations the snapshot references.
	tiny := schema.NewBuilder().Relation("other", 1).MustBuild()
	if _, err := LoadSnapshot(tiny, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("snapshot loaded over incompatible schema")
	}
}

func TestSnapshotRestoreRejectsTimeRegression(t *testing.T) {
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "p(x) -> not once q(x)")
	mustStep(t, c, 10, ins("q", 1))
	restored := snapshotRoundTrip(t, c, s)
	if _, err := restored.Step(10, storage.NewTransaction()); err == nil {
		t.Fatal("restored checker accepted a non-increasing timestamp")
	}
	if _, err := restored.Step(11, storage.NewTransaction()); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFuzzWithGeneratedConstraints(t *testing.T) {
	// Snapshot/restore mid-run under randomly generated constraints:
	// the restored checker must track the original exactly.
	s := formgen.Schema()
	seeds := int64(10)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(4000 + seed))
		orig := New(s)
		var names []string
		for k := 0; k < 1+r.Intn(2); k++ {
			src := formgen.Constraint(r)
			con, err := check.Parse("c"+string(rune('0'+k)), src, s)
			if err != nil {
				t.Fatalf("seed %d: %q: %v", seed, src, err)
			}
			if err := orig.AddConstraint(con); err != nil {
				t.Fatal(err)
			}
			names = append(names, src)
		}
		tm := uint64(0)
		for i := 0; i < 15; i++ {
			tm += uint64(1 + r.Intn(2))
			if _, err := orig.Step(tm, randomTx(r, 3)); err != nil {
				t.Fatalf("seed %d: %v\nconstraints: %q", seed, err, names)
			}
		}
		restored := snapshotRoundTrip(t, orig, s)
		for i := 0; i < 15; i++ {
			tm += uint64(1 + r.Intn(2))
			tx := randomTx(r, 3)
			a, err := orig.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("seed %d: original: %v\nconstraints: %q", seed, err, names)
			}
			b, err := restored.Step(tm, tx)
			if err != nil {
				t.Fatalf("seed %d: restored: %v\nconstraints: %q", seed, err, names)
			}
			if !sameCanon(canon(a), canon(b)) {
				t.Fatalf("seed %d step %d: diverged: %v vs %v\nconstraints: %q",
					seed, i, canon(a), canon(b), names)
			}
		}
	}
}
