package core

import (
	"fmt"
	"testing"

	"rtic/internal/obs"
	"rtic/internal/workload"
)

// phaseNamesAll mirrors the phase labels the checker exports.
var phaseNamesAll = []string{"apply", "update", "check", "carry"}

// TestPhaseSecondsSumToCommitSeconds is the attribution acceptance
// criterion: the per-phase histograms must account for the commit
// histogram — what rtic_step_phase_seconds{phase} sums to has to land
// within 10% of rtic_commit_duration_seconds, or the decomposition is
// lying about where commit time goes.
func TestPhaseSecondsSumToCommitSeconds(t *testing.T) {
	h := workload.Uniform(workload.UniformConfig{Steps: 400, Seed: 53, OpsPerTx: 4, Domain: 16})
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			c := newFromHistory(t, h, WithParallelism(par))
			m := obs.NewMetrics(obs.NewRegistry())
			c.SetObserver(&obs.Observer{Metrics: m})
			for _, s := range h.Steps {
				if _, err := c.Step(s.Time, s.Tx); err != nil {
					t.Fatal(err)
				}
			}
			commit := m.CommitSeconds.Sum()
			if commit <= 0 {
				t.Fatal("commit histogram saw nothing")
			}
			var phases float64
			for _, name := range phaseNamesAll {
				ph := m.StepPhaseSeconds.With(name)
				if ph.Count() != uint64(len(h.Steps)) {
					t.Errorf("phase %q observed %d commits, want %d", name, ph.Count(), len(h.Steps))
				}
				phases += ph.Sum()
			}
			if ratio := phases / commit; ratio < 0.9 || ratio > 1.1 {
				t.Errorf("phase sum %.6fs vs commit %.6fs: ratio %.3f outside [0.9, 1.1]",
					phases, commit, ratio)
			}
		})
	}
}

// TestCommitSpanDecomposition checks the span tree a commit emits: a
// commit root with the four phase children in pipeline order, and, on
// the parallel path, worker children under the parallel phases.
func TestCommitSpanDecomposition(t *testing.T) {
	h := workload.Uniform(workload.UniformConfig{Steps: 50, Seed: 7, OpsPerTx: 3, Domain: 8})
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			c := newFromHistory(t, h, WithParallelism(par))
			rec := obs.NewSpanRecorder(len(h.Steps))
			c.SetObserver(&obs.Observer{Spans: rec})
			for _, s := range h.Steps {
				if _, err := c.Step(s.Time, s.Tx); err != nil {
					t.Fatal(err)
				}
			}
			roots := rec.Snapshot()
			if len(roots) != len(h.Steps) {
				t.Fatalf("recorded %d commit spans, want %d", len(roots), len(h.Steps))
			}
			workers := 0
			for i, root := range roots {
				if root.Name != obs.SpanCommit {
					t.Fatalf("root %d is %q, want %q", i, root.Name, obs.SpanCommit)
				}
				if root.Time != h.Steps[i].Time {
					t.Errorf("root %d at t=%d, want %d", i, root.Time, h.Steps[i].Time)
				}
				if root.Dur <= 0 {
					t.Errorf("root %d has no duration", i)
				}
				var phaseNames []string
				var phaseSum float64
				for _, ch := range root.Children {
					phaseNames = append(phaseNames, ch.Name)
					phaseSum += ch.Dur.Seconds()
					for _, g := range ch.Children {
						if g.Name != obs.SpanWorker {
							t.Errorf("unexpected grandchild %q under %q", g.Name, ch.Name)
						}
						if g.Track < 1 {
							t.Errorf("worker span on track %d, want >= 1", g.Track)
						}
						workers++
					}
				}
				want := []string{obs.SpanApply, obs.SpanUpdate, obs.SpanCheck, obs.SpanCarry}
				if len(phaseNames) != len(want) {
					t.Fatalf("commit %d decomposes into %v, want %v", i, phaseNames, want)
				}
				for j := range want {
					if phaseNames[j] != want[j] {
						t.Errorf("commit %d phase[%d] = %q, want %q", i, j, phaseNames[j], want[j])
					}
				}
				if phaseSum > root.Dur.Seconds()*1.05 {
					t.Errorf("commit %d phases sum to %.6fs > commit %.6fs", i, phaseSum, root.Dur.Seconds())
				}
			}
			if par > 1 && workers == 0 {
				t.Error("parallel run emitted no worker spans")
			}
			if par == 1 && workers != 0 {
				t.Errorf("sequential run emitted %d worker spans", workers)
			}
		})
	}
}

// TestPoolMetrics checks the queue-wait histogram and utilization gauge
// move on the parallel path and stay untouched on the sequential one.
func TestPoolMetrics(t *testing.T) {
	h := workload.Uniform(workload.UniformConfig{Steps: 100, Seed: 11, OpsPerTx: 3, Domain: 8})
	seqM := obs.NewMetrics(obs.NewRegistry())
	seq := newFromHistory(t, h, WithParallelism(1))
	seq.SetObserver(&obs.Observer{Metrics: seqM})
	parM := obs.NewMetrics(obs.NewRegistry())
	par := newFromHistory(t, h, WithParallelism(4))
	par.SetObserver(&obs.Observer{Metrics: parM})
	for _, s := range h.Steps {
		if _, err := seq.Step(s.Time, s.Tx); err != nil {
			t.Fatal(err)
		}
		if _, err := par.Step(s.Time, s.Tx); err != nil {
			t.Fatal(err)
		}
	}
	if got := parM.PoolQueueWaitSeconds.Count(); got == 0 {
		t.Error("parallel run observed no queue waits")
	}
	if u := parM.PoolUtilization.Value(); u <= 0 || u > 1 {
		t.Errorf("pool utilization %v outside (0, 1]", u)
	}
	if got := seqM.PoolQueueWaitSeconds.Count(); got != 0 {
		t.Errorf("sequential run observed %d queue waits", got)
	}
}
