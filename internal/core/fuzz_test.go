package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rtic/internal/check"
	"rtic/internal/formgen"
	"rtic/internal/naive"
)

// The fuzzing layer over the equivalence property: instead of fixed
// constraint templates, every run draws freshly generated safe
// constraints from formgen's grammar (random operators, windows,
// nesting, deadline obligations) and holds the incremental checker to
// the naive full-history semantics on a random update stream.
func TestFuzzEquivalence(t *testing.T) {
	s := formgen.Schema()
	seeds := int64(40)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(9000 + seed))
		inc := New(s)
		ref := naive.New(s)
		var names []string
		nCons := 1 + r.Intn(3)
		for k := 0; k < nCons; k++ {
			src := formgen.Constraint(r)
			name := fmt.Sprintf("c%d", k)
			con, err := check.Parse(name, src, s)
			if err != nil {
				t.Fatalf("seed %d: %q: %v", seed, src, err)
			}
			if err := inc.AddConstraint(con); err != nil {
				t.Fatalf("seed %d: %q: %v", seed, src, err)
			}
			con2, _ := check.Parse(name, src, s)
			if err := ref.AddConstraint(con2); err != nil {
				t.Fatal(err)
			}
			names = append(names, src)
		}
		tm := uint64(0)
		for i := 0; i < 40; i++ {
			tm += uint64(1 + r.Intn(3))
			tx := randomTx(r, 3)
			got, err := inc.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("seed %d step %d: incremental: %v\nconstraints: %q", seed, i, err, names)
			}
			want, err := ref.Step(tm, tx)
			if err != nil {
				t.Fatalf("seed %d step %d: naive: %v\nconstraints: %q", seed, i, err, names)
			}
			if cg, cw := canon(got), canon(want); !sameCanon(cg, cw) {
				t.Fatalf("seed %d step %d (t=%d, tx=%s):\nincremental: %v\nnaive:       %v\nconstraints: %q",
					seed, i, tm, tx, cg, cw, names)
			}
			if err := inc.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v\nconstraints: %q", seed, i, err, names)
			}
		}
	}
}
