package core

import (
	"math/rand"
	"testing"

	"rtic/internal/check"
	"rtic/internal/schema"
)

// The ablation: with pruning disabled the checker must still give the
// same answers, but its auxiliary storage grows with history length —
// demonstrating that the pruning rules are exactly what delivers the
// paper's space bound.

func newChecker(t *testing.T, s *schema.Schema, src string, prune bool) *Checker {
	t.Helper()
	c := New(s)
	if !prune {
		if err := c.DisablePruning(); err != nil {
			t.Fatal(err)
		}
	}
	con, err := check.Parse("c", src, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAblationSameAnswers(t *testing.T) {
	s := equivSchema()
	for _, src := range []string{
		"p(x) -> not once[0,5] q(x)",
		"p(x) -> not once q(x)",
		"p(x) -> not (q(x) since[1,6] p(x))",
	} {
		r := rand.New(rand.NewSource(31))
		pruned := newChecker(t, s, src, true)
		unpruned := newChecker(t, s, src, false)
		tm := uint64(0)
		for i := 0; i < 80; i++ {
			tm += uint64(1 + r.Intn(2))
			tx := randomTx(r, 3)
			a, err := pruned.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			b, err := unpruned.Step(tm, tx)
			if err != nil {
				t.Fatalf("%q: unpruned: %v", src, err)
			}
			if !sameCanon(canon(a), canon(b)) {
				t.Fatalf("%q step %d: pruned %v vs unpruned %v", src, i, canon(a), canon(b))
			}
		}
	}
}

func TestAblationSpaceGrows(t *testing.T) {
	s := equivSchema()
	src := "p(x) -> not once[0,5] q(x)"
	pruned := newChecker(t, s, src, true)
	unpruned := newChecker(t, s, src, false)
	tm := uint64(0)
	for i := int64(0); i < 300; i++ {
		tm++
		tx := ins("q", i%3)
		if _, err := pruned.Step(tm, tx.Clone()); err != nil {
			t.Fatal(err)
		}
		if _, err := unpruned.Step(tm, tx); err != nil {
			t.Fatal(err)
		}
	}
	ps, us := pruned.Stats(), unpruned.Stats()
	// Pruned: at most window+1 timestamps per binding (3 bindings,
	// window 5 → ≤ 18). Unpruned: q tuples persist, so every step
	// anchors all three bindings — ~3 timestamps per step survive
	// (1+2+3+3·297 = 897 at 300 steps).
	if ps.Timestamps > 18 {
		t.Fatalf("pruned timestamps = %d, want ≤ 18", ps.Timestamps)
	}
	if us.Timestamps != 897 {
		t.Fatalf("unpruned timestamps = %d, want 897 (grows with history)", us.Timestamps)
	}
	if us.Bytes <= ps.Bytes*4 {
		t.Fatalf("ablation did not show space growth: pruned %dB, unpruned %dB", ps.Bytes, us.Bytes)
	}
}

func TestDisablePruningGuards(t *testing.T) {
	s := equivSchema()
	c := newChecker(t, s, "p(x) -> not once q(x)", true)
	if err := c.DisablePruning(); err == nil {
		t.Fatal("DisablePruning accepted after constraints were added")
	}
}
