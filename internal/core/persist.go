package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"

	"rtic/internal/check"
	"rtic/internal/fol"
	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/tuple"
)

// Snapshot persistence: the whole point of bounded history encoding is
// that the checker's state is small, so a monitor can checkpoint it and
// restart without replaying the history. SaveSnapshot serializes the
// current database state, the clock, and every auxiliary node;
// LoadSnapshot rebuilds an equivalent checker. Constraints travel as
// their canonical surface syntax (the printer/parser round-trip is
// exact), so a snapshot is self-describing up to the schema.

const snapshotVersion = 1

// Snapshot files carry a framing envelope so LoadSnapshot can reject a
// torn or corrupted file with a clear error instead of decoding
// garbage: an 8-byte magic, the payload length (8 bytes LE), a CRC32C
// of the payload (4 bytes LE), then the gob payload.
var snapshotMagic = [8]byte{'R', 'T', 'I', 'C', 'S', 'N', 'P', '1'}

// snapshotCRC is the CRC32C (Castagnoli) polynomial table.
var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// maxSnapshotBytes caps the payload length LoadSnapshot will allocate;
// the whole point of bounded history encoding is that real snapshots
// are far smaller.
const maxSnapshotBytes = 1 << 30

type snapConstraint struct {
	Name   string
	Source string
}

type snapRelation struct {
	Name string
	Rows []tuple.Tuple
}

type snapEntry struct {
	Row   tuple.Tuple
	Times []uint64
}

type snapNode struct {
	Kind       string // "prev" or "since"
	Formula    string // diagnostic only
	Has        bool
	StoredTime uint64
	Rows       []tuple.Tuple // prev: stored enumeration
	Entries    []snapEntry   // since: bounded history encoding
}

type snapshot struct {
	Version     int
	Constraints []snapConstraint
	Index       int
	Now         uint64
	Started     bool
	Relations   []snapRelation
	Nodes       []snapNode
}

// SaveSnapshot writes the checker's complete state to w, emitting an
// OpSnapshotSave trace event when a tracer is attached.
func (c *Checker) SaveSnapshot(w io.Writer) error {
	_, tr := c.obs.Parts()
	if tr == nil {
		return c.saveSnapshot(w)
	}
	cw := &countingWriter{w: w}
	start := time.Now()
	err := c.saveSnapshot(cw)
	tr.Trace(obs.TraceEvent{
		Op: obs.OpSnapshotSave, Detail: fmt.Sprintf("%d bytes", cw.n),
		Time: c.now, Duration: time.Since(start), Err: err,
	})
	return err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (c *Checker) saveSnapshot(w io.Writer) error {
	snap := snapshot{
		Version: snapshotVersion,
		Index:   c.index,
		Now:     c.now,
		Started: c.started,
	}
	for _, con := range c.constraints {
		snap.Constraints = append(snap.Constraints, snapConstraint{
			Name:   con.Name,
			Source: con.Formula.String(),
		})
	}
	names := c.schema.Names()
	sort.Strings(names)
	for _, name := range names {
		rel, err := c.cur.Relation(name)
		if err != nil {
			return err
		}
		snap.Relations = append(snap.Relations, snapRelation{Name: name, Rows: rel.Tuples()})
	}
	for _, node := range c.nodes {
		sn, err := encodeNode(node)
		if err != nil {
			return err
		}
		snap.Nodes = append(snap.Nodes, sn)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return err
	}
	var hdr [20]byte
	copy(hdr[:8], snapshotMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(payload.Bytes(), snapshotCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

func encodeNode(node auxNode) (snapNode, error) {
	switch n := node.(type) {
	case *prevNode:
		sn := snapNode{Kind: "prev", Formula: n.n.String(), Has: n.has, StoredTime: n.storedTime}
		if n.has {
			sn.Rows = n.stored.Rows()
		}
		return sn, nil
	case *sinceNode:
		sn := snapNode{Kind: "since", Formula: n.node.String()}
		keys := make([]string, 0, len(n.entries))
		for k := range n.entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := n.entries[k]
			sn.Entries = append(sn.Entries, snapEntry{
				Row:   e.row.Clone(),
				Times: append([]uint64(nil), e.times...),
			})
		}
		return sn, nil
	default:
		return snapNode{}, fmt.Errorf("core: cannot snapshot node %T", node)
	}
}

// LoadSnapshot rebuilds a checker over s from a snapshot written by
// SaveSnapshot. The schema must define every relation the snapshot
// references. Options (e.g. WithParallelism) configure the restored
// checker; the snapshot format does not record them.
func LoadSnapshot(s *schema.Schema, r io.Reader, opts ...Option) (*Checker, error) {
	return LoadSnapshotObserved(s, r, nil, opts...)
}

// LoadSnapshotObserved is LoadSnapshot with the observer attached to
// the restored checker before it starts answering; the restore itself
// is traced as OpSnapshotRestore.
func LoadSnapshotObserved(s *schema.Schema, r io.Reader, o *obs.Observer, opts ...Option) (*Checker, error) {
	_, tr := o.Parts()
	if tr == nil {
		c, err := loadSnapshot(s, r, opts...)
		if err != nil {
			return nil, err
		}
		c.SetObserver(o)
		return c, nil
	}
	start := time.Now()
	c, err := loadSnapshot(s, r, opts...)
	ev := obs.TraceEvent{Op: obs.OpSnapshotRestore, Duration: time.Since(start), Err: err}
	if c != nil {
		ev.Time = c.now
		ev.Detail = fmt.Sprintf("%d states", c.index)
	}
	tr.Trace(ev)
	if err != nil {
		return nil, err
	}
	c.SetObserver(o)
	return c, nil
}

func loadSnapshot(s *schema.Schema, r io.Reader, opts ...Option) (*Checker, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: snapshot truncated in header (%d-byte envelope): %w", len(hdr), err)
	}
	if !bytes.Equal(hdr[:8], snapshotMagic[:]) {
		return nil, fmt.Errorf("core: not an rtic snapshot (magic %q, want %q)", hdr[:8], snapshotMagic[:])
	}
	size := binary.LittleEndian.Uint64(hdr[8:16])
	if size == 0 || size > maxSnapshotBytes {
		return nil, fmt.Errorf("core: snapshot header corrupted: implausible payload length %d", size)
	}
	want := binary.LittleEndian.Uint32(hdr[16:20])
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("core: snapshot truncated: header promises %d payload bytes: %w", size, err)
	}
	if got := crc32.Checksum(payload, snapshotCRC); got != want {
		return nil, fmt.Errorf("core: snapshot corrupted: checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, this build reads %d", snap.Version, snapshotVersion)
	}
	c := New(s, opts...)
	for _, sc := range snap.Constraints {
		con, err := check.Parse(sc.Name, sc.Source, s)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot constraint %s: %w", sc.Name, err)
		}
		if err := c.AddConstraint(con); err != nil {
			return nil, err
		}
	}
	if len(c.nodes) != len(snap.Nodes) {
		return nil, fmt.Errorf("core: snapshot has %d auxiliary nodes, compiled constraints need %d",
			len(snap.Nodes), len(c.nodes))
	}
	for _, sr := range snap.Relations {
		rel, err := c.cur.Relation(sr.Name)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot relation %q not in schema: %w", sr.Name, err)
		}
		for _, row := range sr.Rows {
			if _, err := rel.Insert(row); err != nil {
				return nil, err
			}
		}
	}
	for i, sn := range snap.Nodes {
		if err := decodeNode(c.nodes[i], sn); err != nil {
			return nil, err
		}
	}
	c.index = snap.Index
	c.now = snap.Now
	c.started = snap.Started
	return c, nil
}

func decodeNode(node auxNode, sn snapNode) error {
	switch n := node.(type) {
	case *prevNode:
		if sn.Kind != "prev" {
			return fmt.Errorf("core: snapshot node kind %q, compiled node is prev (%s)", sn.Kind, n.n.String())
		}
		n.has = sn.Has
		n.storedTime = sn.StoredTime
		if sn.Has {
			b := newBindingsForRows(n.fvars, sn.Rows)
			if b == nil {
				return fmt.Errorf("core: snapshot prev rows have wrong arity for %s", n.n.String())
			}
			n.stored = b
		}
		return nil
	case *sinceNode:
		if sn.Kind != "since" {
			return fmt.Errorf("core: snapshot node kind %q, compiled node is since (%s)", sn.Kind, n.node.String())
		}
		for _, e := range sn.Entries {
			if len(e.Row) != len(n.vars) {
				return fmt.Errorf("core: snapshot entry arity %d for node %s (want %d)",
					len(e.Row), n.node.String(), len(n.vars))
			}
			n.entries[e.Row.Key()] = &sinceEntry{
				row:   e.Row.Clone(),
				times: append([]uint64(nil), e.Times...),
			}
		}
		return nil
	default:
		return fmt.Errorf("core: cannot restore node %T", node)
	}
}

func newBindingsForRows(vars []string, rows []tuple.Tuple) *fol.Bindings {
	b := fol.NewBindings(vars)
	for _, row := range rows {
		if len(row) != len(vars) {
			return nil
		}
		if err := b.AddRow(row); err != nil {
			return nil
		}
	}
	return b
}
