package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rtic/internal/check"
	"rtic/internal/naive"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// The load-bearing property of the whole reproduction: on arbitrary
// histories, the incremental bounded-history checker reports exactly the
// violations the naive full-history checker reports, at every state.

func equivSchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("p", 1).
		Relation("q", 1).
		Relation("r", 2).
		MustBuild()
}

// constraintPool covers every operator, window shape and nesting the
// engine supports.
var constraintPool = []string{
	"p(x) -> not once[0,3] q(x)",
	"p(x) -> once[0,5] q(x)",
	"p(x) -> not once[2,4] q(x)",
	"p(x) -> not once[1,*] q(x)",
	"p(x) -> not once q(x)",
	"q(x) -> not prev p(x)",
	"p(x) -> prev[0,2] q(x)",
	"p(x) -> not (q(x) since[0,4] p(x))",
	"p(x) -> (q(x) since p(x))",
	"r(x, y) -> not (p(x) since[0,6] r(x, y))",
	"p(x) -> not once[0,4] prev q(x)",
	"p(x) -> not prev once[0,3] q(x)",
	"not (exists x: p(x) and once[0,2] q(x))",
	"p(x) -> not ((q(x) since[0,5] p(x)) and once[1,3] q(x))",
	"q(x) -> not once[0,3] (p(x) and not q(x))",
	"p(x) leadsto[0,4] q(x)",
	"r(x, y) leadsto[0,3] q(x)",
	"p(x) -> always[0,4] not q(x)",
	"r(x, y) -> not (not q(x) since[1,7] r(x, y))",
	"p(x) and q(x) -> prev (p(x) or q(x))",
}

func randomTx(r *rand.Rand, domain int64) *storage.Transaction {
	tx := storage.NewTransaction()
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		v := r.Int63n(domain)
		w := r.Int63n(domain)
		rel := []string{"p", "q", "r"}[r.Intn(3)]
		var row tuple.Tuple
		if rel == "r" {
			row = tuple.Ints(v, w)
		} else {
			row = tuple.Ints(v)
		}
		if r.Intn(3) == 0 {
			tx.Delete(rel, row)
		} else {
			tx.Insert(rel, row)
		}
	}
	return tx
}

func canon(vs []check.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Constraint + "|" + v.Binding.Key()
	}
	sort.Strings(out)
	return out
}

func sameCanon(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIncrementalEquivalentToNaive(t *testing.T) {
	s := equivSchema()
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))

		// Pick 1–3 constraints for this run.
		nCons := 1 + r.Intn(3)
		inc := New(s)
		ref := naive.New(s)
		var names []string
		for k := 0; k < nCons; k++ {
			src := constraintPool[r.Intn(len(constraintPool))]
			name := fmt.Sprintf("c%d", k)
			con, err := check.Parse(name, src, s)
			if err != nil {
				t.Fatalf("seed %d: constraint %q: %v", seed, src, err)
			}
			if err := inc.AddConstraint(con); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			con2, _ := check.Parse(name, src, s)
			if err := ref.AddConstraint(con2); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			names = append(names, src)
		}

		tm := uint64(0)
		steps := 30 + r.Intn(20)
		for i := 0; i < steps; i++ {
			tm += uint64(1 + r.Intn(3))
			tx := randomTx(r, 4)
			got, err := inc.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("seed %d step %d (%s): incremental: %v\nconstraints: %v", seed, i, tx, err, names)
			}
			want, err := ref.Step(tm, tx)
			if err != nil {
				t.Fatalf("seed %d step %d: naive: %v", seed, i, err)
			}
			cg, cw := canon(got), canon(want)
			if !sameCanon(cg, cw) {
				t.Fatalf("seed %d step %d (t=%d, tx=%s):\nincremental: %v\nnaive:       %v\nconstraints: %v",
					seed, i, tm, tx, cg, cw, names)
			}
			if err := inc.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
		}
	}
}

func TestEveryPoolConstraintExercised(t *testing.T) {
	// Run each pool constraint alone on a fixed pseudo-random history so
	// a regression in one operator cannot hide behind pool sampling.
	s := equivSchema()
	for ci, src := range constraintPool {
		r := rand.New(rand.NewSource(int64(1000 + ci)))
		inc := New(s)
		ref := naive.New(s)
		con, err := check.Parse("c", src, s)
		if err != nil {
			t.Fatalf("constraint %q: %v", src, err)
		}
		if err := inc.AddConstraint(con); err != nil {
			t.Fatal(err)
		}
		con2, _ := check.Parse("c", src, s)
		if err := ref.AddConstraint(con2); err != nil {
			t.Fatal(err)
		}
		tm := uint64(0)
		sawViolation := false
		for i := 0; i < 60; i++ {
			tm += uint64(1 + r.Intn(2))
			tx := randomTx(r, 3)
			got, err := inc.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("%q step %d: %v", src, i, err)
			}
			want, err := ref.Step(tm, tx)
			if err != nil {
				t.Fatalf("%q step %d: naive: %v", src, i, err)
			}
			if len(want) > 0 {
				sawViolation = true
			}
			if !sameCanon(canon(got), canon(want)) {
				t.Fatalf("%q step %d: incremental %v vs naive %v", src, i, canon(got), canon(want))
			}
		}
		if !sawViolation {
			t.Logf("note: constraint %q never violated on its history (still equivalent)", src)
		}
	}
}
