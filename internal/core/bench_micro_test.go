package core

import (
	"math/rand"
	"testing"

	"rtic/internal/check"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// Micro-benchmarks of one Step on a warmed-up checker, per operator.
func BenchmarkStep(b *testing.B) {
	cases := []struct{ name, src string }{
		{"once-bounded", "p(x) -> not once[0,100] q(x)"},
		{"once-unbounded", "p(x) -> not once q(x)"},
		{"since", "p(x) -> not (q(x) since[0,100] p(x))"},
		{"prev", "p(x) -> not prev q(x)"},
		{"nested", "p(x) -> not once[0,100] prev q(x)"},
		{"leadsto", "p(x) leadsto[0,50] q(x)"},
	}
	for _, cse := range cases {
		b.Run(cse.name, func(b *testing.B) {
			s := equivSchema()
			c := New(s)
			con, err := check.Parse("c", cse.src, s)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.AddConstraint(con); err != nil {
				b.Fatal(err)
			}
			// Warm up with a realistic mixed prefix.
			r := rand.New(rand.NewSource(1))
			tm := uint64(0)
			for i := 0; i < 200; i++ {
				tm++
				if _, err := c.Step(tm, randomTx(r, 8)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tm++
				tx := storage.NewTransaction()
				if i%2 == 0 {
					tx.Insert("q", tuple.Ints(int64(i%8)))
				} else {
					tx.Insert("p", tuple.Ints(int64(i%8)))
				}
				if _, err := c.Step(tm, tx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshot measures checkpoint cost — small by construction.
func BenchmarkSnapshot(b *testing.B) {
	s := equivSchema()
	c := New(s)
	con, _ := check.Parse("c", "p(x) -> not once[0,100] q(x)", s)
	if err := c.AddConstraint(con); err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	tm := uint64(0)
	for i := 0; i < 500; i++ {
		tm++
		if _, err := c.Step(tm, randomTx(r, 8)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SaveSnapshot(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
