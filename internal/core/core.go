// Package core implements the paper's contribution: incremental checking
// of real-time (metric past-temporal) integrity constraints using
// bounded history encoding.
//
// The checker never stores the history. Instead, for every temporal
// subformula of every installed constraint it maintains a small
// auxiliary relation (see aux.go) that is updated once per committed
// transaction; the constraint's denial is then evaluated against the
// current state with temporal subformulas answered from the auxiliary
// relations. Space is bounded by the constraints' metric windows and the
// data that flowed through the database — independent of history length
// — and so is per-transaction checking time.
//
// A commit runs as an explicit four-phase pipeline:
//
//	apply   — validate and apply the transaction to the current state
//	update  — phase A of every auxiliary node, by dependency level
//	check   — evaluate every constraint's denial in the new state
//	carry   — phase B: compute then commit next-state carry-over
//
// The update, check and carry phases are data-parallel: nodes within
// one dependency level (see schedule.go) and constraints against one
// state are independent, so a checker built WithParallelism(n>1) runs
// them on a bounded worker pool. n=1 runs the phases inline and is
// bit-for-bit the sequential algorithm.
package core

import (
	"fmt"
	"sync"
	"time"

	"rtic/internal/check"
	"rtic/internal/engine"
	"rtic/internal/fol"
	"rtic/internal/mtl"
	"rtic/internal/obs"
	"rtic/internal/plan"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// Checker is the incremental bounded-history checker.
type Checker struct {
	schema      *schema.Schema
	cur         *storage.State
	constraints []*check.Constraint
	conNames    map[string]struct{}

	nodes  []auxNode // registration order (children before parents)
	byNode map[mtl.Formula]auxNode
	// byShape dedups structurally identical temporal subformulas across
	// constraints: one auxiliary node serves every occurrence with the
	// same canonical form (the form includes variable names and
	// intervals, so equal shape means equal semantics).
	byShape map[string]auxNode

	// The leveled update schedule: levels[0] holds nodes with no nested
	// temporal subformulas, levels[k] nodes whose deepest child sits at
	// k-1. Built incrementally by register/schedule.
	levels  [][]auxNode
	levelOf map[auxNode]int

	// par is the worker-pool width of the commit pipeline (1 = run the
	// phases inline, sequentially).
	par int

	// mode selects the check-phase evaluation strategy: EvalPlanned (the
	// default) executes compiled query plans delta-driven, EvalTreeWalk
	// re-evaluates every denial with the tree-walking evaluator — the
	// reference path kept for differential testing.
	mode EvalMode
	// conStates holds the per-constraint planning state, parallel to
	// constraints; delta holds the reusable per-relation net-delta slots;
	// lastSkips records what the last planned commit did per constraint.
	conStates []*conState
	delta     map[string]*relDelta
	lastSkips []SkipInfo

	index   int
	now     uint64
	started bool

	pruningDisabled bool

	obs *obs.Observer
	// conMetrics caches the per-constraint metric handles (violation
	// counter, check-latency histogram), parallel to constraints, so the
	// commit path never does a labelled lookup.
	conMetrics []conMetrics
	// phaseHist caches the per-phase commit histograms
	// (rtic_step_phase_seconds) and poolWait/poolUtil the worker-pool
	// attribution handles, so phase accounting never does a labelled
	// lookup either. All nil when no metrics are attached.
	phaseHist [numPhases]*obs.Histogram
	poolWait  *obs.Histogram
	poolUtil  *obs.FloatGauge
}

// Pipeline phase indices and their metric label values.
const (
	phaseApply = iota
	phaseUpdate
	phaseCheck
	phaseCarry
	numPhases
)

var phaseNames = [numPhases]string{"apply", "update", "check", "carry"}

type conMetrics struct {
	violations *obs.Counter
	seconds    *obs.Histogram
}

// Option configures a Checker at construction time.
type Option func(*Checker)

// EvalMode selects the check-phase evaluation strategy.
type EvalMode int

const (
	// EvalPlanned compiles denials to query plans at AddConstraint time
	// and evaluates them delta-driven: constraints whose read set a
	// commit did not touch reuse their previous answer, seedable plans
	// re-derive only the answers reachable from the commit's net delta,
	// and the rest execute their full plan. The default.
	EvalPlanned EvalMode = iota
	// EvalTreeWalk re-evaluates every denial and auxiliary update
	// formula with the tree-walking evaluator on every commit — the
	// original full-evaluation path, kept selectable for differential
	// testing against the planned path.
	EvalTreeWalk
)

// WithEvaluation selects the check-phase evaluation strategy.
func WithEvaluation(m EvalMode) Option {
	return func(c *Checker) { c.mode = m }
}

// conState is the per-constraint planning state: the compiled denial
// plan (nil when the denial's shape is unsupported and the tree-walking
// evaluator takes over), the read-set index the skip decision consults,
// and the previous commit's denial answer for reuse and retesting.
type conState struct {
	plan    *plan.Plan
	planErr string // why plan compilation fell back, for SkipInfo
	// readRels are the relations of the denial's first-order skeleton;
	// nodes the auxiliary nodes of its outermost temporal subformulas;
	// together they form the constraint's read set.
	readRels []string
	nodes    []auxNode
	// domDep marks denials with universal quantification, whose truth
	// can change with the active domain: never skipped.
	domDep bool
	// sources/srcNode are the plan's seedable literal occurrences and,
	// for temporal sources, their auxiliary nodes; canSeed gates the
	// semi-naive path.
	sources []plan.Source
	srcNode []auxNode
	canSeed bool
	// lastB is the denial's answer at the previous commit (planned mode
	// only); nil until the first check.
	lastB *fol.Bindings
}

// inexactDirty reports whether any temporal source changed without an
// exact row-level delta (prev nodes) — semi-naive seeding would miss
// derivations, so the constraint falls back to full plan execution.
func (cs *conState) inexactDirty() bool {
	for _, n := range cs.srcNode {
		if n == nil {
			continue
		}
		if _, _, exact := n.answerDelta(); !exact && n.dirty() {
			return true
		}
	}
	return false
}

// WithParallelism sets the worker-pool width of the commit pipeline.
// n=1 runs the pipeline inline (the exact sequential algorithm); n>1
// updates independent auxiliary nodes and checks constraints
// concurrently on at most n goroutines; n<=0 selects GOMAXPROCS. The
// default is GOMAXPROCS.
func WithParallelism(n int) Option {
	return func(c *Checker) { c.par = resolveParallelism(n) }
}

// New returns an empty checker over s. Install constraints with
// AddConstraint before the first Step.
func New(s *schema.Schema, opts ...Option) *Checker {
	c := &Checker{
		schema:   s,
		cur:      storage.NewState(s),
		conNames: make(map[string]struct{}),
		byNode:   make(map[mtl.Formula]auxNode),
		byShape:  make(map[string]auxNode),
		levelOf:  make(map[auxNode]int),
		par:      resolveParallelism(0),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// DisablePruning turns off the window-pruning rules — the ablation knob
// of the space experiments. Answers are unaffected (stale timestamps
// simply never satisfy the window test) but auxiliary storage grows
// with history length instead of staying bounded. Must be called before
// constraints are added.
func (c *Checker) DisablePruning() error {
	if len(c.nodes) > 0 || c.started {
		return fmt.Errorf("core: DisablePruning must be called before constraints are added")
	}
	c.pruningDisabled = true
	return nil
}

// AddConstraint installs a compiled constraint and builds auxiliary
// nodes for its temporal subformulas. Constraints must be installed
// before the first transaction: the encoding summarizes the history from
// its beginning.
func (c *Checker) AddConstraint(con *check.Constraint) error {
	if c.started {
		return fmt.Errorf("core: constraint %q added after the history started; the auxiliary encoding would miss past states", con.Name)
	}
	if _, dup := c.conNames[con.Name]; dup {
		return fmt.Errorf("core: duplicate constraint %q", con.Name)
	}
	if err := c.compile(con.Denial); err != nil {
		return err
	}
	c.constraints = append(c.constraints, con)
	c.conNames[con.Name] = struct{}{}
	c.conStates = append(c.conStates, c.planConstraint(con))
	c.syncConMetrics()
	return nil
}

// planConstraint compiles the denial to a query plan and derives the
// constraint's read-set index. Plan compilation failures are recorded,
// not raised: the tree-walking evaluator handles every kernel shape.
func (c *Checker) planConstraint(con *check.Constraint) *conState {
	cs := &conState{
		readRels: skeletonRels(con.Denial),
		nodes:    c.directNodes(con.Denial),
		domDep:   domainDependent(con.Denial),
	}
	p, err := plan.Compile(con.Denial, c.cur, nil)
	if err != nil {
		cs.planErr = err.Error()
		return cs
	}
	cs.plan = p
	if p.Seedable() {
		cs.sources = p.Sources()
		cs.srcNode = make([]auxNode, len(cs.sources))
		cs.canSeed = true
		for i, src := range cs.sources {
			if src.IsRel {
				continue
			}
			node, ok := c.byNode[src.Temp]
			if !ok {
				// Unreachable: compile registered every temporal
				// subformula of the denial. Disable seeding, keep the plan.
				cs.canSeed = false
				break
			}
			cs.srcNode[i] = node
		}
	}
	return cs
}

// SetObserver attaches (or detaches, with nil) the instrumentation
// sinks. Safe to call at any time between commits; pre-registers the
// per-constraint series so a scrape shows every constraint at zero.
func (c *Checker) SetObserver(o *obs.Observer) {
	c.obs = o
	c.conMetrics = nil
	c.syncConMetrics()
	c.phaseHist = [numPhases]*obs.Histogram{}
	c.poolWait, c.poolUtil = nil, nil
	if m, _ := o.Parts(); m != nil {
		m.ParallelWorkers.Set(int64(c.par))
		for i, name := range phaseNames {
			c.phaseHist[i] = m.StepPhaseSeconds.With(name)
		}
		c.poolWait = m.PoolQueueWaitSeconds
		c.poolUtil = m.PoolUtilization
	}
}

// syncConMetrics extends the cached per-constraint handles to cover
// every installed constraint.
func (c *Checker) syncConMetrics() {
	m, _ := c.obs.Parts()
	if m == nil {
		return
	}
	for i := len(c.conMetrics); i < len(c.constraints); i++ {
		name := c.constraints[i].Name
		c.conMetrics = append(c.conMetrics, conMetrics{
			violations: m.Violations.With(name),
			seconds:    m.ConstraintSeconds.With(name),
		})
	}
}

// compile walks the denial bottom-up and allocates one auxiliary node
// per temporal subformula occurrence.
func (c *Checker) compile(f mtl.Formula) error {
	switch n := f.(type) {
	case mtl.Truth, *mtl.Cmp:
		return nil
	case *mtl.Atom:
		return nil
	case *mtl.Not:
		return c.compile(n.F)
	case *mtl.And:
		if err := c.compile(n.L); err != nil {
			return err
		}
		return c.compile(n.R)
	case *mtl.Or:
		if err := c.compile(n.L); err != nil {
			return err
		}
		return c.compile(n.R)
	case *mtl.Exists:
		return c.compile(n.F)
	case *mtl.Prev:
		if err := c.compile(n.F); err != nil {
			return err
		}
		c.register(n, newPrevNode(n))
		return nil
	case *mtl.Once:
		if err := c.compile(n.F); err != nil {
			return err
		}
		node, err := newOnceNode(n)
		if err != nil {
			return err
		}
		node.noPrune = c.pruningDisabled
		c.register(n, node)
		return nil
	case *mtl.Since:
		if err := c.compile(n.L); err != nil {
			return err
		}
		if err := c.compile(n.R); err != nil {
			return err
		}
		node, err := newSinceNode(n)
		if err != nil {
			return err
		}
		node.noPrune = c.pruningDisabled
		c.register(n, node)
		return nil
	default:
		return fmt.Errorf("core: compile: non-kernel node %T (%q)", f, f.String())
	}
}

func (c *Checker) register(f mtl.Formula, node auxNode) {
	if _, ok := c.byNode[f]; ok {
		return
	}
	shape := f.String()
	if existing, ok := c.byShape[shape]; ok {
		// Alias this occurrence to the shared node; it is updated once
		// per transaction and answers for every occurrence.
		c.byNode[f] = existing
		return
	}
	c.byShape[shape] = node
	c.byNode[f] = node
	c.nodes = append(c.nodes, node)
	c.schedule(f, node)
	c.bindNode(node)
}

// bindNode derives a freshly registered node's read set and compiles
// its update formula to a query plan. Children are registered before
// parents, so directNodes resolves every child.
func (c *Checker) bindNode(node auxNode) {
	switch n := node.(type) {
	case *prevNode:
		n.deps = nodeDeps{
			srcRels:  skeletonRels(n.n.F),
			children: c.directNodes(n.n.F),
			domDep:   domainDependent(n.n.F),
		}
		n.fPlan, _ = plan.Compile(n.n.F, c.cur, nil)
	case *sinceNode:
		n.deps = nodeDeps{
			srcRels:  skeletonRels(n.left, n.right),
			children: c.directNodes(n.left, n.right),
			domDep:   domainDependent(n.left) || domainDependent(n.right),
		}
		n.rightPlan, _ = plan.Compile(n.right, c.cur, nil)
	}
}

// stepInstr carries one commit's instrumentation through the pipeline
// phases: the metric and trace sinks plus the commit span under
// construction. A nil *stepInstr is the fully disabled path.
type stepInstr struct {
	c    *Checker
	m    *obs.Metrics
	tr   obs.Tracer
	span *obs.Span // commit span; phases append children. May be nil.
}

func (si *stepInstr) tracer() obs.Tracer {
	if si == nil {
		return nil
	}
	return si.tr
}

// phaseScope times one pipeline phase: a histogram observation plus a
// child span. The zero scope (from a nil or metric-less stepInstr) is
// a no-op.
type phaseScope struct {
	si    *stepInstr
	idx   int
	span  *obs.Span
	start time.Time
}

// phase opens a scope for the given pipeline phase.
func (si *stepInstr) phase(idx int, name string) phaseScope {
	if si == nil || (si.c.phaseHist[idx] == nil && si.span == nil) {
		return phaseScope{}
	}
	ps := phaseScope{si: si, idx: idx, start: time.Now()}
	if si.span != nil {
		ps.span = si.span.Child(name, "")
	}
	return ps
}

// done closes the scope, attributing the elapsed time to the phase.
func (ps phaseScope) done(ops int, err error) {
	if ps.si == nil {
		return
	}
	d := time.Since(ps.start)
	if h := ps.si.c.phaseHist[ps.idx]; h != nil {
		h.Observe(d.Seconds())
	}
	if ps.span != nil {
		ps.span.Dur = d
		ps.span.Ops = ops
		ps.span.Err = err
	}
}

// attributePool digests one parallel batch's task timings into the
// worker-pool attribution: queue-wait observations, the utilization
// gauge, and per-worker child spans under the phase span (one lane per
// worker, carrying busy time, task count and idle wait).
func (si *stepInstr) attributePool(parent *obs.Span, batchStart time.Time, label string, timings []taskTiming) {
	if si == nil || len(timings) == 0 {
		return
	}
	if si.c.poolWait != nil {
		for _, tt := range timings {
			si.c.poolWait.Observe(tt.start.Seconds())
		}
	}
	type workerAgg struct {
		busy        time.Duration
		tasks       int
		first, last time.Duration // active window offsets from batch start
	}
	agg := map[int]*workerAgg{}
	var wall time.Duration
	for _, tt := range timings {
		end := tt.start + tt.dur
		if end > wall {
			wall = end
		}
		a := agg[tt.worker]
		if a == nil {
			a = &workerAgg{first: tt.start}
			agg[tt.worker] = a
		}
		a.busy += tt.dur
		a.tasks++
		if tt.start < a.first {
			a.first = tt.start
		}
		if end > a.last {
			a.last = end
		}
	}
	if si.c.poolUtil != nil && wall > 0 {
		workers := si.c.par
		if workers > len(timings) {
			workers = len(timings)
		}
		var busy time.Duration
		for _, a := range agg {
			busy += a.busy
		}
		si.c.poolUtil.Set(float64(busy) / (float64(workers) * float64(wall)))
	}
	if parent == nil {
		return
	}
	for w := 0; w < si.c.par; w++ {
		a := agg[w]
		if a == nil {
			continue
		}
		parent.Children = append(parent.Children, &obs.Span{
			Name:   obs.SpanWorker,
			Detail: fmt.Sprintf("%sw%d", label, w),
			Time:   parent.Time,
			Track:  w + 1,
			Start:  batchStart.Add(a.first),
			Dur:    a.last - a.first,
			Ops:    a.tasks,
			Wait:   a.last - a.first - a.busy,
		})
	}
}

// Step commits a transaction at time t, updates every auxiliary node,
// and checks every constraint in the resulting state. With an observer
// attached it also records commit/phase/constraint timing, violation
// counts and auxiliary-storage gauges, emits step/node-update trace
// events, and hands a completed commit span tree to the span sink;
// without one the instrumentation path is a few nil checks.
func (c *Checker) Step(t uint64, tx *storage.Transaction) ([]check.Violation, error) {
	m, tr := c.obs.Parts()
	sink := c.obs.SpanSink()
	if m == nil && tr == nil && sink == nil {
		return c.step(t, tx, nil)
	}
	vs, err := c.observedStep(t, tx, m, tr, sink)
	if m != nil && err == nil {
		c.refreshAuxGauges(m)
	}
	return vs, err
}

// observedStep is one instrumented commit: counters, latency histogram,
// the step trace event and the commit span — everything per-step except
// the auxiliary-storage gauge refresh, which batch commits amortize.
func (c *Checker) observedStep(t uint64, tx *storage.Transaction, m *obs.Metrics, tr obs.Tracer, sink obs.SpanSink) ([]check.Violation, error) {
	si := &stepInstr{c: c, m: m, tr: tr}
	if sink != nil {
		si.span = &obs.Span{Name: obs.SpanCommit, Time: t, Start: time.Now(), Ops: tx.Len()}
	}
	start := time.Now()
	vs, err := c.step(t, tx, si)
	d := time.Since(start)
	if m != nil {
		if err != nil {
			m.CommitErrors.Inc()
		} else {
			m.Commits.Inc()
			m.CommitSeconds.Observe(d.Seconds())
		}
	}
	if tr != nil {
		tr.Trace(obs.TraceEvent{Op: obs.OpStep, Time: t, Duration: d, Err: err})
	}
	if sink != nil {
		si.span.Dur = d
		si.span.Err = err
		sink.ObserveSpan(si.span)
	}
	return vs, err
}

// refreshAuxGauges walks the auxiliary nodes and republishes the
// storage gauges — the one O(aux) piece of instrumentation, kept out of
// the per-step path of batch commits.
func (c *Checker) refreshAuxGauges(m *obs.Metrics) {
	st := c.Stats()
	m.AuxNodes.Set(int64(st.Nodes))
	m.AuxEntries.Set(int64(st.Entries))
	m.AuxTimestamps.Set(int64(st.Timestamps))
	m.AuxBytes.Set(int64(st.Bytes))
}

// StepBatch commits a sequence of transactions in order, refreshing the
// auxiliary-storage gauges once at the end instead of after every step
// (per-step counters, latencies and trace events are still recorded).
// On error the committed prefix stays committed and its violations are
// returned alongside the error.
func (c *Checker) StepBatch(steps []engine.Step) ([][]check.Violation, error) {
	m, tr := c.obs.Parts()
	sink := c.obs.SpanSink()
	if m != nil {
		defer c.refreshAuxGauges(m)
	}
	out := make([][]check.Violation, 0, len(steps))
	for i, s := range steps {
		var vs []check.Violation
		var err error
		if m == nil && tr == nil && sink == nil {
			vs, err = c.step(s.Time, s.Tx, nil)
		} else {
			vs, err = c.observedStep(s.Time, s.Tx, m, tr, sink)
		}
		if err != nil {
			return out, fmt.Errorf("core: batch step %d (t=%d): %w", i, s.Time, err)
		}
		out = append(out, vs)
	}
	return out, nil
}

// domainCache computes the state's active domain once per commit and
// shares it across the pipeline's per-goroutine evaluators.
type domainCache struct {
	st   *storage.State
	once sync.Once
	dom  []value.Value
}

func (d *domainCache) get() []value.Value {
	d.once.Do(func() { d.dom = d.st.ActiveDomain() })
	return d.dom
}

// step runs the four-phase commit pipeline for one transaction,
// attributing each phase's time through si (nil = uninstrumented).
func (c *Checker) step(t uint64, tx *storage.Transaction, si *stepInstr) ([]check.Violation, error) {
	if c.started && t <= c.now {
		return nil, fmt.Errorf("core: non-increasing timestamp %d after %d", t, c.now)
	}
	sc := &stepCtx{c: c, t: t, planned: c.mode == EvalPlanned}
	sc.orc = &oracle{c: c, now: t}
	ps := si.phase(phaseApply, obs.SpanApply)
	err := c.applyPhase(sc, tx)
	ps.done(tx.Len(), err)
	if err != nil {
		return nil, err
	}

	// Evaluators cache the active domain and so are per-goroutine;
	// newEval hands each pipeline task its own, all sharing one domain
	// computation for this commit.
	dc := &domainCache{st: c.cur}
	newEval := func() *fol.Evaluator {
		return fol.NewEvaluatorShared(c.cur, &oracle{c: c, now: t}, dc.get)
	}

	ps = si.phase(phaseUpdate, obs.SpanUpdate)
	err = c.updatePhase(sc, t, newEval, si, ps.span)
	ps.done(len(c.nodes), err)
	if err != nil {
		return nil, err
	}
	ps = si.phase(phaseCheck, obs.SpanCheck)
	out, err := c.checkPhase(sc, t, newEval, si, ps.span)
	ps.done(len(c.constraints), err)
	if err != nil {
		return nil, err
	}
	ps = si.phase(phaseCarry, obs.SpanCarry)
	err = c.carryPhase(sc, t, newEval, si, ps.span)
	ps.done(len(c.nodes), err)
	if err != nil {
		return nil, err
	}

	c.index++
	c.now = t
	c.started = true
	return out, nil
}

// applyPhase validates the transaction, computes its net delta against
// the pre-state (planned mode), and applies it to the current state.
func (c *Checker) applyPhase(sc *stepCtx, tx *storage.Transaction) error {
	if err := tx.Validate(c.schema); err != nil {
		return err
	}
	if sc.planned {
		if err := c.computeDelta(sc, tx); err != nil {
			return err
		}
	}
	return c.cur.Apply(tx)
}

// updatePhase brings every auxiliary node's answer up to the new state:
// levels run in order (children before parents), nodes within a level
// concurrently. span (the update phase span, may be nil) collects
// per-worker attribution children, one batch per level.
func (c *Checker) updatePhase(sc *stepCtx, t uint64, newEval func() *fol.Evaluator, si *stepInstr, span *obs.Span) error {
	for lvl, level := range c.levels {
		if err := c.runNodePhase(level, t, newEval, si, span, fmt.Sprintf("L%d.", lvl), true, func(n auxNode, ev *fol.Evaluator) error {
			return n.phaseA(sc, ev, t)
		}); err != nil {
			return err
		}
	}
	return nil
}

// carryPhase computes the carry-over state for the next transition
// (all computations first, so nodes keep answering for this state),
// then commits it. Computations only read this-state answers and write
// the node's own pending slot, so they run concurrently; commits are a
// cheap sequential sweep.
func (c *Checker) carryPhase(sc *stepCtx, t uint64, newEval func() *fol.Evaluator, si *stepInstr, span *obs.Span) error {
	if err := c.runNodePhase(c.nodes, t, newEval, si, span, "", false, func(n auxNode, ev *fol.Evaluator) error {
		return n.phaseBCompute(sc, ev, t)
	}); err != nil {
		return err
	}
	for _, node := range c.nodes {
		node.phaseBCommit(t)
	}
	return nil
}

// runNodePhase drives one node phase over nodes, inline when the
// pipeline is sequential and on the worker pool otherwise. Parallel
// runs record per-node durations and errors in per-index slots and
// emit trace events afterwards in schedule order, so output and the
// returned error (the first node's, in schedule order) are
// deterministic regardless of interleaving. Per-node trace events fire
// only when traceNodes is set AND the tracer wants OpNodeUpdate — the
// Enabled gate keeps formula rendering off the hot path when the sink
// would discard DEBUG events anyway. span/label feed the worker-pool
// attribution of parallel batches.
func (c *Checker) runNodePhase(nodes []auxNode, t uint64, newEval func() *fol.Evaluator, si *stepInstr, span *obs.Span, label string, traceNodes bool, f func(auxNode, *fol.Evaluator) error) error {
	n := len(nodes)
	if n == 0 {
		return nil
	}
	tr := si.tracer()
	if !traceNodes || !obs.TraceEnabled(tr, obs.OpNodeUpdate) {
		tr = nil
	}
	if c.par <= 1 || n == 1 {
		ev := newEval()
		for _, node := range nodes {
			if tr == nil {
				if err := f(node, ev); err != nil {
					return err
				}
				continue
			}
			n0 := time.Now()
			err := f(node, ev)
			tr.Trace(obs.TraceEvent{
				Op: obs.OpNodeUpdate, Detail: node.formula().String(),
				Time: t, Duration: time.Since(n0), Err: err,
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	durs := make([]time.Duration, n)
	batchStart := time.Now()
	timings := c.runTasksTimed(n, si != nil, func(i int) {
		ev := newEval()
		if tr == nil {
			errs[i] = f(nodes[i], ev)
			return
		}
		n0 := time.Now()
		errs[i] = f(nodes[i], ev)
		durs[i] = time.Since(n0)
	})
	si.attributePool(span, batchStart, label, timings)
	for i, node := range nodes {
		if tr != nil {
			tr.Trace(obs.TraceEvent{
				Op: obs.OpNodeUpdate, Detail: node.formula().String(),
				Time: t, Duration: durs[i], Err: errs[i],
			})
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// checkPhase evaluates every constraint's denial against the new state,
// concurrently when the pipeline is parallel. Violations are collected
// per constraint and flattened in installation order, and per-
// constraint metrics and trace events are emitted in that same order,
// so results are identical to the sequential pipeline's. Per-check
// trace events are gated on the tracer wanting OpConstraintCheck (the
// DEBUG-frequency op); metrics are recorded regardless.
func (c *Checker) checkPhase(sc *stepCtx, t uint64, newEval func() *fol.Evaluator, si *stepInstr, span *obs.Span) ([]check.Violation, error) {
	n := len(c.constraints)
	if n == 0 {
		return nil, nil
	}
	if sc.planned && len(c.lastSkips) != n {
		c.lastSkips = make([]SkipInfo, n)
	}
	var m *obs.Metrics
	if si != nil {
		m = si.m
	}
	tr := si.tracer()
	if !obs.TraceEnabled(tr, obs.OpConstraintCheck) {
		tr = nil
	}
	instrumented := m != nil || tr != nil
	if c.par <= 1 || n == 1 {
		ev := newEval()
		var out []check.Violation
		for i, con := range c.constraints {
			var c0 time.Time
			if instrumented {
				c0 = time.Now()
			}
			vs, err := c.checkCon(ev, sc, i, t)
			if m != nil && i < len(c.conMetrics) {
				c.conMetrics[i].seconds.Observe(time.Since(c0).Seconds())
				c.conMetrics[i].violations.Add(uint64(len(vs)))
			}
			if tr != nil {
				tr.Trace(obs.TraceEvent{
					Op: obs.OpConstraintCheck, Detail: con.Name,
					Time: t, Duration: time.Since(c0), Err: err,
				})
			}
			if err != nil {
				return nil, err
			}
			out = append(out, vs...)
		}
		return out, nil
	}
	results := make([][]check.Violation, n)
	errs := make([]error, n)
	durs := make([]time.Duration, n)
	batchStart := time.Now()
	timings := c.runTasksTimed(n, si != nil, func(i int) {
		ev := newEval()
		var c0 time.Time
		if instrumented {
			c0 = time.Now()
		}
		results[i], errs[i] = c.checkCon(ev, sc, i, t)
		if instrumented {
			durs[i] = time.Since(c0)
		}
	})
	si.attributePool(span, batchStart, "", timings)
	var out []check.Violation
	for i, con := range c.constraints {
		if m != nil && i < len(c.conMetrics) {
			c.conMetrics[i].seconds.Observe(durs[i].Seconds())
			c.conMetrics[i].violations.Add(uint64(len(results[i])))
		}
		if tr != nil {
			tr.Trace(obs.TraceEvent{
				Op: obs.OpConstraintCheck, Detail: con.Name,
				Time: t, Duration: durs[i], Err: errs[i],
			})
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, vs := range results {
		out = append(out, vs...)
	}
	return out, nil
}

// checkOne evaluates one constraint's denial and materializes the
// violation witnesses.
func (c *Checker) checkOne(ev *fol.Evaluator, con *check.Constraint, t uint64) ([]check.Violation, error) {
	b, err := ev.Eval(con.Denial)
	if err != nil {
		return nil, fmt.Errorf("core: constraint %s at state %d: %w", con.Name, c.index, err)
	}
	return check.FromBindings(con, c.index, t, b)
}

// checkCon checks constraint i at time t through the cheapest sound
// strategy: reuse the previous answer when the commit touched nothing
// the denial reads, re-derive semi-naively from the delta when every
// changed source has exact row-level changes, otherwise run the
// compiled plan in full — or the tree-walking evaluator when the
// denial's shape defeated plan compilation.
func (c *Checker) checkCon(ev *fol.Evaluator, sc *stepCtx, i int, t uint64) ([]check.Violation, error) {
	con := c.constraints[i]
	if !sc.planned {
		return c.checkOne(ev, con, t)
	}
	cs := c.conStates[i]
	clean := !cs.domDep && !sc.relsChanged(cs.readRels) && !anyDirty(cs.nodes)
	if clean && cs.lastB != nil {
		c.lastSkips[i] = SkipInfo{Constraint: con.Name, Action: ActionSkipped, Reason: "read set untouched"}
		return check.FromBindings(con, c.index, t, cs.lastB)
	}
	if cs.canSeed && cs.lastB != nil && !cs.inexactDirty() {
		b, err := c.seminaive(sc, cs)
		if err != nil {
			return nil, fmt.Errorf("core: constraint %s at state %d: %w", con.Name, c.index, err)
		}
		cs.lastB = b
		c.lastSkips[i] = SkipInfo{Constraint: con.Name, Action: ActionSeeded, Reason: "re-derived from delta"}
		return check.FromBindings(con, c.index, t, b)
	}
	if cs.plan != nil {
		b, err := cs.plan.Eval(c.cur, sc.orc, nil)
		if err != nil {
			return nil, fmt.Errorf("core: constraint %s at state %d: %w", con.Name, c.index, err)
		}
		cs.lastB = b
		c.lastSkips[i] = SkipInfo{Constraint: con.Name, Action: ActionPlanned, Reason: fullEvalReason(clean, cs)}
		return check.FromBindings(con, c.index, t, b)
	}
	b, err := ev.Eval(con.Denial)
	if err != nil {
		return nil, fmt.Errorf("core: constraint %s at state %d: %w", con.Name, c.index, err)
	}
	cs.lastB = b
	c.lastSkips[i] = SkipInfo{Constraint: con.Name, Action: ActionTreeWalk, Reason: cs.planErr}
	return check.FromBindings(con, c.index, t, b)
}

// fullEvalReason explains why a planned constraint ran in full.
func fullEvalReason(clean bool, cs *conState) string {
	switch {
	case cs.lastB == nil:
		return "no previous answer"
	case clean:
		return "read set untouched but unseedable" // unreachable with lastB set
	case cs.domDep:
		return "domain-dependent denial"
	case !cs.canSeed:
		return "plan not seedable"
	default:
		return "inexact source delta"
	}
}

// seminaive re-derives the denial answer from the previous one and the
// commit's delta: surviving rows are retested under the new state
// (changes can only invalidate them), and each changed source literal
// seeds plan execution with its delta rows — any *new* answer needs a
// literal that flipped this commit, and every flip appears in a
// relation delta or an exact node answer delta.
func (c *Checker) seminaive(sc *stepCtx, cs *conState) (*fol.Bindings, error) {
	out := fol.NewBindings(cs.plan.Vars())
	var rerr error
	cs.lastB.EachRow(func(row tuple.Tuple) bool {
		ok, err := cs.plan.RetestRow(c.cur, sc.orc, row)
		if err != nil {
			rerr = err
			return false
		}
		if ok {
			rerr = out.AddRow(row)
		}
		return rerr == nil
	})
	if rerr != nil {
		return nil, rerr
	}
	emit := func(row tuple.Tuple) bool {
		rerr = out.AddRow(row)
		return rerr == nil
	}
	for k, src := range cs.sources {
		var seeds []tuple.Tuple
		if src.IsRel {
			d := sc.relDeltaOf(src.Rel)
			if d == nil {
				continue
			}
			if src.Positive {
				seeds = d.inserted
			} else {
				seeds = d.deleted
			}
		} else {
			node := cs.srcNode[k]
			if node == nil || !node.dirty() {
				continue
			}
			added, removed, exact := node.answerDelta()
			if !exact {
				return nil, fmt.Errorf("core: semi-naive check with inexact source delta for %q", src.Temp.String())
			}
			if src.Positive {
				seeds = added
			} else {
				seeds = removed
			}
		}
		if len(seeds) == 0 {
			continue
		}
		if err := cs.plan.ExecuteSeeded(c.cur, sc.orc, src, seeds, emit); err != nil {
			return nil, err
		}
		if rerr != nil {
			return nil, rerr
		}
	}
	return out, nil
}

// State returns the current database state; callers must not mutate it.
func (c *Checker) State() *storage.State { return c.cur }

// Len reports the number of committed states.
func (c *Checker) Len() int { return c.index }

// ConstraintNames returns the installed constraint names in order.
func (c *Checker) ConstraintNames() []string {
	out := make([]string, len(c.constraints))
	for i, con := range c.constraints {
		out[i] = con.Name
	}
	return out
}

// Now returns the timestamp of the latest state.
func (c *Checker) Now() uint64 { return c.now }

// Stats summarizes the auxiliary storage — the space side of the
// paper's claim (compare with the naive checker's HistoryBytes).
type Stats struct {
	Nodes      int
	Entries    int
	Timestamps int
	Bytes      int
	PerNode    []NodeStats
}

// Stats reports the current auxiliary storage of the checker.
func (c *Checker) Stats() Stats {
	s := Stats{Nodes: len(c.nodes)}
	for _, n := range c.nodes {
		ns := n.stats()
		s.Entries += ns.Entries
		s.Timestamps += ns.Timestamps
		s.Bytes += ns.Bytes
		s.PerNode = append(s.PerNode, ns)
	}
	return s
}

// CheckInvariants verifies the internal invariants of every auxiliary
// node (sorted, in-window, deduplicated timestamp sets); used by tests.
func (c *Checker) CheckInvariants() error {
	if !c.started {
		return nil
	}
	for _, n := range c.nodes {
		if s, ok := n.(*sinceNode); ok {
			if err := s.invariants(c.now); err != nil {
				return err
			}
		}
	}
	return nil
}

// oracle resolves temporal nodes from the auxiliary state at the
// current evaluation time. Its lookups are read-only over maps frozen
// at AddConstraint time, so one oracle may serve concurrent evaluators.
type oracle struct {
	c   *Checker
	now uint64
}

func (o *oracle) lookup(f mtl.Formula) (auxNode, error) {
	node, ok := o.c.byNode[f]
	if !ok {
		return nil, fmt.Errorf("core: no auxiliary state for temporal node %q; was the constraint compiled?", f.String())
	}
	return node, nil
}

func (o *oracle) Enumerate(f mtl.Formula) (*fol.Bindings, error) {
	node, err := o.lookup(f)
	if err != nil {
		return nil, err
	}
	return node.enumerate(o.now)
}

func (o *oracle) Test(f mtl.Formula, env fol.Env) (bool, error) {
	node, err := o.lookup(f)
	if err != nil {
		return false, err
	}
	return node.test(env, o.now)
}

// TestKey probes a temporal node's answer by encoded row key without
// materializing an Env — the plan executor's fast path (plan.KeyTester).
func (o *oracle) TestKey(f mtl.Formula, key []byte) (bool, error) {
	node, err := o.lookup(f)
	if err != nil {
		return false, err
	}
	return node.testKey(key, o.now)
}
