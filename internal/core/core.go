// Package core implements the paper's contribution: incremental checking
// of real-time (metric past-temporal) integrity constraints using
// bounded history encoding.
//
// The checker never stores the history. Instead, for every temporal
// subformula of every installed constraint it maintains a small
// auxiliary relation (see aux.go) that is updated once per committed
// transaction; the constraint's denial is then evaluated against the
// current state with temporal subformulas answered from the auxiliary
// relations. Space is bounded by the constraints' metric windows and the
// data that flowed through the database — independent of history length
// — and so is per-transaction checking time.
package core

import (
	"fmt"
	"time"

	"rtic/internal/check"
	"rtic/internal/fol"
	"rtic/internal/mtl"
	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/storage"
)

// Checker is the incremental bounded-history checker.
type Checker struct {
	schema      *schema.Schema
	cur         *storage.State
	constraints []*check.Constraint

	nodes  []auxNode // bottom-up (children before parents)
	byNode map[mtl.Formula]auxNode
	// byShape dedups structurally identical temporal subformulas across
	// constraints: one auxiliary node serves every occurrence with the
	// same canonical form (the form includes variable names and
	// intervals, so equal shape means equal semantics).
	byShape map[string]auxNode

	index   int
	now     uint64
	started bool

	pruningDisabled bool

	obs *obs.Observer
	// conMetrics caches the per-constraint metric handles (violation
	// counter, check-latency histogram), parallel to constraints, so the
	// commit path never does a labelled lookup.
	conMetrics []conMetrics
}

type conMetrics struct {
	violations *obs.Counter
	seconds    *obs.Histogram
}

// New returns an empty checker over s. Install constraints with
// AddConstraint before the first Step.
func New(s *schema.Schema) *Checker {
	return &Checker{
		schema:  s,
		cur:     storage.NewState(s),
		byNode:  make(map[mtl.Formula]auxNode),
		byShape: make(map[string]auxNode),
	}
}

// DisablePruning turns off the window-pruning rules — the ablation knob
// of the space experiments. Answers are unaffected (stale timestamps
// simply never satisfy the window test) but auxiliary storage grows
// with history length instead of staying bounded. Must be called before
// constraints are added.
func (c *Checker) DisablePruning() error {
	if len(c.nodes) > 0 || c.started {
		return fmt.Errorf("core: DisablePruning must be called before constraints are added")
	}
	c.pruningDisabled = true
	return nil
}

// AddConstraint installs a compiled constraint and builds auxiliary
// nodes for its temporal subformulas. Constraints must be installed
// before the first transaction: the encoding summarizes the history from
// its beginning.
func (c *Checker) AddConstraint(con *check.Constraint) error {
	if c.started {
		return fmt.Errorf("core: constraint %q added after the history started; the auxiliary encoding would miss past states", con.Name)
	}
	for _, existing := range c.constraints {
		if existing.Name == con.Name {
			return fmt.Errorf("core: duplicate constraint %q", con.Name)
		}
	}
	if err := c.compile(con.Denial); err != nil {
		return err
	}
	c.constraints = append(c.constraints, con)
	c.syncConMetrics()
	return nil
}

// SetObserver attaches (or detaches, with nil) the instrumentation
// sinks. Safe to call at any time between commits; pre-registers the
// per-constraint series so a scrape shows every constraint at zero.
func (c *Checker) SetObserver(o *obs.Observer) {
	c.obs = o
	c.conMetrics = nil
	c.syncConMetrics()
}

// syncConMetrics extends the cached per-constraint handles to cover
// every installed constraint.
func (c *Checker) syncConMetrics() {
	m, _ := c.obs.Parts()
	if m == nil {
		return
	}
	for i := len(c.conMetrics); i < len(c.constraints); i++ {
		name := c.constraints[i].Name
		c.conMetrics = append(c.conMetrics, conMetrics{
			violations: m.Violations.With(name),
			seconds:    m.ConstraintSeconds.With(name),
		})
	}
}

// compile walks the denial bottom-up and allocates one auxiliary node
// per temporal subformula occurrence.
func (c *Checker) compile(f mtl.Formula) error {
	switch n := f.(type) {
	case mtl.Truth, *mtl.Cmp:
		return nil
	case *mtl.Atom:
		return nil
	case *mtl.Not:
		return c.compile(n.F)
	case *mtl.And:
		if err := c.compile(n.L); err != nil {
			return err
		}
		return c.compile(n.R)
	case *mtl.Or:
		if err := c.compile(n.L); err != nil {
			return err
		}
		return c.compile(n.R)
	case *mtl.Exists:
		return c.compile(n.F)
	case *mtl.Prev:
		if err := c.compile(n.F); err != nil {
			return err
		}
		c.register(n, newPrevNode(n))
		return nil
	case *mtl.Once:
		if err := c.compile(n.F); err != nil {
			return err
		}
		node, err := newOnceNode(n)
		if err != nil {
			return err
		}
		node.noPrune = c.pruningDisabled
		c.register(n, node)
		return nil
	case *mtl.Since:
		if err := c.compile(n.L); err != nil {
			return err
		}
		if err := c.compile(n.R); err != nil {
			return err
		}
		node, err := newSinceNode(n)
		if err != nil {
			return err
		}
		node.noPrune = c.pruningDisabled
		c.register(n, node)
		return nil
	default:
		return fmt.Errorf("core: compile: non-kernel node %T (%q)", f, f.String())
	}
}

func (c *Checker) register(f mtl.Formula, node auxNode) {
	if _, ok := c.byNode[f]; ok {
		return
	}
	shape := f.String()
	if existing, ok := c.byShape[shape]; ok {
		// Alias this occurrence to the shared node; it is updated once
		// per transaction and answers for every occurrence.
		c.byNode[f] = existing
		return
	}
	c.byShape[shape] = node
	c.byNode[f] = node
	c.nodes = append(c.nodes, node)
}

// Step commits a transaction at time t, updates every auxiliary node,
// and checks every constraint in the resulting state. With an observer
// attached it also records commit/constraint timing, violation counts
// and auxiliary-storage gauges, and emits step/node-update trace
// events; without one the instrumentation path is two nil checks.
func (c *Checker) Step(t uint64, tx *storage.Transaction) ([]check.Violation, error) {
	m, tr := c.obs.Parts()
	if m == nil && tr == nil {
		return c.step(t, tx, nil, nil)
	}
	start := time.Now()
	vs, err := c.step(t, tx, m, tr)
	d := time.Since(start)
	if m != nil {
		if err != nil {
			m.CommitErrors.Inc()
		} else {
			m.Commits.Inc()
			m.CommitSeconds.Observe(d.Seconds())
			st := c.Stats()
			m.AuxNodes.Set(int64(st.Nodes))
			m.AuxEntries.Set(int64(st.Entries))
			m.AuxTimestamps.Set(int64(st.Timestamps))
			m.AuxBytes.Set(int64(st.Bytes))
		}
	}
	if tr != nil {
		tr.Trace(obs.TraceEvent{Op: obs.OpStep, Time: t, Duration: d, Err: err})
	}
	return vs, err
}

func (c *Checker) step(t uint64, tx *storage.Transaction, m *obs.Metrics, tr obs.Tracer) ([]check.Violation, error) {
	if c.started && t <= c.now {
		return nil, fmt.Errorf("core: non-increasing timestamp %d after %d", t, c.now)
	}
	if err := tx.Validate(c.schema); err != nil {
		return nil, err
	}
	if err := c.cur.Apply(tx); err != nil {
		return nil, err
	}

	ev := fol.NewEvaluator(c.cur, &oracle{c: c, now: t})

	// Phase A: bring every node's answer up to the new state,
	// children first.
	for _, node := range c.nodes {
		if tr == nil {
			if err := node.phaseA(ev, t); err != nil {
				return nil, err
			}
			continue
		}
		n0 := time.Now()
		err := node.phaseA(ev, t)
		tr.Trace(obs.TraceEvent{
			Op: obs.OpNodeUpdate, Detail: node.formula().String(),
			Time: t, Duration: time.Since(n0), Err: err,
		})
		if err != nil {
			return nil, err
		}
	}

	// Check constraints against the new state.
	var out []check.Violation
	for i, con := range c.constraints {
		var c0 time.Time
		if m != nil || tr != nil {
			c0 = time.Now()
		}
		b, err := ev.Eval(con.Denial)
		var vs []check.Violation
		if err != nil {
			err = fmt.Errorf("core: constraint %s at state %d: %w", con.Name, c.index, err)
		} else {
			vs, err = check.FromBindings(con, c.index, t, b)
		}
		if m != nil && i < len(c.conMetrics) {
			c.conMetrics[i].seconds.Observe(time.Since(c0).Seconds())
			c.conMetrics[i].violations.Add(uint64(len(vs)))
		}
		if tr != nil {
			tr.Trace(obs.TraceEvent{
				Op: obs.OpConstraintCheck, Detail: con.Name,
				Time: t, Duration: time.Since(c0), Err: err,
			})
		}
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}

	// Phase B: compute the carry-over state for the next transition
	// (all computations first, so nodes keep answering for this state),
	// then commit.
	for _, node := range c.nodes {
		if err := node.phaseBCompute(ev, t); err != nil {
			return nil, err
		}
	}
	for _, node := range c.nodes {
		node.phaseBCommit(t)
	}

	c.index++
	c.now = t
	c.started = true
	return out, nil
}

// State returns the current database state; callers must not mutate it.
func (c *Checker) State() *storage.State { return c.cur }

// Len reports the number of committed states.
func (c *Checker) Len() int { return c.index }

// ConstraintNames returns the installed constraint names in order.
func (c *Checker) ConstraintNames() []string {
	out := make([]string, len(c.constraints))
	for i, con := range c.constraints {
		out[i] = con.Name
	}
	return out
}

// Now returns the timestamp of the latest state.
func (c *Checker) Now() uint64 { return c.now }

// Stats summarizes the auxiliary storage — the space side of the
// paper's claim (compare with the naive checker's HistoryBytes).
type Stats struct {
	Nodes      int
	Entries    int
	Timestamps int
	Bytes      int
	PerNode    []NodeStats
}

// Stats reports the current auxiliary storage of the checker.
func (c *Checker) Stats() Stats {
	s := Stats{Nodes: len(c.nodes)}
	for _, n := range c.nodes {
		ns := n.stats()
		s.Entries += ns.Entries
		s.Timestamps += ns.Timestamps
		s.Bytes += ns.Bytes
		s.PerNode = append(s.PerNode, ns)
	}
	return s
}

// CheckInvariants verifies the internal invariants of every auxiliary
// node (sorted, in-window, deduplicated timestamp sets); used by tests.
func (c *Checker) CheckInvariants() error {
	if !c.started {
		return nil
	}
	for _, n := range c.nodes {
		if s, ok := n.(*sinceNode); ok {
			if err := s.invariants(c.now); err != nil {
				return err
			}
		}
	}
	return nil
}

// oracle resolves temporal nodes from the auxiliary state at the
// current evaluation time.
type oracle struct {
	c   *Checker
	now uint64
}

func (o *oracle) lookup(f mtl.Formula) (auxNode, error) {
	node, ok := o.c.byNode[f]
	if !ok {
		return nil, fmt.Errorf("core: no auxiliary state for temporal node %q; was the constraint compiled?", f.String())
	}
	return node, nil
}

func (o *oracle) Enumerate(f mtl.Formula) (*fol.Bindings, error) {
	node, err := o.lookup(f)
	if err != nil {
		return nil, err
	}
	return node.enumerate(o.now)
}

func (o *oracle) Test(f mtl.Formula, env fol.Env) (bool, error) {
	node, err := o.lookup(f)
	if err != nil {
		return false, err
	}
	return node.test(env, o.now)
}
