package core

import (
	"bytes"
	"strings"
	"testing"

	"rtic/internal/check"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// corruptSnapshotFixture produces a valid snapshot of a checker with
// live auxiliary state, as raw bytes.
func corruptSnapshotFixture(t *testing.T) ([]byte, *schema.Schema) {
	t.Helper()
	s := schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	c := New(s)
	con, err := check.Parse("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	for i, tx := range []*storage.Transaction{
		storage.NewTransaction().Insert("fire", tuple.Ints(7)),
		storage.NewTransaction().Insert("hire", tuple.Ints(7)),
	} {
		if _, err := c.Step(uint64(i*100), tx); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), s
}

// TestLoadSnapshotRejectsDamage feeds truncated, bit-flipped, and
// wrong-magic snapshots to LoadSnapshot and demands a descriptive error
// every time — no panics, no silently partial state.
func TestLoadSnapshotRejectsDamage(t *testing.T) {
	raw, s := corruptSnapshotFixture(t)

	flip := func(off int) []byte {
		b := append([]byte(nil), raw...)
		b[off] ^= 0x01
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty file", nil, "truncated in header"},
		{"header only partially present", raw[:10], "truncated in header"},
		{"wrong magic", append([]byte("NOTASNAP"), raw[8:]...), "not an rtic snapshot"},
		{"gob stream without envelope", raw[20:], "not an rtic snapshot"},
		{"payload truncated at start", raw[:21], "truncated"},
		{"payload truncated near end", raw[:len(raw)-1], "truncated"},
		{"payload truncated halfway", raw[:20+(len(raw)-20)/2], "truncated"},
		{"length field corrupted", flip(8), ""},
		{"checksum field corrupted", flip(17), "checksum mismatch"},
		{"payload bit flip early", flip(25), "checksum mismatch"},
		{"payload bit flip late", flip(len(raw) - 2), "checksum mismatch"},
		{"extreme length field", func() []byte {
			b := append([]byte(nil), raw...)
			for i := 8; i < 16; i++ {
				b[i] = 0xff
			}
			return b
		}(), "implausible payload length"},
		{"zero length field", func() []byte {
			b := append([]byte(nil), raw...)
			for i := 8; i < 16; i++ {
				b[i] = 0
			}
			return b
		}(), "implausible payload length"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := LoadSnapshot(s, bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("damaged snapshot accepted (checker: %d states)", c.Len())
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestLoadSnapshotEveryTruncation sweeps every truncation point of a
// real snapshot: none may panic or load, except the full length which
// must round-trip.
func TestLoadSnapshotEveryTruncation(t *testing.T) {
	raw, s := corruptSnapshotFixture(t)
	for cut := 0; cut < len(raw); cut++ {
		if _, err := LoadSnapshot(s, bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("cut=%d: truncated snapshot accepted", cut)
		}
	}
	c, err := LoadSnapshot(s, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	if c.Len() != 2 || c.Now() != 100 {
		t.Errorf("restored Len=%d Now=%d, want 2/100", c.Len(), c.Now())
	}
}
