package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rtic/internal/mtl"
)

// The commit pipeline's schedule: auxiliary nodes are grouped into
// dependency levels at AddConstraint time — a node's level is one more
// than the deepest temporal subformula nested inside it, so every level
// only reads answers of strictly lower levels. Nodes within one level
// share no state and are updated concurrently; levels run in order with
// a barrier between them. The flat bottom-up walk the sequential
// pipeline used is exactly the concatenation of the levels.

// directTemporal appends the outermost temporal subformulas of f to
// out: recursion descends through the first-order skeleton and stops at
// Prev/Once/Since without entering them (their own nesting is already
// accounted for in their level).
func directTemporal(f mtl.Formula, out *[]mtl.Formula) {
	switch n := f.(type) {
	case *mtl.Prev, *mtl.Once, *mtl.Since:
		*out = append(*out, f)
	case *mtl.Not:
		directTemporal(n.F, out)
	case *mtl.And:
		directTemporal(n.L, out)
		directTemporal(n.R, out)
	case *mtl.Or:
		directTemporal(n.L, out)
		directTemporal(n.R, out)
	case *mtl.Exists:
		directTemporal(n.F, out)
	}
}

// operands returns the immediate subformulas of a temporal operator.
func operands(f mtl.Formula) []mtl.Formula {
	switch n := f.(type) {
	case *mtl.Prev:
		return []mtl.Formula{n.F}
	case *mtl.Once:
		return []mtl.Formula{n.F}
	case *mtl.Since:
		return []mtl.Formula{n.L, n.R}
	default:
		return nil
	}
}

// nodeLevel computes the dependency level of the temporal formula f:
// zero when f contains no nested temporal subformulas, otherwise one
// more than the deepest child level. compile registers children before
// parents, so every child's node is already leveled.
func (c *Checker) nodeLevel(f mtl.Formula) int {
	var kids []mtl.Formula
	for _, op := range operands(f) {
		directTemporal(op, &kids)
	}
	lvl := 0
	for _, k := range kids {
		child, ok := c.byNode[k]
		if !ok {
			continue // unreachable: compile registers bottom-up
		}
		if cl := c.levelOf[child] + 1; cl > lvl {
			lvl = cl
		}
	}
	return lvl
}

// schedule places a freshly registered node into its level.
func (c *Checker) schedule(f mtl.Formula, node auxNode) {
	lvl := c.nodeLevel(f)
	c.levelOf[node] = lvl
	for len(c.levels) <= lvl {
		c.levels = append(c.levels, nil)
	}
	c.levels[lvl] = append(c.levels[lvl], node)
}

// Schedule describes the leveled update plan, outermost slice per
// level, each entry a node's canonical formula; exposed for tests and
// diagnostics.
func (c *Checker) Schedule() [][]string {
	out := make([][]string, len(c.levels))
	for i, level := range c.levels {
		for _, n := range level {
			out[i] = append(out[i], n.formula().String())
		}
	}
	return out
}

// NodeCost is the worst-case bounded-history estimate for one
// auxiliary node of the leveled schedule: Span is the number of
// timestamps a single binding may retain inside the metric window
// (1 for prev and for unbounded-above windows, Hi−Lo+1 otherwise),
// Arity the number of free variables spanning the binding space, and
// Weight their saturating product — the per-binding storage bound the
// linter's cost pass sums per constraint.
type NodeCost struct {
	Formula string      // canonical rendering
	Node    mtl.Formula // the temporal subformula itself
	Level   int         // dependency level in the schedule
	Span    uint64
	Arity   int
	Weight  uint64
}

// ScheduleCosts reports the per-node cost estimates of the current
// leveled schedule, in schedule order (level by level).
func (c *Checker) ScheduleCosts() []NodeCost {
	var out []NodeCost
	for lvl, level := range c.levels {
		for _, n := range level {
			f := n.formula()
			span := windowSpan(f)
			arity := len(mtl.FreeVars(f))
			w := arity
			if w < 1 {
				w = 1
			}
			out = append(out, NodeCost{
				Formula: f.String(),
				Node:    f,
				Level:   lvl,
				Span:    span,
				Arity:   arity,
				Weight:  satMul(span, uint64(w)),
			})
		}
	}
	return out
}

// windowSpan bounds how many timestamps one binding of the node can
// retain: prev stores a single state, an unbounded-above window keeps
// only its earliest timestamp (satisfaction is monotone in age), and a
// bounded window prunes ages beyond Hi, leaving at most Hi+1 live
// timestamps (ages 0..Hi — pruning ignores Lo, young anchors may still
// age into the window).
func windowSpan(f mtl.Formula) uint64 {
	var iv mtl.Interval
	switch n := f.(type) {
	case *mtl.Prev:
		return 1
	case *mtl.Once:
		iv = n.I
	case *mtl.Since:
		iv = n.I
	default:
		return 1
	}
	if iv.Unbounded {
		return 1
	}
	return satAdd(iv.Hi, 1)
}

func satAdd(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return ^uint64(0)
	}
	return s
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/a != b {
		return ^uint64(0)
	}
	return p
}

// Parallelism reports the worker-pool width the pipeline runs with
// (1 = sequential).
func (c *Checker) Parallelism() int { return c.par }

// resolveParallelism maps the WithParallelism argument to a pool width:
// n >= 1 is taken literally, anything else means GOMAXPROCS.
func resolveParallelism(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runTasks evaluates f(0..n-1) on a pool bounded by the checker's
// parallelism. With one worker (or one task) it degenerates to the
// plain sequential loop. f must confine its writes to per-index slots;
// error collection is the caller's business for exactly that reason.
// taskTiming attributes one pool task: which worker ran it, how long
// it waited after the batch opened (queue wait), and how long it ran.
type taskTiming struct {
	worker int
	start  time.Duration // offset from batch start when the task began
	dur    time.Duration
}

// runTasksTimed is runTasks plus per-task attribution: when timed is
// set it returns one taskTiming per index, feeding the worker-pool
// queue-wait/utilization metrics and the per-worker spans. With timed
// off it degenerates to runTasks and returns nil, so the
// uninstrumented path allocates nothing.
func (c *Checker) runTasksTimed(n int, timed bool, f func(i int)) []taskTiming {
	if !timed {
		c.runTasks(n, f)
		return nil
	}
	timings := make([]taskTiming, n)
	workers := c.par
	if workers > n {
		workers = n
	}
	t0 := time.Now()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			s := time.Since(t0)
			f(i)
			timings[i] = taskTiming{worker: 0, start: s, dur: time.Since(t0) - s}
		}
		return timings
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				s := time.Since(t0)
				f(i)
				timings[i] = taskTiming{worker: w, start: s, dur: time.Since(t0) - s}
			}
		}(w)
	}
	wg.Wait()
	return timings
}

func (c *Checker) runTasks(n int, f func(i int)) {
	workers := c.par
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
