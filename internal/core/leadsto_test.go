package core

import (
	"testing"

	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// End-to-end behaviour of the deadline-obligation extension: the
// obligation "reserved leadsto[0,3] paid" is violated at the first
// commit after the deadline expires, for each unfulfilled ticket.

func ticketSchema() *schema.Schema {
	return schema.NewBuilder().Relation("reserved", 1).Relation("paid", 1).MustBuild()
}

func TestLeadsToFulfilledInTime(t *testing.T) {
	s := ticketSchema()
	c := New(s)
	addConstraint(t, c, s, "deadline", "reserved(tk) leadsto[0,3] paid(tk)")

	// Reserve at t=1 (event markers: removed next step).
	mustStep(t, c, 1, ins("reserved", 1))
	// Pay at t=3 — inside the deadline.
	tx := storage.NewTransaction().Delete("reserved", tuple.Ints(1)).Insert("paid", tuple.Ints(1))
	if vs := mustStep(t, c, 3, tx); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
	// Long after the deadline: still no violation, the obligation was met.
	if vs := mustStep(t, c, 50, del("paid", 1)); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestLeadsToExpires(t *testing.T) {
	s := ticketSchema()
	c := New(s)
	addConstraint(t, c, s, "deadline", "reserved(tk) leadsto[0,3] paid(tk)")

	mustStep(t, c, 1, ins("reserved", 1))
	mustStep(t, c, 2, del("reserved", 1))
	// t=4: deadline (1+3) not yet passed — distance 3 is still in time.
	if vs := mustStep(t, c, 4, storage.NewTransaction()); len(vs) != 0 {
		t.Fatalf("violations at deadline = %v", vs)
	}
	// t=5: distance 4 > 3 — the obligation expired.
	vs := mustStep(t, c, 5, storage.NewTransaction())
	if len(vs) != 1 || !vs[0].Binding[0].Equal(value.Int(1)) {
		t.Fatalf("violations = %v, want tk=1", vs)
	}
	// Late payment silences the monitor from the next state on.
	if vs := mustStep(t, c, 6, ins("paid", 1)); len(vs) != 0 {
		t.Fatalf("violations after late payment = %v", vs)
	}
}

func TestLeadsToSameStateFulfillment(t *testing.T) {
	s := ticketSchema()
	c := New(s)
	addConstraint(t, c, s, "deadline", "reserved(tk) leadsto[0,3] paid(tk)")

	// Reserved and paid in the same transaction: fulfilled at distance 0.
	tx := storage.NewTransaction().Insert("reserved", tuple.Ints(9)).Insert("paid", tuple.Ints(9))
	mustStep(t, c, 1, tx)
	tx2 := storage.NewTransaction().Delete("reserved", tuple.Ints(9)).Delete("paid", tuple.Ints(9))
	mustStep(t, c, 2, tx2)
	if vs := mustStep(t, c, 100, storage.NewTransaction()); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestLeadsToMultipleObligations(t *testing.T) {
	s := ticketSchema()
	c := New(s)
	addConstraint(t, c, s, "deadline", "reserved(tk) leadsto[0,2] paid(tk)")

	// Two reservations; only ticket 2 is paid.
	tx := storage.NewTransaction().Insert("reserved", tuple.Ints(1)).Insert("reserved", tuple.Ints(2))
	mustStep(t, c, 1, tx)
	tx2 := storage.NewTransaction().
		Delete("reserved", tuple.Ints(1)).
		Delete("reserved", tuple.Ints(2)).
		Insert("paid", tuple.Ints(2))
	mustStep(t, c, 2, tx2)
	vs := mustStep(t, c, 10, del("paid", 2))
	if len(vs) != 1 || !vs[0].Binding[0].Equal(value.Int(1)) {
		t.Fatalf("violations = %v, want only tk=1", vs)
	}
}
