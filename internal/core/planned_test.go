package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rtic/internal/check"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// The delta-driven check path (compiled plans, skip/seed decisions,
// node refresh) must be invisible in the answers: a checker in the
// default planned mode and one forced to full tree-walking evaluation
// report identical violations on arbitrary histories.

func TestPlannedMatchesTreeWalk(t *testing.T) {
	s := equivSchema()
	actions := map[SkipAction]int{}
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		nCons := 1 + r.Intn(3)
		planned := New(s)
		walk := New(s, WithEvaluation(EvalTreeWalk))
		var names []string
		for k := 0; k < nCons; k++ {
			src := constraintPool[r.Intn(len(constraintPool))]
			name := fmt.Sprintf("c%d", k)
			for _, c := range []*Checker{planned, walk} {
				con, err := check.Parse(name, src, s)
				if err != nil {
					t.Fatalf("seed %d: constraint %q: %v", seed, src, err)
				}
				if err := c.AddConstraint(con); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			names = append(names, src)
		}
		tm := uint64(0)
		steps := 30 + r.Intn(20)
		for i := 0; i < steps; i++ {
			tm += uint64(1 + r.Intn(3))
			tx := randomTx(r, 4)
			got, err := planned.Step(tm, tx.Clone())
			if err != nil {
				t.Fatalf("seed %d step %d: planned: %v\nconstraints: %v", seed, i, err, names)
			}
			want, err := walk.Step(tm, tx)
			if err != nil {
				t.Fatalf("seed %d step %d: tree-walk: %v", seed, i, err)
			}
			cg, cw := canon(got), canon(want)
			if !sameCanon(cg, cw) {
				t.Fatalf("seed %d step %d (t=%d, tx=%s):\nplanned:   %v\ntree-walk: %v\nconstraints: %v",
					seed, i, tm, tx, cg, cw, names)
			}
			if err := planned.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
			for _, si := range planned.LastSkips() {
				actions[si.Action]++
			}
		}
		if len(walk.LastSkips()) != 0 {
			t.Fatalf("seed %d: tree-walk mode recorded skip decisions", seed)
		}
	}
	// The differential only means something if the cheap strategies
	// actually fired: the fixed seeds must exercise reuse, semi-naive
	// seeding and full plan execution.
	for _, a := range []SkipAction{ActionSkipped, ActionSeeded, ActionPlanned} {
		if actions[a] == 0 {
			t.Fatalf("action %q never chosen across all seeds (distribution %v)", a, actions)
		}
	}
}

// LastSkips must attribute the right strategy: a commit that touches
// nothing a constraint reads skips it; a commit touching its relations
// re-derives it from the delta.
func TestLastSkipsDecisions(t *testing.T) {
	s := equivSchema()
	c := New(s)
	for name, src := range map[string]string{
		"onP": "p(x) -> not once[0,5] p(x)",
		"onQ": "not (exists x: q(x) and prev q(x))",
	} {
		con, err := check.Parse(name, src, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddConstraint(con); err != nil {
			t.Fatal(err)
		}
	}
	actionOf := func(name string) SkipInfo {
		t.Helper()
		for _, si := range c.LastSkips() {
			if si.Constraint == name {
				return si
			}
		}
		t.Fatalf("no skip record for %q in %v", name, c.LastSkips())
		return SkipInfo{}
	}

	// First commit: no previous answers, both run in full.
	tx := storage.NewTransaction()
	tx.Insert("p", tuple.Ints(1))
	if _, err := c.Step(1, tx); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"onP", "onQ"} {
		if got := actionOf(name); got.Action != ActionPlanned {
			t.Fatalf("first commit: %s = %v, want %v", name, got, ActionPlanned)
		}
	}

	// Second commit touches only p: the q-constraint is skipped.
	tx = storage.NewTransaction()
	tx.Insert("p", tuple.Ints(2))
	if _, err := c.Step(2, tx); err != nil {
		t.Fatal(err)
	}
	if got := actionOf("onQ"); got.Action != ActionSkipped {
		t.Fatalf("p-only commit: onQ = %v, want %v", got, ActionSkipped)
	}
	if got := actionOf("onP"); got.Action == ActionSkipped {
		t.Fatalf("p-only commit: onP skipped despite p changing: %v", got)
	}

	// A no-op transaction (net delta empty, no node changes): everything
	// is skipped.
	if _, err := c.Step(3, storage.NewTransaction()); err != nil {
		t.Fatal(err)
	}
	if got := actionOf("onQ"); got.Action != ActionSkipped {
		t.Fatalf("empty commit: onQ = %v, want %v", got, ActionSkipped)
	}
	// onP's once node still dirties while fresh anchors age in, so no
	// assertion on it here; see TestPlannedMatchesTreeWalk for the
	// answer-level guarantee.
}

// A skipped constraint must re-report its violations (same bindings) at
// the new state, not suppress them.
func TestSkipReemitsViolations(t *testing.T) {
	s := equivSchema()
	c := New(s)
	con, err := check.Parse("dupQ", "not (exists x: q(x) and once[0,9] q(x))", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	tx := storage.NewTransaction()
	tx.Insert("q", tuple.Ints(7))
	vs, err := c.Step(1, tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations at t=1: %v", vs)
	}
	// Commit touching only p: dupQ's read set is clean, yet the
	// violation persists in the new state and must be re-reported.
	tx = storage.NewTransaction()
	tx.Insert("p", tuple.Ints(1))
	vs, err = c.Step(2, tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Time != 2 {
		t.Fatalf("violations at t=2: %v", vs)
	}
	if got := c.LastSkips()[0]; got.Action != ActionSkipped {
		t.Fatalf("dupQ = %v, want %v", got, ActionSkipped)
	}
}
