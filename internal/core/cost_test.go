package core

import (
	"testing"

	"rtic/internal/check"
	"rtic/internal/schema"
)

func costChecker(t *testing.T, src string) *Checker {
	t.Helper()
	s := schema.NewBuilder().
		Relation("p", 1).
		Relation("q", 1).
		Relation("r", 2).
		MustBuild()
	c := New(s)
	con, err := check.Parse("c", src, s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if err := c.AddConstraint(con); err != nil {
		t.Fatalf("AddConstraint(%q): %v", src, err)
	}
	return c
}

func TestScheduleCosts(t *testing.T) {
	cases := []struct {
		src       string
		formula   string
		span      uint64
		arity     int
		weight    uint64
		wantNodes int
	}{
		// Denial keeps once[0,9] p(x): bounded window spans ages 0..9.
		{`p(x) -> not once[0,9] p(x)`, "", 10, 1, 10, 1},
		// Unbounded window retains a single timestamp per binding.
		{`p(x) -> not once q(x)`, "", 1, 1, 1, 1},
		// prev stores exactly one state.
		{`p(x) -> prev[1,5] p(x)`, "", 1, 1, 1, 1},
		// Binary binding space doubles the weight.
		{`r(x, y) -> not once[0,4] r(x, y)`, "", 5, 2, 10, 1},
	}
	for _, tc := range cases {
		c := costChecker(t, tc.src)
		costs := c.ScheduleCosts()
		if len(costs) != tc.wantNodes {
			t.Errorf("%q: %d nodes, want %d", tc.src, len(costs), tc.wantNodes)
			continue
		}
		nc := costs[0]
		if nc.Span != tc.span || nc.Arity != tc.arity || nc.Weight != tc.weight {
			t.Errorf("%q: got span=%d arity=%d weight=%d, want span=%d arity=%d weight=%d",
				tc.src, nc.Span, nc.Arity, nc.Weight, tc.span, tc.arity, tc.weight)
		}
	}
}

// TestScheduleCostsLevels checks costs come out in schedule order with
// correct levels for nested temporal formulas.
func TestScheduleCostsLevels(t *testing.T) {
	c := costChecker(t, `p(x) -> not once[0,3] prev[0,9] p(x)`)
	costs := c.ScheduleCosts()
	if len(costs) != 2 {
		t.Fatalf("got %d nodes, want 2", len(costs))
	}
	if costs[0].Level != 0 || costs[1].Level != 1 {
		t.Errorf("levels = %d,%d, want 0,1", costs[0].Level, costs[1].Level)
	}
	for i := 1; i < len(costs); i++ {
		if costs[i].Level < costs[i-1].Level {
			t.Errorf("costs not in schedule order: level %d after %d", costs[i].Level, costs[i-1].Level)
		}
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	max := ^uint64(0)
	if got := satAdd(max, 1); got != max {
		t.Errorf("satAdd(max,1) = %d", got)
	}
	if got := satMul(max, 2); got != max {
		t.Errorf("satMul(max,2) = %d", got)
	}
	if got := satMul(0, max); got != 0 {
		t.Errorf("satMul(0,max) = %d", got)
	}
}
