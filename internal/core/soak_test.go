package core

import (
	"math/rand"
	"testing"

	"rtic/internal/check"
	"rtic/internal/schema"
)

// A long soak: thousands of transactions against a wide constraint set,
// with the auxiliary invariants and the bounded-space property audited
// throughout. This is the "leave it running" confidence test for the
// monitor use case.
func TestSoakLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	s := schema.NewBuilder().
		Relation("p", 1).
		Relation("q", 1).
		Relation("r", 2).
		MustBuild()
	c := New(s)
	srcs := []string{
		"p(x) -> not once[0,20] q(x)",
		"p(x) -> not once[5,40] q(x)",
		"p(x) -> not once q(x)",
		"q(x) -> not prev p(x)",
		"r(x, y) -> not (p(x) since[0,30] r(x, y))",
		"p(x) -> not once[0,10] prev q(x)",
		"p(x) leadsto[0,15] q(x)",
	}
	for i, src := range srcs {
		con, err := check.Parse("soak"+string(rune('a'+i)), src, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddConstraint(con); err != nil {
			t.Fatal(err)
		}
	}

	r := rand.New(rand.NewSource(777))
	tm := uint64(0)
	maxBytes := 0
	for i := 0; i < 5000; i++ {
		tm += uint64(1 + r.Intn(3))
		if _, err := c.Step(tm, randomTx(r, 6)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if i%250 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		if b := c.Stats().Bytes; b > maxBytes {
			maxBytes = b
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The space high-water mark must stay within the window-implied
	// budget: windows ≤ 40, domain 6, a handful of nodes — far below
	// what 5000 stored states would take.
	if maxBytes > 64*1024 {
		t.Fatalf("auxiliary high-water mark %d bytes; bounded encoding should stay in the KiB range", maxBytes)
	}
	if c.Len() != 5000 {
		t.Fatalf("Len = %d", c.Len())
	}
}
