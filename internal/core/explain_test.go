package core

import (
	"strings"
	"testing"

	"rtic/internal/storage"
	"rtic/internal/tuple"
)

func TestExplainRehire(t *testing.T) {
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")

	mustStep(t, c, 10, ins("fire", 7))
	tx := storage.NewTransaction().Delete("fire", tuple.Ints(7)).Insert("hire", tuple.Ints(7))
	vs := mustStep(t, c, 100, tx)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}

	ex, err := c.Explain(vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if ex.Constraint != "hire(e) -> not once[0,365] fire(e)" {
		t.Fatalf("constraint = %q", ex.Constraint)
	}
	if len(ex.Evidence) != 1 {
		t.Fatalf("evidence = %+v", ex.Evidence)
	}
	ev := ex.Evidence[0]
	if ev.Formula != "once[0,365] fire(e)" || ev.Negated || !ev.Holds {
		t.Fatalf("evidence = %+v", ev)
	}
	if len(ev.Times) != 1 || ev.Times[0] != 10 {
		t.Fatalf("witness times = %v, want [10]", ev.Times)
	}
	out := ex.String()
	for _, frag := range []string{"no_quick_rehire", "witnessed at t=[10]", "required: once[0,365] fire(e)"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("explanation text missing %q:\n%s", frag, out)
		}
	}
}

func TestExplainNegatedEvidence(t *testing.T) {
	// Deadline constraint: the violation requires the ABSENCE of a
	// recent reservation — evidence is a negated, non-holding node.
	s := ticketSchema()
	c := New(s)
	addConstraint(t, c, s, "pay_in_time", "paid(tk) -> once[0,3] reserved(tk)")
	vs := mustStep(t, c, 5, ins("paid", 9))
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	ex, err := c.Explain(vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Evidence) != 1 {
		t.Fatalf("evidence = %+v", ex.Evidence)
	}
	ev := ex.Evidence[0]
	if !ev.Negated || ev.Holds || len(ev.Times) != 0 {
		t.Fatalf("evidence = %+v, want negated non-holding", ev)
	}
	if !strings.Contains(ex.String(), "required absent") {
		t.Fatalf("explanation text:\n%s", ex.String())
	}
}

func TestExplainErrors(t *testing.T) {
	s := hrSchema()
	c := New(s)
	addConstraint(t, c, s, "c", "hire(e) -> not once[0,365] fire(e)")
	mustStep(t, c, 10, ins("fire", 7))
	vs := mustStep(t, c, 100, ins("hire", 7))
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	// Move past the violating state: explanation must refuse.
	mustStep(t, c, 200, storage.NewTransaction())
	if _, err := c.Explain(vs[0]); err == nil {
		t.Fatal("stale violation explained")
	}
	// Unknown constraint.
	vs2 := mustStep(t, c, 300, storage.NewTransaction())
	_ = vs2
	bad := vs[0]
	bad.Time = c.Now()
	bad.Constraint = "nope"
	if _, err := c.Explain(bad); err == nil {
		t.Fatal("unknown constraint explained")
	}
}
