package relation

import (
	"fmt"

	"rtic/internal/tuple"
)

// Index is a hash index over a subset of a relation's columns, built on
// demand by the join machinery. It is a snapshot: mutations to the
// underlying relation after construction are not reflected.
type Index struct {
	columns []int
	buckets map[string][]tuple.Tuple
}

// BuildIndex indexes r on the given column positions.
func BuildIndex(r *Relation, columns []int) (*Index, error) {
	for _, c := range columns {
		if c < 0 || c >= r.arity {
			return nil, fmt.Errorf("relation: index column %d out of range for arity %d", c, r.arity)
		}
	}
	ix := &Index{columns: append([]int(nil), columns...), buckets: make(map[string][]tuple.Tuple)}
	r.Each(func(t tuple.Tuple) bool {
		k := t.Project(ix.columns).Key()
		ix.buckets[k] = append(ix.buckets[k], t)
		return true
	})
	return ix, nil
}

// Lookup returns the tuples whose indexed columns equal key (a tuple of
// len(columns) values). The returned slice must not be mutated.
func (ix *Index) Lookup(key tuple.Tuple) []tuple.Tuple {
	return ix.buckets[key.Key()]
}

// Buckets reports the number of distinct keys.
func (ix *Index) Buckets() int { return len(ix.buckets) }

// MaintainedIndex is a hash index over a subset of a relation's columns
// that the relation keeps current across Insert/Delete. Query plans
// register the column sets they join on at compile time (EnsureIndex)
// and probe buckets by key bytes at execution time, so index lookups on
// the commit hot path neither rebuild the index nor allocate.
type MaintainedIndex struct {
	columns []int
	buckets map[string][]tuple.Tuple
}

// Columns returns the indexed column positions; must not be mutated.
func (ix *MaintainedIndex) Columns() []int { return ix.columns }

// LookupKeyBytes returns the tuples whose indexed columns encode (per
// tuple.AppendKeyTo of the projected columns) to key. The returned slice
// must not be mutated.
func (ix *MaintainedIndex) LookupKeyBytes(key []byte) []tuple.Tuple {
	return ix.buckets[string(key)]
}

func (ix *MaintainedIndex) keyOf(t tuple.Tuple) string {
	var buf [64]byte
	k := buf[:0]
	for _, c := range ix.columns {
		k = tuple.AppendValueKey(k, t[c])
	}
	return string(k)
}

func (ix *MaintainedIndex) insert(t tuple.Tuple) {
	k := ix.keyOf(t)
	ix.buckets[k] = append(ix.buckets[k], t)
}

func (ix *MaintainedIndex) remove(t tuple.Tuple) {
	k := ix.keyOf(t)
	bucket := ix.buckets[k]
	for i, u := range bucket {
		if u.Equal(t) {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			if len(bucket) == 0 {
				delete(ix.buckets, k)
			} else {
				ix.buckets[k] = bucket
			}
			return
		}
	}
}

// EnsureIndex registers (or returns the existing) maintained index on
// the given column positions, building it from the current rows. Columns
// are used in the order given; plans canonicalize to ascending order.
func (r *Relation) EnsureIndex(columns []int) (*MaintainedIndex, error) {
	for _, c := range columns {
		if c < 0 || c >= r.arity {
			return nil, fmt.Errorf("relation: index column %d out of range for arity %d", c, r.arity)
		}
	}
	if ix := r.FindIndex(columns); ix != nil {
		return ix, nil
	}
	ix := &MaintainedIndex{
		columns: append([]int(nil), columns...),
		buckets: make(map[string][]tuple.Tuple),
	}
	for _, t := range r.rows {
		ix.insert(t)
	}
	r.indexes = append(r.indexes, ix)
	return ix, nil
}

// FindIndex returns the maintained index on exactly the given column
// positions, or nil when none is registered.
func (r *Relation) FindIndex(columns []int) *MaintainedIndex {
	for _, ix := range r.indexes {
		if equalInts(ix.columns, columns) {
			return ix
		}
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
