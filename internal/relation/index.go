package relation

import (
	"fmt"

	"rtic/internal/tuple"
)

// Index is a hash index over a subset of a relation's columns, built on
// demand by the join machinery. It is a snapshot: mutations to the
// underlying relation after construction are not reflected.
type Index struct {
	columns []int
	buckets map[string][]tuple.Tuple
}

// BuildIndex indexes r on the given column positions.
func BuildIndex(r *Relation, columns []int) (*Index, error) {
	for _, c := range columns {
		if c < 0 || c >= r.arity {
			return nil, fmt.Errorf("relation: index column %d out of range for arity %d", c, r.arity)
		}
	}
	ix := &Index{columns: append([]int(nil), columns...), buckets: make(map[string][]tuple.Tuple)}
	r.Each(func(t tuple.Tuple) bool {
		k := t.Project(ix.columns).Key()
		ix.buckets[k] = append(ix.buckets[k], t)
		return true
	})
	return ix, nil
}

// Lookup returns the tuples whose indexed columns equal key (a tuple of
// len(columns) values). The returned slice must not be mutated.
func (ix *Index) Lookup(key tuple.Tuple) []tuple.Tuple {
	return ix.buckets[key.Key()]
}

// Buckets reports the number of distinct keys.
func (ix *Index) Buckets() int { return len(ix.buckets) }
