package relation

import (
	"testing"

	"rtic/internal/tuple"
)

func TestBuildIndexAndLookup(t *testing.T) {
	r := New(2)
	r.MustInsert(tuple.Ints(1, 10))
	r.MustInsert(tuple.Ints(1, 20))
	r.MustInsert(tuple.Ints(2, 30))

	ix, err := BuildIndex(r, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Buckets() != 2 {
		t.Fatalf("buckets = %d, want 2", ix.Buckets())
	}
	got := ix.Lookup(tuple.Ints(1))
	if len(got) != 2 {
		t.Fatalf("lookup(1) returned %d tuples, want 2", len(got))
	}
	if len(ix.Lookup(tuple.Ints(9))) != 0 {
		t.Fatal("lookup of absent key returned tuples")
	}
}

func TestBuildIndexMultiColumn(t *testing.T) {
	r := New(3)
	r.MustInsert(tuple.Ints(1, 2, 3))
	r.MustInsert(tuple.Ints(1, 2, 4))
	r.MustInsert(tuple.Ints(1, 9, 5))
	ix, err := BuildIndex(r, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup(tuple.Ints(1, 2)); len(got) != 2 {
		t.Fatalf("lookup(1,2) = %d tuples, want 2", len(got))
	}
}

func TestBuildIndexBadColumn(t *testing.T) {
	if _, err := BuildIndex(New(2), []int{2}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := BuildIndex(New(2), []int{-1}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestIndexIsSnapshot(t *testing.T) {
	r := New(1)
	r.MustInsert(tuple.Ints(1))
	ix, err := BuildIndex(r, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(tuple.Ints(2))
	if len(ix.Lookup(tuple.Ints(2))) != 0 {
		t.Fatal("index reflected post-build mutation")
	}
}
