package relation

import (
	"fmt"
	"testing"

	"rtic/internal/tuple"
)

func benchRelation(n int) *Relation {
	r := New(2)
	for i := int64(0); i < int64(n); i++ {
		r.MustInsert(tuple.Ints(i%64, i))
	}
	return r
}

func BenchmarkInsert(b *testing.B) {
	b.ReportAllocs()
	r := New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MustInsert(tuple.Ints(int64(i%64), int64(i)))
	}
}

func BenchmarkContains(b *testing.B) {
	r := benchRelation(4096)
	probe := tuple.Ints(7, 777)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Contains(probe)
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	for _, n := range []int{256, 4096} {
		r := benchRelation(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildIndex(r, []int{0}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	r := benchRelation(4096)
	ix, err := BuildIndex(r, []int{0})
	if err != nil {
		b.Fatal(err)
	}
	key := tuple.Ints(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(key)
	}
}

func BenchmarkTuplesSorted(b *testing.B) {
	r := benchRelation(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Tuples()
	}
}
