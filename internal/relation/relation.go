// Package relation implements in-memory relations: sets of fixed-arity
// tuples with deterministic iteration, set operations and hash indexes.
// Relations are the storage unit for database states and for the
// checker's auxiliary encodings.
package relation

import (
	"fmt"
	"sort"

	"rtic/internal/tuple"
)

// Relation is a mutable set of tuples of a fixed arity.
type Relation struct {
	arity int
	rows  map[string]tuple.Tuple
}

// New creates an empty relation of the given arity. Arity zero is legal:
// such a relation is either empty (false) or holds the empty tuple (true).
func New(arity int) *Relation {
	if arity < 0 {
		panic(fmt.Sprintf("relation: negative arity %d", arity))
	}
	return &Relation{arity: arity, rows: make(map[string]tuple.Tuple)}
}

// Arity reports the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len reports the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Insert adds t to the relation, copying it. It reports whether the
// tuple was newly added and returns an error on arity mismatch.
func (r *Relation) Insert(t tuple.Tuple) (bool, error) {
	if len(t) != r.arity {
		return false, fmt.Errorf("relation: insert arity %d into relation of arity %d", len(t), r.arity)
	}
	k := t.Key()
	if _, ok := r.rows[k]; ok {
		return false, nil
	}
	r.rows[k] = t.Clone()
	return true, nil
}

// MustInsert inserts and panics on arity mismatch; for tests and
// generators whose arities are correct by construction.
func (r *Relation) MustInsert(t tuple.Tuple) bool {
	ok, err := r.Insert(t)
	if err != nil {
		panic(err)
	}
	return ok
}

// Delete removes t; it reports whether the tuple was present.
func (r *Relation) Delete(t tuple.Tuple) bool {
	k := t.Key()
	if _, ok := r.rows[k]; !ok {
		return false
	}
	delete(r.rows, k)
	return true
}

// Contains reports membership of t.
func (r *Relation) Contains(t tuple.Tuple) bool {
	_, ok := r.rows[t.Key()]
	return ok
}

// Each calls f for every tuple in unspecified order; f must not mutate
// the relation. If f returns false, iteration stops early.
func (r *Relation) Each(f func(tuple.Tuple) bool) {
	for _, t := range r.rows {
		if !f(t) {
			return
		}
	}
}

// Tuples returns all tuples sorted lexicographically — the deterministic
// view used by reporting and tests.
func (r *Relation) Tuples() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, len(r.rows))
	for _, t := range r.rows {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns an independent deep copy.
func (r *Relation) Clone() *Relation {
	c := New(r.arity)
	for k, t := range r.rows {
		c.rows[k] = t.Clone()
	}
	return c
}

// Clear removes all tuples.
func (r *Relation) Clear() {
	r.rows = make(map[string]tuple.Tuple)
}

// Equal reports whether two relations hold exactly the same tuples.
func (r *Relation) Equal(s *Relation) bool {
	if r.arity != s.arity || len(r.rows) != len(s.rows) {
		return false
	}
	for k := range r.rows {
		if _, ok := s.rows[k]; !ok {
			return false
		}
	}
	return true
}

// UnionInPlace adds every tuple of s to r; arities must match.
func (r *Relation) UnionInPlace(s *Relation) error {
	if r.arity != s.arity {
		return fmt.Errorf("relation: union of arity %d with %d", r.arity, s.arity)
	}
	for k, t := range s.rows {
		if _, ok := r.rows[k]; !ok {
			r.rows[k] = t.Clone()
		}
	}
	return nil
}

// DiffInPlace removes every tuple of s from r; arities must match.
func (r *Relation) DiffInPlace(s *Relation) error {
	if r.arity != s.arity {
		return fmt.Errorf("relation: diff of arity %d with %d", r.arity, s.arity)
	}
	for k := range s.rows {
		delete(r.rows, k)
	}
	return nil
}

// Size estimates the in-memory footprint in bytes (keys plus tuples),
// used by the space-accounting experiments.
func (r *Relation) Size() int {
	n := 48 // struct + map header
	for k, t := range r.rows {
		n += len(k) + 16 + t.Size()
	}
	return n
}

// String renders the relation as a sorted set literal, for diagnostics.
func (r *Relation) String() string {
	ts := r.Tuples()
	s := "{"
	for i, t := range ts {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s + "}"
}
