// Package relation implements in-memory relations: sets of fixed-arity
// tuples with deterministic iteration, set operations and hash indexes.
// Relations are the storage unit for database states and for the
// checker's auxiliary encodings.
package relation

import (
	"fmt"
	"sort"

	"rtic/internal/tuple"
)

// Relation is a mutable set of tuples of a fixed arity. Query plans may
// register maintained hash indexes over column subsets (EnsureIndex);
// registered indexes are kept current by Insert/Delete and shared by
// every plan probing the same columns.
type Relation struct {
	arity   int
	rows    map[string]tuple.Tuple
	indexes []*MaintainedIndex
}

// New creates an empty relation of the given arity. Arity zero is legal:
// such a relation is either empty (false) or holds the empty tuple (true).
func New(arity int) *Relation {
	if arity < 0 {
		panic(fmt.Sprintf("relation: negative arity %d", arity))
	}
	return &Relation{arity: arity, rows: make(map[string]tuple.Tuple)}
}

// Arity reports the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len reports the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Insert adds t to the relation, copying it. It reports whether the
// tuple was newly added and returns an error on arity mismatch.
func (r *Relation) Insert(t tuple.Tuple) (bool, error) {
	if len(t) != r.arity {
		return false, fmt.Errorf("relation: insert arity %d into relation of arity %d", len(t), r.arity)
	}
	k := t.Key()
	if _, ok := r.rows[k]; ok {
		return false, nil
	}
	c := t.Clone()
	r.rows[k] = c
	for _, ix := range r.indexes {
		ix.insert(c)
	}
	return true, nil
}

// MustInsert inserts and panics on arity mismatch; for tests and
// generators whose arities are correct by construction.
func (r *Relation) MustInsert(t tuple.Tuple) bool {
	ok, err := r.Insert(t)
	if err != nil {
		panic(err)
	}
	return ok
}

// Delete removes t; it reports whether the tuple was present.
func (r *Relation) Delete(t tuple.Tuple) bool {
	k := t.Key()
	stored, ok := r.rows[k]
	if !ok {
		return false
	}
	delete(r.rows, k)
	for _, ix := range r.indexes {
		ix.remove(stored)
	}
	return true
}

// Contains reports membership of t.
func (r *Relation) Contains(t tuple.Tuple) bool {
	_, ok := r.rows[t.Key()]
	return ok
}

// ContainsKeyBytes reports membership of the tuple whose Key() encoding
// is key — the allocation-free probe used by plan execution (the
// []byte→string conversion in a map lookup does not allocate).
func (r *Relation) ContainsKeyBytes(key []byte) bool {
	_, ok := r.rows[string(key)]
	return ok
}

// GetKey returns the stored tuple with the given Key() encoding, if any.
func (r *Relation) GetKey(key string) (tuple.Tuple, bool) {
	t, ok := r.rows[key]
	return t, ok
}

// DeleteKey removes the tuple whose Key() encoding is key, reporting
// whether it was present.
func (r *Relation) DeleteKey(key string) bool {
	stored, ok := r.rows[key]
	if !ok {
		return false
	}
	delete(r.rows, key)
	for _, ix := range r.indexes {
		ix.remove(stored)
	}
	return true
}

// Each calls f for every tuple in unspecified order; f must not mutate
// the relation. If f returns false, iteration stops early.
func (r *Relation) Each(f func(tuple.Tuple) bool) {
	for _, t := range r.rows {
		if !f(t) {
			return
		}
	}
}

// Tuples returns all tuples sorted lexicographically — the deterministic
// view used by reporting and tests.
func (r *Relation) Tuples() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, len(r.rows))
	for _, t := range r.rows {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns an independent deep copy, re-deriving any maintained
// indexes over the copied rows.
func (r *Relation) Clone() *Relation {
	c := New(r.arity)
	for k, t := range r.rows {
		c.rows[k] = t.Clone()
	}
	for _, ix := range r.indexes {
		c.EnsureIndex(ix.columns)
	}
	return c
}

// Clear removes all tuples; maintained indexes stay registered, empty.
func (r *Relation) Clear() {
	r.rows = make(map[string]tuple.Tuple)
	for _, ix := range r.indexes {
		ix.buckets = make(map[string][]tuple.Tuple)
	}
}

// Equal reports whether two relations hold exactly the same tuples.
func (r *Relation) Equal(s *Relation) bool {
	if r.arity != s.arity || len(r.rows) != len(s.rows) {
		return false
	}
	for k := range r.rows {
		if _, ok := s.rows[k]; !ok {
			return false
		}
	}
	return true
}

// UnionInPlace adds every tuple of s to r; arities must match.
func (r *Relation) UnionInPlace(s *Relation) error {
	if r.arity != s.arity {
		return fmt.Errorf("relation: union of arity %d with %d", r.arity, s.arity)
	}
	for k, t := range s.rows {
		if _, ok := r.rows[k]; !ok {
			c := t.Clone()
			r.rows[k] = c
			for _, ix := range r.indexes {
				ix.insert(c)
			}
		}
	}
	return nil
}

// DiffInPlace removes every tuple of s from r; arities must match.
func (r *Relation) DiffInPlace(s *Relation) error {
	if r.arity != s.arity {
		return fmt.Errorf("relation: diff of arity %d with %d", r.arity, s.arity)
	}
	for k := range s.rows {
		if stored, ok := r.rows[k]; ok {
			delete(r.rows, k)
			for _, ix := range r.indexes {
				ix.remove(stored)
			}
		}
	}
	return nil
}

// Size estimates the in-memory footprint in bytes (keys plus tuples),
// used by the space-accounting experiments.
func (r *Relation) Size() int {
	n := 48 // struct + map header
	for k, t := range r.rows {
		n += len(k) + 16 + t.Size()
	}
	return n
}

// String renders the relation as a sorted set literal, for diagnostics.
func (r *Relation) String() string {
	ts := r.Tuples()
	s := "{"
	for i, t := range ts {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s + "}"
}
