package relation

import (
	"testing"
	"testing/quick"

	"rtic/internal/tuple"
)

func TestNewNegativeArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}

func TestInsertContainsDelete(t *testing.T) {
	r := New(2)
	added, err := r.Insert(tuple.Ints(1, 2))
	if err != nil || !added {
		t.Fatalf("first insert: added=%v err=%v", added, err)
	}
	added, err = r.Insert(tuple.Ints(1, 2))
	if err != nil || added {
		t.Fatalf("duplicate insert: added=%v err=%v", added, err)
	}
	if r.Len() != 1 || !r.Contains(tuple.Ints(1, 2)) {
		t.Fatal("membership wrong after insert")
	}
	if !r.Delete(tuple.Ints(1, 2)) {
		t.Fatal("delete of present tuple returned false")
	}
	if r.Delete(tuple.Ints(1, 2)) {
		t.Fatal("delete of absent tuple returned true")
	}
	if r.Len() != 0 {
		t.Fatal("relation not empty after delete")
	}
}

func TestInsertArityMismatch(t *testing.T) {
	r := New(2)
	if _, err := r.Insert(tuple.Ints(1)); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestMustInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).MustInsert(tuple.Ints(1, 2))
}

func TestInsertCopies(t *testing.T) {
	r := New(1)
	row := tuple.Ints(5)
	r.MustInsert(row)
	row[0] = tuple.Ints(9)[0]
	if !r.Contains(tuple.Ints(5)) {
		t.Fatal("relation affected by caller mutation")
	}
}

func TestZeroArity(t *testing.T) {
	r := New(0)
	if r.Contains(tuple.Of()) {
		t.Fatal("empty nullary relation contains ()")
	}
	r.MustInsert(tuple.Of())
	if !r.Contains(tuple.Of()) || r.Len() != 1 {
		t.Fatal("nullary relation broken")
	}
}

func TestTuplesSorted(t *testing.T) {
	r := New(1)
	for _, v := range []int64{3, 1, 2} {
		r.MustInsert(tuple.Ints(v))
	}
	ts := r.Tuples()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Compare(ts[i]) >= 0 {
			t.Fatal("Tuples not sorted")
		}
	}
}

func TestEachEarlyStop(t *testing.T) {
	r := New(1)
	for i := int64(0); i < 10; i++ {
		r.MustInsert(tuple.Ints(i))
	}
	n := 0
	r.Each(func(tuple.Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("Each visited %d tuples, want 3", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := New(1)
	r.MustInsert(tuple.Ints(1))
	c := r.Clone()
	c.MustInsert(tuple.Ints(2))
	if r.Len() != 1 || c.Len() != 2 {
		t.Fatal("Clone shares storage")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(1), New(1)
	a.MustInsert(tuple.Ints(1))
	b.MustInsert(tuple.Ints(1))
	if !a.Equal(b) {
		t.Fatal("equal relations reported unequal")
	}
	b.MustInsert(tuple.Ints(2))
	if a.Equal(b) {
		t.Fatal("unequal relations reported equal")
	}
	if a.Equal(New(2)) {
		t.Fatal("different arities reported equal")
	}
}

func TestUnionDiff(t *testing.T) {
	a, b := New(1), New(1)
	a.MustInsert(tuple.Ints(1))
	b.MustInsert(tuple.Ints(1))
	b.MustInsert(tuple.Ints(2))
	if err := a.UnionInPlace(b); err != nil || a.Len() != 2 {
		t.Fatalf("union: len=%d err=%v", a.Len(), err)
	}
	if err := a.DiffInPlace(b); err != nil || a.Len() != 0 {
		t.Fatalf("diff: len=%d err=%v", a.Len(), err)
	}
	if err := a.UnionInPlace(New(2)); err == nil {
		t.Fatal("union arity mismatch accepted")
	}
	if err := a.DiffInPlace(New(2)); err == nil {
		t.Fatal("diff arity mismatch accepted")
	}
}

func TestClear(t *testing.T) {
	r := New(1)
	r.MustInsert(tuple.Ints(1))
	r.Clear()
	if r.Len() != 0 {
		t.Fatal("Clear left tuples")
	}
}

func TestSizeGrows(t *testing.T) {
	r := New(1)
	s0 := r.Size()
	r.MustInsert(tuple.Ints(1))
	if r.Size() <= s0 {
		t.Fatal("Size did not grow")
	}
}

func TestString(t *testing.T) {
	r := New(1)
	r.MustInsert(tuple.Ints(2))
	r.MustInsert(tuple.Ints(1))
	if got := r.String(); got != "{(1), (2)}" {
		t.Fatalf("String = %q", got)
	}
}

func TestQuickInsertDeleteInverse(t *testing.T) {
	f := func(xs []int64) bool {
		r := New(1)
		for _, x := range xs {
			r.MustInsert(tuple.Ints(x))
		}
		for _, x := range xs {
			r.Delete(tuple.Ints(x))
		}
		return r.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
