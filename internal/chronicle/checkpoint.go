package chronicle

import (
	"fmt"

	"rtic/internal/schema"
	"rtic/internal/storage"
)

// CheckpointedHistory stores a history as a delta log plus periodic full
// snapshots: state i is reconstructed by cloning the nearest checkpoint
// at or before i and replaying the deltas after it. Compared with
// SnapshotHistory it trades random-access time for a large reduction in
// space — the classic recovery-log layout. The most recently
// reconstructed state is cached, which makes the naive checker's
// backward walks (i, i−1, i−2, …) tolerable.
type CheckpointedHistory struct {
	schema   *schema.Schema
	interval int

	times       []uint64
	txs         []*storage.Transaction
	checkpoints map[int]*storage.State // state index -> snapshot
	cur         *storage.State

	cacheIdx   int
	cacheState *storage.State
}

// NewCheckpointedHistory returns an empty history over s that snapshots
// every interval commits (interval ≥ 1; 1 degenerates to full
// snapshotting).
func NewCheckpointedHistory(s *schema.Schema, interval int) *CheckpointedHistory {
	if interval < 1 {
		interval = 1
	}
	return &CheckpointedHistory{
		schema:      s,
		interval:    interval,
		checkpoints: make(map[int]*storage.State),
		cur:         storage.NewState(s),
		cacheIdx:    -1,
	}
}

// Commit appends a transaction at time t.
func (h *CheckpointedHistory) Commit(t uint64, tx *storage.Transaction) error {
	if n := len(h.times); n > 0 && t <= h.times[n-1] {
		return fmt.Errorf("chronicle: non-increasing timestamp %d after %d", t, h.times[n-1])
	}
	if err := tx.Validate(h.schema); err != nil {
		return err
	}
	if err := h.cur.Apply(tx); err != nil {
		return err
	}
	idx := len(h.times)
	h.times = append(h.times, t)
	h.txs = append(h.txs, tx.Clone())
	if idx%h.interval == 0 {
		h.checkpoints[idx] = h.cur.Clone()
	}
	return nil
}

// Len reports the number of states.
func (h *CheckpointedHistory) Len() int { return len(h.times) }

// Time returns the timestamp of state i.
func (h *CheckpointedHistory) Time(i int) uint64 { return h.times[i] }

// State reconstructs state i. The returned state is owned by the
// history's cache; callers must not mutate it.
func (h *CheckpointedHistory) State(i int) *storage.State {
	if i < 0 || i >= len(h.times) {
		panic(fmt.Sprintf("chronicle: state index %d out of range [0,%d)", i, len(h.times)))
	}
	if i == len(h.times)-1 {
		return h.cur
	}
	if h.cacheIdx == i {
		return h.cacheState
	}
	// Nearest checkpoint at or before i.
	base := (i / h.interval) * h.interval
	st, ok := h.checkpoints[base]
	if !ok {
		panic(fmt.Sprintf("chronicle: missing checkpoint %d", base))
	}
	// Start from the cached state when it is a closer replay base.
	start := base
	rec := st.Clone()
	if h.cacheIdx >= 0 && h.cacheIdx > base && h.cacheIdx < i {
		start = h.cacheIdx
		rec = h.cacheState.Clone()
	}
	for j := start + 1; j <= i; j++ {
		if err := rec.Apply(h.txs[j]); err != nil {
			panic(fmt.Sprintf("chronicle: replaying committed transaction %d: %v", j, err))
		}
	}
	h.cacheIdx, h.cacheState = i, rec
	return rec
}

// Size estimates the footprint: checkpoints plus the delta log.
func (h *CheckpointedHistory) Size() int {
	n := h.cur.Size()
	for _, st := range h.checkpoints {
		n += st.Size()
	}
	for _, tx := range h.txs {
		n += 32
		for _, op := range tx.Ops() {
			n += len(op.Rel) + op.Tuple.Size() + 2
		}
	}
	return n
}
