package chronicle

import (
	"math/rand"
	"testing"

	"rtic/internal/storage"
	"rtic/internal/tuple"
)

func TestCheckpointedMatchesSnapshotHistory(t *testing.T) {
	s := testSchema()
	for _, interval := range []int{1, 3, 7, 100} {
		full := NewSnapshotHistory(s)
		cp := NewCheckpointedHistory(s, interval)
		r := rand.New(rand.NewSource(int64(interval)))
		tm := uint64(0)
		for i := 0; i < 50; i++ {
			tm += uint64(1 + r.Intn(2))
			tx := storage.NewTransaction()
			v := r.Int63n(5)
			if r.Intn(2) == 0 {
				tx.Insert("p", tuple.Ints(v))
			} else {
				tx.Delete("p", tuple.Ints(v))
			}
			if err := full.Commit(tm, tx.Clone()); err != nil {
				t.Fatal(err)
			}
			if err := cp.Commit(tm, tx); err != nil {
				t.Fatal(err)
			}
		}
		if full.Len() != cp.Len() {
			t.Fatalf("interval %d: lengths differ", interval)
		}
		// Random-access every state in a scattered order.
		order := r.Perm(cp.Len())
		for _, i := range order {
			if full.Time(i) != cp.Time(i) {
				t.Fatalf("interval %d: Time(%d) differs", interval, i)
			}
			if !full.State(i).Equal(cp.State(i)) {
				t.Fatalf("interval %d: State(%d) differs", interval, i)
			}
		}
		// Backward walk (the naive checker's access pattern).
		for i := cp.Len() - 1; i >= 0; i-- {
			if !full.State(i).Equal(cp.State(i)) {
				t.Fatalf("interval %d: backward State(%d) differs", interval, i)
			}
		}
	}
}

func TestCheckpointedSpaceSmaller(t *testing.T) {
	s := testSchema()
	full := NewSnapshotHistory(s)
	cp := NewCheckpointedHistory(s, 50)
	for i := uint64(1); i <= 400; i++ {
		tx := storage.NewTransaction().Insert("p", tuple.Ints(int64(i%20)))
		if err := full.Commit(i, tx.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := cp.Commit(i, tx); err != nil {
			t.Fatal(err)
		}
	}
	if cp.Size() >= full.Size()/2 {
		t.Fatalf("checkpointed size %d not substantially below snapshot size %d", cp.Size(), full.Size())
	}
}

func TestCheckpointedErrors(t *testing.T) {
	s := testSchema()
	cp := NewCheckpointedHistory(s, 0) // clamped to 1
	if err := cp.Commit(5, storage.NewTransaction()); err != nil {
		t.Fatal(err)
	}
	if err := cp.Commit(5, storage.NewTransaction()); err == nil {
		t.Fatal("equal timestamp accepted")
	}
	if err := cp.Commit(6, storage.NewTransaction().Insert("zz", tuple.Ints(1))); err == nil {
		t.Fatal("invalid tx accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range State did not panic")
		}
	}()
	cp.State(99)
}

func TestCheckpointedLastStateIsLive(t *testing.T) {
	s := testSchema()
	cp := NewCheckpointedHistory(s, 10)
	if err := cp.Commit(1, storage.NewTransaction().Insert("p", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	if err := cp.Commit(2, storage.NewTransaction().Insert("p", tuple.Ints(2))); err != nil {
		t.Fatal(err)
	}
	st := cp.State(1)
	if ok, _ := st.Contains("p", tuple.Ints(2)); !ok {
		t.Fatal("latest state missing latest insert")
	}
}
