package chronicle

import (
	"testing"

	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

func testSchema() *schema.Schema {
	return schema.NewBuilder().Relation("p", 1).MustBuild()
}

func TestLogAppendAndReplay(t *testing.T) {
	l := NewLog(testSchema())
	if err := l.Append(1, storage.NewTransaction().Insert("p", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(5, storage.NewTransaction().Delete("p", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 || l.Entry(1).Time != 5 {
		t.Fatalf("log shape wrong: len=%d", l.Len())
	}
	var times []uint64
	err := l.Replay(func(tm uint64, tx *storage.Transaction) error {
		times = append(times, tm)
		return nil
	})
	if err != nil || len(times) != 2 || times[0] != 1 || times[1] != 5 {
		t.Fatalf("replay times = %v err = %v", times, err)
	}
}

func TestLogRejectsNonIncreasingTime(t *testing.T) {
	l := NewLog(testSchema())
	if err := l.Append(5, storage.NewTransaction()); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(5, storage.NewTransaction()); err == nil {
		t.Fatal("equal timestamp accepted")
	}
	if err := l.Append(4, storage.NewTransaction()); err == nil {
		t.Fatal("decreasing timestamp accepted")
	}
}

func TestLogRejectsInvalidTx(t *testing.T) {
	l := NewLog(testSchema())
	if err := l.Append(1, storage.NewTransaction().Insert("zz", tuple.Ints(1))); err == nil {
		t.Fatal("invalid transaction accepted")
	}
	if l.Len() != 0 {
		t.Fatal("failed append still recorded")
	}
}

func TestLogAppendCopiesTx(t *testing.T) {
	l := NewLog(testSchema())
	tx := storage.NewTransaction().Insert("p", tuple.Ints(1))
	if err := l.Append(1, tx); err != nil {
		t.Fatal(err)
	}
	tx.Insert("p", tuple.Ints(2))
	if l.Entry(0).Tx.Len() != 1 {
		t.Fatal("log aliases caller transaction")
	}
}

func TestReplayStopsOnError(t *testing.T) {
	l := NewLog(testSchema())
	for i := uint64(1); i <= 3; i++ {
		if err := l.Append(i, storage.NewTransaction()); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := l.Replay(func(uint64, *storage.Transaction) error {
		n++
		if n == 2 {
			return errStop
		}
		return nil
	})
	if err != errStop || n != 2 {
		t.Fatalf("replay n=%d err=%v", n, err)
	}
}

var errStop = &stopErr{}

type stopErr struct{}

func (*stopErr) Error() string { return "stop" }

func TestSnapshotHistory(t *testing.T) {
	h := NewSnapshotHistory(testSchema())
	if h.Len() != 0 {
		t.Fatal("fresh history not empty")
	}
	if err := h.Commit(10, storage.NewTransaction().Insert("p", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	if err := h.Commit(20, storage.NewTransaction().Insert("p", tuple.Ints(2))); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 || h.Time(0) != 10 || h.Time(1) != 20 {
		t.Fatal("history shape wrong")
	}
	// State 0 must be unaffected by the second commit.
	if ok, _ := h.State(0).Contains("p", tuple.Ints(2)); ok {
		t.Fatal("snapshot 0 sees later insert")
	}
	if ok, _ := h.State(1).Contains("p", tuple.Ints(1)); !ok {
		t.Fatal("snapshot 1 lost earlier insert")
	}
}

func TestSnapshotHistoryErrors(t *testing.T) {
	h := NewSnapshotHistory(testSchema())
	if err := h.Commit(10, storage.NewTransaction()); err != nil {
		t.Fatal(err)
	}
	if err := h.Commit(10, storage.NewTransaction()); err == nil {
		t.Fatal("equal timestamp accepted")
	}
	if err := h.Commit(11, storage.NewTransaction().Insert("zz", tuple.Ints(1))); err == nil {
		t.Fatal("invalid tx accepted")
	}
	if h.Len() != 1 {
		t.Fatal("failed commit recorded")
	}
}

func TestSnapshotHistorySizeGrows(t *testing.T) {
	h := NewSnapshotHistory(testSchema())
	if err := h.Commit(1, storage.NewTransaction().Insert("p", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	s1 := h.Size()
	if err := h.Commit(2, storage.NewTransaction().Insert("p", tuple.Ints(2))); err != nil {
		t.Fatal(err)
	}
	if h.Size() <= s1 {
		t.Fatal("history size must grow with states")
	}
}

func TestClock(t *testing.T) {
	c := NewClock(100)
	if got := c.Advance(5); got != 100 {
		t.Fatalf("first Advance = %d, want 100", got)
	}
	if got := c.Advance(5); got != 105 {
		t.Fatalf("second Advance = %d, want 105", got)
	}
	if got := c.Advance(0); got != 106 {
		t.Fatalf("zero-gap Advance = %d, want 106 (minimum gap 1)", got)
	}
	if c.Now() != 106 {
		t.Fatalf("Now = %d", c.Now())
	}
}
