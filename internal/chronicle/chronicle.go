// Package chronicle records timestamped database histories.
//
// A history is the sequence of states D_0, D_1, … produced by committing
// transactions at strictly increasing integer timestamps t_0 < t_1 < …
// (one state per committed transaction, per the paper's model). The
// package offers two recordings:
//
//   - Log: the cheap delta log (timestamp + transaction per step), enough
//     to replay a history into any consumer;
//   - SnapshotHistory: full cloned states per step, the storage model of
//     the naive full-history checker.
package chronicle

import (
	"fmt"

	"rtic/internal/schema"
	"rtic/internal/storage"
)

// Entry is one committed transaction with its timestamp.
type Entry struct {
	Time uint64
	Tx   *storage.Transaction
}

// Log is an append-only delta log over a schema.
type Log struct {
	schema  *schema.Schema
	entries []Entry
}

// NewLog returns an empty log over s.
func NewLog(s *schema.Schema) *Log {
	return &Log{schema: s}
}

// Schema returns the schema the log ranges over.
func (l *Log) Schema() *schema.Schema { return l.schema }

// Append validates and records a transaction at the given timestamp.
// Timestamps must be strictly increasing.
func (l *Log) Append(t uint64, tx *storage.Transaction) error {
	if n := len(l.entries); n > 0 && t <= l.entries[n-1].Time {
		return fmt.Errorf("chronicle: non-increasing timestamp %d after %d", t, l.entries[n-1].Time)
	}
	if err := tx.Validate(l.schema); err != nil {
		return err
	}
	l.entries = append(l.entries, Entry{Time: t, Tx: tx.Clone()})
	return nil
}

// Len reports the number of committed transactions.
func (l *Log) Len() int { return len(l.entries) }

// Entry returns the i-th entry.
func (l *Log) Entry(i int) Entry { return l.entries[i] }

// Replay feeds every entry in order to step. Replay stops and returns
// the first error from step.
func (l *Log) Replay(step func(t uint64, tx *storage.Transaction) error) error {
	for _, e := range l.entries {
		if err := step(e.Time, e.Tx); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotHistory materializes every state of a history — the memory
// model of the naive checker. State i is the database after the i-th
// transaction committed at Time(i).
type SnapshotHistory struct {
	schema *schema.Schema
	cur    *storage.State
	times  []uint64
	states []*storage.State
}

// NewSnapshotHistory returns an empty history over s. The history has no
// states until the first Commit; the paper's state D_0 is the result of
// the first committed transaction.
func NewSnapshotHistory(s *schema.Schema) *SnapshotHistory {
	return &SnapshotHistory{schema: s, cur: storage.NewState(s)}
}

// Commit applies tx at time t, snapshotting the resulting state.
func (h *SnapshotHistory) Commit(t uint64, tx *storage.Transaction) error {
	if n := len(h.times); n > 0 && t <= h.times[n-1] {
		return fmt.Errorf("chronicle: non-increasing timestamp %d after %d", t, h.times[n-1])
	}
	if err := tx.Validate(h.schema); err != nil {
		return err
	}
	if err := h.cur.Apply(tx); err != nil {
		return err
	}
	h.times = append(h.times, t)
	h.states = append(h.states, h.cur.Clone())
	return nil
}

// Len reports the number of states.
func (h *SnapshotHistory) Len() int { return len(h.states) }

// Time returns the timestamp of state i.
func (h *SnapshotHistory) Time(i int) uint64 { return h.times[i] }

// State returns state i. The caller must not mutate it.
func (h *SnapshotHistory) State(i int) *storage.State { return h.states[i] }

// Size estimates the total footprint of all stored snapshots in bytes.
func (h *SnapshotHistory) Size() int {
	n := 0
	for _, st := range h.states {
		n += st.Size()
	}
	return n
}

// Clock issues strictly increasing timestamps; a convenience for
// generators and examples that advance time by variable gaps.
type Clock struct {
	now     uint64
	started bool
}

// NewClock returns a clock whose first Advance yields start.
func NewClock(start uint64) *Clock { return &Clock{now: start} }

// Advance moves the clock forward by gap (minimum 1 to preserve strict
// monotonicity) and returns the new time.
func (c *Clock) Advance(gap uint64) uint64 {
	if gap == 0 {
		gap = 1
	}
	if !c.started {
		c.started = true
		return c.now
	}
	c.now += gap
	return c.now
}

// Now returns the last issued timestamp.
func (c *Clock) Now() uint64 { return c.now }
