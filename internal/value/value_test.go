package value

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindString.String() != "string" {
		t.Fatalf("kind names wrong: %s %s", KindInt, KindString)
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Fatalf("unknown kind rendered %q", got)
	}
}

func TestZeroValueIsIntZero(t *testing.T) {
	var v Value
	if v.Kind() != KindInt || v.AsInt() != 0 {
		t.Fatalf("zero Value = %v, want Int(0)", v)
	}
}

func TestAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 {
		t.Fatal("Int payload lost")
	}
	if Str("x").AsString() != "x" {
		t.Fatal("Str payload lost")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { Str("a").AsInt() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Int(5), Str("5"), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	vals := []Value{Int(-3), Int(0), Int(9), Str(""), Str("a"), Str("ab"), Str("b")}
	for i, a := range vals {
		for j, b := range vals {
			got := a.Compare(b)
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", a, b, got)
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", a, b, got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", a, b, got)
			}
		}
	}
}

func TestLess(t *testing.T) {
	if !Int(1).Less(Int(2)) || Int(2).Less(Int(1)) {
		t.Fatal("integer Less wrong")
	}
	if !Int(100).Less(Str("")) {
		t.Fatal("ints must sort before strings")
	}
}

func TestSortStability(t *testing.T) {
	vals := []Value{Str("z"), Int(4), Str("a"), Int(-1)}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
	want := []Value{Int(-1), Int(4), Str("a"), Str("z")}
	for i := range want {
		if !vals[i].Equal(want[i]) {
			t.Fatalf("sorted[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestKeyDisambiguates(t *testing.T) {
	if Int(5).Key() == Str("5").Key() {
		t.Fatal("Int(5) and Str(\"5\") collide")
	}
	if Int(-5).Key() != "i-5" {
		t.Fatalf("Int key = %q", Int(-5).Key())
	}
	if Str("ab").Key() != "sab" {
		t.Fatalf("Str key = %q", Str("ab").Key())
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Str("hi"), "'hi'"},
		{Str("o'clock"), "'o''clock'"},
		{Str(""), "''"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	vals := []Value{Int(0), Int(-12), Int(9999999), Str(""), Str("plain"), Str("it's"), Str("''")}
	for _, v := range vals {
		got, err := Parse(v.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", v.String(), err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "'unterminated", "'stray'quote'", "12x", "abc"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(i int64, s string, pickStr bool) bool {
		var v Value
		if pickStr {
			v = Str(s)
		} else {
			v = Int(i)
		}
		got, err := Parse(v.String())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareConsistentWithEqual(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return (va.Compare(vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSize(t *testing.T) {
	if Int(1).Size() <= 0 {
		t.Fatal("int size must be positive")
	}
	if Str("abcd").Size() <= Str("").Size() {
		t.Fatal("string size must grow with payload")
	}
}

func TestMarshalBinaryRoundTrip(t *testing.T) {
	vals := []Value{Int(0), Int(-1), Int(1<<62 + 7), Int(-1 << 60), Str(""), Str("café"), Str("a'b")}
	for _, v := range vals {
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got Value
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %v: %v", v, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestUnmarshalBinaryErrors(t *testing.T) {
	var v Value
	if err := v.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty encoding accepted")
	}
	if err := v.UnmarshalBinary([]byte{0, 1, 2}); err == nil {
		t.Fatal("short int encoding accepted")
	}
	if err := v.UnmarshalBinary([]byte{99, 0}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestQuickMarshalBinary(t *testing.T) {
	f := func(i int64, s string, pickStr bool) bool {
		var v Value
		if pickStr {
			v = Str(s)
		} else {
			v = Int(i)
		}
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var got Value
		return got.UnmarshalBinary(data) == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
