// Package value defines the scalar constants that populate database tuples
// and appear in constraint formulas: 64-bit integers and strings.
//
// Values are small immutable records with a total order (integers sort
// before strings) and a collision-free string encoding used as a map key
// throughout the engine.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the dynamic type of a Value.
type Kind uint8

const (
	// KindInt is a signed 64-bit integer.
	KindInt Kind = iota
	// KindString is an uninterpreted string.
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable scalar: either an integer or a string.
// The zero Value is the integer 0.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; it must only be called when
// v.Kind() == KindInt.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("value: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsString returns the string payload; it must only be called when
// v.Kind() == KindString.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("value: AsString on " + v.kind.String())
	}
	return v.s
}

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(w Value) bool {
	return v.kind == w.kind && v.i == w.i && v.s == w.s
}

// Compare orders values totally: all integers precede all strings;
// integers order numerically, strings lexicographically.
// It returns -1, 0 or +1.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	default:
		return strings.Compare(v.s, w.s)
	}
}

// Less reports whether v orders strictly before w.
func (v Value) Less(w Value) bool { return v.Compare(w) < 0 }

// Key returns a collision-free encoding of v usable as a map key.
// Integer keys are "i<decimal>", string keys are "s<payload>"; the
// distinct prefixes keep Int(5) and Str("5") apart.
func (v Value) Key() string {
	if v.kind == KindInt {
		return "i" + strconv.FormatInt(v.i, 10)
	}
	return "s" + v.s
}

// AppendKey appends the Key() encoding of v to dst and returns the
// extended slice — the allocation-free form the query-plan executor uses
// to build probe keys in reusable buffers.
func (v Value) AppendKey(dst []byte) []byte {
	if v.kind == KindInt {
		dst = append(dst, 'i')
		return strconv.AppendInt(dst, v.i, 10)
	}
	dst = append(dst, 's')
	return append(dst, v.s...)
}

// KeyLen reports len(v.Key()) without building the string.
func (v Value) KeyLen() int {
	if v.kind == KindInt {
		n := 1 // "i"
		u := v.i
		if u < 0 {
			n++
			if u == -9223372036854775808 {
				return n + 19
			}
			u = -u
		}
		for {
			n++
			u /= 10
			if u == 0 {
				return n
			}
		}
	}
	return 1 + len(v.s)
}

// String renders the value as it appears in the constraint language:
// integers bare, strings single-quoted with quote doubling.
func (v Value) String() string {
	if v.kind == KindInt {
		return strconv.FormatInt(v.i, 10)
	}
	return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
}

// Parse reads a constraint-language literal: a decimal integer
// (optionally signed) or a single-quoted string with quote doubling.
func Parse(src string) (Value, error) {
	if src == "" {
		return Value{}, fmt.Errorf("value: empty literal")
	}
	if src[0] == '\'' {
		if len(src) < 2 || src[len(src)-1] != '\'' {
			return Value{}, fmt.Errorf("value: unterminated string literal %q", src)
		}
		body := src[1 : len(src)-1]
		var b strings.Builder
		for i := 0; i < len(body); i++ {
			if body[i] == '\'' {
				if i+1 >= len(body) || body[i+1] != '\'' {
					return Value{}, fmt.Errorf("value: stray quote in string literal %q", src)
				}
				i++
			}
			b.WriteByte(body[i])
		}
		return Str(b.String()), nil
	}
	i, err := strconv.ParseInt(src, 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("value: bad literal %q: %w", src, err)
	}
	return Int(i), nil
}

// Size returns an estimate of the in-memory footprint of v in bytes,
// used by the space-accounting experiments.
func (v Value) Size() int {
	// kind byte + int64 + string header approximation + payload.
	return 1 + 8 + len(v.s)
}

// MarshalBinary encodes the value for gob/binary transport: a kind byte
// followed by the payload (big-endian int64 or raw string bytes).
func (v Value) MarshalBinary() ([]byte, error) {
	if v.kind == KindInt {
		buf := make([]byte, 9)
		buf[0] = byte(KindInt)
		u := uint64(v.i)
		for k := 0; k < 8; k++ {
			buf[1+k] = byte(u >> (56 - 8*k))
		}
		return buf, nil
	}
	buf := make([]byte, 1+len(v.s))
	buf[0] = byte(KindString)
	copy(buf[1:], v.s)
	return buf, nil
}

// UnmarshalBinary decodes a value produced by MarshalBinary.
func (v *Value) UnmarshalBinary(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("value: empty binary encoding")
	}
	switch Kind(data[0]) {
	case KindInt:
		if len(data) != 9 {
			return fmt.Errorf("value: bad int encoding length %d", len(data))
		}
		var u uint64
		for k := 0; k < 8; k++ {
			u = u<<8 | uint64(data[1+k])
		}
		*v = Int(int64(u))
		return nil
	case KindString:
		*v = Str(string(data[1:]))
		return nil
	default:
		return fmt.Errorf("value: unknown kind byte %d", data[0])
	}
}
