package workload

import (
	"testing"

	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/naive"
)

// replay runs a history through the incremental checker and returns the
// number of violating states and total violations.
func replay(t *testing.T, h History) (states, violations int) {
	t.Helper()
	c := core.New(h.Schema)
	for _, cs := range h.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			t.Fatalf("constraint %s: %v", cs.Name, err)
		}
		if err := c.AddConstraint(con); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range h.Steps {
		vs, err := c.Step(s.Time, s.Tx)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if len(vs) > 0 {
			states++
			violations += len(vs)
		}
	}
	return states, violations
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(UniformConfig{Steps: 50, Seed: 1})
	b := Uniform(UniformConfig{Steps: 50, Seed: 1})
	if len(a.Steps) != len(b.Steps) {
		t.Fatal("lengths differ")
	}
	for i := range a.Steps {
		if a.Steps[i].Time != b.Steps[i].Time || a.Steps[i].Tx.String() != b.Steps[i].Tx.String() {
			t.Fatalf("step %d differs", i)
		}
	}
	c := Uniform(UniformConfig{Steps: 50, Seed: 2})
	same := true
	for i := range a.Steps {
		if a.Steps[i].Tx.String() != c.Steps[i].Tx.String() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical histories")
	}
}

func TestUniformTimesIncrease(t *testing.T) {
	h := Uniform(UniformConfig{Steps: 200, Seed: 3, GapMax: 4})
	for i := 1; i < len(h.Steps); i++ {
		if h.Steps[i].Time <= h.Steps[i-1].Time {
			t.Fatalf("non-increasing time at %d", i)
		}
	}
}

func TestUniformReplays(t *testing.T) {
	h := Uniform(UniformConfig{Steps: 80, Seed: 4})
	replay(t, h) // must not error
}

func TestTicketsViolationRateZero(t *testing.T) {
	h := Tickets(TicketsConfig{Steps: 120, Seed: 5, ViolationRate: 0})
	states, _ := replay(t, h)
	if states != 0 {
		t.Fatalf("zero violation rate produced %d violating states", states)
	}
}

func TestTicketsViolationRatePositive(t *testing.T) {
	h := Tickets(TicketsConfig{Steps: 150, Seed: 6, ViolationRate: 0.5})
	states, viols := replay(t, h)
	if states == 0 || viols == 0 {
		t.Fatal("violation rate 0.5 produced no violations")
	}
}

func TestTicketsAgreesWithNaive(t *testing.T) {
	h := Tickets(TicketsConfig{Steps: 60, Seed: 7, ViolationRate: 0.3})
	inc := core.New(h.Schema)
	ref := naive.New(h.Schema)
	for _, cs := range h.Constraints {
		a, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := check.Parse(cs.Name, cs.Source, h.Schema)
		if err := inc.AddConstraint(a); err != nil {
			t.Fatal(err)
		}
		if err := ref.AddConstraint(b); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range h.Steps {
		got, err := inc.Step(s.Time, s.Tx.Clone())
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want, err := ref.Step(s.Time, s.Tx)
		if err != nil {
			t.Fatalf("step %d: naive: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("step %d: incremental %d violations, naive %d", i, len(got), len(want))
		}
	}
}

func TestHRViolationRates(t *testing.T) {
	clean := HR(HRConfig{Steps: 150, Seed: 8, ViolationRate: 0})
	if states, _ := replay(t, clean); states != 0 {
		t.Fatalf("clean HR history produced %d violating states", states)
	}
	dirty := HR(HRConfig{Steps: 200, Seed: 9, ViolationRate: 0.8})
	if states, _ := replay(t, dirty); states == 0 {
		t.Fatal("dirty HR history produced no violations")
	}
}

func TestLibraryViolationRates(t *testing.T) {
	clean := Library(LibraryConfig{Steps: 150, Seed: 10, ViolationRate: 0})
	if states, _ := replay(t, clean); states != 0 {
		t.Fatalf("clean library history produced %d violating states", states)
	}
	dirty := Library(LibraryConfig{Steps: 200, Seed: 11, ViolationRate: 0.7})
	if states, _ := replay(t, dirty); states == 0 {
		t.Fatal("dirty library history produced no violations")
	}
}

func TestDefaultsApplied(t *testing.T) {
	h := Uniform(UniformConfig{})
	if len(h.Steps) != 100 {
		t.Fatalf("default Steps = %d", len(h.Steps))
	}
	ht := Tickets(TicketsConfig{})
	if len(ht.Steps) != 100 {
		t.Fatalf("default ticket Steps = %d", len(ht.Steps))
	}
	if HR(HRConfig{}).Schema == nil || Library(LibraryConfig{}).Schema == nil {
		t.Fatal("schemas missing")
	}
}

func TestAlarmsViolationRates(t *testing.T) {
	clean := Alarms(AlarmsConfig{Steps: 150, Seed: 20, ViolationRate: 0})
	if states, _ := replay(t, clean); states != 0 {
		t.Fatalf("clean alarms history produced %d violating states", states)
	}
	dirty := Alarms(AlarmsConfig{Steps: 200, Seed: 21, ViolationRate: 0.6})
	states, _ := replay(t, dirty)
	if states == 0 {
		t.Fatal("dirty alarms history produced no violations")
	}
}

func TestAlarmsAgreesWithNaive(t *testing.T) {
	h := Alarms(AlarmsConfig{Steps: 80, Seed: 22, ViolationRate: 0.4})
	inc := core.New(h.Schema)
	ref := naive.New(h.Schema)
	for _, cs := range h.Constraints {
		a, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := check.Parse(cs.Name, cs.Source, h.Schema)
		if err := inc.AddConstraint(a); err != nil {
			t.Fatal(err)
		}
		if err := ref.AddConstraint(b); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range h.Steps {
		got, err := inc.Step(s.Time, s.Tx.Clone())
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want, err := ref.Step(s.Time, s.Tx)
		if err != nil {
			t.Fatalf("step %d: naive: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("step %d: incremental %d vs naive %d", i, len(got), len(want))
		}
	}
}
