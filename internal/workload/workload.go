// Package workload generates the synthetic histories the reconstructed
// experiments run on: a generic uniform-random update stream plus four
// domain scenarios (ticket payment deadlines, HR rehire separation,
// library loan periods, alarm-acknowledgement chains) with controllable
// violation rates. All generators are deterministic in their seed.
package workload

import (
	"fmt"
	"math/rand"

	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// Step is one committed transaction of a generated history.
type Step struct {
	Time uint64
	Tx   *storage.Transaction
}

// ConstraintSpec names a constraint in surface syntax. Line, when
// non-zero, is the line of the spec file it was declared on; generated
// constraints leave it zero.
type ConstraintSpec struct {
	Name   string
	Source string
	Line   int
}

// History bundles a generated update stream with the schema and
// constraints it is meant to be checked against.
type History struct {
	Schema      *schema.Schema
	Constraints []ConstraintSpec
	Steps       []Step
}

// UniformConfig parameterizes the generic random workload.
type UniformConfig struct {
	Steps     int   // number of transactions
	OpsPerTx  int   // tuple modifications per transaction
	Domain    int64 // values drawn from [0, Domain)
	GapMax    int   // timestamp gaps drawn from [1, GapMax]
	Seed      int64
	DeletePct int // percentage of ops that are deletions (default 33)
}

func (c UniformConfig) withDefaults() UniformConfig {
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.OpsPerTx <= 0 {
		c.OpsPerTx = 2
	}
	if c.Domain <= 0 {
		c.Domain = 8
	}
	if c.GapMax <= 0 {
		c.GapMax = 3
	}
	if c.DeletePct <= 0 {
		c.DeletePct = 33
	}
	return c
}

// UniformSchema is the schema the uniform workload ranges over.
func UniformSchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("p", 1).
		Relation("q", 1).
		Relation("r", 2).
		MustBuild()
}

// Uniform generates a random update stream over UniformSchema. The
// returned history carries a representative constraint set; callers may
// substitute their own.
func Uniform(cfg UniformConfig) History {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	steps := make([]Step, 0, cfg.Steps)
	var tm uint64
	for i := 0; i < cfg.Steps; i++ {
		tm += uint64(1 + r.Intn(cfg.GapMax))
		tx := storage.NewTransaction()
		for k := 0; k < cfg.OpsPerTx; k++ {
			rel := []string{"p", "q", "r"}[r.Intn(3)]
			var row tuple.Tuple
			if rel == "r" {
				row = tuple.Ints(r.Int63n(cfg.Domain), r.Int63n(cfg.Domain))
			} else {
				row = tuple.Ints(r.Int63n(cfg.Domain))
			}
			if r.Intn(100) < cfg.DeletePct {
				tx.Delete(rel, row)
			} else {
				tx.Insert(rel, row)
			}
		}
		steps = append(steps, Step{Time: tm, Tx: tx})
	}
	return History{
		Schema: UniformSchema(),
		Constraints: []ConstraintSpec{
			{Name: "no_recent_q", Source: "p(x) -> not once[0,16] q(x)"},
			{Name: "chain", Source: "p(x) -> not (q(x) since[0,16] p(x))"},
		},
		Steps: steps,
	}
}

// TicketsConfig parameterizes the payment-deadline scenario.
type TicketsConfig struct {
	Steps         int
	Seed          int64
	Deadline      uint64  // payment must follow a reservation within this window
	NewPerStep    int     // reservations opened per transaction
	ViolationRate float64 // fraction of tickets paid late or never reserved
	GapMax        int
}

func (c TicketsConfig) withDefaults() TicketsConfig {
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.Deadline == 0 {
		c.Deadline = 3
	}
	if c.NewPerStep <= 0 {
		c.NewPerStep = 1
	}
	if c.GapMax <= 0 {
		c.GapMax = 1
	}
	return c
}

// TicketsSchema is the payment-deadline schema.
func TicketsSchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("reserved", 1).
		Relation("paid", 1).
		MustBuild()
}

// TicketsConstraint is the scenario's constraint: a payment must follow
// a reservation made within the deadline.
func TicketsConstraint(deadline uint64) ConstraintSpec {
	return ConstraintSpec{
		Name:   "pay_in_time",
		Source: fmt.Sprintf("paid(tk) -> once[0,%d] reserved(tk)", deadline),
	}
}

// Tickets generates the payment-deadline workload: each step opens new
// reservations and pays tickets whose (per-ticket) delay elapsed; a
// ViolationRate fraction of payments is scheduled past the deadline.
// Settled tickets are cleaned up one step after payment so the database
// stays bounded.
func Tickets(cfg TicketsConfig) History {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	steps := make([]Step, 0, cfg.Steps)

	// Reservation and payment markers are events: each is visible in
	// exactly one state and removed by the next transaction, so the
	// metric window — not tuple persistence — decides satisfaction.
	type pending struct {
		id    int64
		payAt int // step index
	}
	var (
		toPay   []pending
		toClear []storage.Op
		nextID  int64
		tm      uint64
	)
	for i := 0; i < cfg.Steps; i++ {
		tm += uint64(1 + r.Intn(cfg.GapMax))
		tx := storage.NewTransaction()

		// Remove the previous step's event markers.
		for _, op := range toClear {
			tx.Delete(op.Rel, op.Tuple)
		}
		toClear = nil

		// Open reservations and schedule their payments.
		for k := 0; k < cfg.NewPerStep; k++ {
			id := nextID
			nextID++
			tx.Insert("reserved", tuple.Ints(id))
			toClear = append(toClear, storage.Op{Rel: "reserved", Tuple: tuple.Ints(id)})
			delay := 1 + r.Intn(int(cfg.Deadline))
			if r.Float64() < cfg.ViolationRate {
				// Late payment: outside the window.
				delay = int(cfg.Deadline) + 2 + r.Intn(3)
			}
			toPay = append(toPay, pending{id: id, payAt: i + delay})
		}

		// Pay due tickets.
		var still []pending
		for _, p := range toPay {
			if p.payAt <= i {
				tx.Insert("paid", tuple.Ints(p.id))
				toClear = append(toClear, storage.Op{Rel: "paid", Tuple: tuple.Ints(p.id)})
			} else {
				still = append(still, p)
			}
		}
		toPay = still

		steps = append(steps, Step{Time: tm, Tx: tx})
	}
	return History{
		Schema:      TicketsSchema(),
		Constraints: []ConstraintSpec{TicketsConstraint(cfg.Deadline)},
		Steps:       steps,
	}
}

// HRConfig parameterizes the rehire-separation scenario.
type HRConfig struct {
	Steps         int
	Seed          int64
	Separation    uint64 // no rehire within this window after a firing
	Employees     int64
	ViolationRate float64
	GapMax        int
}

func (c HRConfig) withDefaults() HRConfig {
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.Separation == 0 {
		c.Separation = 30
	}
	if c.Employees <= 0 {
		c.Employees = 20
	}
	if c.GapMax <= 0 {
		c.GapMax = 2
	}
	return c
}

// HRSchema is the hire/fire schema.
func HRSchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("hire", 1).
		Relation("fire", 1).
		MustBuild()
}

// HRConstraint forbids rehiring within the separation window.
func HRConstraint(separation uint64) ConstraintSpec {
	return ConstraintSpec{
		Name:   "no_quick_rehire",
		Source: fmt.Sprintf("hire(e) -> not once[0,%d] fire(e)", separation),
	}
}

// HR generates hire/fire event streams: employees churn, and a
// ViolationRate fraction of hires happens inside the separation window
// after a firing. Hire/fire markers are removed on the following step,
// making them event-like.
func HR(cfg HRConfig) History {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	steps := make([]Step, 0, cfg.Steps)

	var (
		employed     []int64
		firedAtTime  = make(map[int64]uint64)
		pendingClear []storage.Op
		nextID       int64
		tm           uint64
	)
	for i := 0; i < cfg.Steps; i++ {
		tm += uint64(1 + r.Intn(cfg.GapMax))
		tx := storage.NewTransaction()

		// Clear the previous step's event markers.
		for _, op := range pendingClear {
			tx.Delete(op.Rel, op.Tuple)
		}
		pendingClear = nil

		if len(employed) > 0 && (r.Intn(2) == 0 || int64(len(employed)) >= cfg.Employees) {
			// Fire a random current employee.
			k := r.Intn(len(employed))
			e := employed[k]
			employed = append(employed[:k], employed[k+1:]...)
			tx.Insert("fire", tuple.Ints(e))
			pendingClear = append(pendingClear, storage.Op{Rel: "fire", Tuple: tuple.Ints(e)})
			firedAtTime[e] = tm
		} else {
			// Hire: a ViolationRate fraction rehires inside the window.
			var e int64 = -1
			if r.Float64() < cfg.ViolationRate {
				for cand, at := range firedAtTime {
					if tm-at <= cfg.Separation {
						e = cand
						break
					}
				}
			}
			if e < 0 {
				e = nextID
				nextID++
			} else {
				delete(firedAtTime, e)
			}
			employed = append(employed, e)
			tx.Insert("hire", tuple.Ints(e))
			pendingClear = append(pendingClear, storage.Op{Rel: "hire", Tuple: tuple.Ints(e)})
		}
		steps = append(steps, Step{Time: tm, Tx: tx})
	}
	return History{
		Schema:      HRSchema(),
		Constraints: []ConstraintSpec{HRConstraint(cfg.Separation)},
		Steps:       steps,
	}
}

// LibraryConfig parameterizes the loan-period scenario.
type LibraryConfig struct {
	Steps         int
	Seed          int64
	LoanPeriod    uint64
	Books         int64
	Patrons       int64
	ViolationRate float64
}

func (c LibraryConfig) withDefaults() LibraryConfig {
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.LoanPeriod == 0 {
		c.LoanPeriod = 14
	}
	if c.Books <= 0 {
		c.Books = 30
	}
	if c.Patrons <= 0 {
		c.Patrons = 10
	}
	return c
}

// LibrarySchema is the loan schema.
func LibrarySchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("checkout", 2). // checkout(book, patron)
		Relation("ret", 2).      // ret(book, patron)
		MustBuild()
}

// LibraryConstraint: a returned book must have been checked out by the
// same patron within the loan period.
func LibraryConstraint(period uint64) ConstraintSpec {
	return ConstraintSpec{
		Name:   "return_in_period",
		Source: fmt.Sprintf("ret(b, p) -> once[0,%d] checkout(b, p)", period),
	}
}

// Library generates checkout/return streams with a ViolationRate
// fraction of late returns.
func Library(cfg LibraryConfig) History {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	steps := make([]Step, 0, cfg.Steps)

	type loan struct {
		book, patron int64
		returnAt     int
	}
	var (
		loans   []loan
		onLoan  = make(map[int64]bool)
		tm      uint64
		toClear []storage.Op
	)
	for i := 0; i < cfg.Steps; i++ {
		tm++
		tx := storage.NewTransaction()
		for _, op := range toClear {
			tx.Delete(op.Rel, op.Tuple)
		}
		toClear = nil

		// New checkout.
		b := r.Int63n(cfg.Books)
		if !onLoan[b] {
			p := r.Int63n(cfg.Patrons)
			tx.Insert("checkout", tuple.Ints(b, p))
			toClear = append(toClear, storage.Op{Rel: "checkout", Tuple: tuple.Ints(b, p)})
			due := 1 + r.Intn(int(cfg.LoanPeriod))
			if r.Float64() < cfg.ViolationRate {
				due = int(cfg.LoanPeriod) + 2 + r.Intn(5)
			}
			loans = append(loans, loan{book: b, patron: p, returnAt: i + due})
			onLoan[b] = true
		}

		// Due returns.
		var still []loan
		for _, l := range loans {
			if l.returnAt <= i {
				tx.Insert("ret", tuple.Ints(l.book, l.patron))
				toClear = append(toClear, storage.Op{Rel: "ret", Tuple: tuple.Ints(l.book, l.patron)})
				onLoan[l.book] = false
			} else {
				still = append(still, l)
			}
		}
		loans = still
		steps = append(steps, Step{Time: tm, Tx: tx})
	}
	return History{
		Schema:      LibrarySchema(),
		Constraints: []ConstraintSpec{LibraryConstraint(cfg.LoanPeriod)},
		Steps:       steps,
	}
}

// AlarmsConfig parameterizes the alarm-acknowledgement scenario, the
// since-chain workload: an alarm may only be cleared while an
// acknowledgement has held continuously since it was raised.
type AlarmsConfig struct {
	Steps         int
	Seed          int64
	ClearAfter    int     // steps between raise and clear
	ViolationRate float64 // fraction of clears with a broken/missing ack chain
}

func (c AlarmsConfig) withDefaults() AlarmsConfig {
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 4
	}
	return c
}

// AlarmsSchema is the alarm scenario schema.
func AlarmsSchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("raisd", 1). // raise event (one state)
		Relation("ack", 1).   // acknowledgement state (persists)
		Relation("clear", 1). // clear event (one state)
		MustBuild()
}

// AlarmsConstraint requires the acknowledgement chain at clear time.
func AlarmsConstraint() ConstraintSpec {
	return ConstraintSpec{
		Name:   "ack_before_clear",
		Source: "clear(a) -> (ack(a) since raisd(a))",
	}
}

// Alarms generates raise/ack/clear flows. A compliant flow acknowledges
// in the state right after the raise and keeps the acknowledgement until
// the clear; a violating flow either never acknowledges or drops the
// acknowledgement one step before clearing (a broken chain).
func Alarms(cfg AlarmsConfig) History {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	steps := make([]Step, 0, cfg.Steps)

	type flow struct {
		id      int64
		raised  int
		violate int // 0 = compliant, 1 = never ack, 2 = drop ack early
	}
	var (
		flows   []flow
		nextID  int64
		toClear []storage.Op
		tm      uint64
	)
	for i := 0; i < cfg.Steps; i++ {
		tm++
		tx := storage.NewTransaction()
		for _, op := range toClear {
			tx.Delete(op.Rel, op.Tuple)
		}
		toClear = nil

		// Raise a new alarm every other step.
		if i%2 == 0 {
			f := flow{id: nextID, raised: i}
			nextID++
			if r.Float64() < cfg.ViolationRate {
				f.violate = 1 + r.Intn(2)
			}
			flows = append(flows, f)
			tx.Insert("raisd", tuple.Ints(f.id))
			toClear = append(toClear, storage.Op{Rel: "raisd", Tuple: tuple.Ints(f.id)})
		}

		var live []flow
		for _, f := range flows {
			age := i - f.raised
			switch {
			case age == 1 && f.violate != 1:
				// Acknowledge right after the raise.
				tx.Insert("ack", tuple.Ints(f.id))
				live = append(live, f)
			case f.violate == 2 && age == cfg.ClearAfter-1:
				// Broken chain: drop the ack one step early.
				tx.Delete("ack", tuple.Ints(f.id))
				live = append(live, f)
			case age == cfg.ClearAfter:
				// Clear; remove the ack state with the clear marker.
				tx.Insert("clear", tuple.Ints(f.id))
				toClear = append(toClear, storage.Op{Rel: "clear", Tuple: tuple.Ints(f.id)})
				if f.violate == 0 {
					toClear = append(toClear, storage.Op{Rel: "ack", Tuple: tuple.Ints(f.id)})
				}
			default:
				live = append(live, f)
			}
		}
		flows = live
		steps = append(steps, Step{Time: tm, Tx: tx})
	}
	return History{
		Schema:      AlarmsSchema(),
		Constraints: []ConstraintSpec{AlarmsConstraint()},
		Steps:       steps,
	}
}
