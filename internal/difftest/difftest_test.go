package difftest

import (
	"math/rand"
	"testing"

	"rtic/internal/formgen"
	"rtic/internal/workload"
)

// TestDifferentialCorpus runs the harness over all five reconstructed
// workload scenarios, with violation rates high enough that the
// violation streams being compared are non-trivial.
func TestDifferentialCorpus(t *testing.T) {
	corpus := []struct {
		name string
		h    workload.History
	}{
		{"uniform", workload.Uniform(workload.UniformConfig{Steps: 60, Seed: 1})},
		{"tickets", workload.Tickets(workload.TicketsConfig{Steps: 60, Seed: 2, ViolationRate: 0.3})},
		{"hr", workload.HR(workload.HRConfig{Steps: 60, Seed: 3, ViolationRate: 0.3})},
		{"library", workload.Library(workload.LibraryConfig{Steps: 60, Seed: 4, ViolationRate: 0.3})},
		{"alarms", workload.Alarms(workload.AlarmsConfig{Steps: 60, Seed: 5, ViolationRate: 0.3})},
	}
	for _, tc := range corpus {
		t.Run(tc.name, func(t *testing.T) {
			if err := Run(tc.h, Config{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// generatedPair draws one random (constraint set, trace) pair: one or
// two formgen constraints over the shared p/q/r schema, checked against
// a uniform random update stream.
func generatedPair(seed int64) workload.History {
	r := rand.New(rand.NewSource(seed))
	specs := []workload.ConstraintSpec{
		{Name: "g0", Source: formgen.Constraint(r)},
	}
	if r.Intn(2) == 0 {
		specs = append(specs, workload.ConstraintSpec{Name: "g1", Source: formgen.Constraint(r)})
	}
	h := workload.Uniform(workload.UniformConfig{
		Steps:    20 + r.Intn(15),
		OpsPerTx: 1 + r.Intn(3),
		Domain:   int64(3 + r.Intn(5)),
		GapMax:   1 + r.Intn(3),
		Seed:     r.Int63(),
	})
	h.Constraints = specs
	return h
}

// TestDifferentialGenerated is the seeded deterministic corpus: 200
// generated (constraint, trace) pairs, every engine variant in
// agreement on each. This is the bounded CI face of FuzzDifferential.
func TestDifferentialGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential sweep")
	}
	for seed := int64(0); seed < 200; seed++ {
		h := generatedPair(seed)
		if err := Run(h, Config{}); err != nil {
			srcs := make([]string, len(h.Constraints))
			for i, cs := range h.Constraints {
				srcs[i] = cs.Source
			}
			t.Fatalf("seed %d (constraints %q): %v", seed, srcs, err)
		}
	}
}

// FuzzDifferential lets the fuzzer hunt for divergences beyond the
// seeded corpus: each input seed derives a fresh (constraint, trace)
// pair. Run with `go test -fuzz=FuzzDifferential ./internal/difftest/`;
// under plain `go test` only the seeds below run.
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		h := generatedPair(seed)
		if err := Run(h, Config{ShardCounts: []int{1, 3}}); err != nil {
			srcs := make([]string, len(h.Constraints))
			for i, cs := range h.Constraints {
				srcs[i] = cs.Source
			}
			t.Fatalf("seed %d (constraints %q): %v", seed, srcs, err)
		}
	})
}
