package difftest

import (
	"testing"

	"rtic/internal/cdcgen"
	"rtic/internal/workload"
)

// cdcCorpus spans the generator's knob space: steady and bursty
// traffic, ordered and reordered arrival, flat and skewed keys, clean
// and violating feeds. Sizes are kept small enough that the full
// sweep — every history through every engine leg, under -race in CI —
// stays in seconds.
func cdcCorpus() []struct {
	name string
	cfg  cdcgen.Config
} {
	corpus := []struct {
		name string
		cfg  cdcgen.Config
	}{
		{"steady-clean", cdcgen.Config{Steps: 50, Seed: 101}},
		{"steady-violating", cdcgen.Config{Steps: 50, Seed: 102, ViolationRate: 0.3}},
		{"burst", cdcgen.Config{Steps: 50, Seed: 103, BurstLen: 8, BurstEvery: 10}},
		{"burst-violating", cdcgen.Config{Steps: 50, Seed: 104, BurstLen: 8, BurstEvery: 10, ViolationRate: 0.3}},
		{"late", cdcgen.Config{Steps: 50, Seed: 105, MaxReorder: 3}},
		{"late-heavy", cdcgen.Config{Steps: 50, Seed: 106, MaxReorder: 5, LateRate: 0.6, ViolationRate: 0.2}},
		{"hot-keys", cdcgen.Config{Steps: 50, Seed: 107, Sensors: 8, ZipfS: 3.0, ViolationRate: 0.2}},
		{"flat-keys", cdcgen.Config{Steps: 50, Seed: 108, Sensors: 48, ZipfS: 1.05}},
		{"tight-windows", cdcgen.Config{Steps: 50, Seed: 109, Validity: 4, DerivedLifetime: 6, ChainWindow: 12, ViolationRate: 0.2}},
		{"burst-late-hot", cdcgen.Config{Steps: 60, Seed: 110, BurstLen: 10, BurstEvery: 12, MaxReorder: 4, Sensors: 10, ZipfS: 2.5, ViolationRate: 0.25}},
	}
	// A seed sweep on the all-knobs config on top of the shaped cases,
	// bringing the corpus past the twenty-history mark.
	for seed := int64(1); seed <= 12; seed++ {
		corpus = append(corpus, struct {
			name string
			cfg  cdcgen.Config
		}{
			name: "sweep-" + string(rune('a'+seed-1)),
			cfg: cdcgen.Config{
				Steps: 40, Seed: 200 + seed,
				BurstLen: 6, BurstEvery: 8,
				MaxReorder:    2,
				Sensors:       12,
				ViolationRate: 0.15,
			},
		})
	}
	return corpus
}

// TestDifferentialCDC replays the CDC freshness corpus (internal/
// cdcgen) through every engine leg: naive, core at parallelism 1 and
// 4, tree-walk core, active rules, and the shard router at fan-outs
// 1, 2 and 8 — the realistic-traffic counterpart to the formgen
// pairs. All three freshness constraints partition on the sensor
// variable, so the sharded legs genuinely spread this workload.
func TestDifferentialCDC(t *testing.T) {
	for _, tc := range cdcCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			h, _ := cdcgen.Generate(tc.cfg)
			if err := Run(h, Config{}); err != nil {
				t.Fatalf("config %+v: %v", tc.cfg, err)
			}
		})
	}
}

// TestDifferentialCDCCorpusSize pins the ≥20-history floor the corpus
// promises, so a trimmed table can't silently shrink the sweep.
func TestDifferentialCDCCorpusSize(t *testing.T) {
	if n := len(cdcCorpus()); n < 20 {
		t.Fatalf("CDC corpus has %d histories, want ≥ 20", n)
	}
}

// TestCDCHistoriesWellFormed sanity-checks what the harness assumes of
// generated feeds: monotone timestamps and parseable constraints are
// Run's job to exercise, but a zero-step or constraint-free history
// would make the differential pass vacuous.
func TestCDCHistoriesWellFormed(t *testing.T) {
	for _, tc := range cdcCorpus() {
		h, _ := cdcgen.Generate(tc.cfg)
		assertWellFormed(t, tc.name, h)
	}
}

func assertWellFormed(t *testing.T, name string, h workload.History) {
	t.Helper()
	if len(h.Steps) == 0 || len(h.Constraints) == 0 {
		t.Fatalf("%s: degenerate history (%d steps, %d constraints)", name, len(h.Steps), len(h.Constraints))
	}
	var last uint64
	for i, st := range h.Steps {
		if i > 0 && st.Time <= last {
			t.Fatalf("%s: non-increasing timestamp @%d at step %d", name, st.Time, i)
		}
		last = st.Time
	}
}
