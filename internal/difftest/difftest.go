// Package difftest is the cross-engine differential harness: it runs
// one history through every checking engine — naive, incremental at
// several pipeline widths, active rules, and the shard router at
// several shard counts — and asserts they report identical per-step
// violations and identical final base state. The naive checker is the
// executable specification (a direct transcription of the paper's
// semantics), so any divergence is a bug in one of the optimized
// engines, and the harness says which step and which engine.
//
// The harness is deliberately engine-agnostic: tests feed it
// hand-written traces, the five reconstructed workload scenarios, and
// (via the fuzzer) random constraints from internal/formgen over random
// traces from internal/workload.
package difftest

import (
	"fmt"
	"sort"

	"rtic/internal/active"
	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/engine"
	"rtic/internal/naive"
	"rtic/internal/schema"
	"rtic/internal/shard"
	"rtic/internal/storage"
	"rtic/internal/workload"
)

// DefaultShardCounts are the router fan-outs the harness exercises when
// the caller does not choose: the degenerate single shard, a small
// split, and a split wider than most test domains (so some shards stay
// empty — the empty-shard bookkeeping is exactly where window bugs
// hide).
var DefaultShardCounts = []int{1, 2, 8}

// DefaultParallelism are the incremental pipeline widths compared.
var DefaultParallelism = []int{1, 4}

// Config tunes which engine variants a Run compares. Zero values mean
// the defaults above.
type Config struct {
	Parallelism []int // incremental pipeline widths
	ShardCounts []int // router fan-outs (incremental engine inside)
}

func (c Config) withDefaults() Config {
	if len(c.Parallelism) == 0 {
		c.Parallelism = DefaultParallelism
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = DefaultShardCounts
	}
	return c
}

// variant is one engine under comparison.
type variant struct {
	label string
	eng   engine.Engine
	// shardedCore marks routers running incremental engines inside —
	// the ones whose aux sums are compared against the unsharded
	// incremental checker.
	shardedCore bool
}

// build constructs every engine variant for the history's schema and
// installs the constraints on each.
func build(s *schema.Schema, specs []workload.ConstraintSpec, cfg Config) ([]variant, error) {
	var vars []variant
	add := func(label string, eng engine.Engine, err error) error {
		if err != nil {
			return fmt.Errorf("difftest: building %s: %w", label, err)
		}
		vars = append(vars, variant{label: label, eng: eng})
		return nil
	}
	if err := add("naive", naive.New(s), nil); err != nil {
		return nil, err
	}
	for _, par := range cfg.Parallelism {
		if err := add(fmt.Sprintf("core/par=%d", par), core.New(s, core.WithParallelism(par)), nil); err != nil {
			return nil, err
		}
	}
	// The legacy full-evaluation mode: every delta-driven shortcut of
	// the planned check path disabled. Divergence between this leg and
	// core/par=* localizes a bug to plan compilation or the skip/seed
	// decisions rather than the auxiliary encoding.
	if err := add("core/treewalk", core.New(s, core.WithEvaluation(core.EvalTreeWalk)), nil); err != nil {
		return nil, err
	}
	if err := add("active", active.New(s), nil); err != nil {
		return nil, err
	}
	for _, n := range cfg.ShardCounts {
		rtr, err := shard.NewMode(s, n, engine.Incremental, 1)
		if err := add(fmt.Sprintf("core/shards=%d", n), rtr, err); err != nil {
			return nil, err
		}
		vars[len(vars)-1].shardedCore = true
	}
	// One sharded leg each for the baseline engines: the router must be
	// exact no matter what runs inside it.
	rtr, err := shard.NewMode(s, 2, engine.Naive, 1)
	if err := add("naive/shards=2", rtr, err); err != nil {
		return nil, err
	}
	rtr, err = shard.NewMode(s, 2, engine.ActiveRules, 1)
	if err := add("active/shards=2", rtr, err); err != nil {
		return nil, err
	}

	for _, v := range vars {
		for _, cs := range specs {
			con, err := check.Parse(cs.Name, cs.Source, s)
			if err != nil {
				return nil, fmt.Errorf("difftest: parsing %q: %w", cs.Source, err)
			}
			if err := v.eng.AddConstraint(con); err != nil {
				return nil, fmt.Errorf("difftest: installing %q on %s: %w", cs.Source, v.label, err)
			}
		}
	}
	return vars, nil
}

// canon flattens one step's violations into a canonical sorted form:
// engines are free to enumerate witnesses in any order, but the set
// must match.
func canon(vs []check.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Constraint + "|" + v.Binding.Key()
	}
	sort.Strings(out)
	return out
}

func sameCanon(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// baseRels projects a state onto the schema's base relations as sorted
// tuple keys — the active engine's state also carries its generated aux
// relations, which are not part of the comparison.
func baseRels(st *storage.State, s *schema.Schema) (map[string][]string, error) {
	out := make(map[string][]string, len(s.Names()))
	for _, name := range s.Names() {
		rel, err := st.Relation(name)
		if err != nil {
			return nil, err
		}
		var keys []string
		for _, tup := range rel.Tuples() {
			keys = append(keys, tup.Key())
		}
		out[name] = keys
	}
	return out, nil
}

// finalState extracts an engine's current base state.
func finalState(v variant, s *schema.Schema) (map[string][]string, error) {
	var st *storage.State
	var err error
	switch eng := v.eng.(type) {
	case *naive.Checker:
		st = eng.State()
	case *core.Checker:
		st = eng.State()
	case *active.Checker:
		st, err = eng.State()
	case *shard.Router:
		st, err = eng.State()
	default:
		return nil, fmt.Errorf("difftest: %s: unknown engine type %T", v.label, v.eng)
	}
	if err != nil {
		return nil, fmt.Errorf("difftest: %s state: %w", v.label, err)
	}
	return baseRels(st, s)
}

// Run drives the history through every engine variant and returns an
// error describing the first divergence: a step where some engine's
// violation set differs from the naive reference, an engine error the
// others did not report, a final-state mismatch, or a sharded
// incremental engine whose summed aux entry/timestamp counts differ
// from the unsharded incremental engine's.
func Run(h workload.History, cfg Config) error {
	cfg = cfg.withDefaults()
	vars, err := build(h.Schema, h.Constraints, cfg)
	if err != nil {
		return err
	}
	ref := vars[0] // naive, the executable specification

	for i, st := range h.Steps {
		want, refErr := ref.eng.Step(st.Time, st.Tx)
		wantCanon := canon(want)
		for _, v := range vars[1:] {
			got, gotErr := v.eng.Step(st.Time, st.Tx)
			if (refErr == nil) != (gotErr == nil) {
				return fmt.Errorf("difftest: step %d (t=%d): %s error %v, %s error %v",
					i, st.Time, ref.label, refErr, v.label, gotErr)
			}
			if refErr != nil {
				continue
			}
			if gotCanon := canon(got); !sameCanon(gotCanon, wantCanon) {
				return fmt.Errorf("difftest: step %d (t=%d): %s reports %v, %s reports %v",
					i, st.Time, v.label, gotCanon, ref.label, wantCanon)
			}
		}
		if refErr != nil {
			return fmt.Errorf("difftest: step %d (t=%d): reference rejected the step: %w", i, st.Time, refErr)
		}
	}

	// Final base state must agree everywhere.
	wantState, err := finalState(ref, h.Schema)
	if err != nil {
		return err
	}
	for _, v := range vars[1:] {
		gotState, err := finalState(v, h.Schema)
		if err != nil {
			return err
		}
		for _, name := range h.Schema.Names() {
			if !sameCanon(gotState[name], wantState[name]) {
				return fmt.Errorf("difftest: final state of %q: %s holds %v, %s holds %v",
					name, v.label, gotState[name], ref.label, wantState[name])
			}
		}
	}

	// The sharded incremental engines' aux entries and timestamps must
	// sum to the unsharded incremental engine's exactly: partitioning
	// splits the auxiliary history, it must never duplicate or drop any
	// of it. (Node and byte counts legitimately differ — every shard
	// compiles its own node tree.)
	var unsharded *core.Checker
	for _, v := range vars {
		if c, ok := v.eng.(*core.Checker); ok {
			unsharded = c
			break
		}
	}
	if unsharded != nil {
		want := unsharded.Stats()
		for _, v := range vars {
			if !v.shardedCore {
				continue
			}
			got := v.eng.(*shard.Router).Stats()
			if got.Entries != want.Entries || got.Timestamps != want.Timestamps {
				return fmt.Errorf("difftest: aux sums of %s = {entries=%d, timestamps=%d}, unsharded = {entries=%d, timestamps=%d}",
					v.label, got.Entries, got.Timestamps, want.Entries, want.Timestamps)
			}
		}
	}
	return nil
}
