package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestSlogTracerEnabledGate(t *testing.T) {
	var buf bytes.Buffer
	// An INFO-level handler should suppress (and report as disabled)
	// the high-frequency DEBUG ops while keeping steps and errors.
	tr := NewSlogTracer(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo})))
	if TraceEnabled(tr, OpNodeUpdate) {
		t.Error("node.update should be disabled at INFO level")
	}
	if TraceEnabled(tr, OpConstraintCheck) {
		t.Error("constraint.check should be disabled at INFO level")
	}
	if !TraceEnabled(tr, OpStep) {
		t.Error("step should be enabled at INFO level")
	}
	tr.Trace(TraceEvent{Op: OpNodeUpdate, Detail: "dropped"})
	tr.Trace(TraceEvent{Op: OpStep, Time: 3})
	tr.Trace(TraceEvent{Op: OpNodeUpdate, Detail: "kept", Err: errFake})
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("suppressed event logged:\n%s", out)
	}
	if !strings.Contains(out, "msg=step") || !strings.Contains(out, "err=fake") {
		t.Errorf("kept events missing:\n%s", out)
	}
}

func TestTraceEnabledDefaults(t *testing.T) {
	if TraceEnabled(nil, OpStep) {
		t.Error("nil tracer should be disabled")
	}
	// Tracers without the TraceEnabler interface receive everything.
	if !TraceEnabled(&recordingTracer{}, OpNodeUpdate) {
		t.Error("plain tracer should default to enabled")
	}
}

func TestSamplingTracer(t *testing.T) {
	rt := &recordingTracer{}
	if got := NewSamplingTracer(rt, 1); got != Tracer(rt) {
		t.Error("n<=1 should return the tracer unchanged")
	}
	if got := NewSamplingTracer(nil, 10); got != nil {
		t.Error("nil tracer should stay nil")
	}
	s := NewSamplingTracer(rt, 10)
	for i := 0; i < 100; i++ {
		s.Trace(TraceEvent{Op: OpNodeUpdate})
	}
	if len(rt.evs) != 10 {
		t.Errorf("sampled %d of 100 high-frequency events, want 10", len(rt.evs))
	}
	rt.evs = nil
	// Low-frequency ops and errors always pass.
	s.Trace(TraceEvent{Op: OpStep})
	s.Trace(TraceEvent{Op: OpNodeUpdate, Err: errFake})
	if len(rt.evs) != 2 {
		t.Errorf("step/error events dropped: got %d, want 2", len(rt.evs))
	}
	// Enabled delegates to the wrapped tracer's default.
	if !TraceEnabled(s, OpNodeUpdate) {
		t.Error("sampler over a plain tracer should report enabled")
	}
}

func TestFloatGauge(t *testing.T) {
	r := NewRegistry()
	g := r.FloatGauge("rtic_pool_utilization", "Worker-pool busy fraction.")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Errorf("Value = %v, want 0.75", got)
	}
	if g2 := r.FloatGauge("rtic_pool_utilization", "Worker-pool busy fraction."); g2 != g {
		t.Error("re-registration should return the same gauge")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE rtic_pool_utilization gauge") {
		t.Errorf("float gauge must expose as TYPE gauge:\n%s", out)
	}
	if !strings.Contains(out, "rtic_pool_utilization 0.75") {
		t.Errorf("float gauge sample missing:\n%s", out)
	}
}

// TestConcurrentScrape scrapes the registry while every metric kind is
// being written — the situation the rticd /metrics endpoint is in. Run
// under -race this is the exposition thread-safety check.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	m := NewMetrics(r)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Commits.Inc()
				m.Violations.With(fmt.Sprintf("c%d", w)).Inc()
				m.CommitSeconds.Observe(0.001)
				m.StepPhaseSeconds.With("check").Observe(0.0005)
				m.PoolQueueWaitSeconds.Observe(0.0001)
				m.PoolUtilization.Set(float64(i%100) / 100)
				m.ShardSkew.Set(1.5)
				m.AuxBytes.Set(int64(i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "rtic_commits_total") {
			t.Fatal("scrape lost the commits family")
		}
	}
	close(stop)
	wg.Wait()
}

func TestMetricsIncludesAttributionFamilies(t *testing.T) {
	r := NewRegistry()
	m := NewMetrics(r)
	m.StepPhaseSeconds.With("apply").Observe(0.001)
	m.PoolQueueWaitSeconds.Observe(0.0001)
	m.PoolUtilization.Set(0.5)
	m.ShardSkew.Set(2)
	m.LockWaitSeconds.Observe(0.0002)
	m.BuildInfo.With("go1.24.0", "abc123").Set(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rtic_step_phase_seconds histogram",
		`rtic_step_phase_seconds_bucket{phase="apply",le=`,
		"# TYPE rtic_pool_queue_wait_seconds histogram",
		"# TYPE rtic_pool_utilization gauge",
		"# TYPE rtic_shard_commit_skew gauge",
		"# TYPE rtic_commit_lock_wait_seconds histogram",
		`rtic_build_info{go_version="go1.24.0",rev="abc123"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
