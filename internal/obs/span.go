package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span names emitted by the commit path. A commit span decomposes into
// per-phase children (apply/update/check/carry); parallel phases add
// per-worker children, the shard router adds per-shard sub-commit
// children, and the durability layer adds WAL append/fsync spans.
const (
	SpanCommit       = "commit"        // one committed transaction, end to end
	SpanApply        = "phase.apply"   // transaction applied to storage
	SpanUpdate       = "phase.update"  // auxiliary node updates (all levels)
	SpanCheck        = "phase.check"   // constraint denial evaluations
	SpanCarry        = "phase.carry"   // deferred window advance bookkeeping
	SpanWorker       = "worker"        // one worker's share of a parallel phase
	SpanShardCommit  = "shard.commit"  // one shard engine's sub-commit
	SpanWALAppend    = "wal.append"    // one record framed and written
	SpanWALFsync     = "wal.fsync"     // fsync issued by the append
	SpanMonitorApply = "monitor.apply" // monitor's serialized commit section
)

// Span is one timed section of the commit path. Spans form a tree: the
// root is typically a commit (or the monitor's apply section enclosing
// it) and children decompose its time. All fields are filled by the
// emitting layer before the root is handed to a SpanSink, so sinks see
// a complete, immutable tree.
type Span struct {
	Name   string        // one of the Span* constants
	Detail string        // subject (constraint, shard index, level, ...)
	Time   uint64        // engine timestamp of the enclosing commit
	Track  int           // timeline lane: 0 = serial path, 1..n = worker/shard n
	Start  time.Time     // wall-clock begin
	Dur    time.Duration // wall-clock length
	Ops    int           // operations attributed (nodes, checks, tuples, ...)
	Wait   time.Duration // queue-wait or lock-wait included in Dur's span
	Err    error         // nil on success

	Children []*Span
}

// End sets Dur from Start.
func (s *Span) End() { s.Dur = time.Since(s.Start) }

// Child appends and returns a started child span on the parent's track.
func (s *Span) Child(name, detail string) *Span {
	c := &Span{Name: name, Detail: detail, Time: s.Time, Track: s.Track, Start: time.Now()}
	s.Children = append(s.Children, c)
	return c
}

// Walk visits the span and all descendants, parents first.
func (s *Span) Walk(f func(*Span)) {
	if s == nil {
		return
	}
	f(s)
	for _, c := range s.Children {
		c.Walk(f)
	}
}

// Render writes the span tree as an indented text block, one line per
// span — the shape the slow-commit log dumps.
func (s *Span) Render() string {
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	if s.Detail != "" {
		fmt.Fprintf(b, "(%s)", s.Detail)
	}
	fmt.Fprintf(b, " %v", s.Dur)
	if s.Ops > 0 {
		fmt.Fprintf(b, " ops=%d", s.Ops)
	}
	if s.Wait > 0 {
		fmt.Fprintf(b, " wait=%v", s.Wait)
	}
	if s.Track > 0 {
		fmt.Fprintf(b, " track=%d", s.Track)
	}
	if s.Err != nil {
		fmt.Fprintf(b, " err=%v", s.Err)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.render(b, depth+1)
	}
}

// SpanSink receives completed root spans. Implementations must be safe
// for concurrent use; they run on the commit path after the commit's
// timing has been taken, so a slow sink delays the caller but not the
// measurement.
type SpanSink interface {
	ObserveSpan(*Span)
}

// SpanSinkFunc adapts a function to a SpanSink.
type SpanSinkFunc func(*Span)

// ObserveSpan calls f.
func (f SpanSinkFunc) ObserveSpan(s *Span) { f(s) }

// MultiSpanSink fans a span out to several sinks, skipping nils.
func MultiSpanSink(sinks ...SpanSink) SpanSink {
	kept := make([]SpanSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiSink(kept)
}

type multiSink []SpanSink

func (m multiSink) ObserveSpan(s *Span) {
	for _, sink := range m {
		sink.ObserveSpan(s)
	}
}

// SpanRecorder keeps the last cap root spans in a ring buffer, for the
// trace exporter and the daemons' -trace-out flag.
type SpanRecorder struct {
	mu    sync.Mutex
	ring  []*Span
	next  int
	total int
}

// NewSpanRecorder returns a recorder keeping the last capacity roots
// (capacity <= 0 selects 4096).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &SpanRecorder{ring: make([]*Span, capacity)}
}

// ObserveSpan records one root span.
func (r *SpanRecorder) ObserveSpan(s *Span) {
	r.mu.Lock()
	r.ring[r.next] = s
	r.next = (r.next + 1) % len(r.ring)
	r.total++
	r.mu.Unlock()
}

// Len reports how many roots are currently held (at most the capacity).
func (r *SpanRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < len(r.ring) {
		return r.total
	}
	return len(r.ring)
}

// Snapshot returns the held roots oldest-first.
func (r *SpanRecorder) Snapshot() []*Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if n > len(r.ring) {
		n = len(r.ring)
	}
	out := make([]*Span, 0, n)
	start := 0
	if r.total >= len(r.ring) {
		start = r.next
	}
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// NewSlowSpanLogger returns a sink that renders any root span slower
// than threshold through out (one multi-line string per slow commit) —
// the rticd -slow-commit hook.
func NewSlowSpanLogger(threshold time.Duration, out func(string)) SpanSink {
	return SpanSinkFunc(func(s *Span) {
		if s.Dur >= threshold {
			out(fmt.Sprintf("slow commit t=%d took %v (threshold %v)\n%s", s.Time, s.Dur, threshold, s.Render()))
		}
	})
}

// NewSpanTracerAdapter bridges the span stream onto the PR-1 Tracer
// interface: every span in the tree is flattened to one TraceEvent, so
// existing tracers (slog, test collectors) keep working unchanged. The
// commit span maps to OpStep; other spans keep their span name as the
// event op.
func NewSpanTracerAdapter(t Tracer) SpanSink {
	if t == nil {
		return nil
	}
	return SpanSinkFunc(func(root *Span) {
		root.Walk(func(s *Span) {
			op := s.Name
			if op == SpanCommit {
				op = OpStep
			}
			t.Trace(TraceEvent{Op: op, Detail: s.Detail, Time: s.Time, Duration: s.Dur, Err: s.Err})
		})
	})
}
