package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// tree builds a commit span with a phase child and a worker grandchild,
// the shape the core engine emits.
func tree(t0 time.Time) *Span {
	root := &Span{Name: SpanCommit, Time: 7, Start: t0, Dur: 10 * time.Millisecond, Ops: 3}
	check := &Span{Name: SpanCheck, Time: 7, Start: t0.Add(time.Millisecond), Dur: 8 * time.Millisecond, Ops: 5}
	worker := &Span{
		Name: SpanWorker, Detail: "w0", Time: 7, Track: 1,
		Start: t0.Add(2 * time.Millisecond), Dur: 6 * time.Millisecond, Ops: 5, Wait: time.Millisecond,
	}
	check.Children = append(check.Children, worker)
	root.Children = append(root.Children, check)
	return root
}

func TestSpanWalkAndRender(t *testing.T) {
	s := tree(time.Now())
	var names []string
	s.Walk(func(sp *Span) { names = append(names, sp.Name) })
	want := []string{SpanCommit, SpanCheck, SpanWorker}
	if len(names) != len(want) {
		t.Fatalf("walked %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("walk[%d] = %q, want %q (parents first)", i, names[i], want[i])
		}
	}
	r := s.Render()
	for _, want := range []string{"commit 10ms ops=3", "  phase.check", "    worker(w0)", "wait=1ms", "track=1"} {
		if !strings.Contains(r, want) {
			t.Errorf("render missing %q:\n%s", want, r)
		}
	}
}

func TestSpanChildInheritsContext(t *testing.T) {
	p := &Span{Name: SpanCommit, Time: 42, Track: 3, Start: time.Now()}
	c := p.Child(SpanWALFsync, "d")
	if c.Time != 42 || c.Track != 3 {
		t.Errorf("child did not inherit time/track: %+v", c)
	}
	if len(p.Children) != 1 || p.Children[0] != c {
		t.Error("child not appended to parent")
	}
	c.End()
	if c.Dur < 0 {
		t.Errorf("End produced negative duration %v", c.Dur)
	}
}

func TestSpanRecorderRing(t *testing.T) {
	r := NewSpanRecorder(4)
	for i := 0; i < 6; i++ {
		r.ObserveSpan(&Span{Name: SpanCommit, Time: uint64(i)})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	snap := r.Snapshot()
	for i, s := range snap {
		if want := uint64(i + 2); s.Time != want {
			t.Errorf("snapshot[%d].Time = %d, want %d (oldest-first after wrap)", i, s.Time, want)
		}
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.ObserveSpan(&Span{Name: SpanCommit})
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != 64 {
		t.Errorf("Len = %d, want 64", got)
	}
}

func TestMultiSpanSink(t *testing.T) {
	if MultiSpanSink() != nil {
		t.Error("no sinks should collapse to nil")
	}
	if MultiSpanSink(nil, nil) != nil {
		t.Error("all-nil sinks should collapse to nil")
	}
	a := NewSpanRecorder(8)
	if MultiSpanSink(nil, a) != SpanSink(a) {
		t.Error("single sink should be returned unwrapped")
	}
	b := NewSpanRecorder(8)
	m := MultiSpanSink(a, b)
	m.ObserveSpan(&Span{Name: SpanCommit})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fan-out miscounted: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestSlowSpanLogger(t *testing.T) {
	var logged []string
	sink := NewSlowSpanLogger(5*time.Millisecond, func(s string) { logged = append(logged, s) })
	sink.ObserveSpan(&Span{Name: SpanCommit, Time: 1, Dur: time.Millisecond})
	if len(logged) != 0 {
		t.Fatal("fast commit logged")
	}
	sink.ObserveSpan(tree(time.Now()))
	if len(logged) != 1 {
		t.Fatalf("slow commit not logged (%d entries)", len(logged))
	}
	for _, want := range []string{"slow commit t=7 took 10ms", "phase.check", "worker(w0)"} {
		if !strings.Contains(logged[0], want) {
			t.Errorf("slow log missing %q:\n%s", want, logged[0])
		}
	}
}

func TestSpanTracerAdapter(t *testing.T) {
	if NewSpanTracerAdapter(nil) != nil {
		t.Error("nil tracer should collapse to nil sink")
	}
	rt := &recordingTracer{}
	sink := NewSpanTracerAdapter(rt)
	sink.ObserveSpan(tree(time.Now()))
	if len(rt.evs) != 3 {
		t.Fatalf("flattened to %d events, want 3", len(rt.evs))
	}
	if rt.evs[0].Op != OpStep {
		t.Errorf("commit span mapped to %q, want %q", rt.evs[0].Op, OpStep)
	}
	if rt.evs[1].Op != SpanCheck || rt.evs[2].Op != SpanWorker {
		t.Errorf("child ops = %q, %q", rt.evs[1].Op, rt.evs[2].Op)
	}
	if rt.evs[0].Time != 7 || rt.evs[0].Duration != 10*time.Millisecond {
		t.Errorf("commit event lost context: %+v", rt.evs[0])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	t0 := time.Now()
	roots := []*Span{tree(t0), nil, {
		Name: SpanCommit, Time: 8, Start: t0.Add(20 * time.Millisecond),
		Dur: time.Millisecond, Err: errFake,
	}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, roots); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != 4 {
		t.Fatalf("%d events, want 4 (nil root skipped)", len(trace.TraceEvents))
	}
	ev := trace.TraceEvents[0]
	if ev.Ph != "X" || ev.Pid != 1 || ev.Tid != 0 || ev.Ts != 0 {
		t.Errorf("root event = %+v", ev)
	}
	if ev.Dur != 10_000 {
		t.Errorf("root dur = %v µs, want 10000", ev.Dur)
	}
	worker := trace.TraceEvents[2]
	if worker.Name != SpanWorker || worker.Tid != 1 {
		t.Errorf("worker event on tid %d: %+v", worker.Tid, worker)
	}
	if worker.Args["wait_us"] != 1000.0 {
		t.Errorf("worker wait_us = %v", worker.Args["wait_us"])
	}
	// Child slices must nest inside the parent on the timeline.
	parent := trace.TraceEvents[1]
	if worker.Ts < parent.Ts || worker.Ts+worker.Dur > parent.Ts+parent.Dur {
		t.Errorf("worker [%v,%v] escapes parent [%v,%v]",
			worker.Ts, worker.Ts+worker.Dur, parent.Ts, parent.Ts+parent.Dur)
	}
	errEv := trace.TraceEvents[3]
	if errEv.Args["err"] != "fake" {
		t.Errorf("error not exported: %+v", errEv.Args)
	}
}
