package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered family in the Prometheus text
// exposition format (version 0.0.4): families in registration order,
// series in creation order, so output is deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		f.write(bw)
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	typ := f.typ
	if typ == "floatgauge" {
		typ = "gauge" // exposition has one gauge type
	}
	w.WriteString(typ)
	w.WriteByte('\n')

	f.mu.Lock()
	ordered := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		ordered = append(ordered, f.series[key])
	}
	f.mu.Unlock()

	for _, s := range ordered {
		switch m := s.m.(type) {
		case *Counter:
			writeSample(w, f.name, "", f.labels, s.labelValues, "", formatUint(m.Value()))
		case *Gauge:
			writeSample(w, f.name, "", f.labels, s.labelValues, "", strconv.FormatInt(m.Value(), 10))
		case *FloatGauge:
			writeSample(w, f.name, "", f.labels, s.labelValues, "", formatFloat(m.Value()))
		case *Histogram:
			cum := uint64(0)
			for i, b := range m.bounds {
				cum += m.counts[i].Load()
				writeSample(w, f.name, "_bucket", f.labels, s.labelValues, formatFloat(b), formatUint(cum))
			}
			cum += m.counts[len(m.bounds)].Load()
			writeSample(w, f.name, "_bucket", f.labels, s.labelValues, "+Inf", formatUint(cum))
			writeSample(w, f.name, "_sum", f.labels, s.labelValues, "", formatFloat(m.Sum()))
			writeSample(w, f.name, "_count", f.labels, s.labelValues, "", formatUint(m.Count()))
		}
	}
}

// writeSample emits one line: name[suffix]{labels...,le="bound"} value.
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, le, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
