package obs

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one trace_event record in the Chrome/Perfetto trace
// format: a complete ("X") slice with microsecond timestamps.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // µs since trace start
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the span trees as Chrome trace_event JSON —
// the format chrome://tracing and ui.perfetto.dev open directly. Each
// span becomes one complete slice; Track selects the tid lane, so
// worker and shard spans render as parallel timelines under the serial
// commit lane (tid 0). Timestamps are microseconds relative to the
// earliest root's start.
func WriteChromeTrace(w io.Writer, roots []*Span) error {
	var epoch time.Time
	for _, r := range roots {
		if r == nil {
			continue
		}
		if epoch.IsZero() || r.Start.Before(epoch) {
			epoch = r.Start
		}
	}
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	for _, r := range roots {
		if r == nil {
			continue
		}
		r.Walk(func(s *Span) {
			ev := chromeEvent{
				Name: s.Name,
				Ph:   "X",
				Ts:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
				Dur:  float64(s.Dur) / float64(time.Microsecond),
				Pid:  1,
				Tid:  s.Track,
			}
			args := map[string]any{}
			if s.Detail != "" {
				args["detail"] = s.Detail
			}
			if s.Time != 0 || s.Name == SpanCommit {
				args["t"] = s.Time
			}
			if s.Ops > 0 {
				args["ops"] = s.Ops
			}
			if s.Wait > 0 {
				args["wait_us"] = float64(s.Wait) / float64(time.Microsecond)
			}
			if s.Err != nil {
				args["err"] = s.Err.Error()
			}
			if len(args) > 0 {
				ev.Args = args
			}
			trace.TraceEvents = append(trace.TraceEvents, ev)
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
