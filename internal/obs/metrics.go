package obs

// Metrics is the standard metric set of the checker stack, registered
// on one Registry so daemons expose engine and monitor metrics through
// a single endpoint. Engines update the engine section; the monitor
// server updates the monitor section. Fields are never nil after
// NewMetrics.
type Metrics struct {
	reg *Registry

	// Engine section (updated by core/naive/active under the monitor's
	// commit serialization).
	Commits           *Counter      // successful commits
	CommitErrors      *Counter      // rejected or failed commits
	Violations        *CounterVec   // by constraint
	CommitSeconds     *Histogram    // end-to-end Step latency
	ConstraintSeconds *HistogramVec // per-constraint denial evaluation, by constraint
	AuxNodes          *Gauge        // temporal subformulas tracked
	AuxEntries        *Gauge        // bindings currently tracked
	AuxTimestamps     *Gauge        // timestamps stored across bindings
	AuxBytes          *Gauge        // estimated auxiliary footprint
	ParallelWorkers   *Gauge        // commit-pipeline worker-pool width

	// Attribution section (updated by the incremental engine's phased
	// commit pipeline; see docs/OBSERVABILITY.md).
	StepPhaseSeconds     *HistogramVec // per-phase commit time, by phase (apply/update/check/carry)
	PoolQueueWaitSeconds *Histogram    // task wait before a pool worker picked it up
	PoolUtilization      *FloatGauge   // busy fraction of the pool in the last parallel phase

	// Shard section (updated by the shard router when sharding is on).
	Shards                 *Gauge        // configured shard count (0 = unsharded)
	ShardCommits           *CounterVec   // per-shard sub-transaction commits, by shard
	ShardCommitSeconds     *HistogramVec // per-shard sub-commit latency, by shard
	ShardOpsRouted         *CounterVec   // tuple operations routed, by shard
	ShardGlobalConstraints *Gauge        // constraints demoted to the global shard
	ShardSkew              *FloatGauge   // max/min shard sub-commit time of the last step

	// Monitor section (updated by the line-protocol server).
	Connections         *Counter   // accepted connections
	ConnectionsActive   *Gauge     // currently open connections
	ConnectionsRejected *Counter   // refused at the max-connections cap
	ProtocolErrors      *Counter   // "error ..." replies sent
	DroppedViolations   *Counter   // subscriber-overflow drops
	LockWaitSeconds     *Histogram // wait for the monitor's commit lock
	BuildInfo           *GaugeVec  // constant 1, by go_version and rev

	// Lint section (updated by daemons that lint their spec at startup).
	LintWarnings *Counter    // Warning-or-worse findings
	LintFindings *CounterVec // all findings, by rule

	// Durability section (updated by the WAL and the checkpointer).
	WALAppends         *Counter   // records journaled
	WALAppendedBytes   *Counter   // framed bytes journaled
	WALFsyncs          *Counter   // fsyncs issued on the log
	WALErrors          *Counter   // failed appends/fsyncs/resets
	WALSizeBytes       *Gauge     // current log size on disk
	Checkpoints        *Counter   // checkpoints written
	CheckpointErrors   *Counter   // failed checkpoint attempts
	CheckpointSeconds  *Histogram // checkpoint wall time
	CheckpointLastUnix *Gauge     // unix time of the last good checkpoint
	ReplayedRecords    *Counter   // WAL records replayed during recovery
	DurabilityDegraded *Gauge     // 1 while journaling runs degraded
	RearmAttempts      *Counter   // durability re-arm attempts
	Rearms             *Counter   // successful durability re-arms
	JournalBacklog     *Gauge     // commits buffered while degraded
}

// NewMetrics registers the standard metric set on r and returns the
// handles. Calling it twice on the same registry returns handles to
// the same underlying metrics.
func NewMetrics(r *Registry) *Metrics {
	return &Metrics{
		reg: r,

		Commits: r.Counter("rtic_commits_total",
			"Committed transactions checked by the engine."),
		CommitErrors: r.Counter("rtic_commit_errors_total",
			"Transactions rejected or failed (bad timestamp, unknown relation, ...)."),
		Violations: r.CounterVec("rtic_violations_total",
			"Constraint violation witnesses reported, by constraint.", "constraint"),
		CommitSeconds: r.Histogram("rtic_commit_duration_seconds",
			"End-to-end latency of one committed transaction (apply, auxiliary update, all constraint checks).", nil),
		ConstraintSeconds: r.HistogramVec("rtic_constraint_check_duration_seconds",
			"Latency of one constraint's denial evaluation, by constraint.", nil, "constraint"),
		AuxNodes: r.Gauge("rtic_aux_nodes",
			"Temporal subformulas tracked by the auxiliary encoding."),
		AuxEntries: r.Gauge("rtic_aux_entries",
			"Bindings currently tracked across auxiliary nodes."),
		AuxTimestamps: r.Gauge("rtic_aux_timestamps",
			"Timestamps stored across all auxiliary bindings."),
		AuxBytes: r.Gauge("rtic_aux_bytes",
			"Estimated auxiliary storage footprint in bytes."),
		ParallelWorkers: r.Gauge("rtic_parallel_workers",
			"Worker-pool width of the engine's commit pipeline (1 = sequential)."),

		StepPhaseSeconds: r.HistogramVec("rtic_step_phase_seconds",
			"Commit time attributed to one pipeline phase, by phase (apply, update, check, carry).", nil, "phase"),
		PoolQueueWaitSeconds: r.Histogram("rtic_pool_queue_wait_seconds",
			"Wait between a parallel phase starting and a pool worker picking each task up.", nil),
		PoolUtilization: r.FloatGauge("rtic_pool_utilization",
			"Busy fraction of the commit pipeline's worker pool over the last parallel phase (1 = no idle workers)."),

		Shards: r.Gauge("rtic_shards",
			"Configured shard count of the routing layer (0 = unsharded)."),
		ShardCommits: r.CounterVec("rtic_shard_commits_total",
			"Sub-transaction commits applied, by shard.", "shard"),
		ShardCommitSeconds: r.HistogramVec("rtic_shard_commit_duration_seconds",
			"Latency of one shard's sub-transaction commit, by shard.", nil, "shard"),
		ShardOpsRouted: r.CounterVec("rtic_shard_ops_routed_total",
			"Tuple operations routed to each shard by the partition plan.", "shard"),
		ShardGlobalConstraints: r.Gauge("rtic_shard_global_fallback_constraints",
			"Constraints the partitionability analysis demoted to the global shard."),
		ShardSkew: r.FloatGauge("rtic_shard_commit_skew",
			"Max/min per-shard sub-commit time of the last sharded step (1 = perfectly balanced)."),

		Connections: r.Counter("rtic_monitor_connections_total",
			"Connections accepted by the line-protocol server."),
		ConnectionsActive: r.Gauge("rtic_monitor_connections_active",
			"Line-protocol connections currently open."),
		ConnectionsRejected: r.Counter("rtic_monitor_connections_rejected_total",
			"Connections refused because the server was at its max-connections cap."),
		ProtocolErrors: r.Counter("rtic_monitor_protocol_errors_total",
			"Error replies sent over the line protocol."),
		DroppedViolations: r.Counter("rtic_monitor_dropped_violations_total",
			"Violations dropped because a subscriber lagged."),
		LockWaitSeconds: r.Histogram("rtic_commit_lock_wait_seconds",
			"Wait to acquire the monitor's commit lock before a transaction could enter the engine.", nil),
		BuildInfo: r.GaugeVec("rtic_build_info",
			"Build information of the running binary; constant 1.", "go_version", "rev"),

		LintWarnings: r.Counter("rtic_lint_warnings_total",
			"Warning-or-worse constraint-linter findings at spec load."),
		LintFindings: r.CounterVec("rtic_lint_findings_total",
			"Constraint-linter findings at spec load, by rule.", "rule"),

		WALAppends: r.Counter("rtic_wal_appends_total",
			"Transaction records appended to the write-ahead log."),
		WALAppendedBytes: r.Counter("rtic_wal_appended_bytes_total",
			"Framed bytes appended to the write-ahead log."),
		WALFsyncs: r.Counter("rtic_wal_fsyncs_total",
			"Fsyncs issued on the write-ahead log."),
		WALErrors: r.Counter("rtic_wal_errors_total",
			"Write-ahead log operations that failed (append, fsync, reset)."),
		WALSizeBytes: r.Gauge("rtic_wal_size_bytes",
			"Current on-disk size of the write-ahead log."),
		Checkpoints: r.Counter("rtic_checkpoints_total",
			"Checkpoints written and rotated into place."),
		CheckpointErrors: r.Counter("rtic_checkpoint_errors_total",
			"Checkpoint attempts that failed (the previous checkpoint survives)."),
		CheckpointSeconds: r.Histogram("rtic_checkpoint_duration_seconds",
			"Wall time of one checkpoint (snapshot, fsync, rename, WAL reset).", nil),
		CheckpointLastUnix: r.Gauge("rtic_checkpoint_last_unix_seconds",
			"Unix time of the last successful checkpoint (0 = never)."),
		ReplayedRecords: r.Counter("rtic_recovery_replayed_records_total",
			"WAL records replayed into the engine during startup recovery."),
		DurabilityDegraded: r.Gauge("rtic_durability_degraded",
			"1 while the durability manager is degraded (commits acknowledged as non-durable), 0 when journaling."),
		RearmAttempts: r.Counter("rtic_durability_rearm_attempts_total",
			"Attempts by the re-arm loop to restore durability after a failure."),
		Rearms: r.Counter("rtic_durability_rearms_total",
			"Successful durability re-arms (journaling restored after a degraded episode)."),
		JournalBacklog: r.Gauge("rtic_durability_backlog_records",
			"Commits buffered in memory while degraded, awaiting a drain re-arm."),
	}
}

// Registry returns the registry the metrics are registered on — the
// handle an exposition endpoint scrapes.
func (m *Metrics) Registry() *Registry { return m.reg }
