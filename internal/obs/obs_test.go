package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	vec := r.CounterVec("cv_total", "help", "k")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				vec.With("a").Inc()
				vec.With("b").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := vec.With("a").Value(); got != workers*per {
		t.Errorf("vec[a] = %d, want %d", got, workers*per)
	}
	if got := vec.With("b").Value(); got != 2*workers*per {
		t.Errorf("vec[b] = %d, want %d", got, 2*workers*per)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{0.1, 1, 10})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.05) // bucket le=0.1
				h.Observe(5)    // bucket le=10
				h.Observe(100)  // bucket +Inf
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 3*workers*per {
		t.Errorf("count = %d, want %d", got, 3*workers*per)
	}
	want := float64(workers*per) * (0.05 + 5 + 100)
	if got := h.Sum(); got < want*0.999 || got > want*1.001 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total != h.Count() {
		t.Errorf("bucket counts sum to %d, count is %d", total, h.Count())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(1.5)
	h.Observe(3)
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket le=1 = %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("bucket le=2 = %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("bucket +Inf = %d, want 1", got)
	}
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rtic_commits_total", "Committed transactions.")
	c.Add(42)
	v := r.CounterVec("rtic_violations_total", "Violations by constraint.", "constraint")
	v.With("no_rehire").Add(3)
	v.With("pay_fast").Add(0)
	g := r.Gauge("rtic_aux_bytes", "Auxiliary bytes.")
	g.Set(1234)
	h := r.Histogram("rtic_commit_duration_seconds", "Commit latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rtic_commits_total Committed transactions.
# TYPE rtic_commits_total counter
rtic_commits_total 42
# HELP rtic_violations_total Violations by constraint.
# TYPE rtic_violations_total counter
rtic_violations_total{constraint="no_rehire"} 3
rtic_violations_total{constraint="pay_fast"} 0
# HELP rtic_aux_bytes Auxiliary bytes.
# TYPE rtic_aux_bytes gauge
rtic_aux_bytes 1234
# HELP rtic_commit_duration_seconds Commit latency.
# TYPE rtic_commit_duration_seconds histogram
rtic_commit_duration_seconds_bucket{le="0.001"} 2
rtic_commit_duration_seconds_bucket{le="0.01"} 2
rtic_commit_duration_seconds_bucket{le="+Inf"} 3
rtic_commit_duration_seconds_sum 0.501
rtic_commit_duration_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c_total", "help", "k").With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `c_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", buf.String())
	}
}

func TestRegistryReRegister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Error("same-shape re-registration should return the same metric")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration should panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestVecArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("y_total", "help", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity should panic")
		}
	}()
	v.With("only-one")
}

func TestNewMetricsIdempotent(t *testing.T) {
	r := NewRegistry()
	m1 := NewMetrics(r)
	m2 := NewMetrics(r)
	m1.Commits.Inc()
	if got := m2.Commits.Value(); got != 1 {
		t.Errorf("second NewMetrics saw %d commits, want 1 (shared registry)", got)
	}
	if m1.Registry() != r {
		t.Error("Registry() should return the backing registry")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"rtic_commits_total", "rtic_violations_total", "rtic_commit_duration_seconds",
		"rtic_aux_nodes", "rtic_aux_entries", "rtic_aux_timestamps", "rtic_aux_bytes",
		"rtic_monitor_connections_total",
	} {
		if !strings.Contains(buf.String(), "# TYPE "+name+" ") {
			t.Errorf("exposition missing family %s", name)
		}
	}
}

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Error("nil observer should be disabled")
	}
	m, tr := o.Parts()
	if m != nil || tr != nil {
		t.Error("nil observer parts should be nil")
	}
	o = &Observer{}
	if o.Enabled() {
		t.Error("empty observer should be disabled")
	}
	o.Metrics = NewMetrics(NewRegistry())
	if !o.Enabled() {
		t.Error("observer with metrics should be enabled")
	}
}

type recordingTracer struct {
	mu  sync.Mutex
	evs []TraceEvent
}

func (t *recordingTracer) Trace(ev TraceEvent) {
	t.mu.Lock()
	t.evs = append(t.evs, ev)
	t.mu.Unlock()
}

func TestSlogTracer(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tr := NewSlogTracer(l)
	tr.Trace(TraceEvent{Op: OpStep, Time: 100, Duration: 42 * time.Microsecond})
	tr.Trace(TraceEvent{Op: OpNodeUpdate, Detail: "once[0,365] fire(e)", Duration: time.Microsecond})
	tr.Trace(TraceEvent{Op: OpParse, Detail: "c1", Err: errFake})
	out := buf.String()
	for _, want := range []string{"msg=step", "t=100", "level=DEBUG", "node.update", "level=ERROR", "err=fake"} {
		if !strings.Contains(out, want) {
			t.Errorf("slog output missing %q:\n%s", want, out)
		}
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

// BenchmarkObserverDisabled measures the guard an uninstrumented engine
// pays per commit: the nil-safe Parts() call plus sink checks. This is
// the "observer hooks add no measurable overhead when unset" criterion.
func BenchmarkObserverDisabled(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, tr := o.Parts()
		if m != nil || tr != nil {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(3.7e-5)
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("c_total", "help", "k")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("constraint_name").Inc()
	}
}
