// Package obs is the instrumentation layer of the checker stack:
// dependency-free counters, gauges and fixed-bucket latency histograms
// with atomic updates, a Prometheus text-format exposition writer, and
// a trace hook the engines call around their hot operations.
//
// The package deliberately has no third-party dependencies so every
// layer (core engine, monitor, daemons) can import it freely. All
// metric updates are lock-free atomics; registration takes a lock but
// happens once at startup. A nil *Observer is the fully disabled state:
// every guard in the engines is a nil check, so an uninstrumented
// checker pays nothing beyond two pointer comparisons per commit (see
// BenchmarkObserverDisabled).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//rtic:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//rtic:noalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
//
//rtic:noalloc
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
//
//rtic:noalloc
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
//
//rtic:noalloc
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
//
//rtic:noalloc
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
//
//rtic:noalloc
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a gauge holding a float64 — for ratios like pool
// utilization and shard skew, where an int64 gauge would truncate.
type FloatGauge struct {
	v atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
//
//rtic:noalloc
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
//
//rtic:noalloc
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram is a fixed-bucket histogram of float64 observations
// (typically seconds). Buckets are cumulative in the exposition, as
// Prometheus expects; internally each bucket stores its own count so
// Observe touches exactly one bucket.
type Histogram struct {
	bounds []float64       // sorted upper bounds; implicit +Inf last
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefLatencyBuckets spans sub-microsecond engine steps to full-second
// stalls; the defaults for commit and constraint timing.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5,
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
//
//rtic:noalloc
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. the "le" bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
//
//rtic:noalloc
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
//
//rtic:noalloc
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is anything a series can hold.
type metric interface{}

// series is one labelled instance of a metric family.
type series struct {
	labelValues []string
	m           metric
}

// family is a named metric with a fixed label set and one series per
// distinct label-value combination (exactly one, with no labels, for
// plain metrics).
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string
	bounds []float64 // histograms only

	mu     sync.Mutex
	order  []string
	series map[string]*series
}

func (f *family) get(values []string) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s.m
	}
	var m metric
	switch f.typ {
	case "counter":
		m = &Counter{}
	case "gauge":
		m = &Gauge{}
	case "floatgauge":
		m = &FloatGauge{}
	case "histogram":
		m = newHistogram(f.bounds)
	}
	f.series[key] = &series{labelValues: append([]string(nil), values...), m: m}
	f.order = append(f.order, key)
	return m
}

func labelKey(values []string) string {
	key := ""
	for _, v := range values {
		key += fmt.Sprintf("%d:%s;", len(v), v)
	}
	return key
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. It panics if the number of values does not match the
// family's label names — a programming error, like a bad format verb.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).(*Counter) }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).(*Gauge) }

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).(*Histogram) }

// Registry holds metric families in registration order; one registry
// backs one exposition endpoint. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register creates or retrieves a family; re-registering the same name
// with the same type and labels returns the existing family, a
// conflicting re-registration panics.
func (r *Registry) register(name, help, typ string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s with %d labels (was %s with %d)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with label %q (was %q)", name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]*series),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers (or retrieves) a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", nil, nil).get(nil).(*Counter)
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labels, nil)}
}

// Gauge registers (or retrieves) a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", nil, nil).get(nil).(*Gauge)
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labels, nil)}
}

// FloatGauge registers (or retrieves) a float-valued gauge; it exposes
// as TYPE gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	return r.register(name, help, "floatgauge", nil, nil).get(nil).(*FloatGauge)
}

// Histogram registers (or retrieves) a plain histogram with the given
// bucket upper bounds (nil means DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return r.register(name, help, "histogram", nil, bounds).get(nil).(*Histogram)
}

// HistogramVec registers a histogram family with the given bucket
// bounds (nil means DefLatencyBuckets) and label names.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return &HistogramVec{f: r.register(name, help, "histogram", labels, bounds)}
}
