package obs

import (
	"context"
	"log/slog"
	"time"
)

// Trace operation names emitted by the engines. Detail carries the
// operation's subject: the constraint name for OpParse and
// OpConstraintCheck, the temporal subformula for OpNodeUpdate, the
// snapshot byte count for the snapshot ops.
const (
	OpParse           = "parse"            // constraint source -> compiled constraint
	OpStep            = "step"             // one committed transaction, end to end
	OpNodeUpdate      = "node.update"      // one auxiliary node's phase-A update
	OpConstraintCheck = "constraint.check" // one constraint's denial evaluation
	OpSnapshotSave    = "snapshot.save"    // checker state serialized
	OpSnapshotRestore = "snapshot.restore" // checker state rebuilt
)

// TraceEvent describes one completed engine operation. Engines measure
// around the operation and emit a single event when it finishes, so a
// Tracer sees begin-to-end duration plus the outcome.
type TraceEvent struct {
	Op       string        // one of the Op* constants
	Detail   string        // operation subject (constraint, subformula, ...)
	Time     uint64        // engine timestamp, when the op has one (OpStep etc.)
	Duration time.Duration // wall-clock time of the operation
	Err      error         // nil on success
}

// Tracer receives engine trace events. Implementations must be safe
// for concurrent use; they are called on the commit path, so slow
// sinks should buffer or sample.
type Tracer interface {
	Trace(TraceEvent)
}

// slogTracer logs every event through a structured logger.
type slogTracer struct {
	l *slog.Logger
}

// NewSlogTracer returns a Tracer that writes one structured log line
// per event: level DEBUG for per-node updates and constraint checks
// (high frequency), INFO for the rest, ERROR when the event carries an
// error.
func NewSlogTracer(l *slog.Logger) Tracer {
	if l == nil {
		l = slog.Default()
	}
	return &slogTracer{l: l}
}

func (t *slogTracer) Trace(ev TraceEvent) {
	attrs := make([]any, 0, 8)
	if ev.Detail != "" {
		attrs = append(attrs, "detail", ev.Detail)
	}
	if ev.Time != 0 || ev.Op == OpStep {
		attrs = append(attrs, "t", ev.Time)
	}
	attrs = append(attrs, "dur", ev.Duration)
	level := slog.LevelInfo
	switch {
	case ev.Err != nil:
		level = slog.LevelError
		attrs = append(attrs, "err", ev.Err)
	case ev.Op == OpNodeUpdate || ev.Op == OpConstraintCheck:
		level = slog.LevelDebug
	}
	t.l.Log(context.Background(), level, ev.Op, attrs...)
}

// Observer bundles the two instrumentation sinks an engine can carry:
// a metrics set and a tracer. Either (or both, or the Observer itself)
// may be nil; engines guard every hook with the nil-safe accessors
// below, so the disabled path costs only pointer comparisons.
type Observer struct {
	Metrics *Metrics
	Tracer  Tracer
}

// Parts returns the observer's sinks, (nil, nil) for a nil observer.
func (o *Observer) Parts() (*Metrics, Tracer) {
	if o == nil {
		return nil, nil
	}
	return o.Metrics, o.Tracer
}

// Enabled reports whether any sink is attached.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Metrics != nil || o.Tracer != nil)
}
