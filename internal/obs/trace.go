package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// Trace operation names emitted by the engines. Detail carries the
// operation's subject: the constraint name for OpParse and
// OpConstraintCheck, the temporal subformula for OpNodeUpdate, the
// snapshot byte count for the snapshot ops.
const (
	OpParse           = "parse"            // constraint source -> compiled constraint
	OpStep            = "step"             // one committed transaction, end to end
	OpNodeUpdate      = "node.update"      // one auxiliary node's phase-A update
	OpConstraintCheck = "constraint.check" // one constraint's denial evaluation
	OpSnapshotSave    = "snapshot.save"    // checker state serialized
	OpSnapshotRestore = "snapshot.restore" // checker state rebuilt
)

// TraceEvent describes one completed engine operation. Engines measure
// around the operation and emit a single event when it finishes, so a
// Tracer sees begin-to-end duration plus the outcome.
type TraceEvent struct {
	Op       string        // one of the Op* constants
	Detail   string        // operation subject (constraint, subformula, ...)
	Time     uint64        // engine timestamp, when the op has one (OpStep etc.)
	Duration time.Duration // wall-clock time of the operation
	Err      error         // nil on success
}

// Tracer receives engine trace events. Implementations must be safe
// for concurrent use; they are called on the commit path, so slow
// sinks should buffer or sample.
type Tracer interface {
	Trace(TraceEvent)
}

// slogTracer logs every event through a structured logger.
type slogTracer struct {
	l *slog.Logger
}

// NewSlogTracer returns a Tracer that writes one structured log line
// per event: level DEBUG for per-node updates and constraint checks
// (high frequency), INFO for the rest, ERROR when the event carries an
// error.
func NewSlogTracer(l *slog.Logger) Tracer {
	if l == nil {
		l = slog.Default()
	}
	return &slogTracer{l: l}
}

func (t *slogTracer) Trace(ev TraceEvent) {
	level := traceLevel(ev)
	if !t.l.Enabled(context.Background(), level) {
		return
	}
	attrs := make([]any, 0, 8)
	if ev.Detail != "" {
		attrs = append(attrs, "detail", ev.Detail)
	}
	if ev.Time != 0 || ev.Op == OpStep {
		attrs = append(attrs, "t", ev.Time)
	}
	attrs = append(attrs, "dur", ev.Duration)
	if ev.Err != nil {
		attrs = append(attrs, "err", ev.Err)
	}
	t.l.Log(context.Background(), level, ev.Op, attrs...)
}

// traceLevel grades an event: ERROR when it failed, DEBUG for the
// high-frequency per-node and per-check ops, INFO for the rest.
func traceLevel(ev TraceEvent) slog.Level {
	switch {
	case ev.Err != nil:
		return slog.LevelError
	case highFrequencyOp(ev.Op):
		return slog.LevelDebug
	default:
		return slog.LevelInfo
	}
}

// highFrequencyOp reports whether op fires many times per commit —
// the ops worth gating or sampling on the hot path.
func highFrequencyOp(op string) bool {
	return op == OpNodeUpdate || op == OpConstraintCheck
}

// Enabled reports whether the tracer currently wants events of the
// given op; engines use it to skip building per-node and per-check
// events (detail strings, timestamps) the sink would discard anyway.
func (t *slogTracer) Enabled(op string) bool {
	lvl := slog.LevelInfo
	if highFrequencyOp(op) {
		lvl = slog.LevelDebug
	}
	return t.l.Enabled(context.Background(), lvl)
}

// TraceEnabler is the optional interface a Tracer implements to let
// engines skip assembling events the tracer would drop. Tracers
// without it receive everything.
type TraceEnabler interface {
	Enabled(op string) bool
}

// TraceEnabled reports whether t wants events of the given op: false
// for a nil tracer, the TraceEnabler answer when implemented, true
// otherwise.
func TraceEnabled(t Tracer, op string) bool {
	if t == nil {
		return false
	}
	if e, ok := t.(TraceEnabler); ok {
		return e.Enabled(op)
	}
	return true
}

// samplingTracer forwards 1-in-n high-frequency events.
type samplingTracer struct {
	t Tracer
	n uint64
	c atomic.Uint64
}

// NewSamplingTracer wraps t so only one in every n high-frequency
// events (per-node updates, per-constraint checks) reaches it; errors
// and low-frequency ops always pass through. n <= 1 returns t
// unchanged — the sampling knob for keeping a verbose tracer attached
// to a hot commit path.
func NewSamplingTracer(t Tracer, n int) Tracer {
	if t == nil || n <= 1 {
		return t
	}
	return &samplingTracer{t: t, n: uint64(n)}
}

func (s *samplingTracer) Trace(ev TraceEvent) {
	if ev.Err == nil && highFrequencyOp(ev.Op) && s.c.Add(1)%s.n != 0 {
		return
	}
	s.t.Trace(ev)
}

func (s *samplingTracer) Enabled(op string) bool { return TraceEnabled(s.t, op) }

// Observer bundles the instrumentation sinks an engine can carry: a
// metrics set, a tracer and a span sink. Any subset (or the Observer
// itself) may be nil; engines guard every hook with the nil-safe
// accessors below, so the disabled path costs only pointer
// comparisons.
type Observer struct {
	Metrics *Metrics
	Tracer  Tracer
	Spans   SpanSink
}

// Parts returns the observer's metric and trace sinks, (nil, nil) for
// a nil observer.
func (o *Observer) Parts() (*Metrics, Tracer) {
	if o == nil {
		return nil, nil
	}
	return o.Metrics, o.Tracer
}

// SpanSink returns the observer's span sink, nil for a nil observer.
func (o *Observer) SpanSink() SpanSink {
	if o == nil {
		return nil
	}
	return o.Spans
}

// Enabled reports whether any sink is attached.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Metrics != nil || o.Tracer != nil || o.Spans != nil)
}
