// Package storage holds database states — one relation instance per
// schema relation — and the transactions (insert/delete deltas) that move
// a history from one state to the next.
package storage

import (
	"fmt"
	"sort"

	"rtic/internal/relation"
	"rtic/internal/schema"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// State is a database instance over a schema: a named relation store.
type State struct {
	schema *schema.Schema
	rels   map[string]*relation.Relation
}

// NewState returns the empty instance of s.
func NewState(s *schema.Schema) *State {
	rels := make(map[string]*relation.Relation, s.Len())
	for _, name := range s.Names() {
		def, _ := s.Lookup(name)
		rels[name] = relation.New(def.Arity)
	}
	return &State{schema: s, rels: rels}
}

// Schema returns the schema this state instantiates.
func (st *State) Schema() *schema.Schema { return st.schema }

// Relation returns the instance of name, or an error for unknown names.
func (st *State) Relation(name string) (*relation.Relation, error) {
	r, ok := st.rels[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown relation %q", name) //rtic:allocok cold path: unknown relation is a spec/compile bug, never hit in steady state
	}
	return r, nil
}

// Contains reports whether relation name currently holds t.
func (st *State) Contains(name string, t tuple.Tuple) (bool, error) {
	r, err := st.Relation(name)
	if err != nil {
		return false, err
	}
	return r.Contains(t), nil
}

// Clone returns an independent deep copy of the state.
func (st *State) Clone() *State {
	c := &State{schema: st.schema, rels: make(map[string]*relation.Relation, len(st.rels))}
	for n, r := range st.rels {
		c.rels[n] = r.Clone()
	}
	return c
}

// Cardinality returns the total number of tuples across all relations.
func (st *State) Cardinality() int {
	n := 0
	for _, r := range st.rels {
		n += r.Len()
	}
	return n
}

// Size estimates the in-memory footprint in bytes.
func (st *State) Size() int {
	n := 48
	for name, r := range st.rels {
		n += len(name) + r.Size()
	}
	return n
}

// Equal reports whether two states over the same schema hold identical
// relation instances.
func (st *State) Equal(other *State) bool {
	if len(st.rels) != len(other.rels) {
		return false
	}
	for n, r := range st.rels {
		o, ok := other.rels[n]
		if !ok || !r.Equal(o) {
			return false
		}
	}
	return true
}

// ActiveDomain returns every value occurring in any tuple of the state,
// deduplicated and sorted. Quantifiers in the test evaluator range over
// this set (extended with formula constants and the binding under test).
func (st *State) ActiveDomain() []value.Value {
	seen := make(map[string]value.Value)
	for _, r := range st.rels {
		r.Each(func(t tuple.Tuple) bool {
			for _, v := range t {
				seen[v.Key()] = v
			}
			return true
		})
	}
	out := make([]value.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Apply mutates the state by the transaction: deletions first, then
// insertions (so a transaction may replace a tuple's row). It returns an
// error on schema violations, leaving prior modifications in place only
// if the error occurs midway; validate with tx.Validate first when
// atomicity matters.
func (st *State) Apply(tx *Transaction) error {
	for _, m := range tx.ops {
		r, err := st.Relation(m.Rel)
		if err != nil {
			return err
		}
		if m.Insert {
			if _, err := r.Insert(m.Tuple); err != nil {
				return err
			}
		} else {
			r.Delete(m.Tuple)
		}
	}
	return nil
}
