package storage

import (
	"fmt"
	"strings"

	"rtic/internal/schema"
	"rtic/internal/tuple"
)

// Op is a single tuple-level modification within a transaction.
type Op struct {
	Rel    string
	Tuple  tuple.Tuple
	Insert bool // false = delete
}

// Transaction is an ordered list of tuple insertions and deletions that
// together produce the next state of a history. Order matters only when
// a transaction deletes and reinserts the same tuple.
type Transaction struct {
	ops []Op
}

// NewTransaction returns an empty transaction.
func NewTransaction() *Transaction { return &Transaction{} }

// Insert schedules an insertion.
func (tx *Transaction) Insert(rel string, t tuple.Tuple) *Transaction {
	tx.ops = append(tx.ops, Op{Rel: rel, Tuple: t.Clone(), Insert: true})
	return tx
}

// Delete schedules a deletion.
func (tx *Transaction) Delete(rel string, t tuple.Tuple) *Transaction {
	tx.ops = append(tx.ops, Op{Rel: rel, Tuple: t.Clone(), Insert: false})
	return tx
}

// Ops returns the modifications in order. The slice must not be mutated.
func (tx *Transaction) Ops() []Op { return tx.ops }

// Len reports the number of modifications.
func (tx *Transaction) Len() int { return len(tx.ops) }

// Validate checks every op against the schema without applying anything,
// so Apply can be made effectively atomic by validating first.
func (tx *Transaction) Validate(s *schema.Schema) error {
	for i, m := range tx.ops {
		arity, err := s.Arity(m.Rel)
		if err != nil {
			return fmt.Errorf("storage: op %d: %w", i, err)
		}
		if len(m.Tuple) != arity {
			return fmt.Errorf("storage: op %d: relation %s expects arity %d, got %d",
				i, m.Rel, arity, len(m.Tuple))
		}
	}
	return nil
}

// Clone returns an independent copy of the transaction.
func (tx *Transaction) Clone() *Transaction {
	c := &Transaction{ops: make([]Op, len(tx.ops))}
	for i, m := range tx.ops {
		c.ops[i] = Op{Rel: m.Rel, Tuple: m.Tuple.Clone(), Insert: m.Insert}
	}
	return c
}

// String renders the transaction as "+rel(…) -rel(…) …" for diagnostics.
func (tx *Transaction) String() string {
	var b strings.Builder
	for i, m := range tx.ops {
		if i > 0 {
			b.WriteByte(' ')
		}
		if m.Insert {
			b.WriteByte('+')
		} else {
			b.WriteByte('-')
		}
		b.WriteString(m.Rel)
		b.WriteString(m.Tuple.String())
	}
	return b.String()
}
