package storage

import (
	"strings"
	"testing"

	"rtic/internal/schema"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().Relation("r", 2).Relation("p", 1).MustBuild()
}

func TestNewStateEmpty(t *testing.T) {
	st := NewState(testSchema(t))
	if st.Cardinality() != 0 {
		t.Fatal("fresh state not empty")
	}
	r, err := st.Relation("r")
	if err != nil || r.Arity() != 2 {
		t.Fatalf("Relation(r): %v arity=%d", err, r.Arity())
	}
	if _, err := st.Relation("missing"); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestApplyInsertDelete(t *testing.T) {
	st := NewState(testSchema(t))
	tx := NewTransaction().Insert("r", tuple.Ints(1, 2)).Insert("p", tuple.Ints(7))
	if err := st.Apply(tx); err != nil {
		t.Fatal(err)
	}
	if ok, _ := st.Contains("r", tuple.Ints(1, 2)); !ok {
		t.Fatal("insert lost")
	}
	tx2 := NewTransaction().Delete("r", tuple.Ints(1, 2))
	if err := st.Apply(tx2); err != nil {
		t.Fatal(err)
	}
	if ok, _ := st.Contains("r", tuple.Ints(1, 2)); ok {
		t.Fatal("delete lost")
	}
	if st.Cardinality() != 1 {
		t.Fatalf("cardinality = %d", st.Cardinality())
	}
}

func TestApplyDeleteThenInsertSameTuple(t *testing.T) {
	st := NewState(testSchema(t))
	tx := NewTransaction().Insert("p", tuple.Ints(1))
	if err := st.Apply(tx); err != nil {
		t.Fatal(err)
	}
	tx2 := NewTransaction().Delete("p", tuple.Ints(1)).Insert("p", tuple.Ints(1))
	if err := st.Apply(tx2); err != nil {
		t.Fatal(err)
	}
	if ok, _ := st.Contains("p", tuple.Ints(1)); !ok {
		t.Fatal("delete-then-insert should leave tuple present")
	}
}

func TestApplyErrors(t *testing.T) {
	st := NewState(testSchema(t))
	if err := st.Apply(NewTransaction().Insert("zz", tuple.Ints(1))); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if err := st.Apply(NewTransaction().Insert("p", tuple.Ints(1, 2))); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestValidate(t *testing.T) {
	s := testSchema(t)
	good := NewTransaction().Insert("r", tuple.Ints(1, 2)).Delete("p", tuple.Ints(3))
	if err := good.Validate(s); err != nil {
		t.Fatal(err)
	}
	bad := NewTransaction().Insert("r", tuple.Ints(1))
	if err := bad.Validate(s); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("Validate = %v", err)
	}
	unknown := NewTransaction().Insert("nope", tuple.Ints(1))
	if err := unknown.Validate(s); err == nil {
		t.Fatal("unknown relation validated")
	}
}

func TestTransactionInsertCopies(t *testing.T) {
	row := tuple.Ints(1)
	tx := NewTransaction().Insert("p", row)
	row[0] = value.Int(9)
	if tx.Ops()[0].Tuple[0].AsInt() != 1 {
		t.Fatal("transaction aliases caller tuple")
	}
}

func TestTransactionClone(t *testing.T) {
	tx := NewTransaction().Insert("p", tuple.Ints(1))
	c := tx.Clone()
	c.Insert("p", tuple.Ints(2))
	if tx.Len() != 1 || c.Len() != 2 {
		t.Fatal("Clone shares op list")
	}
}

func TestTransactionString(t *testing.T) {
	tx := NewTransaction().Insert("p", tuple.Ints(1)).Delete("r", tuple.Ints(2, 3))
	if got := tx.String(); got != "+p(1) -r(2, 3)" {
		t.Fatalf("String = %q", got)
	}
}

func TestStateCloneIndependence(t *testing.T) {
	st := NewState(testSchema(t))
	if err := st.Apply(NewTransaction().Insert("p", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	c := st.Clone()
	if err := c.Apply(NewTransaction().Insert("p", tuple.Ints(2))); err != nil {
		t.Fatal(err)
	}
	if st.Cardinality() != 1 || c.Cardinality() != 2 {
		t.Fatal("Clone shares relations")
	}
}

func TestStateEqual(t *testing.T) {
	a, b := NewState(testSchema(t)), NewState(testSchema(t))
	if !a.Equal(b) {
		t.Fatal("empty states unequal")
	}
	if err := a.Apply(NewTransaction().Insert("p", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("different states equal")
	}
	if err := b.Apply(NewTransaction().Insert("p", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same states unequal")
	}
}

func TestActiveDomain(t *testing.T) {
	st := NewState(testSchema(t))
	tx := NewTransaction().
		Insert("r", tuple.Of(value.Int(1), value.Str("a"))).
		Insert("p", tuple.Ints(1))
	if err := st.Apply(tx); err != nil {
		t.Fatal(err)
	}
	dom := st.ActiveDomain()
	if len(dom) != 2 {
		t.Fatalf("active domain = %v, want 2 distinct values", dom)
	}
	if !dom[0].Equal(value.Int(1)) || !dom[1].Equal(value.Str("a")) {
		t.Fatalf("active domain = %v", dom)
	}
}

func TestSizeGrows(t *testing.T) {
	st := NewState(testSchema(t))
	s0 := st.Size()
	if err := st.Apply(NewTransaction().Insert("p", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	if st.Size() <= s0 {
		t.Fatal("Size did not grow after insert")
	}
}
