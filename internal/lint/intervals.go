package lint

import (
	"fmt"

	"rtic/internal/mtl"
)

// The interval pass flags metric windows that can never fire.
//
// Two facts drive it: (1) intervals are [Lo,Hi] over non-negative
// distances, so Lo > Hi is empty outright (the parser rejects this,
// but programmatically built formulas reach the linter too); (2) the
// engine requires timestamps to strictly increase across commits, so
// the distance to *any previous state* is at least 1 — a prev whose
// window excludes every distance ≥ 1 is dead.
func lintIntervals(name string, f mtl.Formula, out *[]Diagnostic) {
	mtl.Walk(f, func(g mtl.Formula) {
		switch n := g.(type) {
		case *mtl.Prev:
			emptyInterval(name, g, n.I, out)
			if !n.I.Unbounded && n.I.Hi < 1 {
				*out = append(*out, Diagnostic{
					Rule:       "interval-unsatisfiable",
					Severity:   Error,
					Constraint: name,
					Node:       g.String(),
					Pos:        mtl.NodePos(g),
					Message: fmt.Sprintf("window %s of prev can never fire: timestamps strictly increase, so the previous state is always at least 1 time unit in the past",
						n.I.String()),
					Suggestion: "widen the window, e.g. prev[1,1] or prev",
				})
			}
		case *mtl.Once:
			emptyInterval(name, g, n.I, out)
		case *mtl.Always:
			emptyInterval(name, g, n.I, out)
		case *mtl.Since:
			emptyInterval(name, g, n.I, out)
		case *mtl.LeadsTo:
			emptyInterval(name, g, n.I, out)
			// The deadline monitor rewrites "L leadsto[a,d] R" into a
			// since over [d+1, ∞); d+1 saturates at the top of uint64.
			if !n.I.Unbounded && n.I.Hi == ^uint64(0) {
				*out = append(*out, Diagnostic{
					Rule:       "interval-overflow",
					Severity:   Warning,
					Constraint: name,
					Node:       g.String(),
					Pos:        mtl.NodePos(g),
					Message:    "deadline is the maximum uint64; the expiry bound d+1 saturates and the obligation is never reported overdue",
					Suggestion: "use an unbounded window (leadsto is then vacuous) or a realistic deadline",
				})
			}
		}
	})
}

func emptyInterval(name string, g mtl.Formula, iv mtl.Interval, out *[]Diagnostic) {
	if !iv.Unbounded && iv.Lo > iv.Hi {
		*out = append(*out, Diagnostic{
			Rule:       "interval-empty",
			Severity:   Error,
			Constraint: name,
			Node:       g.String(),
			Pos:        mtl.NodePos(g),
			Message:    fmt.Sprintf("window %s is empty: lower bound exceeds upper bound", iv.String()),
			Suggestion: "swap the bounds or widen the window",
		})
	}
}
