// Package lint is the static analyzer for constraints: it walks the
// mtl AST against a schema and reports structured diagnostics before a
// constraint is installed on an engine. The passes are purely static —
// no history is consulted — and conservative: every Error-severity
// finding is a constraint that cannot work as written (unsatisfiable
// window, contradiction, schema mismatch, unsafe denial), while
// Warning findings flag constraints that are legal but almost
// certainly not what the author meant (vacuous, dead branches,
// excessive worst-case cost).
//
// The rule catalogue with triggering examples lives in docs/LINTING.md.
package lint

import (
	"errors"
	"fmt"

	"rtic/internal/check"
	"rtic/internal/mtl"
	"rtic/internal/schema"
	"rtic/internal/workload"
)

// Severity grades a finding: Info is advisory, Warning means the
// constraint is legal but suspicious, Error means it cannot behave as
// written. Strict lint mode rejects on Warning and above; default
// mode rejects on Error only.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its lowercase name, so JSON
// consumers never see the internal ordinal.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Diagnostic is one finding of the analyzer.
type Diagnostic struct {
	// Rule is the stable identifier of the check that fired
	// (e.g. "interval-unsatisfiable"); docs/LINTING.md indexes by it.
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	// Constraint names the constraint the finding is about; empty for
	// spec-level findings (e.g. an unused relation).
	Constraint string `json:"constraint,omitempty"`
	// Node renders the offending subformula; Pos is its 1-based byte
	// offset in the constraint source (0 when unknown), Line the spec
	// file line (0 when the source was not a spec file).
	Node string `json:"node,omitempty"`
	Pos  int    `json:"pos,omitempty"`
	Line int    `json:"line,omitempty"`
	// Message states the problem; Suggestion, when present, proposes
	// a concrete rewrite.
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
}

// String renders the diagnostic in the CLI's text format:
//
//	name:12:34: error: [rule] message (suggestion)
func (d Diagnostic) String() string {
	head := d.Constraint
	if head == "" {
		head = "spec"
	}
	if d.Line > 0 {
		head += fmt.Sprintf(":%d", d.Line)
	}
	if d.Pos > 0 {
		head += fmt.Sprintf(":%d", d.Pos)
	}
	out := fmt.Sprintf("%s: %s: [%s] %s", head, d.Severity, d.Rule, d.Message)
	if d.Suggestion != "" {
		out += " (" + d.Suggestion + ")"
	}
	return out
}

// DefaultCostThreshold is the per-constraint worst-case weight above
// which the cost pass warns; see Options.CostThreshold.
const DefaultCostThreshold = 100_000

// Options tunes the analyzer.
type Options struct {
	// CostThreshold is the per-constraint worst-case bounded-history
	// weight (sum over aux nodes of window span × binding arity) above
	// which the cost rule warns. Zero means DefaultCostThreshold;
	// use NoCostCheck to disable the pass.
	CostThreshold uint64
	// Written, when non-nil, is the set of relations observed written
	// (by a log or workload); constraints reading relations outside it
	// trigger the never-written-relation rule.
	Written map[string]bool
}

// NoCostCheck as a CostThreshold disables the cost pass.
const NoCostCheck = ^uint64(0)

func (o Options) costThreshold() uint64 {
	if o.CostThreshold == 0 {
		return DefaultCostThreshold
	}
	return o.CostThreshold
}

// MaxSeverity returns the highest severity among diags, or -1 when
// there are none.
func MaxSeverity(diags []Diagnostic) Severity {
	max := Severity(-1)
	for _, d := range diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// HasErrors reports whether any diagnostic is Error severity.
func HasErrors(diags []Diagnostic) bool { return MaxSeverity(diags) >= Error }

// Constraint runs every per-constraint pass over the parsed formula f.
func Constraint(name string, f mtl.Formula, s *schema.Schema, opts Options) []Diagnostic {
	var out []Diagnostic
	schemaOK := lintSchema(name, f, s, &out)
	lintIntervals(name, f, &out)
	lintVacuity(name, f, &out)
	if !schemaOK {
		return out // compilation below would only repeat the schema errors
	}
	if _, isConst := simpConst(&mtl.Not{F: f}); isConst {
		// The vacuity pass already classified the constraint; compiling
		// a constant denial only repeats that in a less useful form,
		// and it has no cost worth estimating.
		return out
	}
	con, err := check.Compile(name, f, s)
	if err != nil {
		out = append(out, unsafeDiag(name, err))
		return out
	}
	lintCost(name, con, s, opts.costThreshold(), &out)
	return out
}

// unsafeDiag converts a compile error into a diagnostic, pointing at
// the offending subformula when the failure is a safety violation.
func unsafeDiag(name string, err error) Diagnostic {
	d := Diagnostic{
		Rule:       "unsafe",
		Severity:   Error,
		Constraint: name,
		Message:    err.Error(),
		Suggestion: "bind every variable of the violation condition with a positive atom",
	}
	var se *mtl.SafetyError
	if errors.As(err, &se) {
		d.Pos = se.Pos
		d.Node = se.Node.String()
	}
	return d
}

// Source parses src and lints the result; a parse failure is itself
// reported as a diagnostic (rule "parse") rather than an error, so
// callers can lint a whole spec without stopping at the first bad
// constraint.
func Source(name, src string, s *schema.Schema, opts Options) []Diagnostic {
	f, err := mtl.Parse(src)
	if err != nil {
		return []Diagnostic{{
			Rule:       "parse",
			Severity:   Error,
			Constraint: name,
			Message:    err.Error(),
		}}
	}
	return Constraint(name, f, s, opts)
}

// Constraints lints every constraint of a spec and then runs the
// spec-level passes (relations never read, relations read but never
// written). Diagnostics come back grouped by constraint, in input
// order, spec-level findings last.
func Constraints(specs []workload.ConstraintSpec, s *schema.Schema, opts Options) []Diagnostic {
	var out []Diagnostic
	read := make(map[string]bool)
	for _, cs := range specs {
		diags := Source(cs.Name, cs.Source, s, opts)
		for i := range diags {
			if diags[i].Line == 0 {
				diags[i].Line = cs.Line
			}
		}
		out = append(out, diags...)
		if f, err := mtl.Parse(cs.Source); err == nil {
			mtl.Walk(f, func(g mtl.Formula) {
				if a, ok := g.(*mtl.Atom); ok {
					read[a.Rel] = true
				}
			})
		}
	}
	for _, rel := range s.Names() {
		if !read[rel] {
			out = append(out, Diagnostic{
				Rule:     "unused-relation",
				Severity: Info,
				Message:  fmt.Sprintf("relation %s is declared but no constraint reads it", rel),
			})
		}
	}
	if opts.Written != nil {
		for _, rel := range s.Names() {
			if read[rel] && !opts.Written[rel] {
				out = append(out, Diagnostic{
					Rule:     "never-written-relation",
					Severity: Warning,
					Message:  fmt.Sprintf("relation %s is read by constraints but never written by the observed workload; every check over it is trivially empty", rel),
				})
			}
		}
	}
	return out
}
