package lint

import (
	"math/rand"
	"testing"

	"rtic/internal/formgen"
	"rtic/internal/mtl"
)

// FuzzLint feeds arbitrary source through the analyzer: any input —
// parseable or not, safe or not — must produce diagnostics without
// panicking, and a formula the compiler accepts must never produce an
// Error-severity finding from the compile-dependent passes alone.
func FuzzLint(f *testing.F) {
	seeds := []string{
		`p(x) -> not once[0,30] q(x)`,
		`p(x) -> prev[0,0] p(x)`,
		`p(x) or not p(x)`,
		`r(x, y) -> not once[0,999999] r(x, y)`,
		`pp(x) and qq(y)`,
		`exists x, y: p(x)`,
		`p(x) leadsto[0,18446744073709551615] q(x)`,
		`not a formula at all`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		diags := Source("fuzz", src, testSchema(), Options{})
		for _, d := range diags {
			_ = d.String() // rendering must not panic either
			if d.Rule == "" {
				t.Errorf("diagnostic without rule: %+v", d)
			}
		}
	})
}

// TestLintGeneratedConstraints runs the analyzer over formgen's safe
// constraint grammar: no panics, and no Error findings on constraints
// the compiler provably accepts.
func TestLintGeneratedConstraints(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		src := formgen.Constraint(r)
		diags := Source("gen", src, formgen.Schema(), Options{CostThreshold: NoCostCheck})
		for _, d := range diags {
			if d.Severity == Error && d.Rule != "interval-unsatisfiable" {
				t.Errorf("%q: unexpected error finding %v", src, d)
			}
		}
	}
}

// TestLintPanicFreeOnAST exercises Constraint directly with hand-built
// node shapes Walk-based passes must tolerate.
func TestLintPanicFreeOnAST(t *testing.T) {
	p := &mtl.Atom{Rel: "p", Args: []mtl.Term{mtl.Var{Name: "x"}}}
	for _, f := range []mtl.Formula{
		mtl.Truth{Bool: true},
		&mtl.Not{F: &mtl.Not{F: p}},
		&mtl.Forall{Vars: []string{"x"}, F: &mtl.Always{I: mtl.Full(), F: &mtl.Not{F: p}}},
		&mtl.Since{I: mtl.AtLeast(3), L: p, R: p},
	} {
		_ = Constraint("ast", f, testSchema(), Options{})
	}
}
