package lint

import (
	"fmt"
	"sort"

	"rtic/internal/mtl"
	"rtic/internal/schema"
	"rtic/internal/value"
)

// The schema pass checks every atom against the declared vocabulary
// (unlike the compiler's fol.CheckSchema it reports all findings, not
// just the first) and infers a column type from the constants compared
// against each column, flagging conflicts — a column that is both an
// integer and a string in the same constraint set can never join.
//
// It returns false when an Error-severity finding fired, in which case
// compilation-dependent passes are pointless.
func lintSchema(name string, f mtl.Formula, s *schema.Schema, out *[]Diagnostic) bool {
	ok := true
	cols := make(map[colRef]colUse)
	mtl.Walk(f, func(g mtl.Formula) {
		a, isAtom := g.(*mtl.Atom)
		if !isAtom {
			return
		}
		def, known := s.Lookup(a.Rel)
		if !known {
			ok = false
			*out = append(*out, Diagnostic{
				Rule:       "unknown-relation",
				Severity:   Error,
				Constraint: name,
				Node:       g.String(),
				Pos:        mtl.NodePos(g),
				Message:    fmt.Sprintf("relation %s is not declared in the schema", a.Rel),
				Suggestion: suggestRelation(a.Rel, s),
			})
			return
		}
		if def.Arity != len(a.Args) {
			ok = false
			*out = append(*out, Diagnostic{
				Rule:       "arity-mismatch",
				Severity:   Error,
				Constraint: name,
				Node:       g.String(),
				Pos:        mtl.NodePos(g),
				Message: fmt.Sprintf("atom has %d arguments, relation %s has arity %d",
					len(a.Args), a.Rel, def.Arity),
			})
			return
		}
		for i, arg := range a.Args {
			if c, isConst := arg.(mtl.Const); isConst {
				recordColUse(cols, colRef{rel: a.Rel, col: i}, c.Val.Kind(), mtl.NodePos(g))
			}
		}
	})
	// Variable-mediated uses: x in p(x) compared with a constant, or
	// carried into another column, propagates that constant's kind.
	propagateVarKinds(f, cols)
	reportColConflicts(name, cols, out)
	return ok
}

type colRef struct {
	rel string
	col int
}

type colUse struct {
	kinds map[value.Kind]int // kind -> first source position seen
}

func recordColUse(cols map[colRef]colUse, ref colRef, k value.Kind, pos int) {
	u, ok := cols[ref]
	if !ok {
		u = colUse{kinds: make(map[value.Kind]int)}
		cols[ref] = u
	}
	if _, seen := u.kinds[k]; !seen {
		u.kinds[k] = pos
	}
}

// propagateVarKinds joins columns through shared variables and through
// comparisons of a variable against a constant: in
// "p(x) and x = 'ann'" column p.0 is a string column.
func propagateVarKinds(f mtl.Formula, cols map[colRef]colUse) {
	varCols := make(map[string][]colRef) // variable -> columns it flows through
	varKinds := make(map[string]map[value.Kind]int)
	mtl.Walk(f, func(g mtl.Formula) {
		switch n := g.(type) {
		case *mtl.Atom:
			for i, arg := range n.Args {
				if v, isVar := arg.(mtl.Var); isVar {
					varCols[v.Name] = append(varCols[v.Name], colRef{rel: n.Rel, col: i})
				}
			}
		case *mtl.Cmp:
			v, lVar := n.L.(mtl.Var)
			c, rConst := n.R.(mtl.Const)
			if !lVar || !rConst {
				v, lVar = n.R.(mtl.Var)
				c, rConst = n.L.(mtl.Const)
			}
			if lVar && rConst {
				if varKinds[v.Name] == nil {
					varKinds[v.Name] = make(map[value.Kind]int)
				}
				if _, seen := varKinds[v.Name][c.Val.Kind()]; !seen {
					varKinds[v.Name][c.Val.Kind()] = mtl.NodePos(g)
				}
			}
		}
	})
	for name, kinds := range varKinds {
		for _, ref := range varCols[name] {
			for k, pos := range kinds {
				recordColUse(cols, ref, k, pos)
			}
		}
	}
}

func reportColConflicts(name string, cols map[colRef]colUse, out *[]Diagnostic) {
	refs := make([]colRef, 0, len(cols))
	for ref := range cols {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].rel != refs[j].rel {
			return refs[i].rel < refs[j].rel
		}
		return refs[i].col < refs[j].col
	})
	for _, ref := range refs {
		u := cols[ref]
		if len(u.kinds) < 2 {
			continue
		}
		pos := 0
		for _, p := range u.kinds {
			if pos == 0 || (p > 0 && p < pos) {
				pos = p
			}
		}
		*out = append(*out, Diagnostic{
			Rule:       "column-type-conflict",
			Severity:   Warning,
			Constraint: name,
			Pos:        pos,
			Message: fmt.Sprintf("column %d of %s is used both as int and as string; such comparisons never match",
				ref.col, ref.rel),
			Suggestion: "make the literals agree on one type",
		})
	}
}

// suggestRelation proposes the closest declared relation name, if any
// is within edit distance 2.
func suggestRelation(miss string, s *schema.Schema) string {
	best, bestD := "", 3
	for _, n := range s.Names() {
		if d := editDistance(miss, n); d < bestD {
			best, bestD = n, d
		}
	}
	if best == "" {
		return ""
	}
	return fmt.Sprintf("did you mean %s?", best)
}

func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
