package lint

import (
	"encoding/json"
	"strings"
	"testing"

	"rtic/internal/mtl"
	"rtic/internal/schema"
	"rtic/internal/workload"
)

func testSchema() *schema.Schema {
	return schema.NewBuilder().
		Relation("p", 1).
		Relation("q", 1).
		Relation("r", 2).
		MustBuild()
}

// rules collects the rule names fired for src.
func rules(t *testing.T, src string, opts Options) []string {
	t.Helper()
	diags := Source("c", src, testSchema(), opts)
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Rule
	}
	return out
}

func hasRule(diags []Diagnostic, rule string) *Diagnostic {
	for i := range diags {
		if diags[i].Rule == rule {
			return &diags[i]
		}
	}
	return nil
}

// TestUnsatisfiableInterval pins the acceptance case: prev with an
// upper bound of zero can never fire because timestamps strictly
// increase.
func TestUnsatisfiableInterval(t *testing.T) {
	diags := Source("c", `p(x) -> prev[0,0] p(x)`, testSchema(), Options{})
	d := hasRule(diags, "interval-unsatisfiable")
	if d == nil {
		t.Fatalf("interval-unsatisfiable not reported; got %v", diags)
	}
	if d.Severity != Error {
		t.Errorf("severity = %s, want error", d.Severity)
	}
	if d.Pos == 0 {
		t.Errorf("diagnostic carries no source position")
	}
	if !HasErrors(diags) {
		t.Errorf("HasErrors = false")
	}
	// A satisfiable prev window must stay clean.
	if ds := Source("c", `p(x) -> prev[1,5] p(x)`, testSchema(), Options{}); hasRule(ds, "interval-unsatisfiable") != nil {
		t.Errorf("prev[1,5] flagged: %v", ds)
	}
}

// TestVacuousConstraint pins the acceptance case: a constraint whose
// denial simplifies to false can never be violated.
func TestVacuousConstraint(t *testing.T) {
	diags := Source("c", `p(x) or not p(x)`, testSchema(), Options{})
	d := hasRule(diags, "vacuous-constraint")
	if d == nil {
		t.Fatalf("vacuous-constraint not reported; got %v", diags)
	}
	if d.Severity != Warning {
		t.Errorf("severity = %s, want warning", d.Severity)
	}
}

// TestCostThreshold pins the acceptance case: a huge metric window
// over a wide binding space blows the worst-case estimate.
func TestCostThreshold(t *testing.T) {
	src := `r(x, y) -> not once[0,999999] r(x, y)`
	diags := Source("c", src, testSchema(), Options{})
	d := hasRule(diags, "cost")
	if d == nil {
		t.Fatalf("cost not reported; got %v", diags)
	}
	if d.Severity != Warning {
		t.Errorf("severity = %s, want warning", d.Severity)
	}
	if !strings.Contains(d.Message, "exceeds threshold") {
		t.Errorf("message = %q", d.Message)
	}
	// Raising the threshold silences it; NoCostCheck disables the pass.
	if ds := Source("c", src, testSchema(), Options{CostThreshold: 1 << 60}); hasRule(ds, "cost") != nil {
		t.Errorf("cost fired above threshold: %v", ds)
	}
	if ds := Source("c", src, testSchema(), Options{CostThreshold: NoCostCheck}); hasRule(ds, "cost") != nil {
		t.Errorf("cost fired with NoCostCheck: %v", ds)
	}
	// A tight window stays under the default threshold.
	if ds := Source("c", `r(x, y) -> not once[0,9] r(x, y)`, testSchema(), Options{}); hasRule(ds, "cost") != nil {
		t.Errorf("cheap constraint flagged: %v", ds)
	}
}

func TestContradiction(t *testing.T) {
	diags := Source("c", `p(x) and not p(x)`, testSchema(), Options{})
	d := hasRule(diags, "contradiction")
	if d == nil {
		t.Fatalf("contradiction not reported; got %v", diags)
	}
	if d.Severity != Error {
		t.Errorf("severity = %s, want error", d.Severity)
	}
}

func TestContradictoryConjuncts(t *testing.T) {
	diags := Source("c", `p(x) or (x = 1 and x != 1)`, testSchema(), Options{})
	if hasRule(diags, "contradictory-conjuncts") == nil {
		t.Errorf("contradictory-conjuncts not reported; got %v", diags)
	}
}

func TestDeadBranch(t *testing.T) {
	diags := Source("c", `p(x) or (1 > 2)`, testSchema(), Options{})
	if hasRule(diags, "dead-branch") == nil {
		t.Errorf("dead-branch not reported; got %v", diags)
	}
}

func TestConstantSubformula(t *testing.T) {
	diags := Source("c", `p(x) and 1 < 2`, testSchema(), Options{})
	if hasRule(diags, "constant-subformula") == nil {
		t.Errorf("constant-subformula not reported; got %v", diags)
	}
	// A literal `true` written by the author is not flagged.
	diags = Source("c", `p(x) and true`, testSchema(), Options{})
	if hasRule(diags, "constant-subformula") != nil {
		t.Errorf("literal true flagged: %v", diags)
	}
}

func TestUnusedAndShadowedVariables(t *testing.T) {
	diags := Source("c", `exists x, y: p(x)`, testSchema(), Options{})
	d := hasRule(diags, "unused-variable")
	if d == nil {
		t.Fatalf("unused-variable not reported; got %v", diags)
	}
	if !strings.Contains(d.Message, `"y"`) {
		t.Errorf("message = %q, want y named", d.Message)
	}
	diags = Source("c", `p(x) and exists x: q(x)`, testSchema(), Options{})
	if hasRule(diags, "shadowed-variable") == nil {
		t.Errorf("shadowed-variable not reported; got %v", diags)
	}
}

func TestSchemaRules(t *testing.T) {
	diags := Source("c", `pp(x) -> q(x)`, testSchema(), Options{})
	d := hasRule(diags, "unknown-relation")
	if d == nil {
		t.Fatalf("unknown-relation not reported; got %v", diags)
	}
	if !strings.Contains(d.Suggestion, "did you mean p?") {
		t.Errorf("suggestion = %q", d.Suggestion)
	}
	diags = Source("c", `p(x, y) -> q(x)`, testSchema(), Options{})
	if hasRule(diags, "arity-mismatch") == nil {
		t.Errorf("arity-mismatch not reported; got %v", diags)
	}
	// All schema errors are reported, not just the first.
	diags = Source("c", `pp(x) and qq(x)`, testSchema(), Options{})
	n := 0
	for _, d := range diags {
		if d.Rule == "unknown-relation" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("got %d unknown-relation findings, want 2: %v", n, diags)
	}
}

func TestColumnTypeConflict(t *testing.T) {
	diags := Source("c", `p(1) -> not p('ann')`, testSchema(), Options{})
	if hasRule(diags, "column-type-conflict") == nil {
		t.Errorf("column-type-conflict not reported; got %v", diags)
	}
	// Variable-mediated conflict: x joins p.0 with a string literal.
	diags = Source("c", `(p(x) and x = 'ann') -> not p(1)`, testSchema(), Options{})
	if hasRule(diags, "column-type-conflict") == nil {
		t.Errorf("variable-mediated conflict not reported; got %v", diags)
	}
}

func TestUnsafeDiagnostic(t *testing.T) {
	diags := Source("c", `not p(x) -> q(x)`, testSchema(), Options{})
	d := hasRule(diags, "unsafe")
	if d == nil {
		t.Fatalf("unsafe not reported; got %v", diags)
	}
	if d.Severity != Error {
		t.Errorf("severity = %s, want error", d.Severity)
	}
}

func TestParseDiagnostic(t *testing.T) {
	diags := Source("c", `p(x) and and`, testSchema(), Options{})
	if d := hasRule(diags, "parse"); d == nil || d.Severity != Error {
		t.Fatalf("parse error not reported as diagnostic; got %v", diags)
	}
}

func TestIntervalOverflow(t *testing.T) {
	diags := Source("c", `p(x) leadsto[0,18446744073709551615] q(x)`, testSchema(), Options{})
	if hasRule(diags, "interval-overflow") == nil {
		t.Errorf("interval-overflow not reported; got %v", diags)
	}
}

func TestEmptyIntervalProgrammatic(t *testing.T) {
	// The parser rejects inverted bounds; hand-built ASTs reach the
	// linter anyway.
	f := &mtl.Once{I: mtl.Interval{Lo: 5, Hi: 2}, F: &mtl.Atom{Rel: "p", Args: []mtl.Term{mtl.Var{Name: "x"}}}}
	con := &mtl.Implies{L: &mtl.Atom{Rel: "p", Args: []mtl.Term{mtl.Var{Name: "x"}}}, R: f}
	diags := Constraint("c", con, testSchema(), Options{})
	if hasRule(diags, "interval-empty") == nil {
		t.Errorf("interval-empty not reported; got %v", diags)
	}
}

func TestCleanConstraintHasNoFindings(t *testing.T) {
	for _, src := range []string{
		`p(x) -> not once[0,30] q(x)`,
		`r(x, y) -> prev[1,10] r(x, y)`,
		`p(x) leadsto[0,5] q(x)`,
	} {
		if diags := Source("c", src, testSchema(), Options{}); len(diags) != 0 {
			t.Errorf("%q: unexpected findings %v", src, diags)
		}
	}
}

func TestSpecLevelRules(t *testing.T) {
	specs := []workload.ConstraintSpec{
		{Name: "a", Source: `p(x) -> not once[0,5] q(x)`, Line: 3},
	}
	diags := Constraints(specs, testSchema(), Options{})
	d := hasRule(diags, "unused-relation")
	if d == nil {
		t.Fatalf("unused-relation not reported for r; got %v", diags)
	}
	if d.Severity != Info {
		t.Errorf("severity = %s, want info", d.Severity)
	}
	// never-written-relation only fires when a written set is given.
	diags = Constraints(specs, testSchema(), Options{Written: map[string]bool{"p": true}})
	d = hasRule(diags, "never-written-relation")
	if d == nil {
		t.Fatalf("never-written-relation not reported for q; got %v", diags)
	}
	if !strings.Contains(d.Message, "relation q") {
		t.Errorf("message = %q", d.Message)
	}
}

func TestSpecLinePropagates(t *testing.T) {
	specs := []workload.ConstraintSpec{
		{Name: "bad", Source: `p(x) -> prev[0,0] p(x)`, Line: 7},
	}
	diags := Constraints(specs, testSchema(), Options{})
	d := hasRule(diags, "interval-unsatisfiable")
	if d == nil {
		t.Fatalf("interval-unsatisfiable not reported; got %v", diags)
	}
	if d.Line != 7 {
		t.Errorf("Line = %d, want 7", d.Line)
	}
	if !strings.Contains(d.String(), "bad:7:") {
		t.Errorf("String() = %q, want line rendered", d.String())
	}
}

func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{Rule: "cost", Severity: Warning, Constraint: "c", Message: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"severity":"warning"`) {
		t.Errorf("json = %s", b)
	}
}

func TestMaxSeverity(t *testing.T) {
	if got := MaxSeverity(nil); got != Severity(-1) {
		t.Errorf("MaxSeverity(nil) = %v", got)
	}
	diags := []Diagnostic{{Severity: Info}, {Severity: Warning}}
	if got := MaxSeverity(diags); got != Warning {
		t.Errorf("MaxSeverity = %v, want warning", got)
	}
	if HasErrors(diags) {
		t.Errorf("HasErrors = true without errors")
	}
}
