package lint

import (
	"fmt"

	"rtic/internal/mtl"
)

// The vacuity pass detects constraints (and subformulas) whose truth
// value is already decided at compile time. It reuses the compiler's
// own pipeline — Simplify∘Normalize — as the decision procedure, so a
// constraint is flagged vacuous exactly when the engine would install
// a denial that never (or always) fires.
func lintVacuity(name string, f mtl.Formula, out *[]Diagnostic) {
	den := mtl.Simplify(mtl.Normalize(&mtl.Not{F: f}))
	if t, ok := den.(mtl.Truth); ok {
		if t.Bool {
			*out = append(*out, Diagnostic{
				Rule:       "contradiction",
				Severity:   Error,
				Constraint: name,
				Node:       f.String(),
				Pos:        mtl.NodePos(f),
				Message:    "constraint simplifies to false; every state of every history violates it",
				Suggestion: "the constraint as written is unsatisfiable — rewrite it",
			})
		} else {
			*out = append(*out, Diagnostic{
				Rule:       "vacuous-constraint",
				Severity:   Warning,
				Constraint: name,
				Node:       f.String(),
				Pos:        mtl.NodePos(f),
				Message:    "constraint simplifies to true; it can never be violated and checking it is wasted work",
				Suggestion: "delete it or fix the condition that makes it trivial",
			})
		}
	}
	w := &vacuityWalker{name: name, out: out, bound: make(map[string]bool)}
	// Free constraint variables are implicitly ∀-quantified, so an
	// explicit quantifier rebinding one of them shadows it.
	for _, v := range mtl.FreeVars(f) {
		w.bound[v] = true
	}
	w.walk(f, true)
}

type vacuityWalker struct {
	name  string
	out   *[]Diagnostic
	bound map[string]bool // quantified variables in scope
}

// simpConst reports whether g's kernel simplification is the constant
// truth value c.
func simpConst(g mtl.Formula) (c bool, ok bool) {
	t, ok := mtl.Simplify(mtl.Normalize(g)).(mtl.Truth)
	return t.Bool, ok
}

// walk descends f reporting the *maximal* constant subformulas: once a
// node is reported its children are skipped, so nested constants
// produce one finding, not a cascade. The root is exempt — top-level
// constancy is the vacuous-constraint/contradiction rule's business.
func (w *vacuityWalker) walk(g mtl.Formula, root bool) {
	if _, isLiteral := g.(mtl.Truth); !isLiteral && !root {
		if c, ok := simpConst(g); ok {
			w.reportConst(g, c)
			return
		}
	}
	switch n := g.(type) {
	case *mtl.Not:
		w.walk(n.F, false)
	case *mtl.And:
		w.walk(n.L, false)
		w.walk(n.R, false)
	case *mtl.Or:
		w.deadBranch(n)
	case *mtl.Implies:
		w.walk(n.L, false)
		w.walk(n.R, false)
	case *mtl.Iff:
		w.walk(n.L, false)
		w.walk(n.R, false)
	case *mtl.Exists:
		w.quantifier(g, n.Vars, n.F)
	case *mtl.Forall:
		w.quantifier(g, n.Vars, n.F)
	case *mtl.Prev:
		w.walk(n.F, false)
	case *mtl.Once:
		w.walk(n.F, false)
	case *mtl.Always:
		w.walk(n.F, false)
	case *mtl.Since:
		w.walk(n.L, false)
		w.walk(n.R, false)
	case *mtl.LeadsTo:
		w.walk(n.L, false)
		w.walk(n.R, false)
	}
}

// reportConst classifies a constant subformula: a conjunction that
// folds to false without a constant conjunct has contradictory
// conjuncts (e.g. x = 1 and x != 1); everything else is the generic
// constant-subformula rule.
func (w *vacuityWalker) reportConst(g mtl.Formula, val bool) {
	if !val && w.contradictoryConjuncts(g) {
		return
	}
	*w.out = append(*w.out, Diagnostic{
		Rule:       "constant-subformula",
		Severity:   Warning,
		Constraint: w.name,
		Node:       g.String(),
		Pos:        mtl.NodePos(g),
		Message:    fmt.Sprintf("subformula is always %t regardless of the history", val),
		Suggestion: "replace it with the constant or fix the condition",
	})
}

// contradictoryConjuncts reports (and returns true) when g is a
// conjunction folding to false although no conjunct is constant on its
// own — e.g. x = 1 and x != 1.
func (w *vacuityWalker) contradictoryConjuncts(g mtl.Formula) bool {
	n, ok := g.(*mtl.And)
	if !ok {
		return false
	}
	if _, lConst := simpConst(n.L); lConst {
		return false
	}
	if _, rConst := simpConst(n.R); rConst {
		return false
	}
	*w.out = append(*w.out, Diagnostic{
		Rule:       "contradictory-conjuncts",
		Severity:   Warning,
		Constraint: w.name,
		Node:       g.String(),
		Pos:        mtl.NodePos(g),
		Message:    "conjuncts are contradictory; the conjunction can never hold",
		Suggestion: "drop one side or fix the comparison",
	})
	return true
}

// deadBranch reports disjuncts that can never hold; live branches are
// walked normally.
func (w *vacuityWalker) deadBranch(n *mtl.Or) {
	for _, side := range []mtl.Formula{n.L, n.R} {
		if _, isLiteral := side.(mtl.Truth); isLiteral {
			continue
		}
		if c, ok := simpConst(side); ok && !c {
			*w.out = append(*w.out, Diagnostic{
				Rule:       "dead-branch",
				Severity:   Warning,
				Constraint: w.name,
				Node:       side.String(),
				Pos:        mtl.NodePos(side),
				Message:    "disjunct can never hold; the branch is dead",
				Suggestion: "delete the branch or fix its condition",
			})
			w.contradictoryConjuncts(side)
			continue
		}
		w.walk(side, false)
	}
}

// quantifier checks the variable list (unused, shadowing) and walks the
// body with the variables in scope.
func (w *vacuityWalker) quantifier(g mtl.Formula, vars []string, body mtl.Formula) {
	free := make(map[string]bool)
	for _, v := range mtl.FreeVars(body) {
		free[v] = true
	}
	var restore []string
	for _, v := range vars {
		if !free[v] {
			*w.out = append(*w.out, Diagnostic{
				Rule:       "unused-variable",
				Severity:   Warning,
				Constraint: w.name,
				Node:       g.String(),
				Pos:        mtl.NodePos(g),
				Message:    fmt.Sprintf("quantified variable %q does not occur in the body", v),
				Suggestion: fmt.Sprintf("drop %q from the quantifier", v),
			})
		}
		if w.bound[v] {
			*w.out = append(*w.out, Diagnostic{
				Rule:       "shadowed-variable",
				Severity:   Warning,
				Constraint: w.name,
				Node:       g.String(),
				Pos:        mtl.NodePos(g),
				Message:    fmt.Sprintf("variable %q shadows an outer quantifier; the inner binding wins and the outer value is unreachable here", v),
				Suggestion: fmt.Sprintf("rename the inner %q", v),
			})
		} else {
			w.bound[v] = true
			restore = append(restore, v)
		}
	}
	w.walk(body, false)
	for _, v := range restore {
		delete(w.bound, v)
	}
}
