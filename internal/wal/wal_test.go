package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rtic/internal/obs"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// asCorrupt reports whether err wraps a *CorruptError.
func asCorrupt(err error, ce **CorruptError) bool { return errors.As(err, ce) }

func tmpLog(t *testing.T, opts ...Option) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func payloads(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	if _, err := l.Replay(func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, _ := tmpLog(t)
	want := [][]byte{[]byte("one"), []byte("two"), []byte("three, a longer record")}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	got := payloads(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if l.Records() != 3 {
		t.Errorf("Records() = %d, want 3", l.Records())
	}
}

func TestReopenContinues(t *testing.T) {
	l, path := tmpLog(t)
	if err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 1 {
		t.Fatalf("reopened Records() = %d, want 1", l2.Records())
	}
	if err := l2.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	got := payloads(t, l2)
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("replay after reopen = %q", got)
	}
}

func TestResetTruncatesToHeader(t *testing.T) {
	l, path := tmpLog(t)
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte{byte(i), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != headerSize || l.Records() != 0 {
		t.Fatalf("after reset: size=%d records=%d", l.Size(), l.Records())
	}
	if got := payloads(t, l); len(got) != 0 {
		t.Fatalf("replay after reset returned %d records", len(got))
	}
	// The reset survives a reopen, and the log stays appendable.
	if err := l.Append([]byte("post-reset")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := payloads(t, l2); len(got) != 1 || string(got[0]) != "post-reset" {
		t.Fatalf("replay after reset+reopen = %q", got)
	}
}

func TestAppendRejectsEmptyAndOversized(t *testing.T) {
	l, _ := tmpLog(t)
	if err := l.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
	if err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Error("oversized record accepted")
	}
	if l.Records() != 0 {
		t.Errorf("rejected appends counted: Records() = %d", l.Records())
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.wal")
	if err := os.WriteFile(path, []byte("GARBAGE!and then some"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path)
	var ce *CorruptError
	if !asCorrupt(err, &ce) {
		t.Fatalf("Open on bad magic: %v, want *CorruptError", err)
	}
}

func TestSyncPolicyAlwaysFsyncsPerAppend(t *testing.T) {
	m := obs.NewMetrics(obs.NewRegistry())
	l, _ := tmpLog(t, WithSyncPolicy(SyncAlways), WithMetrics(m))
	before := m.WALFsyncs.Value()
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.WALFsyncs.Value() - before; got != 3 {
		t.Errorf("fsyncs per 3 appends = %d, want 3", got)
	}
	if m.WALAppends.Value() != 3 {
		t.Errorf("WALAppends = %d, want 3", m.WALAppends.Value())
	}
	if m.WALSizeBytes.Value() != l.Size() {
		t.Errorf("WALSizeBytes gauge %d != Size() %d", m.WALSizeBytes.Value(), l.Size())
	}
}

func TestSyncPolicyBatchFlushesInBackground(t *testing.T) {
	m := obs.NewMetrics(obs.NewRegistry())
	l, _ := tmpLog(t, WithSyncPolicy(SyncBatch), WithBatchInterval(5*time.Millisecond), WithMetrics(m))
	base := m.WALFsyncs.Value()
	if err := l.Append([]byte("batched")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.WALFsyncs.Value() == base {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "batch": SyncBatch, "batched": SyncBatch} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	if SyncAlways.String() != "always" || SyncBatch.String() != "batch" {
		t.Error("String() does not round-trip the flag spellings")
	}
}

func TestAppendTxRoundTrip(t *testing.T) {
	l, _ := tmpLog(t)
	tx := storage.NewTransaction().
		Insert("hire", tuple.Ints(7)).
		Delete("fire", tuple.Ints(7))
	if err := l.AppendTx(42, tx); err != nil {
		t.Fatal(err)
	}
	got := payloads(t, l)
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
	gt, gtx, err := DecodeTx(got[0])
	if err != nil {
		t.Fatal(err)
	}
	if gt != 42 || gtx.String() != tx.String() {
		t.Errorf("decoded t=%d tx=%q, want t=42 tx=%q", gt, gtx.String(), tx.String())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("content = %q", b)
	}
	// A failing writer leaves the previous version intact and no temp
	// files behind.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("half-written v2"))
		return fmt.Errorf("injected failure")
	}); err == nil {
		t.Fatal("failing write func did not propagate its error")
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("previous version destroyed: %q", b)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestTruncateKeepsRecordPrefix(t *testing.T) {
	l, path := tmpLog(t)
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 3 {
		t.Fatalf("Records() = %d, want 3", l.Records())
	}
	got := payloads(t, l)
	if len(got) != 3 || string(got[2]) != "record-2" {
		t.Fatalf("replay after truncate = %q", got)
	}
	// Appends extend the cut prefix, and the file reopens cleanly.
	if err := l.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := payloads(t, l2); len(got) != 4 || string(got[3]) != "after" {
		t.Fatalf("replay after reopen = %q", got)
	}
	// Keeping at or above the record count is a no-op; negatives error.
	if err := l2.Truncate(10); err != nil || l2.Records() != 4 {
		t.Fatalf("Truncate(10) = %v, records %d", err, l2.Records())
	}
	if err := l2.Truncate(-1); err == nil {
		t.Fatal("Truncate(-1) succeeded")
	}
	if err := l2.Truncate(0); err != nil || l2.Records() != 0 {
		t.Fatalf("Truncate(0) = %v, records %d", err, l2.Records())
	}
	if got := payloads(t, l2); len(got) != 0 {
		t.Fatalf("replay after Truncate(0) = %q", got)
	}
}
