package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/vfs"
)

// buildLogFile writes n transaction records through a real log and
// returns the raw file bytes plus the framed payloads in order.
func buildLogFile(t *testing.T, n int) (raw []byte, want [][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fault.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tx := storage.NewTransaction().
			Insert("hire", tuple.Ints(int64(i))).
			Delete("fire", tuple.Ints(int64(i)))
		p := EncodeTx(uint64(i*10), tx)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw, want
}

// replayFile opens bytes as a WAL and replays it, returning the
// recovered payloads.
func replayFile(t *testing.T, raw []byte) ([][]byte, *Log, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "case.wal")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path)
	if err != nil {
		return nil, nil, err
	}
	var got [][]byte
	if _, err := l.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		l.Close()
		return nil, nil, err
	}
	return got, l, nil
}

// TestTruncateEveryOffset is the central torn-write theorem: cutting
// the file at ANY byte offset must recover the longest record prefix
// that fully fits, without error — the torn final record (and nothing
// else) disappears.
func TestTruncateEveryOffset(t *testing.T) {
	raw, want := buildLogFile(t, 4)
	// Frame boundaries: record i is complete once the file holds
	// headerSize plus the frames of records 0..i.
	bounds := []int{headerSize}
	off := headerSize
	for _, p := range want {
		off += frameHeaderSize + len(p)
		bounds = append(bounds, off)
	}
	if off != len(raw) {
		t.Fatalf("frame arithmetic: computed end %d, file is %d bytes", off, len(raw))
	}
	for cut := 0; cut <= len(raw); cut++ {
		got, l, err := replayFile(t, raw[:cut])
		if cut < headerSize {
			// Not even a magic header: reported as corrupt, never a crash.
			if err == nil {
				l.Close()
				if cut != 0 {
					t.Errorf("cut=%d: sub-header file accepted", cut)
				}
				continue
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		wantN := 0
		for _, b := range bounds[1:] {
			if cut >= b {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Errorf("cut=%d: recovered %d records, want %d", cut, len(got), wantN)
		}
		for i := 0; i < len(got) && i < wantN; i++ {
			if !bytes.Equal(got[i], want[i]) {
				t.Errorf("cut=%d: record %d mutated", cut, i)
			}
		}
		// Appending after recovery extends the valid prefix.
		if err := l.Append([]byte("post-recovery")); err != nil {
			t.Errorf("cut=%d: append after recovery: %v", cut, err)
		}
		l.Close()
	}
}

// TestBitFlipNeverYieldsWrongData flips every byte of the file (one at
// a time) and asserts the log never serves mutated records: each flip
// either fails loudly or recovers a strict prefix of the originals.
func TestBitFlipNeverYieldsWrongData(t *testing.T) {
	raw, want := buildLogFile(t, 3)
	detected, prefixed := 0, 0
	for i := 0; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		got, l, err := replayFile(t, mut)
		if err != nil {
			detected++
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Errorf("flip@%d: error %v is not a *CorruptError", i, err)
			}
			continue
		}
		// Accepted: every recovered record must match the original
		// prefix (a flip in a length field can make the tail look torn,
		// which silently drops records but never corrupts them).
		for j := range got {
			if j >= len(want) || !bytes.Equal(got[j], want[j]) {
				t.Fatalf("flip@%d: record %d served with mutated content", i, j)
			}
		}
		prefixed++
		l.Close()
	}
	if detected == 0 {
		t.Error("no bit flip was ever detected as corruption")
	}
	t.Logf("bit flips over %d bytes: %d detected as corrupt, %d degraded to a valid prefix", len(raw), detected, prefixed)
}

// faultFile wraps an in-memory file and fails or shortens writes on
// command.
type faultFile struct {
	buf       []byte
	failAfter int   // bytes accepted before writes start failing (-1 = never)
	shortBy   int   // bytes silently dropped from each write (short write)
	syncErr   error // injected fsync failure
	truncErr  error // injected truncate failure
	syncs     int
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.shortBy > 0 && len(p) > f.shortBy {
		n := len(p) - f.shortBy
		f.buf = append(f.buf, p[:n]...)
		return n, nil
	}
	if f.failAfter >= 0 && len(f.buf)+len(p) > f.failAfter {
		room := f.failAfter - len(f.buf)
		if room < 0 {
			room = 0
		}
		f.buf = append(f.buf, p[:room]...)
		return room, fmt.Errorf("injected write failure")
	}
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.buf)) {
		return 0, fmt.Errorf("read past end")
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, fmt.Errorf("short read")
	}
	return n, nil
}

func (f *faultFile) Sync() error {
	if f.syncErr != nil {
		return f.syncErr
	}
	f.syncs++
	return nil
}

func (f *faultFile) Truncate(size int64) error {
	if f.truncErr != nil {
		return f.truncErr
	}
	if size < int64(len(f.buf)) {
		f.buf = f.buf[:size]
	}
	return nil
}

func (f *faultFile) Close() error { return nil }

func newFaultLog(t *testing.T, f *faultFile) *Log {
	t.Helper()
	l, err := newLog(f, "fault.wal", int64(len(f.buf)), logOptions{policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFailingWriterRollsBack(t *testing.T) {
	f := &faultFile{failAfter: headerSize + 20}
	l := newFaultLog(t, f)
	if err := l.Append(bytes.Repeat([]byte("a"), 8)); err != nil { // 16-byte frame, fits
		t.Fatal(err)
	}
	if err := l.Append(bytes.Repeat([]byte("b"), 8)); err == nil { // would cross failAfter
		t.Fatal("append past the failure point succeeded")
	}
	// The partial frame was truncated away: the on-disk bytes replay to
	// exactly the first record.
	got, _, err := replayFile(t, f.buf)
	if err != nil {
		t.Fatalf("replay after failed append: %v", err)
	}
	if len(got) != 1 || string(got[0]) != "aaaaaaaa" {
		t.Fatalf("recovered %q, want the single pre-failure record", got)
	}
	if l.Size() != int64(len(f.buf)) {
		t.Errorf("Size()=%d, file has %d bytes", l.Size(), len(f.buf))
	}
}

func TestShortWriterRollsBack(t *testing.T) {
	f := &faultFile{failAfter: -1}
	l := newFaultLog(t, f)
	if err := l.Append([]byte("complete")); err != nil {
		t.Fatal(err)
	}
	f.shortBy = 3
	if err := l.Append([]byte("shortened")); err == nil {
		t.Fatal("short write not surfaced")
	}
	f.shortBy = 0
	got, _, err := replayFile(t, f.buf)
	if err != nil || len(got) != 1 || string(got[0]) != "complete" {
		t.Fatalf("after short write: records=%q err=%v", got, err)
	}
	// The log stays usable once writes heal.
	if err := l.Append([]byte("healed")); err != nil {
		t.Fatalf("append after healed writer: %v", err)
	}
	got, _, err = replayFile(t, f.buf)
	if err != nil || len(got) != 2 || string(got[1]) != "healed" {
		t.Fatalf("after heal: records=%q err=%v", got, err)
	}
}

func TestBrokenLatchAfterFailedRollback(t *testing.T) {
	f := &faultFile{failAfter: headerSize + 4}
	l := newFaultLog(t, f)
	f.truncErr = fmt.Errorf("injected truncate failure")
	if err := l.Append([]byte("doomed record")); err == nil {
		t.Fatal("append succeeded past failure point")
	}
	// Rollback failed: the log must refuse everything from now on, even
	// after the underlying writes heal.
	f.failAfter, f.truncErr = -1, nil
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("broken log accepted an append")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("broken log accepted a sync")
	}
	if err := l.Reset(); err == nil {
		t.Fatal("broken log accepted a reset")
	}
}

// Live-fault cases: the same failure classes as above, but injected
// through a vfs.FaultFS under a real log on disk — proving the
// injectable filesystem reproduces every behavior the hand-rolled
// faultFile pinned, plus the cross-restart consequences (what the next
// Open sees).

// TestLiveENOSPCRollsBackAndHeals injects a disk-full error on one
// append's write: the append fails, the partial frame is rolled back,
// the log stays usable once space clears, and a reopen sees exactly
// the successful records.
func TestLiveENOSPCRollsBackAndHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.wal")
	// Ops: open=1, header write=2, header sync=3; append k is write,
	// then sync (SyncAlways). Fail the second append's write (op 6).
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Injection{AtOp: 6, Op: vfs.OpWrite, Kind: vfs.ENOSPC})
	l, err := Open(path, WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("lost")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on a full disk: %v, want ENOSPC", err)
	}
	if l.Err() != nil {
		t.Fatalf("clean rollback latched the log: %v", l.Err())
	}
	if err := l.Append([]byte("healed")); err != nil {
		t.Fatalf("append after space cleared: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := replayFile(t, raw)
	if err != nil || len(got) != 2 || string(got[0]) != "kept" || string(got[1]) != "healed" {
		t.Fatalf("reopen recovered %q, %v", got, err)
	}
}

// TestLiveShortWriteTearTruncatedOnReopen is the satellite case: a
// short write tears a frame mid-append and the crash takes the rollback
// with it, so the torn frame reaches disk — the next wal.Open must
// truncate it away and recover the clean prefix.
func TestLiveShortWriteTearTruncatedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	// Ops: open=1, header write=2, header sync=3, append1 write=4,
	// append1 sync=5. Tear append2's write (op 6) and crash on the
	// rollback truncate (op 7): the partial frame stays on disk.
	ffs := vfs.NewFaultFS(vfs.OS,
		vfs.Injection{AtOp: 6, Op: vfs.OpWrite, Kind: vfs.ShortWrite},
		vfs.Injection{AtOp: 7, Kind: vfs.Crash},
	)
	l, err := Open(path, WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("durable record")); err != nil {
		t.Fatal(err)
	}
	err = l.Append([]byte("torn record, much longer than one byte"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("torn append returned %v, want short write", err)
	}
	if l.Err() == nil {
		t.Fatal("failed rollback did not latch the log")
	}
	// The disk now holds a torn frame after the first record.
	raw, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(raw) <= headerSize+frameHeaderSize+len("durable record") {
		t.Fatalf("no torn bytes on disk (%d bytes); the fault did not tear", len(raw))
	}
	// Restart: a fresh Open over the real filesystem truncates the tear.
	l2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen over a torn tail: %v", err)
	}
	defer l2.Close()
	if off, torn := l2.TornTail(); !torn || off != int64(headerSize+frameHeaderSize+len("durable record")) {
		t.Fatalf("TornTail = (%d, %v), want tear at the second frame", off, torn)
	}
	var got [][]byte
	if _, err := l2.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "durable record" {
		t.Fatalf("recovered %q, want only the durable record", got)
	}
	if err := l2.Append([]byte("after recovery")); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
}

// TestLiveBatchFlusherFailureSurfacesAtPointOfFailure pins the
// satellite fix: an injected fsync error on the background flusher must
// fire the failure handler immediately (not on the next append), and
// the next Append must still surface the latched error.
func TestLiveBatchFlusherFailureSurfacesAtPointOfFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.wal")
	// Ops: open=1, header write=2, header sync=3, append write=4,
	// flusher sync=5 — fail it.
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Injection{AtOp: 5, Op: vfs.OpSync, Kind: vfs.SyncFailure})
	failed := make(chan error, 1)
	l, err := Open(path,
		WithFS(ffs),
		WithSyncPolicy(SyncBatch),
		WithBatchInterval(time.Millisecond),
		WithFailureHandler(func(err error) {
			select {
			case failed <- err:
			default:
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("buffered")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-failed:
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("handler got %v, want the injected EIO", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flusher failure never fired the failure handler")
	}
	if err := l.Append([]byte("refused")); err == nil {
		t.Fatal("append accepted after the flusher latched the log")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after a flusher fsync failure")
	}
}

func TestFsyncFailureLatches(t *testing.T) {
	f := &faultFile{failAfter: -1}
	l := newFaultLog(t, f)
	f.syncErr = fmt.Errorf("injected fsync failure")
	if err := l.Append([]byte("never durable")); err == nil {
		t.Fatal("append with failing fsync reported success")
	}
	f.syncErr = nil
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("log usable after an fsync failure")
	}
}
