// Package wal implements the durability layer of the checker stack: a
// crash-safe write-ahead log of committed transactions and atomic
// checkpoint rotation.
//
// The log is a single append-only file. It starts with an 8-byte magic
// header ("RTICWAL1") followed by length-prefixed records:
//
//	[4 bytes LE payload length][4 bytes LE CRC32C of payload][payload]
//
// A record either made it to disk completely or it did not: replay
// verifies every checksum and treats an incomplete frame at the end of
// the file as a torn final write (the one failure an interrupted append
// can produce), truncating it away on open. A checksum mismatch on a
// *complete* frame, a bad magic header, or an implausible length are
// reported as *CorruptError — they cannot result from a torn append and
// indicate real corruption that an operator must look at.
//
// Two sync policies cover the durability/latency trade-off: SyncAlways
// fsyncs after every append (no committed transaction is ever lost),
// SyncBatch marks the log dirty and fsyncs from a background flusher at
// a configurable interval (bounded loss window, much higher append
// throughput on spinning or network disks).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"rtic/internal/obs"
	"rtic/internal/storage"
	"rtic/internal/vfs"
)

const (
	// headerSize is the length of the magic file header.
	headerSize = 8
	// frameHeaderSize prefixes every record: 4-byte length + 4-byte CRC.
	frameHeaderSize = 8
	// MaxRecordBytes caps one record's payload; a length prefix beyond it
	// is reported as corruption rather than allocated.
	MaxRecordBytes = 16 << 20
)

// magic identifies a WAL file (and its format version).
var magic = [headerSize]byte{'R', 'T', 'I', 'C', 'W', 'A', 'L', '1'}

// castagnoli is the CRC32C polynomial, hardware-accelerated on amd64
// and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an incomplete final frame — recoverable, not corrupt.
var errTorn = errors.New("wal: torn final record")

// CorruptError reports damage that cannot be explained by a torn final
// append: bad magic, an implausible length prefix, or a checksum
// mismatch on a complete frame.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s corrupt at byte %d: %s", e.Path, e.Offset, e.Reason)
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a commit acknowledged to a
	// client is durable.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs from a background flusher on a fixed interval; a
	// crash loses at most one interval's worth of acknowledged commits.
	SyncBatch
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseSyncPolicy reads a -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch", "batched":
		return SyncBatch, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always or batch)", s)
	}
}

// file is the subset of *os.File the log needs; fault-injection tests
// substitute failing and short-writing implementations.
type file interface {
	io.Writer
	io.ReaderAt
	Sync() error
	Truncate(int64) error
	Close() error
}

// Option configures a log at open time.
type Option func(*logOptions)

type logOptions struct {
	policy   SyncPolicy
	interval time.Duration
	metrics  *obs.Metrics
	spans    obs.SpanSink
	fs       vfs.FS
	onFail   func(error)
}

// WithSyncPolicy selects the sync policy (default SyncAlways).
func WithSyncPolicy(p SyncPolicy) Option {
	return func(o *logOptions) { o.policy = p }
}

// WithBatchInterval sets the SyncBatch flush interval (default 100ms).
func WithBatchInterval(d time.Duration) Option {
	return func(o *logOptions) { o.interval = d }
}

// WithMetrics attaches the standard metric set: appends, appended
// bytes, fsyncs, errors, and the log size gauge.
func WithMetrics(m *obs.Metrics) Option {
	return func(o *logOptions) { o.metrics = m }
}

// WithSpans attaches a span sink: every Append emits a wal.append span
// (Ops = framed bytes) with a wal.fsync child under SyncAlways, so the
// durability cost of a commit shows up in the same trace as its
// engine phases.
func WithSpans(s obs.SpanSink) Option {
	return func(o *logOptions) { o.spans = s }
}

// WithFS selects the filesystem the log opens and truncates through
// (default vfs.OS). Fault-injection tests substitute a vfs.FaultFS; the
// per-append hot path is unchanged either way (the open file already
// sits behind an interface).
func WithFS(fsys vfs.FS) Option {
	return func(o *logOptions) { o.fs = fsys }
}

// WithFailureHandler registers a callback fired (outside the log lock)
// the moment the log latches broken — a failed fsync, rollback,
// truncate or reset — so a durability manager learns about a
// background-flusher failure at the point of failure, not on the next
// append. See also SetFailureHandler.
func WithFailureHandler(h func(error)) Option {
	return func(o *logOptions) { o.onFail = h }
}

// Log is an append-only, checksummed record log. All methods are safe
// for concurrent use.
type Log struct {
	policy  SyncPolicy
	metrics *obs.Metrics
	spans   obs.SpanSink
	fs      vfs.FS

	mu      sync.Mutex
	path    string
	f       file
	size    int64 // bytes of valid header + records on disk
	records int   // valid records on disk
	dirty   bool  // bytes appended since the last fsync
	broken  error // sticky: set when the on-disk state is unknown

	onFail      func(error) // fired (outside mu) when broken latches
	justLatched bool        // broken was set and the handler not yet fired

	torn       bool  // a torn final record was truncated on open
	tornOffset int64 // where the torn record started

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open opens (or creates) the log at path, validates the header, scans
// the valid record prefix, and truncates a torn final record so that
// subsequent appends extend a clean log. Corruption that a torn append
// cannot explain is returned as *CorruptError.
func Open(path string, opts ...Option) (*Log, error) {
	var o logOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.fs == nil {
		o.fs = vfs.OS
	}
	f, err := o.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close() //rtic:errok open failed before any write; the stat error is the one to surface
		return nil, err
	}
	l, err := newLog(f, path, st.Size(), o)
	if err != nil {
		f.Close() //rtic:errok recovery scan failed; its error supersedes closing the unused handle
		return nil, err
	}
	return l, nil
}

// newLog validates and recovers an opened file; tests drive it with
// fault-injecting file implementations.
func newLog(f file, path string, size int64, o logOptions) (*Log, error) {
	if o.interval <= 0 {
		o.interval = 100 * time.Millisecond
	}
	if o.fs == nil {
		o.fs = vfs.OS
	}
	l := &Log{path: path, policy: o.policy, metrics: o.metrics, spans: o.spans, fs: o.fs, onFail: o.onFail, f: f, size: size}
	if size == 0 {
		if _, err := f.Write(magic[:]); err != nil {
			return nil, fmt.Errorf("wal: writing header: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("wal: syncing header: %w", err)
		}
		l.size = headerSize
		l.countFsync()
	} else {
		if size < headerSize {
			return nil, &CorruptError{Path: path, Offset: 0, Reason: "file shorter than the magic header"}
		}
		var hdr [headerSize]byte
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			return nil, err
		}
		if hdr != magic {
			return nil, &CorruptError{Path: path, Offset: 0, Reason: fmt.Sprintf("bad magic %q", hdr[:])}
		}
		off := int64(headerSize)
		for {
			_, next, err := l.frameAt(off, size)
			if err == io.EOF {
				break
			}
			if errors.Is(err, errTorn) {
				// The one failure an interrupted append produces: truncate
				// it so the next append extends a clean prefix.
				l.torn, l.tornOffset = true, off
				if terr := f.Truncate(off); terr != nil {
					return nil, fmt.Errorf("wal: truncating torn record at byte %d: %w", off, terr)
				}
				if serr := f.Sync(); serr != nil {
					return nil, fmt.Errorf("wal: syncing after truncation: %w", serr)
				}
				l.countFsync()
				size = off
				break
			}
			if err != nil {
				return nil, err
			}
			l.records++
			off = next
		}
		l.size = size
	}
	if m := l.metrics; m != nil {
		m.WALSizeBytes.Set(l.size)
	}
	if l.policy == SyncBatch {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop(o.interval)
	}
	return l, nil
}

// frameAt reads the record frame starting at off within the first size
// bytes. It returns io.EOF at a clean end, errTorn when the remaining
// bytes cannot hold the frame, and *CorruptError on checksum or length
// damage.
func (l *Log) frameAt(off, size int64) (payload []byte, next int64, err error) {
	rem := size - off
	if rem == 0 {
		return nil, off, io.EOF
	}
	if rem < frameHeaderSize {
		return nil, off, errTorn
	}
	var hdr [frameHeaderSize]byte
	if _, err := l.f.ReadAt(hdr[:], off); err != nil {
		return nil, off, fmt.Errorf("wal: reading frame header at byte %d: %w", off, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > MaxRecordBytes {
		// Appends never write such a length, and truncation cannot
		// manufacture one: the length bytes are either all present (and
		// then correct) or the frame is already torn.
		return nil, off, &CorruptError{Path: l.path, Offset: off,
			Reason: fmt.Sprintf("implausible record length %d", n)}
	}
	if rem-frameHeaderSize < int64(n) {
		return nil, off, errTorn
	}
	payload = make([]byte, n)
	if _, err := l.f.ReadAt(payload, off+frameHeaderSize); err != nil {
		return nil, off, fmt.Errorf("wal: reading record at byte %d: %w", off, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, off, &CorruptError{Path: l.path, Offset: off,
			Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", sum, got)}
	}
	return payload, off + frameHeaderSize + int64(n), nil
}

// Append frames payload and writes it. Under SyncAlways the record is
// on stable storage when Append returns; under SyncBatch it is durable
// after the next background flush. A failed or short write is rolled
// back by truncating the partial frame; if even that fails the log
// latches broken and refuses further appends.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("wal: empty record")
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte cap", len(payload), MaxRecordBytes)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)

	var sp *obs.Span
	if l.spans != nil {
		sp = &obs.Span{Name: obs.SpanWALAppend, Start: time.Now(), Ops: len(frame)}
	}
	err := l.appendFrame(frame, sp)
	if sp != nil {
		sp.End()
		sp.Err = err
		l.spans.ObserveSpan(sp)
	}
	return err
}

// latchLocked marks the log permanently broken (caller holds mu): the
// on-disk state can no longer be trusted. The registered failure
// handler fires once per latch, outside the lock, via
// takeLatchNotifyLocked — at the point of failure, even when the
// failing operation ran on the background flusher.
func (l *Log) latchLocked(err error) {
	if l.broken == nil {
		l.broken = err
		l.justLatched = true
	}
}

// takeLatchNotifyLocked returns the pending failure notification as a
// closure to invoke after releasing mu (a no-op when nothing latched
// or no handler is registered).
func (l *Log) takeLatchNotifyLocked() func() {
	if !l.justLatched {
		return func() {}
	}
	l.justLatched = false
	h, err := l.onFail, l.broken
	if h == nil {
		return func() {}
	}
	return func() { h(err) }
}

// appendFrame writes one framed record under the log lock; sp (may be
// nil) collects the fsync child under SyncAlways.
func (l *Log) appendFrame(frame []byte, sp *obs.Span) error {
	l.mu.Lock()
	err := l.appendFrameLocked(frame, sp)
	fire := l.takeLatchNotifyLocked()
	l.mu.Unlock()
	fire()
	return err
}

func (l *Log) appendFrameLocked(frame []byte, sp *obs.Span) error {
	if l.broken != nil {
		l.countError()
		return fmt.Errorf("wal: log unusable after earlier write failure: %w", l.broken)
	}
	n, err := l.f.Write(frame)
	if err != nil || n != len(frame) {
		if err == nil {
			err = io.ErrShortWrite
		}
		// Roll the partial frame back so the on-disk prefix stays a valid
		// log; if the rollback fails we no longer know what is on disk.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.latchLocked(fmt.Errorf("append failed (%v) and rollback failed (%v)", err, terr))
		}
		l.countError()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.records++
	l.dirty = true
	if m := l.metrics; m != nil {
		m.WALAppends.Inc()
		m.WALAppendedBytes.Add(uint64(len(frame)))
		m.WALSizeBytes.Set(l.size)
	}
	if l.policy == SyncAlways {
		if sp != nil {
			fs := sp.Child(obs.SpanWALFsync, "")
			err := l.syncLocked()
			fs.End()
			fs.Err = err
			return err
		}
		return l.syncLocked()
	}
	return nil
}

// AppendTx journals one committed transaction.
func (l *Log) AppendTx(t uint64, tx *storage.Transaction) error {
	return l.Append(EncodeTx(t, tx))
}

// Sync forces buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	err := l.syncLocked()
	fire := l.takeLatchNotifyLocked()
	l.mu.Unlock()
	fire()
	return err
}

func (l *Log) syncLocked() error {
	if l.broken != nil {
		return fmt.Errorf("wal: log unusable after earlier write failure: %w", l.broken)
	}
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		// After a failed fsync the kernel may have dropped the dirty
		// pages; nothing about the tail can be trusted any more.
		l.latchLocked(err)
		l.countError()
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.countFsync()
	return nil
}

// Reset truncates the log back to its header — called after a
// checkpoint has made every journaled record redundant.
func (l *Log) Reset() error {
	l.mu.Lock()
	err := l.resetLocked()
	fire := l.takeLatchNotifyLocked()
	l.mu.Unlock()
	fire()
	return err
}

func (l *Log) resetLocked() error {
	if l.broken != nil {
		return fmt.Errorf("wal: log unusable after earlier write failure: %w", l.broken)
	}
	if err := l.f.Truncate(headerSize); err != nil {
		l.latchLocked(err)
		l.countError()
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.latchLocked(err)
		l.countError()
		return fmt.Errorf("wal: reset sync: %w", err)
	}
	l.size = headerSize
	l.records = 0
	l.dirty = false
	l.countFsync()
	if m := l.metrics; m != nil {
		m.WALSizeBytes.Set(l.size)
	}
	return nil
}

// Truncate discards every record after the first keep, leaving the
// header and that record prefix intact. Sharded recovery uses it to cut
// per-shard journals back to the shortest common record count when a
// crash left some journals one commit ahead of the others; keep at or
// above the current record count is a no-op.
func (l *Log) Truncate(keep int) error {
	if keep < 0 {
		return fmt.Errorf("wal: truncate to negative record count %d", keep)
	}
	l.mu.Lock()
	err := l.truncateLocked(keep)
	fire := l.takeLatchNotifyLocked()
	l.mu.Unlock()
	fire()
	return err
}

func (l *Log) truncateLocked(keep int) error {
	if l.broken != nil {
		return fmt.Errorf("wal: log unusable after earlier write failure: %w", l.broken)
	}
	if keep >= l.records {
		return nil
	}
	off := int64(headerSize)
	for i := 0; i < keep; i++ {
		_, next, err := l.frameAt(off, l.size)
		if err != nil {
			return fmt.Errorf("wal: truncate scan at record %d: %w", i, err)
		}
		off = next
	}
	if err := l.f.Truncate(off); err != nil {
		l.latchLocked(err)
		l.countError()
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.latchLocked(err)
		l.countError()
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	l.size = off
	l.records = keep
	l.dirty = false
	l.countFsync()
	if m := l.metrics; m != nil {
		m.WALSizeBytes.Set(l.size)
	}
	return nil
}

// Replay calls fn for every valid record payload in order and returns
// how many were delivered. It stops with the callback's error, or with
// *CorruptError on damage; a torn final record never reaches fn (Open
// already truncated it).
func (l *Log) Replay(fn func(payload []byte) error) (int, error) {
	l.mu.Lock()
	size := l.size
	l.mu.Unlock()
	off := int64(headerSize)
	n := 0
	for {
		payload, next, err := l.frameAt(off, size)
		if err == io.EOF || errors.Is(err, errTorn) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := fn(payload); err != nil {
			return n, err
		}
		n++
		off = next
	}
}

// flushLoop is the SyncBatch background flusher.
func (l *Log) flushLoop(interval time.Duration) {
	defer close(l.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			// A flush failure latches the log broken inside syncLocked
			// and fires the failure handler right here, at the point of
			// failure — not on the next append. The error itself is
			// re-reported by every subsequent operation.
			_ = l.Sync() //rtic:errok the failure handler fires inside Sync at the point of failure; every later append/sync re-reports the latched error
		}
	}
}

// Close flushes and closes the log file. A failed final sync latches
// the log broken (and fires the failure handler) in addition to being
// returned: the buffered tail never reached stable storage.
func (l *Log) Close() error {
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
		l.flushStop = nil
	}
	l.mu.Lock()
	err := error(nil)
	if l.broken == nil && l.dirty {
		if serr := l.f.Sync(); serr == nil {
			l.dirty = false
			l.countFsync()
		} else {
			l.latchLocked(serr)
			l.countError()
			err = fmt.Errorf("wal: close sync: %w", serr)
		}
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	fire := l.takeLatchNotifyLocked()
	l.mu.Unlock()
	fire()
	return err
}

// Err reports the sticky broken-latch error, nil while the log is
// usable.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// SetFailureHandler registers (or, with nil, clears) the callback fired
// when the log latches broken; see WithFailureHandler. A latch that
// already happened is not re-fired.
func (l *Log) SetFailureHandler(h func(error)) {
	l.mu.Lock()
	l.onFail = h
	l.mu.Unlock()
}

// Rename atomically moves the log file to newPath through the log's
// filesystem; subsequent Path calls report the new location. The open
// file handle survives the rename, so appends continue uninterrupted.
// The durability re-arm path uses it to rotate a freshly opened
// segment over a broken one.
func (l *Log) Rename(newPath string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.fs.Rename(l.path, newPath); err != nil {
		return fmt.Errorf("wal: renaming %s to %s: %w", l.path, newPath, err)
	}
	l.path = newPath
	return nil
}

// Size reports the valid on-disk bytes (header included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records reports the number of valid records in the log.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// TornTail reports whether Open truncated a torn final record, and at
// which byte offset it started.
func (l *Log) TornTail() (int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tornOffset, l.torn
}

// Path returns the log's file path (tracking renames).
func (l *Log) Path() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.path
}

func (l *Log) countFsync() {
	if m := l.metrics; m != nil {
		m.WALFsyncs.Inc()
	}
}

func (l *Log) countError() {
	if m := l.metrics; m != nil {
		m.WALErrors.Inc()
	}
}
