package wal

import (
	"testing"

	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

func TestEncodeDecodeTx(t *testing.T) {
	cases := []struct {
		name string
		t    uint64
		tx   *storage.Transaction
	}{
		{"empty", 0, storage.NewTransaction()},
		{"single insert", 100, storage.NewTransaction().Insert("hire", tuple.Ints(7))},
		{"mixed ops", 1 << 40, storage.NewTransaction().
			Delete("fire", tuple.Ints(7)).
			Insert("hire", tuple.Ints(7)).
			Insert("badge", tuple.Of(value.Str("ann"), value.Str("red")))},
		{"nullary relation", 3, storage.NewTransaction().Insert("tick", tuple.Of())},
		{"awkward strings", 5, storage.NewTransaction().
			Insert("s", tuple.Of(value.Str(""), value.Str("with 'quotes' and\nnewlines\x00nul")))},
		{"negative ints", 7, storage.NewTransaction().Insert("n", tuple.Ints(-42))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := EncodeTx(tc.t, tc.tx)
			gt, gtx, err := DecodeTx(data)
			if err != nil {
				t.Fatal(err)
			}
			if gt != tc.t {
				t.Errorf("time = %d, want %d", gt, tc.t)
			}
			if len(gtx.Ops()) != len(tc.tx.Ops()) {
				t.Fatalf("op count = %d, want %d", len(gtx.Ops()), len(tc.tx.Ops()))
			}
			for i, op := range gtx.Ops() {
				want := tc.tx.Ops()[i]
				if op.Rel != want.Rel || op.Insert != want.Insert || !op.Tuple.Equal(want.Tuple) {
					t.Errorf("op %d = %+v, want %+v", i, op, want)
				}
			}
		})
	}
}

func TestDecodeTxRejectsGarbage(t *testing.T) {
	good := EncodeTx(100, storage.NewTransaction().Insert("hire", tuple.Ints(7)))
	cases := map[string][]byte{
		"empty":             {},
		"time only":         good[:1],
		"mid-op truncation": good[:len(good)-3],
		"trailing bytes":    append(append([]byte(nil), good...), 0xff),
		"bad insert flag":   {0, 1, 7, 0, 0},
		"huge op count":     {0, 0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, err := DecodeTx(data); err == nil {
				t.Errorf("garbage %x decoded without error", data)
			}
		})
	}
}

// FuzzDecodeTx asserts DecodeTx never panics or over-allocates, and
// that whatever it accepts re-encodes to the same bytes (the encoding
// is canonical).
func FuzzDecodeTx(f *testing.F) {
	f.Add(EncodeTx(100, storage.NewTransaction().Insert("hire", tuple.Ints(7))))
	f.Add(EncodeTx(0, storage.NewTransaction()))
	f.Add([]byte{0, 1, 1, 1, 'p', 1, 9, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, tx, err := DecodeTx(data)
		if err != nil {
			return
		}
		if got := EncodeTx(ts, tx); string(got) != string(data) {
			t.Fatalf("accepted %x but re-encodes to %x", data, got)
		}
	})
}
