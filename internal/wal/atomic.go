package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file so that a crash at any point leaves
// either the previous contents or the new contents at path, never a
// torn mixture: write writes into a same-directory *.tmp file, the tmp
// file is fsynced and closed, renamed over path, and the directory
// entry is fsynced. The tmp file is removed on any failure.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: creating temp file for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return fmt.Errorf("wal: writing %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("wal: flushing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("wal: closing %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: renaming %s into place: %w", path, err)
	}
	// Make the rename itself durable. Directory fsync is best effort:
	// some filesystems refuse it, and the rename is already atomic.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
