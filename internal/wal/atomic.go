package wal

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"

	"rtic/internal/vfs"
)

// WriteFileAtomic writes a file on the real filesystem so that a crash
// at any point leaves either the previous contents or the new contents
// at path, never a torn mixture. See WriteFileAtomicFS.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	return WriteFileAtomicFS(vfs.OS, path, write)
}

// WriteFileAtomicFS is WriteFileAtomic over an injectable filesystem:
// write writes into a same-directory *.tmp file, the tmp file is
// fsynced and closed, renamed over path, and the directory entry is
// fsynced so the rename itself survives a power cut. A directory-fsync
// failure is returned — a lost directory entry is exactly the crash
// window atomic rotation exists to close — except on filesystems that
// refuse directory fsyncs outright (see vfs.SyncDir). The tmp file is
// removed on any failure before the rename.
func WriteFileAtomicFS(fsys vfs.FS, path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := vfs.CreateTemp(fsys, dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("wal: creating temp file for %s: %w", path, err)
	}
	renamed := false
	defer func() {
		if err != nil && !renamed {
			tmp.Close()             //rtic:errok best-effort cleanup; the original write/rename error is what the caller sees
			fsys.Remove(tmp.Name()) //rtic:errok best-effort cleanup of the temp file after a failed atomic write
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return fmt.Errorf("wal: writing %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("wal: flushing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("wal: closing %s: %w", path, err)
	}
	if err = fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: renaming %s into place: %w", path, err)
	}
	renamed = true
	if err = vfs.SyncDir(fsys, dir); err != nil {
		// The new file is in place but its directory entry may not
		// survive a power cut; the caller must not acknowledge the
		// write as durable.
		return fmt.Errorf("wal: syncing directory of %s: %w", path, err)
	}
	return nil
}
