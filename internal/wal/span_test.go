package wal

import (
	"testing"

	"rtic/internal/obs"
)

// TestAppendEmitsSpans checks the WithSpans hook: every Append emits
// one wal.append root sized by the frame, and the always-sync policy
// nests a wal.fsync child inside it.
func TestAppendEmitsSpans(t *testing.T) {
	rec := obs.NewSpanRecorder(16)
	l, _ := tmpLog(t, WithSyncPolicy(SyncAlways), WithSpans(rec))
	payload := []byte("hello wal")
	if err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	roots := rec.Snapshot()
	if len(roots) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(roots))
	}
	for i, sp := range roots {
		if sp.Name != obs.SpanWALAppend {
			t.Fatalf("span %d is %q, want %q", i, sp.Name, obs.SpanWALAppend)
		}
		if sp.Ops != frameHeaderSize+len(payload) {
			t.Errorf("span %d ops = %d, want frame size %d", i, sp.Ops, frameHeaderSize+len(payload))
		}
		if sp.Err != nil {
			t.Errorf("span %d carries error %v", i, sp.Err)
		}
		if sp.Dur <= 0 {
			t.Errorf("span %d has no duration", i)
		}
		if len(sp.Children) != 1 || sp.Children[0].Name != obs.SpanWALFsync {
			t.Fatalf("span %d children = %+v, want one %q", i, sp.Children, obs.SpanWALFsync)
		}
		if fs := sp.Children[0]; fs.Dur <= 0 {
			t.Errorf("fsync span has no duration")
		}
	}
}

// TestAppendBatchPolicyHasNoFsyncSpan: under batched syncing the
// append itself does not fsync, so the span has no fsync child.
func TestAppendBatchPolicyHasNoFsyncSpan(t *testing.T) {
	rec := obs.NewSpanRecorder(16)
	l, _ := tmpLog(t, WithSyncPolicy(SyncBatch), WithSpans(rec))
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	roots := rec.Snapshot()
	if len(roots) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(roots))
	}
	if len(roots[0].Children) != 0 {
		t.Errorf("batch-policy append grew children: %+v", roots[0].Children)
	}
}

// TestAppendWithoutSpansIsSilent: no sink, no spans, no panic.
func TestAppendWithoutSpansIsSilent(t *testing.T) {
	l, _ := tmpLog(t)
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
}
