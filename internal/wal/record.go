package wal

import (
	"encoding/binary"
	"fmt"

	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// Transaction records are the WAL's only payload today. The encoding is
// deliberately hand-rolled rather than gob: every record is
// self-contained (no stream state to lose across a crash), byte-for-byte
// deterministic, and a third the size.
//
//	uvarint time
//	uvarint opCount
//	per op: 1 byte insert flag (1/0)
//	        uvarint relation-name length, name bytes
//	        uvarint arity
//	        per value: uvarint length, value.MarshalBinary bytes

// EncodeTx serializes one committed transaction into a record payload.
func EncodeTx(t uint64, tx *storage.Transaction) []byte {
	ops := tx.Ops()
	buf := make([]byte, 0, 16+32*len(ops))
	buf = binary.AppendUvarint(buf, t)
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		if op.Insert {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(op.Rel)))
		buf = append(buf, op.Rel...)
		buf = binary.AppendUvarint(buf, uint64(len(op.Tuple)))
		for _, v := range op.Tuple {
			vb, err := v.MarshalBinary()
			if err != nil {
				// MarshalBinary on a Value cannot fail; keep the signature
				// honest anyway.
				panic(fmt.Sprintf("wal: encoding value: %v", err))
			}
			buf = binary.AppendUvarint(buf, uint64(len(vb)))
			buf = append(buf, vb...)
		}
	}
	return buf
}

// DecodeTx parses a record payload written by EncodeTx. Every length is
// bounds-checked against the remaining bytes, so damaged input (which
// the CRC should already have rejected) yields an error, never a panic
// or an oversized allocation.
func DecodeTx(data []byte) (uint64, *storage.Transaction, error) {
	c := cursor{data: data}
	t, err := c.uvarint("time")
	if err != nil {
		return 0, nil, err
	}
	nops, err := c.uvarint("op count")
	if err != nil {
		return 0, nil, err
	}
	// Each op occupies at least 3 bytes (flag, name length, arity), so a
	// count beyond the remaining bytes is garbage.
	if nops > uint64(len(data)) {
		return 0, nil, fmt.Errorf("wal: record claims %d ops in %d bytes", nops, len(data))
	}
	tx := storage.NewTransaction()
	for i := uint64(0); i < nops; i++ {
		flag, err := c.byte("insert flag")
		if err != nil {
			return 0, nil, err
		}
		if flag > 1 {
			return 0, nil, fmt.Errorf("wal: op %d: bad insert flag %d", i, flag)
		}
		rel, err := c.lenBytes("relation name")
		if err != nil {
			return 0, nil, err
		}
		arity, err := c.uvarint("arity")
		if err != nil {
			return 0, nil, err
		}
		if arity > uint64(len(data)) {
			return 0, nil, fmt.Errorf("wal: op %d: arity %d exceeds record size", i, arity)
		}
		row := make(tuple.Tuple, arity)
		for j := range row {
			vb, err := c.lenBytes("value")
			if err != nil {
				return 0, nil, err
			}
			if err := row[j].UnmarshalBinary(vb); err != nil {
				return 0, nil, fmt.Errorf("wal: op %d value %d: %w", i, j, err)
			}
		}
		if flag == 1 {
			tx.Insert(string(rel), row)
		} else {
			tx.Delete(string(rel), row)
		}
	}
	if c.off != len(data) {
		return 0, nil, fmt.Errorf("wal: %d trailing bytes after transaction record", len(data)-c.off)
	}
	return t, tx, nil
}

// cursor is a bounds-checked reader over a record payload.
type cursor struct {
	data []byte
	off  int
}

func (c *cursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated %s at byte %d", what, c.off)
	}
	// Reject over-long varint spellings so every value has exactly one
	// encoding — records are comparable byte-for-byte.
	if n > 1 && v>>(7*(n-1)) == 0 {
		return 0, fmt.Errorf("wal: non-minimal varint for %s at byte %d", what, c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) byte(what string) (byte, error) {
	if c.off >= len(c.data) {
		return 0, fmt.Errorf("wal: truncated %s at byte %d", what, c.off)
	}
	b := c.data[c.off]
	c.off++
	return b, nil
}

// lenBytes reads a uvarint length followed by that many bytes.
func (c *cursor) lenBytes(what string) ([]byte, error) {
	n, err := c.uvarint(what + " length")
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c.data)-c.off) {
		return nil, fmt.Errorf("wal: %s of %d bytes exceeds the %d remaining", what, n, len(c.data)-c.off)
	}
	b := c.data[c.off : c.off+int(n)]
	c.off += int(n)
	return b, nil
}
