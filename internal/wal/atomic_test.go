package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"rtic/internal/vfs"
)

// TestWriteFileAtomicReplaces verifies the happy path: the new content
// lands, the old content is gone, and no temp files are left behind.
func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	for i, content := range []string{"first", "second"} {
		err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != content {
			t.Fatalf("write %d: read back %q, %v", i, got, err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries after atomic writes, want 1", len(ents))
	}
}

// TestWriteFileAtomicFailuresKeepOld injects a fault at every op index
// of the atomic-write sequence in turn and verifies: the old file
// survives every failure, and no temp file is left behind before the
// rename happened.
func TestWriteFileAtomicFailuresKeepOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Count the ops of one clean atomic write.
	probe := vfs.NewFaultFS(vfs.OS)
	if err := WriteFileAtomicFS(probe, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	total := probe.OpCount()
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	for at := uint64(1); at <= total; at++ {
		ffs := vfs.NewFaultFS(vfs.OS, vfs.Injection{AtOp: at, Kind: vfs.EIO})
		err := WriteFileAtomicFS(ffs, path, func(w io.Writer) error {
			_, werr := io.WriteString(w, "new")
			return werr
		})
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("at=%d: live path unreadable: %v", at, rerr)
		}
		if err != nil {
			if string(got) != "old" && string(got) != "new" {
				t.Fatalf("at=%d: torn content %q", at, got)
			}
		} else if string(got) != "new" {
			t.Fatalf("at=%d: reported success but content is %q", at, got)
		}
		// Temp files may only survive a failure after the rename (the
		// content is then already safe at path).
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			if e.Name() == "state.snap" {
				continue
			}
			if string(got) != "new" {
				t.Fatalf("at=%d: leftover temp file %s with old content live", at, e.Name())
			}
			os.Remove(filepath.Join(dir, e.Name()))
		}
		// Reset for the next op index.
		if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWriteFileAtomicDirSyncErrorReturned pins the fix for the silent
// `_ = d.Sync()`: an injected I/O error on the directory fsync must
// surface to the caller.
func TestWriteFileAtomicDirSyncErrorReturned(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	// Sequence: temp open(1), write(2), sync(3), close(4), rename(5),
	// dir open(6), dir sync(7), dir close(8).
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Injection{AtOp: 7, Op: vfs.OpSync, Kind: vfs.SyncFailure})
	err := WriteFileAtomicFS(ffs, path, func(w io.Writer) error {
		_, werr := io.WriteString(w, "x")
		return werr
	})
	if err == nil {
		t.Fatal("directory-fsync failure was swallowed")
	}
	if !errors.Is(err, syscall.EIO) || !strings.Contains(err.Error(), "syncing directory") {
		t.Fatalf("error = %v, want a directory-sync EIO", err)
	}
	if len(ffs.Fired()) != 1 {
		t.Fatalf("fired = %+v", ffs.Fired())
	}
	// The rename already happened: the content itself must be in place.
	if got, rerr := os.ReadFile(path); rerr != nil || string(got) != "x" {
		t.Fatalf("content after dir-sync failure: %q, %v", got, rerr)
	}
}

// TestWriteFileAtomicWriteCallbackError verifies a callback error
// removes the temp file and leaves the live path untouched.
func TestWriteFileAtomicWriteCallbackError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("callback failure")
	err := WriteFileAtomicFS(vfs.OS, path, func(w io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped callback failure", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("live path changed to %q", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("temp file leaked: %v", ents)
	}
}
