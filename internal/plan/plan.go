// Package plan compiles kernel formulas — denial kernels and
// auxiliary-node update formulas — into physical query plans, executed
// once per commit instead of being re-interpreted by the tree-walking
// evaluator.
//
// A plan is compiled per disjunct of the kernel. Within a disjunct the
// conjuncts are ordered cheapest-first: equality comparisons that bind a
// variable run as soon as their source is bound, enumerable literals
// (atoms, temporal answers) are picked greedily by how many of their
// variables are already bound, and every conjunct whose variables are
// fully bound — comparisons, negated literals, positive membership
// tests — is pushed to the earliest point it can run, degrading scans
// into O(1) hash probes. Atom scans with a partially bound column set
// register a maintained hash index on the relation (see
// internal/relation) and enumerate only the matching bucket.
//
// Execution uses pooled, reusable binding buffers: a run borrows an
// execState (slot array, probe-key buffer, output row) from a sync.Pool,
// so the steady-state hot path of a commit performs no allocation.
// Rows passed to the emit callback are scratch and must be cloned to be
// retained. Rows may repeat across disjuncts (and within a disjunct
// when existential variables were inlined); callers that need a set
// collect into fol.Bindings, which deduplicates.
//
// Plans whose disjuncts are flat literal conjunctions additionally
// support delta-driven execution: RetestRow re-decides a previously
// satisfying row by probing every literal, and ExecuteSeeded enumerates
// only the rows derivable from a changed source literal (a transaction's
// net inserts/deletes, or an auxiliary node's answer delta), which turns
// the per-commit cost from O(domain) into O(delta).
package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rtic/internal/fol"
	"rtic/internal/mtl"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// KeyTester is the optional oracle extension the plan executor probes
// temporal literals through: key is the tuple.Key encoding of a row
// aligned with the node's sorted free variables. Oracles that do not
// implement it are probed through fol.Oracle.Test with a reusable Env.
type KeyTester interface {
	TestKey(f mtl.Formula, key []byte) (bool, error)
}

// Source identifies a seedable literal occurrence: a base relation or a
// temporal subformula, with the polarity it occurs under. Positive
// sources are seeded from net insertions (answer additions), negated
// sources from net deletions (answer removals).
type Source struct {
	IsRel    bool
	Rel      string
	Temp     mtl.Formula // nil for relation sources
	Positive bool
}

// Key returns a map key identifying the source.
func (s Source) Key() string {
	pol := "+"
	if !s.Positive {
		pol = "-"
	}
	if s.IsRel {
		return pol + "r:" + s.Rel
	}
	return pol + "t:" + s.Temp.String()
}

type stepKind uint8

const (
	kBind stepKind = iota
	kCmpFilter
	kScanRel
	kProbeRel
	kScanTemp
	kProbeTemp
	kSubProbe
)

// argSpec describes one column of a scan/probe literal, or one operand
// of a comparison.
type argSpec struct {
	isConst bool
	val     value.Value
	slot    int
	// check: the slot already holds a value when the column is reached
	// (bound before the step, or a repeated variable bound by an earlier
	// column of the same literal) — compare instead of assign.
	check bool
}

type step struct {
	kind stepKind
	neg  bool
	rel  string
	temp int // index into Plan.temps
	args []argSpec
	// idxCols are the relation column positions (ascending) of a
	// registered maintained index usable by this scan; empty = full scan.
	idxCols []int
	op      mtl.CmpOp
	l, r    argSpec
	// sub is the compiled inner plan of a ¬∃ literal; subIn maps outer
	// slots to the inner plan's input variables (aligned with sub.inputs).
	sub   *Plan
	subIn []int
}

type seedVariant struct {
	source Source
	args   []argSpec // unification of the seed row against the literal
	steps  []step    // remaining conjuncts, ordered
}

type conj struct {
	nslots int
	steps  []step
	out    []int // slot per plan output variable
	inMap  []int // slot per plan input variable
	// probe is the all-literals-as-probes program used by RetestRow;
	// probeOK reports it could be built (flat disjunct).
	probe   []step
	probeOK bool
	seeds   []seedVariant
}

// Plan is a compiled kernel formula.
type Plan struct {
	formula   mtl.Formula
	vars      []string // sorted free variables = output columns
	inputs    []string // pre-bound variables (sorted)
	temps     []mtl.Formula
	disjuncts []*conj
	seedable  bool
	pool      sync.Pool
}

type execState struct {
	slots   []value.Value
	key     []byte
	row     tuple.Tuple
	answers []*fol.Bindings
	env     fol.Env
}

// Vars returns the plan's output variables (sorted). Must not be mutated.
func (p *Plan) Vars() []string { return p.vars }

// Formula returns the compiled formula.
func (p *Plan) Formula() mtl.Formula { return p.formula }

// Seedable reports whether every disjunct is a flat literal conjunction,
// enabling RetestRow and ExecuteSeeded.
func (p *Plan) Seedable() bool { return p.seedable }

// Sources returns the distinct seedable literal occurrences across all
// disjuncts. Empty when the plan is not seedable.
func (p *Plan) Sources() []Source {
	if !p.seedable {
		return nil
	}
	seen := map[string]bool{}
	var out []Source
	for _, cj := range p.disjuncts {
		for _, sv := range cj.seeds {
			if k := sv.source.Key(); !seen[k] {
				seen[k] = true
				out = append(out, sv.source)
			}
		}
	}
	return out
}

// literal is one classified conjunct during compilation.
type literal struct {
	f    mtl.Formula // atom / temporal / cmp / Not(Exists) inner handled via sub
	kind stepKind    // kScanRel, kScanTemp, kCmpFilter (pre-ordering), kSubProbe
	neg  bool
	rel  string
	temp int
	args []mtl.Term // literal columns (atoms: Args; temporal: one Var per sorted free var)
	op   mtl.CmpOp
	l, r mtl.Term
	sub  *Plan
}

type compiler struct {
	st     *storage.State
	plan   *Plan
	slotOf map[string]int
	nslots int
	tempIx map[string]int
}

// Compile builds a plan for the kernel formula f over st's schema.
// inputs lists variables that are bound before execution (they may or
// may not occur free in f). Maintained indexes needed by the plan are
// registered on st's relations. Formulas outside the supported shape —
// disjuncts containing nested disjunctions, or existential variables
// colliding with outer ones — return an error; callers fall back to the
// tree-walking evaluator.
func Compile(f mtl.Formula, st *storage.State, inputs []string) (*Plan, error) {
	p := &Plan{
		formula:  f,
		vars:     mtl.FreeVars(f),
		inputs:   dedupSorted(inputs),
		seedable: true,
	}
	p.pool.New = func() interface{} { return &execState{} }
	c := &compiler{st: st, plan: p, tempIx: map[string]int{}}
	for _, d := range mtl.Disjuncts(f) {
		cj, drop, err := c.compileDisjunct(d)
		if err != nil {
			return nil, err
		}
		if !drop {
			p.disjuncts = append(p.disjuncts, cj)
		}
	}
	if len(p.disjuncts) == 0 {
		p.seedable = false
	}
	return p, nil
}

// compileDisjunct flattens one disjunct into literals, orders them, and
// derives the probe and seed variants. drop reports an identically
// false disjunct.
func (c *compiler) compileDisjunct(d mtl.Formula) (*conj, bool, error) {
	c.slotOf = map[string]int{}
	c.nslots = 0
	var lits []literal
	exVars := map[string]bool{}
	drop, err := c.flatten(d, exVars, &lits)
	if err != nil {
		return nil, false, err
	}
	if drop {
		return nil, true, nil
	}

	// Slot assignment: inputs first, then every variable of the literals.
	for _, v := range c.plan.inputs {
		c.slot(v)
	}
	for _, l := range lits {
		for _, t := range l.args {
			if v, ok := t.(mtl.Var); ok {
				c.slot(v.Name)
			}
		}
		for _, t := range []mtl.Term{l.l, l.r} {
			if v, ok := t.(mtl.Var); ok {
				c.slot(v.Name)
			}
		}
	}

	cj := &conj{nslots: c.nslots}
	cj.out = make([]int, len(c.plan.vars))
	for i, v := range c.plan.vars {
		s, ok := c.slotOf[v]
		if !ok {
			// An output variable no literal binds: the disjunct cannot
			// produce full rows (range restriction should prevent this).
			return nil, false, fmt.Errorf("plan: disjunct %q does not bind output variable %q", d.String(), v)
		}
		cj.out[i] = s
	}
	cj.inMap = make([]int, len(c.plan.inputs))
	for i, v := range c.plan.inputs {
		cj.inMap[i] = c.slotOf[v]
	}

	bound := make([]bool, c.nslots)
	for _, s := range cj.inMap {
		bound[s] = true
	}
	steps, err := c.orderSteps(lits, bound)
	if err != nil {
		return nil, false, err
	}
	cj.steps = steps

	// Existential variables or sub-plans disable the delta-driven
	// variants: a previous row does not bind the inner variables, so the
	// literal set cannot be re-decided by probes alone.
	flat := len(exVars) == 0
	for _, l := range lits {
		if l.kind == kSubProbe {
			flat = false
		}
	}
	if flat {
		allBound := make([]bool, c.nslots)
		for i := range allBound {
			allBound[i] = true
		}
		if probe, err := c.orderSteps(lits, allBound); err == nil {
			cj.probe, cj.probeOK = probe, true
		}
		for li, l := range lits {
			sv, ok := c.seedVariant(lits, li, l)
			if !ok {
				cj.seeds = nil
				flat = false
				break
			}
			if sv.source.IsRel || sv.source.Temp != nil {
				cj.seeds = append(cj.seeds, sv)
			}
		}
	}
	if !flat || !cj.probeOK {
		c.plan.seedable = false
	}
	return cj, false, nil
}

// seedVariant builds the delta-driven variant seeded from literal li:
// the seed row binds the literal's variables, and the remaining
// conjuncts run from there.
func (c *compiler) seedVariant(lits []literal, li int, l literal) (seedVariant, bool) {
	var src Source
	switch l.kind {
	case kScanRel:
		src = Source{IsRel: true, Rel: l.rel, Positive: !l.neg}
	case kScanTemp:
		src = Source{Temp: c.plan.temps[l.temp], Positive: !l.neg}
	default:
		return seedVariant{}, true // comparisons never change truth; no seed needed
	}
	bound := make([]bool, c.nslots)
	for _, v := range c.plan.inputs {
		bound[c.slotOf[v]] = true
	}
	args := make([]argSpec, len(l.args))
	for i, t := range l.args {
		args[i] = c.argOf(t, bound)
		if v, ok := t.(mtl.Var); ok {
			bound[c.slotOf[v.Name]] = true
		}
	}
	rest := append(append([]literal(nil), lits[:li]...), lits[li+1:]...)
	steps, err := c.orderSteps(rest, bound)
	if err != nil {
		return seedVariant{}, false
	}
	return seedVariant{source: src, args: args, steps: steps}, true
}

func (c *compiler) slot(v string) int {
	if s, ok := c.slotOf[v]; ok {
		return s
	}
	s := c.nslots
	c.slotOf[v] = s
	c.nslots++
	return s
}

func (c *compiler) tempIndex(f mtl.Formula) int {
	shape := f.String()
	if i, ok := c.tempIx[shape]; ok {
		return i
	}
	i := len(c.plan.temps)
	c.tempIx[shape] = i
	c.plan.temps = append(c.plan.temps, f)
	return i
}

// flatten classifies the conjuncts of d into literals, inlining
// existential quantifiers (their variables become extra slots). drop
// reports that the disjunct is identically false.
func (c *compiler) flatten(d mtl.Formula, exVars map[string]bool, out *[]literal) (bool, error) {
	for _, cn := range mtl.Conjuncts(d) {
		switch n := cn.(type) {
		case mtl.Truth:
			if !n.Bool {
				return true, nil
			}
		case *mtl.Atom:
			*out = append(*out, literal{f: n, kind: kScanRel, rel: n.Rel, args: n.Args})
		case *mtl.Cmp:
			*out = append(*out, literal{f: n, kind: kCmpFilter, op: n.Op, l: n.L, r: n.R})
		case *mtl.Prev, *mtl.Once, *mtl.Since:
			*out = append(*out, c.tempLiteral(cn, false))
		case *mtl.Not:
			switch in := n.F.(type) {
			case *mtl.Atom:
				*out = append(*out, literal{f: in, kind: kScanRel, neg: true, rel: in.Rel, args: in.Args})
			case *mtl.Cmp:
				*out = append(*out, literal{f: in, kind: kCmpFilter, op: in.Op.Negate(), l: in.L, r: in.R})
			case *mtl.Prev, *mtl.Once, *mtl.Since:
				*out = append(*out, c.tempLiteral(in, true))
			case *mtl.Exists:
				sub, err := Compile(in.F, c.st, mtl.FreeVars(n))
				if err != nil {
					return false, err
				}
				*out = append(*out, literal{f: n, kind: kSubProbe, neg: true, sub: sub})
			case mtl.Truth:
				if in.Bool {
					return true, nil
				}
			default:
				return false, fmt.Errorf("plan: unsupported negated conjunct %q", cn.String())
			}
		case *mtl.Exists:
			for _, v := range n.Vars {
				if exVars[v] {
					return false, fmt.Errorf("plan: existential variable %q reused in %q", v, d.String())
				}
				if containsStr(c.plan.vars, v) || containsStr(c.plan.inputs, v) {
					return false, fmt.Errorf("plan: existential variable %q shadows an outer variable in %q", v, d.String())
				}
				exVars[v] = true
			}
			if drop, err := c.flatten(n.F, exVars, out); drop || err != nil {
				return drop, err
			}
		default:
			// Nested disjunction or any other shape: fall back.
			return false, fmt.Errorf("plan: unsupported conjunct %q", cn.String())
		}
	}
	return false, nil
}

// tempLiteral builds the literal of a temporal subformula: one column
// per sorted free variable, matching the node's answer layout.
func (c *compiler) tempLiteral(f mtl.Formula, neg bool) literal {
	fv := mtl.FreeVars(f)
	args := make([]mtl.Term, len(fv))
	for i, v := range fv {
		args[i] = mtl.Var{Name: v}
	}
	return literal{f: f, kind: kScanTemp, neg: neg, temp: c.tempIndex(f), args: args}
}

func (c *compiler) argOf(t mtl.Term, bound []bool) argSpec {
	switch term := t.(type) {
	case mtl.Const:
		return argSpec{isConst: true, val: term.Val}
	default:
		s := c.slotOf[term.(mtl.Var).Name]
		return argSpec{slot: s, check: bound[s]}
	}
}

// orderSteps is the planner proper: given the literals and the initially
// bound slots it emits the cheapest-first step sequence, pushing every
// fully bound conjunct (comparison, probe) to the earliest point its
// variables are bound. It fails when a conjunct can never run — an
// unbound negated literal or comparison at the end (the static safety
// check rejects these up front; this is the planner's backstop).
func (c *compiler) orderSteps(lits []literal, bound []bool) ([]step, error) {
	placed := make([]bool, len(lits))
	var steps []step
	remaining := len(lits)

	litBound := func(l literal) bool {
		for _, t := range l.args {
			if v, ok := t.(mtl.Var); ok && !bound[c.slotOf[v.Name]] {
				return false
			}
		}
		return true
	}
	termBound := func(t mtl.Term) bool {
		v, ok := t.(mtl.Var)
		return !ok || bound[c.slotOf[v.Name]]
	}
	subBound := func(l literal) bool {
		for _, v := range l.sub.inputs {
			if !bound[c.slotOf[v]] {
				return false
			}
		}
		return true
	}

	// flush places every conjunct that is runnable as a filter/probe or
	// as a variable-binding comparison, repeating to a fixed point.
	flush := func() {
		for again := true; again; {
			again = false
			for i, l := range lits {
				if placed[i] {
					continue
				}
				switch l.kind {
				case kCmpFilter:
					lb, rb := termBound(l.l), termBound(l.r)
					switch {
					case lb && rb:
						steps = append(steps, step{kind: kCmpFilter, op: l.op, l: c.argOf(l.l, bound), r: c.argOf(l.r, bound)})
					case l.op == mtl.OpEq && lb != rb:
						// Bind the unbound side from the bound one.
						src, dst := l.l, l.r
						if rb {
							src, dst = l.r, l.l
						}
						ds := c.slotOf[dst.(mtl.Var).Name]
						steps = append(steps, step{kind: kBind, l: argSpec{slot: ds}, r: c.argOf(src, bound)})
						bound[ds] = true
					default:
						continue
					}
				case kScanRel:
					if !litBound(l) {
						continue
					}
					steps = append(steps, step{kind: kProbeRel, neg: l.neg, rel: l.rel, args: c.argsOf(l.args, bound)})
				case kScanTemp:
					if !litBound(l) {
						continue
					}
					steps = append(steps, step{kind: kProbeTemp, neg: l.neg, temp: l.temp, args: c.argsOf(l.args, bound)})
				case kSubProbe:
					if !subBound(l) {
						continue
					}
					subIn := make([]int, len(l.sub.inputs))
					for j, v := range l.sub.inputs {
						subIn[j] = c.slotOf[v]
					}
					steps = append(steps, step{kind: kSubProbe, neg: l.neg, sub: l.sub, subIn: subIn})
				}
				placed[i] = true
				remaining--
				again = true
			}
		}
	}

	flush()
	for remaining > 0 {
		// Pick the cheapest enumerable literal: fewest unbound variables;
		// prefer atom scans over temporal scans on ties, then source order.
		best, bestScore := -1, 1<<30
		for i, l := range lits {
			if placed[i] || l.neg || (l.kind != kScanRel && l.kind != kScanTemp) {
				continue
			}
			unbound := 0
			seen := map[int]bool{}
			for _, t := range l.args {
				if v, ok := t.(mtl.Var); ok {
					s := c.slotOf[v.Name]
					if !bound[s] && !seen[s] {
						unbound++
						seen[s] = true
					}
				}
			}
			score := unbound * 4
			if l.kind == kScanTemp {
				score++
			}
			if score < bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			var left []string
			for i, l := range lits {
				if !placed[i] {
					left = append(left, l.f.String())
				}
			}
			return nil, fmt.Errorf("plan: conjuncts %v have unbound variables no enumerable literal provides", left)
		}
		l := lits[best]
		st := step{kind: l.kind, rel: l.rel, temp: l.temp}
		st.args = make([]argSpec, len(l.args))
		dup := map[int]bool{}
		var idxCols []int
		for j, t := range l.args {
			switch term := t.(type) {
			case mtl.Const:
				st.args[j] = argSpec{isConst: true, val: term.Val}
				idxCols = append(idxCols, j)
			case mtl.Var:
				s := c.slotOf[term.Name]
				if bound[s] {
					st.args[j] = argSpec{slot: s, check: true}
					idxCols = append(idxCols, j)
				} else if dup[s] {
					st.args[j] = argSpec{slot: s, check: true}
				} else {
					st.args[j] = argSpec{slot: s}
					dup[s] = true
				}
			}
		}
		// A partially bound atom scan gets a maintained hash index on the
		// bound columns; fully unbound scans enumerate the relation.
		if l.kind == kScanRel && len(idxCols) > 0 && len(idxCols) < len(l.args) {
			if rel, err := c.st.Relation(l.rel); err == nil {
				if _, err := rel.EnsureIndex(idxCols); err == nil {
					st.idxCols = idxCols
				}
			}
		}
		steps = append(steps, st)
		placed[best] = true
		remaining--
		for _, t := range l.args {
			if v, ok := t.(mtl.Var); ok {
				bound[c.slotOf[v.Name]] = true
			}
		}
		flush()
	}
	return steps, nil
}

func (c *compiler) argsOf(ts []mtl.Term, bound []bool) []argSpec {
	out := make([]argSpec, len(ts))
	for i, t := range ts {
		out[i] = c.argOf(t, bound)
	}
	return out
}

// getState borrows a pooled execState sized for this plan.
//
//rtic:noalloc
func (p *Plan) getState() *execState {
	es := p.pool.Get().(*execState)
	n := 0
	for _, cj := range p.disjuncts {
		if cj.nslots > n {
			n = cj.nslots
		}
	}
	if cap(es.slots) < n {
		es.slots = make([]value.Value, n) //rtic:allocok pool warm-up; amortized to zero once the execState has been sized
	}
	es.slots = es.slots[:n]
	if cap(es.row) < len(p.vars) {
		es.row = make(tuple.Tuple, 0, len(p.vars)) //rtic:allocok pool warm-up; amortized to zero once the execState has been sized
	}
	if cap(es.answers) < len(p.temps) {
		es.answers = make([]*fol.Bindings, len(p.temps)) //rtic:allocok pool warm-up; amortized to zero once the execState has been sized
	}
	es.answers = es.answers[:len(p.temps)]
	for i := range es.answers {
		es.answers[i] = nil
	}
	return es
}

//rtic:noalloc
func (p *Plan) putState(es *execState) { p.pool.Put(es) }

// Execute runs the plan over st with temporal literals answered by
// oracle, calling emit for every satisfying assignment of the output
// variables (rows are scratch; clone to retain; duplicates possible
// across disjuncts). in binds the plan's input variables; nil is valid
// for plans compiled without inputs.
//
//rtic:noalloc
func (p *Plan) Execute(st *storage.State, oracle fol.Oracle, in fol.Env, emit func(tuple.Tuple) bool) error {
	es := p.getState()
	defer p.putState(es)
	for _, cj := range p.disjuncts {
		for i, v := range p.inputs {
			val, ok := in[v]
			if !ok {
				return fmt.Errorf("plan: input variable %q not bound", v) //rtic:allocok cold path: malformed caller input, never taken by a compiled monitor
			}
			es.slots[cj.inMap[i]] = val
		}
		cont, err := p.run(cj, cj.steps, es, st, oracle, emit)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// Eval runs the plan and collects the satisfying assignments into a
// deduplicated binding set over Vars().
func (p *Plan) Eval(st *storage.State, oracle fol.Oracle, in fol.Env) (*fol.Bindings, error) {
	out := fol.NewBindings(p.vars)
	var addErr error
	err := p.Execute(st, oracle, in, func(row tuple.Tuple) bool {
		if e := out.AddRow(row); e != nil {
			addErr = e
			return false
		}
		return true
	})
	if err == nil {
		err = addErr
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RetestRow re-decides whether a row (aligned with Vars()) satisfies the
// formula, probing every literal without enumeration. Only valid when
// Seedable().
//
//rtic:noalloc
func (p *Plan) RetestRow(st *storage.State, oracle fol.Oracle, row tuple.Tuple) (bool, error) {
	es := p.getState()
	defer p.putState(es)
	for _, cj := range p.disjuncts {
		for i, s := range cj.out {
			es.slots[s] = row[i]
		}
		hit := false
		cont, err := p.run(cj, cj.probe, es, st, oracle, func(tuple.Tuple) bool { //rtic:allocok closure does not escape p.run (stack-allocated; TestPlanAllocationFree covers this path)
			hit = true
			return false
		})
		_ = cont
		if err != nil {
			return false, err
		}
		if hit {
			return true, nil
		}
	}
	return false, nil
}

// ExecuteSeeded runs only the derivations that use a changed row of
// source: each seed row is unified against the literal and the remaining
// conjuncts run from there. Only valid when Seedable().
//
//rtic:noalloc
func (p *Plan) ExecuteSeeded(st *storage.State, oracle fol.Oracle, src Source, seeds []tuple.Tuple, emit func(tuple.Tuple) bool) error {
	srcKey := src.Key() //rtic:allocok one small key string per seed batch, not per row
	es := p.getState()
	defer p.putState(es)
	for _, cj := range p.disjuncts {
		for _, sv := range cj.seeds {
			if sv.source.Key() != srcKey { //rtic:allocok one key string per seed variant, not per row
				continue
			}
			for _, seed := range seeds {
				if len(seed) != len(sv.args) {
					return fmt.Errorf("plan: seed arity %d for literal of arity %d", len(seed), len(sv.args)) //rtic:allocok cold path: arity mismatch is a caller bug, never taken in steady state
				}
				if !unify(es, sv.args, seed) {
					continue
				}
				cont, err := p.run(cj, sv.steps, es, st, oracle, emit)
				if err != nil {
					return err
				}
				if !cont {
					return nil
				}
			}
		}
	}
	return nil
}

// unify matches a source row against a literal's column spec, assigning
// unbound slots and checking constants and already-bound slots.
//
//rtic:noalloc
func unify(es *execState, args []argSpec, t tuple.Tuple) bool {
	for j, a := range args {
		switch {
		case a.isConst:
			if !t[j].Equal(a.val) {
				return false
			}
		case a.check:
			if !t[j].Equal(es.slots[a.slot]) {
				return false
			}
		default:
			es.slots[a.slot] = t[j]
		}
	}
	return true
}

// buildKey assembles the tuple.Key encoding of the literal's columns in
// es.key (reused across probes).
//
//rtic:noalloc
func (es *execState) buildKey(args []argSpec) []byte {
	k := es.key[:0]
	for _, a := range args {
		if a.isConst {
			k = tuple.AppendValueKey(k, a.val)
		} else {
			k = tuple.AppendValueKey(k, es.slots[a.slot])
		}
	}
	es.key = k
	return k
}

// run executes a step program against the current slots, recursing per
// enumerated row. It returns false when emit stopped the run.
//
//rtic:noalloc
func (p *Plan) run(cj *conj, steps []step, es *execState, st *storage.State, oracle fol.Oracle, emit func(tuple.Tuple) bool) (bool, error) {
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) { //rtic:allocok recursive closure over locals; does not escape run (TestPlanAllocationFree covers this path)
		if i == len(steps) {
			row := es.row[:0]
			for _, s := range cj.out {
				row = append(row, es.slots[s])
			}
			es.row = row
			return emit(row), nil
		}
		s := &steps[i]
		switch s.kind {
		case kBind:
			if s.r.isConst {
				es.slots[s.l.slot] = s.r.val
			} else {
				es.slots[s.l.slot] = es.slots[s.r.slot]
			}
			return rec(i + 1)
		case kCmpFilter:
			l, r := s.l.val, s.r.val
			if !s.l.isConst {
				l = es.slots[s.l.slot]
			}
			if !s.r.isConst {
				r = es.slots[s.r.slot]
			}
			if !s.op.Apply(l, r) {
				return true, nil
			}
			return rec(i + 1)
		case kProbeRel:
			rel, err := st.Relation(s.rel)
			if err != nil {
				return false, err
			}
			if rel.ContainsKeyBytes(es.buildKey(s.args)) == s.neg {
				return true, nil
			}
			return rec(i + 1)
		case kProbeTemp:
			ok, err := p.probeTemp(s, es, oracle)
			if err != nil {
				return false, err
			}
			if ok == s.neg {
				return true, nil
			}
			return rec(i + 1)
		case kSubProbe:
			found := false
			if es.env == nil {
				es.env = make(fol.Env, 8) //rtic:allocok pool warm-up; the subquery env is reused across executions
			}
			for j, v := range s.sub.inputs {
				es.env[v] = es.slots[s.subIn[j]]
			}
			err := s.sub.Execute(st, oracle, es.env, func(tuple.Tuple) bool { //rtic:allocok closure does not escape Execute (TestPlanAllocationFree covers this path)
				found = true
				return false
			})
			for _, v := range s.sub.inputs {
				delete(es.env, v)
			}
			if err != nil {
				return false, err
			}
			if found == s.neg {
				return true, nil
			}
			return rec(i + 1)
		case kScanRel:
			rel, err := st.Relation(s.rel)
			if err != nil {
				return false, err
			}
			cont := true
			var iterErr error
			visit := func(t tuple.Tuple) bool { //rtic:allocok closure does not escape the scan (TestPlanAllocationFree covers this path)
				if len(t) != len(s.args) {
					iterErr = fmt.Errorf("plan: relation %q arity %d, literal arity %d", s.rel, len(t), len(s.args)) //rtic:allocok cold path: arity mismatch is a compile bug
					return false
				}
				if !unify(es, s.args, t) {
					return true
				}
				c, err := rec(i + 1)
				if err != nil {
					iterErr = err
					return false
				}
				if !c {
					cont = false
					return false
				}
				return true
			}
			if len(s.idxCols) > 0 {
				if ix := rel.FindIndex(s.idxCols); ix != nil {
					k := es.key[:0]
					for _, cix := range s.idxCols {
						a := s.args[cix]
						if a.isConst {
							k = tuple.AppendValueKey(k, a.val)
						} else {
							k = tuple.AppendValueKey(k, es.slots[a.slot])
						}
					}
					es.key = k
					for _, t := range ix.LookupKeyBytes(k) {
						if !visit(t) {
							break
						}
					}
					return cont, iterErr
				}
			}
			rel.Each(visit)
			return cont, iterErr
		case kScanTemp:
			ans, err := p.tempAnswer(s.temp, es, oracle)
			if err != nil {
				return false, err
			}
			cont := true
			var iterErr error
			ans.EachRow(func(t tuple.Tuple) bool { //rtic:allocok closure does not escape EachRow (TestPlanAllocationFree covers this path)
				if !unify(es, s.args, t) {
					return true
				}
				c, err := rec(i + 1)
				if err != nil {
					iterErr = err
					return false
				}
				if !c {
					cont = false
					return false
				}
				return true
			})
			return cont, iterErr
		default:
			return false, fmt.Errorf("plan: unknown step kind %d", s.kind) //rtic:allocok unreachable default: every step kind is covered above
		}
	}
	return rec(0)
}

//rtic:noalloc
func (p *Plan) tempAnswer(temp int, es *execState, oracle fol.Oracle) (*fol.Bindings, error) {
	if es.answers[temp] == nil {
		b, err := oracle.Enumerate(p.temps[temp])
		if err != nil {
			return nil, err
		}
		es.answers[temp] = b
	}
	return es.answers[temp], nil
}

// probeTemp decides a fully bound temporal literal: through the oracle's
// key-probe extension when available, else by enumerating (cached per
// execution) and probing the answer set.
//
//rtic:noalloc
func (p *Plan) probeTemp(s *step, es *execState, oracle fol.Oracle) (bool, error) {
	if kt, ok := oracle.(KeyTester); ok {
		return kt.TestKey(p.temps[s.temp], es.buildKey(s.args))
	}
	ans, err := p.tempAnswer(s.temp, es, oracle)
	if err != nil {
		return false, err
	}
	return ans.ContainsKeyBytes(es.buildKey(s.args)), nil
}

// Cost is the plan-derived worst-case evaluation estimate the linter's
// cost pass folds in: index-supported joins are priced below
// cross-products, probes and comparisons are free.
type Cost struct {
	Weight uint64
	Shape  string
}

// Per-step cost factors: a full relation scan fans out worst-case, an
// index-supported scan touches one bucket, temporal scans enumerate a
// bounded answer set, probes and filters are unit work.
const (
	costScan    = 8
	costIdxScan = 3
	costTemp    = 4
)

// Cost estimates the plan's worst-case join weight and renders its shape.
func (p *Plan) Cost() Cost {
	var total uint64
	var shapes []string
	for _, cj := range p.disjuncts {
		w := uint64(1)
		var parts []string
		for i := range cj.steps {
			s := &cj.steps[i]
			switch s.kind {
			case kScanRel:
				if len(s.idxCols) > 0 {
					w = satMul(w, costIdxScan)
					parts = append(parts, "idx("+s.rel+")")
				} else {
					w = satMul(w, costScan)
					parts = append(parts, "scan("+s.rel+")")
				}
			case kScanTemp:
				w = satMul(w, costTemp)
				parts = append(parts, "tscan("+p.temps[s.temp].String()+")")
			case kProbeRel:
				parts = append(parts, "probe("+s.rel+")")
			case kProbeTemp:
				parts = append(parts, "tprobe("+p.temps[s.temp].String()+")")
			case kSubProbe:
				sc := s.sub.Cost()
				w = satMul(w, sc.Weight)
				parts = append(parts, "sub["+sc.Shape+"]")
			}
		}
		total = satAdd(total, w)
		shapes = append(shapes, strings.Join(parts, "⨝"))
	}
	return Cost{Weight: total, Shape: strings.Join(shapes, " ∪ ")}
}

func satAdd(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return ^uint64(0)
	}
	return s
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/a != b {
		return ^uint64(0)
	}
	return p
}

func dedupSorted(vars []string) []string {
	vs := append([]string(nil), vars...)
	sort.Strings(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

func containsStr(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
