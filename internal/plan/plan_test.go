package plan

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rtic/internal/check"
	"rtic/internal/fol"
	"rtic/internal/formgen"
	"rtic/internal/mtl"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// fakeOracle serves deterministic pseudo-random answer sets for temporal
// subformulas, keyed by shape, so planned and tree-walk evaluation can
// be compared on formulas with temporal literals.
type fakeOracle struct {
	seed    int64
	domain  []value.Value
	answers map[string]*fol.Bindings
}

func newFakeOracle(seed int64, domain []value.Value) *fakeOracle {
	return &fakeOracle{seed: seed, domain: domain, answers: map[string]*fol.Bindings{}}
}

func (o *fakeOracle) answerFor(f mtl.Formula) *fol.Bindings {
	shape := f.String()
	if b, ok := o.answers[shape]; ok {
		return b
	}
	fv := mtl.FreeVars(f)
	b := fol.NewBindings(fv)
	h := int64(0)
	for _, c := range shape {
		h = h*31 + int64(c)
	}
	r := rand.New(rand.NewSource(o.seed ^ h))
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		row := make(tuple.Tuple, len(fv))
		for j := range row {
			row[j] = o.domain[r.Intn(len(o.domain))]
		}
		if err := b.AddRow(row); err != nil {
			panic(err)
		}
	}
	o.answers[shape] = b
	return b
}

func (o *fakeOracle) Enumerate(f mtl.Formula) (*fol.Bindings, error) {
	switch f.(type) {
	case *mtl.Prev, *mtl.Once, *mtl.Since:
		return o.answerFor(f), nil
	}
	return nil, fmt.Errorf("fakeOracle: non-temporal %q", f.String())
}

func (o *fakeOracle) Test(f mtl.Formula, env fol.Env) (bool, error) {
	switch f.(type) {
	case *mtl.Prev, *mtl.Once, *mtl.Since:
		return o.answerFor(f).Contains(env)
	}
	return false, fmt.Errorf("fakeOracle: non-temporal %q", f.String())
}

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().
		Relation("p", 1).
		Relation("q", 1).
		Relation("r", 2).
		Relation("s", 3).
		MustBuild()
}

func fill(t *testing.T, st *storage.State, rel string, rows ...[]int64) {
	t.Helper()
	r, err := st.Relation(rel)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		vs := make(tuple.Tuple, len(row))
		for i, n := range row {
			vs[i] = value.Int(n)
		}
		r.MustInsert(vs)
	}
}

// canon renders a binding set for comparison.
func canon(b *fol.Bindings) string {
	var rows []string
	for _, t := range b.Rows() {
		rows = append(rows, t.Key())
	}
	sort.Strings(rows)
	return strings.Join(rows, ";")
}

// assertAgree compiles f, runs it both ways, and compares answer sets.
func assertAgree(t *testing.T, st *storage.State, oracle fol.Oracle, f mtl.Formula) *Plan {
	t.Helper()
	p, err := Compile(f, st, nil)
	if err != nil {
		t.Fatalf("Compile(%q): %v", f.String(), err)
	}
	got, err := p.Eval(st, oracle, nil)
	if err != nil {
		t.Fatalf("plan eval %q: %v", f.String(), err)
	}
	want, err := fol.NewEvaluator(st, oracle).Eval(f)
	if err != nil {
		t.Fatalf("tree-walk eval %q: %v", f.String(), err)
	}
	if canon(got) != canon(want) {
		t.Fatalf("plan and tree-walk disagree on %q:\n plan: %s\n tree: %s", f.String(), got, want)
	}
	return p
}

func TestPlanMatchesTreeWalk(t *testing.T) {
	st := storage.NewState(testSchema(t))
	fill(t, st, "p", []int64{1}, []int64{2}, []int64{3})
	fill(t, st, "q", []int64{2}, []int64{4})
	fill(t, st, "r", []int64{1, 2}, []int64{2, 3}, []int64{3, 3}, []int64{2, 7})
	fill(t, st, "s", []int64{1, 2, 3}, []int64{2, 2, 2})
	oracle := newFakeOracle(7, []value.Value{value.Int(1), value.Int(2), value.Int(3), value.Int(7)})

	for _, src := range []string{
		"p(x)",
		"p(x) and q(x)",
		"p(x) and not q(x)",
		"p(x) and r(x, y)",
		"p(x) and r(x, y) and q(y)",
		"r(x, y) and r(y, z) and not r(x, z)",
		"r(x, x)",
		"p(x) and x = 2",
		"p(x) and y = x and r(x, y)",
		"r(x, y) and x < y",
		"p(x) or q(x)",
		"p(x) and not once q(x)",
		"p(x) and once[0,5] r(x, y)",
		"r(x, y) and not prev r(x, y)",
		"s(x, y, z) and r(x, y)",
		"p(x) and r(x, 2)",
	} {
		f := mtl.MustParse(src)
		assertAgree(t, st, oracle, f)
	}
}

func TestPlanClosedFormula(t *testing.T) {
	st := storage.NewState(testSchema(t))
	fill(t, st, "p", []int64{5})
	oracle := newFakeOracle(1, []value.Value{value.Int(5)})
	p := assertAgree(t, st, oracle, mtl.MustParse("p(5)"))
	b, err := p.Eval(st, oracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("closed true formula: want unit answer, got %s", b)
	}
	assertAgree(t, st, oracle, mtl.MustParse("p(6)"))
}

func TestPlanInputs(t *testing.T) {
	st := storage.NewState(testSchema(t))
	fill(t, st, "r", []int64{1, 2}, []int64{1, 3}, []int64{2, 9})
	f := mtl.MustParse("r(x, y)")
	p, err := Compile(f, st, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Eval(st, nil, fol.Env{"x": value.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("want 2 rows for x=1, got %s", b)
	}
	b.EachRow(func(row tuple.Tuple) bool {
		if !row[0].Equal(value.Int(1)) {
			t.Fatalf("input x not respected: %s", row)
		}
		return true
	})
	if _, err := p.Eval(st, nil, nil); err == nil {
		t.Fatal("missing input must error")
	}
}

func TestPlanNegatedExists(t *testing.T) {
	st := storage.NewState(testSchema(t))
	fill(t, st, "p", []int64{1}, []int64{2})
	fill(t, st, "r", []int64{1, 5})
	f := mtl.Normalize(mtl.MustParse("p(x) and not (exists y: r(x, y))"))
	p := assertAgree(t, st, newFakeOracle(3, []value.Value{value.Int(1)}), f)
	if p.Seedable() {
		t.Fatal("plans with sub-probes must not report Seedable")
	}
}

func TestPlanInlinedExists(t *testing.T) {
	st := storage.NewState(testSchema(t))
	fill(t, st, "p", []int64{1}, []int64{2})
	fill(t, st, "r", []int64{1, 5}, []int64{1, 6})
	f := mtl.Normalize(mtl.MustParse("p(x) and (exists y: r(x, y))"))
	p := assertAgree(t, st, newFakeOracle(3, []value.Value{value.Int(1)}), f)
	if p.Seedable() {
		t.Fatal("plans with inlined existentials must not report Seedable")
	}
}

func TestPlanUnsupportedShapesFallBack(t *testing.T) {
	st := storage.NewState(testSchema(t))
	// Nested disjunction inside a conjunction is out of plan shape.
	f := mtl.MustParse("p(x) and (q(x) or r(x, x))")
	if _, err := Compile(f, st, nil); err == nil {
		t.Fatal("nested disjunction must fail compilation")
	}
}

func TestPlanUsesIndex(t *testing.T) {
	st := storage.NewState(testSchema(t))
	fill(t, st, "p", []int64{1})
	fill(t, st, "r", []int64{1, 2})
	f := mtl.MustParse("p(x) and r(x, y)")
	if _, err := Compile(f, st, nil); err != nil {
		t.Fatal(err)
	}
	r, err := st.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	if r.FindIndex([]int{0}) == nil {
		t.Fatal("compiling p(x) ∧ r(x,y) must register an index on r's first column")
	}
	c, err2 := Compile(f, st, nil)
	if err2 != nil {
		t.Fatal(err2)
	}
	cost := c.Cost()
	if !strings.Contains(cost.Shape, "idx(r)") {
		t.Fatalf("cost shape must show the indexed join, got %q", cost.Shape)
	}
	full, err := Compile(mtl.MustParse("p(x) and r(y, z)"), st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cost().Weight <= cost.Weight {
		t.Fatalf("cross product (%d) must be priced above indexed join (%d)", full.Cost().Weight, cost.Weight)
	}
}

func TestPlanRetestRow(t *testing.T) {
	st := storage.NewState(testSchema(t))
	fill(t, st, "p", []int64{1}, []int64{2})
	fill(t, st, "q", []int64{2})
	f := mtl.MustParse("p(x) and not q(x)")
	p, err := Compile(f, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Seedable() {
		t.Fatal("flat literal plan must be seedable")
	}
	for _, tc := range []struct {
		x    int64
		want bool
	}{{1, true}, {2, false}, {9, false}} {
		got, err := p.RetestRow(st, nil, tuple.Of(value.Int(tc.x)))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("RetestRow(x=%d) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestPlanExecuteSeeded(t *testing.T) {
	st := storage.NewState(testSchema(t))
	fill(t, st, "p", []int64{1}, []int64{2}, []int64{3})
	fill(t, st, "q", []int64{2})
	f := mtl.MustParse("p(x) and not q(x)")
	p, err := Compile(f, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	srcs := p.Sources()
	if len(srcs) != 2 {
		t.Fatalf("want 2 sources, got %v", srcs)
	}
	var pSrc, qSrc Source
	for _, s := range srcs {
		if s.IsRel && s.Rel == "p" && s.Positive {
			pSrc = s
		}
		if s.IsRel && s.Rel == "q" && !s.Positive {
			qSrc = s
		}
	}
	collect := func(src Source, rows ...tuple.Tuple) []string {
		var got []string
		if err := p.ExecuteSeeded(st, nil, src, rows, func(row tuple.Tuple) bool {
			got = append(got, row.Key())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		return got
	}
	// A newly inserted p(3) derives the answer x=3 (q misses 3).
	if got := collect(pSrc, tuple.Of(value.Int(3))); len(got) != 1 {
		t.Fatalf("seed p(3): want 1 answer, got %v", got)
	}
	// A newly inserted p(2) derives nothing: q(2) holds.
	if got := collect(pSrc, tuple.Of(value.Int(2))); len(got) != 0 {
		t.Fatalf("seed p(2): want 0 answers, got %v", got)
	}
	// A deleted q(1) derives x=1 through the negated literal.
	if got := collect(qSrc, tuple.Of(value.Int(1))); len(got) != 1 {
		t.Fatalf("seed ¬q(1): want 1 answer, got %v", got)
	}
}

func TestPlanSeededMatchesDelta(t *testing.T) {
	// Randomized: apply a delta, check that full evaluation after equals
	// (surviving retested old answers) ∪ (seeded answers from the delta).
	r := rand.New(rand.NewSource(11))
	sch := testSchema(t)
	for trial := 0; trial < 200; trial++ {
		st := storage.NewState(sch)
		dom := int64(4)
		for _, rel := range []string{"p", "q"} {
			for v := int64(0); v < dom; v++ {
				if r.Intn(2) == 0 {
					fill(t, st, rel, []int64{v})
				}
			}
		}
		f := mtl.MustParse("p(x) and not q(x)")
		p, err := Compile(f, st, nil)
		if err != nil {
			t.Fatal(err)
		}
		before, err := p.Eval(st, nil, nil)
		if err != nil {
			t.Fatal(err)
		}

		// Random net delta on p and q.
		type change struct {
			rel    string
			val    int64
			insert bool
		}
		var delta []change
		for _, rel := range []string{"p", "q"} {
			rr, _ := st.Relation(rel)
			for v := int64(0); v < dom; v++ {
				if r.Intn(3) != 0 {
					continue
				}
				has := rr.Contains(tuple.Of(value.Int(v)))
				if has {
					rr.Delete(tuple.Of(value.Int(v)))
					delta = append(delta, change{rel, v, false})
				} else {
					rr.MustInsert(tuple.Of(value.Int(v)))
					delta = append(delta, change{rel, v, true})
				}
			}
		}

		// Delta-driven: retest surviving old answers, seed from changes.
		got := fol.NewBindings(p.Vars())
		var iterErr error
		before.EachRow(func(row tuple.Tuple) bool {
			ok, err := p.RetestRow(st, nil, row)
			if err != nil {
				iterErr = err
				return false
			}
			if ok {
				if err := got.AddRow(row); err != nil {
					iterErr = err
					return false
				}
			}
			return true
		})
		if iterErr != nil {
			t.Fatal(iterErr)
		}
		for _, ch := range delta {
			src := Source{IsRel: true, Rel: ch.rel, Positive: ch.insert}
			if err := p.ExecuteSeeded(st, nil, src, []tuple.Tuple{tuple.Of(value.Int(ch.val))}, func(row tuple.Tuple) bool {
				if err := got.AddRow(row); err != nil {
					iterErr = err
					return false
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
		}
		if iterErr != nil {
			t.Fatal(iterErr)
		}
		want, err := p.Eval(st, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if canon(got) != canon(want) {
			t.Fatalf("trial %d: delta-driven %s != full %s", trial, got, want)
		}
	}
}

func TestPlanAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	st := storage.NewState(testSchema(t))
	fill(t, st, "p", []int64{1}, []int64{2}, []int64{3})
	fill(t, st, "r", []int64{1, 2}, []int64{2, 3})
	p, err := Compile(mtl.MustParse("p(x) and r(x, y) and not q(y)"), st, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool, then measure.
	run := func() {
		if err := p.Execute(st, nil, nil, func(tuple.Tuple) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	run()
	allocs := testing.AllocsPerRun(100, run)
	if allocs > 0 {
		t.Fatalf("steady-state plan execution allocates %.1f objects/run, want 0", allocs)
	}
}

// formulaAgreesWithTreeWalk is the shared body of the fuzz target and
// its seed-corpus regression test.
func formulaAgreesWithTreeWalk(t *testing.T, formulaSeed, dataSeed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(formulaSeed))
	src := formgen.Constraint(r)
	f, err := mtl.Parse(src)
	if err != nil {
		t.Fatalf("formgen produced unparsable %q: %v", src, err)
	}
	con, err := check.Compile("fuzz", f, formgen.Schema())
	if err != nil {
		return // not safe; nothing to plan
	}
	st := storage.NewState(formgen.Schema())
	dr := rand.New(rand.NewSource(dataSeed))
	domain := make([]value.Value, 5)
	for i := range domain {
		domain[i] = value.Int(int64(i))
	}
	for _, name := range formgen.Schema().Names() {
		rel, err := st.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		n := dr.Intn(10)
		for i := 0; i < n; i++ {
			row := make(tuple.Tuple, rel.Arity())
			for j := range row {
				row[j] = domain[dr.Intn(len(domain))]
			}
			rel.MustInsert(row)
		}
	}
	oracle := newFakeOracle(dataSeed, domain)
	p, err := Compile(con.Denial, st, nil)
	if err != nil {
		return // unsupported shape: tree-walk fallback covers it
	}
	got, err := p.Eval(st, oracle, nil)
	if err != nil {
		t.Fatalf("plan eval of %q: %v", con.Denial.String(), err)
	}
	want, err := fol.NewEvaluator(st, oracle).Eval(con.Denial)
	if err != nil {
		t.Fatalf("tree-walk eval of %q: %v", con.Denial.String(), err)
	}
	if canon(got) != canon(want) {
		t.Fatalf("plan and tree-walk disagree on %q (seed %d/%d):\n plan: %s\n tree: %s",
			con.Denial.String(), formulaSeed, dataSeed, got, want)
	}
}

func TestPlanFuzzSeeds(t *testing.T) {
	for fs := int64(0); fs < 60; fs++ {
		for ds := int64(0); ds < 3; ds++ {
			formulaAgreesWithTreeWalk(t, fs, ds)
		}
	}
}

// FuzzPlanExec drives compiled-plan execution against the tree-walking
// evaluator on random formgen constraints over random states.
func FuzzPlanExec(f *testing.F) {
	f.Add(int64(1), int64(1))
	f.Add(int64(42), int64(7))
	f.Add(int64(1234), int64(99))
	f.Fuzz(func(t *testing.T, formulaSeed, dataSeed int64) {
		formulaAgreesWithTreeWalk(t, formulaSeed, dataSeed)
	})
}
