//go:build race

package plan

// raceEnabled reports that the race detector is active; its
// instrumentation allocates, so allocation-count tests are skipped.
const raceEnabled = true
