package monitor

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"sync"
	"time"

	"rtic/internal/obs"
	"rtic/internal/storage"
	"rtic/internal/vfs"
	"rtic/internal/wal"
)

// FailurePolicy selects what a durability manager does when journaling
// fails (a failed append, fsync, or background flush).
type FailurePolicy int

const (
	// Degrade keeps the monitor serving: commits are still checked and
	// acknowledged — as non-durable — while a bounded in-memory backlog
	// buffers them and a background re-arm loop (exponential backoff
	// with jitter) retries restoring durability. A transient failure is
	// healed by draining the backlog into the journal; a broken journal
	// is replaced by a fresh segment plus an atomic checkpoint covering
	// the degraded window (requires a checkpoint path).
	Degrade FailurePolicy = iota
	// Halt invokes the configured halt function (see WithHaltFunc) on
	// the first durability failure, so a daemon that must never
	// acknowledge a non-durable commit can shut down instead of serving
	// degraded.
	Halt
)

// String returns the flag spelling of the policy.
func (p FailurePolicy) String() string {
	switch p {
	case Degrade:
		return "degrade"
	case Halt:
		return "halt"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseFailurePolicy reads an -on-durability-failure flag value.
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch s {
	case "degrade":
		return Degrade, nil
	case "halt":
		return Halt, nil
	default:
		return 0, fmt.Errorf("monitor: unknown durability failure policy %q (want degrade or halt)", s)
	}
}

// DurableOption configures a durability manager at construction time.
type DurableOption func(*durableOptions)

type durableOptions struct {
	fs         vfs.FS
	policy     FailurePolicy
	halt       func(error)
	openLog    func(path string) (*wal.Log, error)
	backoffMin time.Duration
	backoffMax time.Duration
	backlogCap int
}

func defaultDurableOptions() durableOptions {
	return durableOptions{
		fs:         vfs.OS,
		policy:     Degrade,
		backoffMin: 50 * time.Millisecond,
		backoffMax: 5 * time.Second,
		backlogCap: 4096,
	}
}

// WithDurableFS selects the filesystem checkpoints and re-arm segment
// rotation go through (default vfs.OS). Fault-injection tests
// substitute a vfs.FaultFS.
func WithDurableFS(fsys vfs.FS) DurableOption {
	return func(o *durableOptions) {
		if fsys != nil {
			o.fs = fsys
		}
	}
}

// WithFailurePolicy selects the reaction to a journaling failure
// (default Degrade).
func WithFailurePolicy(p FailurePolicy) DurableOption {
	return func(o *durableOptions) { o.policy = p }
}

// WithHaltFunc registers the function the Halt policy invokes (at most
// once) on a durability failure. It may be called from the commit path
// or a background goroutine and must not block.
func WithHaltFunc(h func(error)) DurableOption {
	return func(o *durableOptions) { o.halt = h }
}

// WithLogFactory sets how the re-arm loop opens a fresh WAL segment,
// so the replacement inherits the daemon's sync policy, metrics and
// filesystem. The default opens a plain SyncAlways log through the
// manager's filesystem.
func WithLogFactory(open func(path string) (*wal.Log, error)) DurableOption {
	return func(o *durableOptions) { o.openLog = open }
}

// WithRearmBackoff bounds the re-arm retry delay (defaults 50ms..5s,
// doubling per failed attempt, with jitter).
func WithRearmBackoff(min, max time.Duration) DurableOption {
	return func(o *durableOptions) {
		if min > 0 {
			o.backoffMin = min
		}
		if max >= o.backoffMin {
			o.backoffMax = max
		}
	}
}

// WithBacklogLimit caps the in-memory record backlog kept while
// degraded (default 4096). Past the cap the backlog is discarded and
// only a checkpoint-class re-arm can restore durability.
func WithBacklogLimit(n int) DurableOption {
	return func(o *durableOptions) {
		if n > 0 {
			o.backlogCap = n
		}
	}
}

// pendingRec is one commit buffered while degraded: its timestamp and
// the encoded journal payload a drain re-arm appends.
type pendingRec struct {
	t       uint64
	payload []byte
}

// Durable is the durability manager around a monitor: it journals every
// accepted transaction to a write-ahead log, periodically rotates an
// atomic checkpoint that truncates the journal, and replays the journal
// tail over the newest checkpoint on startup. Only the incremental
// engine is durable (it is the only one with snapshot support).
//
// Crash-safety argument: a commit is journaled under the commit lock
// before the next commit can start, so the log always holds every
// accepted transaction since the last checkpoint. A checkpoint writes
// the snapshot to a temp file, fsyncs, renames it over the live path,
// and only then resets the log — a crash before the rename leaves the
// old checkpoint plus a log that covers everything after it; a crash
// after the rename but before the reset leaves records the recovery
// skips by timestamp (timestamps are strictly increasing, so "t at or
// before the checkpoint's clock" identifies them exactly).
//
// Journaling failures follow the configured FailurePolicy. Under
// Degrade (the default) the manager enters degraded mode: commits keep
// being checked and acknowledged — as non-durable — while a re-arm loop
// retries in the background. Re-arm has two classes. If the log never
// latched broken (a transient append failure, e.g. ENOSPC that
// cleared), the buffered backlog is drained into it and fsynced. If the
// log is broken or the backlog overflowed, a fresh segment is opened
// beside the live path, an atomic checkpoint capturing the whole state
// — degraded-window commits included — is written, and the fresh
// segment is renamed over the old path; either way no acknowledged-
// durable commit is ever lost, and commits acknowledged during the
// degraded window become durable again at re-arm. Journal-only managers
// (no checkpoint path) can only drain; if their log breaks they stay
// degraded until restart.
type Durable struct {
	m        *Monitor
	snapPath string // "": journal-only durability
	fs       vfs.FS
	policy   FailurePolicy
	halt     func(error)
	haltOnce sync.Once
	openLog  func(path string) (*wal.Log, error)

	backoffMin time.Duration
	backoffMax time.Duration
	backlogCap int

	mu              sync.Mutex
	log             *wal.Log     // nil: checkpoint-only durability; swapped by re-arm
	mm              *obs.Metrics // captured at Attach/Recover; safe under the commit lock
	last            time.Time    // last successful checkpoint
	lastErr         error        // latest durability failure, nil when healthy
	replayed        int
	degraded        bool
	degradedSince   time.Time
	backlog         []pendingRec
	backlogOverflow bool
	rearmAttempts   uint64
	rearms          uint64
	rearmStop       chan struct{}
	rearmDone       chan struct{}

	stop chan struct{}
	done chan struct{}
}

// NewDurable builds the durability manager. log may be nil (periodic
// checkpoints without a journal) and snapPath may be empty (journal
// only, replayed in full on recovery); at least one must be set.
func NewDurable(m *Monitor, log *wal.Log, snapPath string, opts ...DurableOption) (*Durable, error) {
	if m.inc == nil {
		return nil, fmt.Errorf("monitor: durability requires the incremental engine (current: %v)", m.mode)
	}
	if log == nil && snapPath == "" {
		return nil, fmt.Errorf("monitor: durability needs a WAL, a checkpoint path, or both")
	}
	o := defaultDurableOptions()
	for _, opt := range opts {
		opt(&o)
	}
	d := &Durable{
		m: m, log: log, snapPath: snapPath,
		fs: o.fs, policy: o.policy, halt: o.halt, openLog: o.openLog,
		backoffMin: o.backoffMin, backoffMax: o.backoffMax, backlogCap: o.backlogCap,
	}
	if d.openLog == nil {
		fsys := o.fs
		d.openLog = func(p string) (*wal.Log, error) { return wal.Open(p, wal.WithFS(fsys)) }
	}
	return d, nil
}

// Recover replays the journal tail into the monitor and returns how
// many records were applied. Call it on the freshly built (or
// checkpoint-restored) monitor, before Attach and before serving
// traffic. Records already covered by the checkpoint — possible when a
// crash hit between checkpoint rename and journal reset — are skipped
// by timestamp.
func (d *Durable) Recover() (int, error) {
	d.captureMetrics()
	d.mu.Lock()
	log := d.log
	d.mu.Unlock()
	if log == nil {
		return 0, nil
	}
	applied := 0
	_, err := log.Replay(func(payload []byte) error {
		t, tx, err := wal.DecodeTx(payload)
		if err != nil {
			return err
		}
		if d.m.Len() > 0 && t <= d.m.Now() {
			return nil // already in the checkpoint
		}
		if _, err := d.m.Apply(t, tx); err != nil {
			return fmt.Errorf("monitor: replaying record at t=%d: %w", t, err)
		}
		applied++
		return nil
	})
	d.mu.Lock()
	d.replayed = applied
	mm := d.mm
	d.mu.Unlock()
	if mm != nil {
		mm.ReplayedRecords.Add(uint64(applied))
	}
	return applied, err
}

// captureMetrics snapshots the monitor's metric handles so hooks that
// run under the commit lock never have to call Observer (which takes
// that same lock).
func (d *Durable) captureMetrics() {
	if mm, _ := d.m.Observer().Parts(); mm != nil {
		d.mu.Lock()
		d.mm = mm
		d.mu.Unlock()
	}
}

// Attach starts journaling: every subsequently accepted transaction is
// appended to the log under the commit lock. Failures — including a
// background-flusher fsync failure, surfaced through the log's failure
// handler at the point of failure — trigger the configured
// FailurePolicy.
func (d *Durable) Attach() {
	d.captureMetrics()
	d.mu.Lock()
	log := d.log
	d.mu.Unlock()
	if log == nil {
		return
	}
	log.SetFailureHandler(d.onFailure)
	d.m.SetJournal(d.journalHook)
}

// journalHook runs under the commit lock for every accepted commit.
func (d *Durable) journalHook(t uint64, tx *storage.Transaction) {
	d.mu.Lock()
	if d.degraded {
		d.pushBacklogLocked(pendingRec{t: t, payload: wal.EncodeTx(t, tx)})
		d.mu.Unlock()
		return
	}
	log := d.log
	d.mu.Unlock()
	if err := log.AppendTx(t, tx); err != nil {
		d.onFailure(err)
		d.mu.Lock()
		if d.degraded {
			// The failed record joins the backlog so a drain re-arm
			// still covers this commit.
			d.pushBacklogLocked(pendingRec{t: t, payload: wal.EncodeTx(t, tx)})
		}
		d.mu.Unlock()
	}
}

// pushBacklogLocked buffers one degraded-window commit (caller holds
// d.mu). Past the cap the backlog is dropped wholesale: it can no
// longer be replayed into the journal, so only a checkpoint-class
// re-arm — which captures the state directly — can recover.
func (d *Durable) pushBacklogLocked(rec pendingRec) {
	if d.backlogOverflow {
		return
	}
	if len(d.backlog) >= d.backlogCap {
		d.backlog = nil
		d.backlogOverflow = true
		if d.mm != nil {
			d.mm.JournalBacklog.Set(0)
		}
		return
	}
	d.backlog = append(d.backlog, rec)
	if d.mm != nil {
		d.mm.JournalBacklog.Set(int64(len(d.backlog)))
	}
}

// onFailure reacts to a journaling failure per the configured policy.
// It is called from the commit path and from WAL failure handlers
// (possibly a flusher goroutine); it only takes d.mu.
func (d *Durable) onFailure(err error) {
	if d.policy == Halt {
		d.mu.Lock()
		d.lastErr = err
		d.mu.Unlock()
		if d.halt != nil {
			d.haltOnce.Do(func() { d.halt(err) })
		}
		return
	}
	d.degrade(err)
}

// degrade flips the manager into degraded mode (idempotent) and starts
// the re-arm loop.
func (d *Durable) degrade(err error) {
	d.mu.Lock()
	d.lastErr = err
	if d.degraded {
		d.mu.Unlock()
		return
	}
	d.degraded = true
	d.degradedSince = time.Now()
	stop := make(chan struct{})
	done := make(chan struct{})
	d.rearmStop, d.rearmDone = stop, done
	mm := d.mm
	d.mu.Unlock()
	if mm != nil {
		mm.DurabilityDegraded.Set(1)
	}
	go runRearmLoop(stop, done, d.backoffMin, d.backoffMax, d.tryRearm)
}

// runRearmLoop retries try with exponential backoff until it reports
// success or stop closes.
func runRearmLoop(stop, done chan struct{}, min, max time.Duration, try func() bool) {
	defer close(done)
	delay := min
	for {
		t := time.NewTimer(rearmJitter(delay))
		select {
		case <-stop:
			t.Stop()
			return
		case <-t.C:
		}
		if try() {
			return
		}
		delay *= 2
		if delay > max {
			delay = max
		}
	}
}

// rearmJitter spreads retries over [d/2, d) so managers degraded by a
// shared cause do not retry in lockstep.
func rearmJitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2))) //nolint:gosec — jitter, not crypto
}

// tryRearm attempts to restore durability. It holds the commit lock
// throughout so no commit can slip between the drain (or checkpoint)
// and journaling being live again.
func (d *Durable) tryRearm() bool {
	d.mu.Lock()
	d.rearmAttempts++
	mm := d.mm
	d.mu.Unlock()
	if mm != nil {
		mm.RearmAttempts.Inc()
	}

	d.m.mu.Lock()
	defer d.m.mu.Unlock()

	d.mu.Lock()
	if !d.degraded {
		d.mu.Unlock()
		return true
	}
	log := d.log
	backlog := d.backlog
	overflow := d.backlogOverflow
	d.mu.Unlock()

	if log != nil && log.Err() == nil && !overflow {
		return d.rearmDrain(log, backlog)
	}
	return d.rearmFresh(log)
}

// rearmDrain re-appends the degraded window's commits to the still
// healthy log (the failure was transient) and fsyncs. Caller holds the
// commit lock, which also freezes the backlog.
func (d *Durable) rearmDrain(log *wal.Log, backlog []pendingRec) bool {
	appended := 0
	for _, rec := range backlog {
		if err := log.Append(rec.payload); err != nil {
			break
		}
		appended++
	}
	ok := appended == len(backlog)
	if ok {
		ok = log.Sync() == nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Drop what reached the log even on a partial drain: a duplicate
	// append on the next attempt would be harmless (recovery skips by
	// timestamp) but the trim keeps attempts monotone.
	d.backlog = d.backlog[appended:]
	if !ok {
		if d.mm != nil {
			d.mm.JournalBacklog.Set(int64(len(d.backlog)))
		}
		return false
	}
	d.finishRearmLocked()
	return true
}

// rearmFresh replaces a broken (or overflowed-past) journal: open a
// fresh segment beside the live path, write an atomic checkpoint
// covering every commit — the degraded window included — and rotate the
// fresh segment over the old path. A crash at any point leaves a
// recoverable pair: before the checkpoint rename, the old checkpoint
// and old journal; after it, a checkpoint that supersedes every old
// journal record (replay skips them by timestamp). Caller holds the
// commit lock.
func (d *Durable) rearmFresh(old *wal.Log) bool {
	if d.snapPath == "" || old == nil {
		return false // journal-only managers cannot rebuild a broken log
	}
	livePath := old.Path()
	rearmPath := livePath + ".rearm"
	// A leftover segment from an earlier failed attempt would make the
	// fresh open replay stale records; clear it first.
	if err := d.fs.Remove(rearmPath); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return false
	}
	fresh, err := d.openLog(rearmPath)
	if err != nil {
		return false
	}
	abort := func() {
		fresh.Close()          //rtic:errok aborting a failed re-arm; the segment is removed on the next line
		d.fs.Remove(rearmPath) //rtic:errok best-effort cleanup; a leftover segment is overwritten by the next attempt
	}
	if err := wal.WriteFileAtomicFS(d.fs, d.snapPath, func(w io.Writer) error {
		return d.m.inc.SaveSnapshot(w)
	}); err != nil {
		abort()
		return false
	}
	if err := fresh.Rename(livePath); err != nil {
		abort()
		return false
	}
	fresh.SetFailureHandler(d.onFailure)
	d.mu.Lock()
	d.log = fresh
	d.last = time.Now()
	mm := d.mm
	d.finishRearmLocked()
	d.mu.Unlock()
	if mm != nil {
		mm.Checkpoints.Inc()
		mm.CheckpointLastUnix.Set(time.Now().Unix())
	}
	old.Close() //rtic:errok the replaced log was already broken; its latched error has been reported
	return true
}

// finishRearmLocked clears the degraded state (caller holds d.mu and
// the commit lock). The re-arm loop exits once its attempt reports
// success, so rearmStop is dropped here.
func (d *Durable) finishRearmLocked() {
	d.degraded = false
	d.lastErr = nil
	d.degradedSince = time.Time{}
	d.backlog = nil
	d.backlogOverflow = false
	d.rearms++
	d.rearmStop = nil
	if d.mm != nil {
		d.mm.DurabilityDegraded.Set(0)
		d.mm.JournalBacklog.Set(0)
		d.mm.Rearms.Inc()
	}
}

// Start runs the background checkpointer at the given interval until
// Stop. It requires a checkpoint path.
func (d *Durable) Start(interval time.Duration) {
	if d.snapPath == "" || interval <= 0 {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go func() {
		defer close(d.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				d.Checkpoint() //rtic:errok failures are recorded in Health and CheckpointErrors; the ticker retries
			}
		}
	}()
}

// Stop halts the background checkpointer and, if one is running, the
// re-arm loop — a manager stopped while degraded stays degraded
// (without a final checkpoint; call Checkpoint explicitly for a clean
// shutdown).
func (d *Durable) Stop() {
	if d.stop != nil {
		close(d.stop)
		<-d.done
		d.stop = nil
	}
	d.mu.Lock()
	stop, done := d.rearmStop, d.rearmDone
	d.rearmStop = nil
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// CloseLog flushes and closes the manager's current journal — which a
// fresh-segment re-arm may have swapped since the caller opened it —
// and is a no-op without one.
func (d *Durable) CloseLog() error {
	d.mu.Lock()
	log := d.log
	d.mu.Unlock()
	if log == nil {
		return nil
	}
	return log.Close()
}

// errCheckpointSkipped marks a checkpoint attempt that found the
// manager degraded — the re-arm loop owns recovery then.
var errCheckpointSkipped = errors.New("monitor: checkpoint skipped while degraded")

// Checkpoint atomically rotates a snapshot into the checkpoint path and
// resets the journal. Commits are held out for the duration — bounded
// history encoding keeps the state (and so the pause) small. While
// degraded, Checkpoint is a no-op: the re-arm loop writes the
// checkpoint that covers the degraded window, and a competing rotation
// here could reset a journal the drain path still needs.
func (d *Durable) Checkpoint() error {
	if d.snapPath == "" {
		return fmt.Errorf("monitor: no checkpoint path configured")
	}
	mm, _ := d.m.Observer().Parts()
	start := time.Now()
	err := d.checkpointLocked()
	if errors.Is(err, errCheckpointSkipped) {
		return nil
	}
	if mm != nil {
		mm.CheckpointSeconds.Observe(time.Since(start).Seconds())
		if err != nil {
			mm.CheckpointErrors.Inc()
		} else {
			mm.Checkpoints.Inc()
			mm.CheckpointLastUnix.Set(time.Now().Unix())
		}
	}
	d.mu.Lock()
	if err != nil {
		d.lastErr = err
	} else {
		d.last = time.Now()
		d.lastErr = nil
	}
	d.mu.Unlock()
	return err
}

func (d *Durable) checkpointLocked() error {
	d.m.mu.Lock()
	defer d.m.mu.Unlock()
	d.mu.Lock()
	log, degraded := d.log, d.degraded
	d.mu.Unlock()
	if degraded {
		return errCheckpointSkipped
	}
	if err := wal.WriteFileAtomicFS(d.fs, d.snapPath, func(w io.Writer) error {
		return d.m.inc.SaveSnapshot(w)
	}); err != nil {
		return err
	}
	if log != nil {
		return log.Reset()
	}
	return nil
}

// DurabilityHealth is the durability section of a health report.
type DurabilityHealth struct {
	// Status is "ok", or "degraded" when the latest journal append or
	// checkpoint failed and has not been recovered from.
	Status string `json:"status"`
	// Policy is the configured failure policy ("degrade" or "halt").
	Policy string `json:"policy"`
	// LastCheckpointAgeSeconds is the age of the newest successful
	// checkpoint, -1 when none has been written this run.
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds"`
	// WALBytes is the journal's current on-disk size.
	WALBytes int64 `json:"wal_bytes"`
	// ReplayedRecords counts journal records applied during recovery.
	ReplayedRecords int `json:"replayed_records"`
	// DegradedSeconds is how long the current degraded episode has
	// lasted (0 when not in degraded mode).
	DegradedSeconds float64 `json:"degraded_seconds,omitempty"`
	// RearmAttempts counts re-arm attempts this run; Rearms counts the
	// successful ones.
	RearmAttempts uint64 `json:"rearm_attempts,omitempty"`
	Rearms        uint64 `json:"rearms,omitempty"`
	// BacklogRecords is the number of commits buffered while degraded;
	// BacklogOverflow reports the backlog blew its cap (only a
	// checkpoint-class re-arm can recover).
	BacklogRecords  int  `json:"backlog_records,omitempty"`
	BacklogOverflow bool `json:"backlog_overflow,omitempty"`
	// LastError describes the failure behind a degraded status.
	LastError string `json:"last_error,omitempty"`
}

// Health reports the durability state for /healthz.
func (d *Durable) Health() DurabilityHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := DurabilityHealth{
		Status:                   "ok",
		Policy:                   d.policy.String(),
		LastCheckpointAgeSeconds: -1,
		ReplayedRecords:          d.replayed,
		RearmAttempts:            d.rearmAttempts,
		Rearms:                   d.rearms,
		BacklogRecords:           len(d.backlog),
		BacklogOverflow:          d.backlogOverflow,
	}
	if !d.last.IsZero() {
		h.LastCheckpointAgeSeconds = time.Since(d.last).Seconds()
	}
	if d.log != nil {
		h.WALBytes = d.log.Size()
	}
	if d.degraded {
		h.DegradedSeconds = time.Since(d.degradedSince).Seconds()
	}
	if d.lastErr != nil {
		h.Status = "degraded"
		h.LastError = d.lastErr.Error()
	}
	return h
}
